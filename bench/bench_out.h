// Where bench result JSONs go: bench/out/ relative to the working directory
// (gitignored). CI runs the benches from the repo root, uploads bench/out/*
// uniformly as artifacts, and bench/baseline/ keeps one checked-in snapshot
// per bench for eyeballing drift.
#ifndef VOS_BENCH_BENCH_OUT_H_
#define VOS_BENCH_BENCH_OUT_H_

#include <filesystem>
#include <string>
#include <system_error>

namespace vos {

inline std::string BenchOutPath(const char* file) {
  std::error_code ec;
  std::filesystem::create_directories("bench/out", ec);
  // On failure (read-only cwd) fall back to the bare name so the bench still
  // produces its JSON somewhere rather than silently dropping it.
  return ec ? std::string(file) : std::string("bench/out/") + file;
}

}  // namespace vos

#endif  // VOS_BENCH_BENCH_OUT_H_
