// Figure 10: multicore scalability — FPS per app instance as a function of
// the number of CPU cores, for a multi-programmed workload (eight
// simultaneous mario instances) and a multi-threaded one (the blockchain
// miner's hash rate), plus the >95% utilization check.
#include "bench/bench_util.h"

namespace vos {
namespace {

// Eight marios at once: total frame marks across all instances / 8.
double MarioFleetFpsPerInstance(unsigned cores) {
  SystemOptions opt = OptionsForStage(Stage::kProto5);
  opt.cores = cores;
  System sys(opt);
  constexpr int kInstances = 8;
  std::vector<Pid> pids;
  for (int i = 0; i < kInstances; ++i) {
    pids.push_back(sys.Start("mario", {"--bench", "--frames", "100000"})->pid());
  }
  sys.Run(Sec(2));  // warm-up
  sys.kernel().trace().Clear();
  Cycles t0 = sys.board().clock().now();
  sys.Run(Sec(4));
  Cycles t1 = sys.board().clock().now();
  std::uint64_t frames = 0;
  for (const TraceRecord& r : sys.kernel().trace().DumpEvent(TraceEvent::kUserMark)) {
    frames += (r.a == 1 && r.ts >= t0 && r.ts <= t1);
  }
  // Utilization while saturated.
  double min_util = 1.0;
  for (unsigned c = 0; c < cores; ++c) {
    min_util = std::min(min_util, sys.kernel().machine().Utilization(c));
  }
  std::fprintf(stderr, "  mario x8 on %u core(s): min core utilization %.1f%%\n", cores,
               min_util * 100);
  for (Pid pid : pids) {
    sys.kernel().KillFromHost(pid);
  }
  sys.Run(Ms(200));
  return double(frames) / kInstances / ToSec(t1 - t0);
}

// Blockchain: hashes per virtual second with N worker threads.
double BlockchainHashRate(unsigned cores) {
  SystemOptions opt = OptionsForStage(Stage::kProto5);
  opt.cores = cores;
  System sys(opt);
  Cycles t0 = sys.board().clock().now();
  // High difficulty so it exhausts its budget (fixed hash count), then the
  // rate is budget / elapsed. One worker per core, as the paper's miner runs.
  std::int64_t rc = sys.RunProgram(
      "blockchain",
      {"--threads", std::to_string(cores), "--difficulty", "64", "--budget", "240000"},
      Sec(600));
  Cycles t1 = sys.board().clock().now();
  double hashes = ParseMetric(sys.SerialOutput(), "hashes=").value_or(0);
  (void)rc;
  return hashes / ToSec(t1 - t0);
}

void Run() {
  PrintHeader("Figure 10: FPS per app instance / hash rate vs number of cores");
  std::printf("%6s | %24s | %22s\n", "cores", "mario x8 FPS/instance", "blockchain hashes/s");
  double mario1 = 0, chain1 = 0;
  for (unsigned cores = 1; cores <= 4; ++cores) {
    double fps = MarioFleetFpsPerInstance(cores);
    double rate = BlockchainHashRate(cores);
    if (cores == 1) {
      mario1 = fps;
      chain1 = rate;
    }
    std::printf("%6u | %15.2f (%.2fx) | %14.0f (%.2fx)\n", cores, fps, fps / mario1, rate,
                rate / chain1);
  }
  std::printf("\npaper: both workloads grow ~proportionally with cores, utilization >95%%\n");
}

}  // namespace
}  // namespace vos

int main() {
  vos::Run();
  return 0;
}
