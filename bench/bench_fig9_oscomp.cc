// Figure 9: OS microbenchmarks across systems — ours vs xv6-armv8 vs
// Linux vs FreeBSD, normalized to ours = 1.0 (lower is better). The baseline
// systems run as controlled profiles of the same kernel: the xv6 profile uses
// a musl-like libc cost, a slower polled SD path and no range bypass; the
// production profiles enable COW fork, DMA SD transfers and glibc/BSD-libc
// costs with generic-kernel hot-path overheads (DESIGN.md §2).
#include <map>

#include "bench/bench_util.h"

namespace vos {
namespace {

struct BenchDef {
  const char* label;
  const char* program;
  std::vector<std::string> args;
  const char* metric;  // serial key, lower is better
};

const BenchDef kBenches[] = {
    {"getpid", "bench-getpid", {"--n", "3000"}, "getpid_ns "},
    {"sbrk", "bench-sbrk", {"--n", "1500"}, "sbrk_ns "},
    {"fork", "bench-fork", {"--n", "60", "--heap-kb", "512"}, "fork_ns "},
    {"exec", "bench-exec", {"--n", "30"}, "exec_ns "},
    {"ipc(pipe)", "bench-pipe", {"--n", "2000"}, "ipc_oneway_ns "},
    {"ctxsw", "bench-ctxsw", {"--n", "1500"}, "ctxsw_ns "},
    {"open/close", "bench-open", {"--n", "800"}, "openclose_ns "},
    {"md5sum", "bench-md5", {"--kb", "512"}, "md5_us "},
    {"qsort", "bench-qsort", {"--n", "150000"}, "qsort_us "},
    {"mmap", "bench-mmap", {"--n", "400"}, "mmap_ns "},
};

struct FileMetrics {
  double read_kbps = 0;
  double write_kbps = 0;
};

void Run() {
  PrintHeader("Figure 9: OS microbenchmarks, normalized to ours = 1.0 (lower is better)");
  const OsProfile profiles[] = {OsProfile::kOurs, OsProfile::kXv6, OsProfile::kLinux,
                                OsProfile::kFreebsd};
  std::map<std::string, std::map<int, double>> results;  // bench -> profile -> value

  for (OsProfile os : profiles) {
    std::fprintf(stderr, "running profile %s...\n", OsProfileName(os));
    SystemOptions opt = OptionsForStage(Stage::kProto5, Platform::kPi3, os);
    System sys(opt);
    for (const BenchDef& b : kBenches) {
      sys.RunProgram(b.program, b.args, Sec(1200));
      results[b.label][static_cast<int>(os)] =
          ParseMetric(sys.SerialOutput(), b.metric).value_or(0);
    }
    // File read/write on the FAT32/SD path (throughput: higher is better, so
    // store the inverse latency-per-KB to keep "lower is better").
    sys.RunProgram("bench-file", {"/d/f9.dat", "--kb", "384"}, Sec(1200));
    double r = ParseMetric(sys.SerialOutput(), "file_read_kbps ").value_or(1);
    double w = ParseMetric(sys.SerialOutput(), "file_write_kbps ").value_or(1);
    results["file read"][static_cast<int>(os)] = 1.0e6 / std::max(r, 1.0);
    results["file write"][static_cast<int>(os)] = 1.0e6 / std::max(w, 1.0);
  }

  std::printf("%-12s %8s %10s %10s %10s   %s\n", "benchmark", "ours", "xv6", "linux",
              "freebsd", "paper shape");
  auto shape = [](const std::string& name) {
    if (name == "fork") {
      return "production much faster (COW)";
    }
    if (name == "exec") {
      return "comparable (dominated by image load)";
    }
    if (name == "md5sum" || name == "qsort") {
      return "xv6 slower (musl)";
    }
    if (name == "file read" || name == "file write") {
      return "xv6 slower; production faster (DMA)";
    }
    return "comparable (0.5x-2x)";
  };
  const char* order[] = {"getpid", "sbrk",       "fork",      "exec",  "ipc(pipe)", "ctxsw",
                         "open/close", "file read", "file write", "md5sum", "qsort", "mmap"};
  for (const char* name : order) {
    auto& per = results[name];
    double ours = per[static_cast<int>(OsProfile::kOurs)];
    std::printf("%-12s %8.2f", name, 1.0);
    for (OsProfile os : {OsProfile::kXv6, OsProfile::kLinux, OsProfile::kFreebsd}) {
      double v = per[static_cast<int>(os)];
      std::printf(" %10.2f", ours > 0 ? v / ours : 0.0);
    }
    std::printf("   %s\n", shape(name));
  }
}

}  // namespace
}  // namespace vos

int main() {
  vos::Run();
  return 0;
}
