// Figure 12: measured device power and estimated battery life, broken down
// into the Pi3 board and the Game HAT (display + amplifier + power IC), for
// the idle shell prompt and the gaming workloads.
#include "bench/bench_util.h"

namespace vos {
namespace {

struct PowerRow {
  std::string name;
  double board_w;
  double hat_w;
  double total_w;
  double battery_h;
};

PowerRow MeasureWorkload(const std::string& name, const std::string& app,
                         const std::vector<std::string>& args) {
  SystemOptions opt = OptionsForStage(Stage::kProto5);
  System sys(opt);
  PowerMeter& pm = sys.board().power();
  Pid pid = 0;
  if (!app.empty()) {
    pid = sys.Start(app, args)->pid();
    sys.Run(Sec(1));  // reach steady state
  }
  pm.Reset();
  Cycles t0 = sys.board().clock().now();
  sys.Run(Sec(10));
  Cycles dur = sys.board().clock().now() - t0;
  // Fold in SD/audio activity windows the devices tracked themselves.
  pm.AddActive(PowerComponent::kHatAudio, sys.board().audio().active_time());
  PowerRow row;
  row.name = name;
  double secs = ToSec(dur);
  row.board_w = pm.BoardEnergyJ() / secs;
  row.hat_w = pm.HatEnergyJ() / secs;
  row.total_w = row.board_w + row.hat_w;
  row.battery_h = PowerMeter::BatteryHours(row.total_w);
  if (pid != 0) {
    sys.kernel().KillFromHost(pid);
    sys.Run(Ms(200));
  }
  return row;
}

void Run() {
  PrintHeader("Figure 12: device power and estimated battery life (18650, 3000 mAh 3.7 V)");
  std::vector<PowerRow> rows;
  rows.push_back(MeasureWorkload("shell prompt (idle)", "", {}));
  rows.push_back(MeasureWorkload("mario-sdl", "mario-sdl", {"--bench", "--frames", "100000"}));
  rows.push_back(
      MeasureWorkload("DOOM", "doomlike", {"--bench", "--frames", "100000"}));
  rows.push_back(MeasureWorkload("blockchain x4", "blockchain",
                                 {"--threads", "4", "--difficulty", "64", "--budget",
                                  "100000000"}));

  std::printf("%-22s %9s %9s %9s %11s\n", "workload", "board W", "HAT W", "total W",
              "battery h");
  for (const PowerRow& r : rows) {
    std::printf("%-22s %9.2f %9.2f %9.2f %11.2f\n", r.name.c_str(), r.board_w, r.hat_w,
                r.total_w, r.battery_h);
  }
  std::printf("\npaper: ~3 W at the shell prompt (~3.7 h); ~4 W under mario-sdl/DOOM (~2.6 h)\n");
}

}  // namespace
}  // namespace vos

int main() {
  vos::Run();
  return 0;
}
