// Ablations of the design choices §5.2 calls out (plus two from §4.5):
//  1. SIMD pixel conversion: the paper reports ~3x video framerate.
//  2. Buffer-cache bypass for FAT32 range I/O: 2-3x lower load latency.
//  3. ARMv8 assembly memmove for framebuffer blits.
//  4. WM dirty-rect composition vs full repaints.
//  5. Eager fork vs copy-on-write (the production-OS mechanism).
#include "bench/bench_util.h"
#include "src/wm/wm.h"

namespace vos {
namespace {

SystemOptions WithHook(std::function<void(KernelConfig&)> hook, bool media = false) {
  SystemOptions opt = OptionsForStage(Stage::kProto5);
  opt.config_hook = std::move(hook);
  if (media) {
    opt.with_media_assets = true;
    opt.media_video_w = 320;
    opt.media_video_h = 240;
    opt.media_video_frames = 16;
  }
  return opt;
}

double VideoFps(bool simd) {
  SystemOptions opt = OptionsForStage(Stage::kProto5);
  opt.config_hook = [simd](KernelConfig& kc) {
    kc.opt_simd_pixel = simd;
    kc.opt_asm_memcpy = simd;  // §5.2 ships both movement optimizations together
  };
  opt.with_media_assets = true;
  opt.media_video_w = 640;
  opt.media_video_h = 480;
  opt.media_video_frames = 16;
  opt.dram_size = MiB(96);
  System sys(opt);
  return MeasureAppFps(sys, "videoplayer",
                       {"/d/videos/clip480.vmv", "--bench", "--frames", "100000"}, Sec(8),
                       Sec(3))
      .fps;
}

double FatReadKbps(bool bypass) {
  System sys(WithHook([bypass](KernelConfig& kc) { kc.opt_bcache_bypass = bypass; }));
  // Large sequential reads, the DOOM-asset/video load path the optimization
  // targets (16 KB requests -> 32-block ranges vs block-by-block bcache).
  sys.RunProgram("bench-file", {"/d/abl.dat", "--kb", "512"}, Sec(1200));
  return ParseMetric(sys.SerialOutput(), "file_read_kbps ").value_or(1);
}

double MarioFps(bool asm_memcpy) {
  System sys(WithHook([asm_memcpy](KernelConfig& kc) { kc.opt_asm_memcpy = asm_memcpy; }));
  return MeasureAppFps(sys, "mario", {"--bench", "--frames", "100000"}).fps;
}

double WmBlendedPixelsPerFrame(bool dirty) {
  // sysmon updates a small window 4x/s while the WM composites at 60 Hz:
  // dirty tracking skips the quiet rounds entirely.
  System sys(WithHook([dirty](KernelConfig& kc) { kc.opt_wm_dirty_rects = dirty; }));
  Task* t = sys.Start("sysmon", {"100000"});
  sys.Run(Sec(4));
  double total = double(sys.kernel().wm()->stats().pixels_blended);
  sys.kernel().KillFromHost(t->pid());
  sys.Run(Ms(200));
  return total;
}

double ForkLatencyUs(bool cow) {
  System sys(WithHook([cow](KernelConfig& kc) { kc.cow_fork = cow; }));
  sys.RunProgram("bench-fork", {"--n", "60", "--heap-kb", "512"}, Sec(1200));
  return ParseMetric(sys.SerialOutput(), "fork_ns ").value_or(0) / 1000.0;
}

void Run() {
  PrintHeader("Ablations of the paper's design choices (§5.2 and §4.5)");

  double simd_on = VideoFps(true), simd_off = VideoFps(false);
  std::printf("1. SIMD conv + asm move: %5.2f FPS vs %6.2f FPS scalar  (%.2fx; paper ~3x,\n"
              "                        \"from under 10 FPS to around 30\" for 480p video)\n",
              simd_on, simd_off, simd_on / simd_off);

  double byp_on = FatReadKbps(true), byp_off = FatReadKbps(false);
  std::printf("2. bcache range bypass: %6.0f KB/s vs %6.0f KB/s reads      (%.2fx; paper 2-3x)\n",
              byp_on, byp_off, byp_on / byp_off);

  double asm_on = MarioFps(true), asm_off = MarioFps(false);
  std::printf("3. asm memmove:         %6.2f FPS vs %6.2f FPS C loop   (%.2fx)\n", asm_on,
              asm_off, asm_on / asm_off);

  double dirty_on = WmBlendedPixelsPerFrame(true), dirty_off = WmBlendedPixelsPerFrame(false);
  std::printf("4. WM dirty rects:      %6.2f Mpx vs %6.2f Mpx blended over 4 s (%.0fx)\n",
              dirty_on / 1e6, dirty_off / 1e6, dirty_off / std::max(dirty_on, 1.0));

  double eager = ForkLatencyUs(false), cow = ForkLatencyUs(true);
  std::printf("5. fork: eager copy %7.1f us vs COW %7.1f us (%.1fx; why Fig 9's fork row\n"
              "   favors the production kernels)\n",
              eager, cow, eager / std::max(cow, 1.0));
}

}  // namespace
}  // namespace vos

int main() {
  vos::Run();
  return 0;
}
