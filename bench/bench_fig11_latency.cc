// Figure 11: latency breakdowns.
// (a) Rendering latency per frame, attributed to kernel (K) / user app (U) /
//     user library (L) time — app logic dominates; the kernel is small.
// (b) Input latency: a USB key event traced from the driver IRQ to the app's
//     event loop, frame rate capped at 60 FPS; the event indirection of
//     mario-proc (pipe IPC) and mario-sdl (window manager) shows up.
#include "bench/bench_util.h"
#include "src/wm/wm.h"

namespace vos {
namespace {

struct Breakdown {
  double k_ms = 0, u_ms = 0, l_ms = 0;
  double frames = 0;
};

Breakdown RenderBreakdown(const std::string& app, std::vector<std::string> args,
                          bool media_assets = false) {
  SystemOptions opt = OptionsForStage(Stage::kProto5);
  if (media_assets) {
    opt.with_media_assets = true;
    opt.media_video_w = 640;
    opt.media_video_h = 480;
    opt.media_video_frames = 16;
    opt.dram_size = MiB(96);
  }
  System sys(opt);
  Task* t = sys.Start(app, args);
  sys.Run(Sec(2));  // warm-up
  Cycles k0 = t->time_by_domain[static_cast<int>(TimeDomain::kKernel)];
  Cycles u0 = t->time_by_domain[static_cast<int>(TimeDomain::kUser)];
  Cycles l0 = t->time_by_domain[static_cast<int>(TimeDomain::kUserLib)];
  sys.kernel().trace().Clear();
  Cycles t0 = sys.board().clock().now();
  sys.Run(Sec(4));
  Cycles t1 = sys.board().clock().now();
  std::uint64_t frames = 0;
  for (const TraceRecord& r : sys.kernel().trace().DumpEvent(TraceEvent::kUserMark)) {
    frames += (r.a == 1 && r.ts >= t0 && r.ts <= t1);
  }
  Breakdown b;
  if (frames > 0) {
    double inv = 1.0 / double(frames);
    b.k_ms = ToMs(t->time_by_domain[0] - k0) * inv;
    b.u_ms = ToMs(t->time_by_domain[1] - u0) * inv;
    b.l_ms = ToMs(t->time_by_domain[2] - l0) * inv;
    b.frames = double(frames);
  }
  sys.kernel().KillFromHost(t->pid());
  sys.Run(Ms(200));
  return b;
}

// Input latency: inject keys while the app runs capped at ~60 FPS; measure
// driver-push -> app-seen deltas from the trace (kKeyEvent b==0 at driver
// [time_ms stamp], b==2 when the app consumed it).
MeanStd InputLatency(const std::string& app, std::vector<std::string> args) {
  SystemOptions opt = OptionsForStage(Stage::kProto5);
  System sys(opt);
  Task* t = sys.Start(app, args);
  sys.Run(Sec(2));
  std::vector<double> samples;
  for (int i = 0; i < 25; ++i) {
    sys.kernel().trace().Clear();
    std::uint8_t key = (i % 2) ? kHidRight : kHidLeft;
    sys.KeyDown(key);
    // The driver stamps the KeyEvent with its kernel timestamp; the app
    // traces when its loop sees it.
    sys.Run(Ms(60));
    sys.KeyUp(key);
    sys.Run(Ms(40));
    auto recs = sys.kernel().trace().DumpEvent(TraceEvent::kKeyEvent);
    // First app-seen record after the injection.
    std::optional<Cycles> seen;
    for (const TraceRecord& r : recs) {
      if (r.b == 2) {
        seen = r.ts;
        break;
      }
    }
    // The USB driver's push time: reconstruct from irq trace (first kIrqEnter
    // with a==kIrqUsb after injection start of this window).
    std::optional<Cycles> pushed;
    for (const TraceRecord& r : sys.kernel().trace().DumpEvent(TraceEvent::kIrqEnter)) {
      if (r.a == kIrqUsb) {
        pushed = r.ts;
        break;
      }
    }
    if (seen && pushed && *seen > *pushed) {
      samples.push_back(ToMs(*seen - *pushed));
    }
  }
  sys.kernel().KillFromHost(t->pid());
  sys.Run(Ms(200));
  return Stats(samples);
}

void Run() {
  PrintHeader("Figure 11(a): rendering latency breakdown per frame (ms)");
  struct {
    const char* name;
    Breakdown b;
  } rows[] = {
      {"DOOM", RenderBreakdown("doomlike", {"--bench", "--frames", "100000"})},
      {"video (480p)",
       RenderBreakdown("videoplayer", {"/d/videos/clip480.vmv", "--bench", "--frames",
                                       "100000"}, /*media=*/true)},
      {"mario-noinput", RenderBreakdown("mario", {"--bench", "--frames", "100000"})},
      {"mario-proc", RenderBreakdown("mario-proc", {"--bench", "--frames", "100000"})},
      {"mario-sdl", RenderBreakdown("mario-sdl", {"--bench", "--frames", "100000"})},
  };
  std::printf("%-15s %9s %9s %9s %9s\n", "app", "K (ms)", "U (ms)", "L (ms)", "total");
  for (const auto& r : rows) {
    std::printf("%-15s %9.2f %9.2f %9.2f %9.2f\n", r.name, r.b.k_ms, r.b.u_ms, r.b.l_ms,
                r.b.k_ms + r.b.u_ms + r.b.l_ms);
  }
  std::printf("paper shape: app logic (U) dominates; kernel (K) small; mario-sdl's L/U\n"
              "inflated by the full C library (§6.3).\n");

  PrintHeader("Figure 11(b): input latency, driver IRQ -> app event loop (ms, 60 FPS cap)");
  struct {
    const char* name;
    MeanStd m;
  } input_rows[] = {
      {"DOOM (direct poll)", InputLatency("doomlike", {"--frames", "100000"})},
      {"mario-proc (pipe IPC)", InputLatency("mario-proc", {"--frames", "100000"})},
      {"mario-sdl (WM route)", InputLatency("mario-sdl", {"--frames", "100000"})},
  };
  for (const auto& r : input_rows) {
    std::printf("%-24s %7.2f +- %5.2f ms\n", r.name, r.m.mean, r.m.stddev);
  }
  std::printf(
      "paper shape: 1-2 game frames (16-33 ms) end to end, dominated by the apps'\n"
      "polling intervals; the WM route (mario-sdl) carries the largest indirection\n"
      "cost. Exact ordering between the direct-poll and pipe variants is sensitive\n"
      "to loop phase relative to the USB 8 ms frame polling.\n");
}

}  // namespace
}  // namespace vos

int main() {
  vos::Run();
  return 0;
}
