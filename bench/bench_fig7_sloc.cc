// Figure 7: source code analysis — kernel SLoC per prototype broken down by
// subsystem, and app SLoC per prototype. Computed by scanning this repo and
// classifying each source file against the Table-1 feature matrix (the stage
// at which the subsystem first appears).
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "src/kernel/kconfig.h"

namespace vos {
namespace {

namespace fs = std::filesystem;

// Counts non-blank, non-pure-comment lines.
int Sloc(const fs::path& p) {
  std::ifstream in(p);
  std::string line;
  int n = 0;
  while (std::getline(in, line)) {
    std::size_t i = line.find_first_not_of(" \t");
    if (i == std::string::npos) {
      continue;
    }
    if (line.compare(i, 2, "//") == 0) {
      continue;
    }
    ++n;
  }
  return n;
}

struct Subsystem {
  const char* name;
  int stage;  // prototype that introduces it
  std::vector<const char*> files;  // path substrings, matched against src/
};

// The kernel-side feature matrix (Table 1 rows mapped to our modules).
const Subsystem kKernelSubsystems[] = {
    {"core (boot,irq,timekeeping,debug-msg)", 1,
     {"hw/clock", "hw/event_queue", "hw/intc", "hw/sys_timer", "kernel/klog",
      "kernel/kconfig", "kernel/machine", "kernel/spinlock", "kernel/timer"}},
    {"framebuffer + mailbox", 1, {"hw/framebuffer_hw", "hw/mailbox", "hw/cache_model"}},
    {"uart", 1, {"hw/uart"}},
    {"board + memory", 1, {"hw/board", "hw/phys_mem", "hw/power_meter"}},
    {"multitasking + scheduler", 2, {"kernel/task", "kernel/sched"}},
    {"page allocator", 2, {"kernel/pmm"}},
    {"virtual memory + privileges", 3, {"kernel/vm"}},
    {"syscalls + exec", 3, {"kernel/syscall", "kernel/velf", "kernel/kernel"}},
    {"file abstraction + vfs", 4, {"fs/vfs", "fs/devfs", "fs/procfs"}},
    {"xv6fs + ramdisk + bcache + fsck", 4,
     {"fs/xv6fs", "fs/bcache", "fs/block_dev", "fs/fsimage", "fs/fsck"}},
    {"kmalloc", 4, {"kernel/kmalloc"}},
    {"usb stack (hid + mass storage)", 4, {"hw/usb_hw", "hw/usb_msc"}},
    {"sound (PWM + DMA)", 4, {"hw/audio_pwm", "hw/dma"}},
    {"gpio (HAT buttons)", 4, {"hw/gpio"}},
    {"pipes + semaphores", 4, {"kernel/pipe", "kernel/semaphore"}},
    {"drivers (console,fb,usb,sd,audio)", 4, {"kernel/drivers"}},
    {"fat32 + sd card", 5, {"fs/fat32", "hw/sd_card"}},
    {"window manager", 5, {"wm/"}},
    {"self-hosted debugging", 4, {"kernel/trace", "kernel/debug_monitor", "kernel/unwind"}},
};

const Subsystem kAppTiers[] = {
    {"proto1: donut + hello", 1, {"apps/donut", "apps/hello"}},
    {"proto3: mario engine", 3, {"apps/mario"}},
    {"proto3: userlib (syscall wrappers, malloc, strings)", 3,
     {"ulib/usys", "ulib/umalloc", "ulib/ustdio", "ulib/crt"}},
    {"proto4: shell + utilities", 4, {"apps/shell", "apps/coreutils", "apps/microbench"}},
    {"proto4: slider + buzzer + musicplayer", 4,
     {"apps/slider", "apps/buzzer", "apps/musicplayer"}},
    {"proto4: devfs/procfs wrappers + images", 4,
     {"ulib/bmp", "ulib/pnglite", "ulib/giflite", "ulib/font8x8", "ulib/console"}},
    {"proto5: minisdl + pixel kernels", 5, {"ulib/minisdl", "ulib/pixel"}},
    {"proto5: DOOM + video + blockchain + launcher + sysmon + term", 5,
     {"apps/doomlike", "apps/videoplayer", "apps/blockchain", "apps/launcher",
      "apps/sysmon", "apps/term"}},
    {"proto5: litenes (6502 core + assembler + console)", 5,
     {"apps/cpu6502", "apps/litenes"}},
    {"proto5: media codecs (vmv, vog, wav)", 5, {"media/"}},
};

fs::path FindRepoRoot() {
  fs::path p = fs::current_path();
  for (int up = 0; up < 6; ++up) {
    if (fs::exists(p / "src" / "kernel" / "kernel.cc")) {
      return p;
    }
    p = p.parent_path();
  }
  return fs::current_path();
}

int CountSubsystem(const fs::path& root, const Subsystem& s) {
  int total = 0;
  for (auto& entry : fs::recursive_directory_iterator(root / "src")) {
    if (!entry.is_regular_file()) {
      continue;
    }
    std::string rel = fs::relative(entry.path(), root / "src").string();
    std::string ext = entry.path().extension().string();
    if (ext != ".cc" && ext != ".h") {
      continue;
    }
    for (const char* pat : s.files) {
      if (rel.rfind(pat, 0) == 0) {
        total += Sloc(entry.path());
        break;
      }
    }
  }
  return total;
}

void Run() {
  fs::path root = FindRepoRoot();
  std::printf("Figure 7 (left): kernel SLoC by prototype and subsystem (repo: %s)\n",
              root.string().c_str());
  int cumulative[6] = {};
  std::printf("%-44s %6s %6s\n", "subsystem", "stage", "SLoC");
  for (const Subsystem& s : kKernelSubsystems) {
    int n = CountSubsystem(root, s);
    std::printf("%-44s %6d %6d\n", s.name, s.stage, n);
    for (int st = s.stage; st <= 5; ++st) {
      cumulative[st] += n;
    }
  }
  std::printf("\ncumulative kernel SLoC per prototype:\n");
  for (int st = 1; st <= 5; ++st) {
    std::printf("  proto%d: %6d\n", st, cumulative[st]);
  }
  std::printf("paper: ~2.5K (proto1) to ~33K (proto5, mostly FAT32+USB); core stays small\n");

  std::printf("\nFigure 7 (right): app + userlib SLoC by prototype tier\n");
  int app_cumulative[6] = {};
  for (const Subsystem& s : kAppTiers) {
    int n = CountSubsystem(root, s);
    std::printf("%-56s %6d\n", s.name, n);
    for (int st = s.stage; st <= 5; ++st) {
      app_cumulative[st] += n;
    }
  }
  std::printf("\ncumulative app SLoC per prototype:\n");
  for (int st = 1; st <= 5; ++st) {
    std::printf("  proto%d: %6d\n", st, app_cumulative[st]);
  }
  std::printf("paper: ~260 (proto1) to ~76K apps + ~770K userlib (proto5; newlib/SDL bulk —\n"
              "our from-scratch substitutes are far smaller by design, see DESIGN.md)\n");
}

}  // namespace
}  // namespace vos

int main() {
  vos::Run();
  return 0;
}
