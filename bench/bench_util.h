// Shared helpers for the per-table/figure benchmark binaries: statistics,
// table formatting, serial-output metric parsing, and the FPS measurement
// harness (warm-up then measure, counting the apps' frame marks — the
// methodology of §6.3).
#ifndef VOS_BENCH_BENCH_UTIL_H_
#define VOS_BENCH_BENCH_UTIL_H_

#include <cmath>
#include <cstdio>
#include <numeric>
#include <optional>
#include <string>
#include <vector>

#include "src/vos/prototypes.h"
#include "src/vos/system.h"

namespace vos {

struct MeanStd {
  double mean = 0;
  double stddev = 0;
};

inline MeanStd Stats(const std::vector<double>& xs) {
  MeanStd out;
  if (xs.empty()) {
    return out;
  }
  out.mean = std::accumulate(xs.begin(), xs.end(), 0.0) / double(xs.size());
  double var = 0;
  for (double x : xs) {
    var += (x - out.mean) * (x - out.mean);
  }
  out.stddev = xs.size() > 1 ? std::sqrt(var / double(xs.size() - 1)) : 0.0;
  return out;
}

// Parses "key value" lines from the serial console (what the in-OS
// microbenchmark programs print). Returns the LAST occurrence.
inline std::optional<double> ParseMetric(const std::string& serial, const std::string& key) {
  std::optional<double> found;
  std::size_t pos = 0;
  while ((pos = serial.find(key, pos)) != std::string::npos) {
    std::size_t vstart = pos + key.size();
    found = std::atof(serial.c_str() + vstart);
    pos = vstart;
  }
  return found;
}

// Runs one app to completion (bench mode), measuring FPS from its frame
// marks after a warm-up window — the paper measures "after a 20-second
// warm-up"; we scale the horizon down since virtual time is deterministic.
struct FpsResult {
  double fps = 0;
  std::uint64_t frames = 0;
};

inline FpsResult MeasureAppFps(System& sys, const std::string& app,
                               std::vector<std::string> args, Cycles warmup = Sec(2),
                               Cycles measure = Sec(4)) {
  sys.kernel().trace().Clear();
  Task* t = sys.Start(app, args);
  Pid pid = t->pid();
  sys.Run(warmup);
  Cycles t0 = sys.board().clock().now();
  sys.kernel().trace().Clear();  // drop warm-up frames
  sys.Run(measure);
  Cycles t1 = sys.board().clock().now();
  std::uint64_t frames = 0;
  for (const TraceRecord& r : sys.kernel().trace().DumpEvent(TraceEvent::kUserMark)) {
    frames += (r.a == 1 && r.ts >= t0 && r.ts <= t1);
  }
  // Stop the app and reap it so the next run starts clean.
  sys.kernel().KillFromHost(pid);
  sys.Run(Ms(300));
  if (Task* cur = sys.kernel().FindTask(pid)) {
    if (cur->state == TaskState::kZombie) {
      sys.kernel().ReapZombie(pid);
    }
  }
  FpsResult out;
  out.frames = frames;
  out.fps = ToSec(t1 - t0) > 0 ? double(frames) / ToSec(t1 - t0) : 0;
  return out;
}

// Mean +- std over `runs` fresh systems.
inline MeanStd MeasureFpsRuns(const SystemOptions& opt, const std::string& app,
                              const std::vector<std::string>& args, int runs = 3,
                              Cycles warmup = Sec(2), Cycles measure = Sec(4)) {
  std::vector<double> fps;
  for (int i = 0; i < runs; ++i) {
    System sys(opt);
    fps.push_back(MeasureAppFps(sys, app, args, warmup, measure).fps);
  }
  return Stats(fps);
}

inline void PrintHeader(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n");
}

}  // namespace vos

#endif  // VOS_BENCH_BENCH_UTIL_H_
