// Trace-ring emit benchmark: the PR 4 lock-free per-core seqlock ring vs the
// seed's single global ring (SpinLock + RingBuffer::PushOverwrite, inlined
// below as it shipped, lockdep bookkeeping and all — that IS the old hot
// path's cost). Two experiments:
//
//  1. Single-core ns/event and events/sec, locked vs lock-free. The
//     acceptance bar for the rework is speedup_1core >= 5 (CI asserts it
//     from BENCH_trace.json).
//  2. Scaling at 1..4 host threads (one per simulated core). The kernel's
//     SpinLock is not host-thread-safe (the simulator serializes execution),
//     so the contended baseline uses std::mutex — the fair stand-in for
//     "one shared ring behind one lock". The per-core rings scale near
//     linearly; the shared ring's throughput collapses under contention.
//
// Results land in BENCH_trace.json; CI smoke-runs this and archives it.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <thread>
#include <vector>

#include "bench/bench_out.h"
#include "src/base/ring_buffer.h"
#include "src/kernel/lockdep.h"
#include "src/kernel/spinlock.h"
#include "src/kernel/trace.h"

namespace vos {
namespace {

constexpr std::uint64_t kEmitsPerThread = 400'000;
constexpr std::size_t kCap = 16384;

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// --- The seed's TraceRing, inlined: one ring, one spinlock ----------------

class LockedTraceRing {
 public:
  explicit LockedTraceRing(std::size_t capacity) {
    for (int i = 0; i < 4; ++i) {
      rings_.emplace_back(capacity);
    }
  }

  void Emit(Cycles ts, unsigned core, TraceEvent ev, std::int32_t pid, std::uint64_t a,
            std::uint64_t b) {
    SpinGuard g(lock_);
    rings_[core].PushOverwrite(TraceRecord{ts, static_cast<std::uint16_t>(core), ev, pid, a, b});
    ++emitted_;
  }

 private:
  SpinLock lock_{"trace"};
  std::vector<RingBuffer<TraceRecord>> rings_;
  std::uint64_t emitted_ = 0;
};

struct Rate {
  double ns_per_event = 0;
  double events_per_sec = 0;
};

template <typename EmitFn>
Rate Measure(std::uint64_t n, EmitFn emit) {
  // Warm-up, then best of three runs (min wall time rejects scheduler noise).
  for (std::uint64_t i = 0; i < n / 10; ++i) {
    emit(i);
  }
  double best = 1e30;
  for (int rep = 0; rep < 3; ++rep) {
    const double t0 = Now();
    for (std::uint64_t i = 0; i < n; ++i) {
      emit(i);
    }
    const double dt = Now() - t0;
    best = dt < best ? dt : best;
  }
  return {best * 1e9 / double(n), double(n) / best};
}

// Throughput with `threads` producers, each hammering its own core id.
template <typename MakeEmitFn>
double MeasureThreaded(int threads, MakeEmitFn make_emit) {
  std::vector<std::thread> ts;
  const double t0 = Now();
  for (int c = 0; c < threads; ++c) {
    ts.emplace_back([c, &make_emit] {
      auto emit = make_emit(static_cast<unsigned>(c));
      for (std::uint64_t i = 0; i < kEmitsPerThread; ++i) {
        emit(i);
      }
    });
  }
  for (std::thread& t : ts) {
    t.join();
  }
  const double dt = Now() - t0;
  return double(threads) * double(kEmitsPerThread) / dt;
}

void Run() {
  // The locked baseline pays for lockdep exactly like the old kernel did.
  Lockdep::Instance().Reset();
  Lockdep::Instance().SetEnabled(true);

  LockedTraceRing locked(kCap);
  Rate locked_rate = Measure(kEmitsPerThread, [&locked](std::uint64_t i) {
    locked.Emit(Cycles(i), 0, TraceEvent::kUserMark, 1, i, 0);
  });

  TraceRing ring(/*enabled=*/true, kCap);
  Rate lockfree_rate = Measure(kEmitsPerThread, [&ring](std::uint64_t i) {
    ring.Emit(Cycles(i), 0, TraceEvent::kUserMark, 1, i, 0);
  });

  const double speedup = locked_rate.ns_per_event / lockfree_rate.ns_per_event;
  std::printf("single core, %llu emits:\n",
              static_cast<unsigned long long>(kEmitsPerThread));
  std::printf("  locked   %7.1f ns/event  %12.0f events/s\n", locked_rate.ns_per_event,
              locked_rate.events_per_sec);
  std::printf("  lockfree %7.1f ns/event  %12.0f events/s\n", lockfree_rate.ns_per_event,
              lockfree_rate.events_per_sec);
  std::printf("  speedup  %.1fx\n\n", speedup);

  // Contended scaling: per-core rings vs one mutex-guarded ring.
  std::printf("%-8s %16s %16s\n", "threads", "lockfree ev/s", "mutex ev/s");
  double lockfree_eps[4] = {};
  double mutex_eps[4] = {};
  for (int t = 1; t <= 4; ++t) {
    TraceRing mt_ring(true, kCap);
    lockfree_eps[t - 1] = MeasureThreaded(t, [&mt_ring](unsigned core) {
      return [&mt_ring, core](std::uint64_t i) {
        mt_ring.Emit(Cycles(i), core, TraceEvent::kUserMark, 1, i, 0);
      };
    });

    std::mutex mu;
    RingBuffer<TraceRecord> shared(kCap);
    mutex_eps[t - 1] = MeasureThreaded(t, [&mu, &shared](unsigned core) {
      return [&mu, &shared, core](std::uint64_t i) {
        std::lock_guard<std::mutex> g(mu);
        shared.PushOverwrite(
            TraceRecord{Cycles(i), static_cast<std::uint16_t>(core), TraceEvent::kUserMark, 1, i, 0});
      };
    });
    std::printf("%-8d %16.0f %16.0f\n", t, lockfree_eps[t - 1], mutex_eps[t - 1]);
  }

  std::ofstream json(BenchOutPath("BENCH_trace.json"));
  json << "{\n"
       << "  \"emits\": " << kEmitsPerThread << ",\n"
       << "  \"locked_ns_per_event\": " << locked_rate.ns_per_event << ",\n"
       << "  \"lockfree_ns_per_event\": " << lockfree_rate.ns_per_event << ",\n"
       << "  \"locked_events_per_sec\": " << locked_rate.events_per_sec << ",\n"
       << "  \"lockfree_events_per_sec\": " << lockfree_rate.events_per_sec << ",\n"
       << "  \"speedup_1core\": " << speedup << ",\n"
       << "  \"scaling\": {\n";
  for (int t = 1; t <= 4; ++t) {
    json << "    \"threads_" << t << "\": { \"lockfree_events_per_sec\": " << lockfree_eps[t - 1]
         << ", \"mutex_events_per_sec\": " << mutex_eps[t - 1] << " }" << (t < 4 ? "," : "")
         << "\n";
  }
  json << "  }\n}\n";
  std::printf("\nwrote bench/out/BENCH_trace.json\n");
}

}  // namespace
}  // namespace vos

int main() {
  vos::Run();
  return 0;
}
