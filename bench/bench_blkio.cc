// Block I/O path benchmark: repeated 4 KB writes, sequential vs random,
// with the write-back bcache vs xv6-style write-through. Two levels:
//
//  1. Cache level — Bcache directly over the SD model, so the elevator +
//     merge effect of the request queue is visible in isolation. The
//     workload rewrites a small working set (the "edit a config file in a
//     loop" pattern); write-back absorbs the rewrites in DRAM and pays the
//     device only on throttle/flush, in LBA-sorted merged bursts.
//  2. OS level — a user program issuing 4 KB writes through open/lseek/
//     write/fsync on the FAT32 SD volume, with /proc/blkstat counters
//     after the run (hits/writebacks/merged end to end).
//  3. Metadata-op storm — a create/unlink/fsync-heavy workload on xv6fs
//     comparing journal-off synchronous writes, per-transaction journal
//     commits, and group commit. This is the write-ahead journal's headline
//     number: group commit turns every op's scattered metadata updates into
//     one sequential log record per durability point.
//
// Results land in bench/out/BENCH_blkio.json (CI asserts the group-commit
// speedup and uploads the JSON as an artifact).
#include <cstring>
#include <fstream>

#include "bench/bench_out.h"
#include "bench/bench_util.h"
#include "src/fs/bcache.h"
#include "src/fs/journal.h"
#include "src/fs/xv6fs.h"
#include "src/ulib/usys.h"
#include "src/ulib/ustdio.h"

namespace vos {
namespace {

constexpr std::uint32_t kChunkBlocks = 4096 / kBlockSize;  // 4 KB = 8 blocks

// Deterministic xorshift so "random" order is reproducible run to run.
std::uint64_t NextRand(std::uint64_t* s) {
  *s ^= *s << 13;
  *s ^= *s >> 7;
  *s ^= *s << 17;
  return *s;
}

struct CacheResult {
  double ms = 0;  // virtual time burned by the writer (+ final flush)
  BlockDevStats stats;
};

// `passes` rewrites of a `chunks`-chunk working set, one 4 KB chunk per
// write, through the cached single-block path (what Xv6Fs::Writei does).
CacheResult CacheLevel(bool writeback, bool sequential, int chunks, int passes) {
  KernelConfig cfg;
  cfg.opt_writeback_cache = writeback;
  SdCard card(MiB(8));
  card.CmdGoIdle();
  card.CmdSendIfCond(0x1aa);
  while (!(card.state() == SdCard::State::kIdent || card.ready())) {
    card.AcmdSendOpCond();
  }
  card.CmdAllSendCid();
  std::uint16_t rca = 0;
  card.CmdSendRelativeAddr(&rca);
  card.CmdSelectCard(rca);
  SdBlockDevice sd(card, 0, card.capacity_blocks(), /*use_dma=*/false);
  Bcache bc(cfg);
  int dev = bc.AddDevice(&sd, "sd");
  Cycles now = 0;  // fake clock: the burn total doubles as "now" for aging
  bc.SetNowFn([&now] { return now; });

  std::vector<int> order(static_cast<std::size_t>(chunks));
  std::uint64_t seed = 0x9e3779b97f4a7c15ull;
  std::vector<std::uint8_t> payload(4096);
  Cycles total = 0;
  for (int p = 0; p < passes; ++p) {
    for (int i = 0; i < chunks; ++i) {
      order[static_cast<std::size_t>(i)] = i;
    }
    if (!sequential) {
      for (int i = chunks - 1; i > 0; --i) {
        std::swap(order[static_cast<std::size_t>(i)],
                  order[NextRand(&seed) % static_cast<std::uint64_t>(i + 1)]);
      }
    }
    std::memset(payload.data(), p + 1, payload.size());
    for (int c : order) {
      for (std::uint32_t k = 0; k < kChunkBlocks; ++k) {
        Cycles burn = 0;
        Buf* b = bc.Read(dev, std::uint64_t(c) * kChunkBlocks + k, &burn);
        std::copy(payload.begin() + k * kBlockSize,
                  payload.begin() + (k + 1) * kBlockSize, b->data.begin());
        Cycles w = 0;
        bc.Write(b, &w);
        bc.Release(b);
        total += burn + w;
        now = total;
      }
    }
  }
  total += bc.FlushAll();  // durability: both configs end with the disk current
  CacheResult out;
  out.ms = ToSec(total) * 1e3;
  out.stats = bc.stats(dev);
  return out;
}

void PrintCacheRow(const char* label, const CacheResult& wb, const CacheResult& wt) {
  std::printf("%-18s %8.2f ms %8.2f ms  %5.2fx   %5llu %9llu %7llu\n", label, wb.ms,
              wt.ms, wt.ms / std::max(wb.ms, 1e-9),
              static_cast<unsigned long long>(wb.stats.hits),
              static_cast<unsigned long long>(wb.stats.writebacks),
              static_cast<unsigned long long>(wb.stats.merged));
}

// OS-level workload: `passes` rewrite passes of 4 KB writes over a 64 KB
// file on the FAT32 SD volume, fsync at the end, report virtual wall time.
int Blkio4kApp(AppEnv& env) {
  constexpr int kChunks = 16;
  constexpr int kPasses = 6;
  bool random = env.argv.size() > 1 && env.argv[1] == "--random";
  std::vector<std::uint8_t> buf(4096);
  std::int64_t fd = uopen(env, "/d/blkio.dat", kOWronly | kOCreate | kOTrunc);
  if (fd < 0) {
    uprintf(env, "blkio4k: cannot create /d/blkio.dat\n");
    return 1;
  }
  std::uint64_t seed = 0x2545f4914f6cdd1dull;
  Cycles start = env.kernel->Now();
  for (int p = 0; p < kPasses; ++p) {
    std::memset(buf.data(), p + 1, buf.size());
    for (int i = 0; i < kChunks; ++i) {
      // Pass 0 is always sequential so the file reaches full size before
      // random passes seek around in it.
      std::int64_t c =
          random && p > 0 ? std::int64_t(NextRand(&seed) % kChunks) : i;
      if (ulseek(env, static_cast<int>(fd), c * 4096, 0) < 0 ||
          uwrite(env, static_cast<int>(fd), buf.data(), 4096) != 4096) {
        return 1;
      }
    }
  }
  if (ufsync(env, static_cast<int>(fd)) != 0) {
    return 1;
  }
  Cycles dur = env.kernel->Now() - start;
  uclose(env, static_cast<int>(fd));
  uunlink(env, "/d/blkio.dat");
  uprintf(env, "blkio_us %llu\n", static_cast<unsigned long long>(ToUs(dur)));
  return 0;
}

// --- Metadata-op storm -------------------------------------------------------

enum class MetaMode {
  kSync,         // no journal, write-through cache: every update hits the disk
  kJournal,      // journal on, group commit off: one record per transaction
  kGroupCommit,  // journal on, group commit on: one record per fsync batch
};

struct MetaResult {
  double ms = 0;
  double ops_per_sec = 0;
  std::uint64_t ops = 0;
  std::uint64_t commits = 0;
  std::uint64_t blocks_logged = 0;
  std::uint64_t coalesced = 0;
};

// `files` create+write pairs with an fsync every 4th op and an unlink of an
// older file per fsync window — the "untar a source tree / build churn"
// pattern. Identical op sequence for all three modes; only the durability
// mechanism differs. Virtual time includes a final drain/flush so every mode
// ends with the disk fully current.
MetaResult MetaStorm(MetaMode mode, int files) {
  KernelConfig cfg;
  cfg.jrnl_group_commit = mode == MetaMode::kGroupCommit;
  if (mode == MetaMode::kSync) {
    cfg.opt_writeback_cache = false;  // xv6-style synchronous metadata writes
  }
  std::uint32_t nlog = mode == MetaMode::kSync ? 0 : kJrnlDefaultLogBlocks;
  // SD-backed so the command overhead per transfer is realistic: synchronous
  // scattered metadata writes pay it per block, the journal amortizes it over
  // one sequential ranged write per commit.
  SdCard card(MiB(8));
  card.CmdGoIdle();
  card.CmdSendIfCond(0x1aa);
  while (!(card.state() == SdCard::State::kIdent || card.ready())) {
    card.AcmdSendOpCond();
  }
  card.CmdAllSendCid();
  std::uint16_t rca = 0;
  card.CmdSendRelativeAddr(&rca);
  card.CmdSelectCard(rca);
  SdBlockDevice disk(card, 0, card.capacity_blocks(), /*use_dma=*/false);
  std::vector<std::uint8_t> img = Xv6Fs::Mkfs(1024, 128, nlog);
  disk.Write(0, img.size() / kBlockSize, img.data());
  Bcache bc(cfg);
  int dev = bc.AddDevice(&disk, "meta");
  Xv6Fs fs(bc, dev, cfg);
  Journal jrnl(bc, dev, cfg);
  Cycles total = 0;
  Cycles burn = 0;
  if (fs.Mount(&burn) != 0) {
    return {};
  }
  if (mode != MetaMode::kSync) {
    if (jrnl.Init(fs.sb(), &burn) != 0 || !jrnl.active()) {
      return {};
    }
    fs.AttachJournal(&jrnl);
  }
  MetaResult out;
  std::vector<std::uint8_t> payload(256, 'm');
  for (int i = 0; i < files; ++i) {
    Cycles b = 0;
    std::string path = "/m" + std::to_string(i);
    std::int64_t err = 0;
    Xv6InodePtr ip = fs.Create(path, kXv6TFile, 0, 0, &err, &b);
    if (ip == nullptr) {
      return {};
    }
    fs.Writei(*ip, payload.data(), 0, std::uint32_t(payload.size()), &b);
    out.ops += 2;  // create + write
    if (i % 4 == 3) {
      // Reclaim one older file, then make the whole window durable.
      fs.Unlink("/m" + std::to_string(i - 3), &b);
      std::int64_t s = mode == MetaMode::kSync ? 0 : fs.SyncJournal(&b);
      if (mode == MetaMode::kSync) {
        b += bc.FlushDev(dev);  // nothing dirty in write-through: a no-op
      }
      if (s != 0) {
        return {};
      }
      out.ops += 2;  // unlink + fsync
    }
    total += b;
  }
  Cycles b = 0;
  if (mode != MetaMode::kSync && fs.DrainJournal(&b) != 0) {
    return {};
  }
  total += b + bc.FlushAll();
  out.ms = ToSec(total) * 1e3;
  out.ops_per_sec = out.ms > 0 ? double(out.ops) / (out.ms / 1e3) : 0;
  Journal::Stats js = jrnl.stats();
  out.commits = js.commits;
  out.blocks_logged = js.blocks_logged;
  out.coalesced = js.coalesced;
  return out;
}

void PrintMetaRow(const char* label, const MetaResult& r) {
  std::printf("  %-14s %8.2f ms %10.0f ops/s   %6llu %8llu %9llu\n", label, r.ms,
              r.ops_per_sec, static_cast<unsigned long long>(r.commits),
              static_cast<unsigned long long>(r.blocks_logged),
              static_cast<unsigned long long>(r.coalesced));
}

double OsLevelUs(bool writeback, bool random, std::string* blkstat) {
  SystemOptions opt = OptionsForStage(Stage::kProto5);
  opt.config_hook = [writeback](KernelConfig& kc) { kc.opt_writeback_cache = writeback; };
  System sys(opt);
  std::vector<std::string> args;
  if (random) {
    args.push_back("--random");
  }
  if (sys.RunProgram("blkio4k", args, Sec(1200)) != 0) {
    return 0;
  }
  if (blkstat != nullptr) {
    std::string before = sys.SerialOutput();
    sys.RunProgram("cat", {"/proc/blkstat"});
    *blkstat = sys.SerialOutput().substr(before.size());
  }
  return ParseMetric(sys.SerialOutput(), "blkio_us ").value_or(0);
}

void Run() {
  PrintHeader("Block I/O: repeated 4 KB writes, write-back vs write-through");

  std::printf("\nCache level (Bcache over SD, 6 passes x 8 chunks of 4 KB):\n");
  std::printf("%-18s %11s %11s %8s   %s\n", "", "write-back", "write-thru", "speedup",
              "hits  writebacks  merged");
  PrintCacheRow("sequential", CacheLevel(true, true, 8, 6), CacheLevel(false, true, 8, 6));
  PrintCacheRow("random", CacheLevel(true, false, 8, 6), CacheLevel(false, false, 8, 6));

  std::printf("\nOS level (open/lseek/write/fsync on /d, 6 passes x 16 x 4 KB):\n");
  std::string blkstat;
  double seq_wb = OsLevelUs(true, false, &blkstat);
  double seq_wt = OsLevelUs(false, false, nullptr);
  double rnd_wb = OsLevelUs(true, true, nullptr);
  double rnd_wt = OsLevelUs(false, true, nullptr);
  std::printf("sequential: %9.0f us write-back vs %9.0f us write-through (%.2fx)\n", seq_wb,
              seq_wt, seq_wt / std::max(seq_wb, 1.0));
  std::printf("random:     %9.0f us write-back vs %9.0f us write-through (%.2fx)\n", rnd_wb,
              rnd_wt, rnd_wt / std::max(rnd_wb, 1.0));
  std::printf("\n/proc/blkstat after the sequential write-back run:\n%s", blkstat.c_str());

  constexpr int kMetaFiles = 64;
  std::printf("\nMetadata-op storm (%d x create+256B write, unlink+fsync every 4th):\n",
              kMetaFiles);
  std::printf("  %-14s %11s %16s   %s\n", "", "time", "throughput",
              "commits  logged  coalesced");
  MetaResult sync = MetaStorm(MetaMode::kSync, kMetaFiles);
  MetaResult pertx = MetaStorm(MetaMode::kJournal, kMetaFiles);
  MetaResult group = MetaStorm(MetaMode::kGroupCommit, kMetaFiles);
  PrintMetaRow("sync (no jrnl)", sync);
  PrintMetaRow("per-tx commit", pertx);
  PrintMetaRow("group commit", group);
  double group_speedup = sync.ops_per_sec > 0 ? group.ops_per_sec / sync.ops_per_sec : 0;
  double pertx_speedup = sync.ops_per_sec > 0 ? pertx.ops_per_sec / sync.ops_per_sec : 0;
  std::printf("meta_speedup_group_vs_sync %.2f\n", group_speedup);
  std::printf("meta_speedup_pertx_vs_sync %.2f\n", pertx_speedup);

  std::ofstream json(BenchOutPath("BENCH_blkio.json"));
  json << "{\n"
       << "  \"cache_4k\": {\n"
       << "    \"seq_writeback_ms\": " << CacheLevel(true, true, 8, 6).ms << ",\n"
       << "    \"seq_writethrough_ms\": " << CacheLevel(false, true, 8, 6).ms << "\n"
       << "  },\n"
       << "  \"os_4k_us\": {\n"
       << "    \"seq_writeback\": " << seq_wb << ",\n"
       << "    \"seq_writethrough\": " << seq_wt << ",\n"
       << "    \"rand_writeback\": " << rnd_wb << ",\n"
       << "    \"rand_writethrough\": " << rnd_wt << "\n"
       << "  },\n"
       << "  \"meta_storm\": {\n"
       << "    \"files\": " << kMetaFiles << ",\n"
       << "    \"sync_ops_per_s\": " << sync.ops_per_sec << ",\n"
       << "    \"pertx_ops_per_s\": " << pertx.ops_per_sec << ",\n"
       << "    \"group_ops_per_s\": " << group.ops_per_sec << ",\n"
       << "    \"group_commits\": " << group.commits << ",\n"
       << "    \"group_blocks_logged\": " << group.blocks_logged << ",\n"
       << "    \"group_coalesced\": " << group.coalesced << ",\n"
       << "    \"speedup_pertx_vs_sync\": " << pertx_speedup << ",\n"
       << "    \"speedup_group_vs_sync\": " << group_speedup << "\n"
       << "  }\n}\n";
  std::printf("\nwrote bench/out/BENCH_blkio.json\n");
}

AppRegistrar blkio_app("blkio4k", Blkio4kApp, 1100, 1 << 20);

}  // namespace
}  // namespace vos

int main() {
  vos::Run();
  return 0;
}
