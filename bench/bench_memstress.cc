// Memory-allocator stress benchmark: buddy PMM + per-core slab kmalloc vs
// the pre-buddy baselines (bitmap-scan PMM, global-lock map-based kmalloc),
// which are inlined below exactly as the seed shipped them. Three levels:
//
//  1. PMM level — single-core page + range churn over 64 Ki frames at two
//     occupancies. The bitmap allocator's AllocPage scan and O(nframes)
//     AllocRange first-fit dominate when memory is nearly full; the buddy
//     allocator stays O(log nframes) regardless.
//  2. kmalloc level — random-size object churn (16 B..2 KB with occasional
//     page-range spills). The baseline pays an unordered_map insert/erase
//     and a global lock per op; the slab allocator's magazine hit path is a
//     handful of loads. Depot/pmm lock trips per op come from lockdep's
//     acquisition counters.
//  3. OS level — a user program forking children that sbrk-churn their
//     heaps on a Proto5 system, then /proc/memstat: external fragmentation
//     after a realistic create/destroy storm.
//
// Results land in BENCH_mem.json (CI smoke-checks throughput > 0 and
// speedup > 1, and archives the file).
#include <chrono>
#include <cstring>
#include <fstream>
#include <unordered_map>

#include "bench/bench_out.h"
#include "bench/bench_util.h"
#include "src/kernel/kmalloc.h"
#include "src/kernel/lockdep.h"
#include "src/kernel/pmm.h"
#include "src/ulib/umalloc.h"
#include "src/ulib/usys.h"
#include "src/ulib/ustdio.h"

namespace vos {
namespace {

constexpr std::uint64_t kFrames = 64 * 1024;  // 256 MiB managed region
constexpr PhysAddr kRegionStart = MiB(1);
constexpr PhysAddr kRegionEnd = kRegionStart + kFrames * kPageSize;

std::uint64_t NextRand(std::uint64_t* s) {
  *s ^= *s << 13;
  *s ^= *s >> 7;
  *s ^= *s << 17;
  return *s;
}

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// --- Seed baselines, inlined verbatim (minus locks: they only did lockdep
// --- bookkeeping, so omitting them flatters the baseline, not us).

class LegacyPmm {
 public:
  LegacyPmm(PhysAddr start, PhysAddr end) : start_(start) {
    nframes_ = (end - start) / kPageSize;
    used_.assign(nframes_, false);
    free_count_ = nframes_;
  }
  PhysAddr AllocPage() {
    if (free_count_ == 0) {
      return 0;
    }
    for (std::uint64_t i = 0; i < nframes_; ++i) {
      std::uint64_t f = (next_hint_ + i) % nframes_;
      if (!used_[f]) {
        used_[f] = true;
        --free_count_;
        next_hint_ = f + 1;
        return start_ + f * kPageSize;
      }
    }
    return 0;
  }
  void FreePage(PhysAddr pa) {
    std::uint64_t f = (pa - start_) / kPageSize;
    used_[f] = false;
    ++free_count_;
  }
  PhysAddr AllocRange(std::uint64_t npages) {
    if (npages > free_count_) {
      return 0;
    }
    std::uint64_t run = 0;
    for (std::uint64_t f = 0; f < nframes_; ++f) {
      if (used_[f]) {
        run = 0;
        continue;
      }
      if (++run == npages) {
        std::uint64_t first = f + 1 - npages;
        for (std::uint64_t i = first; i <= f; ++i) {
          used_[i] = true;
        }
        free_count_ -= npages;
        return start_ + first * kPageSize;
      }
    }
    return 0;
  }
  void FreeRange(PhysAddr pa, std::uint64_t npages) {
    for (std::uint64_t i = 0; i < npages; ++i) {
      FreePage(pa + i * kPageSize);
    }
  }
  std::uint64_t free_pages() const { return free_count_; }

 private:
  PhysAddr start_;
  std::uint64_t nframes_;
  std::vector<bool> used_;
  std::uint64_t free_count_;
  std::uint64_t next_hint_ = 0;
};

class LegacyKmalloc {
 public:
  LegacyKmalloc(PhysMem& mem, LegacyPmm& pmm) : mem_(mem), pmm_(pmm) {}
  PhysAddr Alloc(std::uint64_t size) {
    int cls = ClassFor(size);
    if (cls < 0) {
      std::uint64_t npages = (size + kPageSize - 1) / kPageSize;
      PhysAddr pa = pmm_.AllocRange(npages);
      if (pa == 0) {
        return 0;
      }
      live_[pa] = Live{-1, npages, size};
      return pa;
    }
    if (free_heads_[static_cast<std::size_t>(cls)] == 0) {
      Refill(cls);
      if (free_heads_[static_cast<std::size_t>(cls)] == 0) {
        return 0;
      }
    }
    PhysAddr pa = free_heads_[static_cast<std::size_t>(cls)];
    free_heads_[static_cast<std::size_t>(cls)] = mem_.Load<std::uint64_t>(pa);
    live_[pa] = Live{cls, 0, size};
    return pa;
  }
  void Free(PhysAddr pa) {
    auto it = live_.find(pa);
    if (it->second.cls < 0) {
      pmm_.FreeRange(pa, it->second.npages);
    } else {
      int cls = it->second.cls;
      mem_.Store<std::uint64_t>(pa, free_heads_[static_cast<std::size_t>(cls)]);
      free_heads_[static_cast<std::size_t>(cls)] = pa;
    }
    live_.erase(it);
  }

 private:
  static constexpr int kMinShift = 4;
  static constexpr int kMaxShift = 11;
  int ClassFor(std::uint64_t size) const {
    for (int s = kMinShift; s <= kMaxShift; ++s) {
      if (size <= (1ull << s)) {
        return s - kMinShift;
      }
    }
    return -1;
  }
  void Refill(int cls) {
    PhysAddr page = pmm_.AllocPage();
    if (page == 0) {
      return;
    }
    std::uint64_t obj = 1ull << (cls + kMinShift);
    for (std::uint64_t off = 0; off + obj <= kPageSize; off += obj) {
      PhysAddr pa = page + off;
      mem_.Store<std::uint64_t>(pa, free_heads_[static_cast<std::size_t>(cls)]);
      free_heads_[static_cast<std::size_t>(cls)] = pa;
    }
  }
  struct Live {
    int cls;
    std::uint64_t npages;
    std::uint64_t size;
  };
  PhysMem& mem_;
  LegacyPmm& pmm_;
  std::array<PhysAddr, kMaxShift - kMinShift + 1> free_heads_{};
  std::unordered_map<std::uint64_t, Live> live_;
};

// --- Level 1: page + range churn ---------------------------------------

struct PmmScore {
  double ops_per_sec = 0;
  std::uint64_t ops = 0;
};

// Fill to `occupancy`, then churn: free a random held page / alloc a new
// one, with an 8-page range alloc+free every 64 iterations (the multi-page
// slab / DMA-buffer pattern). Same op sequence for both allocators.
template <typename P>
PmmScore PagesChurn(P& pmm, double occupancy, int iters) {
  std::uint64_t seed = 0x9e3779b97f4a7c15ull;
  std::vector<PhysAddr> held;
  held.reserve(kFrames);
  std::uint64_t target = static_cast<std::uint64_t>(occupancy * double(kFrames));
  while (held.size() < target) {
    held.push_back(pmm.AllocPage());
  }
  std::uint64_t ops = 0;
  double t0 = Now();
  for (int i = 0; i < iters; ++i) {
    std::size_t victim = NextRand(&seed) % held.size();
    pmm.FreePage(held[victim]);
    held[victim] = pmm.AllocPage();
    ops += 2;
    if (i % 64 == 0) {
      PhysAddr r = pmm.AllocRange(8);
      if (r != 0) {
        pmm.FreeRange(r, 8);
      }
      ops += 2;
    }
  }
  double dt = Now() - t0;
  for (PhysAddr p : held) {
    pmm.FreePage(p);
  }
  PmmScore out;
  out.ops = ops;
  out.ops_per_sec = dt > 0 ? double(ops) / dt : 0;
  return out;
}

PmmScore BuddyScore(double occupancy, int iters) {
  PhysMem mem(kRegionEnd);
  Pmm pmm(mem, kRegionStart, kRegionEnd);
  return PagesChurn(pmm, occupancy, iters);
}

PmmScore LegacyScore(double occupancy, int iters) {
  LegacyPmm pmm(kRegionStart, kRegionEnd);
  return PagesChurn(pmm, occupancy, iters);
}

// --- Level 2: kmalloc object churn --------------------------------------

struct KmScore {
  double ops_per_sec = 0;
  double hit_rate = 0;
  double depot_locks_per_op = 0;
  double pmm_locks_per_op = 0;
};

std::uint64_t LockAcquisitions(const char* name) {
  std::uint64_t total = 0;
  for (const LockClassInfo& c : Lockdep::Instance().Classes()) {
    total += c.name == name ? c.acquisitions : 0;
  }
  return total;
}

// Random-size churn: sizes 1..2048 with a page-range spill every 256 ops,
// steady-state working set ~2000 objects. `cores` > 1 round-robins the
// magazine the allocator sees, as a multicore task mix would.
template <typename KM>
double KmChurn(KM& km, int iters) {
  std::uint64_t seed = 0x2545f4914f6cdd1dull;
  std::vector<PhysAddr> live;
  live.reserve(4096);
  double t0 = Now();
  for (int i = 0; i < iters; ++i) {
    bool spill = i % 256 == 0;
    if (live.size() < 2000 || (NextRand(&seed) & 1) != 0) {
      std::uint64_t size = spill ? 3 * kPageSize : NextRand(&seed) % 2048 + 1;
      PhysAddr p = km.Alloc(size);
      if (p != 0) {
        live.push_back(p);
      }
    } else {
      std::size_t victim = NextRand(&seed) % live.size();
      km.Free(live[victim]);
      live[victim] = live.back();
      live.pop_back();
    }
  }
  double dt = Now() - t0;
  for (PhysAddr p : live) {
    km.Free(p);
  }
  return dt > 0 ? double(iters) / dt : 0;
}

KmScore SlabScore(int iters, unsigned cores) {
  PhysMem mem(kRegionEnd);
  Pmm pmm(mem, kRegionStart, kRegionEnd);
  Kmalloc km(pmm);
  unsigned next_core = 0;
  if (cores > 1) {
    km.SetCoreFn([&next_core, cores] { return next_core++ % cores; });
  }
  std::uint64_t depot0 = LockAcquisitions("slab-depot");
  std::uint64_t pmm0 = LockAcquisitions("pmm");
  KmScore out;
  out.ops_per_sec = KmChurn(km, iters);
  out.hit_rate = km.HitRate();
  out.depot_locks_per_op = double(LockAcquisitions("slab-depot") - depot0) / double(iters);
  out.pmm_locks_per_op = double(LockAcquisitions("pmm") - pmm0) / double(iters);
  km.DrainAll();
  return out;
}

double LegacyKmScore(int iters) {
  PhysMem mem(kRegionEnd);
  LegacyPmm pmm(kRegionStart, kRegionEnd);
  LegacyKmalloc km(mem, pmm);
  return KmChurn(km, iters);
}

// --- Level 3: fork/exit/sbrk churn on a booted system -------------------

// Each round forks a child that malloc/free-churns its heap (sbrk growth +
// demand faults -> AllocPage) and exits (heap teardown -> page frees); the
// parent sbrk-churns its own heap between rounds.
int MemchurnApp(AppEnv& env) {
  constexpr int kRounds = 12;
  Kernel* kernel = env.kernel;
  for (int r = 0; r < kRounds; ++r) {
    std::int64_t pid = ufork(env, [kernel, r]() -> int {
      AppEnv me = ChildEnv(kernel);
      UserHeap heap(me);
      std::vector<void*> blocks;
      for (int i = 0; i < 24 + 4 * r; ++i) {
        void* p = heap.Malloc(KiB(4) + std::uint64_t(i) * 512);
        if (p == nullptr) {
          return 1;
        }
        std::memset(p, 0x5a, KiB(4));
        if (i % 3 == 0) {
          heap.Free(p);
        } else {
          blocks.push_back(p);
        }
      }
      for (void* p : blocks) {
        heap.Free(p);
      }
      return 0;
    });
    if (pid < 0) {
      uprintf(env, "memchurn: fork failed\n");
      return 1;
    }
    int status = 0;
    uwait(env, &status);
    if (usbrk(env, KiB(32)) < 0 || usbrk(env, -std::int64_t(KiB(16))) < 0) {
      return 1;
    }
  }
  uprintf(env, "memchurn_rounds %d\n", kRounds);
  return 0;
}

struct OsScore {
  double frag_pct = 0;
  std::uint64_t oom_events = 0;
  std::uint64_t range_allocs = 0;
  std::string memstat;
  bool ok = false;
};

OsScore OsLevel() {
  OsScore out;
  SystemOptions opt = OptionsForStage(Stage::kProto5);
  System sys(opt);
  if (sys.RunProgram("memchurn", {}) != 0) {
    return out;
  }
  std::string before = sys.SerialOutput();
  if (sys.RunProgram("cat", {"/proc/memstat"}) != 0) {
    return out;
  }
  out.memstat = sys.SerialOutput().substr(before.size());
  out.frag_pct = sys.kernel().pmm().FragmentationPct();
  out.oom_events = sys.kernel().pmm().stats().oom_events;
  out.range_allocs = sys.kernel().pmm().stats().range_allocs;
  out.ok = true;
  return out;
}

void Run() {
  PrintHeader("Memory stress: buddy PMM + slab kmalloc vs seed baselines");

  constexpr int kPmmIters = 200000;
  std::printf("\nPMM churn, %d iters over %llu frames (page pairs + range every 64):\n",
              kPmmIters, static_cast<unsigned long long>(kFrames));
  std::printf("%-16s %14s %14s %9s\n", "occupancy", "buddy ops/s", "bitmap ops/s", "speedup");
  PmmScore b50 = BuddyScore(0.50, kPmmIters), l50 = LegacyScore(0.50, kPmmIters);
  PmmScore b98 = BuddyScore(0.98, kPmmIters), l98 = LegacyScore(0.98, kPmmIters);
  double sp50 = b50.ops_per_sec / std::max(l50.ops_per_sec, 1.0);
  double sp98 = b98.ops_per_sec / std::max(l98.ops_per_sec, 1.0);
  std::printf("%-16s %14.0f %14.0f %8.1fx\n", "50%", b50.ops_per_sec, l50.ops_per_sec, sp50);
  std::printf("%-16s %14.0f %14.0f %8.1fx\n", "98%", b98.ops_per_sec, l98.ops_per_sec, sp98);

  constexpr int kKmIters = 400000;
  std::printf("\nkmalloc churn, %d ops (16 B..2 KB + page spill every 256):\n", kKmIters);
  KmScore slab1 = SlabScore(kKmIters, 1);
  KmScore slab4 = SlabScore(kKmIters, 4);
  double legacy_km = LegacyKmScore(kKmIters);
  double km_sp = slab1.ops_per_sec / std::max(legacy_km, 1.0);
  std::printf("slab 1-core:  %12.0f ops/s  hit %.1f%%  depot locks/op %.4f  pmm locks/op %.4f\n",
              slab1.ops_per_sec, slab1.hit_rate * 100.0, slab1.depot_locks_per_op,
              slab1.pmm_locks_per_op);
  std::printf("slab 4-core:  %12.0f ops/s  hit %.1f%%  depot locks/op %.4f  pmm locks/op %.4f\n",
              slab4.ops_per_sec, slab4.hit_rate * 100.0, slab4.depot_locks_per_op,
              slab4.pmm_locks_per_op);
  std::printf("legacy (map): %12.0f ops/s  -> slab speedup %.1fx\n", legacy_km, km_sp);

  std::printf("\nOS level: fork/exit/sbrk churn on Proto5, then /proc/memstat:\n");
  OsScore os = OsLevel();
  if (os.ok) {
    std::printf("%s", os.memstat.c_str());
    std::printf("fragmentation %.1f %%, oom %llu, range_allocs %llu\n", os.frag_pct,
                static_cast<unsigned long long>(os.oom_events),
                static_cast<unsigned long long>(os.range_allocs));
  } else {
    std::printf("memchurn FAILED\n");
  }

  std::ofstream json(BenchOutPath("BENCH_mem.json"));
  json << "{\n"
       << "  \"frames\": " << kFrames << ",\n"
       << "  \"throughput_ops_per_sec\": " << b98.ops_per_sec << ",\n"
       << "  \"pmm\": {\n"
       << "    \"buddy_ops_per_sec_50\": " << b50.ops_per_sec << ",\n"
       << "    \"bitmap_ops_per_sec_50\": " << l50.ops_per_sec << ",\n"
       << "    \"speedup_50\": " << sp50 << ",\n"
       << "    \"buddy_ops_per_sec_98\": " << b98.ops_per_sec << ",\n"
       << "    \"bitmap_ops_per_sec_98\": " << l98.ops_per_sec << ",\n"
       << "    \"speedup_98\": " << sp98 << "\n"
       << "  },\n"
       << "  \"kmalloc\": {\n"
       << "    \"slab_ops_per_sec\": " << slab1.ops_per_sec << ",\n"
       << "    \"legacy_ops_per_sec\": " << legacy_km << ",\n"
       << "    \"speedup\": " << km_sp << ",\n"
       << "    \"hit_rate\": " << slab1.hit_rate << ",\n"
       << "    \"hit_rate_4core\": " << slab4.hit_rate << ",\n"
       << "    \"depot_locks_per_op\": " << slab1.depot_locks_per_op << ",\n"
       << "    \"pmm_locks_per_op\": " << slab1.pmm_locks_per_op << "\n"
       << "  },\n"
       << "  \"os_level\": {\n"
       << "    \"ok\": " << (os.ok ? "true" : "false") << ",\n"
       << "    \"frag_pct\": " << os.frag_pct << ",\n"
       << "    \"oom_events\": " << os.oom_events << ",\n"
       << "    \"range_allocs\": " << os.range_allocs << "\n"
       << "  }\n"
       << "}\n";
  std::printf("\nwrote bench/out/BENCH_mem.json\n");
}

AppRegistrar memchurn_app("memchurn", MemchurnApp, 1100, 4ull << 20);

}  // namespace
}  // namespace vos

int main() {
  vos::Run();
  return 0;
}
