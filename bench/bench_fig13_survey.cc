// Figure 13: the pedagogical user study (N=48, Spring 2025). A human study
// cannot be re-run by this artifact; this bench replays the response
// distributions reported in the paper and recomputes the summary statistics,
// so the figure's table can still be regenerated from the repository.
// Documented as RECORDED DATA in DESIGN.md / EXPERIMENTS.md.
#include <cstdio>

namespace vos {
namespace {

struct SurveyRow {
  const char* principle;
  const char* statement;
  // Response counts for ratings 1..5 (reconstructed from the reported
  // agreement levels; N=48).
  int counts[5];
};

const SurveyRow kRows[] = {
    {"P1", "the interactive apps strongly motivated my learning", {1, 2, 6, 17, 22}},
    {"P2", "working on real hardware (chosen by 64%) motivated me", {2, 4, 9, 18, 15}},
    {"P3", "incremental prototypes were clear stepping stones", {0, 2, 7, 20, 19}},
    {"P4", "I understood which OS features each app depends on", {1, 3, 8, 19, 17}},
};

void Run() {
  std::printf("Figure 13: pedagogical survey on the design principles (RECORDED DATA)\n");
  std::printf("N=48 of 59 enrolled; scale 1 (strong disagreement) .. 5 (strong agreement)\n\n");
  std::printf("%-4s %-56s %5s %7s %9s\n", "", "statement", "mean", "median", ">=4 (%)");
  for (const SurveyRow& r : kRows) {
    int n = 0, sum = 0, agree = 0;
    for (int i = 0; i < 5; ++i) {
      n += r.counts[i];
      sum += r.counts[i] * (i + 1);
      if (i >= 3) {
        agree += r.counts[i];
      }
    }
    // Median from the cumulative distribution.
    int median = 0, cum = 0;
    for (int i = 0; i < 5; ++i) {
      cum += r.counts[i];
      if (cum * 2 >= n) {
        median = i + 1;
        break;
      }
    }
    std::printf("%-4s %-56s %5.2f %7d %8.0f%%\n", r.principle, r.statement,
                double(sum) / n, median, 100.0 * agree / n);
  }
  std::printf("\npaper conclusion: most students found P1-P4 directly supported their\n"
              "learning; a majority chose real hardware despite setup friction.\n");
}

}  // namespace
}  // namespace vos

int main() {
  vos::Run();
  return 0;
}
