// Figure 8: kernel microbenchmarks — syscall (getpid) and one-way pipe IPC
// latency averaged over 5,000 runs, FAT32 file throughput, and boot time
// from power-on to kernel loaded / to shell prompt.
#include "bench/bench_util.h"

namespace vos {
namespace {

void Run() {
  PrintHeader("Figure 8: kernel microbenchmarks (platform: pi3, os: ours)");
  SystemOptions opt = OptionsForStage(Stage::kProto5);
  System sys(opt);

  sys.RunProgram("bench-getpid", {"--n", "5000"});
  sys.RunProgram("bench-pipe", {"--n", "5000"});
  sys.RunProgram("bench-file", {"/d/fig8.dat", "--kb", "512"});
  sys.RunProgram("bench-file", {"/ramfs.dat", "--kb", "128"});
  const std::string serial = sys.SerialOutput();

  double getpid_us = ParseMetric(serial, "getpid_ns ").value_or(0) / 1000.0;
  double ipc_us = ParseMetric(serial, "ipc_oneway_ns ").value_or(0) / 1000.0;
  // bench-file printed twice: FAT first, then ramdisk; take both.
  double fat_r = 0, fat_w = 0, ram_r = 0, ram_w = 0;
  {
    std::size_t second = serial.rfind("file_write_kbps ");
    std::string first_half = serial.substr(0, second);
    fat_w = ParseMetric(first_half, "file_write_kbps ").value_or(0);
    fat_r = ParseMetric(first_half, "file_read_kbps ").value_or(0);
    ram_w = ParseMetric(serial, "file_write_kbps ").value_or(0);
    ram_r = ParseMetric(serial, "file_read_kbps ").value_or(0);
  }

  std::printf("%-34s %12s %s\n", "metric", "measured", "paper (Pi3)");
  std::printf("%-34s %9.2f us %s\n", "syscall latency (getpid)", getpid_us, "~3 us");
  std::printf("%-34s %9.2f us %s\n", "one-way IPC (1-byte pipe)", ipc_us, "~21 us");
  std::printf("%-34s %9.0f KB/s %s\n", "FAT32 (SD) sequential read", fat_r,
              "hundreds of KB/s");
  std::printf("%-34s %9.0f KB/s %s\n", "FAT32 (SD) sequential write", fat_w,
              "hundreds of KB/s");
  std::printf("%-34s %9.0f KB/s %s\n", "xv6fs (ramdisk) read", ram_r, "(faster: DRAM)");
  std::printf("%-34s %9.0f KB/s %s\n", "xv6fs (ramdisk) write", ram_w, "(faster: DRAM)");

  const auto& br = sys.boot_report();
  std::printf("%-34s %9.2f s  %s\n", "boot: power-on to kernel loaded", ToSec(br.firmware),
              "~4 s (firmware)");
  std::printf("%-34s %9.2f s  %s\n", "boot: power-on to shell prompt", ToSec(br.total),
              "~6 s total");
  std::printf("  breakdown: firmware %.2f s, core %.3f s, fb %.4f s, fs %.2f s, usb %.2f s\n",
              ToSec(br.firmware), ToSec(br.core), ToSec(br.fb), ToSec(br.fs), ToSec(br.usb));
}

}  // namespace
}  // namespace vos

int main() {
  vos::Run();
  return 0;
}
