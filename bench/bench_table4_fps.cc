// Table 4: throughput (FPS) of the benchmark apps — DOOM, video playback
// (480p/720p), and the three mario variants — on the Pi3 profile and the two
// QEMU profiles, mean +- std over repeated runs. Apps render as fast as
// possible (no FPS cap); video playback measured in --bench mode like the
// others, with native-rate numbers noted.
#include "bench/bench_util.h"

namespace vos {
namespace {

SystemOptions BaseOptions(Platform platform) {
  SystemOptions opt = OptionsForStage(Stage::kProto5, platform);
  return opt;
}

SystemOptions VideoOptions(Platform platform, std::uint32_t w, std::uint32_t h) {
  SystemOptions opt = BaseOptions(platform);
  opt.with_media_assets = true;
  opt.media_video_w = w;
  opt.media_video_h = h;
  opt.media_video_frames = 24;  // decoder loops over the clip via reopen
  opt.dram_size = MiB(96);
  return opt;
}

struct Row {
  const char* name;
  const char* paper_pi3;
  MeanStd per_platform[3];
};

void Run(int runs) {
  PrintHeader("Table 4: app throughput in FPS (mean +- std)");
  const Platform platforms[3] = {Platform::kPi3, Platform::kQemuWsl, Platform::kQemuVm};

  Row rows[] = {
      {"DOOM", "61.8", {}},
      {"video (480p)", "26.7", {}},
      {"video (720p)", "11.6", {}},
      {"mario-noinput", "108.1", {}},
      {"mario-proc", "114.7", {}},
      {"mario-sdl", "72.2", {}},
  };

  for (int p = 0; p < 3; ++p) {
    Platform plat = platforms[p];
    std::fprintf(stderr, "measuring platform %s...\n", PlatformName(plat));
    rows[0].per_platform[p] = MeasureFpsRuns(BaseOptions(plat), "doomlike",
                                             {"--bench", "--frames", "100000"}, runs);
    {
      std::vector<double> fps;
      for (int r = 0; r < runs; ++r) {
        System sys(VideoOptions(plat, 640, 480));
        fps.push_back(MeasureAppFps(sys, "videoplayer",
                                    {"/d/videos/clip480.vmv", "--bench", "--frames", "100000"},
                                    Sec(6), Sec(3))
                          .fps);
      }
      rows[1].per_platform[p] = Stats(fps);
    }
    {
      std::vector<double> fps;
      for (int r = 0; r < runs; ++r) {
        System sys(VideoOptions(plat, 1280, 720));
        fps.push_back(MeasureAppFps(sys, "videoplayer",
                                    {"/d/videos/clip480.vmv", "--bench", "--frames", "100000"},
                                    Sec(14), Sec(3))
                          .fps);
      }
      rows[2].per_platform[p] = Stats(fps);
    }
    rows[3].per_platform[p] = MeasureFpsRuns(BaseOptions(plat), "mario",
                                             {"--bench", "--frames", "100000"}, runs);
    rows[4].per_platform[p] = MeasureFpsRuns(BaseOptions(plat), "mario-proc",
                                             {"--bench", "--frames", "100000"}, runs);
    rows[5].per_platform[p] = MeasureFpsRuns(BaseOptions(plat), "mario-sdl",
                                             {"--bench", "--frames", "100000"}, runs);
  }

  std::printf("%-16s %8s | %14s %14s %14s\n", "app", "paper", "pi3", "qemu-wsl", "qemu-vm");
  for (const Row& r : rows) {
    std::printf("%-16s %8s |", r.name, r.paper_pi3);
    for (int p = 0; p < 3; ++p) {
      std::printf(" %7.2f+-%5.2f", r.per_platform[p].mean, r.per_platform[p].stddev);
    }
    std::printf("\n");
  }
  std::printf(
      "\nnote: video rows measure decode+render throughput of the synthetic clip at the\n"
      "named geometry (the paper's MPEG-1 content is proprietary; see DESIGN.md).\n");
}

}  // namespace
}  // namespace vos

int main(int argc, char** argv) {
  int runs = argc > 1 ? std::atoi(argv[1]) : 3;
  vos::Run(runs);
  return 0;
}
