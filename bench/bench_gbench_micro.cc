// google-benchmark micro suite over the library's own primitives — host-side
// performance of the simulator (not virtual-time results). Useful for keeping
// the simulation fast enough to run the paper's experiments interactively.
#include <benchmark/benchmark.h>

#include "src/base/inflate.h"
#include "src/base/deflate.h"
#include "src/base/sha256.h"
#include "src/fs/fat32.h"
#include "src/fs/xv6fs.h"
#include "src/hw/event_queue.h"
#include "src/media/vmv.h"
#include "src/ulib/pixel.h"
#include "src/vos/prototypes.h"
#include "src/vos/system.h"

namespace vos {
namespace {

void BM_Sha256(benchmark::State& state) {
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)), 0x5c);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::Hash(data.data(), data.size()));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(80)->Arg(4096);

void BM_DeflateInflate(benchmark::State& state) {
  std::string text;
  for (int i = 0; i < 100; ++i) {
    text += "all work and no play makes the kernel a dull boy ";
  }
  for (auto _ : state) {
    auto c = Deflate(reinterpret_cast<const std::uint8_t*>(text.data()), text.size());
    benchmark::DoNotOptimize(Inflate(c.data(), c.size()));
  }
}
BENCHMARK(BM_DeflateInflate);

void BM_EventQueue(benchmark::State& state) {
  for (auto _ : state) {
    EventQueue eq;
    int fired = 0;
    for (int i = 0; i < 1000; ++i) {
      eq.Schedule(static_cast<Cycles>(i), [&fired] { ++fired; });
    }
    eq.RunDue(1000);
    benchmark::DoNotOptimize(fired);
  }
}
BENCHMARK(BM_EventQueue);

void BM_Dct8x8RoundTrip(benchmark::State& state) {
  std::int16_t block[64];
  for (int i = 0; i < 64; ++i) {
    block[i] = static_cast<std::int16_t>(i * 3 - 90);
  }
  for (auto _ : state) {
    std::int32_t freq[64];
    std::int16_t back[64];
    Dct8x8(block, freq);
    Idct8x8(freq, back);
    benchmark::DoNotOptimize(back[0]);
  }
}
BENCHMARK(BM_Dct8x8RoundTrip);

void BM_YuvConvertFixed(benchmark::State& state) {
  std::uint32_t w = 320, h = 240;
  std::vector<std::uint8_t> y(w * h, 100), u(w * h / 4, 90), v(w * h / 4, 160);
  std::vector<std::uint32_t> rgb(w * h);
  for (auto _ : state) {
    Yuv420ToRgbFixed(rgb.data(), y.data(), u.data(), v.data(), w, h);
    benchmark::DoNotOptimize(rgb[0]);
  }
  state.SetBytesProcessed(state.iterations() * w * h * 3 / 2);
}
BENCHMARK(BM_YuvConvertFixed);

void BM_Xv6fsWriteRead(benchmark::State& state) {
  auto image = Xv6Fs::Mkfs(2048, 64);
  KernelConfig cfg;
  for (auto _ : state) {
    RamDisk disk(image);
    Bcache bc(cfg);
    Xv6Fs fsys(bc, bc.AddDevice(&disk), cfg);
    Cycles burn = 0;
    fsys.Mount(&burn);
    std::int64_t err = 0;
    auto ip = fsys.Create("/bench", kXv6TFile, 0, 0, &err, &burn);
    std::vector<std::uint8_t> data(64 * 1024, 0xaa);
    fsys.Writei(*ip, data.data(), 0, static_cast<std::uint32_t>(data.size()), &burn);
    fsys.Readi(*ip, data.data(), 0, static_cast<std::uint32_t>(data.size()), &burn);
    benchmark::DoNotOptimize(data[0]);
  }
}
BENCHMARK(BM_Xv6fsWriteRead);

void BM_Fat32WriteRead(benchmark::State& state) {
  auto image = FatVolume::Mkfs(MiB(4));
  KernelConfig cfg;
  for (auto _ : state) {
    RamDisk disk(image);
    Bcache bc(cfg);
    FatVolume fat(bc, bc.AddDevice(&disk), cfg);
    Cycles burn = 0;
    fat.Mount(&burn);
    FatNode node;
    fat.Create("/bench.bin", false, &node, &burn);
    std::vector<std::uint8_t> data(64 * 1024, 0xbb);
    fat.Write(node, data.data(), 0, static_cast<std::uint32_t>(data.size()), &burn);
    fat.Read(node, data.data(), 0, static_cast<std::uint32_t>(data.size()), &burn);
    benchmark::DoNotOptimize(data[0]);
  }
}
BENCHMARK(BM_Fat32WriteRead);

void BM_FiberSwitch(benchmark::State& state) {
  // Host cost of one task activation round trip through the machine loop.
  SystemOptions opt = OptionsForStage(Stage::kProto2);
  System sys(opt);
  Kernel& k = sys.kernel();
  k.CreateKernelTask("spin", [&k] {
    Task* self = k.CurrentTask();
    while (!self->killed) {
      self->fiber().Burn(Us(10));
    }
  });
  for (auto _ : state) {
    sys.Run(Ms(1));
  }
}
BENCHMARK(BM_FiberSwitch);

void BM_BootProto5(benchmark::State& state) {
  for (auto _ : state) {
    System sys(OptionsForStage(Stage::kProto5));
    benchmark::DoNotOptimize(sys.boot_report().total);
  }
}
BENCHMARK(BM_BootProto5)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace vos

BENCHMARK_MAIN();
