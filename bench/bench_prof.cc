// Profiler overhead benchmark (the profiling PR's ≤5% contract): the same
// bench_sched-style fan-out workload runs on two freshly booted Prototype-5
// systems — profiler off, then profiler on at the default prof_hz — and the
// virtual-time completion delta is the overhead. Sampling cost is charged to
// the sampled core as IRQ debt (cost.prof_sample_capture), so the delta is
// real simulated time, deterministic run to run.
//
// Also asserts the symbolization bar (≥90% of samples carry at least one
// frame) and writes the folded-stack dump as a CI artifact next to
// BENCH_prof.json, so every CI run produces a flamegraph-ready profile of
// the fan-out workload.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_out.h"
#include "bench/bench_util.h"
#include "src/apps/app_registry.h"
#include "src/kernel/kernel.h"
#include "src/kernel/profiler.h"
#include "src/kernel/velf.h"
#include "src/ulib/usys.h"

namespace vos {
namespace {

// Fork fan-out: four children alternating CPU bursts and sleeps, the mix
// that exercises on-CPU sampling, off-CPU attribution, and syscall frames.
int FanoutMain(AppEnv& env) {
  for (int c = 0; c < 4; ++c) {
    ufork(env, [&env]() -> int {
      for (int i = 0; i < 25; ++i) {
        UBurn(env, 3000000.0);  // 3 ms burst: CPU-bound, so sampling cost
        usleep_ms(env, 1);      // shows up in completion time
      }
      return 0;
    });
  }
  for (int c = 0; c < 4; ++c) {
    uwait(env, nullptr);
  }
  return 0;
}

// Boots a system (profiler optionally on), runs the fan-out, returns the
// workload's virtual duration in µs.
double RunWorkload(bool prof_on, System** out_sys) {
  static int counter = 0;
  SystemOptions opt = OptionsForStage(Stage::kProto5);
  opt.config_hook = [prof_on](KernelConfig& cfg) { cfg.prof_enabled = prof_on; };
  System* sys = new System(opt);
  std::string name = "prof_fanout" + std::to_string(counter++);
  AppRegistry::Instance().Register(name, FanoutMain, 1024, 4 << 20);
  sys->kernel().AddBootBlob(name, BuildVelf(name, 1024, {}, 4 << 20));
  const Cycles t0 = sys->board().clock().now();
  Task* t = sys->kernel().StartUserProgram(name, {name});
  sys->WaitProgram(t);
  const Cycles t1 = sys->board().clock().now();
  *out_sys = sys;
  return double(ToUs(t1 - t0));
}

void Run() {
  PrintHeader("profiler overhead: fan-out workload, prof off vs on");

  System* off_sys = nullptr;
  const double off_us = RunWorkload(false, &off_sys);
  std::printf("prof off: %.0f us virtual\n", off_us);
  delete off_sys;

  System* on_sys = nullptr;
  const double on_us = RunWorkload(true, &on_sys);
  const Profiler& prof = on_sys->kernel().profiler();
  const double overhead_pct = off_us > 0 ? (on_us - off_us) * 100.0 / off_us : 0;
  const double symbolized_pct =
      prof.samples() > 0 ? double(prof.symbolized()) * 100.0 / double(prof.samples()) : 0;
  std::printf("prof on:  %.0f us virtual (hz %u)\n", on_us, 100u);
  std::printf("overhead: %.2f%% (contract: <= 5%%)\n", overhead_pct);
  std::printf("samples:  %llu oncpu+offcpu (%llu offcpu), %.1f%% symbolized, %llu dropped\n",
              static_cast<unsigned long long>(prof.samples()),
              static_cast<unsigned long long>(prof.offcpu_samples()), symbolized_pct,
              static_cast<unsigned long long>(prof.dropped()));

  // The folded dump is the CI artifact: a real flamegraph input from the run.
  const std::string folded = prof.ExportText();
  std::size_t stacks = 0;
  for (char ch : folded) {
    stacks += ch == '\n' ? 1 : 0;
  }
  {
    std::ofstream f(BenchOutPath("prof_folded.txt"));
    f << folded;
  }
  std::printf("wrote bench/out/prof_folded.txt (%zu lines)\n", stacks);

  std::ofstream json(BenchOutPath("BENCH_prof.json"));
  json << "{\n"
       << "  \"workload_us_off\": " << off_us << ",\n"
       << "  \"workload_us_on\": " << on_us << ",\n"
       << "  \"overhead_pct\": " << overhead_pct << ",\n"
       << "  \"prof_hz\": 100,\n"
       << "  \"samples\": " << prof.samples() << ",\n"
       << "  \"offcpu_samples\": " << prof.offcpu_samples() << ",\n"
       << "  \"symbolized_pct\": " << symbolized_pct << ",\n"
       << "  \"dropped\": " << prof.dropped() << "\n"
       << "}\n";
  std::printf("wrote bench/out/BENCH_prof.json\n");
  delete on_sys;
}

}  // namespace
}  // namespace vos

int main() {
  vos::Run();
  return 0;
}
