// Network stack load benchmark (the "NIC + TCP/IP + sockets" PR). Results in
// BENCH_net.json (CI smoke-runs and asserts):
//
//  1. Throughput/latency: the in-kernel kvserver (8 worker threads sharing
//     the listen fd) serves >= 100k short HTTP/1.0 connections replayed by 8
//     client threads, all on a 4-core Prototype-5 system over the simulated
//     NIC's loopback link. Every connection is a full TCP lifecycle: 3-way
//     handshake, request, response, FIN teardown. Per-request latency is
//     recorded into the kernel metrics registry ("net.req_lat") and p50/p99
//     are read back from the histogram — the same pipeline /proc/metrics
//     exports. cores_active counts the cores observed executing socket
//     syscalls in the trace ring.
//
//  2. Loss resilience: a fresh system with a 2% lossy link runs 2k
//     connections; every one must complete (the retransmit timer heals the
//     drops) and the retransmission counter must show the healing happened.
//
// A completed run implies zero lockdep reports (violations throw FatalError);
// racedet reports are polled explicitly. Both land in the JSON for CI.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "bench/bench_out.h"
#include "bench/bench_util.h"
#include "src/base/status.h"
#include "src/kernel/kernel.h"
#include "src/kernel/net/net.h"
#include "src/kernel/racedet.h"
#include "src/ulib/ustdio.h"
#include "src/ulib/usys.h"

namespace vos {
namespace {

constexpr std::uint16_t kPort = 80;

// One short HTTP/1.0 request over a fresh connection: connect, send, drain
// the response to EOF, close. Returns 0 on success.
int DoRequest(AppEnv& me, std::uint32_t ip, const char* req) {
  std::int64_t fd = usocket(me, 0);
  if (fd < 0) {
    return -1;
  }
  std::int64_t r;
  do {
    r = uconnect(me, static_cast<int>(fd), ip, kPort);
  } while (r == kErrIntr);
  if (r < 0) {
    uclose(me, static_cast<int>(fd));
    return -1;
  }
  if (usend_all(me, static_cast<int>(fd), req, static_cast<std::uint32_t>(std::strlen(req))) < 0) {
    uclose(me, static_cast<int>(fd));
    return -1;
  }
  char buf[256];
  bool got = false;
  for (;;) {
    std::int64_t n = urecv(me, static_cast<int>(fd), buf, sizeof(buf));
    if (n == kErrIntr) {
      continue;
    }
    if (n <= 0) {
      break;
    }
    got = true;
  }
  uclose(me, static_cast<int>(fd));
  return got ? 0 : -1;
}

// netload <clients> <conns_per_client>: replays clients*conns_per_client
// connections against kvserver on kPort, recording per-request latency into
// the "net.req_lat" kernel histogram. Prints "load_conns/load_fail/load_ms".
int NetLoadMain(AppEnv& env) {
  Kernel* k = env.kernel;
  int clients = env.argv.size() > 1 ? std::atoi(env.argv[1].c_str()) : 8;
  int per_client = env.argv.size() > 2 ? std::atoi(env.argv[2].c_str()) : 1000;
  std::uint32_t ip = k->config().net_ip;

  // Seed the store so the GETs hit.
  if (DoRequest(env, ip, "PUT /bench 42\r\n") != 0) {
    return 1;
  }

  std::vector<long long> done(static_cast<std::size_t>(clients), 0);
  std::vector<long long> fail(static_cast<std::size_t>(clients), 0);
  std::int64_t t0 = uuptime_ms(env);
  auto client_loop = [k, ip, per_client, &done, &fail](int idx) -> int {
    AppEnv me = ChildEnv(k);
    Histogram* lat = k->metrics().Hist("net.req_lat");
    for (int i = 0; i < per_client; ++i) {
      Cycles start = k->Now();
      if (DoRequest(me, ip, "GET /bench\r\n") == 0) {
        ++done[static_cast<std::size_t>(idx)];
      } else {
        ++fail[static_cast<std::size_t>(idx)];
      }
      lat->Record(k->Now() - start);
    }
    return 0;
  };
  for (int c = 1; c < clients; ++c) {
    uclone(env, [&client_loop, c]() -> int { return client_loop(c); });
  }
  client_loop(0);
  for (int c = 1; c < clients; ++c) {
    uwait(env, nullptr);
  }
  long long total = 0, failures = 0;
  for (int c = 0; c < clients; ++c) {
    total += done[static_cast<std::size_t>(c)];
    failures += fail[static_cast<std::size_t>(c)];
  }
  uprintf(env, "load_conns %lld load_fail %lld load_ms %lld\n", total, failures,
          static_cast<long long>(uuptime_ms(env) - t0));
  return failures == 0 ? 0 : 2;
}

AppRegistrar netload_app("netload", NetLoadMain, 2048, 4 << 20);

struct LoadResult {
  long long conns = 0;
  long long failures = 0;
  double virtual_s = 0;
  double req_per_s = 0;
  double p50_us = 0;
  double p99_us = 0;
  int cores_active = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t accept_drops = 0;
  std::uint64_t link_dropped = 0;
  std::uint64_t racedet_reports = 0;
  bool ok = false;
};

LoadResult RunLoad(int clients, int per_client, int server_workers, std::uint32_t loss_ppm,
                   std::uint64_t seed) {
  SystemOptions opt = OptionsForStage(Stage::kProto5);
  opt.with_media_assets = false;
  opt.config_hook = [loss_ppm, seed](KernelConfig& cfg) {
    cfg.net_link_loss_ppm = loss_ppm;
    cfg.net_link_seed = seed;
    if (loss_ppm > 0) {
      cfg.net_rto_ms = 5;  // heal faster on the deliberately lossy link
    }
  };
  System sys(opt);

  LoadResult out;
  long long total_conns = static_cast<long long>(clients) * per_client + 1;  // +1 for the PUT
  Task* server = sys.Start("kvserver", {std::to_string(kPort), std::to_string(server_workers),
                                        std::to_string(total_conns)});
  sys.Run(Ms(5));  // let the listener come up

  Task* load = sys.Start("netload", {std::to_string(clients), std::to_string(per_client)});
  if (sys.WaitProgram(load, Sec(3000)) != 0) {
    std::printf("  netload failed; serial tail:\n%s\n",
                sys.SerialOutput().substr(sys.SerialOutput().size() > 600
                                              ? sys.SerialOutput().size() - 600
                                              : 0)
                    .c_str());
  }
  // The server exits once it has served total_conns connections.
  sys.WaitProgram(server, Sec(60));

  const std::string serial = sys.SerialOutput();
  out.conns = static_cast<long long>(ParseMetric(serial, "load_conns ").value_or(0));
  out.failures = static_cast<long long>(ParseMetric(serial, "load_fail ").value_or(-1));
  double load_ms = ParseMetric(serial, "load_ms ").value_or(0);
  out.virtual_s = load_ms / 1e3;
  out.req_per_s = out.virtual_s > 0 ? double(out.conns) / out.virtual_s : 0;

  if (const Histogram* lat = sys.kernel().metrics().FindHist("net.req_lat")) {
    out.p50_us = double(lat->Percentile(50)) / 1e3;  // cycles==ns -> us
    out.p99_us = double(lat->Percentile(99)) / 1e3;
  }
  std::set<unsigned> cores;
  for (const TraceRecord& r : sys.kernel().trace().Dump()) {
    if (r.event == TraceEvent::kSyscallEnter &&
        r.a >= static_cast<std::uint64_t>(Sys::kSocket) &&
        r.a <= static_cast<std::uint64_t>(Sys::kShutdown)) {
      cores.insert(r.core);
    }
  }
  out.cores_active = static_cast<int>(cores.size());
  if (const NetStack* net = sys.kernel().net()) {
    out.retransmits = net->stats().tcp_retransmit;
    out.accept_drops = net->stats().tcp_accept_drop;
  }
  if (const Nic* nic = sys.board().nic()) {
    out.link_dropped = nic->link_dropped();
  }
  out.racedet_reports = Racedet::Instance().total_reports();
  out.ok = out.conns == static_cast<long long>(clients) * per_client && out.failures == 0;
  return out;
}

void Run() {
  PrintHeader("bench_net: kvserver connection replay over the simulated NIC");

  constexpr int kClients = 8;
  constexpr int kPerClient = 15000;  // 8 x 15000 = 120k connections
  constexpr int kWorkers = 8;
  std::printf("main run: %d clients x %d conns, %d server workers, clean link...\n", kClients,
              kPerClient, kWorkers);
  LoadResult main_run = RunLoad(kClients, kPerClient, kWorkers, /*loss_ppm=*/0, /*seed=*/1);
  std::printf("  conns %lld (failures %lld), %.0f req/s over %.2f virtual s\n", main_run.conns,
              main_run.failures, main_run.req_per_s, main_run.virtual_s);
  std::printf("  latency p50 %.1f us  p99 %.1f us, %d cores in the socket path\n",
              main_run.p50_us, main_run.p99_us, main_run.cores_active);
  std::printf("  accept_drops %llu  racedet_reports %llu\n",
              static_cast<unsigned long long>(main_run.accept_drops),
              static_cast<unsigned long long>(main_run.racedet_reports));

  std::printf("lossy run: 4 clients x 500 conns over a 2%% lossy link...\n");
  LoadResult lossy = RunLoad(4, 500, 4, /*loss_ppm=*/20000, /*seed=*/7);
  std::printf("  conns %lld (failures %lld), retransmits %llu, link_dropped %llu\n", lossy.conns,
              lossy.failures, static_cast<unsigned long long>(lossy.retransmits),
              static_cast<unsigned long long>(lossy.link_dropped));

  std::ofstream json(BenchOutPath("BENCH_net.json"));
  json << "{\n"
       << "  \"conns\": " << main_run.conns << ",\n"
       << "  \"failures\": " << main_run.failures << ",\n"
       << "  \"clients\": " << kClients << ",\n"
       << "  \"server_workers\": " << kWorkers << ",\n"
       << "  \"virtual_s\": " << main_run.virtual_s << ",\n"
       << "  \"req_per_s\": " << main_run.req_per_s << ",\n"
       << "  \"p50_us\": " << main_run.p50_us << ",\n"
       << "  \"p99_us\": " << main_run.p99_us << ",\n"
       << "  \"cores_active\": " << main_run.cores_active << ",\n"
       << "  \"accept_drops\": " << main_run.accept_drops << ",\n"
       << "  \"lockdep_reports\": 0,\n"
       << "  \"racedet_reports\": " << main_run.racedet_reports << ",\n"
       << "  \"lossy\": {\n"
       << "    \"conns\": " << lossy.conns << ",\n"
       << "    \"failures\": " << lossy.failures << ",\n"
       << "    \"loss_ppm\": 20000,\n"
       << "    \"retransmits\": " << lossy.retransmits << ",\n"
       << "    \"link_dropped\": " << lossy.link_dropped << "\n"
       << "  }\n}\n";
  std::printf("\nwrote bench/out/BENCH_net.json\n");
}

}  // namespace
}  // namespace vos

int main() {
  vos::Run();
  return 0;
}
