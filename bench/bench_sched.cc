// Scheduler sharding + futex IPC benchmark (the "Scheduling & IPC" PR).
// Two experiments, results in BENCH_sched.json (CI smoke-runs and asserts):
//
//  1. Runqueue-wait p99 under a skewed 10k-task fan-out on 4 cores, seed
//     scheduler vs sharded. The seed (inlined below as it shipped: per-core
//     lists behind ONE global "sched" lock, no balancing) leaves every task
//     where it was enqueued — a burst landing on core 0 drains serially
//     while cores 1-3 idle. The sharded scheduler's work stealing spreads
//     the backlog, cutting the p99 wakeup→dispatch wait by ~#cores. Both
//     sides run the same fiber-less dispatch harness in virtual time, with
//     the real Sched driven through its public API.
//
//  2. Many-producer IPC throughput, futex shared-memory ring vs pipe, on a
//     real booted Prototype-5 system. Three clone'd producers stream bytes
//     to one consumer. The pipe pays two syscalls and two copies per chunk;
//     the futex channel pays one user-side copy and enters the kernel only
//     on empty/full transitions.
#include <algorithm>
#include <array>
#include <cstdio>
#include <deque>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_out.h"
#include "bench/bench_util.h"
#include "src/base/histogram.h"
#include "src/kernel/kernel.h"
#include "src/kernel/sched.h"
#include "src/kernel/spinlock.h"
#include "src/kernel/velf.h"
#include "src/ulib/ustdio.h"
#include "src/ulib/usys.h"

namespace vos {
namespace {

// --- Experiment 1: runqueue-wait p99, seed vs sharded ---------------------

constexpr int kTasks = 10000;
constexpr unsigned kCores = 4;

// The seed scheduler's placement/dispatch logic, as it shipped: per-core
// round-robin lists, one global lock, woken/new tasks stay where placed.
class SeedSched {
 public:
  explicit SeedSched(const KernelConfig& cfg) : cfg_(cfg) {}

  void AddNew(Task* t, int core_hint) {
    SpinGuard g(lock_);
    t->core = core_hint >= 0 ? static_cast<unsigned>(core_hint) : next_core_++ % kCores;
    t->state = TaskState::kRunnable;
    t->runnable_since = now;
    runq_[t->core].push_back(t);
  }

  Task* PickNext(unsigned core) {
    SpinGuard g(lock_);
    if (runq_[core].empty()) {
      return nullptr;
    }
    Task* t = runq_[core].front();
    runq_[core].pop_front();
    hist.Record(now > t->runnable_since ? now - t->runnable_since : 0);
    return t;
  }

  void OnBudget(unsigned core, Task* t) {
    SpinGuard g(lock_);
    t->state = TaskState::kRunnable;
    if (t->slice_used >= cfg_.tick_interval * cfg_.slice_ticks) {
      t->slice_used = 0;
      t->runnable_since = now;
      runq_[core].push_back(t);
    } else {
      runq_[core].push_front(t);
    }
  }

  Cycles now = 0;
  Histogram hist;

 private:
  const KernelConfig& cfg_;
  SpinLock lock_{"sched"};
  std::deque<Task*> runq_[kCores];
  unsigned next_core_ = 0;
};

struct FanoutResult {
  std::uint64_t p50 = 0;
  std::uint64_t p99 = 0;
  std::uint64_t max = 0;
};

// Work per task: mostly sub-slice jobs, with every third task long enough to
// burn a full slice and take the requeue/rotation path.
Cycles WorkFor(int i) { return i % 3 == 0 ? Ms(15) : Ms(2); }

// Drives `pick`/`stopped` over kTasks fiber-less tasks, all enqueued on
// core 0, on 4 independent per-core virtual clocks (lowest clock dispatches
// next, like the machine window loop). `set_now` feeds the wait histogram.
template <typename PickFn, typename StoppedFn, typename SetNowFn>
void Dispatch(std::vector<std::unique_ptr<Task>>& tasks, std::vector<Cycles>& remaining,
              const KernelConfig& cfg, PickFn pick, StoppedFn stopped, SetNowFn set_now) {
  const Cycles slice = cfg.tick_interval * cfg.slice_ticks;
  std::array<Cycles, kCores> clock{};
  int done = 0;
  while (done < static_cast<int>(tasks.size())) {
    unsigned c = 0;
    for (unsigned i = 1; i < kCores; ++i) {
      if (clock[i] < clock[c]) {
        c = i;
      }
    }
    set_now(clock[c]);
    Task* t = pick(c);
    if (t == nullptr) {
      // Nothing runnable (or stealable) here: this core idles past the
      // busiest clock so a core that still has work dispatches next.
      Cycles busiest = *std::max_element(clock.begin(), clock.end());
      clock[c] = busiest + 1;
      continue;
    }
    t->state = TaskState::kRunning;
    std::size_t idx = static_cast<std::size_t>(t->pid());
    Cycles run = std::min(remaining[idx], slice);
    clock[c] += run;
    t->slice_used += run;
    remaining[idx] -= run;
    if (remaining[idx] == 0) {
      t->state = TaskState::kZombie;
      ++done;
    } else {
      set_now(clock[c]);
      stopped(c, t);
    }
  }
}

FanoutResult RunSeedFanout(const KernelConfig& cfg) {
  SeedSched sched(cfg);
  std::vector<std::unique_ptr<Task>> tasks;
  std::vector<Cycles> remaining;
  for (int i = 0; i < kTasks; ++i) {
    tasks.push_back(std::make_unique<Task>(i, "bt", /*kernel_task=*/true));
    remaining.push_back(WorkFor(i));
    sched.AddNew(tasks.back().get(), /*core_hint=*/0);
  }
  Dispatch(
      tasks, remaining, cfg, [&](unsigned c) { return sched.PickNext(c); },
      [&](unsigned c, Task* t) { sched.OnBudget(c, t); },
      [&](Cycles now) { sched.now = now; });
  return {sched.hist.Percentile(50), sched.hist.Percentile(99), sched.hist.max()};
}

FanoutResult RunShardedFanout(const KernelConfig& cfg) {
  Sched sched(cfg);
  Cycles now = 0;
  Histogram wait_hist, slice_hist;
  sched.SetNowFn([&now] { return now; });
  sched.SetLatencyHists(&wait_hist, &slice_hist);
  std::vector<std::unique_ptr<Task>> tasks;
  std::vector<Cycles> remaining;
  for (int i = 0; i < kTasks; ++i) {
    tasks.push_back(std::make_unique<Task>(i, "bt", /*kernel_task=*/true));
    remaining.push_back(WorkFor(i));
    sched.AddNew(tasks.back().get(), /*core_hint=*/0);
  }
  Dispatch(
      tasks, remaining, cfg, [&](unsigned c) { return sched.PickNext(c); },
      [&](unsigned c, Task* t) {
        sched.OnTaskStopped(c, t, TaskFiber::StopReason::kBudget);
      },
      [&](Cycles n) { now = n; });
  std::uint64_t stolen = 0;
  for (unsigned c = 0; c < kCores; ++c) {
    stolen += sched.stolen_tasks(c);
  }
  std::printf("  sharded: %llu tasks migrated by stealing\n",
              static_cast<unsigned long long>(stolen));
  return {wait_hist.Percentile(50), wait_hist.Percentile(99), wait_hist.max()};
}

// --- Experiment 2: futex IPC vs pipe throughput ---------------------------

constexpr int kProducers = 3;
constexpr int kBytesPerProducer = 200000;
constexpr int kChunk = 1500;

int ProducerLoop(AppEnv& me, const std::function<std::int64_t(const void*, int)>& send) {
  std::array<std::uint8_t, kChunk> chunk;
  chunk.fill(0xAB);
  int sent = 0;
  while (sent < kBytesPerProducer) {
    int n = std::min<int>(kChunk, kBytesPerProducer - sent);
    if (send(chunk.data(), n) != n) {
      return 1;
    }
    sent += n;
  }
  return 0;
}

int IpcBenchMain(AppEnv& env) {
  Kernel* k = env.kernel;
  std::int64_t id = uipc_create(env, 0);
  IpcRing* ring = nullptr;
  if (id < 0 || uipc_map(env, static_cast<int>(id), &ring) < 0) {
    return 1;
  }
  std::int64_t t0 = uuptime_ms(env);
  for (int p = 0; p < kProducers; ++p) {
    uclone(env, [k, id, ring]() -> int {
      AppEnv me = ChildEnv(k);
      return ProducerLoop(me, [&](const void* buf, int n) {
        return uipc_send(me, static_cast<int>(id), ring, buf, n);
      });
    });
  }
  std::int64_t total = 0;
  std::uint8_t buf[4096];
  while (total < kProducers * kBytesPerProducer) {
    std::int64_t n = uipc_recv(env, static_cast<int>(id), ring, buf, sizeof(buf));
    if (n <= 0) {
      return 2;
    }
    total += n;
  }
  uprintf(env, "ipc_bytes %lld ipc_ms %lld\n", static_cast<long long>(total),
          static_cast<long long>(uuptime_ms(env) - t0));
  return 0;
}

int PipeBenchMain(AppEnv& env) {
  Kernel* k = env.kernel;
  int fds[2];
  if (upipe(env, fds) < 0) {
    return 1;
  }
  std::int64_t t0 = uuptime_ms(env);
  for (int p = 0; p < kProducers; ++p) {
    uclone(env, [k, wfd = fds[1]]() -> int {
      AppEnv me = ChildEnv(k);
      return ProducerLoop(me, [&](const void* buf, int n) {
        // A pipe writer loops on short writes the same way uipc_send does.
        const std::uint8_t* p8 = static_cast<const std::uint8_t*>(buf);
        int done = 0;
        while (done < n) {
          std::int64_t w = uwrite(me, wfd, p8 + done, static_cast<std::uint32_t>(n - done));
          if (w <= 0) {
            return std::int64_t{-1};
          }
          done += static_cast<int>(w);
        }
        return std::int64_t{n};
      });
    });
  }
  std::int64_t total = 0;
  std::uint8_t buf[4096];
  while (total < kProducers * kBytesPerProducer) {
    std::int64_t n = uread(env, fds[0], buf, sizeof(buf));
    if (n <= 0) {
      return 2;
    }
    total += n;
  }
  uprintf(env, "pipe_bytes %lld pipe_ms %lld\n", static_cast<long long>(total),
          static_cast<long long>(uuptime_ms(env) - t0));
  return 0;
}

AppRegistrar sched_ipc_app("schedipc", IpcBenchMain, 1024, 4 << 20);
AppRegistrar sched_pipe_app("schedpipe", PipeBenchMain, 1024, 4 << 20);

// Boots a fresh proto5 system, runs `name` as a user program, and returns
// virtual-time MB/s parsed from its "<key>_bytes / <key>_ms" serial line.
double RunIpcExperiment(const std::string& name, const std::string& key) {
  SystemOptions opt = OptionsForStage(Stage::kProto5);
  opt.with_media_assets = false;
  System sys(opt);
  std::int64_t rc = sys.RunProgram(name, {});
  if (rc != 0) {
    std::printf("  %s: program failed rc=%lld\n", name.c_str(), static_cast<long long>(rc));
    return 0;
  }
  const std::string serial = sys.SerialOutput();
  double bytes = ParseMetric(serial, key + "_bytes ").value_or(0);
  double ms = ParseMetric(serial, key + "_ms ").value_or(0);
  return ms > 0 ? (bytes / 1e6) / (ms / 1e3) : 0;
}

void Run() {
  KernelConfig cfg;  // proto5 defaults: 4 cores, rr policy, stealing on
  std::printf("runqueue-wait p99, %d tasks fanned onto core 0 of %u cores:\n", kTasks, kCores);
  FanoutResult seed = RunSeedFanout(cfg);
  FanoutResult sharded = RunShardedFanout(cfg);
  double p99_speedup = sharded.p99 > 0 ? double(seed.p99) / double(sharded.p99) : 0;
  std::printf("  %-8s p50 %10.2f ms   p99 %10.2f ms   max %10.2f ms\n", "seed",
              ToMs(seed.p50), ToMs(seed.p99), ToMs(seed.max));
  std::printf("  %-8s p50 %10.2f ms   p99 %10.2f ms   max %10.2f ms\n", "sharded",
              ToMs(sharded.p50), ToMs(sharded.p99), ToMs(sharded.max));
  std::printf("  p99 speedup %.2fx\n\n", p99_speedup);

  std::printf("IPC throughput, %d producers x %d bytes (virtual time):\n", kProducers,
              kBytesPerProducer);
  double pipe_mbps = RunIpcExperiment("schedpipe", "pipe");
  double ipc_mbps = RunIpcExperiment("schedipc", "ipc");
  double ipc_speedup = pipe_mbps > 0 ? ipc_mbps / pipe_mbps : 0;
  std::printf("  pipe  %8.2f MB/s\n", pipe_mbps);
  std::printf("  futex %8.2f MB/s\n", ipc_mbps);
  std::printf("  speedup %.2fx\n", ipc_speedup);

  std::ofstream json(BenchOutPath("BENCH_sched.json"));
  json << "{\n"
       << "  \"fanout_tasks\": " << kTasks << ",\n"
       << "  \"cores\": " << kCores << ",\n"
       << "  \"runq_wait\": {\n"
       << "    \"seed_p50_ms\": " << ToMs(seed.p50) << ",\n"
       << "    \"seed_p99_ms\": " << ToMs(seed.p99) << ",\n"
       << "    \"sharded_p50_ms\": " << ToMs(sharded.p50) << ",\n"
       << "    \"sharded_p99_ms\": " << ToMs(sharded.p99) << ",\n"
       << "    \"p99_speedup\": " << p99_speedup << "\n"
       << "  },\n"
       << "  \"ipc\": {\n"
       << "    \"producers\": " << kProducers << ",\n"
       << "    \"bytes_per_producer\": " << kBytesPerProducer << ",\n"
       << "    \"pipe_mb_per_s\": " << pipe_mbps << ",\n"
       << "    \"futex_mb_per_s\": " << ipc_mbps << ",\n"
       << "    \"speedup\": " << ipc_speedup << "\n"
       << "  }\n}\n";
  std::printf("\nwrote bench/out/BENCH_sched.json\n");
}

}  // namespace
}  // namespace vos

int main() {
  vos::Run();
  return 0;
}
