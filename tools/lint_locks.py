#!/usr/bin/env python3
"""Locking-discipline lint for the vos kernel sources.

Two rules, both mechanical:

1. SpinGuard only: no naked `.Acquire()` / `->Acquire()` / `.Release()` /
   `->Release()` calls in src/**. RAII scoping is what keeps the lockdep
   held-stack, the IRQ-off refcount, and exception unwinding consistent.
   Lines that genuinely need a naked call (the SpinLock implementation
   itself, the xv6 sleep-lock dance) carry a `// lockdep: naked-ok` marker
   explaining why. Only empty-argument calls match, so unrelated methods
   like `Bcache::Release(buf)` are untouched.

2. Every SpinLock declaration names its lock class with a string literal
   (`SpinLock lock_{"bcache"};` or `SpinLock l("sched")`): the class name
   keys the lockdep order graph, so an unnamed lock would be invisible to
   the validator's reports.

3. The class name must come from the allowlist below, which mirrors the
   lock-hierarchy table in DESIGN.md §7. A typo ("slab_depot" for
   "slab-depot") would otherwise silently split a class in two and dodge
   both the order graph and the /proc/lockdep report. Adding a lock class
   is a DESIGN.md change first, then a lint change.

Exit status 0 = clean, 1 = findings (printed one per line, grep-style).
"""

import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO / "src"

# Keep in sync with the DESIGN.md §7 hierarchy table.
KNOWN_CLASSES = {
    "sched",
    "sched-core",
    "semtable",
    "pipe",
    "ipc",
    "metrics",
    "bcache",
    "pmm",
    "slab-depot",
    "faultinject",
}

NAKED_CALL = re.compile(r"(?:\.|->)(Acquire|Release)\(\s*\)")
NAKED_OK = re.compile(r"//\s*lockdep:\s*naked-ok")
# Locks whose class name is built at runtime (per-core instances like
# "sched-core0".."sched-core3" share one class stem) can't open their
# initializer with a string literal; they declare the class explicitly:
#   SpinLock lock;  // lockdep: class sched-core
CLASS_MARKER = re.compile(r"//\s*lockdep:\s*class\s+([\w-]+)")
# A SpinLock variable declaration (member or local), not a reference/pointer
# parameter and not the class definition itself. The initializer must open
# with a string literal: SpinLock x{"name"} / SpinLock x("name").
SPINLOCK_DECL = re.compile(r"^\s*(?:mutable\s+)?SpinLock\s+(\w+)\s*(.*)$")
NAMED_INIT = re.compile(r"^[({]\s*\"")


def lint_file(path: pathlib.Path) -> list[str]:
    findings = []
    rel = path.relative_to(REPO)
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if NAKED_CALL.search(line) and not NAKED_OK.search(line):
            findings.append(
                f"{rel}:{lineno}: naked Acquire()/Release() — use SpinGuard, "
                f"or justify with '// lockdep: naked-ok (<reason>)'"
            )
        decl = SPINLOCK_DECL.match(line)
        if decl:
            rest = decl.group(2).strip()
            # `SpinLock& lk` parameters and forward uses don't declare a lock.
            if decl.group(1) in ("lock", "l") and rest.startswith(")"):
                continue
            marker = CLASS_MARKER.search(line)
            if not NAMED_INIT.match(rest):
                if marker:
                    name = marker.group(1)
                    if name not in KNOWN_CLASSES:
                        findings.append(
                            f"{rel}:{lineno}: lockdep class marker \"{name}\" is not "
                            f"in the lint allowlist — add it to DESIGN.md §7 and "
                            f"tools/lint_locks.py KNOWN_CLASSES together"
                        )
                    continue
                findings.append(
                    f"{rel}:{lineno}: SpinLock '{decl.group(1)}' has no string-literal "
                    f"class name — lockdep cannot report it (runtime-built names may "
                    f"use '// lockdep: class <name>')"
                )
                continue
            name = rest.split('"')[1]
            if name not in KNOWN_CLASSES:
                findings.append(
                    f"{rel}:{lineno}: SpinLock class \"{name}\" is not in the "
                    f"lint allowlist — add it to DESIGN.md §7 and "
                    f"tools/lint_locks.py KNOWN_CLASSES together"
                )
    return findings


def main() -> int:
    findings = []
    for path in sorted(SRC.rglob("*")):
        if path.suffix in (".h", ".cc"):
            findings.extend(lint_file(path))
    for f in findings:
        print(f)
    if findings:
        print(f"lint_locks: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("lint_locks: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
