#!/usr/bin/env python3
"""Locking-discipline lint for the vos kernel sources.

Rules, all mechanical (marker language lives in lint_markers.py):

1. SpinGuard only: no naked `.Acquire()` / `->Acquire()` / `.Release()` /
   `->Release()` calls in src/**. RAII scoping is what keeps the lockdep
   held-stack, the IRQ-off refcount, and exception unwinding consistent.
   Lines that genuinely need a naked call carry a `// lockdep: naked-ok`
   marker explaining why — but the marker is only honored in the files
   allowed to play that game (the SpinLock implementation itself and the
   scheduler's xv6 sleep-lock dance). Anywhere else, even a justified-looking
   naked call is a finding: move the code or use SpinGuard. Only
   empty-argument calls match, so unrelated methods like
   `Bcache::Release(buf)` are untouched.

2. Every SpinLock declaration names its lock class with a string literal
   (`SpinLock lock_{"bcache"};` or `SpinLock l("sched")`): the class name
   keys the lockdep order graph, so an unnamed lock would be invisible to
   the validator's reports.

3. The class name must come from lint_markers.KNOWN_CLASSES, which mirrors
   the lock-hierarchy table in DESIGN.md §7. A typo ("slab_depot" for
   "slab-depot") would otherwise silently split a class in two and dodge
   both the order graph and the /proc/lockdep report. Adding a lock class
   is a DESIGN.md change first, then a lint_markers.py change.

4. The allowlist itself must stay alphabetically sorted (checked here), so
   additions stay one-line diffs.

Exit status 0 = clean, 1 = findings (printed one per line, grep-style).
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
import lint_markers as m

# The only files where `// lockdep: naked-ok` is honored: the SpinLock
# implementation (it *is* the Acquire/Release definition site) and the
# scheduler's SleepOn release-park-reacquire dance.
NAKED_OK_FILES = {
    "src/kernel/sched.cc",
    "src/kernel/spinlock.cc",
    "src/kernel/spinlock.h",
}


def lint_file(path: pathlib.Path) -> list[str]:
    findings = []
    rel = path.relative_to(m.REPO)
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if m.NAKED_CALL.search(line):
            if not m.NAKED_OK.search(line):
                findings.append(
                    f"{rel}:{lineno}: naked Acquire()/Release() — use SpinGuard, "
                    f"or justify with '// lockdep: naked-ok (<reason>)'"
                )
            elif str(rel) not in NAKED_OK_FILES:
                findings.append(
                    f"{rel}:{lineno}: '// lockdep: naked-ok' is only honored in "
                    f"{', '.join(sorted(NAKED_OK_FILES))} — use SpinGuard here"
                )
        decl = m.SPINLOCK_DECL.match(line)
        if decl:
            rest = decl.group(2).strip()
            # `SpinLock& lk` parameters and forward uses don't declare a lock.
            if decl.group(1) in ("lock", "l") and rest.startswith(")"):
                continue
            marker = m.CLASS_MARKER.search(line)
            if not m.NAMED_INIT.match(rest):
                if marker:
                    name = marker.group(1)
                    if name not in m.KNOWN_CLASSES:
                        findings.append(
                            f'{rel}:{lineno}: lockdep class marker "{name}" is not '
                            f"in the lint allowlist — add it to DESIGN.md §7 and "
                            f"tools/lint_markers.py KNOWN_CLASSES together"
                        )
                    continue
                findings.append(
                    f"{rel}:{lineno}: SpinLock '{decl.group(1)}' has no string-literal "
                    f"class name — lockdep cannot report it (runtime-built names may "
                    f"use '// lockdep: class <name>')"
                )
                continue
            name = rest.split('"')[1]
            if name not in m.KNOWN_CLASSES:
                findings.append(
                    f'{rel}:{lineno}: SpinLock class "{name}" is not in the '
                    f"lint allowlist — add it to DESIGN.md §7 and "
                    f"tools/lint_markers.py KNOWN_CLASSES together"
                )
    return findings


def main() -> int:
    findings = m.check_classes_sorted()
    for path in m.source_files():
        findings.extend(lint_file(path))
    for f in findings:
        print(f)
    if findings:
        print(f"lint_locks: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("lint_locks: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
