#!/usr/bin/env python3
"""Shared marker parser for the concurrency-discipline lint suite.

Both lint_locks.py (lockdep discipline) and lint_shared_state.py (racedet
annotation discipline) consume the same comment-marker language from the C++
sources. This module is the single place that language is defined:

  // lockdep: naked-ok (<reason>)     justify a naked Acquire()/Release()
  // lockdep: class <name>            class of a runtime-named SpinLock
  // racedet: shared (<guard>)        field must be accessed via RD_* macros
  // racedet: ok (<reason>)           one-line escape for a shared field
  // racedet: percore (<reason>)      reviewed: per-core by construction

plus the lock-class allowlist mirroring the DESIGN.md §7 hierarchy table.
"""

import pathlib
import re

REPO = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO / "src"

# Keep in sync with the DESIGN.md §7 hierarchy table. The tuple MUST stay
# alphabetically sorted — check_classes_sorted() fails the lint otherwise, so
# diffs stay one-line and merge conflicts stay trivial.
KNOWN_CLASSES = (
    "bcache",
    "faultinject",
    "ipc",
    "journal",
    "metrics",
    "net",
    "nic",
    "pipe",
    "pmm",
    "profiler",
    "racedet-self",
    "sched",
    "sched-core",
    "semtable",
    "slab-depot",
)

NAKED_CALL = re.compile(r"(?:\.|->)(Acquire|Release)\(\s*\)")
NAKED_OK = re.compile(r"//\s*lockdep:\s*naked-ok")
CLASS_MARKER = re.compile(r"//\s*lockdep:\s*class\s+([\w-]+)")
RACEDET_SHARED = re.compile(r"//\s*racedet:\s*shared\b")
RACEDET_OK = re.compile(r"//\s*racedet:\s*ok\b")
RACEDET_PERCORE = re.compile(r"//\s*racedet:\s*percore\b")
# A SpinLock variable declaration (member or local), not a reference/pointer
# parameter and not the class definition itself. The initializer must open
# with a string literal: SpinLock x{"name"} / SpinLock x("name").
SPINLOCK_DECL = re.compile(r"^\s*(?:mutable\s+)?SpinLock\s+(\w+)\s*(.*)$")
NAMED_INIT = re.compile(r'^[({]\s*"')


def check_classes_sorted():
    """Returns a list of findings (empty = the allowlist is sorted+unique)."""
    findings = []
    if list(KNOWN_CLASSES) != sorted(KNOWN_CLASSES):
        findings.append(
            "tools/lint_markers.py: KNOWN_CLASSES is not alphabetically "
            "sorted — keep the allowlist ordered"
        )
    if len(set(KNOWN_CLASSES)) != len(KNOWN_CLASSES):
        findings.append("tools/lint_markers.py: KNOWN_CLASSES has duplicates")
    return findings


def source_files():
    """All C++ sources the lints scan, in deterministic order."""
    return [p for p in sorted(SRC.rglob("*")) if p.suffix in (".h", ".cc")]


def strip_comment(line: str) -> str:
    """Code portion of a line ('//...' removed; markers live in the comment)."""
    idx = line.find("//")
    return line if idx < 0 else line[:idx]


def declared_field(line: str):
    """Field name from a member-declaration line, or None.

    Handles `type name;`, `type name = init;`, `type name{init};`, and
    `type name[extent];` — the name is the last identifier before the
    array extent / initializer / semicolon.
    """
    code = strip_comment(line)
    m = re.search(r"([A-Za-z_]\w*)\s*(?:\[[^\]]*\])?\s*(?:=[^;]*|\{[^;]*\})?;\s*$", code)
    return m.group(1) if m else None
