#!/usr/bin/env python3
"""Convert a VOS text trace dump (/dev/trace format) to Chrome trace-event JSON.

The input is the one-record-per-line text format emitted by /dev/trace and
FormatTraceText():

    <ts_ns> <core> <event_name> <pid> <a> <b>

The output is a Chrome trace-event JSON object loadable in Perfetto
(https://ui.perfetto.dev) or chrome://tracing. Syscall and IRQ enter/exit
records become B/E duration events so the viewer renders spans; profiler
sample records (prof_sample) become per-core counter tracks so sampling
cadence and weight are visible as a graph; watchdog barks render as named
instants carrying the offender pid. Everything else becomes a thread-scoped
instant event. This mirrors FormatChromeTrace() in src/kernel/trace.cc, for
use on dumps pulled off a serial log or saved to the SD image without
re-running the simulator.

Usage:
    tools/trace2perfetto.py [input.txt] [output.json]

With no arguments, reads stdin and writes stdout.
"""

import json
import sys


def convert(text):
    events = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 6:
            raise ValueError(f"line {lineno}: expected 6 fields, got {len(parts)}: {line!r}")
        ts, core, name, pid, a, b = parts
        ts, core, pid, a, b = int(ts), int(core), int(pid), int(a), int(b)
        ev = {
            "cat": "kernel",
            "ts": ts / 1000.0,  # trace-event ts is in microseconds
            "pid": pid,
            "tid": core,
            "args": {"a": a, "b": b},
        }
        if name in ("syscall_enter", "syscall_exit"):
            ev["name"] = f"syscall_{a}"
            ev["ph"] = "B" if name == "syscall_enter" else "E"
        elif name in ("irq_enter", "irq_exit"):
            ev["name"] = f"irq_{a}"
            ev["ph"] = "B" if name == "irq_enter" else "E"
        elif name == "prof_sample":
            # Counter track per core: sample weight over time. a is the stack
            # hash (kept in args), b is the weight.
            ev["name"] = f"prof_samples_core{core}"
            ev["ph"] = "C"
            ev["args"] = {"weight": b, "stack_hash": a}
        elif name == "watchdog_bark":
            ev["name"] = f"watchdog_bark_core{b}"
            ev["ph"] = "I"
            ev["s"] = "g"  # global scope: a bark is a machine-wide incident
            ev["args"] = {"offender_pid": pid, "stalled_cycles": a, "core": b}
        else:
            ev["name"] = name
            ev["ph"] = "I"
            ev["s"] = "t"
        events.append(ev)
    return {"displayTimeUnit": "ns", "traceEvents": events}


def main(argv):
    if len(argv) > 3:
        print(__doc__, file=sys.stderr)
        return 2
    text = open(argv[1]).read() if len(argv) > 1 else sys.stdin.read()
    try:
        doc = convert(text)
    except ValueError as e:
        print(f"trace2perfetto: {e}", file=sys.stderr)
        return 1
    out = open(argv[2], "w") if len(argv) > 2 else sys.stdout
    json.dump(doc, out)
    out.write("\n")
    if out is not sys.stdout:
        out.close()
        print(f"trace2perfetto: {len(doc['traceEvents'])} events -> {argv[2]}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
