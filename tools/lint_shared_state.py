#!/usr/bin/env python3
"""Racedet annotation-discipline lint.

The dynamic checker (src/kernel/racedet.h) only sees accesses that go
through the RD_* macros — an unannotated raw access is invisible to it.
This lint closes that hole statically: every field marked

    <type> name_;  // racedet: shared (<guard>)

may only be touched through RD_READ(...)/RD_WRITE(...), inside a scope
guarded by RD_EXCLUDE_SCOPE("reason"), or on a line carrying an explicit
`// racedet: ok (<reason>)` escape.

Scoping: a marked field is tied to its compilation unit by file stem —
`sched.h` fields are checked across `sched.h` + `sched.cc` in the same
directory (kernel-style "the subsystem owns its state"). A raw access from
an unrelated file escapes this lint but not the dynamic checker.

Mechanical details:
  - RD_READ/RD_WRITE/RD_ASSERT_HELD argument spans are removed with balanced
    parenthesis matching before searching, so `RD_WRITE(rq.q[LevelOf(t)])`
    does not trip on `q`.
  - Exclusion regions are tracked by brace depth: RD_EXCLUDE_SCOPE is an
    RAII object, live until its enclosing brace closes.
  - Comments and string literals are stripped; markers live in comments.
  - Every RD_EXCLUDE_SCOPE must carry a non-empty reason string, and every
    `// racedet: shared` marker must sit on a parsable field declaration
    (otherwise it silently guards nothing).

Exit status 0 = clean, 1 = findings (printed one per line, grep-style).
"""

import pathlib
import re
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
import lint_markers as m

RD_MACROS = ("RD_READ", "RD_WRITE", "RD_ASSERT_HELD")
EXCLUDE_SCOPE = re.compile(r"\bRD_EXCLUDE_SCOPE\s*\(")
EXCLUDE_REASON = re.compile(r'\bRD_EXCLUDE_SCOPE\s*\(\s*"([^"]*)"')


def strip_strings(code: str) -> str:
    return re.sub(r'"(?:[^"\\]|\\.)*"', '""', code)


def strip_rd_macros(code: str) -> str:
    """Removes RD_READ(...)/RD_WRITE(...)/RD_ASSERT_HELD(...) spans, balanced."""
    out = []
    i = 0
    while i < len(code):
        for macro in RD_MACROS:
            if code.startswith(macro, i) and not (i > 0 and (code[i - 1].isalnum() or code[i - 1] == "_")):
                j = i + len(macro)
                while j < len(code) and code[j].isspace():
                    j += 1
                if j < len(code) and code[j] == "(":
                    depth = 0
                    while j < len(code):
                        if code[j] == "(":
                            depth += 1
                        elif code[j] == ")":
                            depth -= 1
                            if depth == 0:
                                break
                        j += 1
                    i = j + 1
                    break
        else:
            out.append(code[i])
            i += 1
    return "".join(out)


def unit_of(path: pathlib.Path):
    """(directory, stem) — sched.h and sched.cc form one unit."""
    return (path.parent, path.stem)


def collect_marked_fields(files):
    """{unit: [(field, decl_path, decl_line)]}, plus marker findings."""
    fields = {}
    findings = []
    for path in files:
        rel = path.relative_to(m.REPO)
        for lineno, line in enumerate(path.read_text().splitlines(), start=1):
            if not m.RACEDET_SHARED.search(line):
                continue
            name = m.declared_field(line)
            if name is None:
                findings.append(
                    f"{rel}:{lineno}: '// racedet: shared' marker is not on a "
                    f"parsable field declaration — it guards nothing"
                )
                continue
            fields.setdefault(unit_of(path), []).append((name, path, lineno))
    return fields, findings


def lint_unit_file(path: pathlib.Path, names) -> list[str]:
    findings = []
    rel = path.relative_to(m.REPO)
    patterns = {n: re.compile(rf"\b{re.escape(n)}\b") for n in names}
    depth = 0
    exclude_depths = []  # brace depths at which an RD_EXCLUDE_SCOPE is live
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        code = strip_strings(m.strip_comment(line))
        if code.lstrip().startswith("#"):
            # Preprocessor lines (including the RD_* macro definitions
            # themselves) are not accesses; keep brace depth honest.
            depth += code.count("{") - code.count("}")
            continue
        while exclude_depths and depth < exclude_depths[-1]:
            exclude_depths.pop()
        excluded = bool(exclude_depths) and depth >= exclude_depths[-1]
        if EXCLUDE_SCOPE.search(code):
            reason = EXCLUDE_REASON.search(strip_strings_keep(line))
            if reason is None or not reason.group(1).strip():
                findings.append(
                    f"{rel}:{lineno}: RD_EXCLUDE_SCOPE needs a non-empty reason "
                    f"string documenting why this region is lock-free by design"
                )
            exclude_depths.append(depth)
            excluded = True
        opens = code.count("{")
        closes = code.count("}")
        if not excluded and not m.RACEDET_SHARED.search(line) and not m.RACEDET_OK.search(line):
            remainder = strip_rd_macros(code)
            for name, pat in patterns.items():
                if pat.search(remainder):
                    findings.append(
                        f"{rel}:{lineno}: raw access to racedet-shared field "
                        f"'{name}' — wrap in RD_READ/RD_WRITE, move into an "
                        f"RD_EXCLUDE_SCOPE region, or justify with "
                        f"'// racedet: ok (<reason>)'"
                    )
        depth += opens - closes
        while exclude_depths and depth < exclude_depths[-1]:
            exclude_depths.pop()
    return findings


def strip_strings_keep(line: str) -> str:
    """Comment-stripped line with string contents kept (for reason checks)."""
    return m.strip_comment(line)


def main() -> int:
    files = m.source_files()
    fields, findings = collect_marked_fields(files)
    by_unit = {}
    for path in files:
        by_unit.setdefault(unit_of(path), []).append(path)
    for unit, marked in sorted(fields.items(), key=lambda kv: (str(kv[0][0]), kv[0][1])):
        names = sorted({name for name, _, _ in marked})
        for path in by_unit.get(unit, []):
            findings.extend(lint_unit_file(path, names))
    # Reason hygiene for files with exclusions but no marked fields (e.g.
    # trace.cc's documentary scopes).
    marked_units = set(fields)
    for unit, paths in sorted(by_unit.items(), key=lambda kv: (str(kv[0][0]), kv[0][1])):
        if unit in marked_units:
            continue
        for path in paths:
            findings.extend(lint_unit_file(path, []))
    total_fields = sum(len(v) for v in fields.values())
    for f in findings:
        print(f)
    if findings:
        print(f"lint_shared_state: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print(f"lint_shared_state: clean ({total_fields} shared fields across "
          f"{len(fields)} units)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
