#!/usr/bin/env python3
"""Check that every TraceEvent enumerator has a name, and vice versa.

Four places must stay in lockstep:
  1. the `enum class TraceEvent` members in src/kernel/trace.h,
  2. the `case TraceEvent::kX:` labels in TraceRing::EventName (trace.cc),
  3. the kAllTraceEvents table used by EventFromName (trace.cc),
  4. the event names special-cased by tools/trace2perfetto.py.

A new enumerator that misses (2) dumps as "?" and breaks the text round-trip;
one that misses (3) makes ParseTraceText reject valid dumps; a renamed event
that (4) still special-cases silently falls back to a generic instant in the
Perfetto converter. This lint fails CI on any drift. Run from anywhere: paths
are resolved relative to this file.
"""

import os
import re
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
TRACE_H = os.path.join(ROOT, "src", "kernel", "trace.h")
TRACE_CC = os.path.join(ROOT, "src", "kernel", "trace.cc")
PERFETTO_PY = os.path.join(ROOT, "tools", "trace2perfetto.py")


def enum_members(text):
    m = re.search(r"enum class TraceEvent[^{]*\{(.*?)\};", text, re.S)
    if not m:
        sys.exit("lint_trace_events: cannot find `enum class TraceEvent` in trace.h")
    members = []
    for line in m.group(1).splitlines():
        line = re.sub(r"//.*", "", line).strip()
        mm = re.match(r"(k\w+)\s*(=\s*\d+)?\s*,?$", line)
        if mm:
            members.append(mm.group(1))
    return members


def case_labels(text):
    body = re.search(r"std::string TraceRing::EventName\(TraceEvent ev\)\s*\{(.*?)\n\}", text, re.S)
    if not body:
        sys.exit("lint_trace_events: cannot find TraceRing::EventName in trace.cc")
    return re.findall(r"case TraceEvent::(k\w+):", body.group(1))


def table_entries(text):
    m = re.search(r"kAllTraceEvents\[\]\s*=\s*\{(.*?)\};", text, re.S)
    if not m:
        sys.exit("lint_trace_events: cannot find kAllTraceEvents table in trace.cc")
    return re.findall(r"TraceEvent::(k\w+)", m.group(1))


def event_name_strings(text):
    body = re.search(r"std::string TraceRing::EventName\(TraceEvent ev\)\s*\{(.*?)\n\}", text, re.S)
    if not body:
        sys.exit("lint_trace_events: cannot find TraceRing::EventName in trace.cc")
    return re.findall(r'return\s+"([a-z0-9_]+)"', body.group(1))


def perfetto_special_cases(text):
    # Names the converter compares `name` against: `name == "x"` and
    # `name in ("x", "y")` forms.
    names = set(re.findall(r'name\s*==\s*"([a-z0-9_]+)"', text))
    for group in re.findall(r'name\s+in\s*\(([^)]*)\)', text):
        names.update(re.findall(r'"([a-z0-9_]+)"', group))
    return names


def main():
    enum = enum_members(open(TRACE_H).read())
    cc = open(TRACE_CC).read()
    cases = case_labels(cc)
    table = table_entries(cc)

    ok = True
    for what, got in (("EventName case", cases), ("kAllTraceEvents entry", table)):
        missing = [e for e in enum if e not in got]
        stale = [e for e in got if e not in enum]
        dupes = sorted({e for e in got if got.count(e) > 1})
        for e in missing:
            print(f"lint_trace_events: TraceEvent::{e} has no {what}")
            ok = False
        for e in stale:
            print(f"lint_trace_events: {what} TraceEvent::{e} is not an enumerator")
            ok = False
        for e in dupes:
            print(f"lint_trace_events: duplicate {what} TraceEvent::{e}")
            ok = False

    # (4) trace2perfetto.py may only special-case names EventName can emit.
    emitted = set(event_name_strings(cc))
    for name in sorted(perfetto_special_cases(open(PERFETTO_PY).read())):
        if name not in emitted:
            print(f"lint_trace_events: trace2perfetto.py special-cases {name!r}, "
                  "which EventName never emits")
            ok = False

    if ok:
        print(f"lint_trace_events: OK ({len(enum)} events, names and table complete)")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
