#!/usr/bin/env python3
"""Convert a /proc/profile folded-stack dump to flamegraph collapsed format.

The input is the text /proc/profile emits (and `prof dump` saves): '#'-prefixed
header lines, then one line per unique stack:

    <mode>;<task>;<frame>;...;<frame> <weight>

where <mode> is "oncpu" (weight = sample periods) or "offcpu" (weight = µs
blocked). The output is the semicolon-collapsed format flamegraph.pl and
speedscope consume: the mode prefix is stripped, the task name stays as the
stack root, and weights for identical stacks are summed.

Usage:
    tools/prof2flame.py [--mode oncpu|offcpu|all] [input.txt] [output.txt]

With no file arguments, reads stdin and writes stdout. Default mode is oncpu
(the classic CPU flamegraph); --mode offcpu selects the blocked-time graph.
"""

import sys
from collections import defaultdict


def convert(text, mode="oncpu"):
    stacks = defaultdict(int)
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        head, sep, weight = line.rpartition(" ")
        if not sep or not weight.isdigit():
            raise ValueError(f"line {lineno}: expected '<stack> <weight>': {line!r}")
        parts = head.split(";")
        if len(parts) < 2 or parts[0] not in ("oncpu", "offcpu"):
            raise ValueError(f"line {lineno}: expected 'oncpu;...' or 'offcpu;...': {line!r}")
        if mode != "all" and parts[0] != mode:
            continue
        stacks[";".join(parts[1:])] += int(weight)
    return stacks


def main(argv):
    mode = "oncpu"
    args = []
    i = 1
    while i < len(argv):
        if argv[i] == "--mode":
            if i + 1 >= len(argv) or argv[i + 1] not in ("oncpu", "offcpu", "all"):
                print(__doc__, file=sys.stderr)
                return 2
            mode = argv[i + 1]
            i += 2
        else:
            args.append(argv[i])
            i += 1
    if len(args) > 2:
        print(__doc__, file=sys.stderr)
        return 2
    text = open(args[0]).read() if args else sys.stdin.read()
    try:
        stacks = convert(text, mode)
    except ValueError as e:
        print(f"prof2flame: {e}", file=sys.stderr)
        return 1
    out = open(args[1], "w") if len(args) > 1 else sys.stdout
    for stack in sorted(stacks):
        out.write(f"{stack} {stacks[stack]}\n")
    if out is not sys.stdout:
        out.close()
        print(f"prof2flame: {len(stacks)} stacks ({mode}) -> {args[1]}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
