// VMV: the MPEG-1-style video codec the video player decodes (the paper's
// MPEG-1 substitute; see DESIGN.md §2). Real block-transform video coding:
// YUV420 input, 8x8 DCT, quantization, zig-zag scan, run-length + signed
// Exp-Golomb entropy coding; I-frames (intra) and P-frames with per-16x16-
// macroblock motion vectors (±7 full-pel search) and coded residuals or skip
// flags. The encoder lives here too, so benches generate real bitstreams.
#ifndef VOS_SRC_MEDIA_VMV_H_
#define VOS_SRC_MEDIA_VMV_H_

#include <cstdint>
#include <optional>
#include <vector>

namespace vos {

struct YuvFrame {
  std::uint32_t width = 0;
  std::uint32_t height = 0;
  std::vector<std::uint8_t> y;  // w*h
  std::vector<std::uint8_t> u;  // (w/2)*(h/2)
  std::vector<std::uint8_t> v;

  void Allocate(std::uint32_t w, std::uint32_t h);
};

struct VmvHeader {
  std::uint32_t width = 0;
  std::uint32_t height = 0;
  std::uint32_t fps = 30;
  std::uint32_t frame_count = 0;
};

struct VmvEncodeOptions {
  std::uint32_t fps = 30;
  int quant = 8;           // quantizer step (larger = smaller/lossier)
  int gop = 12;            // I-frame interval
  int search_range = 7;    // motion search ±range
};

class VmvEncoder {
 public:
  VmvEncoder(std::uint32_t w, std::uint32_t h, VmvEncodeOptions opt = {});
  void AddFrame(const YuvFrame& frame);
  std::vector<std::uint8_t> Finish();

 private:
  VmvEncodeOptions opt_;
  VmvHeader hdr_;
  YuvFrame ref_;
  std::vector<std::uint8_t> payload_;
  int frame_index_ = 0;
};

struct VmvDecodeStats {
  std::uint64_t blocks_decoded = 0;    // 8x8 transform blocks
  std::uint64_t mbs_skipped = 0;
  std::uint64_t mbs_inter = 0;
  std::uint64_t mbs_intra = 0;
};

class VmvDecoder {
 public:
  // Parses the header; returns false on malformed input.
  bool Open(const std::uint8_t* data, std::size_t len);
  const VmvHeader& header() const { return hdr_; }

  // Decodes the next frame into `out`; false at end of stream or on error.
  bool DecodeFrame(YuvFrame* out);

  const VmvDecodeStats& stats() const { return stats_; }
  // Transform blocks decoded in the most recent frame (drives the decode
  // cost model in the player).
  std::uint64_t last_frame_blocks() const { return last_frame_blocks_; }

 private:
  VmvHeader hdr_;
  const std::uint8_t* data_ = nullptr;
  std::size_t len_ = 0;
  std::size_t pos_ = 0;
  YuvFrame ref_;
  std::uint32_t frames_done_ = 0;
  VmvDecodeStats stats_;
  std::uint64_t last_frame_blocks_ = 0;
};

// 8x8 forward/inverse DCT (exposed for tests; inverse(forward(x)) ~= x).
void Dct8x8(const std::int16_t in[64], std::int32_t out[64]);
void Idct8x8(const std::int32_t in[64], std::int16_t out[64]);

// Generates `n` frames of a synthetic test scene (moving gradients + bouncing
// box) — the bench content generator.
std::vector<YuvFrame> SynthesizeScene(std::uint32_t w, std::uint32_t h, int n);

// PSNR between two luma planes (test quality bound).
double PsnrLuma(const YuvFrame& a, const YuvFrame& b);

}  // namespace vos

#endif  // VOS_SRC_MEDIA_VMV_H_
