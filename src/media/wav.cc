#include "src/media/wav.h"

#include <cmath>
#include <cstring>

namespace vos {

namespace {
std::uint16_t R16(const std::uint8_t* p) { return std::uint16_t(p[0] | (p[1] << 8)); }
std::uint32_t R32(const std::uint8_t* p) {
  return std::uint32_t(p[0]) | (std::uint32_t(p[1]) << 8) | (std::uint32_t(p[2]) << 16) |
         (std::uint32_t(p[3]) << 24);
}
void W16(std::vector<std::uint8_t>& v, std::uint16_t x) {
  v.push_back(static_cast<std::uint8_t>(x));
  v.push_back(static_cast<std::uint8_t>(x >> 8));
}
void W32(std::vector<std::uint8_t>& v, std::uint32_t x) {
  W16(v, static_cast<std::uint16_t>(x));
  W16(v, static_cast<std::uint16_t>(x >> 16));
}
}  // namespace

std::optional<WavData> WavDecode(const std::uint8_t* data, std::size_t len) {
  if (len < 44 || std::memcmp(data, "RIFF", 4) != 0 || std::memcmp(data + 8, "WAVE", 4) != 0) {
    return std::nullopt;
  }
  WavData out;
  std::size_t pos = 12;
  bool have_fmt = false;
  while (pos + 8 <= len) {
    std::uint32_t chunk_len = R32(data + pos + 4);
    if (std::memcmp(data + pos, "fmt ", 4) == 0 && chunk_len >= 16) {
      if (R16(data + pos + 8) != 1 || R16(data + pos + 22) != 16) {
        return std::nullopt;  // PCM16 only
      }
      out.channels = R16(data + pos + 10);
      out.sample_rate = R32(data + pos + 12);
      have_fmt = true;
    } else if (std::memcmp(data + pos, "data", 4) == 0) {
      if (!have_fmt || pos + 8 + chunk_len > len) {
        return std::nullopt;
      }
      out.samples.resize(chunk_len / 2);
      std::memcpy(out.samples.data(), data + pos + 8, out.samples.size() * 2);
      return out;
    }
    pos += 8 + chunk_len + (chunk_len & 1);
  }
  return std::nullopt;
}

std::vector<std::uint8_t> WavEncode(const WavData& wav) {
  std::uint32_t data_bytes = static_cast<std::uint32_t>(wav.samples.size() * 2);
  std::vector<std::uint8_t> out;
  out.insert(out.end(), {'R', 'I', 'F', 'F'});
  W32(out, 36 + data_bytes);
  out.insert(out.end(), {'W', 'A', 'V', 'E', 'f', 'm', 't', ' '});
  W32(out, 16);
  W16(out, 1);  // PCM
  W16(out, wav.channels);
  W32(out, wav.sample_rate);
  W32(out, wav.sample_rate * wav.channels * 2);
  W16(out, static_cast<std::uint16_t>(wav.channels * 2));
  W16(out, 16);
  out.insert(out.end(), {'d', 'a', 't', 'a'});
  W32(out, data_bytes);
  const auto* p = reinterpret_cast<const std::uint8_t*>(wav.samples.data());
  out.insert(out.end(), p, p + data_bytes);
  return out;
}

WavData SynthesizeMelody(std::uint32_t sample_rate, std::uint32_t frames,
                         std::uint16_t channels) {
  WavData wav;
  wav.sample_rate = sample_rate;
  wav.channels = channels;
  wav.samples.resize(std::size_t(frames) * channels);
  // A little arpeggio: A minor, eighth notes.
  static const double kNotes[] = {220.0, 261.63, 329.63, 440.0, 329.63, 261.63};
  std::uint32_t note_len = sample_rate / 4;
  for (std::uint32_t i = 0; i < frames; ++i) {
    std::uint32_t note = (i / note_len) % (sizeof(kNotes) / sizeof(kNotes[0]));
    double t = double(i) / sample_rate;
    double f = kNotes[note];
    // Sine lead + triangle bass, gentle envelope per note. (Band-limited
    // voices: ADPCM tolerates them far better than raw square edges.)
    double lead = 0.30 * std::sin(2.0 * 3.14159265358979 * t * f);
    double tri_phase = std::fmod(t * f * 0.5, 1.0);
    double triangle = (tri_phase < 0.5 ? 4 * tri_phase - 1 : 3 - 4 * tri_phase) * 0.22;
    double env = 1.0 - double(i % note_len) / note_len * 0.35;
    double s = (lead + triangle) * env;
    auto sample = static_cast<std::int16_t>(s * 28000);
    for (std::uint16_t c = 0; c < channels; ++c) {
      wav.samples[std::size_t(i) * channels + c] = sample;
    }
  }
  return wav;
}

}  // namespace vos
