// VOG: the music player's compressed audio format (the paper's OGG/libvorbis
// substitute; see DESIGN.md §2). IMA ADPCM at 4 bits/sample in an Ogg-like
// container: a header page (rate/channels/length + optional embedded album
// art), then fixed-size pages each carrying predictor state so playback can
// seek page-aligned. Encoder and decoder both live here.
#ifndef VOS_SRC_MEDIA_VOG_H_
#define VOS_SRC_MEDIA_VOG_H_

#include <cstdint>
#include <optional>
#include <vector>

namespace vos {

struct VogInfo {
  std::uint32_t sample_rate = 44100;
  std::uint16_t channels = 2;
  std::uint32_t total_frames = 0;       // samples per channel
  std::uint32_t art_offset = 0;         // byte offset of embedded cover art (0 = none)
  std::uint32_t art_length = 0;
};

// Encodes interleaved S16 PCM; optionally embeds cover art bytes (a PNG/BMP).
std::vector<std::uint8_t> VogEncode(const std::int16_t* pcm, std::uint32_t frames,
                                    std::uint16_t channels, std::uint32_t sample_rate,
                                    const std::vector<std::uint8_t>& art = {});

class VogDecoder {
 public:
  bool Open(const std::uint8_t* data, std::size_t len);
  const VogInfo& info() const { return info_; }
  // Album art bytes (empty if none).
  std::vector<std::uint8_t> Art() const;

  // Decodes up to `max_frames` interleaved frames; returns frames produced
  // (0 at end of stream).
  std::uint32_t Decode(std::int16_t* out, std::uint32_t max_frames);

 private:
  struct ChannelState {
    int predictor = 0;
    int step_index = 0;
  };
  std::int16_t DecodeNibble(ChannelState& st, std::uint8_t nibble);

  VogInfo info_;
  const std::uint8_t* data_ = nullptr;
  std::size_t len_ = 0;
  std::size_t pos_ = 0;
  std::uint32_t frames_done_ = 0;
  ChannelState ch_[2];
  // Nibble staging within the current byte stream.
  bool have_low_ = false;
  std::uint8_t staged_ = 0;
  std::uint32_t page_nibbles_left_ = 0;
};

// IMA ADPCM step tables (exposed for tests against known vectors).
extern const int kImaStepTable[89];
extern const int kImaIndexTable[8];

}  // namespace vos

#endif  // VOS_SRC_MEDIA_VOG_H_
