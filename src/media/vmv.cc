#include "src/media/vmv.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "src/base/assert.h"

namespace vos {

namespace {

constexpr std::uint32_t kVmvMagic = 0x31564d56;  // "VMV1"

// --- bit I/O (MSB-first) ---

class BitWriter {
 public:
  void Bit(int b) {
    cur_ = static_cast<std::uint8_t>((cur_ << 1) | (b & 1));
    if (++nbits_ == 8) {
      out_.push_back(cur_);
      cur_ = 0;
      nbits_ = 0;
    }
  }
  void Bits(std::uint32_t v, int n) {
    for (int i = n - 1; i >= 0; --i) {
      Bit(static_cast<int>((v >> i) & 1));
    }
  }
  // Unsigned Exp-Golomb.
  void Ueg(std::uint32_t v) {
    std::uint32_t vp = v + 1;
    int bits = 0;
    for (std::uint32_t t = vp; t > 1; t >>= 1) {
      ++bits;
    }
    for (int i = 0; i < bits; ++i) {
      Bit(0);
    }
    Bits(vp, bits + 1);
  }
  // Signed Exp-Golomb (0, 1, -1, 2, -2, ...).
  void Seg(std::int32_t v) {
    std::uint32_t m = v > 0 ? std::uint32_t(2 * v - 1) : std::uint32_t(-2 * v);
    Ueg(m);
  }
  std::vector<std::uint8_t> Finish() {
    while (nbits_ != 0) {
      Bit(0);
    }
    return std::move(out_);
  }

 private:
  std::vector<std::uint8_t> out_;
  std::uint8_t cur_ = 0;
  int nbits_ = 0;
};

class BitReader {
 public:
  BitReader(const std::uint8_t* d, std::size_t n) : d_(d), n_(n) {}
  int Bit() {
    if (pos_ >= n_) {
      ok_ = false;
      return 0;
    }
    int b = (d_[pos_] >> (7 - nbits_)) & 1;
    if (++nbits_ == 8) {
      nbits_ = 0;
      ++pos_;
    }
    return b;
  }
  std::uint32_t Bits(int n) {
    std::uint32_t v = 0;
    for (int i = 0; i < n; ++i) {
      v = (v << 1) | static_cast<std::uint32_t>(Bit());
    }
    return v;
  }
  std::uint32_t Ueg() {
    int zeros = 0;
    while (ok_ && Bit() == 0) {
      if (++zeros > 31) {
        ok_ = false;
        return 0;
      }
    }
    std::uint32_t v = 1;
    for (int i = 0; i < zeros; ++i) {
      v = (v << 1) | static_cast<std::uint32_t>(Bit());
    }
    return v - 1;
  }
  std::int32_t Seg() {
    std::uint32_t m = Ueg();
    return (m & 1) ? static_cast<std::int32_t>((m + 1) / 2)
                   : -static_cast<std::int32_t>(m / 2);
  }
  bool ok() const { return ok_; }

 private:
  const std::uint8_t* d_;
  std::size_t n_;
  std::size_t pos_ = 0;
  int nbits_ = 0;
  bool ok_ = true;
};

// --- DCT ---

struct DctBasis {
  double c[8][8];
  DctBasis() {
    for (int u = 0; u < 8; ++u) {
      double cu = u == 0 ? std::sqrt(0.125) : 0.5;
      for (int x = 0; x < 8; ++x) {
        c[u][x] = cu * std::cos((2 * x + 1) * u * 3.14159265358979323846 / 16.0);
      }
    }
  }
};
const DctBasis g_basis;

constexpr int kZigzag[64] = {0,  1,  8,  16, 9,  2,  3,  10, 17, 24, 32, 25, 18, 11, 4,  5,
                             12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6,  7,  14, 21, 28,
                             35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
                             58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63};

int QuantOf(int coef, int q) {
  return coef >= 0 ? (coef + q / 2) / q : -((-coef + q / 2) / q);
}

std::uint8_t Clamp255(int v) { return static_cast<std::uint8_t>(v < 0 ? 0 : v > 255 ? 255 : v); }

// Extracts/stores 8x8 blocks from a plane with edge clamping.
void GetBlock(const std::uint8_t* plane, std::uint32_t w, std::uint32_t h, std::uint32_t bx,
              std::uint32_t by, std::int16_t out[64]) {
  for (int y = 0; y < 8; ++y) {
    std::uint32_t sy = std::min<std::uint32_t>(by + std::uint32_t(y), h - 1);
    for (int x = 0; x < 8; ++x) {
      std::uint32_t sx = std::min<std::uint32_t>(bx + std::uint32_t(x), w - 1);
      out[y * 8 + x] = plane[sy * w + sx];
    }
  }
}

void PutBlock(std::uint8_t* plane, std::uint32_t w, std::uint32_t h, std::uint32_t bx,
              std::uint32_t by, const std::int16_t in[64]) {
  for (int y = 0; y < 8 && by + std::uint32_t(y) < h; ++y) {
    for (int x = 0; x < 8 && bx + std::uint32_t(x) < w; ++x) {
      plane[(by + std::uint32_t(y)) * w + bx + std::uint32_t(x)] = Clamp255(in[y * 8 + x]);
    }
  }
}

// Codes one 8x8 block of samples (or residuals) into the stream, returning
// the reconstruction the decoder will compute (for the encoder's reference).
void EncodeBlock(BitWriter& bw, const std::int16_t samples[64], int q,
                 std::int16_t recon[64]) {
  std::int32_t coef[64];
  Dct8x8(samples, coef);
  std::int32_t quant[64];
  for (int i = 0; i < 64; ++i) {
    quant[i] = QuantOf(coef[i], q);
  }
  // (run, level) over the zig-zag order; EOB = run 63.
  int pos = 0;
  while (pos < 64) {
    int run = 0;
    while (pos + run < 64 && quant[kZigzag[pos + run]] == 0) {
      ++run;
    }
    if (pos + run >= 64) {
      bw.Ueg(63);  // EOB
      break;
    }
    if (run == 63) {
      // Escape the run==EOB collision (level at the very last position).
      bw.Ueg(62);
      bw.Seg(0);
      pos += 63;
      continue;
    }
    bw.Ueg(static_cast<std::uint32_t>(run));
    bw.Seg(quant[kZigzag[pos + run]]);
    pos += run + 1;
  }
  // Reconstruct exactly as the decoder will.
  std::int32_t dequant[64];
  for (int i = 0; i < 64; ++i) {
    dequant[i] = quant[i] * q;
  }
  Idct8x8(dequant, recon);
}

bool DecodeBlock(BitReader& br, int q, std::int16_t recon[64]) {
  std::int32_t quant[64] = {};
  int pos = 0;
  while (pos < 64) {
    std::uint32_t run = br.Ueg();
    if (!br.ok()) {
      return false;
    }
    if (run == 63) {
      break;  // EOB
    }
    std::int32_t level = br.Seg();
    pos += static_cast<int>(run);
    if (pos >= 64) {
      return false;
    }
    quant[kZigzag[pos]] = level;
    ++pos;
  }
  std::int32_t dequant[64];
  for (int i = 0; i < 64; ++i) {
    dequant[i] = quant[i] * q;
  }
  Idct8x8(dequant, recon);
  return br.ok();
}

std::uint32_t Sad16(const std::uint8_t* a, std::uint32_t aw, const std::uint8_t* b,
                    std::uint32_t bw, std::uint32_t best_so_far) {
  std::uint32_t sad = 0;
  for (int y = 0; y < 16; ++y) {
    for (int x = 0; x < 16; ++x) {
      sad += static_cast<std::uint32_t>(
          std::abs(int(a[y * aw + x]) - int(b[y * bw + x])));
    }
    if (sad >= best_so_far) {
      return sad;  // early exit
    }
  }
  return sad;
}

}  // namespace

void YuvFrame::Allocate(std::uint32_t w, std::uint32_t h) {
  width = w;
  height = h;
  y.assign(std::size_t(w) * h, 0);
  u.assign(std::size_t(w / 2) * (h / 2), 128);
  v.assign(std::size_t(w / 2) * (h / 2), 128);
}

void Dct8x8(const std::int16_t in[64], std::int32_t out[64]) {
  double tmp[64];
  // Rows.
  for (int y = 0; y < 8; ++y) {
    for (int u = 0; u < 8; ++u) {
      double s = 0;
      for (int x = 0; x < 8; ++x) {
        s += g_basis.c[u][x] * in[y * 8 + x];
      }
      tmp[y * 8 + u] = s;
    }
  }
  // Columns.
  for (int u = 0; u < 8; ++u) {
    for (int v = 0; v < 8; ++v) {
      double s = 0;
      for (int y = 0; y < 8; ++y) {
        s += g_basis.c[v][y] * tmp[y * 8 + u];
      }
      out[v * 8 + u] = static_cast<std::int32_t>(std::lround(s));
    }
  }
}

void Idct8x8(const std::int32_t in[64], std::int16_t out[64]) {
  double tmp[64];
  for (int v = 0; v < 8; ++v) {
    for (int x = 0; x < 8; ++x) {
      double s = 0;
      for (int u = 0; u < 8; ++u) {
        s += g_basis.c[u][x] * in[v * 8 + u];
      }
      tmp[v * 8 + x] = s;
    }
  }
  for (int x = 0; x < 8; ++x) {
    for (int y = 0; y < 8; ++y) {
      double s = 0;
      for (int v = 0; v < 8; ++v) {
        s += g_basis.c[v][y] * tmp[v * 8 + x];
      }
      out[y * 8 + x] = static_cast<std::int16_t>(std::lround(s));
    }
  }
}

VmvEncoder::VmvEncoder(std::uint32_t w, std::uint32_t h, VmvEncodeOptions opt) : opt_(opt) {
  VOS_CHECK_MSG(w % 16 == 0 && h % 16 == 0, "VMV frames must be multiples of 16");
  hdr_.width = w;
  hdr_.height = h;
  hdr_.fps = opt.fps;
  ref_.Allocate(w, h);
}

void VmvEncoder::AddFrame(const YuvFrame& frame) {
  VOS_CHECK(frame.width == hdr_.width && frame.height == hdr_.height);
  bool intra = frame_index_ % opt_.gop == 0;
  BitWriter bw;
  YuvFrame recon;
  recon.Allocate(hdr_.width, hdr_.height);

  std::uint32_t w = hdr_.width, h = hdr_.height;
  std::uint32_t cw = w / 2, ch = h / 2;
  int q = opt_.quant;

  if (intra) {
    auto encode_plane = [&](const std::uint8_t* src, std::uint8_t* dst, std::uint32_t pw,
                            std::uint32_t ph) {
      std::int16_t block[64], rec[64];
      for (std::uint32_t by = 0; by < ph; by += 8) {
        for (std::uint32_t bx = 0; bx < pw; bx += 8) {
          GetBlock(src, pw, ph, bx, by, block);
          for (int i = 0; i < 64; ++i) {
            block[i] = static_cast<std::int16_t>(block[i] - 128);
          }
          EncodeBlock(bw, block, q, rec);
          for (int i = 0; i < 64; ++i) {
            rec[i] = static_cast<std::int16_t>(rec[i] + 128);
          }
          PutBlock(dst, pw, ph, bx, by, rec);
        }
      }
    };
    encode_plane(frame.y.data(), recon.y.data(), w, h);
    encode_plane(frame.u.data(), recon.u.data(), cw, ch);
    encode_plane(frame.v.data(), recon.v.data(), cw, ch);
  } else {
    // P-frame: per-macroblock motion compensation with three-step search.
    std::int16_t block[64], rec[64];
    for (std::uint32_t my = 0; my < h; my += 16) {
      for (std::uint32_t mx = 0; mx < w; mx += 16) {
        const std::uint8_t* cur = frame.y.data() + my * w + mx;
        // Three-step search around (0,0), clamped to the frame.
        int best_dx = 0, best_dy = 0;
        std::uint32_t best = ~0u;
        for (int step = 4; step >= 1; step /= 2) {
          int base_dx = best_dx, base_dy = best_dy;
          for (int dy = -step; dy <= step; dy += step) {
            for (int dx = -step; dx <= step; dx += step) {
              int cand_dx = base_dx + dx, cand_dy = base_dy + dy;
              if (cand_dx < -opt_.search_range || cand_dx > opt_.search_range ||
                  cand_dy < -opt_.search_range || cand_dy > opt_.search_range) {
                continue;
              }
              std::int64_t rx = std::int64_t(mx) + cand_dx;
              std::int64_t ry = std::int64_t(my) + cand_dy;
              if (rx < 0 || ry < 0 || rx + 16 > w || ry + 16 > h) {
                continue;
              }
              std::uint32_t sad = Sad16(cur, w, ref_.y.data() + ry * w + rx, w, best);
              if (sad < best) {
                best = sad;
                best_dx = cand_dx;
                best_dy = cand_dy;
              }
            }
          }
        }
        // Skip decision: near-zero motion-compensated difference.
        bool skip = best < 16 * 16 * 2 && best_dx == 0 && best_dy == 0;
        if (skip) {
          bw.Bit(1);
          // Copy reference into reconstruction.
          for (int yy = 0; yy < 16; ++yy) {
            std::memcpy(recon.y.data() + (my + std::uint32_t(yy)) * w + mx,
                        ref_.y.data() + (my + std::uint32_t(yy)) * w + mx, 16);
          }
          for (int yy = 0; yy < 8; ++yy) {
            std::memcpy(recon.u.data() + (my / 2 + std::uint32_t(yy)) * cw + mx / 2,
                        ref_.u.data() + (my / 2 + std::uint32_t(yy)) * cw + mx / 2, 8);
            std::memcpy(recon.v.data() + (my / 2 + std::uint32_t(yy)) * cw + mx / 2,
                        ref_.v.data() + (my / 2 + std::uint32_t(yy)) * cw + mx / 2, 8);
          }
          continue;
        }
        bw.Bit(0);
        bw.Seg(best_dx);
        bw.Seg(best_dy);
        // Four luma residual blocks.
        for (int sub = 0; sub < 4; ++sub) {
          std::uint32_t bx = mx + std::uint32_t(sub % 2) * 8;
          std::uint32_t by = my + std::uint32_t(sub / 2) * 8;
          for (int yy = 0; yy < 8; ++yy) {
            for (int xx = 0; xx < 8; ++xx) {
              std::int64_t ry = std::int64_t(by) + yy + best_dy;
              std::int64_t rx = std::int64_t(bx) + xx + best_dx;
              block[yy * 8 + xx] = static_cast<std::int16_t>(
                  frame.y[(by + std::uint32_t(yy)) * w + bx + std::uint32_t(xx)] -
                  ref_.y[std::size_t(ry) * w + std::size_t(rx)]);
            }
          }
          EncodeBlock(bw, block, q, rec);
          for (int yy = 0; yy < 8; ++yy) {
            for (int xx = 0; xx < 8; ++xx) {
              std::int64_t ry = std::int64_t(by) + yy + best_dy;
              std::int64_t rx = std::int64_t(bx) + xx + best_dx;
              recon.y[(by + std::uint32_t(yy)) * w + bx + std::uint32_t(xx)] = Clamp255(
                  rec[yy * 8 + xx] + ref_.y[std::size_t(ry) * w + std::size_t(rx)]);
            }
          }
        }
        // Chroma residuals with halved motion.
        int cdx = best_dx / 2, cdy = best_dy / 2;
        auto chroma = [&](const std::vector<std::uint8_t>& src,
                          const std::vector<std::uint8_t>& refp,
                          std::vector<std::uint8_t>& out_plane) {
          std::uint32_t bx = mx / 2, by = my / 2;
          for (int yy = 0; yy < 8; ++yy) {
            for (int xx = 0; xx < 8; ++xx) {
              std::int64_t ry = std::int64_t(by) + yy + cdy;
              std::int64_t rx = std::int64_t(bx) + xx + cdx;
              ry = std::clamp<std::int64_t>(ry, 0, ch - 1);
              rx = std::clamp<std::int64_t>(rx, 0, cw - 1);
              block[yy * 8 + xx] = static_cast<std::int16_t>(
                  src[(by + std::uint32_t(yy)) * cw + bx + std::uint32_t(xx)] -
                  refp[std::size_t(ry) * cw + std::size_t(rx)]);
            }
          }
          EncodeBlock(bw, block, q, rec);
          for (int yy = 0; yy < 8; ++yy) {
            for (int xx = 0; xx < 8; ++xx) {
              std::int64_t ry = std::int64_t(by) + yy + cdy;
              std::int64_t rx = std::int64_t(bx) + xx + cdx;
              ry = std::clamp<std::int64_t>(ry, 0, ch - 1);
              rx = std::clamp<std::int64_t>(rx, 0, cw - 1);
              out_plane[(by + std::uint32_t(yy)) * cw + bx + std::uint32_t(xx)] = Clamp255(
                  rec[yy * 8 + xx] + refp[std::size_t(ry) * cw + std::size_t(rx)]);
            }
          }
        };
        chroma(frame.u, ref_.u, recon.u);
        chroma(frame.v, ref_.v, recon.v);
      }
    }
  }

  std::vector<std::uint8_t> bits = bw.Finish();
  // Frame header: type, quant, byte length.
  payload_.push_back(intra ? 'I' : 'P');
  payload_.push_back(static_cast<std::uint8_t>(q));
  for (int i = 0; i < 4; ++i) {
    payload_.push_back(static_cast<std::uint8_t>(bits.size() >> (8 * i)));
  }
  payload_.insert(payload_.end(), bits.begin(), bits.end());
  ref_ = std::move(recon);
  ++hdr_.frame_count;
  ++frame_index_;
}

std::vector<std::uint8_t> VmvEncoder::Finish() {
  std::vector<std::uint8_t> out;
  auto w32 = [&out](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  };
  w32(kVmvMagic);
  w32(hdr_.width);
  w32(hdr_.height);
  w32(hdr_.fps);
  w32(hdr_.frame_count);
  out.insert(out.end(), payload_.begin(), payload_.end());
  return out;
}

bool VmvDecoder::Open(const std::uint8_t* data, std::size_t len) {
  auto r32 = [data](std::size_t off) {
    return std::uint32_t(data[off]) | (std::uint32_t(data[off + 1]) << 8) |
           (std::uint32_t(data[off + 2]) << 16) | (std::uint32_t(data[off + 3]) << 24);
  };
  if (len < 20 || r32(0) != kVmvMagic) {
    return false;
  }
  hdr_.width = r32(4);
  hdr_.height = r32(8);
  hdr_.fps = r32(12);
  hdr_.frame_count = r32(16);
  if (hdr_.width == 0 || hdr_.height == 0 || hdr_.width % 16 || hdr_.height % 16 ||
      hdr_.width > 4096 || hdr_.height > 4096) {
    return false;
  }
  data_ = data;
  len_ = len;
  pos_ = 20;
  frames_done_ = 0;
  ref_.Allocate(hdr_.width, hdr_.height);
  return true;
}

bool VmvDecoder::DecodeFrame(YuvFrame* out) {
  if (frames_done_ >= hdr_.frame_count || pos_ + 6 > len_) {
    return false;
  }
  last_frame_blocks_ = 0;
  char type = static_cast<char>(data_[pos_]);
  int q = data_[pos_ + 1];
  std::uint32_t nbytes = std::uint32_t(data_[pos_ + 2]) | (std::uint32_t(data_[pos_ + 3]) << 8) |
                         (std::uint32_t(data_[pos_ + 4]) << 16) |
                         (std::uint32_t(data_[pos_ + 5]) << 24);
  pos_ += 6;
  if (pos_ + nbytes > len_ || q <= 0) {
    return false;
  }
  BitReader br(data_ + pos_, nbytes);
  pos_ += nbytes;

  std::uint32_t w = hdr_.width, h = hdr_.height;
  std::uint32_t cw = w / 2, ch = h / 2;
  out->Allocate(w, h);

  if (type == 'I') {
    auto decode_plane = [&](std::uint8_t* dst, std::uint32_t pw, std::uint32_t ph) {
      std::int16_t rec[64];
      for (std::uint32_t by = 0; by < ph; by += 8) {
        for (std::uint32_t bx = 0; bx < pw; bx += 8) {
          if (!DecodeBlock(br, q, rec)) {
            return false;
          }
          ++last_frame_blocks_;
          for (int i = 0; i < 64; ++i) {
            rec[i] = static_cast<std::int16_t>(rec[i] + 128);
          }
          PutBlock(dst, pw, ph, bx, by, rec);
        }
      }
      return true;
    };
    if (!decode_plane(out->y.data(), w, h) || !decode_plane(out->u.data(), cw, ch) ||
        !decode_plane(out->v.data(), cw, ch)) {
      return false;
    }
    stats_.mbs_intra += (w / 16) * (h / 16);
  } else if (type == 'P') {
    std::int16_t rec[64];
    for (std::uint32_t my = 0; my < h; my += 16) {
      for (std::uint32_t mx = 0; mx < w; mx += 16) {
        int skip = br.Bit();
        if (!br.ok()) {
          return false;
        }
        if (skip) {
          ++stats_.mbs_skipped;
          for (int yy = 0; yy < 16; ++yy) {
            std::memcpy(out->y.data() + (my + std::uint32_t(yy)) * w + mx,
                        ref_.y.data() + (my + std::uint32_t(yy)) * w + mx, 16);
          }
          for (int yy = 0; yy < 8; ++yy) {
            std::memcpy(out->u.data() + (my / 2 + std::uint32_t(yy)) * cw + mx / 2,
                        ref_.u.data() + (my / 2 + std::uint32_t(yy)) * cw + mx / 2, 8);
            std::memcpy(out->v.data() + (my / 2 + std::uint32_t(yy)) * cw + mx / 2,
                        ref_.v.data() + (my / 2 + std::uint32_t(yy)) * cw + mx / 2, 8);
          }
          continue;
        }
        ++stats_.mbs_inter;
        int dx = br.Seg();
        int dy = br.Seg();
        for (int sub = 0; sub < 4; ++sub) {
          std::uint32_t bx = mx + std::uint32_t(sub % 2) * 8;
          std::uint32_t by = my + std::uint32_t(sub / 2) * 8;
          if (!DecodeBlock(br, q, rec)) {
            return false;
          }
          ++last_frame_blocks_;
          for (int yy = 0; yy < 8; ++yy) {
            for (int xx = 0; xx < 8; ++xx) {
              std::int64_t ry = std::clamp<std::int64_t>(std::int64_t(by) + yy + dy, 0, h - 1);
              std::int64_t rx = std::clamp<std::int64_t>(std::int64_t(bx) + xx + dx, 0, w - 1);
              out->y[(by + std::uint32_t(yy)) * w + bx + std::uint32_t(xx)] = Clamp255(
                  rec[yy * 8 + xx] + ref_.y[std::size_t(ry) * w + std::size_t(rx)]);
            }
          }
        }
        int cdx = dx / 2, cdy = dy / 2;
        auto chroma = [&](const std::vector<std::uint8_t>& refp,
                          std::vector<std::uint8_t>& dst) {
          if (!DecodeBlock(br, q, rec)) {
            return false;
          }
          ++last_frame_blocks_;
          std::uint32_t bx = mx / 2, by = my / 2;
          for (int yy = 0; yy < 8; ++yy) {
            for (int xx = 0; xx < 8; ++xx) {
              std::int64_t ry = std::clamp<std::int64_t>(std::int64_t(by) + yy + cdy, 0, ch - 1);
              std::int64_t rx = std::clamp<std::int64_t>(std::int64_t(bx) + xx + cdx, 0, cw - 1);
              dst[(by + std::uint32_t(yy)) * cw + bx + std::uint32_t(xx)] = Clamp255(
                  rec[yy * 8 + xx] + refp[std::size_t(ry) * cw + std::size_t(rx)]);
            }
          }
          return true;
        };
        if (!chroma(ref_.u, out->u) || !chroma(ref_.v, out->v)) {
          return false;
        }
      }
    }
  } else {
    return false;
  }
  stats_.blocks_decoded += last_frame_blocks_;
  ref_ = *out;
  ++frames_done_;
  return true;
}

std::vector<YuvFrame> SynthesizeScene(std::uint32_t w, std::uint32_t h, int n) {
  std::vector<YuvFrame> frames;
  for (int f = 0; f < n; ++f) {
    YuvFrame fr;
    fr.Allocate(w, h);
    // Slowly drifting gradient background.
    for (std::uint32_t y = 0; y < h; ++y) {
      for (std::uint32_t x = 0; x < w; ++x) {
        fr.y[y * w + x] = static_cast<std::uint8_t>((x + y + std::uint32_t(f) * 2) & 0xff);
      }
    }
    for (std::uint32_t y = 0; y < h / 2; ++y) {
      for (std::uint32_t x = 0; x < w / 2; ++x) {
        fr.u[y * (w / 2) + x] = static_cast<std::uint8_t>(96 + ((x + std::uint32_t(f)) & 63));
        fr.v[y * (w / 2) + x] = static_cast<std::uint8_t>(96 + ((y + std::uint32_t(f)) & 63));
      }
    }
    // Bouncing bright box (moving content for P-frames to chase).
    std::uint32_t bw2 = w / 8, bh2 = h / 8;
    std::uint32_t bx = (std::uint32_t(f) * 7) % (w - bw2);
    std::uint32_t by = (std::uint32_t(f) * 5) % (h - bh2);
    for (std::uint32_t y = by; y < by + bh2; ++y) {
      for (std::uint32_t x = bx; x < bx + bw2; ++x) {
        fr.y[y * w + x] = 235;
      }
    }
    frames.push_back(std::move(fr));
  }
  return frames;
}

double PsnrLuma(const YuvFrame& a, const YuvFrame& b) {
  VOS_CHECK(a.y.size() == b.y.size() && !a.y.empty());
  double mse = 0;
  for (std::size_t i = 0; i < a.y.size(); ++i) {
    double d = double(a.y[i]) - double(b.y[i]);
    mse += d * d;
  }
  mse /= double(a.y.size());
  if (mse <= 1e-12) {
    return 99.0;
  }
  return 10.0 * std::log10(255.0 * 255.0 / mse);
}

}  // namespace vos
