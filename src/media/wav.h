// Minimal PCM WAV reader/writer (16-bit) — the uncompressed interchange
// format the tests and asset generators use around the VOG codec.
#ifndef VOS_SRC_MEDIA_WAV_H_
#define VOS_SRC_MEDIA_WAV_H_

#include <cstdint>
#include <optional>
#include <vector>

namespace vos {

struct WavData {
  std::uint32_t sample_rate = 44100;
  std::uint16_t channels = 2;
  std::vector<std::int16_t> samples;  // interleaved

  std::uint32_t frames() const {
    return channels == 0 ? 0 : static_cast<std::uint32_t>(samples.size() / channels);
  }
};

std::optional<WavData> WavDecode(const std::uint8_t* data, std::size_t len);
std::vector<std::uint8_t> WavEncode(const WavData& wav);

// Synthesizes a little chiptune-ish melody (square + triangle voices) for
// music-player assets and audio-pipeline tests.
WavData SynthesizeMelody(std::uint32_t sample_rate, std::uint32_t frames, std::uint16_t channels);

}  // namespace vos

#endif  // VOS_SRC_MEDIA_WAV_H_
