#include "src/media/vog.h"

#include <algorithm>
#include <cstring>

#include "src/base/assert.h"

namespace vos {

const int kImaIndexTable[8] = {-1, -1, -1, -1, 2, 4, 6, 8};

const int kImaStepTable[89] = {
    7,     8,     9,     10,    11,    12,    13,    14,    16,    17,    19,    21,    23,
    25,    28,    31,    34,    37,    41,    45,    50,    55,    60,    66,    73,    80,
    88,    97,    107,   118,   130,   143,   157,   173,   190,   209,   230,   253,   279,
    307,   337,   371,   408,   449,   494,   544,   598,   658,   724,   796,   876,   963,
    1060,  1166,  1282,  1411,  1552,  1707,  1878,  2066,  2272,  2499,  2749,  3024,  3327,
    3660,  4026,  4428,  4871,  5358,  5894,  6484,  7132,  7845,  8630,  9493,  10442, 11487,
    12635, 13899, 15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767};

namespace {

constexpr std::uint32_t kVogMagic = 0x31474f56;  // "VOG1"
constexpr std::uint32_t kPageDataBytes = 2048;   // nibble payload per page

struct EncState {
  int predictor = 0;
  int step_index = 0;
};

std::uint8_t EncodeSample(EncState& st, int sample) {
  int step = kImaStepTable[st.step_index];
  int diff = sample - st.predictor;
  std::uint8_t nibble = 0;
  if (diff < 0) {
    nibble = 8;
    diff = -diff;
  }
  int delta = step >> 3;
  if (diff >= step) {
    nibble |= 4;
    diff -= step;
    delta += step;
  }
  if (diff >= step / 2) {
    nibble |= 2;
    diff -= step / 2;
    delta += step / 2;
  }
  if (diff >= step / 4) {
    nibble |= 1;
    delta += step / 4;
  }
  st.predictor += (nibble & 8) ? -delta : delta;
  st.predictor = std::clamp(st.predictor, -32768, 32767);
  st.step_index = std::clamp(st.step_index + kImaIndexTable[nibble & 7], 0, 88);
  return nibble;
}

void W16(std::vector<std::uint8_t>& v, std::uint16_t x) {
  v.push_back(static_cast<std::uint8_t>(x));
  v.push_back(static_cast<std::uint8_t>(x >> 8));
}
void W32(std::vector<std::uint8_t>& v, std::uint32_t x) {
  W16(v, static_cast<std::uint16_t>(x));
  W16(v, static_cast<std::uint16_t>(x >> 16));
}
std::uint16_t R16(const std::uint8_t* p) { return std::uint16_t(p[0] | (p[1] << 8)); }
std::uint32_t R32(const std::uint8_t* p) {
  return std::uint32_t(R16(p)) | (std::uint32_t(R16(p + 2)) << 16);
}

constexpr std::size_t kHeaderBytes = 4 + 4 + 2 + 2 + 4 + 4 + 4;

}  // namespace

std::vector<std::uint8_t> VogEncode(const std::int16_t* pcm, std::uint32_t frames,
                                    std::uint16_t channels, std::uint32_t sample_rate,
                                    const std::vector<std::uint8_t>& art) {
  VOS_CHECK(channels == 1 || channels == 2);
  std::vector<std::uint8_t> out;
  W32(out, kVogMagic);
  W32(out, sample_rate);
  W16(out, channels);
  W16(out, 0);
  W32(out, frames);
  std::size_t art_fixup = out.size();
  W32(out, 0);  // art offset, patched below
  W32(out, static_cast<std::uint32_t>(art.size()));

  EncState st[2];
  std::uint32_t nibbles_total = frames * channels;
  std::uint32_t nibble = 0;
  while (nibble < nibbles_total) {
    // Page header: per-channel predictor snapshot.
    for (int c = 0; c < channels; ++c) {
      W16(out, static_cast<std::uint16_t>(st[c].predictor));
      out.push_back(static_cast<std::uint8_t>(st[c].step_index));
      out.push_back(0);
    }
    std::uint32_t page_nibbles =
        std::min<std::uint32_t>(kPageDataBytes * 2, nibbles_total - nibble);
    std::uint8_t staged = 0;
    bool have_low = false;
    for (std::uint32_t i = 0; i < page_nibbles; ++i, ++nibble) {
      int ch = static_cast<int>(nibble % channels);
      std::uint8_t nb = EncodeSample(st[ch], pcm[nibble]);
      if (!have_low) {
        staged = nb;
        have_low = true;
      } else {
        out.push_back(static_cast<std::uint8_t>(staged | (nb << 4)));
        have_low = false;
      }
    }
    if (have_low) {
      out.push_back(staged);
    }
  }
  if (!art.empty()) {
    std::uint32_t off = static_cast<std::uint32_t>(out.size());
    out.insert(out.end(), art.begin(), art.end());
    out[art_fixup] = static_cast<std::uint8_t>(off);
    out[art_fixup + 1] = static_cast<std::uint8_t>(off >> 8);
    out[art_fixup + 2] = static_cast<std::uint8_t>(off >> 16);
    out[art_fixup + 3] = static_cast<std::uint8_t>(off >> 24);
  }
  return out;
}

bool VogDecoder::Open(const std::uint8_t* data, std::size_t len) {
  if (len < kHeaderBytes || R32(data) != kVogMagic) {
    return false;
  }
  info_.sample_rate = R32(data + 4);
  info_.channels = R16(data + 8);
  info_.total_frames = R32(data + 12);
  info_.art_offset = R32(data + 16);
  info_.art_length = R32(data + 20);
  if (info_.channels < 1 || info_.channels > 2 || info_.sample_rate == 0) {
    return false;
  }
  data_ = data;
  len_ = len;
  pos_ = kHeaderBytes;
  frames_done_ = 0;
  have_low_ = false;
  page_nibbles_left_ = 0;
  return true;
}

std::vector<std::uint8_t> VogDecoder::Art() const {
  if (info_.art_offset == 0 || info_.art_offset + info_.art_length > len_) {
    return {};
  }
  return std::vector<std::uint8_t>(data_ + info_.art_offset,
                                   data_ + info_.art_offset + info_.art_length);
}

std::int16_t VogDecoder::DecodeNibble(ChannelState& st, std::uint8_t nibble) {
  int step = kImaStepTable[st.step_index];
  int delta = step >> 3;
  if (nibble & 4) {
    delta += step;
  }
  if (nibble & 2) {
    delta += step / 2;
  }
  if (nibble & 1) {
    delta += step / 4;
  }
  st.predictor += (nibble & 8) ? -delta : delta;
  st.predictor = std::clamp(st.predictor, -32768, 32767);
  st.step_index = std::clamp(st.step_index + kImaIndexTable[nibble & 7], 0, 88);
  return static_cast<std::int16_t>(st.predictor);
}

std::uint32_t VogDecoder::Decode(std::int16_t* out, std::uint32_t max_frames) {
  std::uint32_t channels = info_.channels;
  std::uint32_t produced = 0;
  while (produced < max_frames && frames_done_ < info_.total_frames) {
    if (page_nibbles_left_ == 0) {
      // Enter the next page: read the predictor snapshots.
      if (pos_ + channels * 4 > len_) {
        break;
      }
      for (std::uint32_t c = 0; c < channels; ++c) {
        ch_[c].predictor = static_cast<std::int16_t>(R16(data_ + pos_));
        ch_[c].step_index = std::clamp<int>(data_[pos_ + 2], 0, 88);
        pos_ += 4;
      }
      std::uint32_t remaining = (info_.total_frames - frames_done_) * channels;
      page_nibbles_left_ = std::min<std::uint32_t>(kPageDataBytes * 2, remaining);
      have_low_ = false;
    }
    for (std::uint32_t c = 0; c < channels; ++c) {
      std::uint8_t nb;
      if (!have_low_) {
        if (pos_ >= len_) {
          return produced;
        }
        staged_ = data_[pos_++];
        nb = staged_ & 0x0f;
        have_low_ = true;
      } else {
        nb = (staged_ >> 4) & 0x0f;
        have_low_ = false;
      }
      out[produced * channels + c] = DecodeNibble(ch_[c], nb);
      --page_nibbles_left_;
    }
    ++produced;
    ++frames_done_;
  }
  return produced;
}

}  // namespace vos
