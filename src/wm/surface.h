// Surfaces: the off-screen buffers apps render into via /dev/surface (§4.5).
// The window manager composites them onto the hardware framebuffer, tracking
// per-surface dirty regions so composition only redraws what changed.
#ifndef VOS_SRC_WM_SURFACE_H_
#define VOS_SRC_WM_SURFACE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/base/ring_buffer.h"
#include "src/fs/devfs.h"

namespace vos {

struct Rect {
  int x = 0;
  int y = 0;
  int w = 0;
  int h = 0;

  bool Empty() const { return w <= 0 || h <= 0; }
  int Right() const { return x + w; }
  int Bottom() const { return y + h; }

  static Rect Union(const Rect& a, const Rect& b);
  static Rect Intersect(const Rect& a, const Rect& b);
  bool Contains(int px, int py) const {
    return px >= x && py >= y && px < Right() && py < Bottom();
  }
};

// The control block an app writes at offset 0 of /dev/surface to (re)shape
// its window.
#pragma pack(push, 1)
struct SurfaceConfig {
  std::uint32_t magic = 0x53524655;  // "UFRS"
  std::uint32_t width = 0;
  std::uint32_t height = 0;
  std::int32_t x = 0;
  std::int32_t y = 0;
  std::uint8_t alpha = 255;          // 255 = opaque; sysmon floats translucent
  std::uint8_t reserved[3] = {};
  char title[24] = {};
};
#pragma pack(pop)

// Writes at or beyond this offset carry pixel rows (byte offset into the
// surface's pixel buffer + kSurfacePixelBase).
constexpr std::uint64_t kSurfacePixelBase = 4096;

class Surface {
 public:
  Surface(int id, int owner_pid) : id_(id), owner_pid_(owner_pid), events_(128) {}

  int id() const { return id_; }
  int owner_pid() const { return owner_pid_; }

  bool configured() const { return cfg_.width > 0; }
  const SurfaceConfig& config() const { return cfg_; }
  void Configure(const SurfaceConfig& cfg);
  void MoveTo(int x, int y);

  std::uint32_t* pixels() { return pixels_.data(); }
  const std::uint32_t* pixels() const { return pixels_.data(); }
  std::uint64_t pixel_bytes() const { return pixels_.size() * 4; }

  // Marks [byte_off, byte_off+len) of the pixel buffer dirty and copies data.
  void WritePixels(std::uint64_t byte_off, const std::uint8_t* data, std::uint32_t len);

  // Screen-space bounds.
  Rect Bounds() const { return Rect{cfg_.x, cfg_.y, static_cast<int>(cfg_.width),
                                    static_cast<int>(cfg_.height)}; }
  // Screen-space dirty region accumulated since the last composition.
  Rect TakeDirty();
  bool dirty() const { return !dirty_.Empty(); }
  void MarkAllDirty();

  int z = 0;  // stacking order; larger = nearer the viewer
  bool visible = true;

  RingBuffer<KeyEvent>& events() { return events_; }
  char* event_chan() { return &event_chan_; }

 private:
  int id_;
  int owner_pid_;
  SurfaceConfig cfg_;
  std::vector<std::uint32_t> pixels_;
  Rect dirty_;  // surface-local coordinates
  RingBuffer<KeyEvent> events_;
  char event_chan_ = 0;
};

using SurfacePtr = std::shared_ptr<Surface>;

}  // namespace vos

#endif  // VOS_SRC_WM_SURFACE_H_
