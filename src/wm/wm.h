// The window manager (§4.5): a kernel thread (~simplicity over a user-space
// compositor) that composites app surfaces onto the hardware framebuffer,
// tracks z-order and focus, redraws only dirty regions, supports floating
// semi-transparent windows (sysmon), intercepts ctrl+tab to switch focus and
// ctrl+arrows to move windows, and dispatches input events to the focused
// app via /dev/event1.
#ifndef VOS_SRC_WM_WM_H_
#define VOS_SRC_WM_WM_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/fs/devfs.h"
#include "src/fs/vfs.h"
#include "src/wm/surface.h"

namespace vos {

class Kernel;

struct WmStats {
  std::uint64_t compositions = 0;
  std::uint64_t pixels_blended = 0;
  std::uint64_t full_repaints = 0;
  std::uint64_t focus_switches = 0;
};

class WindowManager : public DevNode {
 public:
  explicit WindowManager(Kernel& kernel);

  // Spawns the WM kernel thread (composition loop at ~60 Hz).
  void StartThread();

  // --- /dev/surface: per-open surface creation, config + pixel writes ---
  std::int64_t OnOpen(Task* t, File& f) override;
  void OnClose(File& f) override;
  std::int64_t Read(Task* t, std::uint8_t* buf, std::uint32_t n, std::uint64_t off, bool nonblock,
                    Cycles* burn) override;
  std::int64_t Write(Task* t, const std::uint8_t* buf, std::uint32_t n, std::uint64_t off,
                     Cycles* burn) override;

  // --- input routing (called by the kernel's input drivers) ---
  // Returns true if the WM consumed the event (focus-switch chords).
  bool RouteKey(const KeyEvent& ev);

  // /dev/event1 read for the focused app (dispatched by owner pid).
  std::int64_t ReadEventsFor(Task* t, std::uint8_t* buf, std::uint32_t n, bool nonblock,
                             Cycles* burn);

  // One composition round; returns virtual cost. Public for tests/benches.
  Cycles ComposeOnce();

  // The /dev/event1 node (per-focused-app event dispatch).
  DevNode* event_node() { return &event_node_impl_; }

  Surface* focused();
  Surface* FindByOwner(int pid);
  std::vector<SurfacePtr> surfaces() const { return surfaces_; }
  const WmStats& stats() const { return stats_; }

  // Composition period (60 Hz).
  static constexpr Cycles kComposePeriod = kCyclesPerSec / 60;

 private:
  class EventNode : public DevNode {
   public:
    explicit EventNode(WindowManager& wm) : wm_(wm) {}
    std::int64_t Read(Task* t, std::uint8_t* buf, std::uint32_t n, std::uint64_t, bool nonblock,
                      Cycles* burn) override {
      return wm_.ReadEventsFor(t, buf, n, nonblock, burn);
    }
    std::int64_t Write(Task*, const std::uint8_t*, std::uint32_t, std::uint64_t,
                       Cycles*) override {
      return -1;
    }

   private:
    WindowManager& wm_;
  };

  void ThreadBody();
  void FocusNext();
  void RaiseToTop(Surface* s);

  EventNode event_node_impl_{*this};
  Kernel& kernel_;
  std::vector<SurfacePtr> surfaces_;  // sorted by z ascending at composition
  int next_surface_id_ = 1;
  int focused_id_ = 0;
  int next_z_ = 1;
  WmStats stats_;
  // Starts true: the desktop background must be painted once before
  // dirty-rect deltas are meaningful — otherwise never-damaged regions keep
  // whatever the framebuffer powered on with (the §4.3 stale-pixel lesson,
  // WM edition).
  bool full_repaint_pending_ = true;
};

// /dev/event1: thin DevNode forwarding to WindowManager::ReadEventsFor.
// (Registered by the kernel; reads block on the focused surface's queue.)

}  // namespace vos

#endif  // VOS_SRC_WM_WM_H_
