#include "src/wm/surface.h"

#include <algorithm>
#include <cstring>

#include "src/base/assert.h"

namespace vos {

Rect Rect::Union(const Rect& a, const Rect& b) {
  if (a.Empty()) {
    return b;
  }
  if (b.Empty()) {
    return a;
  }
  int x0 = std::min(a.x, b.x);
  int y0 = std::min(a.y, b.y);
  int x1 = std::max(a.Right(), b.Right());
  int y1 = std::max(a.Bottom(), b.Bottom());
  return Rect{x0, y0, x1 - x0, y1 - y0};
}

Rect Rect::Intersect(const Rect& a, const Rect& b) {
  int x0 = std::max(a.x, b.x);
  int y0 = std::max(a.y, b.y);
  int x1 = std::min(a.Right(), b.Right());
  int y1 = std::min(a.Bottom(), b.Bottom());
  return Rect{x0, y0, std::max(0, x1 - x0), std::max(0, y1 - y0)};
}

void Surface::Configure(const SurfaceConfig& cfg) {
  VOS_CHECK_MSG(cfg.width <= 4096 && cfg.height <= 4096, "surface too large");
  cfg_ = cfg;
  pixels_.assign(std::size_t(cfg.width) * cfg.height, 0xff000000);
  MarkAllDirty();
}

void Surface::MoveTo(int x, int y) {
  cfg_.x = x;
  cfg_.y = y;
  MarkAllDirty();
}

void Surface::WritePixels(std::uint64_t byte_off, const std::uint8_t* data, std::uint32_t len) {
  if (!configured() || byte_off >= pixel_bytes()) {
    return;
  }
  len = static_cast<std::uint32_t>(std::min<std::uint64_t>(len, pixel_bytes() - byte_off));
  std::memcpy(reinterpret_cast<std::uint8_t*>(pixels_.data()) + byte_off, data, len);
  // Dirty rows covered by this span (surface-local).
  int row0 = static_cast<int>(byte_off / (cfg_.width * 4));
  int row1 = static_cast<int>((byte_off + len - 1) / (cfg_.width * 4));
  Rect span{0, row0, static_cast<int>(cfg_.width), row1 - row0 + 1};
  dirty_ = Rect::Union(dirty_, span);
}

Rect Surface::TakeDirty() {
  Rect local = dirty_;
  dirty_ = Rect{};
  if (local.Empty()) {
    return local;
  }
  return Rect{cfg_.x + local.x, cfg_.y + local.y, local.w, local.h};
}

void Surface::MarkAllDirty() {
  dirty_ = Rect{0, 0, static_cast<int>(cfg_.width), static_cast<int>(cfg_.height)};
}

}  // namespace vos
