#include "src/wm/wm.h"

#include <algorithm>
#include <cstring>

#include "src/base/status.h"
#include "src/hw/cache_model.h"
#include "src/kernel/kernel.h"

namespace vos {

WindowManager::WindowManager(Kernel& kernel) : kernel_(kernel) {
  // Intercept every input event: chords are consumed, the rest also lands in
  // the focused surface's queue (normal /dev/events delivery continues for
  // direct-rendering apps).
  kernel_.events_dev().SetTap([this](const KeyEvent& ev) { return RouteKey(ev); });
}

void WindowManager::StartThread() {
  kernel_.CreateKernelTask("wm", [this] { ThreadBody(); });
}

void WindowManager::ThreadBody() {
  for (;;) {
    Task* cur = kernel_.CurrentTask();
    if (cur->killed) {
      return;
    }
    Cycles cost = ComposeOnce();
    cur->fiber().Burn(cost);
    kernel_.KSleepMs(static_cast<std::uint64_t>(ToMs(kComposePeriod)));
  }
}

std::int64_t WindowManager::OnOpen(Task* t, File& f) {
  auto s = std::make_shared<Surface>(next_surface_id_++, t != nullptr ? t->pid() : 0);
  s->z = next_z_++;
  surfaces_.push_back(s);
  focused_id_ = s->id();  // new windows take focus, as users expect
  f.dev_state = s;
  return 0;
}

void WindowManager::OnClose(File& f) {
  auto s = std::static_pointer_cast<Surface>(f.dev_state);
  if (s == nullptr) {
    return;
  }
  surfaces_.erase(std::remove(surfaces_.begin(), surfaces_.end(), s), surfaces_.end());
  if (focused_id_ == s->id()) {
    focused_id_ = surfaces_.empty() ? 0 : surfaces_.back()->id();
  }
  // The vacated screen area must repaint.
  for (auto& other : surfaces_) {
    other->MarkAllDirty();
  }
  full_repaint_pending_ = true;
}

std::int64_t WindowManager::Read(Task*, std::uint8_t* buf, std::uint32_t n, std::uint64_t off,
                                 bool, Cycles* burn) {
  return kErrPerm;  // surfaces are write-only; apps read events via event1
}

std::int64_t WindowManager::Write(Task* t, const std::uint8_t* buf, std::uint32_t n,
                                  std::uint64_t off, Cycles* burn) {
  Task* cur = t;
  Surface* s = cur != nullptr ? FindByOwner(cur->pid()) : nullptr;
  // Prefer the per-open surface if the caller's File carried one; the VFS
  // passes no File here, so we locate by owner (threads share the root pid).
  if (s == nullptr) {
    return kErrBadFd;
  }
  if (off == 0) {
    if (n < sizeof(SurfaceConfig)) {
      return kErrInval;
    }
    SurfaceConfig cfg;
    std::memcpy(&cfg, buf, sizeof(cfg));
    if (cfg.magic != SurfaceConfig().magic) {
      return kErrInval;
    }
    s->Configure(cfg);
    *burn += Us(30);
    return n;
  }
  if (off < kSurfacePixelBase) {
    return kErrInval;
  }
  s->WritePixels(off - kSurfacePixelBase, buf, n);
  const KernelConfig& kc = kernel_.config();
  double per_byte =
      kc.opt_asm_memcpy ? kc.cost.memcpy_per_byte : kc.cost.memcpy_naive_per_byte;
  *burn += Cycles(n * per_byte);
  return n;
}

Surface* WindowManager::focused() {
  for (auto& s : surfaces_) {
    if (s->id() == focused_id_) {
      return s.get();
    }
  }
  return nullptr;
}

Surface* WindowManager::FindByOwner(int pid) {
  // Threads share their root process's surface: walk up the parent chain.
  Task* t = kernel_.FindTask(pid);
  while (t != nullptr) {
    for (auto& s : surfaces_) {
      if (s->owner_pid() == t->pid()) {
        return s.get();
      }
    }
    if (!t->is_thread) {
      break;
    }
    t = t->parent;
  }
  return nullptr;
}

void WindowManager::FocusNext() {
  if (surfaces_.empty()) {
    return;
  }
  std::size_t idx = 0;
  for (std::size_t i = 0; i < surfaces_.size(); ++i) {
    if (surfaces_[i]->id() == focused_id_) {
      idx = (i + 1) % surfaces_.size();
      break;
    }
  }
  focused_id_ = surfaces_[idx]->id();
  RaiseToTop(surfaces_[idx].get());
  ++stats_.focus_switches;
}

void WindowManager::RaiseToTop(Surface* s) {
  s->z = next_z_++;
  s->MarkAllDirty();
}

bool WindowManager::RouteKey(const KeyEvent& ev) {
  if (ev.code == kKeyTab && (ev.modifiers & 0x01) && ev.down) {  // ctrl+tab
    FocusNext();
    return true;
  }
  if ((ev.modifiers & 0x01) && ev.down &&
      (ev.code == kKeyLeft || ev.code == kKeyRight || ev.code == kKeyUp ||
       ev.code == kKeyDown)) {
    // ctrl+arrows: move the focused window.
    Surface* f = focused();
    if (f != nullptr) {
      int dx = ev.code == kKeyLeft ? -16 : ev.code == kKeyRight ? 16 : 0;
      int dy = ev.code == kKeyUp ? -16 : ev.code == kKeyDown ? 16 : 0;
      f->MoveTo(f->config().x + dx, f->config().y + dy);
      full_repaint_pending_ = true;
    }
    return true;
  }
  // Normal event: duplicate into the focused surface's queue for event1.
  Surface* f = focused();
  if (f != nullptr) {
    f->events().PushOverwrite(ev);
    kernel_.sched().Wakeup(f->event_chan());
  }
  return false;  // raw /dev/events still sees it
}

std::int64_t WindowManager::ReadEventsFor(Task* t, std::uint8_t* buf, std::uint32_t n,
                                          bool nonblock, Cycles* burn) {
  if (n < sizeof(KeyEvent)) {
    return kErrInval;
  }
  Surface* s = t != nullptr ? FindByOwner(t->pid()) : nullptr;
  if (s == nullptr) {
    return kErrBadFd;
  }
  while (s->events().empty()) {
    if (nonblock) {
      return kErrWouldBlock;
    }
    if (t->killed) {
      return kErrPerm;
    }
    kernel_.sched().Sleep(t, s->event_chan());
  }
  std::uint32_t max_events = n / sizeof(KeyEvent);
  std::uint32_t done = 0;
  while (done < max_events && !s->events().empty()) {
    KeyEvent ev = *s->events().Pop();
    std::memcpy(buf + done * sizeof(KeyEvent), &ev, sizeof(ev));
    ++done;
  }
  *burn += Us(2);
  return static_cast<std::int64_t>(done * sizeof(KeyEvent));
}

Cycles WindowManager::ComposeOnce() {
  FramebufferHw& fb = kernel_.board().fb();
  if (!fb.allocated()) {
    return Us(5);
  }
  const KernelConfig& kc = kernel_.config();
  Rect screen{0, 0, static_cast<int>(fb.width()), static_cast<int>(fb.height())};

  // Collect the damage: union of all dirty regions (or everything when the
  // dirty-rect optimization is off / a structural change happened).
  Rect damage{};
  bool full = !kc.opt_wm_dirty_rects || full_repaint_pending_;
  full_repaint_pending_ = false;
  for (auto& s : surfaces_) {
    if (s->dirty()) {
      damage = Rect::Union(damage, Rect::Intersect(s->TakeDirty(), screen));
    }
  }
  if (full) {
    damage = screen;
    ++stats_.full_repaints;
  }
  if (damage.Empty()) {
    return Us(8);  // scan surfaces, nothing to do
  }

  // Painter's algorithm over the damaged region, bottom to top.
  std::vector<Surface*> order;
  for (auto& s : surfaces_) {
    if (s->visible && s->configured()) {
      order.push_back(s.get());
    }
  }
  std::sort(order.begin(), order.end(), [](Surface* a, Surface* b) { return a->z < b->z; });

  std::uint32_t* dst = fb.cpu_pixels();
  std::uint64_t blended = 0;
  // Clear the damaged background (desktop color).
  for (int y = damage.y; y < damage.Bottom(); ++y) {
    for (int x = damage.x; x < damage.Right(); ++x) {
      dst[std::size_t(y) * fb.width() + std::size_t(x)] = 0xff20242c;
    }
  }
  for (Surface* s : order) {
    Rect vis = Rect::Intersect(Rect::Intersect(s->Bounds(), screen), damage);
    if (vis.Empty()) {
      continue;
    }
    std::uint8_t alpha = s->config().alpha;
    for (int y = vis.y; y < vis.Bottom(); ++y) {
      int sy = y - s->config().y;
      const std::uint32_t* src_row =
          s->pixels() + std::size_t(sy) * s->config().width;
      std::uint32_t* dst_row = dst + std::size_t(y) * fb.width();
      for (int x = vis.x; x < vis.Right(); ++x) {
        std::uint32_t sp = src_row[x - s->config().x];
        if (alpha == 255) {
          dst_row[x] = sp;
        } else {
          std::uint32_t dp = dst_row[x];
          std::uint32_t a = alpha, ia = 255 - alpha;
          std::uint32_t r = (((sp >> 16) & 0xff) * a + ((dp >> 16) & 0xff) * ia) / 255;
          std::uint32_t g = (((sp >> 8) & 0xff) * a + ((dp >> 8) & 0xff) * ia) / 255;
          std::uint32_t b = ((sp & 0xff) * a + (dp & 0xff) * ia) / 255;
          dst_row[x] = 0xff000000 | (r << 16) | (g << 8) | b;
        }
        ++blended;
      }
    }
  }
  // Flush only the damaged rows to the display.
  std::uint64_t row_bytes = std::uint64_t(fb.width()) * 4;
  std::uint64_t off = std::uint64_t(damage.y) * row_bytes;
  std::uint64_t len = std::uint64_t(damage.h) * row_bytes;
  std::uint64_t flushed = fb.FlushRange(off, len);

  ++stats_.compositions;
  stats_.pixels_blended += blended;
  kernel_.trace().Emit(kernel_.Now(), 0, TraceEvent::kWmComposite, 0, blended);
  return Cycles(double(blended) * 4 * kc.cost.blit_per_byte) + CacheFlushCost(flushed) + Us(10);
}

}  // namespace vos
