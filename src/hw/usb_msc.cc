#include "src/hw/usb_msc.h"

#include <cstring>

#include "src/base/assert.h"
#include "src/hw/usb_hw.h"

namespace vos {

UsbMassStorage::UsbMassStorage(std::uint64_t capacity_bytes) : disk_(capacity_bytes, 0) {
  VOS_CHECK_MSG(capacity_bytes % 512 == 0, "MSC capacity must be 512-byte aligned");
}

std::vector<std::uint8_t> UsbMassStorage::DeviceDescriptor() const {
  return {18,   kUsbDescDevice,
          0x00, 0x02,        // USB 2.0
          0,    0,    0,     // class per interface
          64,                // ep0 max packet
          0x81, 0x07,        // idVendor
          0x55, 0x57,        // idProduct
          0x00, 0x01,        // bcdDevice
          0,    0,    0,     // strings
          1};
}

std::vector<std::uint8_t> UsbMassStorage::ConfigDescriptor() const {
  return {
      // Configuration
      9, kUsbDescConfiguration, 32, 0, 1, 1, 0, 0x80, 50,
      // Interface: mass storage, SCSI transparent, bulk-only transport
      9, kUsbDescInterface, 0, 0, 2, 0x08, 0x06, 0x50, 0,
      // Bulk IN endpoint (0x81), 512-byte packets
      7, kUsbDescEndpoint, 0x81, 0x02, 0x00, 0x02, 0,
      // Bulk OUT endpoint (0x02)
      7, kUsbDescEndpoint, 0x02, 0x02, 0x00, 0x02, 0,
  };
}

Csw UsbMassStorage::Transaction(const Cbw& cbw, std::vector<std::uint8_t>& data,
                                Cycles* duration) {
  ++transactions_;
  Csw csw;
  csw.tag = cbw.tag;
  // Bus time: CBW (31 B) + data at high-speed bulk (~40 MB/s effective) +
  // CSW (13 B), plus flash media time for the data phase.
  *duration = Us(60);
  VOS_CHECK_MSG(cbw.signature == 0x43425355, "bad CBW signature");

  auto be16 = [](const std::uint8_t* p) { return std::uint16_t((p[0] << 8) | p[1]); };
  auto be32 = [](const std::uint8_t* p) {
    return (std::uint32_t(p[0]) << 24) | (std::uint32_t(p[1]) << 16) |
           (std::uint32_t(p[2]) << 8) | p[3];
  };

  switch (cbw.cb[0]) {
    case kScsiTestUnitReady:
      break;
    case kScsiInquiry: {
      data.assign(36, 0);
      data[0] = 0x00;  // direct-access device
      data[4] = 31;    // additional length
      std::memcpy(data.data() + 8, "VOS     ", 8);
      std::memcpy(data.data() + 16, "USB THUMB DRIVE ", 16);
      std::memcpy(data.data() + 32, "1.0 ", 4);
      break;
    }
    case kScsiReadCapacity10: {
      data.assign(8, 0);
      std::uint32_t last_lba = static_cast<std::uint32_t>(capacity_blocks() - 1);
      data[0] = static_cast<std::uint8_t>(last_lba >> 24);
      data[1] = static_cast<std::uint8_t>(last_lba >> 16);
      data[2] = static_cast<std::uint8_t>(last_lba >> 8);
      data[3] = static_cast<std::uint8_t>(last_lba);
      data[6] = 0x02;  // block size 512
      break;
    }
    case kScsiRead10: {
      std::uint32_t lba = be32(cbw.cb + 2);
      std::uint16_t blocks = be16(cbw.cb + 7);
      if ((std::uint64_t(lba) + blocks) * 512 > disk_.size()) {
        csw.status = 1;
        break;
      }
      data.assign(std::size_t(blocks) * 512, 0);
      std::memcpy(data.data(), disk_.data() + std::uint64_t(lba) * 512, data.size());
      *duration += Cycles(blocks) * Us(14) + Us(120);  // bus + flash read latency
      break;
    }
    case kScsiWrite10: {
      std::uint32_t lba = be32(cbw.cb + 2);
      std::uint16_t blocks = be16(cbw.cb + 7);
      if ((std::uint64_t(lba) + blocks) * 512 > disk_.size() ||
          data.size() < std::size_t(blocks) * 512) {
        csw.status = 1;
        break;
      }
      std::memcpy(disk_.data() + std::uint64_t(lba) * 512, data.data(),
                  std::size_t(blocks) * 512);
      *duration += Cycles(blocks) * Us(25) + Us(250);  // flash program time
      break;
    }
    default:
      csw.status = 1;  // command failed (unsupported)
      break;
  }
  return csw;
}

}  // namespace vos
