#include "src/hw/uart.h"

namespace vos {

void Uart::TxWrite(std::uint8_t c, Cycles now) {
  // If the driver raced the busy flag, serialize after the in-flight char:
  // hardware would overwrite; we model the strict polled discipline.
  Cycles start = now > tx_busy_until_ ? now : tx_busy_until_;
  tx_busy_until_ = start + cycles_per_char_;
  tx_log_.push_back(static_cast<char>(c));
}

std::uint8_t Uart::RxRead() {
  auto v = rx_fifo_.Pop();
  UpdateRxIrq();
  return v.value_or(0);
}

void Uart::InjectRx(const std::string& s, Cycles now) {
  (void)now;
  for (char c : s) {
    if (!rx_fifo_.Push(static_cast<std::uint8_t>(c))) {
      ++rx_overruns_;
    }
  }
  UpdateRxIrq();
}

void Uart::UpdateRxIrq() {
  if (rx_irq_enabled_ && !rx_fifo_.empty()) {
    intc_.Raise(kIrqAux);
  } else {
    intc_.Clear(kIrqAux);
  }
}

}  // namespace vos
