// PWM audio output (the Pi3's 3.5 mm jack). Consumes 16-bit stereo samples
// delivered by DMA at the configured rate; underruns (DMA starved) are
// counted — they are the audible stutters the paper has students debug in
// the MusicPlayer producer/consumer pipeline (§4.4).
#ifndef VOS_SRC_HW_AUDIO_PWM_H_
#define VOS_SRC_HW_AUDIO_PWM_H_

#include <cstdint>
#include <vector>

#include "src/base/units.h"
#include "src/hw/dma.h"

namespace vos {

class AudioPwm : public DmaSink {
 public:
  explicit AudioPwm(std::uint32_t sample_rate = 44100) : rate_(sample_rate) {}

  void SetSampleRate(std::uint32_t rate) { rate_ = rate; }
  std::uint32_t sample_rate() const { return rate_; }

  // DmaSink: plays len bytes (16-bit stereo frames) and reports wire time.
  Cycles Consume(PhysMem& mem, PhysAddr src, std::uint32_t len) override;

  // Called by the DMA layer when a block completed but nothing was queued —
  // the driver underran. The kernel driver polls this count via the device.
  void NoteUnderrun() { ++underruns_; }
  std::uint64_t underruns() const { return underruns_; }

  // Total stereo frames played; host tests compare the captured stream.
  std::uint64_t frames_played() const { return frames_played_; }
  const std::vector<std::int16_t>& captured() const { return captured_; }
  void SetCapture(bool on) { capture_ = on; }

  // Virtual time the amp has been actively driven (for the power model).
  Cycles active_time() const { return active_time_; }

 private:
  std::uint32_t rate_;
  bool capture_ = false;
  std::vector<std::int16_t> captured_;
  std::uint64_t frames_played_ = 0;
  std::uint64_t underruns_ = 0;
  Cycles active_time_ = 0;
};

}  // namespace vos

#endif  // VOS_SRC_HW_AUDIO_PWM_H_
