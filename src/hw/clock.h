// The global virtual clock of the simulated SoC. Only the machine loop
// advances it; devices and kernel code read it (possibly plus a core-local
// offset for the currently running task).
#ifndef VOS_SRC_HW_CLOCK_H_
#define VOS_SRC_HW_CLOCK_H_

#include "src/base/assert.h"
#include "src/base/units.h"

namespace vos {

class VirtualClock {
 public:
  Cycles now() const { return now_; }

  void AdvanceTo(Cycles t) {
    VOS_CHECK_MSG(t >= now_, "virtual time cannot go backwards");
    now_ = t;
  }

  void Advance(Cycles delta) { now_ += delta; }

 private:
  Cycles now_ = 0;
};

}  // namespace vos

#endif  // VOS_SRC_HW_CLOCK_H_
