// SD host controller + card model. The paper's driver (§4.5) is ~600 SLoC:
// it initializes the card, then performs synchronous single-block and
// block-range reads/writes, polling for completion. We model the command
// protocol (subset of the SD spec: GO_IDLE, SEND_IF_COND, ACMD41, CMD2/3/7,
// CMD17/18/24/25, CMD12) with a latency model in which the per-command
// overhead dominates single-block transfers — which is exactly why the range
// ("multi-block") path is 2-3x faster and why the buffer-cache bypass
// optimization (§5.2) pays off.
//
// An optional DMA-assisted mode models production drivers (used by the
// linux/freebsd OS profiles in Fig 9).
#ifndef VOS_SRC_HW_SD_CARD_H_
#define VOS_SRC_HW_SD_CARD_H_

#include <cstdint>
#include <vector>

#include "src/base/units.h"

namespace vos {

constexpr std::uint32_t kSdBlockSize = 512;

struct SdTimings {
  Cycles cmd_overhead = Us(200);       // command issue + card response + setup
  Cycles per_block_polled = Us(1000);  // FIFO drain by polled PIO, per 512 B
  Cycles per_block_range = Us(550);    // subsequent blocks of a CMD18/25 burst
  Cycles per_block_dma = Us(80);       // production-style ADMA transfers
  Cycles init_time = Ms(150);          // card identification sequence
};

class SdCard {
 public:
  // Card state machine, surfaced so the driver's init sequence is real.
  enum class State { kIdle, kIdent, kStandby, kTransfer };

  explicit SdCard(std::uint64_t capacity_bytes, SdTimings timings = SdTimings{});

  // --- Card identification (driver init path) ---
  // Each returns the virtual duration the step occupies.
  Cycles CmdGoIdle();                     // CMD0
  Cycles CmdSendIfCond(std::uint32_t arg);  // CMD8
  Cycles AcmdSendOpCond();                // ACMD41 (may need repeats; we model 3)
  Cycles CmdAllSendCid();                 // CMD2
  Cycles CmdSendRelativeAddr(std::uint16_t* rca_out);  // CMD3
  Cycles CmdSelectCard(std::uint16_t rca);             // CMD7
  bool ready() const { return state_ == State::kTransfer && acmd41_polls_ >= 3; }
  State state() const { return state_; }

  // --- Data transfer (driver steady state). The driver passes host buffers;
  // the returned Cycles is how long the synchronous polled op takes, which
  // the driver burns while spinning on the status register. ---
  Cycles ReadBlocks(std::uint64_t lba, std::uint32_t count, std::uint8_t* out, bool use_dma);
  Cycles WriteBlocks(std::uint64_t lba, std::uint32_t count, const std::uint8_t* in, bool use_dma);

  std::uint64_t capacity_blocks() const { return disk_.size() / kSdBlockSize; }

  // Host-side image access (formatting, asset provisioning).
  std::vector<std::uint8_t>& disk() { return disk_; }
  const std::vector<std::uint8_t>& disk() const { return disk_; }

  // Stats for benches and the power model.
  std::uint64_t blocks_read() const { return blocks_read_; }
  std::uint64_t blocks_written() const { return blocks_written_; }
  std::uint64_t commands() const { return commands_; }
  Cycles busy_time() const { return busy_time_; }

 private:
  Cycles TransferCost(std::uint32_t count, bool use_dma) const;

  SdTimings t_;
  State state_ = State::kIdle;
  int acmd41_polls_ = 0;
  std::uint16_t rca_ = 0;
  std::vector<std::uint8_t> disk_;
  std::uint64_t blocks_read_ = 0;
  std::uint64_t blocks_written_ = 0;
  std::uint64_t commands_ = 0;
  Cycles busy_time_ = 0;
};

}  // namespace vos

#endif  // VOS_SRC_HW_SD_CARD_H_
