// USB host controller with an attached HID boot-protocol keyboard.
//
// The paper ports USPi (§4.4) — a ~10 KSLoC bare-metal stack — and accepts its
// complexity for the payoff of cheap commodity keyboards. We model the layers
// that stack actually exercises: port power/reset timing, control transfers
// carrying real descriptor bytes (device, configuration+interface+endpoint),
// SET_ADDRESS / SET_CONFIGURATION / HID SET_PROTOCOL, then periodic interrupt
// IN polling that delivers 8-byte boot reports and raises the USB IRQ. The
// kernel driver in src/kernel parses the descriptor bytes for real.
#ifndef VOS_SRC_HW_USB_HW_H_
#define VOS_SRC_HW_USB_HW_H_

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "src/base/ring_buffer.h"
#include "src/base/units.h"
#include "src/hw/event_queue.h"
#include "src/hw/intc.h"

namespace vos {

// Boot-protocol keyboard input report.
struct HidReport {
  std::uint8_t modifiers = 0;
  std::uint8_t reserved = 0;
  std::array<std::uint8_t, 6> keys{};

  bool operator==(const HidReport&) const = default;
};

// HID usage IDs for keys the apps use (subset of the HID usage table page 7).
enum HidKey : std::uint8_t {
  kHidA = 0x04, kHidB = 0x05, kHidC = 0x06, kHidD = 0x07, kHidE = 0x08, kHidF = 0x09,
  kHidG = 0x0a, kHidH = 0x0b, kHidI = 0x0c, kHidJ = 0x0d, kHidK = 0x0e, kHidL = 0x0f,
  kHidM = 0x10, kHidN = 0x11, kHidO = 0x12, kHidP = 0x13, kHidQ = 0x14, kHidR = 0x15,
  kHidS = 0x16, kHidT = 0x17, kHidU = 0x18, kHidV = 0x19, kHidW = 0x1a, kHidX = 0x1b,
  kHidY = 0x1c, kHidZ = 0x1d,
  kHid1 = 0x1e, kHid0 = 0x27,
  kHidEnter = 0x28, kHidEsc = 0x29, kHidBackspace = 0x2a, kHidTab = 0x2b, kHidSpace = 0x2c,
  kHidMinus = 0x2d,
  kHidRight = 0x4f, kHidLeft = 0x50, kHidDown = 0x51, kHidUp = 0x52,
};

enum HidModifier : std::uint8_t {
  kModLeftCtrl = 0x01,
  kModLeftShift = 0x02,
  kModLeftAlt = 0x04,
};

// The keyboard device on the bus.
class UsbKeyboard {
 public:
  // --- Test/host side: inject key transitions. ---
  void KeyDown(std::uint8_t hid_code, std::uint8_t modifiers = 0);
  void KeyUp(std::uint8_t hid_code);

  // --- Bus side ---
  const HidReport& current_report() const { return report_; }
  bool boot_protocol() const { return boot_protocol_; }
  void SetBootProtocol(bool on) { boot_protocol_ = on; }

 private:
  HidReport report_;
  bool boot_protocol_ = false;
};

class UsbHostController {
 public:
  UsbHostController(EventQueue& eq, Intc& intc) : eq_(eq), intc_(intc) {}

  void AttachKeyboard(UsbKeyboard* kbd) { kbd_ = kbd; }
  bool DevicePresent() const { return kbd_ != nullptr; }

  // --- Enumeration steps; each returns its virtual duration. The driver's
  // init sequence totals ~1.4 s, which dominates boot (Fig 8). ---
  Cycles PowerOnPort();    // VBUS ramp + debounce
  Cycles ResetPort();      // bus reset + recovery
  // Control transfer on endpoint 0. Returns nullopt for requests the device
  // stalls. `duration` receives the transfer's virtual time.
  std::optional<std::vector<std::uint8_t>> ControlIn(std::uint8_t bm_request_type,
                                                     std::uint8_t b_request, std::uint16_t value,
                                                     std::uint16_t index, std::uint16_t length,
                                                     Cycles* duration);
  bool ControlOut(std::uint8_t bm_request_type, std::uint8_t b_request, std::uint16_t value,
                  std::uint16_t index, Cycles* duration);

  std::uint8_t assigned_address() const { return address_; }
  bool configured() const { return configured_; }

  // --- Steady state: periodic interrupt IN polling. ---
  // Starts frame polling of the keyboard's interrupt endpoint every
  // `interval_ms` (the bInterval from the endpoint descriptor). A changed
  // report is latched and raises kIrqUsb.
  void StartInterruptPolling(Cycles now, std::uint32_t interval_ms);
  void StopInterruptPolling();

  // Driver reads the latched report (IRQ ack).
  std::optional<HidReport> ReadLatchedReport();

  Cycles powered_time(Cycles now) const {
    return powered_since_ ? now - *powered_since_ : 0;
  }

 private:
  void PollOnce(Cycles scheduled_at, std::uint32_t interval_ms);

  EventQueue& eq_;
  Intc& intc_;
  UsbKeyboard* kbd_ = nullptr;
  std::uint8_t address_ = 0;
  bool configured_ = false;
  bool polling_ = false;
  std::optional<EventId> poll_ev_;
  HidReport last_report_;
  RingBuffer<HidReport> latched_{8};
  std::optional<Cycles> powered_since_;
};

// USB standard request codes used by the driver.
enum UsbRequest : std::uint8_t {
  kUsbGetDescriptor = 6,
  kUsbSetAddress = 5,
  kUsbSetConfiguration = 9,
  kUsbHidSetProtocol = 0x0b,
  kUsbHidSetIdle = 0x0a,
};

enum UsbDescriptorType : std::uint8_t {
  kUsbDescDevice = 1,
  kUsbDescConfiguration = 2,
  kUsbDescInterface = 4,
  kUsbDescEndpoint = 5,
  kUsbDescHid = 0x21,
};

}  // namespace vos

#endif  // VOS_SRC_HW_USB_HW_H_
