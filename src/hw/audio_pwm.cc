#include "src/hw/audio_pwm.h"

#include "src/base/assert.h"

namespace vos {

Cycles AudioPwm::Consume(PhysMem& mem, PhysAddr src, std::uint32_t len) {
  VOS_CHECK_MSG(len % 4 == 0, "audio DMA block must be whole 16-bit stereo frames");
  std::uint32_t frames = len / 4;
  if (capture_) {
    std::size_t old = captured_.size();
    captured_.resize(old + std::size_t(frames) * 2);
    mem.Read(src, captured_.data() + old, std::uint64_t(frames) * 4);
  }
  frames_played_ += frames;
  Cycles dur = Cycles(frames) * kCyclesPerSec / rate_;
  active_time_ += dur;
  return dur;
}

}  // namespace vos
