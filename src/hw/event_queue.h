// Discrete-event queue driving all asynchronous hardware behaviour: timer
// compares, DMA completions, USB frame polling, UART RX, audio consumption.
#ifndef VOS_SRC_HW_EVENT_QUEUE_H_
#define VOS_SRC_HW_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "src/base/units.h"

namespace vos {

using EventFn = std::function<void()>;
using EventId = std::uint64_t;

class EventQueue {
 public:
  // Schedules fn to run at absolute virtual time `when`. Events at equal time
  // run in scheduling order (deterministic).
  EventId Schedule(Cycles when, EventFn fn);

  // Cancels a scheduled event; harmless if it already ran.
  void Cancel(EventId id);

  // Time of the earliest pending event, if any.
  std::optional<Cycles> NextTime() const;

  // Runs every event with when <= t, in time order. Handlers may schedule new
  // events (including at <= t, which also run). Returns events executed.
  std::size_t RunDue(Cycles t);

  std::size_t pending() const;

 private:
  struct Entry {
    Cycles when;
    EventId id;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      return a.when != b.when ? a.when > b.when : a.id > b.id;
    }
  };

  void DropCancelledHead() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  mutable std::unordered_set<EventId> cancelled_;
  EventId next_id_ = 1;
};

}  // namespace vos

#endif  // VOS_SRC_HW_EVENT_QUEUE_H_
