// Activity-based power model for Fig 12: components report busy/idle time and
// the meter integrates energy over virtual time. Calibrated so the whole
// device draws ~3 W at an idle shell prompt and ~4 W under gaming load, split
// between the Pi3 board and the Game HAT (display+amp+power IC).
#ifndef VOS_SRC_HW_POWER_METER_H_
#define VOS_SRC_HW_POWER_METER_H_

#include <array>
#include <cstdint>
#include <string>

#include "src/base/units.h"

namespace vos {

enum class PowerComponent : int {
  kSocCoreBusy = 0,  // per-core active execution
  kSocCoreIdle,      // per-core WFI
  kSocBase,          // always-on SoC fabric, DRAM refresh, regulators
  kSdActive,         // SD transfers
  kUsbActive,        // USB controller powered/enumerated
  kHatDisplay,       // HAT 3.5" IPS display + backlight
  kHatAudio,         // HAT amplifier while samples are flowing
  kHatBase,          // HAT power IC overhead
  kCount,
};

struct PowerRates {
  // Watts drawn while the component is "active" for the accounted duration.
  double watts[static_cast<int>(PowerComponent::kCount)] = {
      0.85,  // kSocCoreBusy (per busy core)
      0.04,  // kSocCoreIdle (per idle core, WFI)
      1.12,  // kSocBase
      0.35,  // kSdActive
      0.45,  // kUsbActive
      0.95,  // kHatDisplay
      0.25,  // kHatAudio
      0.30,  // kHatBase
  };
};

class PowerMeter {
 public:
  explicit PowerMeter(PowerRates rates = PowerRates{}) : rates_(rates) {}

  // Accounts `dur` of activity for a component.
  void AddActive(PowerComponent c, Cycles dur) {
    active_[static_cast<int>(c)] += dur;
  }

  Cycles active_time(PowerComponent c) const { return active_[static_cast<int>(c)]; }

  // Joules consumed by one component so far.
  double EnergyJ(PowerComponent c) const {
    return rates_.watts[static_cast<int>(c)] * ToSec(active_[static_cast<int>(c)]);
  }

  double TotalEnergyJ() const;

  // Average power over `elapsed` of virtual time.
  double AverageWatts(Cycles elapsed) const {
    return elapsed == 0 ? 0.0 : TotalEnergyJ() / ToSec(elapsed);
  }

  // Split used by Fig 12: Pi3 board vs the HAT extension board.
  double BoardEnergyJ() const;
  double HatEnergyJ() const;

  // Battery life in hours for a given average power: one 18650 cell,
  // 3000 mAh x 3.7 V = 11.1 Wh (paper Fig 12 caption).
  static double BatteryHours(double avg_watts) {
    return avg_watts <= 0 ? 0.0 : 11.1 / avg_watts;
  }

  void Reset() { active_.fill(0); }

 private:
  PowerRates rates_;
  std::array<Cycles, static_cast<int>(PowerComponent::kCount)> active_{};
};

}  // namespace vos

#endif  // VOS_SRC_HW_POWER_METER_H_
