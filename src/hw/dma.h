// DMA engine. The audio path (§4.4) is its only in-tree client: the driver
// builds control blocks pointing at sample buffers in DRAM and the engine
// streams them to the PWM peripheral, raising an IRQ per completed block —
// the asynchronous producer/consumer pipeline the paper builds MusicPlayer on.
#ifndef VOS_SRC_HW_DMA_H_
#define VOS_SRC_HW_DMA_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>

#include "src/base/units.h"
#include "src/hw/event_queue.h"
#include "src/hw/intc.h"
#include "src/hw/phys_mem.h"

namespace vos {

// A peripheral that consumes DMA data at its own pace (the PWM FIFO).
class DmaSink {
 public:
  virtual ~DmaSink() = default;
  // Accepts `len` bytes from DRAM at `src`; returns the virtual duration the
  // transfer occupies the sink (its consumption rate).
  virtual Cycles Consume(PhysMem& mem, PhysAddr src, std::uint32_t len) = 0;
};

struct DmaControlBlock {
  PhysAddr src = 0;
  std::uint32_t len = 0;
};

class DmaChannel {
 public:
  DmaChannel(EventQueue& eq, Intc& intc, PhysMem& mem, unsigned irq)
      : eq_(eq), intc_(intc), mem_(mem), irq_(irq) {}

  void AttachSink(DmaSink* sink) { sink_ = sink; }

  // Enqueues a control block; the channel starts if idle. Completion of each
  // block raises the channel IRQ (level; ack with ClearIrq).
  void Submit(const DmaControlBlock& cb, Cycles now);

  // INT status ack.
  void ClearIrq() { intc_.Clear(irq_); }

  bool busy() const { return busy_; }
  std::size_t queued() const { return queue_.size(); }
  std::uint64_t completed_blocks() const { return completed_; }

 private:
  void StartNext(Cycles now);

  EventQueue& eq_;
  Intc& intc_;
  PhysMem& mem_;
  unsigned irq_;
  DmaSink* sink_ = nullptr;
  std::deque<DmaControlBlock> queue_;
  bool busy_ = false;
  std::uint64_t completed_ = 0;
};

}  // namespace vos

#endif  // VOS_SRC_HW_DMA_H_
