#include "src/hw/nic.h"

#include <utility>

#include "src/base/assert.h"

namespace vos {

Nic::Nic(VirtualClock& clock, EventQueue& events, Intc& intc, unsigned irq,
         NicTimings timings, std::size_t tx_ring_entries, std::size_t rx_ring_entries)
    : clock_(clock),
      events_(events),
      intc_(intc),
      irq_(irq),
      timings_(timings),
      tx_ring_entries_(tx_ring_entries),
      rx_ring_entries_(rx_ring_entries) {
  VOS_CHECK(tx_ring_entries_ > 0 && rx_ring_entries_ > 0);
}

std::uint64_t Nic::NextRand() {
  // xorshift64: cheap, deterministic, good enough for a loss coin flip.
  rng_ ^= rng_ << 13;
  rng_ ^= rng_ >> 7;
  rng_ ^= rng_ << 17;
  return rng_;
}

bool Nic::PostTx(const std::uint8_t* data, std::size_t len, Cycles* burn) {
  *burn += timings_.reg_access;
  if (tx_ring_.size() >= tx_ring_entries_) {
    ++tx_ring_full_;
    return false;
  }
  *burn += timings_.dma_setup +
           static_cast<Cycles>(static_cast<double>(len) * timings_.dma_per_byte);
  NicFrame frame;
  frame.bytes.assign(data, data + len);
  ++tx_frames_;
  tx_bytes_ += len;

  // The MAC drains its TX ring in order; the wire preserves that order even
  // when per-frame latency varies, so deliveries never overtake each other.
  if (loss_ppm_ > 0 && NextRand() % 1000000u < loss_ppm_) {
    ++link_dropped_;
    return true;  // the sender spent the DMA time; the wire ate the frame
  }
  Cycles depart = clock_.now() + timings_.link_latency + extra_latency_;
  if (depart < last_delivery_) {
    depart = last_delivery_;
  }
  last_delivery_ = depart;
  tx_ring_.push_back(std::move(frame));
  events_.Schedule(depart, [this] {
    VOS_CHECK(!tx_ring_.empty());
    NicFrame f = std::move(tx_ring_.front());
    tx_ring_.pop_front();
    Deliver(std::move(f));
  });
  return true;
}

void Nic::Deliver(NicFrame frame) {
  if (link_sink_) {
    link_sink_(frame);
    return;
  }
  // Loopback: the frame lands on our own RX ring.
  InjectRx(frame.bytes.data(), frame.bytes.size());
}

void Nic::InjectRx(const std::uint8_t* data, std::size_t len) {
  if (rx_ring_.size() >= rx_ring_entries_) {
    ++rx_ring_full_;
    return;
  }
  NicFrame frame;
  frame.bytes.assign(data, data + len);
  rx_ring_.push_back(std::move(frame));
  ++rx_frames_;
  rx_bytes_ += len;
  ++uncoalesced_rx_;
  MaybeRaiseIrq(/*window_expired=*/false);
}

void Nic::MaybeRaiseIrq(bool window_expired) {
  if (irq_pending_) {
    // Line already up; the driver will see these frames in the same drain.
    ++irqs_coalesced_;
    return;
  }
  if (!window_expired && uncoalesced_rx_ < coalesce_frames_) {
    // Below threshold: hold the IRQ, arm (once) the window timer so a lone
    // frame is not starved forever.
    ++irqs_coalesced_;
    if (!window_armed_ && coalesce_window_ > 0) {
      window_armed_ = true;
      window_event_ = events_.Schedule(clock_.now() + coalesce_window_, [this] {
        window_armed_ = false;
        if (uncoalesced_rx_ > 0) {
          MaybeRaiseIrq(/*window_expired=*/true);
        }
      });
    }
    return;
  }
  if (window_armed_) {
    events_.Cancel(window_event_);
    window_armed_ = false;
  }
  irq_pending_ = true;
  uncoalesced_rx_ = 0;
  ++irqs_raised_;
  intc_.Raise(irq_);
}

void Nic::AckIrq() {
  irq_pending_ = false;
  intc_.Clear(irq_);
  // Frames that slipped in between the raise and the ack still count toward
  // the next coalesce threshold; kick the window for them.
  if (uncoalesced_rx_ > 0) {
    MaybeRaiseIrq(/*window_expired=*/false);
  }
}

bool Nic::PopRx(NicFrame* out, Cycles* burn) {
  *burn += timings_.reg_access;
  if (rx_ring_.empty()) {
    return false;
  }
  *out = std::move(rx_ring_.front());
  rx_ring_.pop_front();
  *burn += timings_.dma_setup + static_cast<Cycles>(static_cast<double>(out->bytes.size()) *
                                                    timings_.dma_per_byte);
  return true;
}

void Nic::SetIrqCoalesce(std::uint32_t frames, Cycles window) {
  coalesce_frames_ = frames == 0 ? 1 : frames;
  coalesce_window_ = window;
}

void Nic::SetLinkFaults(std::uint32_t loss_ppm, Cycles extra_latency, std::uint64_t seed) {
  loss_ppm_ = loss_ppm;
  extra_latency_ = extra_latency;
  rng_ = seed | 1;  // xorshift must not start at zero
}

}  // namespace vos
