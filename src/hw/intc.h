// Interrupt controller of the simulated SoC, modeled after the Pi3 setup: a
// shared controller for SoC peripherals whose lines are routed to a core
// (core 0 for all IO, per the paper §4.5), plus per-core private timer lines,
// plus an FIQ line routed round-robin for the panic button (§5.1).
#ifndef VOS_SRC_HW_INTC_H_
#define VOS_SRC_HW_INTC_H_

#include <array>
#include <cstdint>
#include <optional>

#include "src/base/assert.h"

namespace vos {

// IRQ line numbers (SoC-level, loosely following BCM2837 conventions).
enum Irq : unsigned {
  kIrqSysTimerC1 = 1,   // system timer compare 1 (virtual timers)
  kIrqSysTimerC3 = 3,   // system timer compare 3 (free)
  kIrqUsb = 9,          // USB host controller
  kIrqDma0 = 16,        // DMA channel 0 (audio)
  kIrqAux = 29,         // mini UART RX
  kIrqGpio = 49,        // GPIO edge detect (Game HAT buttons)
  kIrqEth = 50,         // ethernet NIC (RX coalesced interrupts)
  kIrqSd = 62,          // SD host (unused: our driver polls)
  // Per-core ARM generic timer private lines.
  kIrqCoreTimerBase = 64,  // +core index
  kIrqMax = 96,
};

constexpr unsigned kMaxCores = 4;

constexpr unsigned CoreTimerIrq(unsigned core) { return kIrqCoreTimerBase + core; }

class Intc {
 public:
  explicit Intc(unsigned num_cores) : num_cores_(num_cores) {
    VOS_CHECK(num_cores >= 1 && num_cores <= kMaxCores);
    routes_.fill(0);
    for (unsigned c = 0; c < kMaxCores; ++c) {
      routes_[CoreTimerIrq(c)] = static_cast<int>(c);
    }
  }

  unsigned num_cores() const { return num_cores_; }

  // Device side: level-triggered lines.
  void Raise(unsigned irq) { Line(irq).pending = true; }
  void Clear(unsigned irq) { Line(irq).pending = false; }
  bool IsPending(unsigned irq) const { return lines_[Check(irq)].pending; }

  // Kernel side: masking and routing.
  void Enable(unsigned irq) { Line(irq).enabled = true; }
  void Disable(unsigned irq) { Line(irq).enabled = false; }
  void RouteTo(unsigned irq, unsigned core) {
    VOS_CHECK(core < num_cores_);
    routes_[Check(irq)] = static_cast<int>(core);
  }

  // Lowest-numbered enabled+pending IRQ routed to `core`, if any.
  std::optional<unsigned> PendingFor(unsigned core) const {
    for (unsigned i = 0; i < kIrqMax; ++i) {
      if (lines_[i].pending && lines_[i].enabled && routes_[i] == static_cast<int>(core)) {
        return i;
      }
    }
    return std::nullopt;
  }

  bool AnyPending() const {
    for (unsigned i = 0; i < kIrqMax; ++i) {
      if (lines_[i].pending && lines_[i].enabled) {
        return true;
      }
    }
    return false;
  }

  // FIQ: stays unmaskable; delivered round-robin across cores (§5.1 panic
  // button). ConsumeFiq returns the core that should take it.
  void RaiseFiq() { fiq_pending_ = true; }
  bool FiqPending() const { return fiq_pending_; }
  unsigned ConsumeFiq() {
    VOS_CHECK(fiq_pending_);
    fiq_pending_ = false;
    unsigned core = fiq_rr_;
    fiq_rr_ = (fiq_rr_ + 1) % num_cores_;
    return core;
  }

 private:
  struct LineState {
    bool pending = false;
    bool enabled = false;
  };

  static unsigned Check(unsigned irq) {
    VOS_CHECK(irq < kIrqMax);
    return irq;
  }
  LineState& Line(unsigned irq) { return lines_[Check(irq)]; }

  unsigned num_cores_;
  std::array<LineState, kIrqMax> lines_{};
  std::array<int, kIrqMax> routes_{};
  bool fiq_pending_ = false;
  unsigned fiq_rr_ = 0;
};

}  // namespace vos

#endif  // VOS_SRC_HW_INTC_H_
