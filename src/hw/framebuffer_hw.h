// The GPU-owned framebuffer, allocated via the mailbox (§4.1 "framebuffer a
// first-class IO").
//
// Cache model (§4.3 "see CPU cache in action"): the CPU writes pixels through
// a write-back cache, so stores land in the cache-side buffer and are NOT
// visible to the display until the kernel flushes the range. Scanout (what a
// screenshot returns) reads the memory-side buffer. An unflushed frame
// therefore shows stale pixels — exactly the artifact the paper teaches.
// Additionally, background write-back slowly evicts dirty lines, mimicking
// "artifacts gradually disappear as cache lines hit the memory".
#ifndef VOS_SRC_HW_FRAMEBUFFER_HW_H_
#define VOS_SRC_HW_FRAMEBUFFER_HW_H_

#include <cstdint>
#include <vector>

#include "src/base/units.h"
#include "src/hw/cache_model.h"
#include "src/hw/phys_mem.h"

namespace vos {

class FramebufferHw {
 public:
  // Geometry is set by the mailbox call; this constructs an unallocated fb.
  FramebufferHw() = default;

  bool allocated() const { return width_ != 0; }
  std::uint32_t width() const { return width_; }
  std::uint32_t height() const { return height_; }
  std::uint32_t pitch() const { return width_ * 4; }  // 32bpp XRGB
  std::uint64_t size_bytes() const { return std::uint64_t(pitch()) * height_; }

  // Nominal bus address the mailbox response reports. Arbitrary but stable,
  // mimicking the "GPU framebuffers may be mapped to arbitrary addresses on
  // real hardware" lesson (§5.1).
  PhysAddr bus_addr() const { return 0x3c100000; }

  // (Re)allocates the buffers; called by the mailbox property handler.
  void Configure(std::uint32_t width, std::uint32_t height);

  // CPU-visible side: what an mmap of /dev/fb points at.
  std::uint32_t* cpu_pixels() { return cache_side_.data(); }
  const std::uint32_t* cpu_pixels() const { return cache_side_.data(); }

  // Display side: what the panel scans out.
  const std::uint32_t* scanout_pixels() const { return memory_side_.data(); }

  // Cache maintenance: flush [offset, offset+len) bytes of the fb region from
  // the cache side to the memory side. Returns bytes actually flushed.
  std::uint64_t FlushRange(std::uint64_t offset, std::uint64_t len);
  std::uint64_t FlushAll() { return FlushRange(0, size_bytes()); }

  // Background write-back: evicts a small number of dirty lines, as a cache
  // under pressure would. Tests call this to watch artifacts fade.
  void EvictRandomLines(std::uint64_t seed, int lines);

  // True iff cache side and memory side are identical (fully flushed).
  bool Coherent() const { return cache_side_ == memory_side_; }

  const CacheStats& stats() const { return stats_; }

 private:
  std::uint32_t width_ = 0;
  std::uint32_t height_ = 0;
  std::vector<std::uint32_t> cache_side_;
  std::vector<std::uint32_t> memory_side_;
  CacheStats stats_;
};

}  // namespace vos

#endif  // VOS_SRC_HW_FRAMEBUFFER_HW_H_
