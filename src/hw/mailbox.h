// VideoCore property mailbox (channel 8), the Pi3's firmware interface the
// kernel uses to allocate the framebuffer (§4.1). We implement the property
// tag protocol over an in-memory message buffer: the driver builds a tag
// sequence, Call() processes it in place exactly like the firmware does.
#ifndef VOS_SRC_HW_MAILBOX_H_
#define VOS_SRC_HW_MAILBOX_H_

#include <cstdint>
#include <vector>

#include "src/base/units.h"
#include "src/hw/framebuffer_hw.h"

namespace vos {

// Property tags we implement (subset of the firmware's set).
enum MailboxTag : std::uint32_t {
  kTagSetPhysicalSize = 0x00048003,
  kTagSetVirtualSize = 0x00048004,
  kTagSetDepth = 0x00048005,
  kTagAllocateBuffer = 0x00040001,
  kTagGetPitch = 0x00040008,
  kTagGetArmMemory = 0x00010005,
  kTagGetBoardRevision = 0x00010002,
  kTagEnd = 0,
};

constexpr std::uint32_t kMailboxRequest = 0x00000000;
constexpr std::uint32_t kMailboxResponseOk = 0x80000000;
constexpr std::uint32_t kMailboxResponseErr = 0x80000001;
constexpr std::uint32_t kMailboxTagResponse = 0x80000000;

class Mailbox {
 public:
  Mailbox(FramebufferHw& fb, std::uint64_t arm_mem_size)
      : fb_(fb), arm_mem_size_(arm_mem_size) {}

  // Processes a property message in place: msg[0]=total bytes, msg[1]=req
  // code, then tags: {id, value_buf_bytes, req/resp code, values...}, kTagEnd.
  // Returns the firmware latency of the call (the CPU blocks on the mailbox).
  Cycles Call(std::vector<std::uint32_t>& msg);

  std::uint64_t calls() const { return calls_; }

 private:
  FramebufferHw& fb_;
  std::uint64_t arm_mem_size_;
  std::uint64_t calls_ = 0;
  std::uint32_t pending_w_ = 0;
  std::uint32_t pending_h_ = 0;
  std::uint32_t pending_depth_ = 32;
};

}  // namespace vos

#endif  // VOS_SRC_HW_MAILBOX_H_
