#include "src/hw/sys_timer.h"

#include "src/base/assert.h"

namespace vos {

void SysTimer::SetCompare(unsigned ch, std::uint64_t compare_us) {
  VOS_CHECK(ch < 4);
  if (ch_[ch].ev) {
    eq_.Cancel(*ch_[ch].ev);
  }
  unsigned irq = IrqFor(ch);
  ch_[ch].ev = eq_.Schedule(compare_us * kCyclesPerUs, [this, ch, irq] {
    ch_[ch].ev.reset();
    intc_.Raise(irq);
  });
}

void SysTimer::ClearMatch(unsigned ch) {
  VOS_CHECK(ch < 4);
  intc_.Clear(IrqFor(ch));
}

void CoreTimer::Arm(Cycles now, Cycles delta) {
  Disarm();
  ev_ = eq_.Schedule(now + delta, [this] {
    ev_.reset();
    intc_.Raise(CoreTimerIrq(core_));
  });
}

void CoreTimer::Disarm() {
  if (ev_) {
    eq_.Cancel(*ev_);
    ev_.reset();
  }
}

}  // namespace vos
