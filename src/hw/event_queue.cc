#include "src/hw/event_queue.h"

#include "src/base/assert.h"

namespace vos {

EventId EventQueue::Schedule(Cycles when, EventFn fn) {
  EventId id = next_id_++;
  heap_.push(Entry{when, id, std::move(fn)});
  return id;
}

void EventQueue::Cancel(EventId id) { cancelled_.insert(id); }

void EventQueue::DropCancelledHead() const {
  while (!heap_.empty() && cancelled_.count(heap_.top().id) != 0) {
    cancelled_.erase(heap_.top().id);
    heap_.pop();
  }
}

std::optional<Cycles> EventQueue::NextTime() const {
  DropCancelledHead();
  if (heap_.empty()) {
    return std::nullopt;
  }
  return heap_.top().when;
}

std::size_t EventQueue::RunDue(Cycles t) {
  std::size_t n = 0;
  for (;;) {
    DropCancelledHead();
    if (heap_.empty() || heap_.top().when > t) {
      break;
    }
    Entry e = heap_.top();
    heap_.pop();
    e.fn();
    ++n;
    VOS_CHECK_MSG(n < 1000000, "event storm: handler keeps rescheduling at the same time");
  }
  return n;
}

std::size_t EventQueue::pending() const {
  DropCancelledHead();
  return heap_.size();
}

}  // namespace vos
