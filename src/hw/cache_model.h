// Cache bookkeeping shared by the framebuffer cache model: line size and
// flush statistics. Kept separate so benches can report flush traffic.
#ifndef VOS_SRC_HW_CACHE_MODEL_H_
#define VOS_SRC_HW_CACHE_MODEL_H_

#include <cstdint>

#include "src/base/units.h"

namespace vos {

// Cortex-A53 L1D line size.
constexpr std::uint64_t kCacheLineSize = 64;

struct CacheStats {
  std::uint64_t flush_calls = 0;
  std::uint64_t flushed_bytes = 0;
  std::uint64_t evicted_lines = 0;
};

// Virtual-time cost of flushing `bytes` by DC CVAC loop: roughly one line per
// ~4 ns on A53 when lines are dirty.
Cycles CacheFlushCost(std::uint64_t bytes);

}  // namespace vos

#endif  // VOS_SRC_HW_CACHE_MODEL_H_
