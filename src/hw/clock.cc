#include "src/hw/clock.h"

// VirtualClock is header-only; this TU anchors the module in the build.
