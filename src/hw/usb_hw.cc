#include "src/hw/usb_hw.h"

#include <algorithm>

#include "src/base/assert.h"

namespace vos {

void UsbKeyboard::KeyDown(std::uint8_t hid_code, std::uint8_t modifiers) {
  report_.modifiers |= modifiers;
  for (std::uint8_t& k : report_.keys) {
    if (k == hid_code) {
      return;  // already down
    }
  }
  for (std::uint8_t& k : report_.keys) {
    if (k == 0) {
      k = hid_code;
      return;
    }
  }
  // More than 6 keys: boot protocol reports rollover; we just drop.
}

void UsbKeyboard::KeyUp(std::uint8_t hid_code) {
  for (std::uint8_t& k : report_.keys) {
    if (k == hid_code) {
      k = 0;
    }
  }
  // Releasing the last key also clears modifiers if no key held them; we keep
  // modifiers until explicitly changed by the next KeyDown with modifiers=0.
  bool any = std::any_of(report_.keys.begin(), report_.keys.end(),
                         [](std::uint8_t k) { return k != 0; });
  if (!any) {
    report_.modifiers = 0;
  }
}

namespace {

// Descriptor blobs for a generic HID boot keyboard, byte-exact per USB 2.0
// §9.6 so the kernel driver can parse them the way USPi would.
const std::uint8_t kDeviceDescriptor[18] = {
    18,    kUsbDescDevice,
    0x00,  0x02,        // bcdUSB 2.00
    0,     0,    0,     // class/subclass/protocol: per interface
    8,                  // bMaxPacketSize0
    0x5e,  0x04,        // idVendor
    0x1b,  0x07,        // idProduct
    0x00,  0x01,        // bcdDevice
    1,     2,    0,     // string indexes
    1,                  // bNumConfigurations
};

const std::uint8_t kConfigDescriptor[] = {
    // Configuration descriptor
    9, kUsbDescConfiguration, 34, 0,  // wTotalLength = 34
    1,                                // bNumInterfaces
    1,                                // bConfigurationValue
    0,                                // iConfiguration
    0xa0,                             // attributes: bus powered, remote wakeup
    50,                               // 100 mA
    // Interface descriptor: HID, boot subclass, keyboard protocol
    9, kUsbDescInterface, 0, 0, 1, 3, 1, 1, 0,
    // HID descriptor
    9, kUsbDescHid, 0x11, 0x01, 0, 1, 0x22, 63, 0,
    // Endpoint descriptor: interrupt IN, EP1, 8 bytes, 8 ms
    7, kUsbDescEndpoint, 0x81, 0x03, 8, 0, 8,
};

}  // namespace

Cycles UsbHostController::PowerOnPort() {
  powered_since_ = Cycles(0);
  return Ms(780);  // VBUS ramp + connect debounce + hub settle
}

Cycles UsbHostController::ResetPort() {
  address_ = 0;
  configured_ = false;
  return Ms(160);  // reset + recovery + speed negotiation retries
}

std::optional<std::vector<std::uint8_t>> UsbHostController::ControlIn(
    std::uint8_t bm_request_type, std::uint8_t b_request, std::uint16_t value,
    std::uint16_t index, std::uint16_t length, Cycles* duration) {
  *duration = Ms(9);  // control transfer incl. frame alignment + stack bookkeeping
  if (kbd_ == nullptr) {
    return std::nullopt;
  }
  if (b_request == kUsbGetDescriptor && (bm_request_type & 0x80) != 0) {
    std::uint8_t type = static_cast<std::uint8_t>(value >> 8);
    const std::uint8_t* src = nullptr;
    std::size_t src_len = 0;
    if (type == kUsbDescDevice) {
      src = kDeviceDescriptor;
      src_len = sizeof(kDeviceDescriptor);
    } else if (type == kUsbDescConfiguration) {
      src = kConfigDescriptor;
      src_len = sizeof(kConfigDescriptor);
    } else {
      return std::nullopt;  // stall: unsupported descriptor
    }
    std::size_t n = std::min<std::size_t>(length, src_len);
    return std::vector<std::uint8_t>(src, src + n);
  }
  return std::nullopt;
}

bool UsbHostController::ControlOut(std::uint8_t bm_request_type, std::uint8_t b_request,
                                   std::uint16_t value, std::uint16_t index, Cycles* duration) {
  *duration = Ms(1);
  if (kbd_ == nullptr) {
    return false;
  }
  switch (b_request) {
    case kUsbSetAddress:
      address_ = static_cast<std::uint8_t>(value & 0x7f);
      return true;
    case kUsbSetConfiguration:
      configured_ = (value == 1);
      return configured_;
    case kUsbHidSetProtocol:
      kbd_->SetBootProtocol(value == 0);
      return true;
    case kUsbHidSetIdle:
      return true;
    default:
      return false;
  }
}

void UsbHostController::StartInterruptPolling(Cycles now, std::uint32_t interval_ms) {
  VOS_CHECK_MSG(configured_, "interrupt polling before SET_CONFIGURATION");
  polling_ = true;
  last_report_ = kbd_ != nullptr ? kbd_->current_report() : HidReport{};
  Cycles at = now + Ms(interval_ms);
  poll_ev_ = eq_.Schedule(at, [this, at, interval_ms] { PollOnce(at, interval_ms); });
}

void UsbHostController::PollOnce(Cycles scheduled_at, std::uint32_t interval_ms) {
  if (!polling_) {
    return;
  }
  if (kbd_ != nullptr) {
    HidReport cur = kbd_->current_report();
    if (!(cur == last_report_)) {
      last_report_ = cur;
      latched_.PushOverwrite(cur);
      intc_.Raise(kIrqUsb);
    }
  }
  Cycles at = scheduled_at + Ms(interval_ms);
  poll_ev_ = eq_.Schedule(at, [this, at, interval_ms] { PollOnce(at, interval_ms); });
}

void UsbHostController::StopInterruptPolling() {
  polling_ = false;
  if (poll_ev_) {
    eq_.Cancel(*poll_ev_);
    poll_ev_.reset();
  }
}

std::optional<HidReport> UsbHostController::ReadLatchedReport() {
  auto r = latched_.Pop();
  if (latched_.empty()) {
    intc_.Clear(kIrqUsb);
  }
  return r;
}

}  // namespace vos
