// USB mass-storage class device (bulk-only transport + SCSI transparent
// command set) — the USB extensibility the paper explicitly defers to future
// work (§4.4: the stack "makes VOS extensible to more USB classes, such as
// ethernet adapters and mass storage"). A USB thumb drive: the kernel driver
// enumerates it, speaks CBW/CSW over the bulk endpoints, and exposes it as a
// block device mounted at /u.
#ifndef VOS_SRC_HW_USB_MSC_H_
#define VOS_SRC_HW_USB_MSC_H_

#include <cstdint>
#include <vector>

#include "src/base/units.h"

namespace vos {

// Command Block / Status Wrappers per the BOT spec (USB MSC 1.0).
#pragma pack(push, 1)
struct Cbw {
  std::uint32_t signature = 0x43425355;  // "USBC"
  std::uint32_t tag = 0;
  std::uint32_t data_transfer_length = 0;
  std::uint8_t flags = 0;  // bit7: 1 = device-to-host
  std::uint8_t lun = 0;
  std::uint8_t cb_length = 0;
  std::uint8_t cb[16] = {};
};

struct Csw {
  std::uint32_t signature = 0x53425355;  // "USBS"
  std::uint32_t tag = 0;
  std::uint32_t data_residue = 0;
  std::uint8_t status = 0;  // 0 = passed, 1 = failed
};
#pragma pack(pop)

// SCSI opcodes the device implements.
enum ScsiOp : std::uint8_t {
  kScsiTestUnitReady = 0x00,
  kScsiInquiry = 0x12,
  kScsiReadCapacity10 = 0x25,
  kScsiRead10 = 0x28,
  kScsiWrite10 = 0x2a,
};

class UsbMassStorage {
 public:
  explicit UsbMassStorage(std::uint64_t capacity_bytes);

  // --- Control endpoint (enumeration) ---
  std::vector<std::uint8_t> DeviceDescriptor() const;
  std::vector<std::uint8_t> ConfigDescriptor() const;
  std::uint8_t MaxLun() const { return 0; }

  // --- Bulk-only transport: one full CBW -> data -> CSW transaction.
  // `data` is read for host-to-device writes and filled for reads. Returns
  // the CSW; `duration` receives the bus+media time of the transaction.
  Csw Transaction(const Cbw& cbw, std::vector<std::uint8_t>& data, Cycles* duration);

  std::vector<std::uint8_t>& disk() { return disk_; }
  std::uint64_t capacity_blocks() const { return disk_.size() / 512; }
  std::uint64_t transactions() const { return transactions_; }

 private:
  std::vector<std::uint8_t> disk_;
  std::uint64_t transactions_ = 0;
};

}  // namespace vos

#endif  // VOS_SRC_HW_USB_MSC_H_
