#include "src/hw/cache_model.h"

namespace vos {

Cycles CacheFlushCost(std::uint64_t bytes) {
  std::uint64_t lines = (bytes + kCacheLineSize - 1) / kCacheLineSize;
  return lines * 4;
}

}  // namespace vos
