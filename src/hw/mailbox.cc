#include "src/hw/mailbox.h"

#include "src/base/assert.h"

namespace vos {

Cycles Mailbox::Call(std::vector<std::uint32_t>& msg) {
  ++calls_;
  VOS_CHECK_MSG(msg.size() >= 3, "mailbox message too short");
  VOS_CHECK_MSG(msg[1] == kMailboxRequest, "mailbox message is not a request");
  bool ok = true;
  std::size_t i = 2;
  while (i < msg.size() && msg[i] != kTagEnd) {
    std::uint32_t tag = msg[i];
    VOS_CHECK_MSG(i + 2 < msg.size(), "truncated mailbox tag header");
    std::uint32_t buf_bytes = msg[i + 1];
    std::size_t values = i + 3;
    std::size_t nvals = buf_bytes / 4;
    VOS_CHECK_MSG(values + nvals <= msg.size(), "mailbox tag value buffer out of range");
    switch (tag) {
      case kTagSetPhysicalSize:
      case kTagSetVirtualSize:
        VOS_CHECK(nvals >= 2);
        pending_w_ = msg[values];
        pending_h_ = msg[values + 1];
        msg[i + 2] = kMailboxTagResponse | 8;
        break;
      case kTagSetDepth:
        VOS_CHECK(nvals >= 1);
        pending_depth_ = msg[values];
        msg[i + 2] = kMailboxTagResponse | 4;
        break;
      case kTagAllocateBuffer:
        if (pending_w_ == 0 || pending_h_ == 0 || pending_depth_ != 32) {
          ok = false;
          break;
        }
        fb_.Configure(pending_w_, pending_h_);
        VOS_CHECK(nvals >= 2);
        msg[values] = static_cast<std::uint32_t>(fb_.bus_addr());
        msg[values + 1] = static_cast<std::uint32_t>(fb_.size_bytes());
        msg[i + 2] = kMailboxTagResponse | 8;
        break;
      case kTagGetPitch:
        VOS_CHECK(nvals >= 1);
        msg[values] = fb_.allocated() ? fb_.pitch() : 0;
        msg[i + 2] = kMailboxTagResponse | 4;
        break;
      case kTagGetArmMemory:
        VOS_CHECK(nvals >= 2);
        msg[values] = 0;
        msg[values + 1] = static_cast<std::uint32_t>(arm_mem_size_);
        msg[i + 2] = kMailboxTagResponse | 8;
        break;
      case kTagGetBoardRevision:
        VOS_CHECK(nvals >= 1);
        msg[values] = 0x00a02082;  // Pi 3 Model B
        msg[i + 2] = kMailboxTagResponse | 4;
        break;
      default:
        // Unknown tags are skipped without a response bit, as firmware does.
        break;
    }
    i = values + nvals;
  }
  msg[1] = ok ? kMailboxResponseOk : kMailboxResponseErr;
  // Firmware round-trip: the CPU polls the mailbox status for the response.
  return Us(120);
}

}  // namespace vos
