#include "src/hw/intc.h"

// Intc is header-only; this TU anchors the module in the build.
