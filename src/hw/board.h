// The board: a Pi3-class machine assembled from the device models. This is
// the hardware half of the simulator; src/kernel builds the OS on top of it.
#ifndef VOS_SRC_HW_BOARD_H_
#define VOS_SRC_HW_BOARD_H_

#include <memory>

#include "src/base/units.h"
#include "src/hw/audio_pwm.h"
#include "src/hw/clock.h"
#include "src/hw/dma.h"
#include "src/hw/event_queue.h"
#include "src/hw/framebuffer_hw.h"
#include "src/hw/gpio.h"
#include "src/hw/intc.h"
#include "src/hw/mailbox.h"
#include "src/hw/nic.h"
#include "src/hw/phys_mem.h"
#include "src/hw/power_meter.h"
#include "src/hw/sd_card.h"
#include "src/hw/sys_timer.h"
#include "src/hw/uart.h"
#include "src/hw/usb_hw.h"
#include "src/hw/usb_msc.h"

namespace vos {

struct BoardConfig {
  unsigned cores = 4;
  std::uint64_t dram_size = MiB(64);        // simulated DRAM (Pi3 has 1 GB; we
                                            // default smaller to keep tests light)
  std::uint64_t sd_capacity = MiB(32);      // SD card size
  bool real_hardware = true;                // scramble DRAM like real silicon
  bool usb_keyboard_present = true;
  bool usb_storage_present = false;         // a thumb drive on the second port
  std::uint64_t usb_storage_capacity = MiB(16);
  bool game_hat_present = true;             // HAT display/buttons/speaker
  std::uint64_t scramble_seed = 0xb0a7d00d;
  SdTimings sd_timings{};
  bool nic_present = true;                  // ethernet MAC with DMA rings
  NicTimings nic_timings{};
  std::size_t nic_tx_ring = 256;
  std::size_t nic_rx_ring = 256;
};

class Board {
 public:
  explicit Board(const BoardConfig& config);

  const BoardConfig& config() const { return config_; }

  VirtualClock& clock() { return clock_; }
  EventQueue& events() { return events_; }
  PhysMem& mem() { return *mem_; }
  Intc& intc() { return *intc_; }
  SysTimer& sys_timer() { return *sys_timer_; }
  CoreTimer& core_timer(unsigned core) { return *core_timers_[core]; }
  Uart& uart() { return *uart_; }
  Mailbox& mailbox() { return *mailbox_; }
  FramebufferHw& fb() { return *fb_; }
  Gpio& gpio() { return *gpio_; }
  DmaChannel& dma0() { return *dma0_; }
  AudioPwm& audio() { return *audio_; }
  SdCard& sd() { return *sd_; }
  UsbHostController& usb() { return *usb_; }
  UsbKeyboard& keyboard() { return *keyboard_; }
  UsbMassStorage* usb_storage() { return usb_storage_.get(); }
  Nic* nic() { return nic_.get(); }
  PowerMeter& power() { return *power_; }

 private:
  BoardConfig config_;
  VirtualClock clock_;
  EventQueue events_;
  std::unique_ptr<PhysMem> mem_;
  std::unique_ptr<Intc> intc_;
  std::unique_ptr<SysTimer> sys_timer_;
  std::unique_ptr<CoreTimer> core_timers_[kMaxCores];
  std::unique_ptr<Uart> uart_;
  std::unique_ptr<FramebufferHw> fb_;
  std::unique_ptr<Mailbox> mailbox_;
  std::unique_ptr<Gpio> gpio_;
  std::unique_ptr<AudioPwm> audio_;
  std::unique_ptr<DmaChannel> dma0_;
  std::unique_ptr<SdCard> sd_;
  std::unique_ptr<UsbKeyboard> keyboard_;
  std::unique_ptr<UsbHostController> usb_;
  std::unique_ptr<UsbMassStorage> usb_storage_;
  std::unique_ptr<Nic> nic_;
  std::unique_ptr<PowerMeter> power_;
};

}  // namespace vos

#endif  // VOS_SRC_HW_BOARD_H_
