#include "src/hw/framebuffer_hw.h"

#include <algorithm>
#include <cstring>

#include "src/base/assert.h"
#include "src/base/random.h"

namespace vos {

void FramebufferHw::Configure(std::uint32_t width, std::uint32_t height) {
  VOS_CHECK(width > 0 && width <= 4096 && height > 0 && height <= 4096);
  width_ = width;
  height_ = height;
  cache_side_.assign(std::size_t(width) * height, 0xff000000);
  memory_side_.assign(std::size_t(width) * height, 0xff000000);
}

std::uint64_t FramebufferHw::FlushRange(std::uint64_t offset, std::uint64_t len) {
  if (!allocated() || offset >= size_bytes()) {
    return 0;
  }
  len = std::min(len, size_bytes() - offset);
  // Whole cache lines, as DC CVAC would operate.
  std::uint64_t start = offset & ~(kCacheLineSize - 1);
  std::uint64_t end = (offset + len + kCacheLineSize - 1) & ~(kCacheLineSize - 1);
  end = std::min(end, size_bytes());
  std::memcpy(reinterpret_cast<std::uint8_t*>(memory_side_.data()) + start,
              reinterpret_cast<const std::uint8_t*>(cache_side_.data()) + start, end - start);
  ++stats_.flush_calls;
  stats_.flushed_bytes += end - start;
  return end - start;
}

void FramebufferHw::EvictRandomLines(std::uint64_t seed, int lines) {
  if (!allocated()) {
    return;
  }
  Rng rng(seed);
  std::uint64_t nlines = size_bytes() / kCacheLineSize;
  for (int i = 0; i < lines; ++i) {
    std::uint64_t line = rng.NextBelow(nlines);
    std::uint64_t off = line * kCacheLineSize;
    std::memcpy(reinterpret_cast<std::uint8_t*>(memory_side_.data()) + off,
                reinterpret_cast<const std::uint8_t*>(cache_side_.data()) + off, kCacheLineSize);
    ++stats_.evicted_lines;
  }
}

}  // namespace vos
