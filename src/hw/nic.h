// Simulated NIC: an ethernet MAC with TX/RX DMA descriptor rings, interrupt
// coalescing, and a host-side virtual link. The model follows the SD/USB
// device-model methodology: operations return the Cycles they occupy (the
// driver burns them), asynchronous behaviour (DMA drain, link propagation,
// coalesce windows) rides the board's discrete-event queue, and completion
// surfaces as an IRQ line on the interrupt controller.
//
// The virtual link is a frame pipe with configurable one-way latency and a
// deterministic seeded loss process (the FaultInjector idiom: same seed, same
// drops). By default the link is looped back onto the NIC's own RX ring — the
// kernel's TCP/IP stack talks to itself over a real wire model, so handshakes,
// data, retransmissions and teardown all traverse the descriptor rings. Tests
// install a LinkSink to play the remote host instead.
#ifndef VOS_SRC_HW_NIC_H_
#define VOS_SRC_HW_NIC_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "src/base/units.h"
#include "src/hw/clock.h"
#include "src/hw/event_queue.h"
#include "src/hw/intc.h"

namespace vos {

struct NicFrame {
  std::vector<std::uint8_t> bytes;
};

struct NicTimings {
  Cycles reg_access = 90;        // one MMIO register read/write
  Cycles dma_setup = 500;        // descriptor fetch + DMA engine kick, per frame
  double dma_per_byte = 0.25;    // DMA copy between DRAM and MAC FIFO
  Cycles link_latency = Us(20);  // one-way wire propagation
};

class Nic {
 public:
  using LinkSinkFn = std::function<void(const NicFrame&)>;

  Nic(VirtualClock& clock, EventQueue& events, Intc& intc, unsigned irq,
      NicTimings timings = NicTimings{}, std::size_t tx_ring_entries = 256,
      std::size_t rx_ring_entries = 256);

  // --- Driver-facing side (what the MMIO/descriptor interface would do) ---

  // Posts one frame on the TX descriptor ring. Returns false when the ring is
  // full (the frame is NOT queued; the driver drops or backpressures). `burn`
  // accrues the register + DMA setup time the posting CPU spends.
  bool PostTx(const std::uint8_t* data, std::size_t len, Cycles* burn);

  // Pops the oldest frame off the RX descriptor ring; false when empty.
  bool PopRx(NicFrame* out, Cycles* burn);
  std::size_t rx_pending() const { return rx_ring_.size(); }

  // Interrupt coalescing: the RX IRQ fires when `frames` frames are waiting,
  // or `window` cycles after the first undelivered frame — whichever is
  // first. frames=1 / window=0 means interrupt per frame.
  void SetIrqCoalesce(std::uint32_t frames, Cycles window);
  // Driver IRQ half acks the line before draining the ring.
  void AckIrq();

  // --- Link side (host / test harness) ---

  // Replaces the default loopback: transmitted frames (post-latency,
  // post-loss) are handed to `sink` instead of the local RX ring. The sink
  // plays the remote host and can inject replies with InjectRx.
  void SetLinkSink(LinkSinkFn sink) { link_sink_ = std::move(sink); }

  // A frame arrives from the wire: lands on the RX ring (or is dropped when
  // the ring is full) and drives the coalescing logic.
  void InjectRx(const std::uint8_t* data, std::size_t len);

  // Link fault model, FaultInjector-style: deterministic per-frame loss (in
  // drops per million frames) and additional one-way latency. Reseeding
  // restarts the loss sequence, so a failure replays exactly.
  void SetLinkFaults(std::uint32_t loss_ppm, Cycles extra_latency, std::uint64_t seed);
  void SetLinkLatency(Cycles l) { timings_.link_latency = l; }

  // --- Stats (token-serialized snapshots; gauges read these) ---
  std::uint64_t tx_frames() const { return tx_frames_; }
  std::uint64_t tx_bytes() const { return tx_bytes_; }
  std::uint64_t rx_frames() const { return rx_frames_; }
  std::uint64_t rx_bytes() const { return rx_bytes_; }
  std::uint64_t tx_ring_full() const { return tx_ring_full_; }
  std::uint64_t rx_ring_full() const { return rx_ring_full_; }
  std::uint64_t link_dropped() const { return link_dropped_; }
  std::uint64_t irqs_raised() const { return irqs_raised_; }
  std::uint64_t irqs_coalesced() const { return irqs_coalesced_; }

 private:
  // The wire delivers a TX frame after latency/loss (event-queue callback).
  void Deliver(NicFrame frame);
  void MaybeRaiseIrq(bool window_expired);
  std::uint64_t NextRand();

  VirtualClock& clock_;
  EventQueue& events_;
  Intc& intc_;
  unsigned irq_;
  NicTimings timings_;
  std::size_t tx_ring_entries_;
  std::size_t rx_ring_entries_;

  // Descriptor rings. Modeled as bounded frame queues: a slot == one
  // descriptor owning one frame buffer.
  std::deque<NicFrame> tx_ring_;
  std::deque<NicFrame> rx_ring_;

  // Wire serialization: a frame may not overtake the one posted before it,
  // even when a latency fault stretches the earlier one.
  Cycles last_delivery_ = 0;

  LinkSinkFn link_sink_;  // empty = loopback to own RX

  // IRQ coalescing state.
  std::uint32_t coalesce_frames_ = 1;
  Cycles coalesce_window_ = 0;
  std::uint32_t uncoalesced_rx_ = 0;  // frames since the last raise/ack
  bool irq_pending_ = false;          // line raised, not yet acked
  bool window_armed_ = false;
  EventId window_event_ = 0;

  // Link fault process (xorshift64, FaultInjector-style determinism).
  std::uint32_t loss_ppm_ = 0;
  Cycles extra_latency_ = 0;
  std::uint64_t rng_ = 0x9e3779b97f4a7c15ull;

  std::uint64_t tx_frames_ = 0;
  std::uint64_t tx_bytes_ = 0;
  std::uint64_t rx_frames_ = 0;
  std::uint64_t rx_bytes_ = 0;
  std::uint64_t tx_ring_full_ = 0;
  std::uint64_t rx_ring_full_ = 0;
  std::uint64_t link_dropped_ = 0;
  std::uint64_t irqs_raised_ = 0;
  std::uint64_t irqs_coalesced_ = 0;
};

}  // namespace vos

#endif  // VOS_SRC_HW_NIC_H_
