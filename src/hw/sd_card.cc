#include "src/hw/sd_card.h"

#include <cstring>

#include "src/base/assert.h"

namespace vos {

SdCard::SdCard(std::uint64_t capacity_bytes, SdTimings timings)
    : t_(timings), disk_(capacity_bytes, 0) {
  VOS_CHECK_MSG(capacity_bytes % kSdBlockSize == 0, "SD capacity must be block aligned");
}

Cycles SdCard::CmdGoIdle() {
  ++commands_;
  state_ = State::kIdle;
  acmd41_polls_ = 0;
  return t_.cmd_overhead;
}

Cycles SdCard::CmdSendIfCond(std::uint32_t arg) {
  ++commands_;
  VOS_CHECK_MSG(state_ == State::kIdle, "CMD8 only valid in idle state");
  VOS_CHECK_MSG((arg & 0xff) == 0xaa, "CMD8 check pattern mismatch");
  return t_.cmd_overhead;
}

Cycles SdCard::AcmdSendOpCond() {
  ++commands_;
  VOS_CHECK_MSG(state_ == State::kIdle, "ACMD41 only valid in idle state");
  ++acmd41_polls_;
  if (acmd41_polls_ >= 3) {
    state_ = State::kIdent;  // card powered up (OCR busy bit set)
  }
  return t_.cmd_overhead + Ms(10);  // card ramping its charge pump
}

Cycles SdCard::CmdAllSendCid() {
  ++commands_;
  VOS_CHECK_MSG(state_ == State::kIdent, "CMD2 only valid in ident state");
  return t_.cmd_overhead;
}

Cycles SdCard::CmdSendRelativeAddr(std::uint16_t* rca_out) {
  ++commands_;
  VOS_CHECK_MSG(state_ == State::kIdent, "CMD3 only valid in ident state");
  rca_ = 0x1234;
  state_ = State::kStandby;
  if (rca_out != nullptr) {
    *rca_out = rca_;
  }
  return t_.cmd_overhead;
}

Cycles SdCard::CmdSelectCard(std::uint16_t rca) {
  ++commands_;
  VOS_CHECK_MSG(state_ == State::kStandby, "CMD7 only valid in standby state");
  VOS_CHECK_MSG(rca == rca_, "CMD7 with wrong RCA");
  state_ = State::kTransfer;
  return t_.cmd_overhead;
}

Cycles SdCard::TransferCost(std::uint32_t count, bool use_dma) const {
  if (use_dma) {
    return t_.cmd_overhead + Cycles(count) * t_.per_block_dma;
  }
  if (count == 1) {
    return t_.cmd_overhead + t_.per_block_polled;
  }
  // CMD18/CMD25 burst: one command + CMD12 stop, cheaper per-block streaming.
  return 2 * t_.cmd_overhead + t_.per_block_polled +
         Cycles(count - 1) * t_.per_block_range;
}

Cycles SdCard::ReadBlocks(std::uint64_t lba, std::uint32_t count, std::uint8_t* out,
                          bool use_dma) {
  VOS_CHECK_MSG(ready(), "SD read before card initialization completed");
  VOS_CHECK(count > 0);
  VOS_CHECK_MSG((lba + count) * kSdBlockSize <= disk_.size(), "SD read past end of card");
  ++commands_;
  std::memcpy(out, disk_.data() + lba * kSdBlockSize, std::size_t(count) * kSdBlockSize);
  blocks_read_ += count;
  Cycles c = TransferCost(count, use_dma);
  busy_time_ += c;
  return c;
}

Cycles SdCard::WriteBlocks(std::uint64_t lba, std::uint32_t count, const std::uint8_t* in,
                           bool use_dma) {
  VOS_CHECK_MSG(ready(), "SD write before card initialization completed");
  VOS_CHECK(count > 0);
  VOS_CHECK_MSG((lba + count) * kSdBlockSize <= disk_.size(), "SD write past end of card");
  ++commands_;
  std::memcpy(disk_.data() + lba * kSdBlockSize, in, std::size_t(count) * kSdBlockSize);
  blocks_written_ += count;
  // Writes carry the card's program time on top of the wire transfer.
  Cycles c = TransferCost(count, use_dma) + Cycles(count) * Us(150);
  busy_time_ += c;
  return c;
}

}  // namespace vos
