// GPIO block: pin levels with edge detection. The Game HAT's buttons connect
// here (§5.5) and emit key events through /dev/events; a dedicated pin is the
// FIQ panic button (§5.1) which stays unmasked even when the kernel deadlocks.
#ifndef VOS_SRC_HW_GPIO_H_
#define VOS_SRC_HW_GPIO_H_

#include <array>
#include <cstdint>

#include "src/base/assert.h"
#include "src/hw/intc.h"

namespace vos {

constexpr unsigned kGpioPinCount = 54;

// Game HAT button wiring (matches the real HAT's schematic labels).
enum GpioButton : unsigned {
  kBtnUp = 5,
  kBtnDown = 6,
  kBtnLeft = 13,
  kBtnRight = 19,
  kBtnA = 16,
  kBtnB = 20,
  kBtnX = 21,
  kBtnY = 26,
  kBtnStart = 12,
  kBtnSelect = 7,
  kBtnPanic = 4,  // routed to FIQ
};

class Gpio {
 public:
  explicit Gpio(Intc& intc) : intc_(intc) {}

  // --- Driver-facing ---
  enum class Edge { kNone, kFalling, kRising, kBoth };

  void SetEdgeDetect(unsigned pin, Edge e) { Pin(pin).edge = e; }
  bool Level(unsigned pin) const { return pins_[CheckPin(pin)].level; }

  // Event detect status register: which pins latched an edge.
  bool EventDetected(unsigned pin) const { return pins_[CheckPin(pin)].event; }
  void ClearEvent(unsigned pin) {
    Pin(pin).event = false;
    UpdateIrq();
  }

  // Marks a pin as the FIQ source (panic button) instead of the normal IRQ.
  void RouteToFiq(unsigned pin) { Pin(pin).fiq = true; }

  // --- Host/test side ---
  void SetLevel(unsigned pin, bool level);
  void PressButton(unsigned pin) { SetLevel(pin, false); }   // active-low buttons
  void ReleaseButton(unsigned pin) { SetLevel(pin, true); }

 private:
  struct PinState {
    bool level = true;  // pulled up
    Edge edge = Edge::kNone;
    bool event = false;
    bool fiq = false;
  };

  static unsigned CheckPin(unsigned pin) {
    VOS_CHECK(pin < kGpioPinCount);
    return pin;
  }
  PinState& Pin(unsigned pin) { return pins_[CheckPin(pin)]; }
  void UpdateIrq();

  Intc& intc_;
  std::array<PinState, kGpioPinCount> pins_{};
};

}  // namespace vos

#endif  // VOS_SRC_HW_GPIO_H_
