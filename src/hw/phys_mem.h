// Simulated DRAM. The kernel's physical page allocator hands out frames from
// here; user heaps, ramdisk images, DMA buffers and page tables all live in
// this array, addressed by physical address.
#ifndef VOS_SRC_HW_PHYS_MEM_H_
#define VOS_SRC_HW_PHYS_MEM_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "src/base/assert.h"
#include "src/base/units.h"

namespace vos {

using PhysAddr = std::uint64_t;

class PhysMem {
 public:
  explicit PhysMem(std::uint64_t size) : mem_(size, 0) {}

  std::uint64_t size() const { return mem_.size(); }

  // Raw host pointer into simulated DRAM. The range must be in bounds; used by
  // fast bulk paths after MMU translation.
  std::uint8_t* Ptr(PhysAddr pa, std::uint64_t len) {
    VOS_CHECK_MSG(pa + len <= mem_.size() && pa + len >= pa, "physical access out of DRAM");
    return mem_.data() + pa;
  }
  const std::uint8_t* Ptr(PhysAddr pa, std::uint64_t len) const {
    VOS_CHECK_MSG(pa + len <= mem_.size() && pa + len >= pa, "physical access out of DRAM");
    return mem_.data() + pa;
  }

  void Read(PhysAddr pa, void* out, std::uint64_t len) const {
    std::memcpy(out, Ptr(pa, len), len);
  }
  void Write(PhysAddr pa, const void* in, std::uint64_t len) {
    std::memcpy(Ptr(pa, len), in, len);
  }

  template <typename T>
  T Load(PhysAddr pa) const {
    T v;
    Read(pa, &v, sizeof(T));
    return v;
  }
  template <typename T>
  void Store(PhysAddr pa, T v) {
    Write(pa, &v, sizeof(T));
  }

  void Fill(PhysAddr pa, std::uint8_t value, std::uint64_t len) {
    std::memset(Ptr(pa, len), value, len);
  }

  // Fills all of DRAM with a junk pattern: real hardware does not boot with
  // zeroed memory (paper §5.1, "uninitialized memory"). Called by the board
  // when simulating hardware rather than an emulator.
  void Scramble(std::uint64_t seed);

 private:
  std::vector<std::uint8_t> mem_;
};

}  // namespace vos

#endif  // VOS_SRC_HW_PHYS_MEM_H_
