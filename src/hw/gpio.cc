#include "src/hw/gpio.h"

namespace vos {

void Gpio::SetLevel(unsigned pin, bool level) {
  PinState& p = Pin(pin);
  bool old = p.level;
  p.level = level;
  bool falling = old && !level;
  bool rising = !old && level;
  bool hit = (p.edge == Edge::kBoth && (falling || rising)) ||
             (p.edge == Edge::kFalling && falling) || (p.edge == Edge::kRising && rising);
  if (hit) {
    p.event = true;
    if (p.fiq) {
      intc_.RaiseFiq();
    }
  }
  UpdateIrq();
}

void Gpio::UpdateIrq() {
  bool any = false;
  for (const PinState& p : pins_) {
    if (p.event && !p.fiq) {
      any = true;
      break;
    }
  }
  if (any) {
    intc_.Raise(kIrqGpio);
  } else {
    intc_.Clear(kIrqGpio);
  }
}

}  // namespace vos
