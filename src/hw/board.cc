#include "src/hw/board.h"

#include "src/base/assert.h"

namespace vos {

Board::Board(const BoardConfig& config) : config_(config) {
  VOS_CHECK(config.cores >= 1 && config.cores <= kMaxCores);
  mem_ = std::make_unique<PhysMem>(config.dram_size);
  if (config.real_hardware) {
    mem_->Scramble(config.scramble_seed);
  }
  intc_ = std::make_unique<Intc>(config.cores);
  sys_timer_ = std::make_unique<SysTimer>(events_, *intc_);
  for (unsigned c = 0; c < config.cores; ++c) {
    core_timers_[c] = std::make_unique<CoreTimer>(events_, *intc_, c);
  }
  uart_ = std::make_unique<Uart>(events_, *intc_);
  fb_ = std::make_unique<FramebufferHw>();
  mailbox_ = std::make_unique<Mailbox>(*fb_, config.dram_size);
  gpio_ = std::make_unique<Gpio>(*intc_);
  audio_ = std::make_unique<AudioPwm>();
  dma0_ = std::make_unique<DmaChannel>(events_, *intc_, *mem_, kIrqDma0);
  dma0_->AttachSink(audio_.get());
  sd_ = std::make_unique<SdCard>(config.sd_capacity, config.sd_timings);
  keyboard_ = std::make_unique<UsbKeyboard>();
  usb_ = std::make_unique<UsbHostController>(events_, *intc_);
  if (config.usb_keyboard_present) {
    usb_->AttachKeyboard(keyboard_.get());
  }
  if (config.usb_storage_present) {
    usb_storage_ = std::make_unique<UsbMassStorage>(config.usb_storage_capacity);
  }
  if (config.nic_present) {
    nic_ = std::make_unique<Nic>(clock_, events_, *intc_, kIrqEth, config.nic_timings,
                                 config.nic_tx_ring, config.nic_rx_ring);
  }
  power_ = std::make_unique<PowerMeter>();
}

}  // namespace vos
