// SoC-level system timer (BCM2835-style): a free-running 1 MHz counter with
// four compare channels, each raising its own IRQ line. The kernel's virtual
// timers (Prototype 1) multiplex on channel 1.
//
// Also hosts the per-core ARM generic timers: each core has a down-counting
// TVAL that fires a private IRQ, used for scheduler ticks (§4.5: "interrupts
// from ARM generic timers ... are fed to each core").
#ifndef VOS_SRC_HW_SYS_TIMER_H_
#define VOS_SRC_HW_SYS_TIMER_H_

#include <array>
#include <cstdint>
#include <optional>

#include "src/base/units.h"
#include "src/hw/event_queue.h"
#include "src/hw/intc.h"

namespace vos {

class SysTimer {
 public:
  SysTimer(EventQueue& eq, Intc& intc) : eq_(eq), intc_(intc) {}

  // Free-running counter in microseconds (1 MHz, as on the real part).
  std::uint64_t CounterUs(Cycles now) const { return now / kCyclesPerUs; }

  // Arms compare channel `ch` (0..3) to fire when the counter reaches
  // `compare_us`. Re-arming replaces the previous value.
  void SetCompare(unsigned ch, std::uint64_t compare_us);

  // Acks (clears) the channel's IRQ line, like writing the CS register.
  void ClearMatch(unsigned ch);

  static unsigned IrqFor(unsigned ch) { return ch == 1 ? kIrqSysTimerC1 : kIrqSysTimerC3; }

 private:
  struct Channel {
    std::optional<EventId> ev;
  };

  EventQueue& eq_;
  Intc& intc_;
  std::array<Channel, 4> ch_{};
};

// Per-core ARM generic timer. One instance per core.
class CoreTimer {
 public:
  CoreTimer(EventQueue& eq, Intc& intc, unsigned core) : eq_(eq), intc_(intc), core_(core) {}

  // CNTP_TVAL-style: fire the core's private IRQ `delta` cycles from `now`.
  // Used as a periodic scheduler tick: the handler re-arms.
  void Arm(Cycles now, Cycles delta);
  void Disarm();

  // Acks the private line.
  void ClearIrq() { intc_.Clear(CoreTimerIrq(core_)); }

  bool armed() const { return ev_.has_value(); }

 private:
  EventQueue& eq_;
  Intc& intc_;
  unsigned core_;
  std::optional<EventId> ev_;
};

}  // namespace vos

#endif  // VOS_SRC_HW_SYS_TIMER_H_
