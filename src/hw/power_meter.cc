#include "src/hw/power_meter.h"

namespace vos {

double PowerMeter::TotalEnergyJ() const {
  double j = 0;
  for (int i = 0; i < static_cast<int>(PowerComponent::kCount); ++i) {
    j += rates_.watts[i] * ToSec(active_[i]);
  }
  return j;
}

double PowerMeter::BoardEnergyJ() const {
  return EnergyJ(PowerComponent::kSocCoreBusy) + EnergyJ(PowerComponent::kSocCoreIdle) +
         EnergyJ(PowerComponent::kSocBase) + EnergyJ(PowerComponent::kSdActive) +
         EnergyJ(PowerComponent::kUsbActive);
}

double PowerMeter::HatEnergyJ() const {
  return EnergyJ(PowerComponent::kHatDisplay) + EnergyJ(PowerComponent::kHatAudio) +
         EnergyJ(PowerComponent::kHatBase);
}

}  // namespace vos
