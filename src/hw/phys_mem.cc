#include "src/hw/phys_mem.h"

#include "src/base/random.h"

namespace vos {

void PhysMem::Scramble(std::uint64_t seed) {
  Rng rng(seed);
  // Pattern in 64-bit strides for speed; the tail bytes keep whatever the
  // last full word left there, which is fine for "arbitrary values".
  std::uint64_t words = mem_.size() / 8;
  auto* p = reinterpret_cast<std::uint64_t*>(mem_.data());
  for (std::uint64_t i = 0; i < words; ++i) {
    p[i] = rng.Next();
  }
}

}  // namespace vos
