// Mini UART. TX is synchronous and polled throughout all prototypes (the
// paper's deliberate choice, §4.1): the driver spins on the busy flag, and
// each character occupies the wire for 10 bit-times at the configured baud.
// RX has a FIFO and raises an IRQ (Prototype 2+, "irq & RX only").
#ifndef VOS_SRC_HW_UART_H_
#define VOS_SRC_HW_UART_H_

#include <cstdint>
#include <string>

#include "src/base/ring_buffer.h"
#include "src/base/units.h"
#include "src/hw/event_queue.h"
#include "src/hw/intc.h"

namespace vos {

class Uart {
 public:
  Uart(EventQueue& eq, Intc& intc, std::uint32_t baud = 115200)
      : eq_(eq), intc_(intc), rx_fifo_(16) {
    cycles_per_char_ = kCyclesPerSec * 10 / baud;  // 8N1: 10 bit-times per char
  }

  // --- Driver-facing register interface ---

  // LSR-style status: can the TX FIFO accept a byte at virtual time `now`?
  bool TxReady(Cycles now) const { return now >= tx_busy_until_; }

  // Writes one byte; the driver must have seen TxReady. Models wire time.
  void TxWrite(std::uint8_t c, Cycles now);

  // RX data register; returns 0 if empty (driver should check RxHasData).
  std::uint8_t RxRead();
  bool RxHasData() const { return !rx_fifo_.empty(); }

  void EnableRxIrq(bool on) { rx_irq_enabled_ = on; }

  // Wire time of one character, used by drivers to pace polling loops.
  Cycles CharTime() const { return cycles_per_char_; }

  // --- Host/test side ---

  // Everything ever transmitted (the "serial console capture").
  const std::string& tx_log() const { return tx_log_; }
  void ClearTxLog() { tx_log_.clear(); }

  // Injects host keystrokes into the RX FIFO at time `now`.
  void InjectRx(const std::string& s, Cycles now);

  std::uint64_t rx_overruns() const { return rx_overruns_; }

 private:
  void UpdateRxIrq();

  EventQueue& eq_;
  Intc& intc_;
  Cycles cycles_per_char_;
  Cycles tx_busy_until_ = 0;
  std::string tx_log_;
  RingBuffer<std::uint8_t> rx_fifo_;
  bool rx_irq_enabled_ = false;
  std::uint64_t rx_overruns_ = 0;
};

}  // namespace vos

#endif  // VOS_SRC_HW_UART_H_
