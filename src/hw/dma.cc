#include "src/hw/dma.h"

#include "src/base/assert.h"

namespace vos {

void DmaChannel::Submit(const DmaControlBlock& cb, Cycles now) {
  VOS_CHECK_MSG(sink_ != nullptr, "DMA channel has no sink attached");
  VOS_CHECK(cb.len > 0);
  queue_.push_back(cb);
  if (!busy_) {
    StartNext(now);
  }
}

void DmaChannel::StartNext(Cycles now) {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  DmaControlBlock cb = queue_.front();
  queue_.pop_front();
  Cycles dur = sink_->Consume(mem_, cb.src, cb.len);
  eq_.Schedule(now + dur, [this, end = now + dur] {
    ++completed_;
    intc_.Raise(irq_);
    StartNext(end);
  });
}

}  // namespace vos
