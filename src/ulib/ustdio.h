// User stdio: printf/gets over read/write syscalls, plus small string
// helpers — the slice of libc the console apps need.
#ifndef VOS_SRC_ULIB_USTDIO_H_
#define VOS_SRC_ULIB_USTDIO_H_

#include <string>
#include <vector>

#include "src/apps/app_registry.h"

namespace vos {

// printf to fd 1 (falls back to printk when the task has no stdio).
void uprintf(AppEnv& env, const char* fmt, ...) __attribute__((format(printf, 2, 3)));
void ufprintf(AppEnv& env, int fd, const char* fmt, ...) __attribute__((format(printf, 3, 4)));
void uputs(AppEnv& env, const std::string& s);

// Reads one '\n'-terminated line from fd 0 (blocking); false on EOF.
bool ugets(AppEnv& env, std::string* line);

// Tokenizes on whitespace.
std::vector<std::string> usplit(const std::string& s);

}  // namespace vos

#endif  // VOS_SRC_ULIB_USTDIO_H_
