// Pixel operations: blits, fills, and the YUV420->RGB conversion the video
// player depends on. Two conversion implementations exist, exactly as in the
// paper (§5.2): a scalar per-pixel float path and a "SIMD" fixed-point batch
// path (modeling the NEON kernels) that is ~3x cheaper in virtual time. The
// config's opt_simd_pixel flag (and bench_ablation) switches between them.
#ifndef VOS_SRC_ULIB_PIXEL_H_
#define VOS_SRC_ULIB_PIXEL_H_

#include <cstdint>

#include "src/apps/app_registry.h"

namespace vos {

// XRGB8888 helpers.
constexpr std::uint32_t Rgb(std::uint8_t r, std::uint8_t g, std::uint8_t b) {
  return 0xff000000u | (std::uint32_t(r) << 16) | (std::uint32_t(g) << 8) | b;
}

struct PixelBuffer {
  std::uint32_t* data = nullptr;
  std::uint32_t width = 0;
  std::uint32_t height = 0;
};

// Fills a rect (clipped), charging fill cost.
void FillRect(AppEnv& env, PixelBuffer dst, int x, int y, int w, int h, std::uint32_t color);

// Copies src into dst at (dx,dy), clipped; charges blit cost per byte.
void Blit(AppEnv& env, PixelBuffer dst, int dx, int dy, const PixelBuffer& src);

// Scaled (nearest-neighbour) blit into a destination rect.
void BlitScaled(AppEnv& env, PixelBuffer dst, int dx, int dy, int dw, int dh,
                const PixelBuffer& src);

// YUV420 planar -> XRGB. Picks the scalar or fixed-point path per the kernel
// config; both are real conversions with different virtual cost.
void Yuv420ToRgb(AppEnv& env, PixelBuffer dst, const std::uint8_t* y, const std::uint8_t* u,
                 const std::uint8_t* v, std::uint32_t w, std::uint32_t h);

// The two implementations, exposed for the ablation bench and tests.
void Yuv420ToRgbScalar(std::uint32_t* dst, const std::uint8_t* y, const std::uint8_t* u,
                       const std::uint8_t* v, std::uint32_t w, std::uint32_t h);
void Yuv420ToRgbFixed(std::uint32_t* dst, const std::uint8_t* y, const std::uint8_t* u,
                      const std::uint8_t* v, std::uint32_t w, std::uint32_t h);

// 8x8 bitmap text. Returns the advance in pixels.
int DrawChar(AppEnv& env, PixelBuffer dst, int x, int y, char c, std::uint32_t color, int scale);
int DrawText(AppEnv& env, PixelBuffer dst, int x, int y, const char* text, std::uint32_t color,
             int scale = 1);

}  // namespace vos

#endif  // VOS_SRC_ULIB_PIXEL_H_
