// User-side syscall stubs: the thin wrappers a libc's sys/ layer provides.
// Every call runs on the current task's fiber and traps into the kernel's
// typed syscall interface. Also provides the compute-charging helpers that
// attribute virtual time to app logic (U) vs user library (L) — the split
// Fig 11's latency breakdowns report.
#ifndef VOS_SRC_ULIB_USYS_H_
#define VOS_SRC_ULIB_USYS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/apps/app_registry.h"
#include "src/fs/vfs.h"
#include "src/kernel/kernel.h"

namespace vos {

// --- CPU charging -----------------------------------------------------------

// Charges app-logic compute (the game engine, decoder math, ...). The cost
// scales with the platform's CPU speed and the C library the app links
// against (newlib vs musl vs glibc, §6.2).
void UBurn(AppEnv& env, double cycles);

// Charges user-library compute (minisdl, pixel conversion, string code).
void LBurn(AppEnv& env, double cycles);

// RAII: attribute time to a domain while in scope.
class DomainScope {
 public:
  DomainScope(AppEnv& env, TimeDomain d);
  ~DomainScope();
  DomainScope(const DomainScope&) = delete;
  DomainScope& operator=(const DomainScope&) = delete;

 private:
  Task* task_;
  TimeDomain prev_;
};

// Marks "one frame presented" in the trace ring; FPS benches count these.
void umark_frame(AppEnv& env);

// Builds the AppEnv for the task currently executing — what a forked or
// clone'd child calls first, since it must not reuse the parent's env.
AppEnv ChildEnv(Kernel* kernel);

// --- Syscall stubs ------------------------------------------------------------

std::int64_t ufork(AppEnv& env, std::function<int()> child);
[[noreturn]] void uexit(AppEnv& env, int code);
std::int64_t uwait(AppEnv& env, int* status);
std::int64_t ukill(AppEnv& env, int pid);
std::int64_t ugetpid(AppEnv& env);
std::int64_t usbrk(AppEnv& env, std::int64_t delta);
std::int64_t usleep_ms(AppEnv& env, std::uint64_t ms);
std::int64_t uuptime_ms(AppEnv& env);
std::int64_t uexec(AppEnv& env, const std::string& path, const std::vector<std::string>& argv);
std::int64_t uopen(AppEnv& env, const std::string& path, std::uint32_t flags);
std::int64_t uclose(AppEnv& env, int fd);
std::int64_t uread(AppEnv& env, int fd, void* buf, std::uint32_t n);
std::int64_t uwrite(AppEnv& env, int fd, const void* buf, std::uint32_t n);
std::int64_t ulseek(AppEnv& env, int fd, std::int64_t off, int whence);
std::int64_t udup(AppEnv& env, int fd);
std::int64_t upipe(AppEnv& env, int fds[2]);
std::int64_t ufstat(AppEnv& env, int fd, Stat* st);
std::int64_t uchdir(AppEnv& env, const std::string& path);
std::int64_t umkdir(AppEnv& env, const std::string& path);
std::int64_t uunlink(AppEnv& env, const std::string& path);
std::int64_t ulink(AppEnv& env, const std::string& oldp, const std::string& newp);
std::int64_t ummap_fb(AppEnv& env, std::uint32_t** pixels, std::uint32_t* w, std::uint32_t* h);
std::int64_t ucacheflush(AppEnv& env, std::uint64_t off, std::uint64_t len);
std::int64_t uclone(AppEnv& env, std::function<int()> thread);
std::int64_t usem_create(AppEnv& env, int initial);
std::int64_t usem_wait(AppEnv& env, int id);
std::int64_t usem_post(AppEnv& env, int id);
std::int64_t usync(AppEnv& env);
std::int64_t ufsync(AppEnv& env, int fd);
std::int64_t uyield(AppEnv& env);
std::int64_t ureaddir(AppEnv& env, const std::string& path, std::vector<DirEntryInfo>* out);

// --- Futex IPC (zero-copy shared ring, ipc.h) --------------------------------

std::int64_t uipc_create(AppEnv& env, std::uint64_t bytes);  // 0 = config default
std::int64_t uipc_map(AppEnv& env, int id, IpcRing** out);
std::int64_t uipc_wait(AppEnv& env, int id, int side, std::uint64_t expected);
std::int64_t uipc_wake(AppEnv& env, int id, int side);

// Blocking send/recv over a mapped ring: push/pop the shared memory directly
// (one user-side copy, charged here; the kernel never touches the payload),
// park with uipc_wait only when the ring is full/empty, and wake the peer
// only when someone is actually parked — the futex uncontended fast path.
// Send moves all n bytes (or returns kErrPerm mid-stream on kill/destroy);
// recv returns as soon as >= 1 byte arrived, streaming up to n.
std::int64_t uipc_send(AppEnv& env, int id, IpcRing* ring, const void* buf, std::size_t n);
std::int64_t uipc_recv(AppEnv& env, int id, IpcRing* ring, void* buf, std::size_t n);

// --- Sockets (Prototype 5 networking) ---------------------------------------
// type: 0 = TCP stream, 1 = UDP datagram. flags bit0 = nonblocking fd.
std::int64_t usocket(AppEnv& env, int type, std::uint32_t flags = 0);
std::int64_t ubind(AppEnv& env, int fd, std::uint16_t port);
std::int64_t ulisten(AppEnv& env, int fd, std::uint32_t backlog);
// accept_flags bit0 = make the accepted fd nonblocking.
std::int64_t uaccept(AppEnv& env, int fd, std::uint32_t* peer_ip = nullptr,
                     std::uint16_t* peer_port = nullptr, std::uint32_t accept_flags = 0);
std::int64_t uconnect(AppEnv& env, int fd, std::uint32_t ip, std::uint16_t port);
std::int64_t usend(AppEnv& env, int fd, const void* buf, std::uint32_t n);
std::int64_t urecv(AppEnv& env, int fd, void* buf, std::uint32_t n);
std::int64_t ushutdown(AppEnv& env, int fd, int how);
// Loops until all n bytes are queued, retrying short sends and EINTR;
// returns n, or the first hard error (kErrPipe once the peer is gone).
std::int64_t usend_all(AppEnv& env, int fd, const void* buf, std::uint32_t n);

// Reads a whole file into memory; negative Err on failure.
std::int64_t uread_file(AppEnv& env, const std::string& path, std::vector<std::uint8_t>* out);

// Opens /dev/console as fds 0/1/2 if the task has no stdio yet (what init
// does in xv6; crt calls this).
void uensure_stdio(AppEnv& env);

// --- User-level synchronization built on semaphores (§4.5) -------------------

class UMutex {
 public:
  explicit UMutex(AppEnv& env);
  ~UMutex();
  void Lock();
  void Unlock();

 private:
  AppEnv& env_;
  int sem_;
};

class UCondVar {
 public:
  explicit UCondVar(AppEnv& env);
  ~UCondVar();
  // Classic wait: releases `m`, sleeps, reacquires.
  void Wait(UMutex& m);
  void Signal();
  void Broadcast();

 private:
  AppEnv& env_;
  int sem_;
  int waiters_ = 0;
};

// User-level spinlock (§4.5): yields while contended. With token-serialized
// fibers contention resolves by yielding the CPU.
class USpinLock {
 public:
  explicit USpinLock(AppEnv& env) : env_(env) {}
  void Lock();
  void Unlock();

 private:
  AppEnv& env_;
  bool held_ = false;
};

}  // namespace vos

#endif  // VOS_SRC_ULIB_USYS_H_
