// PNG decoder/encoder ("LODE"-substitute, §3): 8-bit RGB/RGBA, non-interlaced,
// full filter reconstruction (None/Sub/Up/Average/Paeth) over our own zlib
// inflate. The encoder emits filter-0 scanlines through our deflate, so
// slider assets round-trip entirely through in-tree code.
#ifndef VOS_SRC_ULIB_PNGLITE_H_
#define VOS_SRC_ULIB_PNGLITE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/ulib/bmp.h"

namespace vos {

std::optional<Image> PngDecode(const std::uint8_t* data, std::size_t len);
std::vector<std::uint8_t> PngEncode(const Image& img);  // 8-bit RGBA

}  // namespace vos

#endif  // VOS_SRC_ULIB_PNGLITE_H_
