#include "src/ulib/console.h"

#include <algorithm>

#include "src/base/assert.h"

namespace vos {

TextConsole::TextConsole(std::uint32_t cols, std::uint32_t rows) : cols_(cols), rows_(rows) {
  VOS_CHECK(cols > 0 && rows > 0);
  cells_.assign(std::size_t(cols) * rows, ' ');
}

void TextConsole::Newline() {
  cur_col_ = 0;
  if (++cur_row_ >= rows_) {
    // Scroll up one row.
    std::copy(cells_.begin() + cols_, cells_.end(), cells_.begin());
    std::fill(cells_.end() - cols_, cells_.end(), ' ');
    cur_row_ = rows_ - 1;
  }
}

void TextConsole::Put(char c) {
  if (c == '\n') {
    Newline();
    return;
  }
  if (c == '\r') {
    cur_col_ = 0;
    return;
  }
  if (c == '\b') {
    if (cur_col_ > 0) {
      --cur_col_;
      cells_[std::size_t(cur_row_) * cols_ + cur_col_] = ' ';
    }
    return;
  }
  cells_[std::size_t(cur_row_) * cols_ + cur_col_] = c;
  if (++cur_col_ >= cols_) {
    Newline();
  }
}

void TextConsole::Write(const std::string& s) {
  for (char c : s) {
    Put(c);
  }
}

void TextConsole::Clear() {
  std::fill(cells_.begin(), cells_.end(), ' ');
  cur_col_ = 0;
  cur_row_ = 0;
}

char TextConsole::CharAt(std::uint32_t col, std::uint32_t row) const {
  return cells_[std::size_t(row) * cols_ + col];
}

std::string TextConsole::RowText(std::uint32_t row) const {
  std::string s(cells_.begin() + std::size_t(row) * cols_,
                cells_.begin() + std::size_t(row + 1) * cols_);
  while (!s.empty() && s.back() == ' ') {
    s.pop_back();
  }
  return s;
}

void TextConsole::Render(AppEnv& env, PixelBuffer dst, int x, int y, int scale, std::uint32_t fg,
                         std::uint32_t bg) const {
  FillRect(env, dst, x, y, static_cast<int>(cols_) * 8 * scale,
           static_cast<int>(rows_) * 9 * scale, bg);
  for (std::uint32_t row = 0; row < rows_; ++row) {
    for (std::uint32_t col = 0; col < cols_; ++col) {
      char c = CharAt(col, row);
      if (c != ' ') {
        DrawChar(env, dst, x + static_cast<int>(col) * 8 * scale,
                 y + static_cast<int>(row) * 9 * scale, c, fg, scale);
      }
    }
  }
}

}  // namespace vos
