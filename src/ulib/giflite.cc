#include "src/ulib/giflite.h"

#include <cstring>
#include <map>

namespace vos {

namespace {

class LzwBitReader {
 public:
  LzwBitReader(const std::uint8_t* d, std::size_t n) : d_(d), n_(n) {}
  std::optional<int> Bits(int width) {
    int v = 0;
    for (int i = 0; i < width; ++i) {
      if (pos_ >= n_) {
        return std::nullopt;
      }
      v |= ((d_[pos_] >> bit_) & 1) << i;
      if (++bit_ == 8) {
        bit_ = 0;
        ++pos_;
      }
    }
    return v;
  }

 private:
  const std::uint8_t* d_;
  std::size_t n_;
  std::size_t pos_ = 0;
  int bit_ = 0;
};

class LzwBitWriter {
 public:
  void Bits(int v, int width) {
    for (int i = 0; i < width; ++i) {
      cur_ |= ((v >> i) & 1) << bit_;
      if (++bit_ == 8) {
        out_.push_back(cur_);
        cur_ = 0;
        bit_ = 0;
      }
    }
  }
  std::vector<std::uint8_t> Finish() {
    if (bit_ != 0) {
      out_.push_back(cur_);
    }
    return std::move(out_);
  }

 private:
  std::vector<std::uint8_t> out_;
  std::uint8_t cur_ = 0;
  int bit_ = 0;
};

}  // namespace

std::optional<std::vector<std::uint8_t>> GifLzwDecode(const std::uint8_t* data, std::size_t len,
                                                      int min_code_size, std::size_t max_out) {
  if (min_code_size < 2 || min_code_size > 8) {
    return std::nullopt;
  }
  const int clear_code = 1 << min_code_size;
  const int eoi_code = clear_code + 1;
  LzwBitReader br(data, len);
  std::vector<std::vector<std::uint8_t>> table;
  auto reset_table = [&] {
    table.clear();
    for (int i = 0; i < clear_code; ++i) {
      table.push_back({static_cast<std::uint8_t>(i)});
    }
    table.push_back({});  // clear
    table.push_back({});  // eoi
  };
  reset_table();
  int code_width = min_code_size + 1;
  std::vector<std::uint8_t> out;
  int prev = -1;
  for (;;) {
    auto code = br.Bits(code_width);
    if (!code) {
      return std::nullopt;
    }
    if (*code == clear_code) {
      reset_table();
      code_width = min_code_size + 1;
      prev = -1;
      continue;
    }
    if (*code == eoi_code) {
      break;
    }
    std::vector<std::uint8_t> entry;
    if (*code < static_cast<int>(table.size())) {
      entry = table[static_cast<std::size_t>(*code)];
    } else if (*code == static_cast<int>(table.size()) && prev >= 0) {
      entry = table[static_cast<std::size_t>(prev)];
      entry.push_back(table[static_cast<std::size_t>(prev)][0]);
    } else {
      return std::nullopt;
    }
    if (out.size() + entry.size() > max_out) {
      return std::nullopt;
    }
    out.insert(out.end(), entry.begin(), entry.end());
    if (prev >= 0 && table.size() < 4096) {
      std::vector<std::uint8_t> fresh = table[static_cast<std::size_t>(prev)];
      fresh.push_back(entry[0]);
      table.push_back(std::move(fresh));
      // The decoder's table lags the encoder's by one add, so it widens one
      // entry earlier than the encoder's next_code == (1<<width) rule.
      if (static_cast<int>(table.size()) == (1 << code_width) - 1 && code_width < 12) {
        ++code_width;
      }
    }
    prev = *code;
  }
  return out;
}

std::vector<std::uint8_t> GifLzwEncode(const std::uint8_t* indices, std::size_t len,
                                       int min_code_size) {
  const int clear_code = 1 << min_code_size;
  const int eoi_code = clear_code + 1;
  LzwBitWriter bw;
  std::map<std::vector<std::uint8_t>, int> table;
  int next_code = eoi_code + 1;
  int code_width = min_code_size + 1;
  auto reset = [&] {
    table.clear();
    for (int i = 0; i < clear_code; ++i) {
      table[{static_cast<std::uint8_t>(i)}] = i;
    }
    next_code = eoi_code + 1;
    code_width = min_code_size + 1;
  };
  reset();
  bw.Bits(clear_code, code_width);
  std::vector<std::uint8_t> w;
  for (std::size_t i = 0; i < len; ++i) {
    std::vector<std::uint8_t> wk = w;
    wk.push_back(indices[i]);
    if (table.count(wk)) {
      w = std::move(wk);
      continue;
    }
    bw.Bits(table.at(w), code_width);
    if (next_code < 4096) {
      table[wk] = next_code++;
      if (next_code == (1 << code_width) && code_width < 12) {
        ++code_width;
      }
    } else {
      bw.Bits(clear_code, code_width);
      reset();
    }
    w = {indices[i]};
  }
  if (!w.empty()) {
    bw.Bits(table.at(w), code_width);
  }
  bw.Bits(eoi_code, code_width);
  return bw.Finish();
}

std::optional<GifAnimation> GifDecode(const std::uint8_t* data, std::size_t len) {
  if (len < 13 || std::memcmp(data, "GIF8", 4) != 0) {
    return std::nullopt;
  }
  GifAnimation anim;
  anim.width = data[6] | (data[7] << 8);
  anim.height = data[8] | (data[9] << 8);
  std::uint8_t packed = data[10];
  std::size_t pos = 13;
  std::uint32_t palette[256] = {};
  int gct_size = 0;
  if (packed & 0x80) {
    gct_size = 2 << (packed & 7);
    if (pos + std::size_t(gct_size) * 3 > len) {
      return std::nullopt;
    }
    for (int i = 0; i < gct_size; ++i) {
      palette[i] = 0xff000000u | (std::uint32_t(data[pos]) << 16) |
                   (std::uint32_t(data[pos + 1]) << 8) | data[pos + 2];
      pos += 3;
    }
  }
  std::uint32_t delay_ms = 100;
  while (pos < len) {
    std::uint8_t block = data[pos++];
    if (block == 0x3b) {  // trailer
      break;
    }
    if (block == 0x21) {  // extension
      if (pos + 1 > len) {
        return std::nullopt;
      }
      std::uint8_t label = data[pos++];
      if (label == 0xf9 && pos + 6 <= len && data[pos] == 4) {
        delay_ms = (data[pos + 2] | (data[pos + 3] << 8)) * 10;
      }
      // Skip sub-blocks.
      while (pos < len && data[pos] != 0) {
        pos += data[pos] + 1;
      }
      ++pos;
      continue;
    }
    if (block != 0x2c) {  // image descriptor expected
      return std::nullopt;
    }
    if (pos + 9 > len) {
      return std::nullopt;
    }
    std::uint32_t ix = data[pos] | (data[pos + 1] << 8);
    std::uint32_t iy = data[pos + 2] | (data[pos + 3] << 8);
    std::uint32_t iw = data[pos + 4] | (data[pos + 5] << 8);
    std::uint32_t ih = data[pos + 6] | (data[pos + 7] << 8);
    std::uint8_t ipacked = data[pos + 8];
    pos += 9;
    if (ipacked & 0x40) {
      return std::nullopt;  // interlaced unsupported
    }
    const std::uint32_t* pal = palette;
    std::uint32_t local_pal[256];
    if (ipacked & 0x80) {
      int lct = 2 << (ipacked & 7);
      if (pos + std::size_t(lct) * 3 > len) {
        return std::nullopt;
      }
      for (int i = 0; i < lct; ++i) {
        local_pal[i] = 0xff000000u | (std::uint32_t(data[pos]) << 16) |
                       (std::uint32_t(data[pos + 1]) << 8) | data[pos + 2];
        pos += 3;
      }
      pal = local_pal;
    }
    if (pos >= len) {
      return std::nullopt;
    }
    int min_code = data[pos++];
    std::vector<std::uint8_t> lzw;
    while (pos < len && data[pos] != 0) {
      std::uint8_t n = data[pos++];
      if (pos + n > len) {
        return std::nullopt;
      }
      lzw.insert(lzw.end(), data + pos, data + pos + n);
      pos += n;
    }
    ++pos;  // block terminator
    auto indices = GifLzwDecode(lzw.data(), lzw.size(), min_code,
                                std::size_t(anim.width) * anim.height + 16);
    if (!indices || indices->size() < std::size_t(iw) * ih) {
      return std::nullopt;
    }
    Image frame;
    frame.width = anim.width;
    frame.height = anim.height;
    // Start from the previous frame (GIF "do not dispose" composition).
    if (!anim.frames.empty()) {
      frame.pixels = anim.frames.back().pixels;
    } else {
      frame.pixels.assign(std::size_t(anim.width) * anim.height, 0xff000000u);
    }
    for (std::uint32_t y = 0; y < ih && iy + y < anim.height; ++y) {
      for (std::uint32_t x = 0; x < iw && ix + x < anim.width; ++x) {
        frame.pixels[std::size_t(iy + y) * anim.width + ix + x] =
            pal[(*indices)[std::size_t(y) * iw + x]];
      }
    }
    anim.frames.push_back(std::move(frame));
    anim.delays_ms.push_back(delay_ms);
  }
  if (anim.frames.empty()) {
    return std::nullopt;
  }
  return anim;
}

std::vector<std::uint8_t> GifEncode(const std::vector<Image>& frames, std::uint32_t delay_ms) {
  if (frames.empty()) {
    return {};
  }
  std::uint32_t w = frames[0].width, h = frames[0].height;
  // Global palette: 3:3:2 RGB cube (256 entries) — a real quantizer choice.
  std::vector<std::uint8_t> out;
  out.insert(out.end(), {'G', 'I', 'F', '8', '9', 'a'});
  out.push_back(static_cast<std::uint8_t>(w));
  out.push_back(static_cast<std::uint8_t>(w >> 8));
  out.push_back(static_cast<std::uint8_t>(h));
  out.push_back(static_cast<std::uint8_t>(h >> 8));
  out.push_back(0xf7);  // GCT present, 256 entries
  out.push_back(0);
  out.push_back(0);
  for (int i = 0; i < 256; ++i) {
    out.push_back(static_cast<std::uint8_t>(((i >> 5) & 7) * 255 / 7));  // R
    out.push_back(static_cast<std::uint8_t>(((i >> 2) & 7) * 255 / 7));  // G
    out.push_back(static_cast<std::uint8_t>((i & 3) * 255 / 3));         // B
  }
  for (const Image& img : frames) {
    // Graphic control extension with the delay.
    out.insert(out.end(), {0x21, 0xf9, 4, 0});
    std::uint16_t ds = static_cast<std::uint16_t>(delay_ms / 10);
    out.push_back(static_cast<std::uint8_t>(ds));
    out.push_back(static_cast<std::uint8_t>(ds >> 8));
    out.insert(out.end(), {0, 0});
    // Image descriptor.
    out.push_back(0x2c);
    out.insert(out.end(), {0, 0, 0, 0});
    out.push_back(static_cast<std::uint8_t>(w));
    out.push_back(static_cast<std::uint8_t>(w >> 8));
    out.push_back(static_cast<std::uint8_t>(h));
    out.push_back(static_cast<std::uint8_t>(h >> 8));
    out.push_back(0);  // no LCT
    // Quantize to 3:3:2.
    std::vector<std::uint8_t> idx(std::size_t(w) * h);
    for (std::size_t i = 0; i < idx.size(); ++i) {
      std::uint32_t px = img.pixels[i];
      idx[i] = static_cast<std::uint8_t>((((px >> 16) & 0xff) >> 5 << 5) |
                                         (((px >> 8) & 0xff) >> 5 << 2) | ((px & 0xff) >> 6));
    }
    out.push_back(8);  // min code size
    std::vector<std::uint8_t> lzw = GifLzwEncode(idx.data(), idx.size(), 8);
    for (std::size_t off = 0; off < lzw.size(); off += 255) {
      std::uint8_t n = static_cast<std::uint8_t>(std::min<std::size_t>(255, lzw.size() - off));
      out.push_back(n);
      out.insert(out.end(), lzw.begin() + off, lzw.begin() + off + n);
    }
    out.push_back(0);
  }
  out.push_back(0x3b);
  return out;
}

}  // namespace vos
