#include "src/ulib/ustdio.h"

#include <cstdarg>
#include <cstdio>

#include "src/kernel/kernel.h"
#include "src/ulib/usys.h"

namespace vos {

namespace {
std::string Format(const char* fmt, std::va_list ap) {
  std::va_list ap2;
  va_copy(ap2, ap);
  int n = std::vsnprintf(nullptr, 0, fmt, ap2);
  va_end(ap2);
  if (n <= 0) {
    return "";
  }
  std::string s(static_cast<std::size_t>(n), '\0');
  std::vsnprintf(s.data(), s.size() + 1, fmt, ap);
  return s;
}
}  // namespace

void uputs(AppEnv& env, const std::string& s) {
  LBurn(env, 150 + s.size() * 2.0);  // formatting cost
  if (env.task->fds.size() > 1 && env.task->fds[1] != nullptr) {
    uwrite(env, 1, s.data(), static_cast<std::uint32_t>(s.size()));
  } else {
    env.kernel->Printk("%s", s.c_str());
  }
}

void uprintf(AppEnv& env, const char* fmt, ...) {
  std::va_list ap;
  va_start(ap, fmt);
  std::string s = Format(fmt, ap);
  va_end(ap);
  uputs(env, s);
}

void ufprintf(AppEnv& env, int fd, const char* fmt, ...) {
  std::va_list ap;
  va_start(ap, fmt);
  std::string s = Format(fmt, ap);
  va_end(ap);
  LBurn(env, 150 + s.size() * 2.0);
  uwrite(env, fd, s.data(), static_cast<std::uint32_t>(s.size()));
}

bool ugets(AppEnv& env, std::string* line) {
  line->clear();
  for (;;) {
    char c;
    std::int64_t n = uread(env, 0, &c, 1);
    if (n <= 0) {
      return !line->empty();
    }
    if (c == '\r') {
      continue;
    }
    if (c == '\n') {
      return true;
    }
    line->push_back(c);
  }
}

std::vector<std::string> usplit(const std::string& s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) {
      ++i;
    }
    std::size_t start = i;
    while (i < s.size() && s[i] != ' ' && s[i] != '\t') {
      ++i;
    }
    if (i > start) {
      out.push_back(s.substr(start, i - start));
    }
  }
  return out;
}

}  // namespace vos
