#include "src/ulib/bmp.h"

#include <cstring>

namespace vos {

namespace {
std::uint32_t Rd32(const std::uint8_t* p) {
  return std::uint32_t(p[0]) | (std::uint32_t(p[1]) << 8) | (std::uint32_t(p[2]) << 16) |
         (std::uint32_t(p[3]) << 24);
}
std::uint16_t Rd16(const std::uint8_t* p) { return std::uint16_t(p[0] | (p[1] << 8)); }
void Wr32(std::vector<std::uint8_t>& v, std::uint32_t x) {
  v.push_back(static_cast<std::uint8_t>(x));
  v.push_back(static_cast<std::uint8_t>(x >> 8));
  v.push_back(static_cast<std::uint8_t>(x >> 16));
  v.push_back(static_cast<std::uint8_t>(x >> 24));
}
void Wr16(std::vector<std::uint8_t>& v, std::uint16_t x) {
  v.push_back(static_cast<std::uint8_t>(x));
  v.push_back(static_cast<std::uint8_t>(x >> 8));
}
}  // namespace

std::optional<Image> BmpDecode(const std::uint8_t* data, std::size_t len) {
  if (len < 54 || data[0] != 'B' || data[1] != 'M') {
    return std::nullopt;
  }
  std::uint32_t pixel_off = Rd32(data + 10);
  std::uint32_t hdr_size = Rd32(data + 14);
  if (hdr_size < 40) {
    return std::nullopt;
  }
  std::int32_t w = static_cast<std::int32_t>(Rd32(data + 18));
  std::int32_t h = static_cast<std::int32_t>(Rd32(data + 22));
  std::uint16_t bpp = Rd16(data + 28);
  std::uint32_t compression = Rd32(data + 30);
  if (w <= 0 || compression != 0 || (bpp != 24 && bpp != 32)) {
    return std::nullopt;
  }
  bool top_down = h < 0;
  std::uint32_t height = static_cast<std::uint32_t>(top_down ? -h : h);
  std::uint32_t width = static_cast<std::uint32_t>(w);
  std::uint32_t bytes_pp = bpp / 8;
  std::uint32_t stride = (width * bytes_pp + 3) & ~3u;
  if (pixel_off + std::uint64_t(stride) * height > len) {
    return std::nullopt;
  }
  Image img;
  img.width = width;
  img.height = height;
  img.pixels.resize(std::size_t(width) * height);
  for (std::uint32_t y = 0; y < height; ++y) {
    std::uint32_t src_row = top_down ? y : height - 1 - y;
    const std::uint8_t* row = data + pixel_off + std::size_t(src_row) * stride;
    for (std::uint32_t x = 0; x < width; ++x) {
      const std::uint8_t* p = row + x * bytes_pp;
      img.pixels[std::size_t(y) * width + x] =
          0xff000000u | (std::uint32_t(p[2]) << 16) | (std::uint32_t(p[1]) << 8) | p[0];
    }
  }
  return img;
}

std::vector<std::uint8_t> BmpEncode(const Image& img) {
  std::uint32_t stride = (img.width * 3 + 3) & ~3u;
  std::uint32_t data_size = stride * img.height;
  std::vector<std::uint8_t> out;
  out.reserve(54 + data_size);
  out.push_back('B');
  out.push_back('M');
  Wr32(out, 54 + data_size);
  Wr32(out, 0);
  Wr32(out, 54);
  Wr32(out, 40);  // BITMAPINFOHEADER
  Wr32(out, img.width);
  Wr32(out, img.height);  // bottom-up
  Wr16(out, 1);
  Wr16(out, 24);
  Wr32(out, 0);  // BI_RGB
  Wr32(out, data_size);
  Wr32(out, 2835);
  Wr32(out, 2835);
  Wr32(out, 0);
  Wr32(out, 0);
  for (std::uint32_t y = 0; y < img.height; ++y) {
    std::uint32_t src_row = img.height - 1 - y;
    std::size_t row_start = out.size();
    for (std::uint32_t x = 0; x < img.width; ++x) {
      std::uint32_t px = img.At(x, src_row);
      out.push_back(static_cast<std::uint8_t>(px));
      out.push_back(static_cast<std::uint8_t>(px >> 8));
      out.push_back(static_cast<std::uint8_t>(px >> 16));
    }
    while ((out.size() - row_start) % 4 != 0) {
      out.push_back(0);
    }
  }
  return out;
}

}  // namespace vos
