#include "src/ulib/pixel.h"

#include <algorithm>
#include <cstring>

#include "src/kernel/kernel.h"
#include "src/ulib/font8x8.h"
#include "src/ulib/usys.h"

namespace vos {

void FillRect(AppEnv& env, PixelBuffer dst, int x, int y, int w, int h, std::uint32_t color) {
  int x0 = std::max(0, x);
  int y0 = std::max(0, y);
  int x1 = std::min<int>(static_cast<int>(dst.width), x + w);
  int y1 = std::min<int>(static_cast<int>(dst.height), y + h);
  if (x0 >= x1 || y0 >= y1) {
    return;  // fully clipped
  }
  for (int yy = y0; yy < y1; ++yy) {
    std::uint32_t* row = dst.data + std::size_t(yy) * dst.width;
    std::fill(row + x0, row + x1, color);
  }
  LBurn(env, double(x1 - x0) * (y1 - y0) * 4 * 0.25);
}

void Blit(AppEnv& env, PixelBuffer dst, int dx, int dy, const PixelBuffer& src) {
  int x0 = std::max(0, dx);
  int y0 = std::max(0, dy);
  int x1 = std::min<int>(static_cast<int>(dst.width), dx + static_cast<int>(src.width));
  int y1 = std::min<int>(static_cast<int>(dst.height), dy + static_cast<int>(src.height));
  if (x1 <= x0 || y1 <= y0) {
    return;
  }
  for (int yy = y0; yy < y1; ++yy) {
    const std::uint32_t* srow = src.data + std::size_t(yy - dy) * src.width + (x0 - dx);
    std::uint32_t* drow = dst.data + std::size_t(yy) * dst.width + x0;
    std::memcpy(drow, srow, std::size_t(x1 - x0) * 4);
  }
  const CostModel& c = env.kernel->config().cost;
  double per_byte = env.kernel->config().opt_asm_memcpy ? c.memcpy_per_byte
                                                        : c.memcpy_naive_per_byte;
  LBurn(env, double(x1 - x0) * (y1 - y0) * 4 * per_byte);
}

void BlitScaled(AppEnv& env, PixelBuffer dst, int dx, int dy, int dw, int dh,
                const PixelBuffer& src) {
  if (dw <= 0 || dh <= 0 || src.width == 0 || src.height == 0) {
    return;
  }
  int x0 = std::max(0, dx);
  int y0 = std::max(0, dy);
  int x1 = std::min<int>(static_cast<int>(dst.width), dx + dw);
  int y1 = std::min<int>(static_cast<int>(dst.height), dy + dh);
  for (int yy = y0; yy < y1; ++yy) {
    std::uint32_t sy = std::uint32_t(yy - dy) * src.height / dh;
    const std::uint32_t* srow = src.data + std::size_t(sy) * src.width;
    std::uint32_t* drow = dst.data + std::size_t(yy) * dst.width;
    for (int xx = x0; xx < x1; ++xx) {
      std::uint32_t sx = std::uint32_t(xx - dx) * src.width / dw;
      drow[xx] = srow[sx];
    }
  }
  if (x1 > x0 && y1 > y0) {
    LBurn(env, double(x1 - x0) * (y1 - y0) * 4 * 0.8);  // gather-heavy
  }
}

namespace {
inline std::uint8_t Clamp8(int v) {
  return static_cast<std::uint8_t>(v < 0 ? 0 : v > 255 ? 255 : v);
}
}  // namespace

void Yuv420ToRgbScalar(std::uint32_t* dst, const std::uint8_t* y, const std::uint8_t* u,
                       const std::uint8_t* v, std::uint32_t w, std::uint32_t h) {
  for (std::uint32_t yy = 0; yy < h; ++yy) {
    for (std::uint32_t xx = 0; xx < w; ++xx) {
      double Y = y[yy * w + xx];
      double U = u[(yy / 2) * (w / 2) + xx / 2] - 128.0;
      double V = v[(yy / 2) * (w / 2) + xx / 2] - 128.0;
      int r = static_cast<int>(Y + 1.402 * V + 0.5);
      int g = static_cast<int>(Y - 0.344136 * U - 0.714136 * V + 0.5);
      int b = static_cast<int>(Y + 1.772 * U + 0.5);
      dst[yy * w + xx] = Rgb(Clamp8(r), Clamp8(g), Clamp8(b));
    }
  }
}

void Yuv420ToRgbFixed(std::uint32_t* dst, const std::uint8_t* y, const std::uint8_t* u,
                      const std::uint8_t* v, std::uint32_t w, std::uint32_t h) {
  // Q8.8 fixed-point coefficients; the NEON kernel processes 8 pixels per
  // iteration with these exact constants.
  constexpr int kVr = 359;   // 1.402 * 256
  constexpr int kUg = -88;   // -0.344 * 256
  constexpr int kVg = -183;  // -0.714 * 256
  constexpr int kUb = 454;   // 1.772 * 256
  for (std::uint32_t yy = 0; yy < h; ++yy) {
    const std::uint8_t* urow = u + (yy / 2) * (w / 2);
    const std::uint8_t* vrow = v + (yy / 2) * (w / 2);
    const std::uint8_t* yrow = y + yy * w;
    std::uint32_t* drow = dst + yy * w;
    for (std::uint32_t xx = 0; xx < w; ++xx) {
      int Y = yrow[xx] << 8;
      int U = urow[xx / 2] - 128;
      int V = vrow[xx / 2] - 128;
      drow[xx] = Rgb(Clamp8((Y + kVr * V) >> 8), Clamp8((Y + kUg * U + kVg * V) >> 8),
                     Clamp8((Y + kUb * U) >> 8));
    }
  }
}

void Yuv420ToRgb(AppEnv& env, PixelBuffer dst, const std::uint8_t* y, const std::uint8_t* u,
                 const std::uint8_t* v, std::uint32_t w, std::uint32_t h) {
  const KernelConfig& cfg = env.kernel->config();
  double bytes = double(w) * h * 1.5;  // input bytes processed
  if (cfg.opt_simd_pixel) {
    Yuv420ToRgbFixed(dst.data, y, u, v, w, h);
    LBurn(env, bytes * cfg.cost.yuv_simd_per_byte);
  } else {
    Yuv420ToRgbScalar(dst.data, y, u, v, w, h);
    LBurn(env, bytes * cfg.cost.yuv_scalar_per_byte);
  }
}

int DrawChar(AppEnv& env, PixelBuffer dst, int x, int y, char c, std::uint32_t color,
             int scale) {
  const std::uint8_t* glyph = Font8x8Glyph(c);
  for (int row = 0; row < 8; ++row) {
    std::uint8_t bits = glyph[row];
    for (int col = 0; col < 8; ++col) {
      if (bits & (1 << col)) {
        FillRect(env, dst, x + col * scale, y + row * scale, scale, scale, color);
      }
    }
  }
  return 8 * scale;
}

int DrawText(AppEnv& env, PixelBuffer dst, int x, int y, const char* text, std::uint32_t color,
             int scale) {
  int cx = x;
  for (const char* p = text; *p != '\0'; ++p) {
    if (*p == '\n') {
      cx = x;
      y += 9 * scale;
      continue;
    }
    cx += DrawChar(env, dst, cx, y, *p, color, scale);
  }
  return cx - x;
}

}  // namespace vos
