#include "src/ulib/usys.h"

#include "src/base/status.h"

namespace vos {

// Burns always target the *current* task: clone'd threads share the parent's
// AppEnv object, but their CPU time is their own.
void UBurn(AppEnv& env, double cycles) {
  Task* cur = env.kernel->CurrentTask();
  cur->fiber().Burn(Cycles(cycles * env.kernel->config().cost.libc_compute_scale));
}

void LBurn(AppEnv& env, double cycles) {
  DomainScope scope(env, TimeDomain::kUserLib);
  env.kernel->CurrentTask()->fiber().Burn(
      Cycles(cycles * env.kernel->config().cost.libc_compute_scale));
}

DomainScope::DomainScope(AppEnv& env, TimeDomain d)
    : task_(env.kernel->CurrentTask()), prev_(task_->domain) {
  task_->domain = d;
}

DomainScope::~DomainScope() { task_->domain = prev_; }

void umark_frame(AppEnv& env) {
  Task* cur = env.kernel->CurrentTask();
  env.kernel->trace().Emit(env.kernel->Now(), cur->core, TraceEvent::kUserMark, cur->pid(),
                           /*a=*/1 /* frame-done */);
}

AppEnv ChildEnv(Kernel* kernel) {
  AppEnv env;
  env.kernel = kernel;
  env.task = kernel->CurrentTask();
  return env;
}

std::int64_t ufork(AppEnv& env, std::function<int()> child) {
  return env.kernel->SysFork(std::move(child));
}
void uexit(AppEnv& env, int code) { env.kernel->SysExit(code); }
std::int64_t uwait(AppEnv& env, int* status) { return env.kernel->SysWait(status); }
std::int64_t ukill(AppEnv& env, int pid) { return env.kernel->SysKill(pid); }
std::int64_t ugetpid(AppEnv& env) { return env.kernel->SysGetPid(); }
std::int64_t usbrk(AppEnv& env, std::int64_t delta) { return env.kernel->SysSbrk(delta); }
std::int64_t usleep_ms(AppEnv& env, std::uint64_t ms) { return env.kernel->SysSleep(ms); }
std::int64_t uuptime_ms(AppEnv& env) { return env.kernel->SysUptime(); }
std::int64_t uexec(AppEnv& env, const std::string& path, const std::vector<std::string>& argv) {
  return env.kernel->SysExec(path, argv);
}
std::int64_t uopen(AppEnv& env, const std::string& path, std::uint32_t flags) {
  return env.kernel->SysOpen(path, flags);
}
std::int64_t uclose(AppEnv& env, int fd) { return env.kernel->SysClose(fd); }
std::int64_t uread(AppEnv& env, int fd, void* buf, std::uint32_t n) {
  return env.kernel->SysRead(fd, buf, n);
}
std::int64_t uwrite(AppEnv& env, int fd, const void* buf, std::uint32_t n) {
  return env.kernel->SysWrite(fd, buf, n);
}
std::int64_t ulseek(AppEnv& env, int fd, std::int64_t off, int whence) {
  return env.kernel->SysLseek(fd, off, whence);
}
std::int64_t udup(AppEnv& env, int fd) { return env.kernel->SysDup(fd); }
std::int64_t upipe(AppEnv& env, int fds[2]) { return env.kernel->SysPipe(fds); }
std::int64_t ufstat(AppEnv& env, int fd, Stat* st) { return env.kernel->SysFstat(fd, st); }
std::int64_t uchdir(AppEnv& env, const std::string& path) { return env.kernel->SysChdir(path); }
std::int64_t umkdir(AppEnv& env, const std::string& path) { return env.kernel->SysMkdir(path); }
std::int64_t uunlink(AppEnv& env, const std::string& path) {
  return env.kernel->SysUnlink(path);
}
std::int64_t ulink(AppEnv& env, const std::string& oldp, const std::string& newp) {
  return env.kernel->SysLink(oldp, newp);
}
std::int64_t ummap_fb(AppEnv& env, std::uint32_t** pixels, std::uint32_t* w, std::uint32_t* h) {
  return env.kernel->SysMmapFb(pixels, w, h);
}
std::int64_t ucacheflush(AppEnv& env, std::uint64_t off, std::uint64_t len) {
  return env.kernel->SysCacheFlush(off, len);
}
std::int64_t uclone(AppEnv& env, std::function<int()> thread) {
  return env.kernel->SysClone(std::move(thread));
}
std::int64_t usem_create(AppEnv& env, int initial) { return env.kernel->SysSemCreate(initial); }
std::int64_t usem_wait(AppEnv& env, int id) { return env.kernel->SysSemWait(id); }
std::int64_t usem_post(AppEnv& env, int id) { return env.kernel->SysSemPost(id); }
std::int64_t usync(AppEnv& env) { return env.kernel->SysSync(); }
std::int64_t ufsync(AppEnv& env, int fd) { return env.kernel->SysFsync(fd); }
std::int64_t usocket(AppEnv& env, int type, std::uint32_t flags) {
  return env.kernel->SysSocket(type, flags);
}
std::int64_t ubind(AppEnv& env, int fd, std::uint16_t port) {
  return env.kernel->SysBind(fd, port);
}
std::int64_t ulisten(AppEnv& env, int fd, std::uint32_t backlog) {
  return env.kernel->SysListen(fd, backlog);
}
std::int64_t uaccept(AppEnv& env, int fd, std::uint32_t* peer_ip, std::uint16_t* peer_port,
                     std::uint32_t accept_flags) {
  std::uint32_t ip = 0;
  std::uint16_t port = 0;
  std::int64_t r = env.kernel->SysAccept(fd, &ip, &port, accept_flags);
  if (peer_ip != nullptr) {
    *peer_ip = ip;
  }
  if (peer_port != nullptr) {
    *peer_port = port;
  }
  return r;
}
std::int64_t uconnect(AppEnv& env, int fd, std::uint32_t ip, std::uint16_t port) {
  return env.kernel->SysConnect(fd, ip, port);
}
std::int64_t usend(AppEnv& env, int fd, const void* buf, std::uint32_t n) {
  return env.kernel->SysSend(fd, buf, n);
}
std::int64_t urecv(AppEnv& env, int fd, void* buf, std::uint32_t n) {
  return env.kernel->SysRecv(fd, buf, n);
}
std::int64_t ushutdown(AppEnv& env, int fd, int how) {
  return env.kernel->SysShutdown(fd, how);
}
std::int64_t usend_all(AppEnv& env, int fd, const void* buf, std::uint32_t n) {
  const auto* p = static_cast<const std::uint8_t*>(buf);
  std::uint32_t sent = 0;
  while (sent < n) {
    std::int64_t r = env.kernel->SysSend(fd, p + sent, n - sent);
    if (r == kErrIntr) {
      continue;  // interrupted before any bytes moved; the stream is intact
    }
    if (r < 0) {
      return r;
    }
    sent += static_cast<std::uint32_t>(r);
  }
  return n;
}
std::int64_t uyield(AppEnv& env) { return env.kernel->SysYield(); }
std::int64_t ureaddir(AppEnv& env, const std::string& path, std::vector<DirEntryInfo>* out) {
  return env.kernel->SysReadDir(path, out);
}

std::int64_t uipc_create(AppEnv& env, std::uint64_t bytes) {
  return env.kernel->SysIpcCreate(bytes);
}
std::int64_t uipc_map(AppEnv& env, int id, IpcRing** out) {
  return env.kernel->SysIpcMap(id, out);
}
std::int64_t uipc_wait(AppEnv& env, int id, int side, std::uint64_t expected) {
  return env.kernel->SysIpcWait(id, side, expected);
}
std::int64_t uipc_wake(AppEnv& env, int id, int side) {
  return env.kernel->SysIpcWake(id, side);
}

std::int64_t uipc_send(AppEnv& env, int id, IpcRing* ring, const void* buf, std::size_t n) {
  const std::uint8_t* p = static_cast<const std::uint8_t*>(buf);
  const CostModel& cost = env.kernel->config().cost;
  std::size_t done = 0;
  while (done < n) {
    // Futex discipline: sample the space word BEFORE probing the ring. If a
    // consumer frees space between the failed probe and ipc_wait, the word
    // no longer matches and the wait returns immediately — no lost wakeup
    // even though the burn below may deschedule us.
    std::uint64_t space_word = ring->popped();
    std::size_t pushed = ring->TryPush(p + done, n - done);
    if (pushed > 0) {
      // The only copy on the whole path: caller buffer -> shared ring.
      LBurn(env, double(cost.ipc_ring_op) + double(pushed) * cost.memcpy_per_byte);
      done += pushed;
      if (ring->waiters(IpcSide::kData) > 0) {
        std::int64_t r = uipc_wake(env, id, static_cast<int>(IpcSide::kData));
        if (r < 0) {
          return r;
        }
      }
      continue;
    }
    LBurn(env, double(cost.ipc_ring_op));
    std::int64_t r = uipc_wait(env, id, static_cast<int>(IpcSide::kSpace), space_word);
    if (r == kErrIntr) {
      // Interrupted while parked (kill in flight): report the short count if
      // anything went in, POSIX-style, else surface EINTR — never EPERM.
      return done > 0 ? static_cast<std::int64_t>(done) : r;
    }
    if (r < 0) {
      return r;
    }
  }
  return static_cast<std::int64_t>(done);
}

std::int64_t uipc_recv(AppEnv& env, int id, IpcRing* ring, void* buf, std::size_t n) {
  std::uint8_t* p = static_cast<std::uint8_t*>(buf);
  const CostModel& cost = env.kernel->config().cost;
  while (n > 0) {
    std::uint64_t data_word = ring->pushed();  // sampled before the probe, as above
    std::size_t popped = ring->TryPop(p, n);
    if (popped > 0) {
      LBurn(env, double(cost.ipc_ring_op) + double(popped) * cost.memcpy_per_byte);
      if (ring->waiters(IpcSide::kSpace) > 0) {
        std::int64_t r = uipc_wake(env, id, static_cast<int>(IpcSide::kSpace));
        if (r < 0) {
          return r;
        }
      }
      return static_cast<std::int64_t>(popped);
    }
    LBurn(env, double(cost.ipc_ring_op));
    std::int64_t r = uipc_wait(env, id, static_cast<int>(IpcSide::kData), data_word);
    if (r < 0) {
      // kErrIntr (kill while parked) and real failures both end the read;
      // the caller can tell them apart now that EINTR is its own errno.
      return r;
    }
  }
  return 0;
}

std::int64_t uread_file(AppEnv& env, const std::string& path, std::vector<std::uint8_t>* out) {
  std::int64_t fd = uopen(env, path, kORdonly);
  if (fd < 0) {
    return fd;
  }
  Stat st;
  std::int64_t r = ufstat(env, static_cast<int>(fd), &st);
  if (r < 0) {
    uclose(env, static_cast<int>(fd));
    return r;
  }
  out->resize(st.size);
  std::int64_t total = 0;
  while (total < st.size) {
    std::int64_t n = uread(env, static_cast<int>(fd), out->data() + total,
                           static_cast<std::uint32_t>(st.size - total));
    if (n <= 0) {
      break;
    }
    total += n;
  }
  uclose(env, static_cast<int>(fd));
  out->resize(static_cast<std::size_t>(total));
  return total;
}

void uensure_stdio(AppEnv& env) {
  if (!env.task->fds.empty() || !env.kernel->config().HasFiles()) {
    return;
  }
  for (int i = 0; i < 3; ++i) {
    uopen(env, "/dev/console", i == 0 ? kORdonly : kOWronly);
  }
}

UMutex::UMutex(AppEnv& env) : env_(env), sem_(static_cast<int>(usem_create(env, 1))) {}
UMutex::~UMutex() = default;
void UMutex::Lock() { usem_wait(env_, sem_); }
void UMutex::Unlock() { usem_post(env_, sem_); }

UCondVar::UCondVar(AppEnv& env) : env_(env), sem_(static_cast<int>(usem_create(env, 0))) {}
UCondVar::~UCondVar() = default;

void UCondVar::Wait(UMutex& m) {
  ++waiters_;
  m.Unlock();
  usem_wait(env_, sem_);
  m.Lock();
}

void UCondVar::Signal() {
  if (waiters_ > 0) {
    --waiters_;
    usem_post(env_, sem_);
  }
}

void UCondVar::Broadcast() {
  while (waiters_ > 0) {
    --waiters_;
    usem_post(env_, sem_);
  }
}

void USpinLock::Lock() {
  while (held_) {
    uyield(env_);  // WFE-style backoff
  }
  held_ = true;
}

void USpinLock::Unlock() { held_ = false; }

}  // namespace vos
