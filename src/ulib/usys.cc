#include "src/ulib/usys.h"

#include "src/base/status.h"

namespace vos {

// Burns always target the *current* task: clone'd threads share the parent's
// AppEnv object, but their CPU time is their own.
void UBurn(AppEnv& env, double cycles) {
  Task* cur = env.kernel->CurrentTask();
  cur->fiber().Burn(Cycles(cycles * env.kernel->config().cost.libc_compute_scale));
}

void LBurn(AppEnv& env, double cycles) {
  DomainScope scope(env, TimeDomain::kUserLib);
  env.kernel->CurrentTask()->fiber().Burn(
      Cycles(cycles * env.kernel->config().cost.libc_compute_scale));
}

DomainScope::DomainScope(AppEnv& env, TimeDomain d)
    : task_(env.kernel->CurrentTask()), prev_(task_->domain) {
  task_->domain = d;
}

DomainScope::~DomainScope() { task_->domain = prev_; }

void umark_frame(AppEnv& env) {
  Task* cur = env.kernel->CurrentTask();
  env.kernel->trace().Emit(env.kernel->Now(), cur->core, TraceEvent::kUserMark, cur->pid(),
                           /*a=*/1 /* frame-done */);
}

AppEnv ChildEnv(Kernel* kernel) {
  AppEnv env;
  env.kernel = kernel;
  env.task = kernel->CurrentTask();
  return env;
}

std::int64_t ufork(AppEnv& env, std::function<int()> child) {
  return env.kernel->SysFork(std::move(child));
}
void uexit(AppEnv& env, int code) { env.kernel->SysExit(code); }
std::int64_t uwait(AppEnv& env, int* status) { return env.kernel->SysWait(status); }
std::int64_t ukill(AppEnv& env, int pid) { return env.kernel->SysKill(pid); }
std::int64_t ugetpid(AppEnv& env) { return env.kernel->SysGetPid(); }
std::int64_t usbrk(AppEnv& env, std::int64_t delta) { return env.kernel->SysSbrk(delta); }
std::int64_t usleep_ms(AppEnv& env, std::uint64_t ms) { return env.kernel->SysSleep(ms); }
std::int64_t uuptime_ms(AppEnv& env) { return env.kernel->SysUptime(); }
std::int64_t uexec(AppEnv& env, const std::string& path, const std::vector<std::string>& argv) {
  return env.kernel->SysExec(path, argv);
}
std::int64_t uopen(AppEnv& env, const std::string& path, std::uint32_t flags) {
  return env.kernel->SysOpen(path, flags);
}
std::int64_t uclose(AppEnv& env, int fd) { return env.kernel->SysClose(fd); }
std::int64_t uread(AppEnv& env, int fd, void* buf, std::uint32_t n) {
  return env.kernel->SysRead(fd, buf, n);
}
std::int64_t uwrite(AppEnv& env, int fd, const void* buf, std::uint32_t n) {
  return env.kernel->SysWrite(fd, buf, n);
}
std::int64_t ulseek(AppEnv& env, int fd, std::int64_t off, int whence) {
  return env.kernel->SysLseek(fd, off, whence);
}
std::int64_t udup(AppEnv& env, int fd) { return env.kernel->SysDup(fd); }
std::int64_t upipe(AppEnv& env, int fds[2]) { return env.kernel->SysPipe(fds); }
std::int64_t ufstat(AppEnv& env, int fd, Stat* st) { return env.kernel->SysFstat(fd, st); }
std::int64_t uchdir(AppEnv& env, const std::string& path) { return env.kernel->SysChdir(path); }
std::int64_t umkdir(AppEnv& env, const std::string& path) { return env.kernel->SysMkdir(path); }
std::int64_t uunlink(AppEnv& env, const std::string& path) {
  return env.kernel->SysUnlink(path);
}
std::int64_t ulink(AppEnv& env, const std::string& oldp, const std::string& newp) {
  return env.kernel->SysLink(oldp, newp);
}
std::int64_t ummap_fb(AppEnv& env, std::uint32_t** pixels, std::uint32_t* w, std::uint32_t* h) {
  return env.kernel->SysMmapFb(pixels, w, h);
}
std::int64_t ucacheflush(AppEnv& env, std::uint64_t off, std::uint64_t len) {
  return env.kernel->SysCacheFlush(off, len);
}
std::int64_t uclone(AppEnv& env, std::function<int()> thread) {
  return env.kernel->SysClone(std::move(thread));
}
std::int64_t usem_create(AppEnv& env, int initial) { return env.kernel->SysSemCreate(initial); }
std::int64_t usem_wait(AppEnv& env, int id) { return env.kernel->SysSemWait(id); }
std::int64_t usem_post(AppEnv& env, int id) { return env.kernel->SysSemPost(id); }
std::int64_t usync(AppEnv& env) { return env.kernel->SysSync(); }
std::int64_t ufsync(AppEnv& env, int fd) { return env.kernel->SysFsync(fd); }
std::int64_t uyield(AppEnv& env) { return env.kernel->SysYield(); }
std::int64_t ureaddir(AppEnv& env, const std::string& path, std::vector<DirEntryInfo>* out) {
  return env.kernel->SysReadDir(path, out);
}

std::int64_t uread_file(AppEnv& env, const std::string& path, std::vector<std::uint8_t>* out) {
  std::int64_t fd = uopen(env, path, kORdonly);
  if (fd < 0) {
    return fd;
  }
  Stat st;
  std::int64_t r = ufstat(env, static_cast<int>(fd), &st);
  if (r < 0) {
    uclose(env, static_cast<int>(fd));
    return r;
  }
  out->resize(st.size);
  std::int64_t total = 0;
  while (total < st.size) {
    std::int64_t n = uread(env, static_cast<int>(fd), out->data() + total,
                           static_cast<std::uint32_t>(st.size - total));
    if (n <= 0) {
      break;
    }
    total += n;
  }
  uclose(env, static_cast<int>(fd));
  out->resize(static_cast<std::size_t>(total));
  return total;
}

void uensure_stdio(AppEnv& env) {
  if (!env.task->fds.empty() || !env.kernel->config().HasFiles()) {
    return;
  }
  for (int i = 0; i < 3; ++i) {
    uopen(env, "/dev/console", i == 0 ? kORdonly : kOWronly);
  }
}

UMutex::UMutex(AppEnv& env) : env_(env), sem_(static_cast<int>(usem_create(env, 1))) {}
UMutex::~UMutex() = default;
void UMutex::Lock() { usem_wait(env_, sem_); }
void UMutex::Unlock() { usem_post(env_, sem_); }

UCondVar::UCondVar(AppEnv& env) : env_(env), sem_(static_cast<int>(usem_create(env, 0))) {}
UCondVar::~UCondVar() = default;

void UCondVar::Wait(UMutex& m) {
  ++waiters_;
  m.Unlock();
  usem_wait(env_, sem_);
  m.Lock();
}

void UCondVar::Signal() {
  if (waiters_ > 0) {
    --waiters_;
    usem_post(env_, sem_);
  }
}

void UCondVar::Broadcast() {
  while (waiters_ > 0) {
    --waiters_;
    usem_post(env_, sem_);
  }
}

void USpinLock::Lock() {
  while (held_) {
    uyield(env_);  // WFE-style backoff
  }
  held_ = true;
}

void USpinLock::Unlock() { held_ = false; }

}  // namespace vos
