// Bitmap font for on-screen text (launcher, sysmon, slider captions, HUDs).
// Glyphs are stored as compact 3x5 seeds and expanded to 8x8 cells at first
// use; lowercase maps to uppercase. Returns 8 rows, LSB = leftmost pixel.
#ifndef VOS_SRC_ULIB_FONT8X8_H_
#define VOS_SRC_ULIB_FONT8X8_H_

#include <cstdint>

namespace vos {

const std::uint8_t* Font8x8Glyph(char c);

}  // namespace vos

#endif  // VOS_SRC_ULIB_FONT8X8_H_
