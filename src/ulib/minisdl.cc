#include "src/ulib/minisdl.h"

#include <cstring>

#include "src/base/status.h"
#include "src/kernel/kernel.h"
#include "src/ulib/usys.h"
#include "src/wm/surface.h"

namespace vos {

MiniSdl::~MiniSdl() {
  CloseAudio();
  if (surface_fd_ >= 0) {
    uclose(env_, surface_fd_);
  }
  if (event_fd_ >= 0) {
    uclose(env_, event_fd_);
  }
}

bool MiniSdl::InitVideo(std::uint32_t w, std::uint32_t h, VideoMode mode, const char* title,
                        std::uint8_t alpha, int x, int y) {
  DomainScope lib(env_, TimeDomain::kUserLib);
  mode_ = mode;
  w_ = w;
  h_ = h;
  back_.assign(std::size_t(w) * h, 0xff000000u);
  LBurn(env_, 20000);  // SDL_Init-ish setup
  if (mode == VideoMode::kDirect) {
    if (ummap_fb(env_, &fb_, &fb_w_, &fb_h_) < 0) {
      return false;
    }
    std::int64_t fd = uopen(env_, "/dev/events", kORdonly | kONonblock);
    event_fd_ = fd >= 0 ? static_cast<int>(fd) : -1;
    return true;
  }
  std::int64_t fd = uopen(env_, "/dev/surface", kORdwr);
  if (fd < 0) {
    return false;
  }
  surface_fd_ = static_cast<int>(fd);
  SurfaceConfig cfg;
  cfg.width = w;
  cfg.height = h;
  cfg.x = x;
  cfg.y = y;
  cfg.alpha = alpha;
  std::strncpy(cfg.title, title, sizeof(cfg.title) - 1);
  ulseek(env_, surface_fd_, 0, 0);
  if (uwrite(env_, surface_fd_, &cfg, sizeof(cfg)) != sizeof(cfg)) {
    return false;
  }
  std::int64_t efd = uopen(env_, "/dev/event1", kORdonly | kONonblock);
  event_fd_ = efd >= 0 ? static_cast<int>(efd) : -1;
  return true;
}

void MiniSdl::Present() { PresentRows(0, h_); }

void MiniSdl::PresentRows(std::uint32_t y0, std::uint32_t y1) {
  DomainScope lib(env_, TimeDomain::kUserLib);
  if (y1 > h_) {
    y1 = h_;
  }
  if (y0 >= y1) {
    return;
  }
  ++frames_presented_;
  if (mode_ == VideoMode::kDirect) {
    // Center the backbuffer on the screen; rows map 1:1 when sizes match.
    std::uint32_t off_x = fb_w_ > w_ ? (fb_w_ - w_) / 2 : 0;
    std::uint32_t off_y = fb_h_ > h_ ? (fb_h_ - h_) / 2 : 0;
    std::uint32_t copy_w = std::min(w_, fb_w_);
    for (std::uint32_t yy = y0; yy < y1 && off_y + yy < fb_h_; ++yy) {
      std::memcpy(fb_ + std::size_t(off_y + yy) * fb_w_ + off_x,
                  back_.data() + std::size_t(yy) * w_, std::size_t(copy_w) * 4);
    }
    const KernelConfig& kc = env_.kernel->config();
    double per_byte =
        kc.opt_asm_memcpy ? kc.cost.memcpy_per_byte : kc.cost.memcpy_naive_per_byte;
    LBurn(env_, double(y1 - y0) * copy_w * 4 * per_byte);
    // The cache must be flushed for the framebuffer region on every frame
    // (§4.3), via the kernel since EL0 cannot.
    std::uint64_t row_bytes = std::uint64_t(fb_w_) * 4;
    ucacheflush(env_, (off_y + y0) * row_bytes, std::uint64_t(y1 - y0) * row_bytes);
  } else {
    // Indirect: write the rows into the surface; the WM composites later.
    std::uint64_t row_bytes = std::uint64_t(w_) * 4;
    ulseek(env_, surface_fd_,
           static_cast<std::int64_t>(kSurfacePixelBase + y0 * row_bytes), 0);
    uwrite(env_, surface_fd_, back_.data() + std::size_t(y0) * w_,
           static_cast<std::uint32_t>((y1 - y0) * row_bytes));
  }
}

bool MiniSdl::PollEvent(KeyEvent* ev) {
  DomainScope lib(env_, TimeDomain::kUserLib);
  LBurn(env_, env_.kernel->config().cost.event_poll);
  if (event_fd_ < 0) {
    return false;
  }
  std::int64_t n = uread(env_, event_fd_, ev, sizeof(KeyEvent));
  return n == sizeof(KeyEvent);
}

bool MiniSdl::WaitEvent(KeyEvent* ev) {
  DomainScope lib(env_, TimeDomain::kUserLib);
  if (event_fd_ < 0) {
    return false;
  }
  // Reopen-in-blocking-mode semantics: temporarily clear the nonblock flag.
  FilePtr f = env_.task->fds[static_cast<std::size_t>(event_fd_)];
  bool saved = f->nonblock;
  f->nonblock = false;
  std::int64_t n = uread(env_, event_fd_, ev, sizeof(KeyEvent));
  f->nonblock = saved;
  return n == sizeof(KeyEvent);
}

bool MiniSdl::OpenAudio(std::uint32_t sample_rate, AudioCallback cb) {
  DomainScope lib(env_, TimeDomain::kUserLib);
  (void)sample_rate;  // the driver configured the PWM rate at boot
  auto stop = audio_stop_;
  auto paused = audio_paused_;
  stop->store(false);
  AppEnv* envp = &env_;
  std::int64_t tid = uclone(env_, [envp, stop, paused, cb]() -> int {
    // The dedicated SDL audio thread (§4.5): fill a period via the app
    // callback, push it to /dev/sb; the write blocks when the ring is full,
    // pacing the producer to the DMA consumer.
    AppEnv& env = *envp;
    std::int64_t fd = uopen(env, "/dev/sb", kOWronly);
    if (fd < 0) {
      return -1;
    }
    constexpr std::uint32_t kFrames = 1024;  // stereo frames per chunk
    std::vector<std::int16_t> buf(kFrames * 2);
    while (!stop->load()) {
      if (paused->load()) {
        usleep_ms(env, 5);
        continue;
      }
      {
        DomainScope app_scope(env, TimeDomain::kUser);
        cb(buf.data(), kFrames);
      }
      LBurn(env, kFrames * 2.0);
      std::int64_t w = uwrite(env, static_cast<int>(fd), buf.data(),
                              static_cast<std::uint32_t>(buf.size() * 2));
      if (w < 0) {
        break;
      }
    }
    uclose(env, static_cast<int>(fd));
    return 0;
  });
  if (tid < 0) {
    return false;
  }
  audio_tid_ = static_cast<int>(tid);
  return true;
}

void MiniSdl::CloseAudio() {
  if (audio_tid_ < 0) {
    return;
  }
  audio_stop_->store(true);
  // Reap the audio thread.
  int status = 0;
  for (;;) {
    std::int64_t pid = uwait(env_, &status);
    if (pid < 0 || pid == audio_tid_) {
      break;
    }
  }
  audio_tid_ = -1;
}

std::uint32_t MiniSdl::Ticks() {
  return static_cast<std::uint32_t>(uuptime_ms(env_));
}

void MiniSdl::Delay(std::uint32_t ms) { usleep_ms(env_, ms); }

}  // namespace vos
