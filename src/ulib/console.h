// Text console widget: a character grid with scrolling, rendered through the
// 8x8 font onto any pixel buffer (direct framebuffer or a WM surface). The
// launcher and the graphical-shell example build on it.
#ifndef VOS_SRC_ULIB_CONSOLE_H_
#define VOS_SRC_ULIB_CONSOLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/apps/app_registry.h"
#include "src/ulib/pixel.h"

namespace vos {

class TextConsole {
 public:
  TextConsole(std::uint32_t cols, std::uint32_t rows);

  void Put(char c);
  void Write(const std::string& s);
  void Clear();

  std::uint32_t cols() const { return cols_; }
  std::uint32_t rows() const { return rows_; }
  char CharAt(std::uint32_t col, std::uint32_t row) const;
  std::string RowText(std::uint32_t row) const;

  // Renders the grid into dst at (x,y) with the given pixel scale.
  void Render(AppEnv& env, PixelBuffer dst, int x, int y, int scale, std::uint32_t fg,
              std::uint32_t bg) const;

 private:
  void Newline();

  std::uint32_t cols_;
  std::uint32_t rows_;
  std::vector<char> cells_;
  std::uint32_t cur_col_ = 0;
  std::uint32_t cur_row_ = 0;
};

}  // namespace vos

#endif  // VOS_SRC_ULIB_CONSOLE_H_
