#include "src/ulib/font8x8.h"

#include <array>
#include <cctype>
#include <map>

namespace vos {

namespace {

// 3x5 seed glyphs: 15 bits, row-major top to bottom, MSB = leftmost of row.
struct Seed {
  char c;
  std::uint16_t bits;
};

constexpr std::uint16_t B(std::uint16_t r0, std::uint16_t r1, std::uint16_t r2, std::uint16_t r3,
                          std::uint16_t r4) {
  return static_cast<std::uint16_t>((r0 << 12) | (r1 << 9) | (r2 << 6) | (r3 << 3) | r4);
}

constexpr Seed kSeeds[] = {
    {'0', B(0b111, 0b101, 0b101, 0b101, 0b111)}, {'1', B(0b010, 0b110, 0b010, 0b010, 0b111)},
    {'2', B(0b111, 0b001, 0b111, 0b100, 0b111)}, {'3', B(0b111, 0b001, 0b111, 0b001, 0b111)},
    {'4', B(0b101, 0b101, 0b111, 0b001, 0b001)}, {'5', B(0b111, 0b100, 0b111, 0b001, 0b111)},
    {'6', B(0b111, 0b100, 0b111, 0b101, 0b111)}, {'7', B(0b111, 0b001, 0b001, 0b010, 0b010)},
    {'8', B(0b111, 0b101, 0b111, 0b101, 0b111)}, {'9', B(0b111, 0b101, 0b111, 0b001, 0b111)},
    {'A', B(0b010, 0b101, 0b111, 0b101, 0b101)}, {'B', B(0b110, 0b101, 0b110, 0b101, 0b110)},
    {'C', B(0b111, 0b100, 0b100, 0b100, 0b111)}, {'D', B(0b110, 0b101, 0b101, 0b101, 0b110)},
    {'E', B(0b111, 0b100, 0b111, 0b100, 0b111)}, {'F', B(0b111, 0b100, 0b111, 0b100, 0b100)},
    {'G', B(0b111, 0b100, 0b101, 0b101, 0b111)}, {'H', B(0b101, 0b101, 0b111, 0b101, 0b101)},
    {'I', B(0b111, 0b010, 0b010, 0b010, 0b111)}, {'J', B(0b001, 0b001, 0b001, 0b101, 0b111)},
    {'K', B(0b101, 0b110, 0b100, 0b110, 0b101)}, {'L', B(0b100, 0b100, 0b100, 0b100, 0b111)},
    {'M', B(0b101, 0b111, 0b111, 0b101, 0b101)}, {'N', B(0b110, 0b101, 0b101, 0b101, 0b101)},
    {'O', B(0b111, 0b101, 0b101, 0b101, 0b111)}, {'P', B(0b111, 0b101, 0b111, 0b100, 0b100)},
    {'Q', B(0b111, 0b101, 0b101, 0b111, 0b001)}, {'R', B(0b111, 0b101, 0b110, 0b101, 0b101)},
    {'S', B(0b111, 0b100, 0b111, 0b001, 0b111)}, {'T', B(0b111, 0b010, 0b010, 0b010, 0b010)},
    {'U', B(0b101, 0b101, 0b101, 0b101, 0b111)}, {'V', B(0b101, 0b101, 0b101, 0b101, 0b010)},
    {'W', B(0b101, 0b101, 0b111, 0b111, 0b101)}, {'X', B(0b101, 0b101, 0b010, 0b101, 0b101)},
    {'Y', B(0b101, 0b101, 0b010, 0b010, 0b010)}, {'Z', B(0b111, 0b001, 0b010, 0b100, 0b111)},
    {'.', B(0b000, 0b000, 0b000, 0b000, 0b010)}, {',', B(0b000, 0b000, 0b000, 0b010, 0b100)},
    {':', B(0b000, 0b010, 0b000, 0b010, 0b000)}, {'-', B(0b000, 0b000, 0b111, 0b000, 0b000)},
    {'+', B(0b000, 0b010, 0b111, 0b010, 0b000)}, {'/', B(0b001, 0b001, 0b010, 0b100, 0b100)},
    {'!', B(0b010, 0b010, 0b010, 0b000, 0b010)}, {'?', B(0b111, 0b001, 0b011, 0b000, 0b010)},
    {'(', B(0b001, 0b010, 0b010, 0b010, 0b001)}, {')', B(0b100, 0b010, 0b010, 0b010, 0b100)},
    {'[', B(0b011, 0b010, 0b010, 0b010, 0b011)}, {']', B(0b110, 0b010, 0b010, 0b010, 0b110)},
    {'=', B(0b000, 0b111, 0b000, 0b111, 0b000)}, {'%', B(0b101, 0b001, 0b010, 0b100, 0b101)},
    {'*', B(0b101, 0b010, 0b111, 0b010, 0b101)}, {'_', B(0b000, 0b000, 0b000, 0b000, 0b111)},
    {'<', B(0b001, 0b010, 0b100, 0b010, 0b001)}, {'>', B(0b100, 0b010, 0b001, 0b010, 0b100)},
    {'\'', B(0b010, 0b010, 0b000, 0b000, 0b000)}, {'"', B(0b101, 0b101, 0b000, 0b000, 0b000)},
    {'#', B(0b101, 0b111, 0b101, 0b111, 0b101)}, {'$', B(0b011, 0b110, 0b010, 0b011, 0b110)},
    {'~', B(0b000, 0b001, 0b111, 0b100, 0b000)}, {'|', B(0b010, 0b010, 0b010, 0b010, 0b010)},
    {';', B(0b000, 0b010, 0b000, 0b010, 0b100)}, {'@', B(0b111, 0b101, 0b111, 0b100, 0b111)},
};

// Expands the 3x5 seed into an 8x8 cell: each seed column becomes 2 pixels
// (6 wide, 1-px margins), rows 0..4 map to rows 1..6 with row 3 doubled.
std::array<std::uint8_t, 8> Expand(std::uint16_t bits) {
  std::array<std::uint8_t, 8> out{};
  auto row3 = [&](int r) {
    return static_cast<std::uint8_t>((bits >> (12 - 3 * r)) & 0b111);
  };
  auto widen = [](std::uint8_t r3) {
    std::uint8_t w = 0;
    for (int c = 0; c < 3; ++c) {
      if (r3 & (0b100 >> c)) {
        w |= static_cast<std::uint8_t>(0b11 << (1 + 2 * c));
      }
    }
    return w;
  };
  // 5 seed rows over 7 output rows: double rows 1 and 3 for weight.
  const int map[7] = {0, 1, 1, 2, 3, 3, 4};
  for (int r = 0; r < 7; ++r) {
    out[static_cast<std::size_t>(r)] = widen(row3(map[r]));
  }
  return out;
}

}  // namespace

const std::uint8_t* Font8x8Glyph(char c) {
  static std::map<char, std::array<std::uint8_t, 8>>* cache = [] {
    auto* m = new std::map<char, std::array<std::uint8_t, 8>>();
    for (const Seed& s : kSeeds) {
      (*m)[s.c] = Expand(s.bits);
    }
    (*m)[' '] = std::array<std::uint8_t, 8>{};
    // Unknown glyph: a hollow box.
    (*m)['\x7f'] = std::array<std::uint8_t, 8>{0x7e, 0x42, 0x42, 0x42, 0x42, 0x42, 0x7e, 0x00};
    return m;
  }();
  char key = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  auto it = cache->find(key);
  if (it == cache->end()) {
    it = cache->find('\x7f');
  }
  return it->second.data();
}

}  // namespace vos
