// User-space malloc: the classic K&R first-fit free list over sbrk(), as
// shipped in xv6's umalloc.c and in newlib's simplest malloc. Blocks carry
// headers inside the process's (simulated) heap arena, so the allocator's
// metadata lives in guest memory like the real thing.
#ifndef VOS_SRC_ULIB_UMALLOC_H_
#define VOS_SRC_ULIB_UMALLOC_H_

#include <cstdint>

#include "src/apps/app_registry.h"

namespace vos {

class UserHeap {
 public:
  explicit UserHeap(AppEnv& env) : env_(env) {}
  UserHeap(const UserHeap&) = delete;
  UserHeap& operator=(const UserHeap&) = delete;

  // Returns a host pointer into the task's heap arena (16-byte aligned), or
  // nullptr when sbrk fails.
  void* Malloc(std::uint64_t nbytes);
  void Free(void* p);
  void* Calloc(std::uint64_t n, std::uint64_t size);
  void* Realloc(void* p, std::uint64_t nbytes);

  std::uint64_t allocated_blocks() const { return live_blocks_; }
  std::uint64_t sbrk_calls() const { return sbrk_calls_; }

 private:
  // Block header, resident in guest heap memory.
  struct Header {
    std::uint64_t size;   // payload bytes
    std::uint64_t next;   // guest VA of next free block's header (0 = end)
    std::uint64_t magic;  // canary
  };
  static constexpr std::uint64_t kMagicFree = 0xfeedfacecafef00dull;
  static constexpr std::uint64_t kMagicUsed = 0xdeadbeefdeadbeefull;
  static constexpr std::uint64_t kAlign = 16;

  Header* Hdr(std::uint64_t va);
  std::uint64_t MoreCore(std::uint64_t nbytes);  // returns VA of new block hdr

  AppEnv& env_;
  std::uint64_t free_list_ = 0;  // guest VA of first free header
  std::uint64_t live_blocks_ = 0;
  std::uint64_t sbrk_calls_ = 0;
};

}  // namespace vos

#endif  // VOS_SRC_ULIB_UMALLOC_H_
