#include "src/ulib/umalloc.h"

#include <cstring>

#include "src/base/assert.h"
#include "src/kernel/kernel.h"
#include "src/kernel/vm.h"
#include "src/ulib/usys.h"

namespace vos {

UserHeap::Header* UserHeap::Hdr(std::uint64_t va) {
  AddressSpace* mm = env_.task->mm.get();
  VOS_CHECK_MSG(mm != nullptr, "user heap without an address space");
  return reinterpret_cast<Header*>(mm->HeapPtr(va, sizeof(Header)));
}

std::uint64_t UserHeap::MoreCore(std::uint64_t nbytes) {
  std::uint64_t grow = nbytes + sizeof(Header);
  if (grow < 4096) {
    grow = 4096;  // sbrk in page-ish units, as real mallocs do
  }
  std::int64_t old = usbrk(env_, static_cast<std::int64_t>(grow));
  ++sbrk_calls_;
  if (old < 0) {
    return 0;
  }
  std::uint64_t va = static_cast<std::uint64_t>(old);
  Header* h = Hdr(va);
  h->size = grow - sizeof(Header);
  h->next = free_list_;
  h->magic = kMagicFree;
  free_list_ = va;
  return va;
}

void* UserHeap::Malloc(std::uint64_t nbytes) {
  if (nbytes == 0) {
    return nullptr;
  }
  nbytes = (nbytes + kAlign - 1) & ~(kAlign - 1);
  LBurn(env_, 120 + nbytes / 64.0);  // allocator walk cost
  for (int attempt = 0; attempt < 2; ++attempt) {
    std::uint64_t prev = 0;
    std::uint64_t cur = free_list_;
    while (cur != 0) {
      Header* h = Hdr(cur);
      VOS_CHECK_MSG(h->magic == kMagicFree, "user heap corruption: bad free-list magic");
      if (h->size >= nbytes) {
        if (h->size >= nbytes + sizeof(Header) + kAlign) {
          // Split: carve the tail into a new free block.
          std::uint64_t rest_va = cur + sizeof(Header) + nbytes;
          Header* rest = Hdr(rest_va);
          rest->size = h->size - nbytes - sizeof(Header);
          rest->next = h->next;
          rest->magic = kMagicFree;
          h->size = nbytes;
          h->next = rest_va;
        }
        // Unlink.
        if (prev == 0) {
          free_list_ = h->next;
        } else {
          Hdr(prev)->next = h->next;
        }
        h->next = 0;
        h->magic = kMagicUsed;
        ++live_blocks_;
        AddressSpace* mm = env_.task->mm.get();
        return mm->HeapPtr(cur + sizeof(Header), h->size);
      }
      prev = cur;
      cur = h->next;
    }
    if (MoreCore(nbytes) == 0) {
      return nullptr;
    }
  }
  return nullptr;
}

void UserHeap::Free(void* p) {
  if (p == nullptr) {
    return;
  }
  // Recover the guest VA from the host pointer: both live in the contiguous
  // arena, so the offset from the heap base is shared.
  AddressSpace* mm = env_.task->mm.get();
  std::uint8_t* base = mm->HeapPtr(kUserHeapBase, 1);
  std::uint64_t va = kUserHeapBase + (static_cast<std::uint8_t*>(p) - base);
  std::uint64_t hdr_va = va - sizeof(Header);
  Header* h = Hdr(hdr_va);
  VOS_CHECK_MSG(h->magic == kMagicUsed, "free of non-allocated pointer (or double free)");
  h->magic = kMagicFree;
  h->next = free_list_;
  free_list_ = hdr_va;
  --live_blocks_;
  LBurn(env_, 90);
}

void* UserHeap::Calloc(std::uint64_t n, std::uint64_t size) {
  std::uint64_t total = n * size;
  void* p = Malloc(total);
  if (p != nullptr) {
    std::memset(p, 0, total);
    LBurn(env_, total * 0.3);
  }
  return p;
}

void* UserHeap::Realloc(void* p, std::uint64_t nbytes) {
  void* q = Malloc(nbytes);
  if (p != nullptr && q != nullptr) {
    AddressSpace* mm = env_.task->mm.get();
    std::uint8_t* base = mm->HeapPtr(kUserHeapBase, 1);
    std::uint64_t va = kUserHeapBase + (static_cast<std::uint8_t*>(p) - base);
    Header* h = Hdr(va - sizeof(Header));
    std::uint64_t copy = h->size < nbytes ? h->size : nbytes;
    std::memcpy(q, p, copy);
    Free(p);
  }
  return q;
}

}  // namespace vos
