#include "src/ulib/crt.h"

#include "src/ulib/usys.h"

namespace vos {

int CrtRuntime::RunMain(const std::function<int()>& main_fn) {
  uensure_stdio(env_);
  // crti: run constructors in registration order.
  for (auto& c : ctors_) {
    c();
    ++ctors_run_;
  }
  LBurn(env_, 500);  // runtime setup
  int rc = main_fn();
  // crtn: destructors in reverse.
  for (auto it = dtors_.rbegin(); it != dtors_.rend(); ++it) {
    (*it)();
    ++dtors_run_;
  }
  return rc;
}

}  // namespace vos
