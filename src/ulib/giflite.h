// GIF decoder/encoder: GIF89a with a global color table, full LZW
// codec (variable code width, clear/EOI), and multi-frame support so the
// slider can play animated backgrounds. The encoder quantizes to a 256-color
// table and emits real LZW streams our decoder (or any other) accepts.
#ifndef VOS_SRC_ULIB_GIFLITE_H_
#define VOS_SRC_ULIB_GIFLITE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/ulib/bmp.h"

namespace vos {

struct GifAnimation {
  std::uint32_t width = 0;
  std::uint32_t height = 0;
  std::vector<Image> frames;
  std::vector<std::uint32_t> delays_ms;
};

std::optional<GifAnimation> GifDecode(const std::uint8_t* data, std::size_t len);
std::vector<std::uint8_t> GifEncode(const std::vector<Image>& frames, std::uint32_t delay_ms);

// Raw LZW (GIF variant), exposed for tests.
std::optional<std::vector<std::uint8_t>> GifLzwDecode(const std::uint8_t* data, std::size_t len,
                                                      int min_code_size, std::size_t max_out);
std::vector<std::uint8_t> GifLzwEncode(const std::uint8_t* indices, std::size_t len,
                                       int min_code_size);

}  // namespace vos

#endif  // VOS_SRC_ULIB_GIFLITE_H_
