// miniSDL: the trimmed-down SDL layer of Prototype 5 (§4.5). Provides
// video (a backbuffer presented either directly to the mmap'd framebuffer or
// indirectly through a WM surface), an event queue fed by /dev/events or
// /dev/event1, an audio callback thread (clone + /dev/sb — the "SDL audio"
// use case that motivates kernel threads), and timing helpers.
#ifndef VOS_SRC_ULIB_MINISDL_H_
#define VOS_SRC_ULIB_MINISDL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/apps/app_registry.h"
#include "src/fs/devfs.h"
#include "src/ulib/pixel.h"

namespace vos {

class MiniSdl {
 public:
  enum class VideoMode {
    kDirect,   // mmap /dev/fb, render straight to the screen (DOOM, video)
    kSurface,  // render to a WM surface (mario-sdl, sysmon, launcher)
  };

  explicit MiniSdl(AppEnv& env) : env_(env) {}
  ~MiniSdl();
  MiniSdl(const MiniSdl&) = delete;
  MiniSdl& operator=(const MiniSdl&) = delete;

  // --- Video ---
  bool InitVideo(std::uint32_t w, std::uint32_t h, VideoMode mode,
                 const char* title = "app", std::uint8_t alpha = 255, int x = 0, int y = 0);
  PixelBuffer backbuffer() { return PixelBuffer{back_.data(), w_, h_}; }
  std::uint32_t width() const { return w_; }
  std::uint32_t height() const { return h_; }
  // Pushes the backbuffer to the screen: direct mode blits + cacheflushes;
  // surface mode writes rows to /dev/surface for the WM to composite.
  void Present();
  // Presents only rows [y0, y1) — the dirty-row path games use.
  void PresentRows(std::uint32_t y0, std::uint32_t y1);

  // --- Events ---
  bool PollEvent(KeyEvent* ev);  // non-blocking
  bool WaitEvent(KeyEvent* ev);  // blocking

  // --- Audio ---
  using AudioCallback = std::function<void(std::int16_t* samples, std::uint32_t nframes)>;
  // Spawns the audio thread: it repeatedly invokes cb to fill a period and
  // writes it to /dev/sb (blocking when the driver ring is full).
  bool OpenAudio(std::uint32_t sample_rate, AudioCallback cb);
  void PauseAudio(bool paused) { audio_paused_->store(paused); }
  void CloseAudio();

  // --- Timing ---
  std::uint32_t Ticks();           // ms since boot
  void Delay(std::uint32_t ms);

  std::uint64_t frames_presented() const { return frames_presented_; }

 private:
  AppEnv& env_;
  VideoMode mode_ = VideoMode::kDirect;
  std::uint32_t w_ = 0, h_ = 0;
  std::vector<std::uint32_t> back_;
  // Direct mode.
  std::uint32_t* fb_ = nullptr;
  std::uint32_t fb_w_ = 0, fb_h_ = 0;
  // Surface mode.
  int surface_fd_ = -1;
  int event_fd_ = -1;
  std::uint64_t frames_presented_ = 0;
  // Audio thread state (shared with the clone'd thread).
  std::shared_ptr<std::atomic<bool>> audio_stop_ = std::make_shared<std::atomic<bool>>(false);
  std::shared_ptr<std::atomic<bool>> audio_paused_ = std::make_shared<std::atomic<bool>>(false);
  int audio_tid_ = -1;
};

}  // namespace vos

#endif  // VOS_SRC_ULIB_MINISDL_H_
