#include "src/ulib/pnglite.h"

#include <cstdlib>
#include <cstring>

#include "src/base/crc32.h"
#include "src/base/deflate.h"
#include "src/base/inflate.h"

namespace vos {

namespace {

const std::uint8_t kPngSig[8] = {0x89, 'P', 'N', 'G', '\r', '\n', 0x1a, '\n'};

std::uint32_t RdBe32(const std::uint8_t* p) {
  return (std::uint32_t(p[0]) << 24) | (std::uint32_t(p[1]) << 16) | (std::uint32_t(p[2]) << 8) |
         p[3];
}

void WrBe32(std::vector<std::uint8_t>& v, std::uint32_t x) {
  v.push_back(static_cast<std::uint8_t>(x >> 24));
  v.push_back(static_cast<std::uint8_t>(x >> 16));
  v.push_back(static_cast<std::uint8_t>(x >> 8));
  v.push_back(static_cast<std::uint8_t>(x));
}

void Chunk(std::vector<std::uint8_t>& out, const char type[4],
           const std::vector<std::uint8_t>& body) {
  WrBe32(out, static_cast<std::uint32_t>(body.size()));
  std::size_t crc_start = out.size();
  out.insert(out.end(), type, type + 4);
  out.insert(out.end(), body.begin(), body.end());
  std::uint32_t crc = Crc32(out.data() + crc_start, out.size() - crc_start);
  WrBe32(out, crc);
}

int Paeth(int a, int b, int c) {
  int p = a + b - c;
  int pa = std::abs(p - a), pb = std::abs(p - b), pc = std::abs(p - c);
  if (pa <= pb && pa <= pc) {
    return a;
  }
  if (pb <= pc) {
    return b;
  }
  return c;
}

}  // namespace

std::optional<Image> PngDecode(const std::uint8_t* data, std::size_t len) {
  if (len < 8 + 25 || std::memcmp(data, kPngSig, 8) != 0) {
    return std::nullopt;
  }
  std::size_t pos = 8;
  std::uint32_t w = 0, h = 0;
  std::uint8_t bit_depth = 0, color_type = 0;
  std::vector<std::uint8_t> idat;
  bool saw_end = false;
  while (pos + 12 <= len) {
    std::uint32_t clen = RdBe32(data + pos);
    const std::uint8_t* type = data + pos + 4;
    const std::uint8_t* body = data + pos + 8;
    if (pos + 12 + clen > len) {
      return std::nullopt;
    }
    if (Crc32(type, 4 + clen) != RdBe32(body + clen)) {
      return std::nullopt;  // corrupt chunk
    }
    if (std::memcmp(type, "IHDR", 4) == 0) {
      if (clen != 13) {
        return std::nullopt;
      }
      w = RdBe32(body);
      h = RdBe32(body + 4);
      bit_depth = body[8];
      color_type = body[9];
      if (body[12] != 0) {
        return std::nullopt;  // interlaced unsupported
      }
    } else if (std::memcmp(type, "IDAT", 4) == 0) {
      idat.insert(idat.end(), body, body + clen);
    } else if (std::memcmp(type, "IEND", 4) == 0) {
      saw_end = true;
      break;
    }
    pos += 12 + clen;
  }
  if (!saw_end || w == 0 || h == 0 || w > 8192 || h > 8192 || bit_depth != 8 ||
      (color_type != 2 && color_type != 6)) {
    return std::nullopt;
  }
  std::uint32_t bpp = color_type == 6 ? 4 : 3;
  auto raw = ZlibInflate(idat.data(), idat.size(), std::size_t(w) * h * bpp + h + 64);
  if (!raw || raw->size() != (std::size_t(w) * bpp + 1) * h) {
    return std::nullopt;
  }
  // Filter reconstruction.
  std::uint32_t stride = w * bpp;
  std::vector<std::uint8_t> recon(std::size_t(stride) * h);
  for (std::uint32_t y = 0; y < h; ++y) {
    std::uint8_t filter = (*raw)[std::size_t(y) * (stride + 1)];
    const std::uint8_t* src = raw->data() + std::size_t(y) * (stride + 1) + 1;
    std::uint8_t* dst = recon.data() + std::size_t(y) * stride;
    const std::uint8_t* up = y > 0 ? dst - stride : nullptr;
    for (std::uint32_t x = 0; x < stride; ++x) {
      int a = x >= bpp ? dst[x - bpp] : 0;
      int b = up != nullptr ? up[x] : 0;
      int c = (x >= bpp && up != nullptr) ? up[x - bpp] : 0;
      int v = src[x];
      switch (filter) {
        case 0:
          break;
        case 1:
          v += a;
          break;
        case 2:
          v += b;
          break;
        case 3:
          v += (a + b) / 2;
          break;
        case 4:
          v += Paeth(a, b, c);
          break;
        default:
          return std::nullopt;
      }
      dst[x] = static_cast<std::uint8_t>(v);
    }
  }
  Image img;
  img.width = w;
  img.height = h;
  img.pixels.resize(std::size_t(w) * h);
  for (std::uint32_t y = 0; y < h; ++y) {
    for (std::uint32_t x = 0; x < w; ++x) {
      const std::uint8_t* p = recon.data() + std::size_t(y) * stride + std::size_t(x) * bpp;
      img.pixels[std::size_t(y) * w + x] =
          0xff000000u | (std::uint32_t(p[0]) << 16) | (std::uint32_t(p[1]) << 8) | p[2];
    }
  }
  return img;
}

std::vector<std::uint8_t> PngEncode(const Image& img) {
  std::vector<std::uint8_t> out(kPngSig, kPngSig + 8);
  std::vector<std::uint8_t> ihdr;
  WrBe32(ihdr, img.width);
  WrBe32(ihdr, img.height);
  ihdr.push_back(8);  // bit depth
  ihdr.push_back(6);  // RGBA
  ihdr.push_back(0);
  ihdr.push_back(0);
  ihdr.push_back(0);
  Chunk(out, "IHDR", ihdr);

  // Sub-filtered scanlines: deltas against the previous pixel turn smooth
  // content into long runs the LZ layer eats.
  std::vector<std::uint8_t> raw;
  raw.reserve((std::size_t(img.width) * 4 + 1) * img.height);
  for (std::uint32_t y = 0; y < img.height; ++y) {
    raw.push_back(1);  // filter: Sub
    std::uint8_t prev[4] = {0, 0, 0, 0};
    for (std::uint32_t x = 0; x < img.width; ++x) {
      std::uint32_t px = img.At(x, y);
      std::uint8_t cur[4] = {static_cast<std::uint8_t>(px >> 16),
                             static_cast<std::uint8_t>(px >> 8),
                             static_cast<std::uint8_t>(px),
                             static_cast<std::uint8_t>(px >> 24)};
      for (int c = 0; c < 4; ++c) {
        raw.push_back(static_cast<std::uint8_t>(cur[c] - prev[c]));
        prev[c] = cur[c];
      }
    }
  }
  Chunk(out, "IDAT", ZlibDeflate(raw.data(), raw.size()));
  Chunk(out, "IEND", {});
  return out;
}

}  // namespace vos
