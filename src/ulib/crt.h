// C++ application runtime (§5.3): the crt0/crti/crtn analogue. The real VOS
// implements ARM's BPABI in <100 SLoC: crt0 wraps main, crti/crtn run the
// .init_array/.fini_array. Here apps register global constructors/destructors
// with the runtime, and RunApp drives the same lifecycle around main.
#ifndef VOS_SRC_ULIB_CRT_H_
#define VOS_SRC_ULIB_CRT_H_

#include <functional>
#include <vector>

#include "src/apps/app_registry.h"

namespace vos {

class CrtRuntime {
 public:
  explicit CrtRuntime(AppEnv& env) : env_(env) {}

  // .init_array / .fini_array registration (what crti/crtn walk).
  void AtInit(std::function<void()> fn) { ctors_.push_back(std::move(fn)); }
  void AtExit(std::function<void()> fn) { dtors_.push_back(std::move(fn)); }

  // crt0: stdio setup, constructors, main, destructors — returns main's code.
  int RunMain(const std::function<int()>& main_fn);

  int ctors_run() const { return ctors_run_; }
  int dtors_run() const { return dtors_run_; }

 private:
  AppEnv& env_;
  std::vector<std::function<void()>> ctors_;
  std::vector<std::function<void()>> dtors_;
  int ctors_run_ = 0;
  int dtors_run_ = 0;
};

}  // namespace vos

#endif  // VOS_SRC_ULIB_CRT_H_
