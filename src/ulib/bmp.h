// BMP (Windows BITMAPINFOHEADER, uncompressed 24/32-bit) decode + encode —
// the slider app's simplest input format, and the screenshot output format
// examples use.
#ifndef VOS_SRC_ULIB_BMP_H_
#define VOS_SRC_ULIB_BMP_H_

#include <cstdint>
#include <optional>
#include <vector>

namespace vos {

struct Image {
  std::uint32_t width = 0;
  std::uint32_t height = 0;
  std::vector<std::uint32_t> pixels;  // XRGB8888, row-major top-down

  std::uint32_t At(std::uint32_t x, std::uint32_t y) const {
    return pixels[std::size_t(y) * width + x];
  }
};

std::optional<Image> BmpDecode(const std::uint8_t* data, std::size_t len);
std::vector<std::uint8_t> BmpEncode(const Image& img);  // 24-bit BI_RGB

}  // namespace vos

#endif  // VOS_SRC_ULIB_BMP_H_
