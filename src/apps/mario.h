// mario: the paper's LiteNES/Mario role (see DESIGN.md §2) — a tile/sprite
// platformer engine with the same OS footprint as the NES emulator: level
// "ROM" files loaded through the filesystem, 256x240 rendering to the
// framebuffer (direct or via the WM), a title screen that animates (flashing
// coin) and autoplays when no input arrives (§4.3), and input via
// /dev/events, a pipe-fed event loop, or miniSDL — the paper's three
// benchmark variants (§6.3).
#ifndef VOS_SRC_APPS_MARIO_H_
#define VOS_SRC_APPS_MARIO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/ulib/pixel.h"

namespace vos {

constexpr std::uint32_t kMarioScreenW = 256;
constexpr std::uint32_t kMarioScreenH = 240;
constexpr int kMarioTile = 16;

struct MarioInput {
  bool left = false;
  bool right = false;
  bool jump = false;
};

class MarioEngine {
 public:
  // Parses a level "ROM" (text rows; '#'=brick, '='=ground, 'o'=coin,
  // 'E'=enemy, 'P'=player spawn, 'F'=flag). Returns false on a bad ROM.
  bool LoadLevel(const std::string& rom);
  static std::string BuiltinLevel();  // the Prototype-3 embedded ROM

  // `logic_scale` models the app's runtime baggage: the SDL variant links a
  // full C library and runs measurably slower (§6.3 latency analysis).
  void set_logic_scale(double s) { logic_scale_ = s; }

  // One 60 Hz simulation step. In title mode the coin flashes and input is
  // ignored until `start`; after kTitleFrames it transitions to autoplay.
  void Step(AppEnv& env, const MarioInput& in, bool start);
  void Render(AppEnv& env, PixelBuffer out);

  bool title_mode() const { return title_mode_; }
  bool autoplay() const { return autoplay_; }
  int coins() const { return coins_; }
  int score() const { return score_; }
  double player_x() const { return px_; }
  bool finished() const { return finished_; }
  std::uint64_t frames() const { return frames_; }

 private:
  struct Enemy {
    double x, y;
    double vx;
    bool alive;
  };

  char TileAt(int tx, int ty) const;
  bool Solid(char t) const { return t == '#' || t == '='; }
  MarioInput AutoplayInput() const;

  std::vector<std::string> rows_;
  int width_tiles_ = 0;
  int height_tiles_ = 0;
  double px_ = 32, py_ = 0, vx_ = 0, vy_ = 0;
  bool on_ground_ = false;
  std::vector<Enemy> enemies_;
  int coins_ = 0;
  int score_ = 0;
  bool title_mode_ = true;
  bool autoplay_ = false;
  bool finished_ = false;
  std::uint64_t frames_ = 0;
  double logic_scale_ = 1.0;

  static constexpr int kTitleFrames = 90;
};

}  // namespace vos

#endif  // VOS_SRC_APPS_MARIO_H_
