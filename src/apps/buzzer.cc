// buzzer (Prototype 4): the first sound app — plays a short square-wave tone
// through /dev/sb, exercising the app -> driver ring -> DMA -> PWM pipeline
// end to end before the full music player arrives.
#include <vector>

#include "src/ulib/ustdio.h"
#include "src/ulib/usys.h"

namespace vos {
namespace {

int BuzzerMain(AppEnv& env) {
  int freq = env.argv.size() > 1 ? std::atoi(env.argv[1].c_str()) : 440;
  int ms = env.argv.size() > 2 ? std::atoi(env.argv[2].c_str()) : 250;
  std::int64_t fd = uopen(env, "/dev/sb", kOWronly);
  if (fd < 0) {
    uprintf(env, "buzzer: no sound device\n");
    return 1;
  }
  constexpr std::uint32_t kRate = 44100;
  std::uint32_t frames = kRate * static_cast<std::uint32_t>(ms) / 1000;
  std::vector<std::int16_t> buf(std::size_t(frames) * 2);
  std::uint32_t half_period = freq > 0 ? kRate / (2 * static_cast<std::uint32_t>(freq)) : 1;
  for (std::uint32_t i = 0; i < frames; ++i) {
    std::int16_t s = ((i / half_period) & 1) ? 12000 : -12000;
    buf[std::size_t(i) * 2] = s;
    buf[std::size_t(i) * 2 + 1] = s;
  }
  UBurn(env, frames * 3.0);  // waveform synthesis
  std::int64_t w = uwrite(env, static_cast<int>(fd), buf.data(),
                          static_cast<std::uint32_t>(buf.size() * 2));
  uclose(env, static_cast<int>(fd));
  return w >= 0 ? 0 : 1;
}

AppRegistrar buzzer_app("buzzer", BuzzerMain, 900, 256 << 10);

}  // namespace
}  // namespace vos
