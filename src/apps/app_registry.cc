#include "src/apps/app_registry.h"

#include "src/base/assert.h"

namespace vos {

AppRegistry& AppRegistry::Instance() {
  static AppRegistry* instance = new AppRegistry();
  return *instance;
}

void AppRegistry::Register(const std::string& name, AppMain main, std::uint32_t code_size,
                           std::uint64_t heap_reserve) {
  VOS_CHECK_MSG(apps_.find(name) == apps_.end(), "duplicate app registration");
  apps_[name] = Entry{std::move(main), code_size, heap_reserve};
}

std::uint64_t AppRegistry::HeapReserve(const std::string& name) const {
  auto it = apps_.find(name);
  return it == apps_.end() ? 0 : it->second.heap_reserve;
}

const AppMain* AppRegistry::Find(const std::string& name) const {
  auto it = apps_.find(name);
  return it == apps_.end() ? nullptr : &it->second.main;
}

std::uint32_t AppRegistry::CodeSize(const std::string& name) const {
  auto it = apps_.find(name);
  return it == apps_.end() ? 0 : it->second.code_size;
}

std::vector<std::string> AppRegistry::Names() const {
  std::vector<std::string> out;
  for (const auto& [name, e] : apps_) {
    out.push_back(name);
  }
  return out;
}

}  // namespace vos
