// kvserver: the in-kernel KV/HTTP server the networking prototype serves its
// benchmark load with (§4.5 future-work class). A listener plus N worker
// threads (uclone, shared fd table) accept connections and speak a one-line
// HTTP/1.0 subset:
//
//   GET /key            -> 200 + value, or 404
//   PUT /key value      -> 200 OK (stores value)
//   anything else       -> 200 + the request echoed back
//
// Connections are one-shot (HTTP/1.0 connection-close semantics): read one
// CRLF-terminated request line, write the response, FIN, close.
//
// usage: kvserver [port] [workers] [max_conns]
//   max_conns > 0 stops the server after that many connections (benchmarks
//   and tests); 0 serves forever.
#include <cstring>
#include <map>
#include <memory>
#include <string>

#include "src/base/status.h"
#include "src/ulib/ustdio.h"
#include "src/ulib/usys.h"

namespace vos {
namespace {

struct KvState {
  std::unique_ptr<UMutex> mu;  // guards store + served
  std::map<std::string, std::string> store;
  int served = 0;
  int max_conns = 0;
  int listen_fd = -1;
};

// Serves one connection on `cfd`: parse request line, respond, close.
void ServeConn(AppEnv& env, KvState& st, int cfd) {
  char buf[512];
  std::string req;
  // Read until the end of the request line; peers may send byte-by-byte.
  while (req.find('\n') == std::string::npos && req.size() < 4096) {
    std::int64_t n = urecv(env, cfd, buf, sizeof(buf));
    if (n == kErrIntr) {
      continue;
    }
    if (n <= 0) {
      break;  // peer reset/FIN before a full request
    }
    req.append(buf, static_cast<std::size_t>(n));
  }
  std::size_t eol = req.find('\n');
  std::string line = eol == std::string::npos ? req : req.substr(0, eol);
  while (!line.empty() && (line.back() == '\r' || line.back() == '\n')) {
    line.pop_back();
  }

  std::string status = "200 OK";
  std::string body;
  if (line.compare(0, 5, "GET /") == 0) {
    std::string key = line.substr(5);
    std::size_t sp = key.find(' ');
    if (sp != std::string::npos) {
      key.resize(sp);  // tolerate a trailing " HTTP/1.0"
    }
    st.mu->Lock();
    auto it = st.store.find(key);
    bool found = it != st.store.end();
    if (found) {
      body = it->second;
    }
    st.mu->Unlock();
    if (!found) {
      status = "404 Not Found";
      body = "no such key\n";
    }
  } else if (line.compare(0, 5, "PUT /") == 0) {
    std::string rest = line.substr(5);
    std::size_t sp = rest.find(' ');
    std::string key = sp == std::string::npos ? rest : rest.substr(0, sp);
    std::string val = sp == std::string::npos ? "" : rest.substr(sp + 1);
    st.mu->Lock();
    st.store[key] = val;
    st.mu->Unlock();
    body = "stored\n";
  } else {
    body = line + "\n";  // echo
  }

  char hdr[128];
  std::snprintf(hdr, sizeof(hdr), "HTTP/1.0 %s\r\nContent-Length: %zu\r\n\r\n", status.c_str(),
                body.size());
  std::string resp = std::string(hdr) + body;
  usend_all(env, cfd, resp.data(), static_cast<std::uint32_t>(resp.size()));
  ushutdown(env, cfd, 1);  // FIN after the response
  uclose(env, cfd);
}

// Worker loop: accept until the listener is shut down or the quota is hit.
int WorkerLoop(AppEnv& env, KvState& st) {
  for (;;) {
    std::int64_t cfd = uaccept(env, st.listen_fd);
    if (cfd == kErrIntr) {
      continue;
    }
    if (cfd < 0) {
      return 0;  // listener shut down (kErrInval) or gone (kErrBadFd)
    }
    ServeConn(env, st, static_cast<int>(cfd));
    if (st.max_conns > 0) {
      st.mu->Lock();
      bool done = ++st.served >= st.max_conns;
      st.mu->Unlock();
      if (done) {
        // Wake every worker parked in accept(); they observe !listening.
        ushutdown(env, st.listen_fd, 2);
        return 0;
      }
    }
  }
}

int KvServerMain(AppEnv& env) {
  int port = env.argv.size() > 1 ? std::atoi(env.argv[1].c_str()) : 80;
  int workers = env.argv.size() > 2 ? std::atoi(env.argv[2].c_str()) : 4;
  int max_conns = env.argv.size() > 3 ? std::atoi(env.argv[3].c_str()) : 0;
  if (port <= 0 || port > 65535 || workers < 1 || workers > 64) {
    uprintf(env, "kvserver: bad args\n");
    return 1;
  }

  std::int64_t fd = usocket(env, /*type=*/0);
  if (fd < 0 || ubind(env, static_cast<int>(fd), static_cast<std::uint16_t>(port)) < 0 ||
      ulisten(env, static_cast<int>(fd), 128) < 0) {
    uprintf(env, "kvserver: cannot listen on %d\n", port);
    return 1;
  }

  KvState st;
  st.mu = std::make_unique<UMutex>(env);
  st.max_conns = max_conns;
  st.listen_fd = static_cast<int>(fd);

  for (int i = 1; i < workers; ++i) {
    uclone(env, [&env, &st] { return WorkerLoop(env, st); });
  }
  WorkerLoop(env, st);  // the main thread is worker 0
  for (int i = 1; i < workers; ++i) {
    uwait(env, nullptr);
  }
  uclose(env, static_cast<int>(fd));
  st.mu->Lock();
  int served = st.served;
  st.mu->Unlock();
  uprintf(env, "kvserver: served %d connections\n", served);
  return 0;
}

AppRegistrar kvserver_app("kvserver", KvServerMain, 6200, 1 << 20);

}  // namespace
}  // namespace vos
