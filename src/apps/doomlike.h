// doomlike: the DOOM role (see DESIGN.md §2) — a textured raycasting 3D game
// engine in the doomgeneric mold: WAD-lite level assets loaded from the FAT
// partition, DDA raycasting with procedural wall textures, billboard enemies
// with simple chase AI, a weapon + HUD, key-event *polling* in the main loop
// (the non-blocking IO path §4.5 adds), direct framebuffer rendering with
// per-frame cache flushes, and an autoplay demo mode for benches.
#ifndef VOS_SRC_APPS_DOOMLIKE_H_
#define VOS_SRC_APPS_DOOMLIKE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/ulib/pixel.h"

namespace vos {

constexpr std::uint32_t kDoomW = 320;
constexpr std::uint32_t kDoomH = 200;

struct DoomInput {
  bool forward = false;
  bool back = false;
  bool turn_left = false;
  bool turn_right = false;
  bool fire = false;
};

class DoomEngine {
 public:
  // WAD-lite: a text map ('1'-'4' wall types, '.' floor, 'P' player spawn,
  // 'M' monster, 'X' exit) with one row per line.
  bool LoadWad(const std::string& wad);
  static std::string BuiltinWad();

  void Step(AppEnv& env, const DoomInput& in);
  void Render(AppEnv& env, PixelBuffer out);

  DoomInput AutoplayInput(std::uint64_t frame) const;

  double player_x() const { return px_; }
  double player_y() const { return py_; }
  int health() const { return health_; }
  int kills() const { return kills_; }
  bool finished() const { return finished_; }
  std::uint64_t frames() const { return frames_; }
  std::uint64_t last_ray_steps() const { return last_ray_steps_; }

 private:
  struct Monster {
    double x, y;
    bool alive;
    double hurt_flash = 0;
  };

  char MapAt(int x, int y) const;
  bool Solid(int x, int y) const {
    char c = MapAt(x, y);
    return c >= '1' && c <= '4';
  }
  std::uint32_t TexSample(int wall_type, double u, double v, double dist) const;

  std::vector<std::string> map_;
  int mw_ = 0, mh_ = 0;
  double px_ = 2.5, py_ = 2.5, angle_ = 0;
  int health_ = 100;
  int ammo_ = 50;
  int kills_ = 0;
  bool finished_ = false;
  double fire_cooldown_ = 0;
  double muzzle_flash_ = 0;
  std::vector<Monster> monsters_;
  std::uint64_t frames_ = 0;
  std::uint64_t last_ray_steps_ = 0;
  std::vector<double> zbuffer_ = std::vector<double>(kDoomW, 0.0);
};

}  // namespace vos

#endif  // VOS_SRC_APPS_DOOMLIKE_H_
