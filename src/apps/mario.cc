#include "src/apps/mario.h"

#include <cmath>
#include <cstdlib>
#include <cstring>

#include "src/kernel/kernel.h"
#include "src/ulib/minisdl.h"
#include "src/ulib/ustdio.h"
#include "src/ulib/usys.h"

namespace vos {

std::string MarioEngine::BuiltinLevel() {
  return "................................................................\n"
         "................................................................\n"
         "................o..o............................F..............\n"
         ".......................###.....................................\n"
         "............###..............o.o.o.............................\n"
         "..........................#######......####....................\n"
         ".....o.o........................................#..............\n"
         "....................E..............E............#...o..........\n"
         "......####.....................................##...............\n"
         "................................................................\n"
         "..........E..............###....E..............................\n"
         "......................................o.........E..............\n"
         "..P.............................................................\n"
         "================================================================\n"
         "================================================================\n";
}

bool MarioEngine::LoadLevel(const std::string& rom) {
  rows_.clear();
  enemies_.clear();
  std::size_t pos = 0;
  while (pos < rom.size()) {
    std::size_t nl = rom.find('\n', pos);
    std::string row = nl == std::string::npos ? rom.substr(pos) : rom.substr(pos, nl - pos);
    pos = nl == std::string::npos ? rom.size() : nl + 1;
    if (!row.empty()) {
      rows_.push_back(row);
    }
  }
  if (rows_.empty()) {
    return false;
  }
  height_tiles_ = static_cast<int>(rows_.size());
  width_tiles_ = 0;
  for (const std::string& r : rows_) {
    width_tiles_ = std::max(width_tiles_, static_cast<int>(r.size()));
  }
  if (width_tiles_ < 16 || height_tiles_ < 10) {
    return false;
  }
  // Spawns.
  for (int ty = 0; ty < height_tiles_; ++ty) {
    for (int tx = 0; tx < static_cast<int>(rows_[std::size_t(ty)].size()); ++tx) {
      char c = rows_[std::size_t(ty)][std::size_t(tx)];
      if (c == 'P') {
        px_ = tx * kMarioTile;
        py_ = ty * kMarioTile;
        rows_[std::size_t(ty)][std::size_t(tx)] = '.';
      } else if (c == 'E') {
        enemies_.push_back(Enemy{double(tx * kMarioTile), double(ty * kMarioTile), -0.5, true});
        rows_[std::size_t(ty)][std::size_t(tx)] = '.';
      }
    }
  }
  title_mode_ = true;
  autoplay_ = false;
  finished_ = false;
  frames_ = 0;
  coins_ = 0;
  score_ = 0;
  vx_ = vy_ = 0;
  return true;
}

char MarioEngine::TileAt(int tx, int ty) const {
  if (ty < 0 || ty >= height_tiles_ || tx < 0 || tx >= width_tiles_) {
    return tx < 0 || tx >= width_tiles_ ? '#' : '.';
  }
  const std::string& row = rows_[std::size_t(ty)];
  return tx < static_cast<int>(row.size()) ? row[std::size_t(tx)] : '.';
}

MarioInput MarioEngine::AutoplayInput() const {
  // The scripted demo: run right, hop periodically and whenever blocked.
  MarioInput in;
  in.right = true;
  int tx = static_cast<int>((px_ + kMarioTile) / kMarioTile);
  int ty = static_cast<int>(py_ / kMarioTile);
  bool blocked = Solid(TileAt(tx, ty)) || Solid(TileAt(tx, ty + 1));
  in.jump = blocked || (frames_ % 48) < 4;
  return in;
}

void MarioEngine::Step(AppEnv& env, const MarioInput& user_in, bool start) {
  ++frames_;
  if (title_mode_) {
    if (start) {
      title_mode_ = false;
      autoplay_ = false;
    } else if (frames_ >= kTitleFrames) {
      // No one pressed start: transition into autoplay (§4.3).
      title_mode_ = false;
      autoplay_ = true;
    }
    UBurn(env, 350000 * logic_scale_);  // title animation logic
    return;
  }
  MarioInput in = autoplay_ ? AutoplayInput() : user_in;
  if (!autoplay_ && (user_in.left || user_in.right || user_in.jump)) {
    autoplay_ = false;
  }

  // Physics: accelerate, gravity, tile collisions (axis separated).
  const double accel = 0.25, max_vx = 2.2, gravity = 0.35, jump_v = -6.2;
  if (in.left) {
    vx_ = std::max(vx_ - accel, -max_vx);
  } else if (in.right) {
    vx_ = std::min(vx_ + accel, max_vx);
  } else {
    vx_ *= 0.85;
  }
  if (in.jump && on_ground_) {
    vy_ = jump_v;
    on_ground_ = false;
  }
  vy_ = std::min(vy_ + gravity, 7.0);

  // Horizontal move + collide.
  px_ += vx_;
  int dir = vx_ > 0 ? 1 : -1;
  int lead_x = static_cast<int>((px_ + (dir > 0 ? kMarioTile - 1 : 0)) / kMarioTile);
  for (int dy = 0; dy < 2; ++dy) {
    int ty = static_cast<int>(py_ / kMarioTile) + dy;
    if (Solid(TileAt(lead_x, ty))) {
      px_ = dir > 0 ? lead_x * kMarioTile - kMarioTile : (lead_x + 1) * kMarioTile;
      vx_ = 0;
      break;
    }
  }
  // Vertical move + collide.
  py_ += vy_;
  on_ground_ = false;
  if (vy_ >= 0) {
    int foot_y = static_cast<int>((py_ + kMarioTile) / kMarioTile);
    for (int dx = 0; dx < 2; ++dx) {
      int tx = static_cast<int>((px_ + dx * (kMarioTile - 1)) / kMarioTile);
      if (Solid(TileAt(tx, foot_y))) {
        py_ = foot_y * kMarioTile - kMarioTile;
        vy_ = 0;
        on_ground_ = true;
        break;
      }
    }
  } else {
    int head_y = static_cast<int>(py_ / kMarioTile);
    for (int dx = 0; dx < 2; ++dx) {
      int tx = static_cast<int>((px_ + dx * (kMarioTile - 1)) / kMarioTile);
      if (Solid(TileAt(tx, head_y))) {
        py_ = (head_y + 1) * kMarioTile;
        vy_ = 0;
        break;
      }
    }
  }

  // Coins and the flag.
  int ptx = static_cast<int>((px_ + kMarioTile / 2) / kMarioTile);
  int pty = static_cast<int>((py_ + kMarioTile / 2) / kMarioTile);
  char t = TileAt(ptx, pty);
  if (t == 'o') {
    rows_[std::size_t(pty)][std::size_t(ptx)] = '.';
    ++coins_;
    score_ += 100;
  } else if (t == 'F') {
    finished_ = true;
    score_ += 1000;
  }

  // Enemies: walk, bounce off solids, stomp detection.
  for (Enemy& e : enemies_) {
    if (!e.alive) {
      continue;
    }
    e.x += e.vx;
    int etx = static_cast<int>((e.x + (e.vx > 0 ? kMarioTile : 0)) / kMarioTile);
    int ety = static_cast<int>(e.y / kMarioTile);
    if (Solid(TileAt(etx, ety)) || !Solid(TileAt(etx, ety + 1))) {
      e.vx = -e.vx;
      e.x += 2 * e.vx;
    }
    // Collision with the player.
    if (std::abs(e.x - px_) < kMarioTile * 0.8 && std::abs(e.y - py_) < kMarioTile * 0.8) {
      if (vy_ > 1.0 && py_ < e.y) {
        e.alive = false;  // stomped
        vy_ = -3.0;
        score_ += 200;
      } else if (!autoplay_) {
        // Hit: respawn (autoplay ghosts through for demo stability).
        px_ = 32;
        py_ = 0;
        vx_ = vy_ = 0;
      }
    }
  }

  // The game engine's per-frame cost: entity updates + collision sweeps,
  // scaled by the variant's runtime baggage.
  UBurn(env, (2600000 + enemies_.size() * 60000.0) * logic_scale_);
}

void MarioEngine::Render(AppEnv& env, PixelBuffer out) {
  // Camera follows the player.
  int cam_x = static_cast<int>(px_) - static_cast<int>(kMarioScreenW) / 2;
  cam_x = std::max(0, std::min(cam_x, width_tiles_ * kMarioTile - int(kMarioScreenW)));

  // Sky.
  FillRect(env, out, 0, 0, kMarioScreenW, kMarioScreenH, Rgb(92, 148, 252));

  if (title_mode_) {
    DrawText(env, out, 40, 70, "SUPER VOS BROS", Rgb(252, 216, 168), 2);
    DrawText(env, out, 70, 120, "PRESS START", Rgb(255, 255, 255), 1);
    // The flashing coin on the title screen (§4.3).
    if ((frames_ / 15) % 2 == 0) {
      FillRect(env, out, 124, 150, 10, 14, Rgb(252, 188, 60));
    }
    UBurn(env, 900000 * logic_scale_);
    return;
  }

  // Tiles in view.
  int first_tx = cam_x / kMarioTile;
  for (int ty = 0; ty < height_tiles_ && ty * kMarioTile < int(kMarioScreenH); ++ty) {
    for (int tx = first_tx; tx <= first_tx + int(kMarioScreenW) / kMarioTile; ++tx) {
      char t = TileAt(tx, ty);
      int sx = tx * kMarioTile - cam_x;
      int sy = ty * kMarioTile;
      switch (t) {
        case '=':
          FillRect(env, out, sx, sy, kMarioTile, kMarioTile, Rgb(150, 90, 40));
          FillRect(env, out, sx, sy, kMarioTile, 3, Rgb(60, 180, 60));
          break;
        case '#':
          FillRect(env, out, sx, sy, kMarioTile, kMarioTile, Rgb(200, 112, 48));
          FillRect(env, out, sx + 1, sy + 1, kMarioTile - 2, kMarioTile - 2, Rgb(228, 144, 80));
          break;
        case 'o':
          FillRect(env, out, sx + 5, sy + 3, 6, 10, Rgb(252, 188, 60));
          break;
        case 'F':
          FillRect(env, out, sx + 7, sy - 32, 2, kMarioTile + 32, Rgb(220, 220, 220));
          FillRect(env, out, sx + 9, sy - 32, 10, 8, Rgb(230, 60, 60));
          break;
        default:
          break;
      }
    }
  }
  // Enemies.
  for (const Enemy& e : enemies_) {
    if (!e.alive) {
      continue;
    }
    int sx = static_cast<int>(e.x) - cam_x;
    if (sx > -kMarioTile && sx < int(kMarioScreenW)) {
      FillRect(env, out, sx + 2, static_cast<int>(e.y) + 4, 12, 12, Rgb(140, 80, 40));
      FillRect(env, out, sx + 4, static_cast<int>(e.y) + 7, 3, 3, Rgb(255, 255, 255));
      FillRect(env, out, sx + 9, static_cast<int>(e.y) + 7, 3, 3, Rgb(255, 255, 255));
    }
  }
  // Player.
  int psx = static_cast<int>(px_) - cam_x;
  FillRect(env, out, psx + 3, static_cast<int>(py_), 10, 6, Rgb(228, 52, 52));   // cap
  FillRect(env, out, psx + 4, static_cast<int>(py_) + 6, 8, 5, Rgb(252, 188, 148));
  FillRect(env, out, psx + 3, static_cast<int>(py_) + 11, 10, 5, Rgb(52, 80, 228));
  // HUD.
  char hud[32];
  std::snprintf(hud, sizeof(hud), "COINS %d SCORE %d", coins_, score_);
  DrawText(env, out, 6, 4, hud, Rgb(255, 255, 255), 1);

  // PPU-equivalent per-frame render cost (background fetch + sprite eval).
  UBurn(env, 5500000 * logic_scale_);
}

namespace {

MarioInput InputFromKey(const KeyEvent& ev, MarioInput in, bool* start) {
  bool down = ev.down != 0;
  switch (ev.code) {
    case kKeyLeft:
      in.left = down;
      break;
    case kKeyRight:
      in.right = down;
      break;
    case kKeySpace:
    case kKeyUp:
    case kKeyBtnA:
      in.jump = down;
      break;
    case kKeyEnter:
    case kKeyBtnStart:
      if (down) {
        *start = true;
      }
      break;
    default:
      break;
  }
  return in;
}

std::string LoadRom(AppEnv& env, const std::vector<std::string>& argv) {
  // ROM as a file (Prototype 4+); falls back to the engine's embedded level
  // (Prototype 3, where files don't exist yet).
  for (std::size_t i = 1; i < argv.size(); ++i) {
    if (argv[i].size() > 4 && argv[i].find(".lvl") != std::string::npos) {
      std::vector<std::uint8_t> raw;
      if (uread_file(env, argv[i], &raw) > 0) {
        return std::string(raw.begin(), raw.end());
      }
    }
  }
  return MarioEngine::BuiltinLevel();
}

int ParseFrames(const std::vector<std::string>& argv, int def) {
  for (std::size_t i = 1; i < argv.size(); ++i) {
    if (argv[i] == "--frames" && i + 1 < argv.size()) {
      return std::atoi(argv[i + 1].c_str());
    }
  }
  return def;
}

bool HasFlag(const std::vector<std::string>& argv, const char* flag) {
  for (const std::string& a : argv) {
    if (a == flag) {
      return true;
    }
  }
  return false;
}

// --- mario (Prototype 3): one task, direct rendering, no input handling ---
int MarioNoinputMain(AppEnv& env) {
  MarioEngine game;
  if (!game.LoadLevel(LoadRom(env, env.argv))) {
    uprintf(env, "mario: bad ROM\n");
    return 1;
  }
  std::uint32_t* fb = nullptr;
  std::uint32_t fw = 0, fh = 0;
  if (ummap_fb(env, &fb, &fw, &fh) < 0) {
    return 1;
  }
  bool bench = HasFlag(env.argv, "--bench");
  int frames = ParseFrames(env.argv, 300);
  std::vector<std::uint32_t> back(std::size_t(kMarioScreenW) * kMarioScreenH);
  PixelBuffer bb{back.data(), kMarioScreenW, kMarioScreenH};
  std::uint32_t off_x = (fw - kMarioScreenW) / 2, off_y = (fh - kMarioScreenH) / 2;
  for (int f = 0; f < frames; ++f) {
    game.Step(env, MarioInput{}, /*start=*/false);
    game.Render(env, bb);
    // The Prototype-3 build predates the optimized userlib blit/convert
    // kernels, so its frame path carries extra overhead (§6.3: mario-proc
    // outruns mario-noinput).
    UBurn(env, 550000);
    for (std::uint32_t y = 0; y < kMarioScreenH; ++y) {
      std::memcpy(fb + std::size_t(off_y + y) * fw + off_x, back.data() + std::size_t(y) * kMarioScreenW,
                  kMarioScreenW * 4);
    }
    const CostModel& cm = env.kernel->config().cost;
    UBurn(env, double(kMarioScreenW) * kMarioScreenH * 4 *
                   (env.kernel->config().opt_asm_memcpy ? cm.memcpy_per_byte
                                                        : cm.memcpy_naive_per_byte));
    ucacheflush(env, off_y * std::uint64_t(fw) * 4, std::uint64_t(kMarioScreenH) * fw * 4);
    umark_frame(env);
    if (!bench) {
      usleep_ms(env, 16);
    }
  }
  return 0;
}

// --- mario-proc (Prototype 4): multi-process event loop over a pipe ---
//
// The main loop must multiplex timer ticks and keyboard input without
// threads or async IO, so it forks two workers: one sleeps periodically, one
// blocks on /dev/events; both write into a shared pipe the main loop reads
// (§4.4 "IPC for Mario's event loop").
#pragma pack(push, 1)
struct LoopMsg {
  std::uint8_t kind;  // 'T' tick, 'K' key
  KeyEvent key;
};
#pragma pack(pop)

int MarioProcMain(AppEnv& env) {
  MarioEngine game;
  if (!game.LoadLevel(LoadRom(env, env.argv))) {
    return 1;
  }
  std::uint32_t* fb = nullptr;
  std::uint32_t fw = 0, fh = 0;
  if (ummap_fb(env, &fb, &fw, &fh) < 0) {
    return 1;
  }
  bool bench = HasFlag(env.argv, "--bench");
  int frames = ParseFrames(env.argv, 300);
  int pfd[2];
  if (upipe(env, pfd) < 0) {
    return 1;
  }
  Kernel* kernel = env.kernel;
  int wr = pfd[1];
  int tick_ms = bench ? 0 : 16;
  // Timer worker.
  std::int64_t timer_pid = ufork(env, [kernel, wr, tick_ms, frames]() -> int {
    AppEnv child = ChildEnv(kernel);
    LoopMsg msg{};
    msg.kind = 'T';
    for (int i = 0; i < frames; ++i) {
      if (tick_ms > 0) {
        usleep_ms(child, static_cast<std::uint64_t>(tick_ms));
      }
      if (uwrite(child, wr, &msg, sizeof(msg)) < 0) {
        break;
      }
    }
    return 0;
  });
  // Input worker: blocking reads from /dev/events forwarded into the pipe.
  std::int64_t input_pid = ufork(env, [kernel, wr]() -> int {
    AppEnv child = ChildEnv(kernel);
    std::int64_t fd = uopen(child, "/dev/events", kORdonly);
    if (fd < 0) {
      return 1;
    }
    for (;;) {
      LoopMsg msg{};
      msg.kind = 'K';
      std::int64_t n = uread(child, static_cast<int>(fd), &msg.key, sizeof(msg.key));
      if (n != sizeof(msg.key)) {
        break;
      }
      if (uwrite(child, wr, &msg, sizeof(msg)) < 0) {
        break;
      }
    }
    return 0;
  });
  (void)input_pid;

  std::vector<std::uint32_t> back(std::size_t(kMarioScreenW) * kMarioScreenH);
  PixelBuffer bb{back.data(), kMarioScreenW, kMarioScreenH};
  std::uint32_t off_x = (fw - kMarioScreenW) / 2, off_y = (fh - kMarioScreenH) / 2;
  MarioInput input;
  bool start = false;
  int rendered = 0;
  std::uint16_t pending_key = 0;
  while (rendered < frames) {
    LoopMsg msg{};
    std::int64_t n = uread(env, pfd[0], &msg, sizeof(msg));
    if (n != sizeof(msg)) {
      break;
    }
    if (msg.kind == 'K') {
      input = InputFromKey(msg.key, input, &start);
      if (msg.key.down) {
        pending_key = msg.key.code;  // consumed by game logic at the next tick
      }
      continue;
    }
    if (pending_key != 0) {
      // The input takes effect on this frame: that is the end of the event's
      // journey (driver -> /dev/events -> worker -> pipe -> game logic).
      env.kernel->trace().Emit(env.kernel->Now(), env.task->core, TraceEvent::kKeyEvent,
                               env.task->pid(), pending_key, 2 /* app consumed it */);
      pending_key = 0;
    }
    game.Step(env, input, start);
    start = false;
    game.Render(env, bb);
    for (std::uint32_t y = 0; y < kMarioScreenH; ++y) {
      std::memcpy(fb + std::size_t(off_y + y) * fw + off_x,
                  back.data() + std::size_t(y) * kMarioScreenW, kMarioScreenW * 4);
    }
    const CostModel& cm = env.kernel->config().cost;
    UBurn(env, double(kMarioScreenW) * kMarioScreenH * 4 *
                   (env.kernel->config().opt_asm_memcpy ? cm.memcpy_per_byte
                                                        : cm.memcpy_naive_per_byte));
    ucacheflush(env, off_y * std::uint64_t(fw) * 4, std::uint64_t(kMarioScreenH) * fw * 4);
    umark_frame(env);
    ++rendered;
  }
  // Tear down the workers.
  ukill(env, static_cast<int>(input_pid));
  uclose(env, pfd[0]);
  uclose(env, pfd[1]);
  int status;
  uwait(env, &status);
  uwait(env, &status);
  (void)timer_pid;
  return 0;
}

// --- mario-sdl (Prototype 5): threads + miniSDL + window manager ---
int MarioSdlMain(AppEnv& env) {
  MarioEngine game;
  game.set_logic_scale(1.60);  // newlib + SDL runtime baggage (§6.3)
  if (!game.LoadLevel(LoadRom(env, env.argv))) {
    return 1;
  }
  bool bench = HasFlag(env.argv, "--bench");
  int frames = ParseFrames(env.argv, 300);
  MiniSdl sdl(env);
  if (!sdl.InitVideo(kMarioScreenW, kMarioScreenH, MiniSdl::VideoMode::kSurface, "mario",
                     255, 32, 24)) {
    return 1;
  }
  MarioInput input;
  bool start = false;
  for (int f = 0; f < frames; ++f) {
    KeyEvent ev;
    while (sdl.PollEvent(&ev)) {
      input = InputFromKey(ev, input, &start);
      env.kernel->trace().Emit(env.kernel->Now(), env.task->core, TraceEvent::kKeyEvent,
                               env.task->pid(), ev.code, 2 /* app saw it */);
    }
    game.Step(env, input, start);
    start = false;
    game.Render(env, sdl.backbuffer());
    sdl.Present();
    umark_frame(env);
    if (!bench) {
      sdl.Delay(16);
    }
  }
  return 0;
}

AppRegistrar mario_app("mario", MarioNoinputMain, 11800, 2 << 20);
AppRegistrar mario_proc_app("mario-proc", MarioProcMain, 12600, 2 << 20);
AppRegistrar mario_sdl_app("mario-sdl", MarioSdlMain, 13400, 4 << 20);

}  // namespace

}  // namespace vos
