// blockchain (Table 1): the multithreaded block miner, and the repo's C++
// app exercising the crt runtime (§5.3). Worker threads (clone + CLONE_VM)
// partition the nonce space and race to find a double-SHA-256 hash below the
// difficulty target; a user-level mutex guards the shared result — Fig 10's
// multi-threaded scalability workload.
#include <atomic>
#include <cstring>
#include <vector>

#include "src/base/sha256.h"
#include "src/ulib/crt.h"
#include "src/ulib/ustdio.h"
#include "src/ulib/usys.h"

namespace vos {
namespace {

#pragma pack(push, 1)
struct BlockHeader {
  std::uint32_t version = 1;
  std::uint8_t prev_hash[32] = {};
  std::uint8_t merkle_root[32] = {};
  std::uint32_t timestamp = 0;
  std::uint32_t difficulty_bits = 0;  // leading zero bits required
  std::uint32_t nonce = 0;
};
#pragma pack(pop)

// Merkle root over the block's transactions (pairwise double-SHA).
Sha256Digest MerkleRoot(const std::vector<std::string>& txs) {
  std::vector<Sha256Digest> layer;
  for (const std::string& tx : txs) {
    layer.push_back(Sha256::DoubleHash(tx.data(), tx.size()));
  }
  if (layer.empty()) {
    layer.push_back(Sha256Digest{});
  }
  while (layer.size() > 1) {
    std::vector<Sha256Digest> next;
    for (std::size_t i = 0; i < layer.size(); i += 2) {
      const Sha256Digest& a = layer[i];
      const Sha256Digest& b = i + 1 < layer.size() ? layer[i + 1] : layer[i];
      std::uint8_t buf[64];
      std::memcpy(buf, a.data(), 32);
      std::memcpy(buf + 32, b.data(), 32);
      next.push_back(Sha256::DoubleHash(buf, 64));
    }
    layer = std::move(next);
  }
  return layer[0];
}

bool MeetsTarget(const Sha256Digest& h, std::uint32_t bits) {
  for (std::uint32_t i = 0; i < bits; ++i) {
    if ((h[i / 8] >> (7 - i % 8)) & 1) {
      return false;
    }
  }
  return true;
}

struct MineResult {
  std::atomic<bool> found{false};
  std::atomic<std::uint32_t> nonce{0};
  std::atomic<std::uint64_t> hashes{0};
};

int BlockchainMain(AppEnv& env) {
  int nthreads = 4;
  std::uint32_t difficulty = 17;
  std::uint64_t budget = 400000;  // max hashes across all threads
  for (std::size_t i = 1; i < env.argv.size(); ++i) {
    if (env.argv[i] == "--threads" && i + 1 < env.argv.size()) {
      nthreads = std::atoi(env.argv[i + 1].c_str());
    } else if (env.argv[i] == "--difficulty" && i + 1 < env.argv.size()) {
      difficulty = static_cast<std::uint32_t>(std::atoi(env.argv[i + 1].c_str()));
    } else if (env.argv[i] == "--budget" && i + 1 < env.argv.size()) {
      budget = static_cast<std::uint64_t>(std::atoll(env.argv[i + 1].c_str()));
    }
  }

  CrtRuntime crt(env);
  static bool global_ctor_ran = false;
  crt.AtInit([] { global_ctor_ran = true; });

  return crt.RunMain([&]() -> int {
    BlockHeader header;
    std::vector<std::string> txs = {"alice->bob:10", "bob->carol:4", "carol->dave:1",
                                    "coinbase->miner:50"};
    Sha256Digest root = MerkleRoot(txs);
    std::memcpy(header.merkle_root, root.data(), 32);
    header.difficulty_bits = difficulty;
    header.timestamp = static_cast<std::uint32_t>(uuptime_ms(env));

    auto result = std::make_shared<MineResult>();
    Kernel* kernel = env.kernel;
    std::uint64_t per_thread = budget / static_cast<std::uint64_t>(nthreads);

    std::vector<std::int64_t> tids;
    for (int t = 0; t < nthreads; ++t) {
      std::uint32_t nonce_base = static_cast<std::uint32_t>(t) * 0x10000000u;
      std::int64_t tid = uclone(env, [kernel, header, result, nonce_base, per_thread]() -> int {
        AppEnv me = ChildEnv(kernel);
        BlockHeader h = header;
        std::uint64_t done = 0;
        for (std::uint32_t n = 0; done < per_thread && !result->found.load(); ++n, ++done) {
          h.nonce = nonce_base + n;
          Sha256Digest d = Sha256::DoubleHash(&h, sizeof(h));
          // Double SHA-256 of an 80-byte header: ~2.3 us on the A53.
          UBurn(me, 2300);
          if (MeetsTarget(d, h.difficulty_bits)) {
            result->found.store(true);
            result->nonce.store(h.nonce);
          }
          if ((done & 0x3ff) == 0) {
            uyield(me);  // be a polite multiprogrammed citizen
          }
        }
        result->hashes.fetch_add(done);
        return 0;
      });
      if (tid >= 0) {
        tids.push_back(tid);
      }
    }
    for (std::size_t i = 0; i < tids.size(); ++i) {
      int status = 0;
      uwait(env, &status);
    }
    uprintf(env, "blockchain: %s nonce=%u hashes=%llu threads=%d ctor=%d\n",
            result->found.load() ? "mined" : "exhausted", result->nonce.load(),
            static_cast<unsigned long long>(result->hashes.load()), nthreads,
            global_ctor_ran ? 1 : 0);
    return result->found.load() ? 0 : 2;
  });
}

AppRegistrar blockchain_app("blockchain", BlockchainMain, 8200, 2 << 20);

}  // namespace
}  // namespace vos
