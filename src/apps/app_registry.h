// The application registry: maps VELF entry symbols to app entry points.
//
// In the real VOS, exec() jumps to the ELF entry address of independently
// compiled user code. In the simulator apps are compiled into the library;
// the registry is the "symbol table" the loader resolves against after
// parsing the VELF headers, so the loading machinery (segments, stacks,
// argv) stays real while execution is native.
#ifndef VOS_SRC_APPS_APP_REGISTRY_H_
#define VOS_SRC_APPS_APP_REGISTRY_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

namespace vos {

class Kernel;
class Task;

// Execution environment handed to an app's main: the "process context".
struct AppEnv {
  Kernel* kernel = nullptr;
  Task* task = nullptr;
  std::vector<std::string> argv;
};

using AppMain = std::function<int(AppEnv&)>;

class AppRegistry {
 public:
  static AppRegistry& Instance();

  void Register(const std::string& name, AppMain main, std::uint32_t code_size,
                std::uint64_t heap_reserve);
  const AppMain* Find(const std::string& name) const;
  std::uint32_t CodeSize(const std::string& name) const;
  std::uint64_t HeapReserve(const std::string& name) const;
  std::vector<std::string> Names() const;

 private:
  struct Entry {
    AppMain main;
    std::uint32_t code_size;     // pseudo-text size packed into the VELF
    std::uint64_t heap_reserve;  // heap arena the VELF header requests
  };
  std::map<std::string, Entry> apps_;
};

// Static registrar used by each app translation unit.
class AppRegistrar {
 public:
  AppRegistrar(const std::string& name, AppMain main, std::uint32_t code_size = 16384,
               std::uint64_t heap_reserve = 4ull << 20) {
    AppRegistry::Instance().Register(name, std::move(main), code_size, heap_reserve);
  }
};

}  // namespace vos

#endif  // VOS_SRC_APPS_APP_REGISTRY_H_
