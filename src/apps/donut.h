// The spinning 3D torus (§4.1) — Prototype 1's reason to exist. The renderer
// is exposed standalone because prototypes 1 and 2 run it outside any user
// process (in the timer IRQ handler, then as kernel tasks), while later
// prototypes exec it as a normal app.
#ifndef VOS_SRC_APPS_DONUT_H_
#define VOS_SRC_APPS_DONUT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/ulib/pixel.h"

namespace vos {

class DonutRenderer {
 public:
  DonutRenderer(std::uint32_t cols, std::uint32_t rows) : cols_(cols), rows_(rows) {}

  // Advances the rotation and renders one frame of luminance characters
  // (" .,-~:;=!*#$@" ramp). Returns the text rows.
  std::vector<std::string> RenderTextFrame();

  // Pixel version: renders into an RGB buffer (bigger = brighter).
  void RenderPixelFrame(std::uint32_t* pixels, std::uint32_t w, std::uint32_t h,
                        std::uint32_t tint);

  // The two rotation angles; steps per frame configurable so concurrent
  // donuts can spin at their own pace (§4.2).
  void SetSpin(double da, double db) {
    da_ = da;
    db_ = db;
  }
  double a() const { return a_; }

  // Approximate CPU cost of one frame in cycles (the A53 does this math in
  // floating point; proportional to sampled points).
  static double FrameCost(std::uint32_t cols, std::uint32_t rows);

 private:
  template <typename Plot>
  void Render(Plot plot);

  std::uint32_t cols_;
  std::uint32_t rows_;
  double a_ = 0.0;
  double b_ = 0.0;
  double da_ = 0.07;
  double db_ = 0.03;
};

}  // namespace vos

#endif  // VOS_SRC_APPS_DONUT_H_
