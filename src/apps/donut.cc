#include "src/apps/donut.h"

#include <cmath>
#include <cstring>

#include "src/ulib/minisdl.h"
#include "src/ulib/usys.h"
#include "src/ulib/ustdio.h"

namespace vos {

namespace {
constexpr double kTwoPi = 6.28318530717958647692;
const char* kLuminance = ".,-~:;=!*#$@";
}  // namespace

template <typename Plot>
void DonutRenderer::Render(Plot plot) {
  // a1k0n's donut: torus of radius R1 around R2, rotated by A (x-axis) and
  // B (z-axis), z-buffered, lit by a fixed light direction.
  double ca = std::cos(a_), sa = std::sin(a_);
  double cb = std::cos(b_), sb = std::sin(b_);
  for (double theta = 0; theta < kTwoPi; theta += 0.07) {
    double ct = std::cos(theta), st = std::sin(theta);
    for (double phi = 0; phi < kTwoPi; phi += 0.02) {
      double cp = std::cos(phi), sp = std::sin(phi);
      double circle_x = 2.0 + ct;  // R2 + R1*cos(theta)
      double circle_y = st;
      double x = circle_x * (cb * cp + sa * sb * sp) - circle_y * ca * sb;
      double y = circle_x * (sb * cp - sa * cb * sp) + circle_y * ca * cb;
      double z = 5.0 + ca * circle_x * sp + circle_y * sa;
      double ooz = 1.0 / z;
      int xp = static_cast<int>(cols_ / 2.0 + cols_ * 0.75 * ooz * x);
      int yp = static_cast<int>(rows_ / 2.0 - rows_ * 0.7 * ooz * y);
      double lum = cp * ct * sb - ca * ct * sp - sa * st + cb * (ca * st - ct * sa * sp);
      plot(xp, yp, ooz, lum);
    }
  }
  a_ += da_;
  b_ += db_;
}

std::vector<std::string> DonutRenderer::RenderTextFrame() {
  std::vector<std::string> out(rows_, std::string(cols_, ' '));
  std::vector<double> zbuf(std::size_t(cols_) * rows_, 0.0);
  Render([&](int xp, int yp, double ooz, double lum) {
    if (xp < 0 || yp < 0 || xp >= static_cast<int>(cols_) || yp >= static_cast<int>(rows_)) {
      return;
    }
    std::size_t idx = std::size_t(yp) * cols_ + std::size_t(xp);
    if (ooz > zbuf[idx]) {
      zbuf[idx] = ooz;
      int li = static_cast<int>(lum * 8);
      out[std::size_t(yp)][std::size_t(xp)] = kLuminance[li > 0 ? (li < 11 ? li : 11) : 0];
    }
  });
  return out;
}

void DonutRenderer::RenderPixelFrame(std::uint32_t* pixels, std::uint32_t w, std::uint32_t h,
                                     std::uint32_t tint) {
  std::vector<double> zbuf(std::size_t(w) * h, 0.0);
  std::uint32_t save_cols = cols_, save_rows = rows_;
  cols_ = w / 4;
  rows_ = h / 4;
  Render([&](int xp, int yp, double ooz, double lum) {
    int px = xp * 4, py = yp * 4;
    if (px < 0 || py < 0 || px + 4 > static_cast<int>(w) || py + 4 > static_cast<int>(h)) {
      return;
    }
    std::size_t idx = std::size_t(py) * w + std::size_t(px);
    if (ooz <= zbuf[idx]) {
      return;
    }
    double l = lum > 0 ? lum : 0;
    auto shade = static_cast<std::uint8_t>(40 + l * 180);
    std::uint32_t color = 0xff000000u |
                          ((shade * ((tint >> 16) & 0xff) / 255) << 16) |
                          ((shade * ((tint >> 8) & 0xff) / 255) << 8) |
                          (shade * (tint & 0xff) / 255);
    for (int dy = 0; dy < 4; ++dy) {
      for (int dx = 0; dx < 4; ++dx) {
        std::size_t p = std::size_t(py + dy) * w + std::size_t(px + dx);
        pixels[p] = color;
        zbuf[p] = ooz;
      }
    }
  });
  cols_ = save_cols;
  rows_ = save_rows;
}

double DonutRenderer::FrameCost(std::uint32_t cols, std::uint32_t rows) {
  // ~90 theta x ~315 phi samples, ~60 flops each on the A53's VFP.
  (void)cols;
  (void)rows;
  return 90.0 * 315.0 * 60.0;
}

namespace {

// The donut app: spins a torus on the framebuffer via mmap, sleeping between
// frames (timed animation). argv: [fps] [frames] [x] [y] [tint].
int DonutMain(AppEnv& env) {
  std::uint32_t* fb = nullptr;
  std::uint32_t fw = 0, fh = 0;
  if (ummap_fb(env, &fb, &fw, &fh) < 0) {
    uprintf(env, "donut: no framebuffer\n");
    return 1;
  }
  int fps = env.argv.size() > 1 ? std::atoi(env.argv[1].c_str()) : 30;
  int frames = env.argv.size() > 2 ? std::atoi(env.argv[2].c_str()) : 120;
  int ox = env.argv.size() > 3 ? std::atoi(env.argv[3].c_str()) : 0;
  int oy = env.argv.size() > 4 ? std::atoi(env.argv[4].c_str()) : 0;
  std::uint32_t tint = env.argv.size() > 5
                           ? static_cast<std::uint32_t>(std::strtoul(env.argv[5].c_str(),
                                                                     nullptr, 16))
                           : 0xffcc66;
  std::uint32_t size = 160;
  std::vector<std::uint32_t> local(std::size_t(size) * size, 0xff000000u);
  DonutRenderer donut(size, size);
  for (int f = 0; f < frames; ++f) {
    std::fill(local.begin(), local.end(), 0xff000000u);
    donut.RenderPixelFrame(local.data(), size, size, tint);
    UBurn(env, DonutRenderer::FrameCost(size, size));
    // Blit into the mmap'd framebuffer and flush the cache (§4.3).
    for (std::uint32_t y = 0; y < size && oy + y < fh; ++y) {
      std::memcpy(fb + std::size_t(oy + y) * fw + ox, local.data() + std::size_t(y) * size,
                  std::min<std::size_t>(size, fw - ox) * 4);
    }
    UBurn(env, double(size) * size * 4 * 0.5);
    std::uint64_t row_bytes = std::uint64_t(fw) * 4;
    ucacheflush(env, oy * row_bytes, std::uint64_t(size) * row_bytes);
    if (fps > 0) {
      usleep_ms(env, static_cast<std::uint64_t>(1000 / fps));
    }
  }
  return 0;
}

AppRegistrar donut_app("donut", DonutMain, 9200, 1 << 20);

}  // namespace

}  // namespace vos
