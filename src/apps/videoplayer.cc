// Video player (§4.5): MPEG-1-style VMV playback with the audio track —
// decode, YUV420->RGB conversion (the §5.2 SIMD optimization's showcase),
// direct rendering, preloading the file into memory first as the paper's
// benchmarks do. Targets the stream's native framerate unless --bench asks
// for maximum throughput.
#include <cstring>
#include <vector>

#include "src/media/vmv.h"
#include "src/ulib/minisdl.h"
#include "src/ulib/pixel.h"
#include "src/ulib/ustdio.h"
#include "src/ulib/usys.h"

namespace vos {
namespace {

int VideoMain(AppEnv& env) {
  if (env.argv.size() < 2) {
    uprintf(env, "usage: videoplayer file.vmv [--bench] [--frames n]\n");
    return 1;
  }
  bool bench = false;
  bool loop = false;
  int max_frames = 1 << 30;
  for (std::size_t i = 1; i < env.argv.size(); ++i) {
    if (env.argv[i] == "--bench") {
      bench = true;
      loop = true;  // throughput runs decode continuously
    } else if (env.argv[i] == "--loop") {
      loop = true;
    } else if (env.argv[i] == "--frames" && i + 1 < env.argv.size()) {
      max_frames = std::atoi(env.argv[i + 1].c_str());
    }
  }
  // Preload the whole file into memory before decoding (§6.3).
  std::vector<std::uint8_t> data;
  if (uread_file(env, env.argv[1], &data) <= 0) {
    uprintf(env, "videoplayer: cannot open %s\n", env.argv[1].c_str());
    return 1;
  }
  VmvDecoder dec;
  if (!dec.Open(data.data(), data.size())) {
    uprintf(env, "videoplayer: not a VMV file\n");
    return 1;
  }
  std::uint32_t* fb = nullptr;
  std::uint32_t fw = 0, fh = 0;
  if (ummap_fb(env, &fb, &fw, &fh) < 0) {
    return 1;
  }
  const VmvHeader& hdr = dec.header();
  std::vector<std::uint32_t> rgb(std::size_t(hdr.width) * hdr.height);
  PixelBuffer frame_buf{rgb.data(), hdr.width, hdr.height};
  PixelBuffer screen{fb, fw, fh};
  YuvFrame yuv;
  std::uint32_t frame_interval_ms = hdr.fps > 0 ? 1000 / hdr.fps : 33;
  std::int64_t next_deadline = uuptime_ms(env) + frame_interval_ms;
  int shown = 0;
  while (shown < max_frames) {
    if (!dec.DecodeFrame(&yuv)) {
      if (!loop || !dec.Open(data.data(), data.size()) || !dec.DecodeFrame(&yuv)) {
        break;
      }
    }
    // Decode cost: per-frame overhead (headers, audio sync, buffer juggling)
    // plus per-transform-block VLC+IDCT+MC work.
    UBurn(env, 11000000.0 + double(dec.last_frame_blocks()) * 3350.0);
    Yuv420ToRgb(env, frame_buf, yuv.y.data(), yuv.u.data(), yuv.v.data(), hdr.width,
                hdr.height);
    // Direct rendering: blit (centered or scaled down to fit) + cache flush.
    if (hdr.width <= fw && hdr.height <= fh) {
      Blit(env, screen, static_cast<int>((fw - hdr.width) / 2),
           static_cast<int>((fh - hdr.height) / 2), frame_buf);
    } else {
      BlitScaled(env, screen, 0, 0, static_cast<int>(fw), static_cast<int>(fh), frame_buf);
    }
    ucacheflush(env, 0, std::uint64_t(fw) * fh * 4);
    umark_frame(env);
    ++shown;
    if (!bench) {
      std::int64_t now = uuptime_ms(env);
      if (now < next_deadline) {
        usleep_ms(env, static_cast<std::uint64_t>(next_deadline - now));
      }
      next_deadline += frame_interval_ms;
    }
  }
  uprintf(env, "videoplayer: %d frames\n", shown);
  return 0;
}

AppRegistrar video_app("videoplayer", VideoMain, 22000, 24 << 20);

}  // namespace
}  // namespace vos
