// The shell, ported from xv6 and enhanced with script execution (§3).
// Supports command lines with arguments, pipes (a | b), redirection (< >),
// sequencing (;), background jobs (&), the cd/exit builtins, and running
// script files ("sh /etc/rc").
#include <memory>
#include <string>
#include <vector>

#include "src/kernel/kernel.h"
#include "src/ulib/ustdio.h"
#include "src/ulib/usys.h"

namespace vos {
namespace {

struct Command {
  std::vector<std::string> argv;
  std::string in_file;   // < redirect
  std::string out_file;  // > redirect
};

// Splits on '|' after tokenizing; handles < and > per segment.
std::vector<Command> ParsePipeline(const std::vector<std::string>& tokens) {
  std::vector<Command> cmds(1);
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const std::string& t = tokens[i];
    if (t == "|") {
      cmds.emplace_back();
    } else if (t == "<" && i + 1 < tokens.size()) {
      cmds.back().in_file = tokens[++i];
    } else if (t == ">" && i + 1 < tokens.size()) {
      cmds.back().out_file = tokens[++i];
    } else {
      cmds.back().argv.push_back(t);
    }
  }
  return cmds;
}

std::string BinPath(const std::string& cmd) {
  return cmd.find('/') != std::string::npos ? cmd : "/bin/" + cmd;
}

// Runs one pipeline, waiting for the foreground children.
void RunPipeline(AppEnv& env, std::vector<Command> cmds, bool background) {
  Kernel* kernel = env.kernel;
  std::vector<std::int64_t> pids;
  int prev_read = -1;  // read end of the previous pipe, in the shell's table
  for (std::size_t i = 0; i < cmds.size(); ++i) {
    if (cmds[i].argv.empty()) {
      continue;
    }
    int pipe_fds[2] = {-1, -1};
    bool has_next = i + 1 < cmds.size();
    if (has_next) {
      if (upipe(env, pipe_fds) < 0) {
        uprintf(env, "sh: pipe failed\n");
        return;
      }
    }
    Command cmd = cmds[i];
    int in_fd = prev_read;
    int out_fd = has_next ? pipe_fds[1] : -1;
    std::int64_t pid = ufork(env, [kernel, cmd, in_fd, out_fd]() -> int {
      AppEnv child = ChildEnv(kernel);
      // Wire stdin/stdout: the child shares the forked fd table, so dup the
      // pipe/file onto 0/1 xv6-style (close then dup).
      if (in_fd >= 0) {
        uclose(child, 0);
        udup(child, in_fd);
      }
      if (out_fd >= 0) {
        uclose(child, 1);
        udup(child, out_fd);
      }
      if (!cmd.in_file.empty()) {
        uclose(child, 0);
        if (uopen(child, cmd.in_file, kORdonly) < 0) {
          ufprintf(child, 2, "sh: cannot open %s\n", cmd.in_file.c_str());
          return 127;
        }
      }
      if (!cmd.out_file.empty()) {
        uclose(child, 1);
        if (uopen(child, cmd.out_file, kOWronly | kOCreate | kOTrunc) < 0) {
          ufprintf(child, 2, "sh: cannot create %s\n", cmd.out_file.c_str());
          return 127;
        }
      }
      // Close the shell-side pipe fds the fork duplicated into us.
      for (int fd = 3; fd < 16; ++fd) {
        FilePtr f = fd < static_cast<int>(child.task->fds.size())
                        ? child.task->fds[static_cast<std::size_t>(fd)]
                        : nullptr;
        if (f != nullptr && f->kind == FileKind::kPipe) {
          uclose(child, fd);
        }
      }
      uexec(child, BinPath(cmd.argv[0]), cmd.argv);
      ufprintf(child, 2, "sh: exec %s failed\n", cmd.argv[0].c_str());
      return 127;
    });
    if (pid < 0) {
      uprintf(env, "sh: fork failed\n");
      return;
    }
    pids.push_back(pid);
    // The shell closes its copies of the pipe ends it no longer needs.
    if (prev_read >= 0) {
      uclose(env, prev_read);
    }
    if (has_next) {
      uclose(env, pipe_fds[1]);
      prev_read = pipe_fds[0];
    } else {
      prev_read = -1;
    }
  }
  if (prev_read >= 0) {
    uclose(env, prev_read);
  }
  if (!background) {
    for (std::size_t i = 0; i < pids.size(); ++i) {
      int status = 0;
      uwait(env, &status);
    }
  }
}

// Executes one command line (handles ';' sequencing and builtins).
// Returns false when the shell should exit.
bool RunLine(AppEnv& env, const std::string& line) {
  // Comments and empties.
  std::string text = line;
  std::size_t hash = text.find('#');
  if (hash != std::string::npos) {
    text = text.substr(0, hash);
  }
  // Split on ';'.
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t semi = text.find(';', start);
    std::string part =
        semi == std::string::npos ? text.substr(start) : text.substr(start, semi - start);
    start = semi == std::string::npos ? text.size() + 1 : semi + 1;

    bool background = false;
    std::vector<std::string> tokens = usplit(part);
    if (!tokens.empty() && tokens.back() == "&") {
      background = true;
      tokens.pop_back();
    }
    if (tokens.empty()) {
      continue;
    }
    if (tokens[0] == "exit") {
      return false;
    }
    if (tokens[0] == "cd") {
      const std::string& dir = tokens.size() > 1 ? tokens[1] : "/";
      if (uchdir(env, dir) < 0) {
        uprintf(env, "cd: cannot cd %s\n", dir.c_str());
      }
      continue;
    }
    RunPipeline(env, ParsePipeline(tokens), background);
  }
  return true;
}

int ShellMain(AppEnv& env) {
  // Script mode: sh <file> runs its lines and exits.
  if (env.argv.size() > 1) {
    std::vector<std::uint8_t> script;
    if (uread_file(env, env.argv[1], &script) < 0) {
      uprintf(env, "sh: cannot open %s\n", env.argv[1].c_str());
      return 1;
    }
    std::string text(script.begin(), script.end());
    std::size_t pos = 0;
    while (pos < text.size()) {
      std::size_t nl = text.find('\n', pos);
      std::string line =
          nl == std::string::npos ? text.substr(pos) : text.substr(pos, nl - pos);
      pos = nl == std::string::npos ? text.size() : nl + 1;
      if (!RunLine(env, line)) {
        return 0;
      }
    }
    return 0;
  }
  // Interactive mode.
  for (;;) {
    uprintf(env, "$ ");
    std::string line;
    if (!ugets(env, &line)) {
      return 0;  // EOF
    }
    if (!RunLine(env, line)) {
      return 0;
    }
  }
}

AppRegistrar shell_app("sh", ShellMain, 7400, 1 << 20);

}  // namespace
}  // namespace vos
