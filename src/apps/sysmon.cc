// sysmon (Table 1): a floating, semi-transparent window visualizing realtime
// CPU and memory usage, parsed from /proc/cpuinfo and /proc/meminfo — the
// app that shows off the WM's alpha compositing (§4.5, Figure 1(m)).
// PR 4 teaches it the observability files too: per-core context switches and
// runqueue depth from /proc/schedstat, and the p99 syscall latency from
// /proc/metrics. The profiler PR adds a TOP-style header (uptime, load,
// per-core idle%) and a task table sorted by CPU share, fed by the per-task
// accounting rows of /proc/schedstat.
#include <algorithm>
#include <vector>

#include "src/fs/procfs.h"
#include "src/ulib/minisdl.h"
#include "src/ulib/pixel.h"
#include "src/ulib/ustdio.h"
#include "src/ulib/usys.h"

namespace vos {
namespace {

int SysmonMain(AppEnv& env) {
  int iterations = env.argv.size() > 1 ? std::atoi(env.argv[1].c_str()) : 20;
  MiniSdl sdl(env);
  constexpr std::uint32_t kW = 180, kH = 196;
  if (!sdl.InitVideo(kW, kH, MiniSdl::VideoMode::kSurface, "sysmon", /*alpha=*/170,
                     /*x=*/440, /*y=*/16)) {
    uprintf(env, "sysmon: no window manager\n");
    return 1;
  }
  PixelBuffer bb = sdl.backbuffer();
  for (int it = 0; it < iterations; ++it) {
    std::vector<std::uint8_t> cpu_raw, mem_raw, sched_raw, metrics_raw;
    uread_file(env, "/proc/cpuinfo", &cpu_raw);
    uread_file(env, "/proc/meminfo", &mem_raw);
    uread_file(env, "/proc/schedstat", &sched_raw);
    uread_file(env, "/proc/metrics", &metrics_raw);
    std::vector<double> utils;
    std::uint64_t total_kb = 1, free_kb = 0;
    std::string cpu_str(cpu_raw.begin(), cpu_raw.end());
    ParseCpuUtilization(cpu_str, &utils);
    ParseMemFree(std::string(mem_raw.begin(), mem_raw.end()), &total_kb, &free_kb);
    std::string sched_str(sched_raw.begin(), sched_raw.end());
    std::vector<ProcSchedLine> sched;
    ParseSchedStat(sched_str, &sched);
    std::vector<ProcTaskLine> ptasks;
    ParseSchedTasks(sched_str, &ptasks);
    std::uint64_t p99_ns = 0;
    ParseMetricValue(std::string(metrics_raw.begin(), metrics_raw.end()), "syscall.latency.p99",
                     &p99_ns);
    // TOP header inputs: uptime from cpuinfo, load = total runnable backlog.
    unsigned long long uptime_ms = 0;
    (void)std::sscanf(cpu_str.c_str(), "uptime_ms: %llu", &uptime_ms);
    std::uint64_t load = 0;
    for (const ProcSchedLine& c : sched) {
      load += c.runq;
    }
    UBurn(env, 25000);  // parsing + chart math

    FillRect(env, bb, 0, 0, kW, kH, Rgb(18, 22, 30));
    DrawText(env, bb, 6, 4, "SYSMON", Rgb(130, 220, 255), 1);
    char hdr[40];
    std::snprintf(hdr, sizeof(hdr), "UP %llus LOAD %llu",
                  static_cast<unsigned long long>(uptime_ms / 1000),
                  static_cast<unsigned long long>(load));
    DrawText(env, bb, 64, 4, hdr, Rgb(170, 180, 200), 1);
    // Per-core utilization bars.
    for (std::size_t c = 0; c < utils.size() && c < 4; ++c) {
      int bar_w = static_cast<int>(utils[c] * 120);
      char label[16];
      std::snprintf(label, sizeof(label), "C%zu", c);
      DrawText(env, bb, 6, 18 + static_cast<int>(c) * 14, label, Rgb(200, 200, 200), 1);
      FillRect(env, bb, 28, 18 + static_cast<int>(c) * 14, 120, 8, Rgb(40, 46, 60));
      FillRect(env, bb, 28, 18 + static_cast<int>(c) * 14, bar_w, 8, Rgb(90, 230, 120));
      if (c < sched.size()) {
        // idle% since boot plus the runqueue depth for this core.
        char sw[24];
        std::snprintf(sw, sizeof(sw), "i%d q%llu", static_cast<int>(sched[c].idle_pct),
                      static_cast<unsigned long long>(sched[c].runq));
        DrawText(env, bb, 152, 18 + static_cast<int>(c) * 14, sw, Rgb(140, 150, 170), 1);
      }
    }
    // Memory bar.
    double used = total_kb > 0 ? 1.0 - double(free_kb) / double(total_kb) : 0;
    DrawText(env, bb, 6, 78, "MEM", Rgb(200, 200, 200), 1);
    FillRect(env, bb, 34, 78, 120, 10, Rgb(40, 46, 60));
    FillRect(env, bb, 34, 78, static_cast<int>(used * 120), 10, Rgb(250, 170, 90));
    char pct[24];
    std::snprintf(pct, sizeof(pct), "%d%%", static_cast<int>(used * 100));
    DrawText(env, bb, 6, 94, pct, Rgb(250, 170, 90), 1);
    // p99 syscall latency, from the kernel metrics registry.
    char lat[32];
    std::snprintf(lat, sizeof(lat), "SYS P99 %lluus",
                  static_cast<unsigned long long>(p99_ns / 1000));
    DrawText(env, bb, 6, 108, lat, Rgb(130, 220, 255), 1);
    // TOP-style task table: biggest CPU consumers first, share of total
    // accounted CPU time. utime vs stime split rides in the second column.
    std::stable_sort(ptasks.begin(), ptasks.end(), [](const ProcTaskLine& a,
                                                      const ProcTaskLine& b) {
      return a.cpu_ms > b.cpu_ms;
    });
    std::uint64_t total_cpu = 0;
    for (const ProcTaskLine& t : ptasks) {
      total_cpu += t.cpu_ms;
    }
    DrawText(env, bb, 6, 122, "PID CPU% U/S NAME", Rgb(130, 220, 255), 1);
    for (std::size_t i = 0; i < ptasks.size() && i < 5; ++i) {
      const ProcTaskLine& t = ptasks[i];
      int share = total_cpu > 0 ? static_cast<int>(t.cpu_ms * 100 / total_cpu) : 0;
      char row[40];
      std::snprintf(row, sizeof(row), "%-3d %2d%% %llu/%llu %.7s", t.pid, share,
                    static_cast<unsigned long long>(t.utime_ms),
                    static_cast<unsigned long long>(t.stime_ms), t.name.c_str());
      DrawText(env, bb, 6, 134 + static_cast<int>(i) * 12, row, Rgb(200, 200, 200), 1);
    }
    sdl.Present();
    sdl.Delay(250);
  }
  return 0;
}

AppRegistrar sysmon_app("sysmon", SysmonMain, 4800, 1 << 20);

}  // namespace
}  // namespace vos
