// In-OS microbenchmark programs: the guest halves of Fig 8 and Fig 9. Each
// runs a measured loop inside the OS under test and reports the virtual-time
// result over stdout, exactly how the paper's benchmarks run on the board.
#include <cstring>
#include <vector>

#include "src/base/md5.h"
#include "src/kernel/kernel.h"
#include "src/ulib/umalloc.h"
#include "src/ulib/ustdio.h"
#include "src/ulib/usys.h"

namespace vos {
namespace {

std::uint64_t ArgU64(const AppEnv& env, const char* flag, std::uint64_t def) {
  for (std::size_t i = 1; i + 1 < env.argv.size() + 1 && i < env.argv.size(); ++i) {
    if (env.argv[i] == flag && i + 1 < env.argv.size()) {
      return static_cast<std::uint64_t>(std::atoll(env.argv[i + 1].c_str()));
    }
  }
  return def;
}

// bench-getpid: average getpid() latency over N calls.
int GetpidBench(AppEnv& env) {
  std::uint64_t n = ArgU64(env, "--n", 5000);
  Cycles start = env.kernel->Now();
  for (std::uint64_t i = 0; i < n; ++i) {
    ugetpid(env);
  }
  Cycles dur = env.kernel->Now() - start;
  uprintf(env, "getpid_ns %llu\n", static_cast<unsigned long long>(dur / n));
  return 0;
}

// bench-sbrk: average sbrk(+4K/-4K) pair latency.
int SbrkBench(AppEnv& env) {
  std::uint64_t n = ArgU64(env, "--n", 2000);
  Cycles start = env.kernel->Now();
  for (std::uint64_t i = 0; i < n; ++i) {
    usbrk(env, 4096);
    usbrk(env, -4096);
  }
  Cycles dur = env.kernel->Now() - start;
  uprintf(env, "sbrk_ns %llu\n", static_cast<unsigned long long>(dur / (2 * n)));
  return 0;
}

// bench-pipe: one-way IPC latency — a child echoes one byte back over a
// pipe pair; we time round-trips and halve (Fig 8's methodology).
int PipeBench(AppEnv& env) {
  std::uint64_t n = ArgU64(env, "--n", 5000);
  int ping[2], pong[2];
  if (upipe(env, ping) < 0 || upipe(env, pong) < 0) {
    return 1;
  }
  Kernel* kernel = env.kernel;
  int ping_r = ping[0], pong_w = pong[1];
  std::int64_t child = ufork(env, [kernel, ping_r, pong_w, n]() -> int {
    AppEnv me = ChildEnv(kernel);
    char c;
    for (std::uint64_t i = 0; i < n; ++i) {
      if (uread(me, ping_r, &c, 1) != 1) {
        return 1;
      }
      if (uwrite(me, pong_w, &c, 1) != 1) {
        return 1;
      }
    }
    return 0;
  });
  if (child < 0) {
    return 1;
  }
  char c = 'x';
  Cycles start = env.kernel->Now();
  for (std::uint64_t i = 0; i < n; ++i) {
    uwrite(env, ping[1], &c, 1);
    uread(env, pong[0], &c, 1);
  }
  Cycles dur = env.kernel->Now() - start;
  int status;
  uwait(env, &status);
  uprintf(env, "ipc_oneway_ns %llu\n", static_cast<unsigned long long>(dur / (2 * n)));
  return 0;
}

// bench-fork: fork+wait latency (the paper's slow path vs COW kernels).
int ForkBench(AppEnv& env) {
  std::uint64_t n = ArgU64(env, "--n", 200);
  // Touch some heap so the fork has pages to copy.
  std::uint64_t heap_kb = ArgU64(env, "--heap-kb", 256);
  UserHeap heap(env);
  void* block = heap.Malloc(heap_kb * 1024);
  std::memset(block, 0xab, heap_kb * 1024);
  Kernel* kernel = env.kernel;
  Cycles start = env.kernel->Now();
  for (std::uint64_t i = 0; i < n; ++i) {
    std::int64_t pid = ufork(env, [kernel]() -> int { return 0; });
    if (pid < 0) {
      return 1;
    }
    int status;
    uwait(env, &status);
  }
  Cycles dur = env.kernel->Now() - start;
  heap.Free(block);
  uprintf(env, "fork_ns %llu\n", static_cast<unsigned long long>(dur / n));
  return 0;
}

// bench-exec: fork+exec+wait of a trivial binary.
int ExecBench(AppEnv& env) {
  std::uint64_t n = ArgU64(env, "--n", 50);
  Kernel* kernel = env.kernel;
  Cycles start = env.kernel->Now();
  for (std::uint64_t i = 0; i < n; ++i) {
    ufork(env, [kernel]() -> int {
      AppEnv me = ChildEnv(kernel);
      uexec(me, "/bin/echo", {"echo"});
      return 127;
    });
    int status;
    uwait(env, &status);
  }
  Cycles dur = env.kernel->Now() - start;
  uprintf(env, "exec_ns %llu\n", static_cast<unsigned long long>(dur / n));
  return 0;
}

// bench-ctxsw: context-switch cost via yield ping-pong between two threads.
int CtxswBench(AppEnv& env) {
  std::uint64_t n = ArgU64(env, "--n", 2000);
  Kernel* kernel = env.kernel;
  std::int64_t child = uclone(env, [kernel, n]() -> int {
    AppEnv me = ChildEnv(kernel);
    for (std::uint64_t i = 0; i < n; ++i) {
      uyield(me);
    }
    return 0;
  });
  Cycles start = env.kernel->Now();
  for (std::uint64_t i = 0; i < n; ++i) {
    uyield(env);
  }
  Cycles dur = env.kernel->Now() - start;
  (void)child;
  int status;
  uwait(env, &status);
  uprintf(env, "ctxsw_ns %llu\n", static_cast<unsigned long long>(dur / n));
  return 0;
}

// bench-openclose: open+close of an existing file.
int OpenCloseBench(AppEnv& env) {
  std::uint64_t n = ArgU64(env, "--n", 1000);
  Cycles start = env.kernel->Now();
  for (std::uint64_t i = 0; i < n; ++i) {
    std::int64_t fd = uopen(env, "/bin/echo", kORdonly);
    if (fd < 0) {
      return 1;
    }
    uclose(env, static_cast<int>(fd));
  }
  Cycles dur = env.kernel->Now() - start;
  uprintf(env, "openclose_ns %llu\n", static_cast<unsigned long long>(dur / n));
  return 0;
}

// bench-file: sequential file read/write throughput on a given path (root
// xv6fs or /d FAT32 — Fig 8's filesystem throughput rows).
int FileBench(AppEnv& env) {
  std::string path = env.argv.size() > 1 && env.argv[1][0] == '/' ? env.argv[1]
                                                                  : "/d/bench.dat";
  std::uint64_t kb = ArgU64(env, "--kb", 512);
  std::vector<std::uint8_t> buf(16384, 0x5a);
  // Write phase.
  std::int64_t fd = uopen(env, path, kOWronly | kOCreate | kOTrunc);
  if (fd < 0) {
    uprintf(env, "bench-file: cannot create %s\n", path.c_str());
    return 1;
  }
  Cycles start = env.kernel->Now();
  std::uint64_t remaining = kb * 1024;
  while (remaining > 0) {
    std::uint32_t chunk = static_cast<std::uint32_t>(std::min<std::uint64_t>(buf.size(),
                                                                             remaining));
    if (uwrite(env, static_cast<int>(fd), buf.data(), chunk) != chunk) {
      return 1;
    }
    remaining -= chunk;
  }
  Cycles wdur = env.kernel->Now() - start;
  uclose(env, static_cast<int>(fd));
  // Read phase.
  fd = uopen(env, path, kORdonly);
  start = env.kernel->Now();
  remaining = kb * 1024;
  while (remaining > 0) {
    std::int64_t r = uread(env, static_cast<int>(fd), buf.data(),
                           static_cast<std::uint32_t>(buf.size()));
    if (r <= 0) {
      break;
    }
    remaining -= static_cast<std::uint64_t>(r);
  }
  Cycles rdur = env.kernel->Now() - start;
  uclose(env, static_cast<int>(fd));
  uunlink(env, path);
  double wkbs = double(kb) / (ToSec(wdur) + 1e-12);
  double rkbs = double(kb) / (ToSec(rdur) + 1e-12);
  uprintf(env, "file_write_kbps %d\nfile_read_kbps %d\n", static_cast<int>(wkbs),
          static_cast<int>(rkbs));
  return 0;
}

// bench-md5: compute benchmark (libc quality shows, §6.2).
int Md5Bench(AppEnv& env) {
  std::uint64_t kb = ArgU64(env, "--kb", 256);
  std::vector<std::uint8_t> data(kb * 1024);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 31);
  }
  Cycles start = env.kernel->Now();
  Md5Digest d = Md5::Hash(data.data(), data.size());
  UBurn(env, double(data.size()) * 6.5);
  Cycles dur = env.kernel->Now() - start;
  uprintf(env, "md5_us %llu digest %02x\n", static_cast<unsigned long long>(ToUs(dur)),
          d[0]);
  return 0;
}

// bench-qsort: compute benchmark (quicksort of N ints).
int QsortBench(AppEnv& env) {
  std::uint64_t n = ArgU64(env, "--n", 100000);
  std::vector<std::uint32_t> v(n);
  std::uint32_t x = 12345;
  for (std::uint64_t i = 0; i < n; ++i) {
    x = x * 1664525 + 1013904223;
    v[i] = x;
  }
  Cycles start = env.kernel->Now();
  std::sort(v.begin(), v.end());
  // ~55 cycles per element-log on the A53 through the C library's qsort.
  UBurn(env, double(n) * 17.0 * 55.0 / 10.0);
  Cycles dur = env.kernel->Now() - start;
  bool sorted = std::is_sorted(v.begin(), v.end());
  uprintf(env, "qsort_us %llu sorted %d\n", static_cast<unsigned long long>(ToUs(dur)),
          sorted ? 1 : 0);
  return 0;
}

// bench-mmap: mmap of the framebuffer.
int MmapBench(AppEnv& env) {
  std::uint64_t n = ArgU64(env, "--n", 500);
  std::uint32_t* fb = nullptr;
  std::uint32_t w, h;
  Cycles start = env.kernel->Now();
  for (std::uint64_t i = 0; i < n; ++i) {
    if (ummap_fb(env, &fb, &w, &h) < 0) {
      return 1;
    }
  }
  Cycles dur = env.kernel->Now() - start;
  uprintf(env, "mmap_ns %llu\n", static_cast<unsigned long long>(dur / n));
  return 0;
}

AppRegistrar b1("bench-getpid", GetpidBench, 700, 64 << 10);
AppRegistrar b2("bench-sbrk", SbrkBench, 700, 8 << 20);
AppRegistrar b3("bench-pipe", PipeBench, 900, 64 << 10);
AppRegistrar b4("bench-fork", ForkBench, 900, 8 << 20);
AppRegistrar b5("bench-exec", ExecBench, 800, 64 << 10);
AppRegistrar b6("bench-ctxsw", CtxswBench, 800, 64 << 10);
AppRegistrar b7("bench-open", OpenCloseBench, 800, 64 << 10);
AppRegistrar b8("bench-file", FileBench, 1100, 1 << 20);
AppRegistrar b9("bench-md5", Md5Bench, 900, 2 << 20);
AppRegistrar b10("bench-qsort", QsortBench, 900, 4 << 20);
AppRegistrar b11("bench-mmap", MmapBench, 700, 64 << 10);

}  // namespace
}  // namespace vos
