// helloworld: the first program every prototype runs (Table 1). In Prototype
// 3 it is also the "infant app" case study — a few dozen lines that survive
// being linked into the kernel but run at EL0.
#include "src/ulib/ustdio.h"
#include "src/ulib/usys.h"

namespace vos {
namespace {

int HelloMain(AppEnv& env) {
  uprintf(env, "hello from vos! pid=%d\n", static_cast<int>(ugetpid(env)));
  for (std::size_t i = 1; i < env.argv.size(); ++i) {
    uprintf(env, "argv[%zu]=%s\n", i, env.argv[i].c_str());
  }
  return 0;
}

AppRegistrar hello_app("hello", HelloMain, 1100, 64 << 10);

}  // namespace
}  // namespace vos
