#include "src/apps/cpu6502.h"

#include <cctype>
#include <cstdio>
#include <map>
#include <sstream>

#include "src/base/assert.h"

namespace vos {

std::uint8_t Bus6502::Read(std::uint16_t addr) const {
  if (read_hook_) {
    if (auto v = read_hook_(addr)) {
      return *v;
    }
  }
  return ram_[addr];
}

void Bus6502::Write(std::uint16_t addr, std::uint8_t v) {
  if (write_hook_ && write_hook_(addr, v)) {
    return;
  }
  ram_[addr] = v;
}

void Bus6502::Load(std::uint16_t addr, const std::vector<std::uint8_t>& bytes) {
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    ram_[(addr + i) & 0xffff] = bytes[i];
  }
}

namespace {

enum class Mode {
  kImp,  // implied / accumulator
  kImm,
  kZp,
  kZpX,
  kZpY,
  kAbs,
  kAbsX,
  kAbsY,
  kIzx,  // (zp,X)
  kIzy,  // (zp),Y
  kRel,
  kInd,  // JMP only
};

enum class Op {
  kAdc, kAnd, kAsl, kBcc, kBcs, kBeq, kBit, kBmi, kBne, kBpl, kBrk, kBvc, kBvs,
  kClc, kCld, kCli, kClv, kCmp, kCpx, kCpy, kDec, kDex, kDey, kEor, kInc, kInx,
  kIny, kJmp, kJsr, kLda, kLdx, kLdy, kLsr, kNop, kOra, kPha, kPhp, kPla, kPlp,
  kRol, kRor, kRti, kRts, kSbc, kSec, kSed, kSei, kSta, kStx, kSty, kTax, kTay,
  kTsx, kTxa, kTxs, kTya, kBad,
};

struct Decoded {
  Op op = Op::kBad;
  Mode mode = Mode::kImp;
  int cycles = 0;
  bool page_penalty = false;  // +1 cycle when indexing crosses a page
};

struct OpcodeTable {
  Decoded t[256];
  OpcodeTable() {
    auto set = [this](int code, Op op, Mode m, int cyc, bool pp = false) {
      t[code] = Decoded{op, m, cyc, pp};
    };
    // ALU ops with the standard 8-mode pattern.
    struct AluRow {
      Op op;
      int imm, zp, zpx, abs, abx, aby, izx, izy;
    };
    const AluRow alu[] = {
        {Op::kAdc, 0x69, 0x65, 0x75, 0x6d, 0x7d, 0x79, 0x61, 0x71},
        {Op::kAnd, 0x29, 0x25, 0x35, 0x2d, 0x3d, 0x39, 0x21, 0x31},
        {Op::kCmp, 0xc9, 0xc5, 0xd5, 0xcd, 0xdd, 0xd9, 0xc1, 0xd1},
        {Op::kEor, 0x49, 0x45, 0x55, 0x4d, 0x5d, 0x59, 0x41, 0x51},
        {Op::kLda, 0xa9, 0xa5, 0xb5, 0xad, 0xbd, 0xb9, 0xa1, 0xb1},
        {Op::kOra, 0x09, 0x05, 0x15, 0x0d, 0x1d, 0x19, 0x01, 0x11},
        {Op::kSbc, 0xe9, 0xe5, 0xf5, 0xed, 0xfd, 0xf9, 0xe1, 0xf1},
    };
    for (const AluRow& r : alu) {
      set(r.imm, r.op, Mode::kImm, 2);
      set(r.zp, r.op, Mode::kZp, 3);
      set(r.zpx, r.op, Mode::kZpX, 4);
      set(r.abs, r.op, Mode::kAbs, 4);
      set(r.abx, r.op, Mode::kAbsX, 4, true);
      set(r.aby, r.op, Mode::kAbsY, 4, true);
      set(r.izx, r.op, Mode::kIzx, 6);
      set(r.izy, r.op, Mode::kIzy, 5, true);
    }
    // Read-modify-write shifts/rotates + INC/DEC.
    struct RmwRow {
      Op op;
      int acc, zp, zpx, abs, abx;
    };
    const RmwRow rmw[] = {
        {Op::kAsl, 0x0a, 0x06, 0x16, 0x0e, 0x1e},
        {Op::kLsr, 0x4a, 0x46, 0x56, 0x4e, 0x5e},
        {Op::kRol, 0x2a, 0x26, 0x36, 0x2e, 0x3e},
        {Op::kRor, 0x6a, 0x66, 0x76, 0x6e, 0x7e},
        {Op::kInc, -1, 0xe6, 0xf6, 0xee, 0xfe},
        {Op::kDec, -1, 0xc6, 0xd6, 0xce, 0xde},
    };
    for (const RmwRow& r : rmw) {
      if (r.acc >= 0) {
        set(r.acc, r.op, Mode::kImp, 2);
      }
      set(r.zp, r.op, Mode::kZp, 5);
      set(r.zpx, r.op, Mode::kZpX, 6);
      set(r.abs, r.op, Mode::kAbs, 6);
      set(r.abx, r.op, Mode::kAbsX, 7);
    }
    // Stores.
    set(0x85, Op::kSta, Mode::kZp, 3);
    set(0x95, Op::kSta, Mode::kZpX, 4);
    set(0x8d, Op::kSta, Mode::kAbs, 4);
    set(0x9d, Op::kSta, Mode::kAbsX, 5);
    set(0x99, Op::kSta, Mode::kAbsY, 5);
    set(0x81, Op::kSta, Mode::kIzx, 6);
    set(0x91, Op::kSta, Mode::kIzy, 6);
    set(0x86, Op::kStx, Mode::kZp, 3);
    set(0x96, Op::kStx, Mode::kZpY, 4);
    set(0x8e, Op::kStx, Mode::kAbs, 4);
    set(0x84, Op::kSty, Mode::kZp, 3);
    set(0x94, Op::kSty, Mode::kZpX, 4);
    set(0x8c, Op::kSty, Mode::kAbs, 4);
    // Loads LDX/LDY.
    set(0xa2, Op::kLdx, Mode::kImm, 2);
    set(0xa6, Op::kLdx, Mode::kZp, 3);
    set(0xb6, Op::kLdx, Mode::kZpY, 4);
    set(0xae, Op::kLdx, Mode::kAbs, 4);
    set(0xbe, Op::kLdx, Mode::kAbsY, 4, true);
    set(0xa0, Op::kLdy, Mode::kImm, 2);
    set(0xa4, Op::kLdy, Mode::kZp, 3);
    set(0xb4, Op::kLdy, Mode::kZpX, 4);
    set(0xac, Op::kLdy, Mode::kAbs, 4);
    set(0xbc, Op::kLdy, Mode::kAbsX, 4, true);
    // Compares CPX/CPY.
    set(0xe0, Op::kCpx, Mode::kImm, 2);
    set(0xe4, Op::kCpx, Mode::kZp, 3);
    set(0xec, Op::kCpx, Mode::kAbs, 4);
    set(0xc0, Op::kCpy, Mode::kImm, 2);
    set(0xc4, Op::kCpy, Mode::kZp, 3);
    set(0xcc, Op::kCpy, Mode::kAbs, 4);
    // Bit test.
    set(0x24, Op::kBit, Mode::kZp, 3);
    set(0x2c, Op::kBit, Mode::kAbs, 4);
    // Branches.
    set(0x90, Op::kBcc, Mode::kRel, 2);
    set(0xb0, Op::kBcs, Mode::kRel, 2);
    set(0xf0, Op::kBeq, Mode::kRel, 2);
    set(0x30, Op::kBmi, Mode::kRel, 2);
    set(0xd0, Op::kBne, Mode::kRel, 2);
    set(0x10, Op::kBpl, Mode::kRel, 2);
    set(0x50, Op::kBvc, Mode::kRel, 2);
    set(0x70, Op::kBvs, Mode::kRel, 2);
    // Jumps and subroutines.
    set(0x4c, Op::kJmp, Mode::kAbs, 3);
    set(0x6c, Op::kJmp, Mode::kInd, 5);
    set(0x20, Op::kJsr, Mode::kAbs, 6);
    set(0x60, Op::kRts, Mode::kImp, 6);
    set(0x40, Op::kRti, Mode::kImp, 6);
    set(0x00, Op::kBrk, Mode::kImp, 7);
    // Stack.
    set(0x48, Op::kPha, Mode::kImp, 3);
    set(0x08, Op::kPhp, Mode::kImp, 3);
    set(0x68, Op::kPla, Mode::kImp, 4);
    set(0x28, Op::kPlp, Mode::kImp, 4);
    // Flags.
    set(0x18, Op::kClc, Mode::kImp, 2);
    set(0xd8, Op::kCld, Mode::kImp, 2);
    set(0x58, Op::kCli, Mode::kImp, 2);
    set(0xb8, Op::kClv, Mode::kImp, 2);
    set(0x38, Op::kSec, Mode::kImp, 2);
    set(0xf8, Op::kSed, Mode::kImp, 2);
    set(0x78, Op::kSei, Mode::kImp, 2);
    // Register transfers & inc/dec.
    set(0xaa, Op::kTax, Mode::kImp, 2);
    set(0xa8, Op::kTay, Mode::kImp, 2);
    set(0xba, Op::kTsx, Mode::kImp, 2);
    set(0x8a, Op::kTxa, Mode::kImp, 2);
    set(0x9a, Op::kTxs, Mode::kImp, 2);
    set(0x98, Op::kTya, Mode::kImp, 2);
    set(0xca, Op::kDex, Mode::kImp, 2);
    set(0x88, Op::kDey, Mode::kImp, 2);
    set(0xe8, Op::kInx, Mode::kImp, 2);
    set(0xc8, Op::kIny, Mode::kImp, 2);
    set(0xea, Op::kNop, Mode::kImp, 2);
  }
};

const OpcodeTable g_opcodes;

}  // namespace

void Cpu6502::Reset() {
  a = x = y = 0;
  sp = 0xfd;
  p = kFlagU | kFlagI;
  pc = static_cast<std::uint16_t>(bus_.Read(0xfffc) | (bus_.Read(0xfffd) << 8));
  halted = false;
  instructions_retired = 0;
}

std::uint16_t Cpu6502::Fetch16() {
  std::uint16_t lo = Fetch();
  std::uint16_t hi = Fetch();
  return static_cast<std::uint16_t>(lo | (hi << 8));
}

void Cpu6502::Push(std::uint8_t v) {
  bus_.Write(0x0100 | sp, v);
  --sp;
}

std::uint8_t Cpu6502::Pop() {
  ++sp;
  return bus_.Read(0x0100 | sp);
}

void Cpu6502::SetZN(std::uint8_t v) {
  p = static_cast<std::uint8_t>((p & ~(kFlagZ | kFlagN)) | (v == 0 ? kFlagZ : 0) |
                                (v & 0x80 ? kFlagN : 0));
}

void Cpu6502::Branch(bool take, std::uint8_t rel, int& cycles) {
  if (!take) {
    return;
  }
  std::uint16_t target = static_cast<std::uint16_t>(pc + static_cast<std::int8_t>(rel));
  cycles += 1 + ((target & 0xff00) != (pc & 0xff00) ? 1 : 0);
  pc = target;
}

void Cpu6502::Adc(std::uint8_t operand) {
  // NES 2A03: decimal mode is wired off, so binary arithmetic regardless of D.
  std::uint16_t sum = static_cast<std::uint16_t>(a) + operand + (p & kFlagC ? 1 : 0);
  std::uint8_t result = static_cast<std::uint8_t>(sum);
  p = static_cast<std::uint8_t>((p & ~(kFlagC | kFlagV)) | (sum > 0xff ? kFlagC : 0) |
                                ((~(a ^ operand) & (a ^ result) & 0x80) ? kFlagV : 0));
  a = result;
  SetZN(a);
}

void Cpu6502::Compare(std::uint8_t reg, std::uint8_t operand) {
  std::uint16_t diff = static_cast<std::uint16_t>(reg) - operand;
  p = static_cast<std::uint8_t>((p & ~kFlagC) | (reg >= operand ? kFlagC : 0));
  SetZN(static_cast<std::uint8_t>(diff));
}

void Cpu6502::Irq() {
  if (p & kFlagI) {
    return;
  }
  Push(static_cast<std::uint8_t>(pc >> 8));
  Push(static_cast<std::uint8_t>(pc));
  Push(static_cast<std::uint8_t>((p | kFlagU) & ~kFlagB));
  p |= kFlagI;
  pc = static_cast<std::uint16_t>(bus_.Read(0xfffe) | (bus_.Read(0xffff) << 8));
}

void Cpu6502::Nmi() {
  Push(static_cast<std::uint8_t>(pc >> 8));
  Push(static_cast<std::uint8_t>(pc));
  Push(static_cast<std::uint8_t>((p | kFlagU) & ~kFlagB));
  p |= kFlagI;
  pc = static_cast<std::uint16_t>(bus_.Read(0xfffa) | (bus_.Read(0xfffb) << 8));
}

int Cpu6502::Step() {
  std::uint8_t opcode = Fetch();
  const Decoded& d = g_opcodes.t[opcode];
  VOS_CHECK_MSG(d.op != Op::kBad, "undocumented 6502 opcode");
  int cycles = d.cycles;

  // Effective-address computation.
  std::uint16_t addr = 0;
  std::uint8_t rel = 0;
  bool acc_mode = false;
  switch (d.mode) {
    case Mode::kImp:
      acc_mode = true;
      break;
    case Mode::kImm:
      addr = pc++;
      break;
    case Mode::kZp:
      addr = Fetch();
      break;
    case Mode::kZpX:
      addr = static_cast<std::uint8_t>(Fetch() + x);
      break;
    case Mode::kZpY:
      addr = static_cast<std::uint8_t>(Fetch() + y);
      break;
    case Mode::kAbs:
      addr = Fetch16();
      break;
    case Mode::kAbsX: {
      std::uint16_t base = Fetch16();
      addr = static_cast<std::uint16_t>(base + x);
      if (d.page_penalty && (addr & 0xff00) != (base & 0xff00)) {
        ++cycles;
      }
      break;
    }
    case Mode::kAbsY: {
      std::uint16_t base = Fetch16();
      addr = static_cast<std::uint16_t>(base + y);
      if (d.page_penalty && (addr & 0xff00) != (base & 0xff00)) {
        ++cycles;
      }
      break;
    }
    case Mode::kIzx: {
      std::uint8_t zp = static_cast<std::uint8_t>(Fetch() + x);
      addr = static_cast<std::uint16_t>(bus_.Read(zp) |
                                        (bus_.Read(static_cast<std::uint8_t>(zp + 1)) << 8));
      break;
    }
    case Mode::kIzy: {
      std::uint8_t zp = Fetch();
      std::uint16_t base = static_cast<std::uint16_t>(
          bus_.Read(zp) | (bus_.Read(static_cast<std::uint8_t>(zp + 1)) << 8));
      addr = static_cast<std::uint16_t>(base + y);
      if (d.page_penalty && (addr & 0xff00) != (base & 0xff00)) {
        ++cycles;
      }
      break;
    }
    case Mode::kRel:
      rel = Fetch();
      break;
    case Mode::kInd: {
      std::uint16_t ptr = Fetch16();
      // The famous page-wrap bug: ($xxFF) reads the high byte from $xx00.
      std::uint16_t hi_ptr = static_cast<std::uint16_t>((ptr & 0xff00) |
                                                        static_cast<std::uint8_t>(ptr + 1));
      addr = static_cast<std::uint16_t>(bus_.Read(ptr) | (bus_.Read(hi_ptr) << 8));
      break;
    }
  }

  auto load = [&]() { return bus_.Read(addr); };
  auto rmw = [&](std::uint8_t (Cpu6502::*)(std::uint8_t)) {};
  (void)rmw;

  switch (d.op) {
    case Op::kLda:
      a = load();
      SetZN(a);
      break;
    case Op::kLdx:
      x = load();
      SetZN(x);
      break;
    case Op::kLdy:
      y = load();
      SetZN(y);
      break;
    case Op::kSta:
      bus_.Write(addr, a);
      break;
    case Op::kStx:
      bus_.Write(addr, x);
      break;
    case Op::kSty:
      bus_.Write(addr, y);
      break;
    case Op::kAdc:
      Adc(load());
      break;
    case Op::kSbc:
      Adc(static_cast<std::uint8_t>(load() ^ 0xff));
      break;
    case Op::kAnd:
      a &= load();
      SetZN(a);
      break;
    case Op::kOra:
      a |= load();
      SetZN(a);
      break;
    case Op::kEor:
      a ^= load();
      SetZN(a);
      break;
    case Op::kCmp:
      Compare(a, load());
      break;
    case Op::kCpx:
      Compare(x, load());
      break;
    case Op::kCpy:
      Compare(y, load());
      break;
    case Op::kBit: {
      std::uint8_t m = load();
      p = static_cast<std::uint8_t>((p & ~(kFlagZ | kFlagV | kFlagN)) |
                                    ((a & m) == 0 ? kFlagZ : 0) | (m & kFlagV) | (m & kFlagN));
      break;
    }
    case Op::kAsl:
    case Op::kLsr:
    case Op::kRol:
    case Op::kRor: {
      std::uint8_t v = acc_mode ? a : load();
      std::uint8_t carry_in = (p & kFlagC) ? 1 : 0;
      std::uint8_t carry_out;
      std::uint8_t r;
      if (d.op == Op::kAsl) {
        carry_out = v >> 7;
        r = static_cast<std::uint8_t>(v << 1);
      } else if (d.op == Op::kLsr) {
        carry_out = v & 1;
        r = v >> 1;
      } else if (d.op == Op::kRol) {
        carry_out = v >> 7;
        r = static_cast<std::uint8_t>((v << 1) | carry_in);
      } else {
        carry_out = v & 1;
        r = static_cast<std::uint8_t>((v >> 1) | (carry_in << 7));
      }
      p = static_cast<std::uint8_t>((p & ~kFlagC) | (carry_out ? kFlagC : 0));
      SetZN(r);
      if (acc_mode) {
        a = r;
      } else {
        bus_.Write(addr, r);
      }
      break;
    }
    case Op::kInc: {
      std::uint8_t r = static_cast<std::uint8_t>(load() + 1);
      bus_.Write(addr, r);
      SetZN(r);
      break;
    }
    case Op::kDec: {
      std::uint8_t r = static_cast<std::uint8_t>(load() - 1);
      bus_.Write(addr, r);
      SetZN(r);
      break;
    }
    case Op::kInx:
      SetZN(++x);
      break;
    case Op::kIny:
      SetZN(++y);
      break;
    case Op::kDex:
      SetZN(--x);
      break;
    case Op::kDey:
      SetZN(--y);
      break;
    case Op::kTax:
      x = a;
      SetZN(x);
      break;
    case Op::kTay:
      y = a;
      SetZN(y);
      break;
    case Op::kTxa:
      a = x;
      SetZN(a);
      break;
    case Op::kTya:
      a = y;
      SetZN(a);
      break;
    case Op::kTsx:
      x = sp;
      SetZN(x);
      break;
    case Op::kTxs:
      sp = x;
      break;
    case Op::kPha:
      Push(a);
      break;
    case Op::kPhp:
      Push(static_cast<std::uint8_t>(p | kFlagB | kFlagU));
      break;
    case Op::kPla:
      a = Pop();
      SetZN(a);
      break;
    case Op::kPlp:
      p = static_cast<std::uint8_t>((Pop() | kFlagU) & ~kFlagB);
      break;
    case Op::kClc:
      p &= ~kFlagC;
      break;
    case Op::kSec:
      p |= kFlagC;
      break;
    case Op::kCli:
      p &= ~kFlagI;
      break;
    case Op::kSei:
      p |= kFlagI;
      break;
    case Op::kClv:
      p &= ~kFlagV;
      break;
    case Op::kCld:
      p &= ~kFlagD;
      break;
    case Op::kSed:
      p |= kFlagD;
      break;
    case Op::kJmp:
      pc = addr;
      break;
    case Op::kJsr: {
      std::uint16_t ret = static_cast<std::uint16_t>(pc - 1);
      Push(static_cast<std::uint8_t>(ret >> 8));
      Push(static_cast<std::uint8_t>(ret));
      pc = addr;
      break;
    }
    case Op::kRts:
      pc = static_cast<std::uint16_t>((Pop() | (Pop() << 8)) + 1);
      break;
    case Op::kRti: {
      p = static_cast<std::uint8_t>((Pop() | kFlagU) & ~kFlagB);
      std::uint8_t lo = Pop();
      pc = static_cast<std::uint16_t>(lo | (Pop() << 8));
      break;
    }
    case Op::kBrk: {
      ++pc;  // BRK has a padding byte
      Push(static_cast<std::uint8_t>(pc >> 8));
      Push(static_cast<std::uint8_t>(pc));
      Push(static_cast<std::uint8_t>(p | kFlagB | kFlagU));
      p |= kFlagI;
      pc = static_cast<std::uint16_t>(bus_.Read(0xfffe) | (bus_.Read(0xffff) << 8));
      break;
    }
    case Op::kBcc:
      Branch(!(p & kFlagC), rel, cycles);
      break;
    case Op::kBcs:
      Branch(p & kFlagC, rel, cycles);
      break;
    case Op::kBeq:
      Branch(p & kFlagZ, rel, cycles);
      break;
    case Op::kBne:
      Branch(!(p & kFlagZ), rel, cycles);
      break;
    case Op::kBmi:
      Branch(p & kFlagN, rel, cycles);
      break;
    case Op::kBpl:
      Branch(!(p & kFlagN), rel, cycles);
      break;
    case Op::kBvs:
      Branch(p & kFlagV, rel, cycles);
      break;
    case Op::kBvc:
      Branch(!(p & kFlagV), rel, cycles);
      break;
    case Op::kNop:
      break;
    case Op::kBad:
      break;
  }
  ++instructions_retired;
  return cycles;
}

std::uint64_t Cpu6502::Run(std::uint64_t max_instructions, std::uint16_t halt_pc) {
  std::uint64_t cycles = 0;
  for (std::uint64_t i = 0; i < max_instructions; ++i) {
    if (pc == halt_pc) {
      halted = true;
      break;
    }
    cycles += static_cast<std::uint64_t>(Step());
  }
  return cycles;
}

// --- mini-assembler ----------------------------------------------------------

namespace {

struct Operand {
  Mode mode = Mode::kImp;
  std::uint16_t value = 0;
  std::string label;  // unresolved symbol (abs or rel)
};

// Mnemonic -> (Op + the opcode for each mode). Built by inverting the table.
std::map<std::string, std::map<int, int>> BuildMnemonicMap() {
  static const char* kNames[] = {
      "ADC", "AND", "ASL", "BCC", "BCS", "BEQ", "BIT", "BMI", "BNE", "BPL", "BRK", "BVC",
      "BVS", "CLC", "CLD", "CLI", "CLV", "CMP", "CPX", "CPY", "DEC", "DEX", "DEY", "EOR",
      "INC", "INX", "INY", "JMP", "JSR", "LDA", "LDX", "LDY", "LSR", "NOP", "ORA", "PHA",
      "PHP", "PLA", "PLP", "ROL", "ROR", "RTI", "RTS", "SBC", "SEC", "SED", "SEI", "STA",
      "STX", "STY", "TAX", "TAY", "TSX", "TXA", "TXS", "TYA"};
  std::map<std::string, std::map<int, int>> out;
  for (int code = 0; code < 256; ++code) {
    const Decoded& d = g_opcodes.t[code];
    if (d.op == Op::kBad) {
      continue;
    }
    out[kNames[static_cast<int>(d.op)]][static_cast<int>(d.mode)] = code;
  }
  return out;
}

bool ParseNumber(const std::string& tok, std::uint16_t* out) {
  if (tok.empty()) {
    return false;
  }
  try {
    if (tok[0] == '$') {
      *out = static_cast<std::uint16_t>(std::stoul(tok.substr(1), nullptr, 16));
    } else if (tok[0] == '%') {
      *out = static_cast<std::uint16_t>(std::stoul(tok.substr(1), nullptr, 2));
    } else if (std::isdigit(static_cast<unsigned char>(tok[0]))) {
      *out = static_cast<std::uint16_t>(std::stoul(tok, nullptr, 10));
    } else {
      return false;
    }
  } catch (...) {
    return false;
  }
  return true;
}

std::string Upper(std::string s) {
  for (char& c : s) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return s;
}

std::string Strip(const std::string& s) {
  std::size_t a = s.find_first_not_of(" \t");
  if (a == std::string::npos) {
    return "";
  }
  std::size_t b = s.find_last_not_of(" \t");
  return s.substr(a, b - a + 1);
}

}  // namespace

std::optional<Assembled> Assemble6502(const std::string& source, std::string* error) {
  static const auto mnemonics = BuildMnemonicMap();
  std::map<std::string, std::uint16_t> labels;
  struct Line {
    std::string mnemonic;
    Operand operand;
    std::vector<std::uint8_t> raw;  // .byte payload
    int lineno;
  };
  auto fail = [error](int lineno, const std::string& msg) {
    if (error != nullptr) {
      *error = "line " + std::to_string(lineno) + ": " + msg;
    }
    return std::nullopt;
  };

  // Pass 1: parse lines, record label addresses by simulating sizes.
  std::vector<Line> lines;
  std::uint16_t origin = 0x8000;
  std::uint16_t addr = origin;
  bool any_code = false;  // a .org before any emission relocates the image
  std::istringstream in(source);
  std::string raw_line;
  int lineno = 0;
  while (std::getline(in, raw_line)) {
    ++lineno;
    std::string text = raw_line;
    std::size_t semi = text.find(';');
    if (semi != std::string::npos) {
      text = text.substr(0, semi);
    }
    text = Strip(text);
    if (text.empty()) {
      continue;
    }
    // Label prefix.
    std::size_t colon = text.find(':');
    if (colon != std::string::npos && text.find(' ') > colon) {
      std::string label = Upper(Strip(text.substr(0, colon)));
      labels[label] = addr;
      text = Strip(text.substr(colon + 1));
      if (text.empty()) {
        continue;
      }
    }
    // Directives.
    if (text[0] == '.') {
      std::istringstream ls(text);
      std::string dir;
      ls >> dir;
      dir = Upper(dir);
      if (dir == ".ORG") {
        std::string v;
        ls >> v;
        std::uint16_t value;
        if (!ParseNumber(v, &value)) {
          return fail(lineno, "bad .org operand");
        }
        if (!any_code) {
          origin = value;
        }
        addr = value;
        Line l;
        l.mnemonic = ".ORG";
        l.operand.value = value;
        l.lineno = lineno;
        lines.push_back(l);
        continue;
      }
      if (dir == ".BYTE") {
        Line l;
        l.mnemonic = ".BYTE";
        l.lineno = lineno;
        std::string rest;
        std::getline(ls, rest);
        std::istringstream vs(rest);
        std::string tok;
        while (std::getline(vs, tok, ',')) {
          std::uint16_t v;
          if (!ParseNumber(Strip(tok), &v) || v > 0xff) {
            return fail(lineno, "bad .byte value");
          }
          l.raw.push_back(static_cast<std::uint8_t>(v));
        }
        addr = static_cast<std::uint16_t>(addr + l.raw.size());
        any_code = true;
        lines.push_back(l);
        continue;
      }
      if (dir == ".WORD") {
        Line l;
        l.mnemonic = ".BYTE";  // lowered to bytes
        l.lineno = lineno;
        std::string rest;
        std::getline(ls, rest);
        std::istringstream vs(rest);
        std::string tok;
        while (std::getline(vs, tok, ',')) {
          std::string t = Upper(Strip(tok));
          std::uint16_t v = 0;
          if (!ParseNumber(t, &v)) {
            auto it = labels.find(t);
            if (it == labels.end()) {
              return fail(lineno, ".word forward references unsupported");
            }
            v = it->second;
          }
          l.raw.push_back(static_cast<std::uint8_t>(v));
          l.raw.push_back(static_cast<std::uint8_t>(v >> 8));
        }
        addr = static_cast<std::uint16_t>(addr + l.raw.size());
        any_code = true;
        lines.push_back(l);
        continue;
      }
      return fail(lineno, "unknown directive " + dir);
    }
    // Instruction.
    std::istringstream ls(text);
    std::string mn;
    ls >> mn;
    mn = Upper(mn);
    auto mit = mnemonics.find(mn);
    if (mit == mnemonics.end()) {
      return fail(lineno, "unknown mnemonic " + mn);
    }
    std::string op_text;
    std::getline(ls, op_text);
    op_text = Strip(op_text);
    Operand operand;
    const auto& modes = mit->second;
    auto has = [&modes](Mode m) { return modes.count(static_cast<int>(m)) != 0; };
    if (op_text.empty()) {
      operand.mode = Mode::kImp;
    } else if (op_text == "A" || op_text == "a") {
      operand.mode = Mode::kImp;
    } else if (op_text[0] == '#') {
      operand.mode = Mode::kImm;
      std::uint16_t v;
      if (!ParseNumber(op_text.substr(1), &v) || v > 0xff) {
        return fail(lineno, "bad immediate");
      }
      operand.value = v;
    } else if (op_text[0] == '(') {
      std::string inner = Upper(Strip(op_text.substr(1)));
      if (inner.size() > 3 && inner.compare(inner.size() - 3, 3, ",X)") == 0) {
        operand.mode = Mode::kIzx;
        inner = Strip(inner.substr(0, inner.size() - 3));
      } else if (inner.size() > 3 && inner.compare(inner.size() - 3, 3, "),Y") == 0) {
        operand.mode = Mode::kIzy;
        inner = Strip(inner.substr(0, inner.size() - 3));
      } else if (!inner.empty() && inner.back() == ')') {
        operand.mode = Mode::kInd;
        inner = Strip(inner.substr(0, inner.size() - 1));
      } else {
        return fail(lineno, "bad indirect operand");
      }
      if (!ParseNumber(inner, &operand.value)) {
        operand.label = inner;
      }
    } else {
      std::string t = Upper(op_text);
      bool idx_x = false, idx_y = false;
      if (t.size() > 2 && t.compare(t.size() - 2, 2, ",X") == 0) {
        idx_x = true;
        t = Strip(t.substr(0, t.size() - 2));
      } else if (t.size() > 2 && t.compare(t.size() - 2, 2, ",Y") == 0) {
        idx_y = true;
        t = Strip(t.substr(0, t.size() - 2));
      }
      std::uint16_t v = 0;
      bool is_num = ParseNumber(t, &v);
      if (!is_num) {
        operand.label = t;
        v = 0xffff;  // force absolute sizing for labels
      }
      operand.value = v;
      if (has(Mode::kRel)) {
        operand.mode = Mode::kRel;
      } else if (is_num && v <= 0xff && !idx_y && has(Mode::kZpX) && idx_x) {
        operand.mode = Mode::kZpX;
      } else if (is_num && v <= 0xff && idx_y && has(Mode::kZpY)) {
        operand.mode = Mode::kZpY;
      } else if (is_num && v <= 0xff && !idx_x && !idx_y && has(Mode::kZp)) {
        operand.mode = Mode::kZp;
      } else if (idx_x) {
        operand.mode = Mode::kAbsX;
      } else if (idx_y) {
        operand.mode = Mode::kAbsY;
      } else {
        operand.mode = Mode::kAbs;
      }
    }
    if (!has(operand.mode)) {
      return fail(lineno, mn + " does not support that addressing mode");
    }
    Line l;
    l.mnemonic = mn;
    l.operand = operand;
    l.lineno = lineno;
    any_code = true;
    lines.push_back(l);
    int size = 1;
    switch (operand.mode) {
      case Mode::kImp:
        size = 1;
        break;
      case Mode::kImm:
      case Mode::kZp:
      case Mode::kZpX:
      case Mode::kZpY:
      case Mode::kIzx:
      case Mode::kIzy:
      case Mode::kRel:
        size = 2;
        break;
      default:
        size = 3;
        break;
    }
    addr = static_cast<std::uint16_t>(addr + size);
  }

  // Pass 2: emit.
  Assembled out;
  out.origin = origin;
  addr = origin;
  for (const Line& l : lines) {
    if (l.mnemonic == ".ORG") {
      // Pad forward within the image.
      if (l.operand.value < addr && !out.bytes.empty()) {
        return fail(l.lineno, ".org going backwards");
      }
      while (addr < l.operand.value) {
        out.bytes.push_back(0);
        ++addr;
      }
      continue;
    }
    if (l.mnemonic == ".BYTE") {
      out.bytes.insert(out.bytes.end(), l.raw.begin(), l.raw.end());
      addr = static_cast<std::uint16_t>(addr + l.raw.size());
      continue;
    }
    Operand operand = l.operand;
    if (!operand.label.empty()) {
      auto it = labels.find(operand.label);
      if (it == labels.end()) {
        return fail(l.lineno, "undefined label " + operand.label);
      }
      operand.value = it->second;
    }
    int opcode = mnemonics.at(l.mnemonic).at(static_cast<int>(operand.mode));
    out.bytes.push_back(static_cast<std::uint8_t>(opcode));
    switch (operand.mode) {
      case Mode::kImp:
        addr = static_cast<std::uint16_t>(addr + 1);
        break;
      case Mode::kImm:
      case Mode::kZp:
      case Mode::kZpX:
      case Mode::kZpY:
      case Mode::kIzx:
      case Mode::kIzy:
        out.bytes.push_back(static_cast<std::uint8_t>(operand.value));
        addr = static_cast<std::uint16_t>(addr + 2);
        break;
      case Mode::kRel: {
        std::uint16_t next = static_cast<std::uint16_t>(addr + 2);
        std::int32_t delta = static_cast<std::int32_t>(operand.value) - next;
        if (delta < -128 || delta > 127) {
          return fail(l.lineno, "branch target out of range");
        }
        out.bytes.push_back(static_cast<std::uint8_t>(delta));
        addr = next;
        break;
      }
      default:
        out.bytes.push_back(static_cast<std::uint8_t>(operand.value));
        out.bytes.push_back(static_cast<std::uint8_t>(operand.value >> 8));
        addr = static_cast<std::uint16_t>(addr + 3);
        break;
    }
  }
  return out;
}

}  // namespace vos
