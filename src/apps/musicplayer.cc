// Music player (§4.4): decodes VOG (the OGG substitute) and streams samples
// to /dev/sb while showing the embedded album cover — the app that exercises
// the producer/consumer audio pipeline (app -> driver ring -> DMA -> PWM) and
// whose glitches surface as driver underruns.
#include <vector>

#include "src/media/vog.h"
#include "src/ulib/minisdl.h"
#include "src/ulib/pnglite.h"
#include "src/ulib/bmp.h"
#include "src/ulib/ustdio.h"
#include "src/ulib/usys.h"

namespace vos {
namespace {

int MusicMain(AppEnv& env) {
  if (env.argv.size() < 2) {
    uprintf(env, "usage: musicplayer file.vog [--window]\n");
    return 1;
  }
  std::vector<std::uint8_t> data;
  if (uread_file(env, env.argv[1], &data) <= 0) {
    uprintf(env, "musicplayer: cannot open %s\n", env.argv[1].c_str());
    return 1;
  }
  VogDecoder dec;
  if (!dec.Open(data.data(), data.size())) {
    uprintf(env, "musicplayer: not a VOG file\n");
    return 1;
  }
  bool window = false;
  for (const std::string& a : env.argv) {
    if (a == "--window") {
      window = true;
    }
  }

  // Album cover display.
  MiniSdl sdl(env);
  if (window &&
      sdl.InitVideo(240, 200, MiniSdl::VideoMode::kSurface, "music", 255, 60, 40)) {
    PixelBuffer bb = sdl.backbuffer();
    FillRect(env, bb, 0, 0, 240, 200, Rgb(24, 24, 32));
    std::vector<std::uint8_t> art = dec.Art();
    if (!art.empty()) {
      auto img = PngDecode(art.data(), art.size());
      if (!img) {
        img = BmpDecode(art.data(), art.size());
      }
      if (img) {
        UBurn(env, double(art.size()) * 14.0);  // PNG inflate + defilter
        PixelBuffer src{img->pixels.data(), img->width, img->height};
        BlitScaled(env, bb, 40, 20, 160, 160, src);
      }
    }
    DrawText(env, bb, 8, 4, "NOW PLAYING", Rgb(120, 220, 160), 1);
    sdl.Present();
  }

  std::int64_t fd = uopen(env, "/dev/sb", kOWronly);
  if (fd < 0) {
    uprintf(env, "musicplayer: no sound device\n");
    return 1;
  }
  // Decode + stream in chunks; uwrite blocks when the driver ring is full,
  // pacing decode to playback.
  constexpr std::uint32_t kChunkFrames = 2048;
  std::vector<std::int16_t> pcm(std::size_t(kChunkFrames) * dec.info().channels);
  std::uint64_t total = 0;
  for (;;) {
    std::uint32_t n = dec.Decode(pcm.data(), kChunkFrames);
    if (n == 0) {
      break;
    }
    // ADPCM decode cost: ~14 cycles/sample on the A53.
    UBurn(env, double(n) * dec.info().channels * 14.0);
    std::uint32_t bytes = n * dec.info().channels * 2;
    if (uwrite(env, static_cast<int>(fd), pcm.data(), bytes) < 0) {
      break;
    }
    total += n;
  }
  uclose(env, static_cast<int>(fd));
  uprintf(env, "musicplayer: played %llu frames\n", static_cast<unsigned long long>(total));
  return 0;
}

AppRegistrar music_app("musicplayer", MusicMain, 16800, 8 << 20);

}  // namespace
}  // namespace vos
