// launcher (Table 1): the GUI frontend — an animated-background menu of
// installed apps; arrow keys move the selection, enter forks+execs the
// choice. Runs in a WM surface like a desktop shell.
#include <vector>

#include "src/kernel/kernel.h"
#include "src/ulib/minisdl.h"
#include "src/ulib/pixel.h"
#include "src/ulib/ustdio.h"
#include "src/ulib/usys.h"

namespace vos {
namespace {

struct MenuItem {
  const char* label;
  const char* binary;
  const char* args;
};

const MenuItem kMenu[] = {
    {"MARIO", "mario-sdl", ""},        {"DOOM", "doomlike", "--demo"},
    {"MUSIC", "musicplayer", "/d/music/track1.vog"},
    {"VIDEO", "videoplayer", "/d/videos/clip480.vmv"},
    {"SLIDES", "slider", "/slides"},   {"SYSMON", "sysmon", ""},
    {"MINER", "blockchain", ""},       {"SHELL", "sh", ""},
};
constexpr int kMenuLen = static_cast<int>(sizeof(kMenu) / sizeof(kMenu[0]));

int LauncherMain(AppEnv& env) {
  int frames = 240;
  for (std::size_t i = 1; i < env.argv.size(); ++i) {
    if (env.argv[i] == "--frames" && i + 1 < env.argv.size()) {
      frames = std::atoi(env.argv[i + 1].c_str());
    }
  }
  MiniSdl sdl(env);
  constexpr std::uint32_t kW = 360, kH = 300;
  if (!sdl.InitVideo(kW, kH, MiniSdl::VideoMode::kSurface, "launcher", 255, 8, 8)) {
    uprintf(env, "launcher: no window manager\n");
    return 1;
  }
  PixelBuffer bb = sdl.backbuffer();
  int selected = 0;
  Kernel* kernel = env.kernel;
  for (int f = 0; f < frames; ++f) {
    KeyEvent ev;
    while (sdl.PollEvent(&ev)) {
      if (!ev.down) {
        continue;
      }
      if (ev.code == kKeyDown) {
        selected = (selected + 1) % kMenuLen;
      } else if (ev.code == kKeyUp) {
        selected = (selected + kMenuLen - 1) % kMenuLen;
      } else if (ev.code == kKeyEnter || ev.code == kKeyBtnStart) {
        const MenuItem& item = kMenu[selected];
        std::vector<std::string> argv = {item.binary};
        if (item.args[0] != '\0') {
          argv.push_back(item.args);
        }
        ufork(env, [kernel, argv]() -> int {
          AppEnv child = ChildEnv(kernel);
          uexec(child, "/bin/" + argv[0], argv);
          return 127;
        });
      }
    }
    // Animated plasma-ish background.
    for (std::uint32_t y = 0; y < kH; y += 4) {
      for (std::uint32_t x = 0; x < kW; x += 4) {
        std::uint32_t wave = ((x + std::uint32_t(f) * 3) ^ (y + std::uint32_t(f))) & 63;
        FillRect(env, bb, static_cast<int>(x), static_cast<int>(y), 4, 4,
                 Rgb(static_cast<std::uint8_t>(16 + wave / 4),
                     static_cast<std::uint8_t>(20 + wave / 3),
                     static_cast<std::uint8_t>(48 + wave)));
      }
    }
    UBurn(env, 500000);  // background animation math
    DrawText(env, bb, 110, 10, "* VOS *", Rgb(255, 255, 255), 2);
    for (int i = 0; i < kMenuLen; ++i) {
      std::uint32_t color = i == selected ? Rgb(255, 230, 90) : Rgb(190, 190, 200);
      if (i == selected) {
        FillRect(env, bb, 56, 48 + i * 28 - 3, 248, 22, Rgb(50, 60, 90));
        DrawText(env, bb, 64, 48 + i * 28, ">", color, 2);
      }
      DrawText(env, bb, 88, 48 + i * 28, kMenu[i].label, color, 2);
    }
    sdl.Present();
    sdl.Delay(33);
    // Reap any finished children without blocking.
    // (wait() blocks, so only reap when a child exists and has exited —
    //  launcher polls /proc in a real system; here we skip reaping until exit.)
  }
  // Reap whatever we spawned before leaving.
  int status = 0;
  while (uwait(env, &status) >= 0) {
  }
  return 0;
}

AppRegistrar launcher_app("launcher", LauncherMain, 6800, 2 << 20);

}  // namespace
}  // namespace vos
