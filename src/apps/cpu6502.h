// MOS 6502 CPU core — the processor inside the NES that the paper's LiteNES
// engine emulates (§3). Implements the full documented instruction set (151
// opcodes, all addressing modes, decimal mode excluded as on the NES's 2A03),
// with cycle counting and page-cross penalties. The litenes app runs real
// 6502 machine code against a memory-mapped framebuffer; the in-tree
// mini-assembler generates test programs and ROMs.
#ifndef VOS_SRC_APPS_CPU6502_H_
#define VOS_SRC_APPS_CPU6502_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace vos {

// 64 KB bus with pluggable MMIO hooks.
class Bus6502 {
 public:
  using ReadHook = std::function<std::optional<std::uint8_t>(std::uint16_t)>;
  using WriteHook = std::function<bool(std::uint16_t, std::uint8_t)>;

  Bus6502() : ram_(0x10000, 0) {}

  std::uint8_t Read(std::uint16_t addr) const;
  void Write(std::uint16_t addr, std::uint8_t v);

  // Hooks see every access first; a hook that handles it short-circuits RAM.
  void SetReadHook(ReadHook h) { read_hook_ = std::move(h); }
  void SetWriteHook(WriteHook h) { write_hook_ = std::move(h); }

  void Load(std::uint16_t addr, const std::vector<std::uint8_t>& bytes);
  std::uint8_t* ram() { return ram_.data(); }

 private:
  std::vector<std::uint8_t> ram_;
  ReadHook read_hook_;
  WriteHook write_hook_;
};

// Status flags.
enum P6502 : std::uint8_t {
  kFlagC = 0x01,
  kFlagZ = 0x02,
  kFlagI = 0x04,
  kFlagD = 0x08,
  kFlagB = 0x10,
  kFlagU = 0x20,  // always set
  kFlagV = 0x40,
  kFlagN = 0x80,
};

class Cpu6502 {
 public:
  explicit Cpu6502(Bus6502& bus) : bus_(bus) { Reset(); }

  // Loads PC from the reset vector ($FFFC/D), as the silicon does.
  void Reset();

  // Executes one instruction; returns its cycle count. BRK pushes state and
  // vectors through $FFFE. Unknown (undocumented) opcodes throw.
  int Step();

  // Runs until a BRK with the halt hook set, `max_instructions` elapse, or
  // the PC lands on `halt_pc`. Returns total cycles.
  std::uint64_t Run(std::uint64_t max_instructions, std::uint16_t halt_pc = 0xffff);

  // Hardware interrupts.
  void Irq();
  void Nmi();

  // Register file (exposed for tests and the debugger).
  std::uint8_t a = 0, x = 0, y = 0, sp = 0xfd, p = kFlagU | kFlagI;
  std::uint16_t pc = 0;
  bool halted = false;  // set when Run() stops on halt_pc or BRK-at-BRK

  std::uint64_t instructions_retired = 0;

 private:
  std::uint8_t Fetch() { return bus_.Read(pc++); }
  std::uint16_t Fetch16();
  void Push(std::uint8_t v);
  std::uint8_t Pop();
  void SetZN(std::uint8_t v);
  void Branch(bool take, std::uint8_t rel, int& cycles);
  void Adc(std::uint8_t operand);
  void Compare(std::uint8_t reg, std::uint8_t operand);

  Bus6502& bus_;
};

// Mini-assembler for the documented instruction set: one instruction or
// label per line ("loop: LDA #$10", "BNE loop", ".org $8000", ".byte 1,2").
// Returns nullopt (with *error set) on bad input. Two-pass; labels resolve
// forward references.
struct Assembled {
  std::uint16_t origin = 0x8000;
  std::vector<std::uint8_t> bytes;
};
std::optional<Assembled> Assemble6502(const std::string& source, std::string* error);

}  // namespace vos

#endif  // VOS_SRC_APPS_CPU6502_H_
