// term: a graphical terminal — the shell running in a window (Figure 1(m)'s
// desktop look). Wires three Prototype-5 mechanisms together: pipes (the
// shell's stdio), the window manager (a surface + focused-key routing via
// /dev/event1), and the TextConsole widget rendered with the 8x8 font.
#include <string>

#include "src/kernel/kernel.h"
#include "src/ulib/console.h"
#include "src/ulib/minisdl.h"
#include "src/ulib/usys.h"
#include "src/ulib/ustdio.h"

namespace vos {
namespace {

char KeyToChar(const KeyEvent& ev) {
  if (ev.code >= kKeyA && ev.code <= kKeyZ) {
    char c = static_cast<char>('a' + (ev.code - kKeyA));
    if (ev.modifiers & 0x02) {  // shift
      c = static_cast<char>(c - 'a' + 'A');
    }
    return c;
  }
  if (ev.code >= kKey0 && ev.code <= kKey0 + 9) {
    return static_cast<char>('0' + (ev.code - kKey0));
  }
  switch (ev.code) {
    case kKeySpace:
      return ' ';
    case kKeyEnter:
      return '\n';
    case kKeyBackspace:
      return '\b';
    default:
      return '\0';
  }
}

int TermMain(AppEnv& env) {
  int frames = 100000;
  std::string script;
  for (std::size_t i = 1; i < env.argv.size(); ++i) {
    if (env.argv[i] == "--frames" && i + 1 < env.argv.size()) {
      frames = std::atoi(env.argv[i + 1].c_str());
    } else if (env.argv[i] == "--type" && i + 1 < env.argv.size()) {
      script = env.argv[i + 1];  // pre-typed input (tests/demos)
    }
  }
  MiniSdl sdl(env);
  constexpr std::uint32_t kCols = 48, kRows = 16;
  if (!sdl.InitVideo(kCols * 8 + 8, kRows * 9 + 8, MiniSdl::VideoMode::kSurface, "term",
                     255, 120, 140)) {
    uprintf(env, "term: no window manager\n");
    return 1;
  }

  // Shell stdio: stdin pipe (we write keys) and stdout pipe (we render).
  int in_pipe[2], out_pipe[2];
  if (upipe(env, in_pipe) < 0 || upipe(env, out_pipe) < 0) {
    return 1;
  }
  Kernel* kernel = env.kernel;
  std::int64_t shell_pid =
      ufork(env, [kernel, in_r = in_pipe[0], out_w = out_pipe[1]]() -> int {
        AppEnv child = ChildEnv(kernel);
        uclose(child, 0);
        udup(child, in_r);  // -> fd 0
        uclose(child, 1);
        udup(child, out_w);  // -> fd 1
        // Drop inherited pipe fds above the stdio slots.
        for (int fd = 3; fd < 16; ++fd) {
          FilePtr f = fd < static_cast<int>(child.task->fds.size())
                          ? child.task->fds[static_cast<std::size_t>(fd)]
                          : nullptr;
          if (f != nullptr && f->kind == FileKind::kPipe) {
            uclose(child, fd);
          }
        }
        uexec(child, "/bin/sh", {"sh"});
        return 127;
      });
  if (shell_pid < 0) {
    return 1;
  }
  uclose(env, in_pipe[0]);
  uclose(env, out_pipe[1]);
  // Non-blocking stdout drain.
  env.task->fds[static_cast<std::size_t>(out_pipe[0])]->nonblock = true;

  // Pre-typed input goes in up front (the pipe buffers a line comfortably).
  if (!script.empty()) {
    uwrite(env, in_pipe[1], script.data(), static_cast<std::uint32_t>(script.size()));
  }

  TextConsole console(kCols, kRows);
  PixelBuffer bb = sdl.backbuffer();
  bool dirty = true;
  for (int f = 0; f < frames; ++f) {
    // Keys (focused-window routing) -> shell stdin.
    KeyEvent ev;
    while (sdl.PollEvent(&ev)) {
      if (!ev.down) {
        continue;
      }
      char c = KeyToChar(ev);
      if (c != '\0') {
        uwrite(env, in_pipe[1], &c, 1);
        if (c != '\n') {
          console.Put(c);  // local echo
          dirty = true;
        }
      }
    }
    // Shell stdout -> console.
    char buf[256];
    std::int64_t n;
    while ((n = uread(env, out_pipe[0], buf, sizeof(buf))) > 0) {
      console.Write(std::string(buf, static_cast<std::size_t>(n)));
      dirty = true;
    }
    if (n == 0) {
      break;  // shell exited, stdout closed
    }
    if (dirty) {
      FillRect(env, bb, 0, 0, static_cast<int>(bb.width), static_cast<int>(bb.height),
               Rgb(16, 18, 24));
      console.Render(env, bb, 4, 4, 1, Rgb(140, 240, 150), Rgb(16, 18, 24));
      sdl.Present();
      dirty = false;
    }
    sdl.Delay(16);
  }
  // Shut the shell down and reap it.
  uclose(env, in_pipe[1]);  // EOF on its stdin
  int status = 0;
  uwait(env, &status);
  uclose(env, out_pipe[0]);
  return 0;
}

AppRegistrar term_app("term", TermMain, 5200, 2 << 20);

}  // namespace
}  // namespace vos
