// slider (Table 1): presents slide decks — BMP, PNG and GIF files from a
// directory — intended for OS builders to present their own designs (§3).
// Prototype 5 handles high-resolution PNGs from the FAT partition.
#include <algorithm>
#include <vector>

#include "src/ulib/bmp.h"
#include "src/ulib/giflite.h"
#include "src/ulib/minisdl.h"
#include "src/ulib/pnglite.h"
#include "src/ulib/ustdio.h"
#include "src/ulib/usys.h"

namespace vos {
namespace {

bool EndsWith(const std::string& s, const char* suffix) {
  std::string suf(suffix);
  return s.size() >= suf.size() && s.compare(s.size() - suf.size(), suf.size(), suf) == 0;
}

int SliderMain(AppEnv& env) {
  std::string dir = env.argv.size() > 1 ? env.argv[1] : "/slides";
  std::uint64_t dwell_ms = 800;
  int loops = 1;
  for (std::size_t i = 1; i < env.argv.size(); ++i) {
    if (env.argv[i] == "--dwell" && i + 1 < env.argv.size()) {
      dwell_ms = static_cast<std::uint64_t>(std::atoi(env.argv[i + 1].c_str()));
    }
  }
  std::vector<DirEntryInfo> entries;
  if (ureaddir(env, dir, &entries) < 0) {
    uprintf(env, "slider: cannot open %s\n", dir.c_str());
    return 1;
  }
  std::vector<std::string> slides;
  for (const DirEntryInfo& e : entries) {
    if (EndsWith(e.name, ".bmp") || EndsWith(e.name, ".png") || EndsWith(e.name, ".gif")) {
      slides.push_back(dir + "/" + e.name);
    }
  }
  std::sort(slides.begin(), slides.end());
  if (slides.empty()) {
    uprintf(env, "slider: no slides in %s\n", dir.c_str());
    return 1;
  }

  std::uint32_t* fb = nullptr;
  std::uint32_t fw = 0, fh = 0;
  if (ummap_fb(env, &fb, &fw, &fh) < 0) {
    return 1;
  }
  PixelBuffer screen{fb, fw, fh};
  int shown = 0;
  for (int loop = 0; loop < loops; ++loop) {
    for (const std::string& path : slides) {
      std::vector<std::uint8_t> raw;
      if (uread_file(env, path, &raw) <= 0) {
        continue;
      }
      if (EndsWith(path, ".gif")) {
        auto anim = GifDecode(raw.data(), raw.size());
        if (!anim) {
          continue;
        }
        UBurn(env, double(raw.size()) * 9.0);  // LZW decode
        for (std::size_t f = 0; f < anim->frames.size(); ++f) {
          PixelBuffer src{anim->frames[f].pixels.data(), anim->width, anim->height};
          BlitScaled(env, screen, 0, 0, static_cast<int>(fw), static_cast<int>(fh), src);
          ucacheflush(env, 0, std::uint64_t(fw) * fh * 4);
          usleep_ms(env, std::max<std::uint32_t>(anim->delays_ms[f], 30));
        }
      } else {
        std::optional<Image> img = EndsWith(path, ".png")
                                       ? PngDecode(raw.data(), raw.size())
                                       : BmpDecode(raw.data(), raw.size());
        if (!img) {
          uprintf(env, "slider: cannot decode %s\n", path.c_str());
          continue;
        }
        UBurn(env, double(raw.size()) * (EndsWith(path, ".png") ? 14.0 : 1.2));
        PixelBuffer src{img->pixels.data(), img->width, img->height};
        BlitScaled(env, screen, 0, 0, static_cast<int>(fw), static_cast<int>(fh), src);
        ucacheflush(env, 0, std::uint64_t(fw) * fh * 4);
        usleep_ms(env, dwell_ms);
      }
      ++shown;
    }
  }
  uprintf(env, "slider: showed %d slides\n", shown);
  return 0;
}

AppRegistrar slider_app("slider", SliderMain, 9400, 16 << 20);

}  // namespace
}  // namespace vos
