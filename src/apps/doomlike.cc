#include "src/apps/doomlike.h"

#include <cmath>
#include <cstring>

#include "src/kernel/kernel.h"
#include "src/ulib/usys.h"
#include "src/ulib/ustdio.h"

namespace vos {

std::string DoomEngine::BuiltinWad() {
  return "111111111111111111111111\n"
         "1......2......3........1\n"
         "1.1111.2.3333.3.222222.1\n"
         "1.1..1.2.3..3.3.2....2.1\n"
         "1.1..1.2.3..3...2.M..2.1\n"
         "1.1111.2.3333.3.222222.1\n"
         "1......2......3........1\n"
         "1.22222222....33333333.1\n"
         "1.2...M..2....3......3.1\n"
         "1.2......2....3..M...3.1\n"
         "1.22222..2....333..333.1\n"
         "1.....2..2......3..3...1\n"
         "11111.2..2222...3..3.111\n"
         "1...1.2.....2...3..3...1\n"
         "1.M.1.222...2..33..333.1\n"
         "1...1...2.M.2..3.....3.1\n"
         "1.111...2...2..3..M..3.1\n"
         "1.1..4444444444444...3.1\n"
         "1.1..4..........4..333.1\n"
         "1.1..4..X....M..4......1\n"
         "1.1..4..........4.2222.1\n"
         "1.P..44444444444..2....1\n"
         "1.................2..M.1\n"
         "111111111111111111111111\n";
}

bool DoomEngine::LoadWad(const std::string& wad) {
  map_.clear();
  monsters_.clear();
  std::size_t pos = 0;
  while (pos < wad.size()) {
    std::size_t nl = wad.find('\n', pos);
    std::string row = nl == std::string::npos ? wad.substr(pos) : wad.substr(pos, nl - pos);
    pos = nl == std::string::npos ? wad.size() : nl + 1;
    if (!row.empty()) {
      map_.push_back(row);
    }
  }
  mh_ = static_cast<int>(map_.size());
  mw_ = 0;
  for (const std::string& r : map_) {
    mw_ = std::max(mw_, static_cast<int>(r.size()));
  }
  if (mw_ < 8 || mh_ < 8) {
    return false;
  }
  for (int y = 0; y < mh_; ++y) {
    for (int x = 0; x < static_cast<int>(map_[std::size_t(y)].size()); ++x) {
      char c = map_[std::size_t(y)][std::size_t(x)];
      if (c == 'P') {
        px_ = x + 0.5;
        py_ = y + 0.5;
        map_[std::size_t(y)][std::size_t(x)] = '.';
      } else if (c == 'M') {
        monsters_.push_back(Monster{x + 0.5, y + 0.5, true});
        map_[std::size_t(y)][std::size_t(x)] = '.';
      }
    }
  }
  frames_ = 0;
  health_ = 100;
  kills_ = 0;
  finished_ = false;
  return true;
}

char DoomEngine::MapAt(int x, int y) const {
  if (x < 0 || y < 0 || y >= mh_ || x >= mw_) {
    return '1';
  }
  const std::string& row = map_[std::size_t(y)];
  return x < static_cast<int>(row.size()) ? row[std::size_t(x)] : '1';
}

DoomInput DoomEngine::AutoplayInput(std::uint64_t frame) const {
  // Demo loop: walk forward, steering away from walls, firing in bursts.
  DoomInput in;
  in.forward = true;
  double look_x = px_ + std::cos(angle_) * 0.9;
  double look_y = py_ + std::sin(angle_) * 0.9;
  if (Solid(static_cast<int>(look_x), static_cast<int>(look_y))) {
    in.turn_right = true;
    in.forward = false;
  } else if ((frame / 90) % 4 == 3) {
    in.turn_left = true;
  }
  in.fire = (frame % 35) < 2;
  return in;
}

void DoomEngine::Step(AppEnv& env, const DoomInput& in) {
  ++frames_;
  const double turn = 0.045, speed = 0.07;
  if (in.turn_left) {
    angle_ -= turn;
  }
  if (in.turn_right) {
    angle_ += turn;
  }
  double dx = 0, dy = 0;
  if (in.forward) {
    dx += std::cos(angle_) * speed;
    dy += std::sin(angle_) * speed;
  }
  if (in.back) {
    dx -= std::cos(angle_) * speed;
    dy -= std::sin(angle_) * speed;
  }
  // Wall sliding.
  if (!Solid(static_cast<int>(px_ + dx), static_cast<int>(py_))) {
    px_ += dx;
  }
  if (!Solid(static_cast<int>(px_), static_cast<int>(py_ + dy))) {
    py_ += dy;
  }
  if (MapAt(static_cast<int>(px_), static_cast<int>(py_)) == 'X') {
    finished_ = true;
  }

  if (fire_cooldown_ > 0) {
    fire_cooldown_ -= 1;
  }
  muzzle_flash_ = std::max(0.0, muzzle_flash_ - 1);
  if (in.fire && fire_cooldown_ <= 0 && ammo_ > 0) {
    fire_cooldown_ = 12;
    muzzle_flash_ = 3;
    --ammo_;
    // Hitscan: march along the view ray until a wall or a monster.
    for (double t = 0.2; t < 20.0; t += 0.1) {
      double hx = px_ + std::cos(angle_) * t;
      double hy = py_ + std::sin(angle_) * t;
      if (Solid(static_cast<int>(hx), static_cast<int>(hy))) {
        break;
      }
      bool hit = false;
      for (Monster& m : monsters_) {
        if (m.alive && std::abs(m.x - hx) < 0.4 && std::abs(m.y - hy) < 0.4) {
          m.alive = false;
          ++kills_;
          hit = true;
          break;
        }
      }
      if (hit) {
        break;
      }
    }
  }

  // Monster AI: chase the player when in line of sight; melee damage.
  for (Monster& m : monsters_) {
    if (!m.alive) {
      continue;
    }
    double mdx = px_ - m.x, mdy = py_ - m.y;
    double dist = std::sqrt(mdx * mdx + mdy * mdy);
    if (dist > 0.8 && dist < 8.0) {
      double step = 0.02;
      double nx = m.x + mdx / dist * step;
      double ny = m.y + mdy / dist * step;
      if (!Solid(static_cast<int>(nx), static_cast<int>(ny))) {
        m.x = nx;
        m.y = ny;
      }
    } else if (dist <= 0.8 && frames_ % 30 == 0) {
      health_ = std::max(0, health_ - 5);
    }
  }

  // Game-tic cost: thinkers, collision, sound propagation bookkeeping.
  UBurn(env, 2400000 + monsters_.size() * 42000.0);
}

std::uint32_t DoomEngine::TexSample(int wall_type, double u, double v, double dist) const {
  // Procedural 64x64 textures per wall type; distance-shaded.
  int tu = static_cast<int>(u * 64) & 63;
  int tv = static_cast<int>(v * 64) & 63;
  std::uint32_t base;
  switch (wall_type) {
    case 1:  // brick
      base = ((tv % 16) < 2 || ((tu + (tv / 16 % 2) * 8) % 16) < 2) ? 0x5a2a20 : 0xa04030;
      break;
    case 2:  // stone blocks
      base = ((tu % 32) < 2 || (tv % 32) < 2) ? 0x3a3a40 : 0x707078;
      break;
    case 3:  // hex metal
      base = (((tu ^ tv) & 8) != 0) ? 0x3f5a3f : 0x2c402c;
      break;
    default:  // tech panel
      base = ((tv & 7) == 0 || (tu & 15) == 0) ? 0x303050 : 0x5050a0;
      break;
  }
  double shade = 1.0 / (1.0 + dist * 0.18);
  std::uint32_t r = static_cast<std::uint32_t>(((base >> 16) & 0xff) * shade);
  std::uint32_t g = static_cast<std::uint32_t>(((base >> 8) & 0xff) * shade);
  std::uint32_t b = static_cast<std::uint32_t>((base & 0xff) * shade);
  return 0xff000000u | (r << 16) | (g << 8) | b;
}

void DoomEngine::Render(AppEnv& env, PixelBuffer out) {
  const std::uint32_t w = out.width, h = out.height;
  // Ceiling & floor.
  for (std::uint32_t y = 0; y < h / 2; ++y) {
    std::uint32_t shade = 40 + y * 30 / (h / 2);
    std::fill(out.data + std::size_t(y) * w, out.data + std::size_t(y + 1) * w,
              Rgb(static_cast<std::uint8_t>(shade / 2), static_cast<std::uint8_t>(shade / 2),
                  static_cast<std::uint8_t>(shade)));
  }
  for (std::uint32_t y = h / 2; y < h; ++y) {
    std::uint32_t shade = 30 + (y - h / 2) * 50 / (h / 2);
    std::fill(out.data + std::size_t(y) * w, out.data + std::size_t(y + 1) * w,
              Rgb(static_cast<std::uint8_t>(shade), static_cast<std::uint8_t>(shade * 3 / 4),
                  static_cast<std::uint8_t>(shade / 2)));
  }

  // Walls: one DDA ray per column.
  std::uint64_t total_steps = 0;
  std::uint64_t wall_pixels = 0;
  const double fov = 1.05;  // ~60 degrees
  for (std::uint32_t x = 0; x < w; ++x) {
    double ray_a = angle_ + std::atan((double(x) / w - 0.5) * 2 * std::tan(fov / 2));
    double rdx = std::cos(ray_a), rdy = std::sin(ray_a);
    int map_x = static_cast<int>(px_), map_y = static_cast<int>(py_);
    double delta_x = rdx == 0 ? 1e30 : std::abs(1.0 / rdx);
    double delta_y = rdy == 0 ? 1e30 : std::abs(1.0 / rdy);
    int step_x = rdx < 0 ? -1 : 1, step_y = rdy < 0 ? -1 : 1;
    double side_x = rdx < 0 ? (px_ - map_x) * delta_x : (map_x + 1.0 - px_) * delta_x;
    double side_y = rdy < 0 ? (py_ - map_y) * delta_y : (map_y + 1.0 - py_) * delta_y;
    int side = 0;
    char wall = '1';
    for (int guard = 0; guard < 64; ++guard) {
      if (side_x < side_y) {
        side_x += delta_x;
        map_x += step_x;
        side = 0;
      } else {
        side_y += delta_y;
        map_y += step_y;
        side = 1;
      }
      ++total_steps;
      char c = MapAt(map_x, map_y);
      if (c >= '1' && c <= '4') {
        wall = c;
        break;
      }
    }
    double dist = side == 0 ? side_x - delta_x : side_y - delta_y;
    // Fisheye correction.
    dist *= std::cos(ray_a - angle_);
    dist = std::max(dist, 0.05);
    zbuffer_[x] = dist;
    int line_h = static_cast<int>(h / dist);
    int y0 = std::max(0, static_cast<int>(h) / 2 - line_h / 2);
    int y1 = std::min(static_cast<int>(h) - 1, static_cast<int>(h) / 2 + line_h / 2);
    double wall_u = side == 0 ? py_ + (side_x - delta_x) * rdy : px_ + (side_y - delta_y) * rdx;
    wall_u -= std::floor(wall_u);
    for (int y = y0; y <= y1; ++y) {
      double wall_v = (double(y) - (h / 2.0 - line_h / 2.0)) / line_h;
      std::uint32_t color = TexSample(wall - '0', wall_u, wall_v, dist);
      if (side == 1) {
        color = (color >> 1) & 0x7f7f7f7f;  // darker NS faces
      }
      out.data[std::size_t(y) * w + x] = color;
      ++wall_pixels;
    }
  }
  last_ray_steps_ = total_steps;

  // Monsters: billboard sprites, back to front, z-tested per column.
  std::vector<const Monster*> order;
  for (const Monster& m : monsters_) {
    if (m.alive) {
      order.push_back(&m);
    }
  }
  std::sort(order.begin(), order.end(), [this](const Monster* a, const Monster* b) {
    auto d = [this](const Monster* m) {
      return (m->x - px_) * (m->x - px_) + (m->y - py_) * (m->y - py_);
    };
    return d(a) > d(b);
  });
  std::uint64_t sprite_pixels = 0;
  for (const Monster* m : order) {
    double rel_x = m->x - px_, rel_y = m->y - py_;
    double dist = std::sqrt(rel_x * rel_x + rel_y * rel_y);
    double ang = std::atan2(rel_y, rel_x) - angle_;
    while (ang > 3.14159265) {
      ang -= 2 * 3.14159265;
    }
    while (ang < -3.14159265) {
      ang += 2 * 3.14159265;
    }
    if (std::abs(ang) > fov) {
      continue;
    }
    int sx = static_cast<int>((0.5 + ang / fov) * w);
    int size = static_cast<int>(h / std::max(dist, 0.3) * 0.7);
    for (int x = sx - size / 2; x < sx + size / 2; ++x) {
      if (x < 0 || x >= static_cast<int>(w) || zbuffer_[std::size_t(x)] < dist) {
        continue;
      }
      for (int y = static_cast<int>(h) / 2 - size / 4; y < static_cast<int>(h) / 2 + size * 3 / 4;
           ++y) {
        if (y < 0 || y >= static_cast<int>(h)) {
          continue;
        }
        // Blobby demon shape.
        double u = double(x - (sx - size / 2)) / size;
        double v = double(y - (static_cast<int>(h) / 2 - size / 4)) / size;
        double cx = u - 0.5, cy = v - 0.5;
        if (cx * cx + cy * cy < 0.22) {
          std::uint32_t body = (cy < -0.2) ? Rgb(200, 40, 40) : Rgb(140, 30, 30);
          if (cx * cx < 0.004 && cy < -0.25) {
            body = Rgb(250, 220, 60);  // eyes
          }
          out.data[std::size_t(y) * w + std::size_t(x)] = body;
          ++sprite_pixels;
        }
      }
    }
  }

  // Weapon + muzzle flash + HUD.
  FillRect(env, out, static_cast<int>(w) / 2 - 6, static_cast<int>(h) - 34, 12, 34,
           Rgb(90, 90, 100));
  if (muzzle_flash_ > 0) {
    FillRect(env, out, static_cast<int>(w) / 2 - 12, static_cast<int>(h) - 52, 24, 18,
             Rgb(255, 230, 120));
  }
  FillRect(env, out, 0, static_cast<int>(h) - 12, static_cast<int>(w), 12, Rgb(30, 30, 30));
  char hud[48];
  std::snprintf(hud, sizeof(hud), "HP %d  AMMO %d  KILLS %d", health_, ammo_, kills_);
  DrawText(env, out, 4, static_cast<int>(h) - 11, hud, Rgb(240, 60, 60), 1);

  // Renderer cost: DDA stepping, per-pixel texture fetch/shade, sprite work.
  UBurn(env, 7650000 + double(total_steps) * 420 + double(wall_pixels) * 95 +
                 double(sprite_pixels) * 70);
}

namespace {

DoomInput InputFromKeys(const KeyEvent& ev, DoomInput in) {
  bool down = ev.down != 0;
  switch (ev.code) {
    case kKeyUp:
    case kKeyA + ('w' - 'a'):
      in.forward = down;
      break;
    case kKeyDown:
    case kKeyA + ('s' - 'a'):
      in.back = down;
      break;
    case kKeyLeft:
      in.turn_left = down;
      break;
    case kKeyRight:
      in.turn_right = down;
      break;
    case kKeySpace:
    case kKeyBtnA:
      in.fire = down;
      break;
    default:
      break;
  }
  return in;
}

int DoomMain(AppEnv& env) {
  DoomEngine game;
  // WAD from the FAT partition when present (large assets belong on /d).
  std::string wad = DoomEngine::BuiltinWad();
  for (std::size_t i = 1; i < env.argv.size(); ++i) {
    if (env.argv[i].find(".wad") != std::string::npos) {
      std::vector<std::uint8_t> raw;
      if (uread_file(env, env.argv[i], &raw) > 0) {
        wad.assign(raw.begin(), raw.end());
      }
    }
  }
  if (!game.LoadWad(wad)) {
    uprintf(env, "doomlike: bad wad\n");
    return 1;
  }
  std::uint32_t* fb = nullptr;
  std::uint32_t fw = 0, fh = 0;
  if (ummap_fb(env, &fb, &fw, &fh) < 0) {
    return 1;
  }
  bool bench = false;
  bool autoplay = false;
  int frames = 600;
  for (std::size_t i = 1; i < env.argv.size(); ++i) {
    if (env.argv[i] == "--bench") {
      bench = true;
      autoplay = true;
    } else if (env.argv[i] == "--demo") {
      autoplay = true;
    } else if (env.argv[i] == "--frames" && i + 1 < env.argv.size()) {
      frames = std::atoi(env.argv[i + 1].c_str());
    }
  }

  // Key *polling*: DOOM's main loop peeks for events every frame without
  // blocking (§4.5's non-blocking IO motivation).
  std::int64_t efd = uopen(env, "/dev/events", kORdonly | kONonblock);

  std::vector<std::uint32_t> back(std::size_t(kDoomW) * kDoomH);
  PixelBuffer bb{back.data(), kDoomW, kDoomH};
  PixelBuffer screen{fb, fw, fh};
  DoomInput input;
  for (int f = 0; f < frames && !game.finished(); ++f) {
    if (efd >= 0) {
      KeyEvent ev;
      while (uread(env, static_cast<int>(efd), &ev, sizeof(ev)) == sizeof(ev)) {
        input = InputFromKeys(ev, input);
        env.kernel->trace().Emit(env.kernel->Now(), env.task->core, TraceEvent::kKeyEvent,
                                 env.task->pid(), ev.code, 2 /* app saw it */);
        autoplay = false;
      }
      UBurn(env, 6000);  // event poll bookkeeping in the doom event loop
    }
    DoomInput effective = autoplay ? game.AutoplayInput(game.frames()) : input;
    game.Step(env, effective);
    game.Render(env, bb);
    // Scale 320x200 -> 640x400 centered, then flush (direct rendering).
    std::uint32_t off_x = fw > kDoomW * 2 ? (fw - kDoomW * 2) / 2 : 0;
    std::uint32_t off_y = fh > kDoomH * 2 ? (fh - kDoomH * 2) / 2 : 0;
    BlitScaled(env, screen, static_cast<int>(off_x), static_cast<int>(off_y), kDoomW * 2,
               kDoomH * 2, bb);
    std::uint64_t row_bytes = std::uint64_t(fw) * 4;
    ucacheflush(env, off_y * row_bytes, std::uint64_t(kDoomH) * 2 * row_bytes);
    umark_frame(env);
    if (!bench) {
      usleep_ms(env, 16);
    }
  }
  if (efd >= 0) {
    uclose(env, static_cast<int>(efd));
  }
  return 0;
}

AppRegistrar doom_app("doomlike", DoomMain, 45000, 8 << 20);

}  // namespace

}  // namespace vos
