// litenes: a LiteNES-style console emulator app — real 6502 machine code
// driving a memory-mapped display, the genuine article behind the paper's
// "mario" (the LiteNES engine interprets 6502 ROMs, §3).
//
// Machine model (a teaching-sized NES):
//   $0000-$07FF  RAM (zero page + stack included)
//   $2000-$2BFF  PPU framebuffer: 64x48 pixels, one palette index per byte
//   $4014        frame-sync port: writing any value presents the frame
//   $4016        controller: bit0 right, bit1 left, bit2 up, bit3 down,
//                bit4 A/fire, bit5 start
//   $8000-$FFFF  cartridge ROM (with the 6502 vectors at $FFFA-$FFFF)
//
// ROMs are 6502 assembly files (.asm) loaded from the filesystem and built
// with the in-tree mini-assembler; a bouncing-ball demo cartridge is built in.
#include <array>
#include <cstring>

#include "src/apps/cpu6502.h"
#include "src/kernel/kernel.h"
#include "src/ulib/pixel.h"
#include "src/ulib/ustdio.h"
#include "src/ulib/usys.h"

namespace vos {
namespace {

constexpr std::uint32_t kNesW = 64;
constexpr std::uint32_t kNesH = 48;
constexpr std::uint16_t kFbBase = 0x2000;
constexpr std::uint16_t kFrameSync = 0x4014;
constexpr std::uint16_t kController = 0x4016;

// NES-ish master palette (16 entries).
constexpr std::uint32_t kPalette[16] = {
    0xff000000, 0xff30346d, 0xff5b6ee1, 0xff639bff, 0xffd04648, 0xffd27d2c,
    0xffdad45e, 0xff6daa2c, 0xff346524, 0xff854c30, 0xffe06f8b, 0xff9badb7,
    0xffcbdbfc, 0xffffffff, 0xff757161, 0xff140c1c,
};

const char* kBallDemoRom = R"(
; bouncing-ball demo cartridge
; zero page: $00=x $01=y $02=dx $03=dy  ptr at $10/$11 and $12/$13
.org $8000
reset:  LDA #10
        STA $00
        LDA #8
        STA $01
        LDA #1
        STA $02
        STA $03
frame:  JSR clear
        JSR draw
        LDA #1
        STA $4014       ; present
        JSR move
        JMP frame

clear:  LDA #$00
        STA $10
        LDA #$20
        STA $11
        LDX #12         ; 12 pages x 256 = 3072 bytes = 64x48
        LDY #0
        LDA #1          ; background palette index
clrlp:  STA ($10),Y
        INY
        BNE clrlp
        INC $11
        DEX
        BNE clrlp
        RTS

draw:   LDA $01         ; addr = $2000 + y*64 + x
        STA $12
        LDA #0
        STA $13
        LDX #6
shft:   ASL $12
        ROL $13
        DEX
        BNE shft
        LDA $12
        CLC
        ADC $00
        STA $12
        LDA $13
        ADC #$20
        STA $13
        LDA #4          ; ball color
        LDY #0
        STA ($12),Y
        LDY #1
        STA ($12),Y
        LDY #64
        STA ($12),Y
        LDY #65
        STA ($12),Y
        RTS

move:   LDA $4016       ; controller steers the ball horizontally
        AND #1
        BEQ noright
        LDA #1
        STA $02
noright: LDA $4016
        AND #2
        BEQ noleft
        LDA #$FF
        STA $02
noleft: LDA $00
        CLC
        ADC $02
        STA $00
        CMP #62
        BCC xmin
        LDA #$FF
        STA $02
xmin:   LDA $00
        CMP #1
        BCS xdone
        LDA #1
        STA $02
xdone:  LDA $01
        CLC
        ADC $03
        STA $01
        CMP #46
        BCC ymin
        LDA #$FF
        STA $03
ymin:   LDA $01
        CMP #1
        BCS ydone
        LDA #1
        STA $03
ydone:  RTS

.org $FFFA
.word reset             ; NMI
.word reset             ; RESET
.word reset             ; IRQ/BRK
)";

int LiteNesMain(AppEnv& env) {
  // Cartridge: an .asm from the filesystem, or the built-in demo.
  std::string source = kBallDemoRom;
  int frames = 300;
  bool bench = false;
  for (std::size_t i = 1; i < env.argv.size(); ++i) {
    if (env.argv[i] == "--frames" && i + 1 < env.argv.size()) {
      frames = std::atoi(env.argv[i + 1].c_str());
    } else if (env.argv[i] == "--bench") {
      bench = true;
    } else if (env.argv[i].find(".asm") != std::string::npos) {
      std::vector<std::uint8_t> raw;
      if (uread_file(env, env.argv[i], &raw) > 0) {
        source.assign(raw.begin(), raw.end());
      }
    }
  }
  std::string error;
  auto rom = Assemble6502(source, &error);
  if (!rom) {
    uprintf(env, "litenes: assembly failed: %s\n", error.c_str());
    return 1;
  }
  UBurn(env, double(source.size()) * 40.0);  // assembler pass

  Bus6502 bus;
  bus.Load(rom->origin, rom->bytes);
  bool frame_done = false;
  std::uint8_t controller = 0;
  bus.SetWriteHook([&frame_done](std::uint16_t addr, std::uint8_t) {
    if (addr == kFrameSync) {
      frame_done = true;
      return true;
    }
    return false;
  });
  bus.SetReadHook([&controller](std::uint16_t addr) -> std::optional<std::uint8_t> {
    if (addr == kController) {
      return controller;
    }
    return std::nullopt;
  });
  Cpu6502 cpu(bus);

  std::uint32_t* fb = nullptr;
  std::uint32_t fw = 0, fh = 0;
  if (ummap_fb(env, &fb, &fw, &fh) < 0) {
    return 1;
  }
  std::int64_t efd = uopen(env, "/dev/events", kORdonly | kONonblock);

  std::vector<std::uint32_t> frame(kNesW * kNesH);
  PixelBuffer screen{fb, fw, fh};
  PixelBuffer small{frame.data(), kNesW, kNesH};
  std::uint64_t total_cycles = 0;
  for (int f = 0; f < frames; ++f) {
    // Poll the controller.
    if (efd >= 0) {
      KeyEvent ev;
      while (uread(env, static_cast<int>(efd), &ev, sizeof(ev)) == sizeof(ev)) {
        std::uint8_t bit = 0;
        switch (ev.code) {
          case kKeyRight:
            bit = 1;
            break;
          case kKeyLeft:
            bit = 2;
            break;
          case kKeyUp:
            bit = 4;
            break;
          case kKeyDown:
            bit = 8;
            break;
          case kKeySpace:
          case kKeyBtnA:
            bit = 16;
            break;
          case kKeyEnter:
          case kKeyBtnStart:
            bit = 32;
            break;
          default:
            break;
        }
        if (ev.down) {
          controller |= bit;
        } else {
          controller = static_cast<std::uint8_t>(controller & ~bit);
        }
      }
    }
    // Emulate until the ROM signals the frame (bounded against runaways).
    frame_done = false;
    std::uint64_t frame_cycles = 0;
    for (int guard = 0; guard < 400000 && !frame_done; ++guard) {
      frame_cycles += static_cast<std::uint64_t>(cpu.Step());
    }
    total_cycles += frame_cycles;
    // Interpreting one 6502 cycle costs ~45 host(A53) cycles in LiteNES.
    UBurn(env, double(frame_cycles) * 45.0);
    // Present: palette-expand, scale up, flush.
    for (std::uint32_t y = 0; y < kNesH; ++y) {
      for (std::uint32_t xx = 0; xx < kNesW; ++xx) {
        std::uint8_t idx = bus.ram()[kFbBase + y * kNesW + xx] & 0x0f;
        frame[y * kNesW + xx] = kPalette[idx];
      }
    }
    int scale = static_cast<int>(std::min(fw / kNesW, fh / kNesH));
    int dw = static_cast<int>(kNesW) * scale, dh = static_cast<int>(kNesH) * scale;
    BlitScaled(env, screen, (static_cast<int>(fw) - dw) / 2,
               (static_cast<int>(fh) - dh) / 2, dw, dh, small);
    ucacheflush(env, 0, std::uint64_t(fw) * fh * 4);
    umark_frame(env);
    if (!bench) {
      usleep_ms(env, 16);
    }
  }
  if (efd >= 0) {
    uclose(env, static_cast<int>(efd));
  }
  uprintf(env, "litenes: %d frames, %llu cpu cycles, %llu instructions\n", frames,
          static_cast<unsigned long long>(total_cycles),
          static_cast<unsigned long long>(cpu.instructions_retired));
  return 0;
}

AppRegistrar litenes_app("litenes", LiteNesMain, 14200, 2 << 20);

}  // namespace
}  // namespace vos
