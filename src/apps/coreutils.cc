// Console utilities ported from xv6 (§3): ls, cat, echo, wc, grep, mkdir,
// rm, ln, kill, plus the /proc-backed ps, free and uptime.
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/base/md5.h"
#include "src/fs/fsck.h"
#include "src/kernel/trace.h"
#include "src/ulib/bmp.h"
#include "src/ulib/ustdio.h"
#include "src/ulib/usys.h"

namespace vos {
namespace {

int LsMain(AppEnv& env) {
  std::string path = env.argv.size() > 1 ? env.argv[1] : ".";
  std::vector<DirEntryInfo> entries;
  std::int64_t r = ureaddir(env, path, &entries);
  if (r < 0) {
    // Maybe a file: stat it through open.
    std::int64_t fd = uopen(env, path, kORdonly);
    if (fd < 0) {
      uprintf(env, "ls: cannot access %s\n", path.c_str());
      return 1;
    }
    Stat st;
    ufstat(env, static_cast<int>(fd), &st);
    uclose(env, static_cast<int>(fd));
    uprintf(env, "%-20s %8u\n", path.c_str(), st.size);
    return 0;
  }
  for (const DirEntryInfo& e : entries) {
    uprintf(env, "%-20s %8u%s\n", e.name.c_str(), e.size, e.is_dir ? " /" : "");
    UBurn(env, 400);
  }
  return 0;
}

int CatMain(AppEnv& env) {
  auto pump = [&env](int fd) {
    char buf[512];
    for (;;) {
      std::int64_t n = uread(env, fd, buf, sizeof(buf));
      if (n <= 0) {
        break;
      }
      uwrite(env, 1, buf, static_cast<std::uint32_t>(n));
      UBurn(env, double(n) * 0.4);
    }
  };
  if (env.argv.size() < 2) {
    pump(0);
    return 0;
  }
  for (std::size_t i = 1; i < env.argv.size(); ++i) {
    std::int64_t fd = uopen(env, env.argv[i], kORdonly);
    if (fd < 0) {
      uprintf(env, "cat: cannot open %s\n", env.argv[i].c_str());
      return 1;
    }
    pump(static_cast<int>(fd));
    uclose(env, static_cast<int>(fd));
  }
  return 0;
}

int EchoMain(AppEnv& env) {
  std::string out;
  for (std::size_t i = 1; i < env.argv.size(); ++i) {
    if (i > 1) {
      out += " ";
    }
    out += env.argv[i];
  }
  out += "\n";
  uputs(env, out);
  return 0;
}

int WcMain(AppEnv& env) {
  int fd = 0;
  if (env.argv.size() > 1) {
    std::int64_t r = uopen(env, env.argv[1], kORdonly);
    if (r < 0) {
      uprintf(env, "wc: cannot open %s\n", env.argv[1].c_str());
      return 1;
    }
    fd = static_cast<int>(r);
  }
  std::uint64_t lines = 0, words = 0, bytes = 0;
  bool in_word = false;
  char buf[512];
  for (;;) {
    std::int64_t n = uread(env, fd, buf, sizeof(buf));
    if (n <= 0) {
      break;
    }
    bytes += static_cast<std::uint64_t>(n);
    for (std::int64_t i = 0; i < n; ++i) {
      if (buf[i] == '\n') {
        ++lines;
      }
      bool space = buf[i] == ' ' || buf[i] == '\n' || buf[i] == '\t';
      if (!space && !in_word) {
        ++words;
      }
      in_word = !space;
    }
    UBurn(env, double(n) * 1.2);
  }
  uprintf(env, "%llu %llu %llu\n", static_cast<unsigned long long>(lines),
          static_cast<unsigned long long>(words), static_cast<unsigned long long>(bytes));
  if (fd != 0) {
    uclose(env, fd);
  }
  return 0;
}

int GrepMain(AppEnv& env) {
  if (env.argv.size() < 2) {
    uprintf(env, "usage: grep pattern [file]\n");
    return 1;
  }
  const std::string& pattern = env.argv[1];
  int fd = 0;
  if (env.argv.size() > 2) {
    std::int64_t r = uopen(env, env.argv[2], kORdonly);
    if (r < 0) {
      uprintf(env, "grep: cannot open %s\n", env.argv[2].c_str());
      return 1;
    }
    fd = static_cast<int>(r);
  }
  std::string pending;
  char buf[512];
  int matches = 0;
  auto flush_line = [&](const std::string& line) {
    UBurn(env, double(line.size() + pattern.size()) * 2.0);
    if (line.find(pattern) != std::string::npos) {
      uputs(env, line + "\n");
      ++matches;
    }
  };
  for (;;) {
    std::int64_t n = uread(env, fd, buf, sizeof(buf));
    if (n <= 0) {
      break;
    }
    for (std::int64_t i = 0; i < n; ++i) {
      if (buf[i] == '\n') {
        flush_line(pending);
        pending.clear();
      } else {
        pending.push_back(buf[i]);
      }
    }
  }
  if (!pending.empty()) {
    flush_line(pending);
  }
  if (fd != 0) {
    uclose(env, fd);
  }
  return matches > 0 ? 0 : 1;
}

int MkdirMain(AppEnv& env) {
  if (env.argv.size() < 2) {
    uprintf(env, "usage: mkdir dir...\n");
    return 1;
  }
  int rc = 0;
  for (std::size_t i = 1; i < env.argv.size(); ++i) {
    if (umkdir(env, env.argv[i]) < 0) {
      uprintf(env, "mkdir: %s failed\n", env.argv[i].c_str());
      rc = 1;
    }
  }
  return rc;
}

int RmMain(AppEnv& env) {
  if (env.argv.size() < 2) {
    uprintf(env, "usage: rm file...\n");
    return 1;
  }
  int rc = 0;
  for (std::size_t i = 1; i < env.argv.size(); ++i) {
    if (uunlink(env, env.argv[i]) < 0) {
      uprintf(env, "rm: %s failed\n", env.argv[i].c_str());
      rc = 1;
    }
  }
  return rc;
}

int LnMain(AppEnv& env) {
  if (env.argv.size() != 3) {
    uprintf(env, "usage: ln old new\n");
    return 1;
  }
  if (ulink(env, env.argv[1], env.argv[2]) < 0) {
    uprintf(env, "ln: failed\n");
    return 1;
  }
  return 0;
}

int KillMain(AppEnv& env) {
  if (env.argv.size() < 2) {
    uprintf(env, "usage: kill pid...\n");
    return 1;
  }
  for (std::size_t i = 1; i < env.argv.size(); ++i) {
    ukill(env, std::atoi(env.argv[i].c_str()));
  }
  return 0;
}

int SyncMain(AppEnv& env) {
  if (usync(env) < 0) {
    uprintf(env, "sync: failed\n");
    return 1;
  }
  return 0;
}

int PsMain(AppEnv& env) {
  std::vector<std::uint8_t> raw;
  if (uread_file(env, "/proc/tasks", &raw) < 0) {
    uprintf(env, "ps: no procfs\n");
    return 1;
  }
  uputs(env, std::string(raw.begin(), raw.end()));
  return 0;
}

int FreeMain(AppEnv& env) {
  std::vector<std::uint8_t> raw;
  if (uread_file(env, "/proc/meminfo", &raw) < 0) {
    uprintf(env, "free: no procfs\n");
    return 1;
  }
  uputs(env, std::string(raw.begin(), raw.end()));
  return 0;
}

int UptimeMain(AppEnv& env) {
  uprintf(env, "up %lld ms\n", static_cast<long long>(uuptime_ms(env)));
  return 0;
}

// fsck: checks the mounted root filesystem's consistency (read-only by
// default; "-r" repairs in place). Exit codes distinguish the outcomes:
// 0 = clean, 1 = errors found and repaired, 2 = errors remain.
int FsckMain(AppEnv& env) {
  bool repair = env.argv.size() > 1 && env.argv[1] == "-r";
  Cycles burn = 0;
  FsckReport report = repair ? FsckRepairXv6(env.kernel->rootfs(), &burn)
                             : FsckXv6(env.kernel->rootfs(), &burn);
  UBurn(env, double(burn));  // the scan's I/O time charges the caller
  uprintf(env, "fsck /: %s\n", report.Summary().c_str());
  if (report.unrecoverable > 0) {
    return 2;
  }
  return report.repaired > 0 ? 1 : 0;
}

// screenshot: captures what the framebuffer scans out into a BMP on disk —
// the SD card by default, so the image survives poweroff and can be pulled
// from the FAT32 partition on a host machine.
int ScreenshotMain(AppEnv& env) {
  std::string path = env.argv.size() > 1 ? env.argv[1] : "/d/SHOT.BMP";
  std::uint32_t* fb = nullptr;
  std::uint32_t w = 0, h = 0;
  if (ummap_fb(env, &fb, &w, &h) < 0) {
    uprintf(env, "screenshot: no framebuffer\n");
    return 1;
  }
  Image img;
  img.width = w;
  img.height = h;
  img.pixels.assign(fb, fb + std::size_t(w) * h);
  UBurn(env, double(w) * h * 0.5);  // readback copy
  std::vector<std::uint8_t> bmp = BmpEncode(img);
  UBurn(env, double(bmp.size()) * 0.8);  // row padding + channel shuffle
  std::int64_t fd = uopen(env, path, kOWronly | kOCreate | kOTrunc);
  if (fd < 0) {
    uprintf(env, "screenshot: cannot create %s\n", path.c_str());
    return 1;
  }
  std::size_t off = 0;
  while (off < bmp.size()) {
    std::int64_t n = uwrite(env, static_cast<int>(fd), bmp.data() + off,
                            static_cast<std::uint32_t>(bmp.size() - off));
    if (n <= 0) {
      uprintf(env, "screenshot: write failed\n");
      uclose(env, static_cast<int>(fd));
      return 1;
    }
    off += static_cast<std::size_t>(n);
  }
  uclose(env, static_cast<int>(fd));
  uprintf(env, "screenshot: %ux%u -> %s (%u bytes)\n", w, h, path.c_str(),
          static_cast<unsigned>(bmp.size()));
  return 0;
}

// trace: export the kernel event ring. Default output is Chrome trace-event
// JSON (loadable in Perfetto / chrome://tracing); -r dumps the raw text form.
// An optional file argument redirects the output to disk.
int TraceMain(AppEnv& env) {
  bool raw = false;
  std::string out_path;
  for (std::size_t i = 1; i < env.argv.size(); ++i) {
    if (env.argv[i] == "-r") {
      raw = true;
    } else {
      out_path = env.argv[i];
    }
  }
  // Device nodes fstat as size 0, so uread_file() won't do: read until EOF.
  std::int64_t dev = uopen(env, "/dev/trace", kORdonly);
  if (dev < 0) {
    uprintf(env, "trace: cannot open /dev/trace\n");
    return 1;
  }
  std::string text;
  char chunk[1024];
  for (;;) {
    std::int64_t n = uread(env, static_cast<int>(dev), chunk, sizeof(chunk));
    if (n <= 0) {
      break;
    }
    text.append(chunk, static_cast<std::size_t>(n));
  }
  uclose(env, static_cast<int>(dev));
  std::string out;
  if (raw) {
    out = std::move(text);
  } else {
    std::vector<TraceRecord> recs;
    ParseTraceText(text, &recs);
    UBurn(env, double(recs.size()) * 40.0);  // JSON encode
    out = FormatChromeTrace(recs);
    out += "\n";
  }
  if (out_path.empty()) {
    uputs(env, out);
    return 0;
  }
  std::int64_t fd = uopen(env, out_path, kOWronly | kOCreate | kOTrunc);
  if (fd < 0) {
    uprintf(env, "trace: cannot create %s\n", out_path.c_str());
    return 1;
  }
  std::size_t off = 0;
  while (off < out.size()) {
    std::int64_t n = uwrite(env, static_cast<int>(fd), out.data() + off,
                            static_cast<std::uint32_t>(out.size() - off));
    if (n <= 0) {
      uprintf(env, "trace: write failed\n");
      uclose(env, static_cast<int>(fd));
      return 1;
    }
    off += static_cast<std::size_t>(n);
  }
  uclose(env, static_cast<int>(fd));
  uprintf(env, "trace: %u bytes -> %s\n", static_cast<unsigned>(out.size()), out_path.c_str());
  return 0;
}

// prof: drive the kernel sampling profiler via /proc/profile.
//   prof start|stop|reset          control sampling
//   prof dump [file]               folded-stack dump to stdout or a file
//   prof run <prog> [args...]      profile one program: start, exec, wait,
//                                  stop, dump (the flamegraph workflow)
// The dump is flamegraph-collapsed-adjacent: pipe through prof2flame.py.
int ProfMain(AppEnv& env) {
  auto command = [&env](const char* cmd) -> bool {
    std::int64_t fd = uopen(env, "/proc/profile", kOWronly);
    if (fd < 0) {
      return false;
    }
    std::int64_t len = static_cast<std::int64_t>(std::strlen(cmd));
    std::int64_t n = uwrite(env, static_cast<int>(fd), cmd, static_cast<std::uint32_t>(len));
    uclose(env, static_cast<int>(fd));
    return n == len;
  };
  auto dump = [&env](const std::string& out_path) -> int {
    std::vector<std::uint8_t> raw;
    if (uread_file(env, "/proc/profile", &raw) < 0) {
      uprintf(env, "prof: cannot read /proc/profile\n");
      return 1;
    }
    std::string out(raw.begin(), raw.end());
    if (out_path.empty()) {
      uputs(env, out);
      return 0;
    }
    std::int64_t fd = uopen(env, out_path, kOWronly | kOCreate | kOTrunc);
    if (fd < 0) {
      uprintf(env, "prof: cannot create %s\n", out_path.c_str());
      return 1;
    }
    std::size_t off = 0;
    while (off < out.size()) {
      std::int64_t n = uwrite(env, static_cast<int>(fd), out.data() + off,
                              static_cast<std::uint32_t>(out.size() - off));
      if (n <= 0) {
        uprintf(env, "prof: write failed\n");
        uclose(env, static_cast<int>(fd));
        return 1;
      }
      off += static_cast<std::size_t>(n);
    }
    uclose(env, static_cast<int>(fd));
    uprintf(env, "prof: %u bytes -> %s\n", static_cast<unsigned>(out.size()), out_path.c_str());
    return 0;
  };
  std::string verb = env.argv.size() > 1 ? env.argv[1] : "dump";
  if (verb == "start" || verb == "stop" || verb == "reset") {
    if (!command(verb.c_str())) {
      uprintf(env, "prof: %s failed\n", verb.c_str());
      return 1;
    }
    return 0;
  }
  if (verb == "dump") {
    return dump(env.argv.size() > 2 ? env.argv[2] : "");
  }
  if (verb == "run") {
    if (env.argv.size() < 3) {
      uprintf(env, "usage: prof run <prog> [args...]\n");
      return 1;
    }
    std::vector<std::string> child_argv(env.argv.begin() + 2, env.argv.end());
    if (!command("reset") || !command("start")) {
      uprintf(env, "prof: cannot start profiler\n");
      return 1;
    }
    std::int64_t pid = ufork(env, [&env, child_argv]() -> int {
      return static_cast<int>(uexec(env, child_argv[0], child_argv));
    });
    if (pid < 0) {
      command("stop");
      uprintf(env, "prof: fork failed\n");
      return 1;
    }
    int status = 0;
    uwait(env, &status);
    command("stop");
    return dump("");
  }
  uprintf(env, "usage: prof [start|stop|reset|dump [file]|run prog args...]\n");
  return 1;
}

int Md5sumMain(AppEnv& env) {
  if (env.argv.size() < 2) {
    uprintf(env, "usage: md5sum file...\n");
    return 1;
  }
  for (std::size_t i = 1; i < env.argv.size(); ++i) {
    std::vector<std::uint8_t> data;
    if (uread_file(env, env.argv[i], &data) < 0) {
      uprintf(env, "md5sum: cannot open %s\n", env.argv[i].c_str());
      return 1;
    }
    Md5Digest d = Md5::Hash(data.data(), data.size());
    // MD5 costs ~6.5 cycles/byte on the A53; the C library's quality shows
    // in the compute microbenchmarks (§6.2).
    UBurn(env, double(data.size()) * 6.5 + 4000);
    uprintf(env, "%s  %s\n", Md5::ToHex(d).c_str(), env.argv[i].c_str());
  }
  return 0;
}

AppRegistrar ls_app("ls", LsMain, 1900, 256 << 10);
AppRegistrar cat_app("cat", CatMain, 800, 256 << 10);
AppRegistrar echo_app("echo", EchoMain, 500, 64 << 10);
AppRegistrar wc_app("wc", WcMain, 1100, 256 << 10);
AppRegistrar grep_app("grep", GrepMain, 1500, 256 << 10);
AppRegistrar mkdir_app("mkdir", MkdirMain, 500, 64 << 10);
AppRegistrar rm_app("rm", RmMain, 500, 64 << 10);
AppRegistrar ln_app("ln", LnMain, 500, 64 << 10);
AppRegistrar kill_app("kill", KillMain, 500, 64 << 10);
AppRegistrar sync_app("sync", SyncMain, 500, 64 << 10);
AppRegistrar ps_app("ps", PsMain, 900, 256 << 10);
AppRegistrar free_app("free", FreeMain, 700, 256 << 10);
AppRegistrar uptime_app("uptime", UptimeMain, 500, 64 << 10);
AppRegistrar md5sum_app("md5sum", Md5sumMain, 1300, 1 << 20);
AppRegistrar fsck_app("fsck", FsckMain, 2100, 4 << 20);
AppRegistrar screenshot_app("screenshot", ScreenshotMain, 1600, 8 << 20);
AppRegistrar trace_app("trace", TraceMain, 1200, 1 << 20);
AppRegistrar prof_app("prof", ProfMain, 1400, 1 << 20);

}  // namespace
}  // namespace vos
