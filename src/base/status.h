// Error codes shared between the kernel and userspace, modeled on the small
// errno set an xv6-class kernel exposes.
#ifndef VOS_SRC_BASE_STATUS_H_
#define VOS_SRC_BASE_STATUS_H_

#include <cstdint>

namespace vos {

// Negative values returned by syscalls on failure (0 or positive on success).
enum Err : std::int64_t {
  kErrPerm = -1,       // operation not permitted
  kErrNoEnt = -2,      // no such file or directory
  kErrIntr = -4,       // interrupted while blocked (a kill took effect)
  kErrIo = -5,         // I/O error
  kErrBadFd = -9,      // bad file descriptor
  kErrNoMem = -12,     // out of memory
  kErrFault = -14,     // bad address
  kErrExist = -17,     // file exists
  kErrNotDir = -20,    // not a directory
  kErrIsDir = -21,     // is a directory
  kErrInval = -22,     // invalid argument
  kErrNFile = -23,     // file table overflow
  kErrMFile = -24,     // too many open files
  kErrFBig = -27,      // file too large
  kErrNoSpace = -28,   // no space left on device
  kErrPipe = -32,      // broken pipe
  kErrNameTooLong = -36,
  kErrNotEmpty = -39,  // directory not empty
  kErrWouldBlock = -11,
  kErrNoSys = -38,     // syscall not implemented in this prototype stage
  kErrChild = -10,     // no child processes
  // Same value as kErrWouldBlock, exactly as EAGAIN == EWOULDBLOCK on Linux:
  // nonblocking pipes, sockets, and devices all report "try again" as -11.
  kErrAgain = kErrWouldBlock,
  kErrXDev = -18,      // cross-device link
  kErrRange = -34,
};

// Human-readable name for an error code; "OK" for non-negative values.
const char* ErrName(std::int64_t e);

}  // namespace vos

#endif  // VOS_SRC_BASE_STATUS_H_
