// Host-side diagnostic logging for the vos library (distinct from the guest
// kernel's printk, which goes through the simulated UART).
#ifndef VOS_SRC_BASE_LOG_H_
#define VOS_SRC_BASE_LOG_H_

#include <sstream>
#include <string>

namespace vos {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Global minimum level; messages below it are dropped. Default kWarn so tests
// and benches stay quiet.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Emits one formatted line to stderr if `level` passes the filter.
void LogMessage(LogLevel level, const std::string& msg);

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { LogMessage(level_, os_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace vos

#define VOS_LOG(level) ::vos::LogLine(::vos::LogLevel::level)

#endif  // VOS_SRC_BASE_LOG_H_
