// MD5 (RFC 1321) — used by the md5sum compute microbenchmark in Fig 9 and by
// the md5sum shell utility.
#ifndef VOS_SRC_BASE_MD5_H_
#define VOS_SRC_BASE_MD5_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace vos {

using Md5Digest = std::array<std::uint8_t, 16>;

class Md5 {
 public:
  Md5();
  void Update(const void* data, std::size_t len);
  Md5Digest Final();

  static Md5Digest Hash(const void* data, std::size_t len);
  static std::string ToHex(const Md5Digest& d);

 private:
  void ProcessBlock(const std::uint8_t* p);

  std::array<std::uint32_t, 4> state_;
  std::array<std::uint8_t, 64> buf_;
  std::size_t buf_len_ = 0;
  std::uint64_t total_len_ = 0;
};

}  // namespace vos

#endif  // VOS_SRC_BASE_MD5_H_
