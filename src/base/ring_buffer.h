// Fixed-capacity ring buffer, the workhorse of the kernel's IO paths: UART RX,
// keyboard events, audio sample queue, pipes, and the ftrace ring.
#ifndef VOS_SRC_BASE_RING_BUFFER_H_
#define VOS_SRC_BASE_RING_BUFFER_H_

#include <cstddef>
#include <optional>
#include <vector>

#include "src/base/assert.h"

namespace vos {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity) : buf_(capacity) { VOS_CHECK(capacity > 0); }

  std::size_t capacity() const { return buf_.size(); }
  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  bool full() const { return count_ == buf_.size(); }

  // Returns false (and drops the item) when full.
  bool Push(const T& v) {
    if (full()) {
      return false;
    }
    buf_[(head_ + count_) % buf_.size()] = v;
    ++count_;
    return true;
  }

  // Overwrites the oldest element when full (trace-ring semantics). Returns
  // true if an old element was evicted.
  bool PushOverwrite(const T& v) {
    if (!full()) {
      Push(v);
      return false;
    }
    buf_[head_] = v;
    head_ = (head_ + 1) % buf_.size();
    return true;
  }

  std::optional<T> Pop() {
    if (empty()) {
      return std::nullopt;
    }
    T v = buf_[head_];
    head_ = (head_ + 1) % buf_.size();
    --count_;
    return v;
  }

  // Peeks the oldest element without consuming it (used by the non-blocking
  // key polling path, §4.5).
  const T* Peek() const { return empty() ? nullptr : &buf_[head_]; }

  // Peeks the i-th oldest element (i < size()).
  const T& At(std::size_t i) const {
    VOS_CHECK(i < count_);
    return buf_[(head_ + i) % buf_.size()];
  }

  void Clear() {
    head_ = 0;
    count_ = 0;
  }

  // Bulk copy out up to n elements, consuming them. Returns count copied.
  std::size_t PopMany(T* out, std::size_t n) {
    std::size_t done = 0;
    while (done < n && !empty()) {
      out[done++] = *Pop();
    }
    return done;
  }

  // Bulk push; returns the number accepted before the ring filled.
  std::size_t PushMany(const T* in, std::size_t n) {
    std::size_t done = 0;
    while (done < n && Push(in[done])) {
      ++done;
    }
    return done;
  }

 private:
  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

}  // namespace vos

#endif  // VOS_SRC_BASE_RING_BUFFER_H_
