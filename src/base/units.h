// Time and size units for the virtual machine.
//
// The simulated SoC runs a 1 GHz virtual clock, so 1 cycle == 1 ns. All
// latencies, throughputs, FPS and power figures reported by benches are
// derived from this clock.
#ifndef VOS_SRC_BASE_UNITS_H_
#define VOS_SRC_BASE_UNITS_H_

#include <cstdint>

namespace vos {

// Virtual time, in cycles of the 1 GHz core clock (== nanoseconds).
using Cycles = std::uint64_t;

constexpr Cycles kCyclesPerUs = 1000;
constexpr Cycles kCyclesPerMs = 1000 * kCyclesPerUs;
constexpr Cycles kCyclesPerSec = 1000 * kCyclesPerMs;

constexpr Cycles Us(std::uint64_t n) { return n * kCyclesPerUs; }
constexpr Cycles Ms(std::uint64_t n) { return n * kCyclesPerMs; }
constexpr Cycles Sec(std::uint64_t n) { return n * kCyclesPerSec; }

constexpr double ToUs(Cycles c) { return static_cast<double>(c) / kCyclesPerUs; }
constexpr double ToMs(Cycles c) { return static_cast<double>(c) / kCyclesPerMs; }
constexpr double ToSec(Cycles c) { return static_cast<double>(c) / kCyclesPerSec; }

constexpr std::uint64_t KiB(std::uint64_t n) { return n * 1024; }
constexpr std::uint64_t MiB(std::uint64_t n) { return n * 1024 * 1024; }

// 4 KB pages for user mappings, 1 MB blocks for the kernel linear map, as in
// the paper (§3 "Memory").
constexpr std::uint64_t kPageSize = 4096;
constexpr std::uint64_t kPageShift = 12;
constexpr std::uint64_t kBlockSize1M = MiB(1);

constexpr std::uint64_t PageRoundUp(std::uint64_t v) {
  return (v + kPageSize - 1) & ~(kPageSize - 1);
}
constexpr std::uint64_t PageRoundDown(std::uint64_t v) { return v & ~(kPageSize - 1); }

}  // namespace vos

#endif  // VOS_SRC_BASE_UNITS_H_
