// Intrusive doubly-linked list in the style kernel runqueues use: nodes embed
// their own links, so list membership needs no allocation and removal is O(1)
// given the element.
#ifndef VOS_SRC_BASE_INTRUSIVE_LIST_H_
#define VOS_SRC_BASE_INTRUSIVE_LIST_H_

#include <cstddef>

#include "src/base/assert.h"

namespace vos {

struct ListNode {
  ListNode* prev = nullptr;
  ListNode* next = nullptr;

  bool linked() const { return prev != nullptr; }
};

// T must derive from ListNode (single membership) or embed named ListNode
// members and use the Hook parameter.
template <typename T, ListNode T::* Hook>
class IntrusiveList {
 public:
  IntrusiveList() {
    sentinel_.prev = &sentinel_;
    sentinel_.next = &sentinel_;
  }
  IntrusiveList(const IntrusiveList&) = delete;
  IntrusiveList& operator=(const IntrusiveList&) = delete;

  bool empty() const { return sentinel_.next == &sentinel_; }

  std::size_t size() const {
    std::size_t n = 0;
    for (ListNode* p = sentinel_.next; p != &sentinel_; p = p->next) {
      ++n;
    }
    return n;
  }

  void PushBack(T* t) { InsertBefore(&sentinel_, NodeOf(t)); }
  void PushFront(T* t) { InsertBefore(sentinel_.next, NodeOf(t)); }

  T* Front() { return empty() ? nullptr : OwnerOf(sentinel_.next); }
  T* Back() { return empty() ? nullptr : OwnerOf(sentinel_.prev); }

  T* PopFront() {
    if (empty()) {
      return nullptr;
    }
    ListNode* n = sentinel_.next;
    Unlink(n);
    return OwnerOf(n);
  }

  // Removes and returns the newest element (work stealing takes from the
  // tail so the victim's next-to-run head stays put).
  T* PopBack() {
    if (empty()) {
      return nullptr;
    }
    ListNode* n = sentinel_.prev;
    Unlink(n);
    return OwnerOf(n);
  }

  // Removes t from this list. t must be linked.
  void Remove(T* t) {
    ListNode* n = NodeOf(t);
    VOS_CHECK(n->linked());
    Unlink(n);
  }

  bool Contains(const T* t) const {
    const ListNode* target = &(t->*Hook);
    for (const ListNode* p = sentinel_.next; p != &sentinel_; p = p->next) {
      if (p == target) {
        return true;
      }
    }
    return false;
  }

  // Iteration support (simple forward iterator over owners).
  class Iterator {
   public:
    Iterator(ListNode* n, const IntrusiveList* l) : node_(n), list_(l) {}
    T* operator*() const { return list_->OwnerOf(node_); }
    Iterator& operator++() {
      node_ = node_->next;
      return *this;
    }
    bool operator!=(const Iterator& o) const { return node_ != o.node_; }

   private:
    ListNode* node_;
    const IntrusiveList* list_;
  };

  Iterator begin() { return Iterator(sentinel_.next, this); }
  Iterator end() { return Iterator(&sentinel_, this); }

 private:
  static ListNode* NodeOf(T* t) { return &(t->*Hook); }

  T* OwnerOf(ListNode* n) const {
    // Recover the owning object from the embedded node address.
    auto offset = reinterpret_cast<std::ptrdiff_t>(&(static_cast<T*>(nullptr)->*Hook));
    return reinterpret_cast<T*>(reinterpret_cast<char*>(n) - offset);
  }

  static void InsertBefore(ListNode* pos, ListNode* n) {
    VOS_CHECK_MSG(!n->linked(), "node already on a list");
    n->prev = pos->prev;
    n->next = pos;
    pos->prev->next = n;
    pos->prev = n;
  }

  static void Unlink(ListNode* n) {
    n->prev->next = n->next;
    n->next->prev = n->prev;
    n->prev = nullptr;
    n->next = nullptr;
  }

  ListNode sentinel_;
};

}  // namespace vos

#endif  // VOS_SRC_BASE_INTRUSIVE_LIST_H_
