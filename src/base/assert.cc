#include "src/base/assert.h"

#include <sstream>

namespace vos {

void AssertFail(const char* expr, const char* file, int line, const char* msg) {
  std::ostringstream os;
  os << "VOS_CHECK failed: " << expr << " at " << file << ":" << line;
  if (msg != nullptr) {
    os << " (" << msg << ")";
  }
  throw FatalError(os.str());
}

}  // namespace vos
