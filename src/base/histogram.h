// Log2-bucketed latency histogram (HDR-style, one bucket per power of two).
// Record() is wait-free — relaxed atomic adds only — so it is safe from any
// context: inside spinlocks, in IRQ handlers, and from concurrently running
// host threads under TSan. Percentiles are extracted by walking the bucket
// counts and interpolating linearly inside the crossing bucket, so p50/p99
// resolution is the bucket width (~2x) — plenty for "is the syscall path
// microseconds or milliseconds" questions, at zero hot-path cost.
#ifndef VOS_SRC_BASE_HISTOGRAM_H_
#define VOS_SRC_BASE_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>

namespace vos {

class Histogram {
 public:
  // Bucket i holds values v with bit_width(v) == i, i.e. [2^(i-1), 2^i).
  // Bucket 0 is exactly {0}; 64 covers the top half of the u64 range.
  static constexpr int kNumBuckets = 65;

  void Record(std::uint64_t v) {
    buckets_[BucketOf(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    std::uint64_t prev = max_.load(std::memory_order_relaxed);
    while (v > prev && !max_.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
    }
  }

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  double mean() const {
    std::uint64_t n = count();
    return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
  }

  // p in [0,100]. Returns an estimate of the p-th percentile value.
  std::uint64_t Percentile(double p) const {
    std::uint64_t n = count();
    if (n == 0) {
      return 0;
    }
    double target = p / 100.0 * static_cast<double>(n);
    if (target < 1.0) {
      target = 1.0;
    }
    double cum = 0;
    for (int i = 0; i < kNumBuckets; ++i) {
      double in_bucket = static_cast<double>(buckets_[i].load(std::memory_order_relaxed));
      if (cum + in_bucket >= target) {
        std::uint64_t lo = BucketLow(i);
        std::uint64_t hi = BucketHigh(i);
        double frac = in_bucket == 0 ? 0 : (target - cum) / in_bucket;
        std::uint64_t est = lo + static_cast<std::uint64_t>(frac * static_cast<double>(hi - lo));
        // The interpolated estimate can overshoot the largest observed value
        // (the top of the crossing bucket may be empty); clamp to reality.
        std::uint64_t mx = max();
        return est < mx ? est : mx;
      }
      cum += in_bucket;
    }
    return max();
  }

  std::uint64_t BucketCount(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  void Reset() {
    for (auto& b : buckets_) {
      b.store(0, std::memory_order_relaxed);
    }
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

  static int BucketOf(std::uint64_t v) { return std::bit_width(v); }
  static std::uint64_t BucketLow(int i) {
    return i == 0 ? 0 : std::uint64_t{1} << (i - 1);
  }
  static std::uint64_t BucketHigh(int i) {
    return i == 0 ? 0 : i >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << i) - 1;
  }

 private:
  std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

}  // namespace vos

#endif  // VOS_SRC_BASE_HISTOGRAM_H_
