#include "src/base/log.h"

#include <cstdio>

#include "src/base/status.h"

namespace vos {

namespace {
LogLevel g_level = LogLevel::kWarn;

const char* LevelName(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

void LogMessage(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < static_cast<int>(g_level)) {
    return;
  }
  std::fprintf(stderr, "[vos %s] %s\n", LevelName(level), msg.c_str());
}

const char* ErrName(std::int64_t e) {
  if (e >= 0) {
    return "OK";
  }
  switch (e) {
    case kErrPerm:
      return "EPERM";
    case kErrNoEnt:
      return "ENOENT";
    case kErrIntr:
      return "EINTR";
    case kErrIo:
      return "EIO";
    case kErrBadFd:
      return "EBADF";
    case kErrNoMem:
      return "ENOMEM";
    case kErrFault:
      return "EFAULT";
    case kErrExist:
      return "EEXIST";
    case kErrNotDir:
      return "ENOTDIR";
    case kErrIsDir:
      return "EISDIR";
    case kErrInval:
      return "EINVAL";
    case kErrNFile:
      return "ENFILE";
    case kErrMFile:
      return "EMFILE";
    case kErrFBig:
      return "EFBIG";
    case kErrNoSpace:
      return "ENOSPC";
    case kErrPipe:
      return "EPIPE";
    case kErrNameTooLong:
      return "ENAMETOOLONG";
    case kErrNotEmpty:
      return "ENOTEMPTY";
    case kErrWouldBlock:  // == kErrAgain, as on Linux
      return "EAGAIN";
    case kErrNoSys:
      return "ENOSYS";
    case kErrChild:
      return "ECHILD";
    case kErrXDev:
      return "EXDEV";
    case kErrRange:
      return "ERANGE";
    default:
      return "E?";
  }
}

}  // namespace vos
