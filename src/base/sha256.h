// SHA-256 (FIPS 180-4), implemented from scratch for the blockchain miner app
// (double-SHA-256 proof of work) and verified against NIST test vectors.
#ifndef VOS_SRC_BASE_SHA256_H_
#define VOS_SRC_BASE_SHA256_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace vos {

using Sha256Digest = std::array<std::uint8_t, 32>;

class Sha256 {
 public:
  Sha256();

  void Update(const void* data, std::size_t len);
  Sha256Digest Final();

  // Convenience one-shot.
  static Sha256Digest Hash(const void* data, std::size_t len);
  // Bitcoin-style double hash.
  static Sha256Digest DoubleHash(const void* data, std::size_t len);
  static std::string ToHex(const Sha256Digest& d);

 private:
  void ProcessBlock(const std::uint8_t* p);

  std::array<std::uint32_t, 8> h_;
  std::array<std::uint8_t, 64> buf_;
  std::size_t buf_len_ = 0;
  std::uint64_t total_len_ = 0;
};

}  // namespace vos

#endif  // VOS_SRC_BASE_SHA256_H_
