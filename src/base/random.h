// Deterministic PRNG (xorshift64*) used across the simulator so runs are
// reproducible from a seed. Never uses wall-clock entropy.
#ifndef VOS_SRC_BASE_RANDOM_H_
#define VOS_SRC_BASE_RANDOM_H_

#include <cstdint>

namespace vos {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed ? seed : 1) {}

  std::uint64_t Next();

  // Uniform in [0, bound). bound must be > 0.
  std::uint64_t NextBelow(std::uint64_t bound);

  // Uniform in [lo, hi] inclusive.
  std::int64_t NextRange(std::int64_t lo, std::int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // True with probability p (clamped to [0,1]).
  bool Chance(double p);

 private:
  std::uint64_t state_;
};

}  // namespace vos

#endif  // VOS_SRC_BASE_RANDOM_H_
