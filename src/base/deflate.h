// DEFLATE compressor: fixed-Huffman blocks with a greedy LZ77 matcher, plus a
// stored-block fallback. Exists so the test/bench asset pipeline can generate
// real PNGs and compressed archives that the in-OS decoders consume.
#ifndef VOS_SRC_BASE_DEFLATE_H_
#define VOS_SRC_BASE_DEFLATE_H_

#include <cstdint>
#include <vector>

namespace vos {

// Compresses to a raw DEFLATE stream (always decodable by Inflate()).
std::vector<std::uint8_t> Deflate(const std::uint8_t* data, std::size_t len);

// Wraps Deflate() in a zlib header/trailer (decodable by ZlibInflate()).
std::vector<std::uint8_t> ZlibDeflate(const std::uint8_t* data, std::size_t len);

}  // namespace vos

#endif  // VOS_SRC_BASE_DEFLATE_H_
