#include "src/base/random.h"

#include "src/base/assert.h"

namespace vos {

std::uint64_t Rng::Next() {
  std::uint64_t x = state_;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  state_ = x;
  return x * 0x2545f4914f6cdd1dull;
}

std::uint64_t Rng::NextBelow(std::uint64_t bound) {
  VOS_CHECK(bound > 0);
  return Next() % bound;
}

std::int64_t Rng::NextRange(std::int64_t lo, std::int64_t hi) {
  VOS_CHECK(lo <= hi);
  return lo + static_cast<std::int64_t>(NextBelow(static_cast<std::uint64_t>(hi - lo + 1)));
}

double Rng::NextDouble() { return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0); }

bool Rng::Chance(double p) {
  if (p <= 0) {
    return false;
  }
  if (p >= 1) {
    return true;
  }
  return NextDouble() < p;
}

}  // namespace vos
