// CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320) — used by the PNG decoder
// and by filesystem image self-checks.
#ifndef VOS_SRC_BASE_CRC32_H_
#define VOS_SRC_BASE_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace vos {

// One-shot CRC of a buffer.
std::uint32_t Crc32(const void* data, std::size_t len);

// Streaming form: crc starts at 0 and is fed back in.
std::uint32_t Crc32Update(std::uint32_t crc, const void* data, std::size_t len);

}  // namespace vos

#endif  // VOS_SRC_BASE_CRC32_H_
