// Assertion macros for the vos library.
//
// VOS_CHECK is always on (simulator-level invariants); VOS_DCHECK compiles out
// in NDEBUG builds. Failures throw FatalError so tests can assert on panics
// instead of aborting the whole test binary.
#ifndef VOS_SRC_BASE_ASSERT_H_
#define VOS_SRC_BASE_ASSERT_H_

#include <stdexcept>
#include <string>

namespace vos {

// Thrown on fatal library misuse or broken invariants. Carries the failing
// expression and location.
class FatalError : public std::runtime_error {
 public:
  explicit FatalError(const std::string& what) : std::runtime_error(what) {}
};

// Formats and throws a FatalError. Not inlined to keep call sites small.
[[noreturn]] void AssertFail(const char* expr, const char* file, int line, const char* msg);

}  // namespace vos

#define VOS_CHECK(expr)                                        \
  do {                                                         \
    if (!(expr)) {                                             \
      ::vos::AssertFail(#expr, __FILE__, __LINE__, nullptr);   \
    }                                                          \
  } while (0)

#define VOS_CHECK_MSG(expr, msg)                               \
  do {                                                         \
    if (!(expr)) {                                             \
      ::vos::AssertFail(#expr, __FILE__, __LINE__, (msg));     \
    }                                                          \
  } while (0)

#ifdef NDEBUG
#define VOS_DCHECK(expr) \
  do {                   \
  } while (0)
#else
#define VOS_DCHECK(expr) VOS_CHECK(expr)
#endif

#endif  // VOS_SRC_BASE_ASSERT_H_
