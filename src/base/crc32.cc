#include "src/base/crc32.h"

namespace vos {

namespace {
struct Crc32Table {
  std::uint32_t t[256];
  Crc32Table() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
  }
};
const Crc32Table g_table;
}  // namespace

std::uint32_t Crc32Update(std::uint32_t crc, const void* data, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t c = crc ^ 0xffffffffu;
  for (std::size_t i = 0; i < len; ++i) {
    c = g_table.t[(c ^ p[i]) & 0xff] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

std::uint32_t Crc32(const void* data, std::size_t len) { return Crc32Update(0, data, len); }

}  // namespace vos
