// DEFLATE decompressor (RFC 1951) and zlib-wrapped form (RFC 1950), written
// from scratch. This stands in for the paper's LODE PNG dependency: the
// png-lite decoder in ulib builds on it.
#ifndef VOS_SRC_BASE_INFLATE_H_
#define VOS_SRC_BASE_INFLATE_H_

#include <cstdint>
#include <optional>
#include <vector>

namespace vos {

// Decompresses a raw DEFLATE stream. Returns nullopt on malformed input.
// `max_output` bounds memory for fuzzed/corrupt inputs.
std::optional<std::vector<std::uint8_t>> Inflate(const std::uint8_t* data, std::size_t len,
                                                 std::size_t max_output = 64u << 20);

// Decompresses a zlib stream (2-byte header + deflate + adler32 trailer),
// verifying the checksum.
std::optional<std::vector<std::uint8_t>> ZlibInflate(const std::uint8_t* data, std::size_t len,
                                                     std::size_t max_output = 64u << 20);

// Adler-32 checksum (RFC 1950).
std::uint32_t Adler32(const std::uint8_t* data, std::size_t len);

}  // namespace vos

#endif  // VOS_SRC_BASE_INFLATE_H_
