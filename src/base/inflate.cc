#include "src/base/inflate.h"

#include <array>
#include <cstring>

namespace vos {

namespace {

// Bit reader over a byte buffer, LSB-first as DEFLATE requires.
class BitReader {
 public:
  BitReader(const std::uint8_t* data, std::size_t len) : data_(data), len_(len) {}

  // Returns nullopt past end of input.
  std::optional<std::uint32_t> Bits(int n) {
    std::uint32_t v = 0;
    for (int i = 0; i < n; ++i) {
      if (pos_ >= len_) {
        return std::nullopt;
      }
      v |= std::uint32_t((data_[pos_] >> bit_) & 1) << i;
      if (++bit_ == 8) {
        bit_ = 0;
        ++pos_;
      }
    }
    return v;
  }

  void AlignByte() {
    if (bit_ != 0) {
      bit_ = 0;
      ++pos_;
    }
  }

  bool ReadBytes(std::uint8_t* out, std::size_t n) {
    if (pos_ + n > len_) {
      return false;
    }
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return true;
  }

 private:
  const std::uint8_t* data_;
  std::size_t len_;
  std::size_t pos_ = 0;
  int bit_ = 0;
};

// Canonical Huffman decoder built from code lengths.
class Huffman {
 public:
  // lengths[i] = code length of symbol i (0 = unused). Returns false if the
  // length set is invalid (oversubscribed).
  bool Build(const std::uint8_t* lengths, int n) {
    counts_.fill(0);
    symbols_.assign(static_cast<std::size_t>(n), 0);
    for (int i = 0; i < n; ++i) {
      ++counts_[lengths[i]];
    }
    if (counts_[0] == n) {
      return false;  // no codes at all
    }
    // Check for over-subscription.
    int left = 1;
    for (int len = 1; len <= 15; ++len) {
      left <<= 1;
      left -= counts_[len];
      if (left < 0) {
        return false;
      }
    }
    std::array<int, 16> offsets{};
    for (int len = 1; len < 15; ++len) {
      offsets[len + 1] = offsets[len] + counts_[len];
    }
    for (int i = 0; i < n; ++i) {
      if (lengths[i] != 0) {
        symbols_[static_cast<std::size_t>(offsets[lengths[i]]++)] = static_cast<int>(i);
      }
    }
    return true;
  }

  // Decodes one symbol; nullopt on error/EOF.
  std::optional<int> Decode(BitReader& br) const {
    int code = 0;
    int first = 0;
    int index = 0;
    for (int len = 1; len <= 15; ++len) {
      auto b = br.Bits(1);
      if (!b) {
        return std::nullopt;
      }
      code |= static_cast<int>(*b);
      int count = counts_[len];
      if (code - first < count) {
        return symbols_[static_cast<std::size_t>(index + (code - first))];
      }
      index += count;
      first = (first + count) << 1;
      code <<= 1;
    }
    return std::nullopt;
  }

 private:
  std::array<int, 16> counts_{};
  std::vector<int> symbols_;
};

constexpr int kLenBase[29] = {3,  4,  5,  6,  7,  8,  9,  10, 11,  13,  15,  17,  19,  23, 27,
                              31, 35, 43, 51, 59, 67, 83, 99, 115, 131, 163, 195, 227, 258};
constexpr int kLenExtra[29] = {0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2,
                               2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0};
constexpr int kDistBase[30] = {1,    2,    3,    4,    5,    7,     9,     13,    17,   25,
                               33,   49,   65,   97,   129,  193,   257,   385,   513,  769,
                               1025, 1537, 2049, 3073, 4097, 6145,  8193,  12289, 16385, 24577};
constexpr int kDistExtra[30] = {0, 0, 0, 0, 1, 1, 2, 2,  3,  3,  4,  4,  5,  5,  6,
                                6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13, 13};

bool InflateBlockData(BitReader& br, const Huffman& lit, const Huffman& dist,
                      std::vector<std::uint8_t>& out, std::size_t max_output) {
  for (;;) {
    auto sym = lit.Decode(br);
    if (!sym) {
      return false;
    }
    if (*sym < 256) {
      if (out.size() >= max_output) {
        return false;
      }
      out.push_back(static_cast<std::uint8_t>(*sym));
    } else if (*sym == 256) {
      return true;  // end of block
    } else {
      int li = *sym - 257;
      if (li >= 29) {
        return false;
      }
      auto extra = br.Bits(kLenExtra[li]);
      if (!extra) {
        return false;
      }
      int length = kLenBase[li] + static_cast<int>(*extra);
      auto dsym = dist.Decode(br);
      if (!dsym || *dsym >= 30) {
        return false;
      }
      auto dextra = br.Bits(kDistExtra[*dsym]);
      if (!dextra) {
        return false;
      }
      std::size_t distance = static_cast<std::size_t>(kDistBase[*dsym]) + *dextra;
      if (distance > out.size()) {
        return false;
      }
      if (out.size() + static_cast<std::size_t>(length) > max_output) {
        return false;
      }
      std::size_t start = out.size() - distance;
      for (int i = 0; i < length; ++i) {
        out.push_back(out[start + static_cast<std::size_t>(i)]);
      }
    }
  }
}

bool BuildFixedTables(Huffman& lit, Huffman& dist) {
  std::uint8_t lit_len[288];
  for (int i = 0; i < 144; ++i) lit_len[i] = 8;
  for (int i = 144; i < 256; ++i) lit_len[i] = 9;
  for (int i = 256; i < 280; ++i) lit_len[i] = 7;
  for (int i = 280; i < 288; ++i) lit_len[i] = 8;
  std::uint8_t dist_len[30];
  for (int i = 0; i < 30; ++i) dist_len[i] = 5;
  return lit.Build(lit_len, 288) && dist.Build(dist_len, 30);
}

bool ReadDynamicTables(BitReader& br, Huffman& lit, Huffman& dist) {
  auto hlit = br.Bits(5);
  auto hdist = br.Bits(5);
  auto hclen = br.Bits(4);
  if (!hlit || !hdist || !hclen) {
    return false;
  }
  int nlit = static_cast<int>(*hlit) + 257;
  int ndist = static_cast<int>(*hdist) + 1;
  int ncode = static_cast<int>(*hclen) + 4;
  if (nlit > 286 || ndist > 30) {
    return false;
  }
  static constexpr int kOrder[19] = {16, 17, 18, 0, 8,  7, 9,  6, 10, 5,
                                     11, 4,  12, 3, 13, 2, 14, 1, 15};
  std::uint8_t code_len[19] = {};
  for (int i = 0; i < ncode; ++i) {
    auto v = br.Bits(3);
    if (!v) {
      return false;
    }
    code_len[kOrder[i]] = static_cast<std::uint8_t>(*v);
  }
  Huffman clen;
  if (!clen.Build(code_len, 19)) {
    return false;
  }
  std::uint8_t lengths[286 + 30] = {};
  int n = 0;
  while (n < nlit + ndist) {
    auto sym = clen.Decode(br);
    if (!sym) {
      return false;
    }
    if (*sym < 16) {
      lengths[n++] = static_cast<std::uint8_t>(*sym);
    } else if (*sym == 16) {
      if (n == 0) {
        return false;
      }
      auto rep = br.Bits(2);
      if (!rep) {
        return false;
      }
      std::uint8_t prev = lengths[n - 1];
      for (std::uint32_t i = 0; i < *rep + 3 && n < nlit + ndist; ++i) {
        lengths[n++] = prev;
      }
    } else if (*sym == 17) {
      auto rep = br.Bits(3);
      if (!rep) {
        return false;
      }
      for (std::uint32_t i = 0; i < *rep + 3 && n < nlit + ndist; ++i) {
        lengths[n++] = 0;
      }
    } else {
      auto rep = br.Bits(7);
      if (!rep) {
        return false;
      }
      for (std::uint32_t i = 0; i < *rep + 11 && n < nlit + ndist; ++i) {
        lengths[n++] = 0;
      }
    }
  }
  return lit.Build(lengths, nlit) && dist.Build(lengths + nlit, ndist);
}

}  // namespace

std::optional<std::vector<std::uint8_t>> Inflate(const std::uint8_t* data, std::size_t len,
                                                 std::size_t max_output) {
  BitReader br(data, len);
  std::vector<std::uint8_t> out;
  for (;;) {
    auto bfinal = br.Bits(1);
    auto btype = br.Bits(2);
    if (!bfinal || !btype) {
      return std::nullopt;
    }
    if (*btype == 0) {  // stored
      br.AlignByte();
      std::uint8_t hdr[4];
      if (!br.ReadBytes(hdr, 4)) {
        return std::nullopt;
      }
      std::uint16_t blen = static_cast<std::uint16_t>(hdr[0] | (hdr[1] << 8));
      std::uint16_t nlen = static_cast<std::uint16_t>(hdr[2] | (hdr[3] << 8));
      if (static_cast<std::uint16_t>(~blen) != nlen) {
        return std::nullopt;
      }
      if (out.size() + blen > max_output) {
        return std::nullopt;
      }
      std::size_t old = out.size();
      out.resize(old + blen);
      if (!br.ReadBytes(out.data() + old, blen)) {
        return std::nullopt;
      }
    } else if (*btype == 1 || *btype == 2) {
      Huffman lit, dist;
      bool ok = (*btype == 1) ? BuildFixedTables(lit, dist) : ReadDynamicTables(br, lit, dist);
      if (!ok || !InflateBlockData(br, lit, dist, out, max_output)) {
        return std::nullopt;
      }
    } else {
      return std::nullopt;  // btype 3 is reserved
    }
    if (*bfinal) {
      break;
    }
  }
  return out;
}

std::uint32_t Adler32(const std::uint8_t* data, std::size_t len) {
  std::uint32_t a = 1, b = 0;
  for (std::size_t i = 0; i < len; ++i) {
    a = (a + data[i]) % 65521;
    b = (b + a) % 65521;
  }
  return (b << 16) | a;
}

std::optional<std::vector<std::uint8_t>> ZlibInflate(const std::uint8_t* data, std::size_t len,
                                                     std::size_t max_output) {
  if (len < 6) {
    return std::nullopt;
  }
  std::uint8_t cmf = data[0];
  std::uint8_t flg = data[1];
  if ((cmf & 0x0f) != 8) {
    return std::nullopt;  // not deflate
  }
  if ((std::uint32_t(cmf) * 256 + flg) % 31 != 0) {
    return std::nullopt;  // bad header check
  }
  if (flg & 0x20) {
    return std::nullopt;  // preset dictionary unsupported
  }
  auto out = Inflate(data + 2, len - 6, max_output);
  if (!out) {
    return std::nullopt;
  }
  const std::uint8_t* tr = data + len - 4;
  std::uint32_t expect = (std::uint32_t(tr[0]) << 24) | (std::uint32_t(tr[1]) << 16) |
                         (std::uint32_t(tr[2]) << 8) | tr[3];
  if (Adler32(out->data(), out->size()) != expect) {
    return std::nullopt;
  }
  return out;
}

}  // namespace vos
