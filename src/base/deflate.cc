#include "src/base/deflate.h"

#include <array>
#include <cstring>
#include <unordered_map>

#include "src/base/inflate.h"

namespace vos {

namespace {

class BitWriter {
 public:
  void Bits(std::uint32_t v, int n) {
    for (int i = 0; i < n; ++i) {
      cur_ |= ((v >> i) & 1) << bit_;
      if (++bit_ == 8) {
        out_.push_back(cur_);
        cur_ = 0;
        bit_ = 0;
      }
    }
  }

  // Huffman codes are written MSB-first.
  void Code(std::uint32_t code, int n) {
    for (int i = n - 1; i >= 0; --i) {
      Bits((code >> i) & 1, 1);
    }
  }

  std::vector<std::uint8_t> Finish() {
    if (bit_ != 0) {
      out_.push_back(cur_);
      cur_ = 0;
      bit_ = 0;
    }
    return std::move(out_);
  }

 private:
  std::vector<std::uint8_t> out_;
  std::uint8_t cur_ = 0;
  int bit_ = 0;
};

// Fixed literal/length code (RFC 1951 §3.2.6).
void FixedLitCode(int sym, std::uint32_t& code, int& len) {
  if (sym < 144) {
    code = 0x30 + static_cast<std::uint32_t>(sym);
    len = 8;
  } else if (sym < 256) {
    code = 0x190 + static_cast<std::uint32_t>(sym - 144);
    len = 9;
  } else if (sym < 280) {
    code = static_cast<std::uint32_t>(sym - 256);
    len = 7;
  } else {
    code = 0xc0 + static_cast<std::uint32_t>(sym - 280);
    len = 8;
  }
}

constexpr int kLenBase[29] = {3,  4,  5,  6,  7,  8,  9,  10, 11,  13,  15,  17,  19,  23, 27,
                              31, 35, 43, 51, 59, 67, 83, 99, 115, 131, 163, 195, 227, 258};
constexpr int kLenExtra[29] = {0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2,
                               2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0};
constexpr int kDistBase[30] = {1,    2,    3,    4,    5,    7,     9,     13,    17,   25,
                               33,   49,   65,   97,   129,  193,   257,   385,   513,  769,
                               1025, 1537, 2049, 3073, 4097, 6145,  8193,  12289, 16385, 24577};
constexpr int kDistExtra[30] = {0, 0, 0, 0, 1, 1, 2, 2,  3,  3,  4,  4,  5,  5,  6,
                                6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13, 13};

int LengthSymbol(int length) {
  for (int i = 28; i >= 0; --i) {
    if (length >= kLenBase[i]) {
      return i;
    }
  }
  return 0;
}

int DistSymbol(std::size_t dist) {
  for (int i = 29; i >= 0; --i) {
    if (dist >= static_cast<std::size_t>(kDistBase[i])) {
      return i;
    }
  }
  return 0;
}

constexpr std::size_t kWindow = 32768;
constexpr int kMinMatch = 3;
constexpr int kMaxMatch = 258;

}  // namespace

std::vector<std::uint8_t> Deflate(const std::uint8_t* data, std::size_t len) {
  BitWriter bw;
  bw.Bits(1, 1);  // BFINAL
  bw.Bits(1, 2);  // fixed Huffman

  // Greedy LZ77: hash 3-byte prefixes to recent positions.
  std::unordered_map<std::uint32_t, std::size_t> head;
  head.reserve(len / 4 + 16);
  std::size_t i = 0;
  auto hash3 = [&](std::size_t p) {
    return std::uint32_t(data[p]) | (std::uint32_t(data[p + 1]) << 8) |
           (std::uint32_t(data[p + 2]) << 16);
  };
  while (i < len) {
    int best_len = 0;
    std::size_t best_dist = 0;
    if (i + kMinMatch <= len) {
      auto it = head.find(hash3(i));
      if (it != head.end() && i - it->second <= kWindow) {
        std::size_t cand = it->second;
        int m = 0;
        while (m < kMaxMatch && i + static_cast<std::size_t>(m) < len &&
               data[cand + static_cast<std::size_t>(m)] == data[i + static_cast<std::size_t>(m)]) {
          ++m;
        }
        if (m >= kMinMatch) {
          best_len = m;
          best_dist = i - cand;
        }
      }
      head[hash3(i)] = i;
    }
    if (best_len >= kMinMatch) {
      int ls = LengthSymbol(best_len);
      std::uint32_t code;
      int nbits;
      FixedLitCode(257 + ls, code, nbits);
      bw.Code(code, nbits);
      bw.Bits(static_cast<std::uint32_t>(best_len - kLenBase[ls]), kLenExtra[ls]);
      int ds = DistSymbol(best_dist);
      bw.Code(static_cast<std::uint32_t>(ds), 5);
      bw.Bits(static_cast<std::uint32_t>(best_dist - static_cast<std::size_t>(kDistBase[ds])),
              kDistExtra[ds]);
      // Insert hash entries for the skipped positions so later matches work.
      std::size_t stop = i + static_cast<std::size_t>(best_len);
      for (std::size_t p = i + 1; p + kMinMatch <= len && p < stop; ++p) {
        head[hash3(p)] = p;
      }
      i = stop;
    } else {
      std::uint32_t code;
      int nbits;
      FixedLitCode(data[i], code, nbits);
      bw.Code(code, nbits);
      ++i;
    }
  }
  std::uint32_t code;
  int nbits;
  FixedLitCode(256, code, nbits);  // end of block
  bw.Code(code, nbits);
  return bw.Finish();
}

std::vector<std::uint8_t> ZlibDeflate(const std::uint8_t* data, std::size_t len) {
  std::vector<std::uint8_t> out;
  out.push_back(0x78);  // CMF: deflate, 32K window
  out.push_back(0x9c);  // FLG chosen so (CMF*256+FLG) % 31 == 0
  std::vector<std::uint8_t> body = Deflate(data, len);
  out.insert(out.end(), body.begin(), body.end());
  std::uint32_t adler = Adler32(data, len);
  out.push_back(static_cast<std::uint8_t>(adler >> 24));
  out.push_back(static_cast<std::uint8_t>(adler >> 16));
  out.push_back(static_cast<std::uint8_t>(adler >> 8));
  out.push_back(static_cast<std::uint8_t>(adler));
  return out;
}

}  // namespace vos
