#include "src/kernel/machine.h"

#include <algorithm>

#include "src/base/assert.h"
#include "src/kernel/lockdep.h"

namespace vos {

Machine::Machine(Board& board, MachineClient* client, unsigned cores)
    : board_(board), client_(client), cores_(cores) {
  VOS_CHECK(cores >= 1 && cores <= kMaxCores);
}

Cycles Machine::Now() const {
  if (TaskFiber* f = TaskFiber::Current()) {
    return f->Now();
  }
  return board_.clock().now();
}

void Machine::DeliverInterrupts() {
  Intc& intc = board_.intc();
  // Everything dispatched from here runs in interrupt context: lockdep marks
  // every lock the handlers take as irq-used, which is what makes the
  // held-with-IRQs-enabled check meaningful for those classes.
  LockdepIrqScope irq_scope;
  if (intc.FiqPending()) {
    client_->OnFiq(intc.ConsumeFiq());
  }
  for (unsigned c = 0; c < cores_; ++c) {
    // Handle at most a bounded number of IRQs per core per window; a handler
    // that fails to ack would otherwise loop forever.
    for (int guard = 0; guard < 64; ++guard) {
      auto irq = intc.PendingFor(c);
      if (!irq) {
        break;
      }
      client_->OnIrq(c, *irq);
      VOS_CHECK_MSG(guard < 63, "IRQ handler did not ack its interrupt source");
    }
  }
}

void Machine::Run(Cycles until) {
  stop_ = false;
  VirtualClock& clock = board_.clock();
  EventQueue& events = board_.events();
  PowerMeter& power = board_.power();
  bool hat = board_.config().game_hat_present;

  while (!stop_ && clock.now() < until) {
    // Events due exactly now run before anything else.
    events.RunDue(clock.now());
    DeliverInterrupts();
    if (stop_) {
      break;
    }

    auto nt = events.NextTime();
    Cycles wend = std::min(until, nt.value_or(until));
    VOS_CHECK(wend >= clock.now());
    if (wend == clock.now()) {
      // An event scheduled for "now" by a handler; loop to run it.
      continue;
    }

    bool any_ran = false;
    std::array<Cycles, kMaxCores> t{};
    for (unsigned c = 0; c < cores_; ++c) {
      t[c] = clock.now();
      // Pay off pending IRQ-handler time first: it occupied the core.
      if (irq_debt_[c] > 0) {
        Cycles d = std::min(irq_debt_[c], wend - t[c]);
        irq_debt_[c] -= d;
        t[c] += d;
        busy_[c] += d;
        power.AddActive(PowerComponent::kSocCoreBusy, d);
        any_ran = true;
      }
    }
    // Multi-pass execution of the window: a task woken by another core's
    // syscall becomes runnable immediately, so cores that idled earlier get
    // re-examined until the window is quiescent. (Cross-core wakeups may run
    // slightly "early" within the window; the skew is bounded by the window
    // length, i.e. one timer tick.)
    bool progress = true;
    int zero_progress_guard = 0;
    while (progress && !stop_) {
      progress = false;
      for (unsigned c = 0; c < cores_; ++c) {
        while (t[c] < wend && !stop_) {
          Task* task = client_->PickNext(c);
          if (task == nullptr) {
            break;  // WFI until someone becomes runnable or the next event
          }
          VOS_CHECK_MSG(task->state == TaskState::kRunnable, "picked task not runnable");
          task->state = TaskState::kRunning;
          running_[c] = task;
          TaskFiber::RunResult rr = task->fiber().Run(wend - t[c], t[c]);
          running_[c] = nullptr;
          t[c] += rr.consumed;
          busy_[c] += rr.consumed;
          power.AddActive(PowerComponent::kSocCoreBusy, rr.consumed);
          task->cpu_time += rr.consumed;
          task->time_by_domain[static_cast<int>(task->domain)] += rr.consumed;
          task->slice_used += rr.consumed;
          any_ran = true;
          progress = true;
          if (span_hook_ && rr.consumed > 0) {
            span_hook_(c, task, t[c] - rr.consumed, t[c]);
          }
          client_->OnTaskStopped(c, task, rr.reason);
          if (rr.consumed == 0) {
            VOS_CHECK_MSG(++zero_progress_guard < 100000,
                          "scheduler livelock: task stops without consuming time");
          } else {
            zero_progress_guard = 0;
          }
        }
      }
    }
    for (unsigned c = 0; c < cores_; ++c) {
      if (t[c] < wend) {
        idle_[c] += wend - t[c];
        power.AddActive(PowerComponent::kSocCoreIdle, wend - t[c]);
        if (span_hook_) {
          span_hook_(c, nullptr, t[c], wend);
        }
      }
    }

    Cycles win = wend - clock.now();
    power.AddActive(PowerComponent::kSocBase, win);
    if (hat) {
      power.AddActive(PowerComponent::kHatBase, win);
      if (board_.fb().allocated()) {
        power.AddActive(PowerComponent::kHatDisplay, win);
      }
    }
    if (board_.usb().configured()) {
      power.AddActive(PowerComponent::kUsbActive, win);
    }

    clock.AdvanceTo(wend);
    events.RunDue(wend);
    DeliverInterrupts();

    if (!any_ran && !nt.has_value()) {
      // Fully idle with nothing scheduled: account the remainder and stop.
      break;
    }
  }
}

}  // namespace vos
