// Kernel configuration: prototype stage (the paper's incremental feature
// matrix, Table 1), platform profile (Pi3 vs QEMU, Table 2), OS profile
// (ours vs xv6 vs production baselines, Fig 9), and the cycle cost model all
// virtual-time measurements derive from.
#ifndef VOS_SRC_KERNEL_KCONFIG_H_
#define VOS_SRC_KERNEL_KCONFIG_H_

#include <cstdint>
#include <string>

#include "src/base/units.h"

namespace vos {

// The five incremental prototypes (§4).
enum class Stage : int {
  kProto1 = 1,  // baremetal IO: fb + uart + timers, app in irq handler
  kProto2 = 2,  // multitasking: kernel tasks, scheduler, sleep, WFI
  kProto3 = 3,  // user/kernel: VM, EL0 tasks, task syscalls, mmap, exec
  kProto4 = 4,  // files: VFS, xv6fs, devfs/procfs, USB kbd, audio, pipes
  kProto5 = 5,  // desktop: FAT32+SD, threads+semaphores, multicore, WM
};

// Hardware/emulator platform (Table 2).
enum class Platform : int {
  kPi3 = 0,      // real Pi3 model B+
  kQemuWsl = 1,  // QEMU on Ubuntu in WSL2 (fast x86 host)
  kQemuVm = 2,   // QEMU on Ubuntu in VMware Player
};

// OS baselines compared in Fig 9 / Table 4. All four run the same kernel with
// different mechanisms/costs enabled, reproducing the paper's comparisons as
// controlled ablations rather than hard-coded numbers.
enum class OsProfile : int {
  kOurs = 0,     // VOS: newlib-like libc, eager fork, polled SD, range bypass
  kXv6 = 1,      // xv6-armv8: musl-like libc, eager fork, slower polled SD,
                 // single-block buffer cache only
  kLinux = 2,    // production: glibc, COW fork, DMA SD, aggressive caching
  kFreebsd = 3,  // production: BSD libc, COW fork, DMA SD
};

const char* StageName(Stage s);
const char* PlatformName(Platform p);
const char* OsProfileName(OsProfile p);

// Scheduling policy for the per-core runqueues. kRr reproduces the seed
// behaviour exactly (one level, rotate on slice expiry); kMlfq enables the
// 3-level multi-level feedback queue (demote on full-slice burn, periodic
// priority boost) — see DESIGN.md "Scheduling & IPC".
enum class SchedPolicy : int {
  kRr = 0,
  kMlfq = 1,
};

// All compute costs are cycles of the 1 GHz virtual clock (== ns).
struct CostModel {
  // Syscall path.
  Cycles syscall_entry = 1300;   // EL0->EL1 trap, register save, dispatch
  Cycles syscall_exit = 900;     // return path, register restore
  Cycles syscall_body = 700;     // argument fetch/validate for a trivial call
  // Scheduling.
  Cycles context_switch = 1900;  // register file + callee-saved + ttbr swap
  Cycles sched_pick = 350;
  Cycles wakeup = 500;
  // Memory management.
  Cycles page_alloc = 420;
  Cycles page_free = 260;
  Cycles page_copy = 2900;       // 4 KB copy
  Cycles pte_install = 240;
  Cycles fork_base = 18000;      // task struct, fd table dup, bookkeeping
  Cycles cow_mark_per_page = 90; // COW profile: remap instead of copy
  Cycles exec_base = 120000;     // ELF parse, old-space teardown
  Cycles sbrk_base = 1500;
  Cycles mmap_base = 8000;
  // IPC.
  Cycles pipe_op = 7200;         // lock, ring manipulation, wakeup partner
  double pipe_per_byte = 1.2;
  Cycles ipc_create = 5200;      // futex channel: table slot + ring allocation
  Cycles ipc_map = 2600;         // map the shared ring into the caller
  Cycles ipc_ring_op = 120;      // user-side ring index math + fences per op
  // Networking (per-operation CPU costs; wire time comes from the NIC model).
  Cycles sock_op = 1800;         // socket table lookup, state checks, wakeups
  Cycles net_proto_per_seg = 950;  // header build/parse + checksum per segment
  double net_copy_per_byte = 0.5;  // socket buffer <-> user copy
  // Bulk data movement (per byte).
  double memcpy_per_byte = 0.45;      // ARMv8 assembly memmove (§5.2)
  double memcpy_naive_per_byte = 4.0; // C byte-at-a-time loop (ablation)
  double blit_per_byte = 0.5;
  double yuv_simd_per_byte = 0.42;    // NEON fixed-point conversion (§5.2)
  double yuv_scalar_per_byte = 45.0;  // per-pixel float conversion (§5.2: the
                                      // unoptimized path dominated the frame)
  // Filesystem CPU costs (I/O time comes from the device models).
  Cycles namei_per_component = 900;
  Cycles inode_op = 1200;
  Cycles bcache_lookup = 700;
  Cycles bcache_flush_work = 400;  // per-buffer bookkeeping when writing back
  Cycles fat_chain_step = 260;
  // App compute scale. Models the C-library difference the paper measures
  // (newlib vs musl vs glibc, §6.2): multiplies app/userlib compute burns.
  double libc_compute_scale = 1.0;
  // Trap/IRQ.
  Cycles irq_entry = 900;
  Cycles timer_tick_work = 1400;
  // Profiler: cost of capturing one stack sample (walk the shadow stack,
  // hash frames, publish a ring record). Charged as IRQ debt per sample so
  // profiling overhead is real in virtual time (bench_prof measures it).
  Cycles prof_sample_capture = 2200;
  // Per-frame baseline poll work in SDL-style event loops.
  Cycles event_poll = 2500;
};

struct KernelConfig {
  Stage stage = Stage::kProto5;
  Platform platform = Platform::kPi3;
  OsProfile os = OsProfile::kOurs;

  unsigned cores = 4;             // used cores (proto5 only; earlier stages use 1)
  Cycles tick_interval = Ms(1);   // per-core scheduler tick
  unsigned slice_ticks = 10;      // round-robin slice = 10 ms

  // Scheduler policy knobs. The defaults keep seed behaviour: single-level
  // round robin with work stealing across the per-core runqueues.
  SchedPolicy sched_policy = SchedPolicy::kRr;
  bool sched_steal = true;              // steal-half when a core's queue is empty
  std::uint32_t mlfq_boost_ms = 100;    // periodic boost interval (kMlfq only)

  // Default byte capacity of a futex IPC ring (SysIpcCreate(0) uses this).
  std::uint32_t ipc_ring_bytes = 65536;

  std::uint32_t fb_width = 640;
  std::uint32_t fb_height = 480;

  // Optimization toggles (§5.2), independently switchable for ablations.
  bool opt_asm_memcpy = true;        // ARMv8 assembly memory move
  bool opt_simd_pixel = true;        // SIMD YUV->RGB conversion
  bool opt_bcache_bypass = true;     // range I/O bypasses the buffer cache
  bool opt_writeback_cache = true;   // write-back bcache (off = xv6 write-through)
  bool opt_wm_dirty_rects = true;    // WM redraws only dirty regions
  // Write-back cache policy knobs (only meaningful with opt_writeback_cache).
  std::uint32_t bcache_flush_interval_ms = 50;  // bflush thread wake period
  std::uint32_t bcache_dirty_age_ms = 30;       // age before background flush
  double bcache_dirty_ratio = 0.5;   // dirty fraction that throttles writers
  // Write-ahead journal for the xv6 root filesystem (src/fs/journal.h).
  // Active only when the image carries a log region (sb.nlog > 0).
  bool jrnl_enabled = true;
  bool jrnl_group_commit = true;   // off = one commit record per transaction
  std::uint32_t jrnl_commit_blocks = 12;       // size trigger: seal the open batch
  std::uint32_t jrnl_commit_interval_ms = 20;  // time trigger (flusher-driven)
  std::uint32_t jrnl_max_tx_blocks = 12;       // Writei splits its tx at this many blocks
  std::uint32_t jrnl_checkpoint_batch = 16;    // fs blocks drained per flusher tick
  std::uint32_t jrnl_pin_max = 32;             // pinned device bufs forcing a sync checkpoint
  // Per-core slab cache (magazine) capacity, in objects per size class per
  // core. Larger = fewer depot-lock trips, more memory cached per core.
  std::uint32_t slab_percore_cache_objs = 32;
  // Production-OS mechanisms (enabled by linux/freebsd profiles).
  bool cow_fork = false;
  bool dma_sd = false;

  // Block-layer fault handling (§6 of DESIGN.md). Every block device is
  // wrapped in a FaultInjectingBlockDevice; with fault_inject_enabled off the
  // decorator is a zero-fault pass-through. Runtime control: /proc/faultinject.
  bool fault_inject_enabled = false;
  std::uint64_t fault_seed = 1;
  double fault_transient_rate = 0.0;      // per-transfer P(transient error)
  double fault_timeout_rate = 0.0;        // per-transfer P(command stall)
  double fault_latency_spike_rate = 0.0;  // per-transfer P(latency spike)
  double fault_latency_spike_mult = 20.0; // spike = mult × Us(100)
  // Retry discipline BlockRequestQueue applies per request.
  std::uint32_t blk_max_retries = 4;
  std::uint32_t blk_retry_backoff_us = 50;   // first backoff; doubles per retry
  std::uint32_t blk_timeout_budget_ms = 50;  // per-request service-time ceiling

  bool trace_enabled = true;         // ftrace-like ring (negligible overhead)
  std::uint32_t trace_ring_capacity = 16384;  // records per core (tests shrink
                                              // it to exercise wrap/drop)
  bool lockdep_enabled = true;       // lock-order/IRQ-safety validator (§7 of
                                     // DESIGN.md); off = record nothing
  bool racedet_enabled = true;       // Eraser lockset data-race detector; needs
                                     // lockdep (its held stacks are the lockset)
  std::uint32_t racedet_cells = 4096;  // shadow-cell hash capacity (rounded up
                                       // to a power of two)

  // Sampling profiler (src/kernel/profiler.h). Off by default; /proc/profile
  // (or the `prof` coreutil) starts/stops it at runtime. prof_hz is virtual-
  // time sampling frequency; with the 1 GHz clock, 100 Hz = one sample per
  // 10 ms of virtual time per core.
  bool prof_enabled = false;          // start sampling at boot
  std::uint32_t prof_hz = 100;        // samples per virtual second per core
  std::uint32_t prof_ring_capacity = 8192;  // sample records per core
  std::uint32_t prof_max_frames = 24; // frames kept per sample (deepest first)
  bool prof_offcpu = true;            // attribute blocked-time to sleep stacks

  // Hung-task / softlockup watchdog (kernel thread, proto2+). Barks via klog
  // + kWatchdogBark when a runnable task sits unscheduled — or a core stops
  // servicing its timer tick — for watchdog_thresh_ms of virtual time.
  // Non-fatal: one bark per offender, reset when it runs again.
  bool watchdog_enabled = true;
  std::uint32_t watchdog_thresh_ms = 10000;  // generous: stress tests queue deep
  std::uint32_t watchdog_poll_ms = 1000;     // watchdog thread wake period

  // Network stack (src/kernel/net/, proto5-gated via HasNet()). The NIC link
  // is the FaultInjector-style wire model in src/hw/nic.h; loss/latency are
  // runtime-tunable through /proc/netstat writes as well.
  bool net_enabled = true;
  std::uint32_t net_ip = 0x0A000002;        // 10.0.0.2 (loopback wire peer too)
  std::uint32_t net_mtu = 1500;             // ethernet payload bytes per frame
  std::uint32_t net_rx_ring = 256;          // NIC descriptor ring entries
  std::uint32_t net_tx_ring = 256;
  std::uint32_t net_irq_coalesce_frames = 8;   // RX IRQ after this many frames…
  std::uint32_t net_irq_coalesce_us = 50;      // …or this window, whichever first
  std::uint32_t net_link_latency_us = 20;      // one-way wire propagation
  std::uint32_t net_link_loss_ppm = 0;         // deterministic seeded frame loss
  std::uint64_t net_link_seed = 1;
  std::uint32_t net_rto_ms = 50;            // TCP retransmit timeout (doubles)
  std::uint32_t net_max_retries = 8;        // RTO expiries before reset
  std::uint32_t net_sndbuf = 32768;         // per-socket send buffer bytes
  std::uint32_t net_rcvbuf = 32768;         // per-socket receive buffer bytes
  std::uint32_t net_time_wait_ms = 5;       // short TIME_WAIT (virtual time)
  std::uint32_t net_somaxconn = 512;        // listen backlog hard cap

  CostModel cost;

  // Effective number of cores for this stage (multicore arrives in proto5).
  unsigned EffectiveCores() const {
    return stage >= Stage::kProto5 ? cores : 1;
  }

  // --- Feature tests mirroring Table 1 ---
  bool HasMultitasking() const { return stage >= Stage::kProto2; }
  bool HasVm() const { return stage >= Stage::kProto3; }
  bool HasTaskSyscalls() const { return stage >= Stage::kProto3; }
  bool HasFiles() const { return stage >= Stage::kProto4; }
  bool HasUsb() const { return stage >= Stage::kProto4; }
  bool HasAudio() const { return stage >= Stage::kProto4; }
  bool HasThreads() const { return stage >= Stage::kProto5; }
  bool HasMulticore() const { return stage >= Stage::kProto5; }
  bool HasSd() const { return stage >= Stage::kProto5; }
  bool HasFat32() const { return stage >= Stage::kProto5; }
  bool HasWm() const { return stage >= Stage::kProto5; }
  bool HasKmalloc() const { return stage >= Stage::kProto4; }
  bool HasNet() const { return net_enabled && stage >= Stage::kProto5; }
};

// Returns a config with platform/profile-dependent costs applied:
// - platform scales compute (QEMU on a fast x86 host runs guest code faster)
// - OS profile selects libc cost scale and production mechanisms.
KernelConfig MakeConfig(Stage stage, Platform platform = Platform::kPi3,
                        OsProfile os = OsProfile::kOurs);

}  // namespace vos

#endif  // VOS_SRC_KERNEL_KCONFIG_H_
