// Stack unwinder (§5.1): walks a task's call frames and prints call sites.
// The real VOS port walks ARMv8 frame records and prints raw addresses for
// offline symbolization; here each task maintains a shadow call stack of
// frame markers (pushed by StackFrame RAII guards in kernel code and apps),
// so dumps are symbolized directly.
#ifndef VOS_SRC_KERNEL_UNWIND_H_
#define VOS_SRC_KERNEL_UNWIND_H_

#include <string>
#include <vector>

#include "src/kernel/task.h"

namespace vos {

// Formats one task's stack, innermost frame first, one line per frame, in
// the style of the kernel's panic dumps.
std::string UnwindTask(const Task& t);

// Formats "all cores" the way the FIQ panic button does: for each provided
// task (the per-core running tasks), a header plus its stack.
std::string UnwindAll(const std::vector<const Task*>& running);

}  // namespace vos

#endif  // VOS_SRC_KERNEL_UNWIND_H_
