// UDP: datagram input and the (connected-socket) send path. Net lock held.
#include <cstring>

#include "src/base/status.h"
#include "src/kernel/net/net.h"

namespace vos {

void NetStack::HandleUdp(std::uint32_t src_ip, const std::uint8_t* p, std::size_t len,
                         Cycles* burn) {
  Charge(burn, cfg_.cost.net_proto_per_seg);
  if (len < kUdpHdrLen) {
    ++stats_.udp_drop;
    return;
  }
  std::uint16_t sport = Get16(p + 0);
  std::uint16_t dport = Get16(p + 2);
  std::uint16_t ulen = Get16(p + 4);
  if (ulen < kUdpHdrLen || ulen > len) {
    ++stats_.udp_drop;
    return;
  }
  auto it = RD_READ(udp_binds_).find(dport);
  if (it == RD_READ(udp_binds_).end()) {
    ++stats_.udp_drop;
    return;
  }
  Socket* s = it->second;
  std::size_t payload = ulen - kUdpHdrLen;
  if (s->udpq.size() >= 64 || s->udpq_bytes + payload > cfg_.net_rcvbuf) {
    ++stats_.udp_drop;
    return;
  }
  UdpDatagram d;
  d.src_ip = src_ip;
  d.src_port = sport;
  d.bytes.assign(p + kUdpHdrLen, p + kUdpHdrLen + payload);
  s->udpq_bytes += payload;
  s->udpq.push_back(std::move(d));
  ++stats_.udp_rx;
  Charge(burn, static_cast<Cycles>(static_cast<double>(payload) * cfg_.cost.net_copy_per_byte));
  sched_.Wakeup(&s->udp_chan);
}

}  // namespace vos
