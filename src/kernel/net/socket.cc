// Socket layer: the blocking/nonblocking operations the syscalls call. Every
// op takes the net lock; blocking paths SleepOn channels inside the tcb or
// socket (releasing the lock while parked), return kErrIntr when the task is
// killed, and kErrAgain in nonblock mode — the Pipe discipline, exactly.
#include <algorithm>
#include <cstring>

#include "src/base/status.h"
#include "src/kernel/net/net.h"
#include "src/kernel/task.h"

namespace vos {

std::shared_ptr<Socket> NetStack::CreateSocket(Socket::Type type) {
  SpinGuard g(lock_);
  ++RD_WRITE(sockets_live_);
  return std::make_shared<Socket>(type);
}

std::int64_t NetStack::Bind(Socket& s, std::uint16_t port) {
  SpinGuard g(lock_);
  if (port == 0 || s.bound) {
    return kErrInval;
  }
  if (PortBound(port)) {
    return kErrExist;
  }
  s.bound = true;
  s.local_port = port;
  if (s.type == Socket::Type::kUdp) {
    RD_WRITE(udp_binds_)[port] = &s;
  }
  return 0;
}

std::int64_t NetStack::Listen(Socket& s, std::uint32_t backlog) {
  SpinGuard g(lock_);
  if (s.type != Socket::Type::kTcp || !s.bound || s.tcb != nullptr) {
    return kErrInval;
  }
  if (s.listening) {
    s.backlog = std::min(std::max<std::uint32_t>(backlog, 1), cfg_.net_somaxconn);
    return 0;
  }
  s.listening = true;
  s.backlog = std::min(std::max<std::uint32_t>(backlog, 1), cfg_.net_somaxconn);
  RD_WRITE(listeners_)[s.local_port] = &s;
  return 0;
}

std::int64_t NetStack::Accept(Task* cur, Socket& s, bool nonblock, std::shared_ptr<Socket>* out,
                              std::uint32_t* peer_ip, std::uint16_t* peer_port, Cycles* burn) {
  Charge(burn, cfg_.cost.sock_op);
  SpinGuard g(lock_);
  if (!s.listening) {
    return kErrInval;
  }
  while (s.accept_q.empty()) {
    if (cur->killed) {
      return kErrIntr;
    }
    if (nonblock) {
      return kErrAgain;
    }
    sched_.SleepOn(cur, &s.accept_chan, lock_);
    if (!s.listening) {
      return kErrInval;  // the listener was closed under us
    }
  }
  std::shared_ptr<Tcb> t = s.accept_q.front();
  s.accept_q.pop_front();
  t->listener = nullptr;
  auto ns = std::make_shared<Socket>(Socket::Type::kTcp);
  ns->bound = true;
  ns->local_port = t->local_port;
  ns->tcb = t;
  t->sock_attached = true;
  ++RD_WRITE(sockets_live_);
  *out = std::move(ns);
  if (peer_ip != nullptr) {
    *peer_ip = t->remote_ip;
  }
  if (peer_port != nullptr) {
    *peer_port = t->remote_port;
  }
  return 0;
}

std::int64_t NetStack::Connect(Task* cur, Socket& s, std::uint32_t ip, std::uint16_t port,
                               bool nonblock, Cycles* burn) {
  Charge(burn, cfg_.cost.sock_op);
  SpinGuard g(lock_);
  if (port == 0) {
    return kErrInval;
  }
  if (s.type == Socket::Type::kUdp) {
    // Datagram connect just fixes the default destination.
    s.udp_connected = true;
    s.udp_peer_ip = ip;
    s.udp_peer_port = port;
    if (!s.bound) {
      std::uint16_t lp = AllocEphemeralPort(ip, port);
      if (lp == 0) {
        return kErrAgain;
      }
      s.bound = true;
      s.local_port = lp;
      RD_WRITE(udp_binds_)[lp] = &s;
    }
    return 0;
  }
  if (s.listening) {
    return kErrInval;
  }
  if (s.tcb == nullptr) {
    // First call: allocate the endpoint and fire the SYN.
    std::uint16_t lp = s.bound ? s.local_port : AllocEphemeralPort(ip, port);
    if (lp == 0) {
      return kErrAgain;
    }
    if (RD_READ(tcbs_).count(TcbKey(ip, port, lp)) != 0) {
      return kErrExist;
    }
    auto t = std::make_shared<Tcb>();
    t->local_ip = cfg_.net_ip;
    t->remote_ip = ip;
    t->local_port = lp;
    t->remote_port = port;
    t->state = TcpState::kSynSent;
    t->iss = RD_READ(next_iss_);
    RD_WRITE(next_iss_) = RD_READ(next_iss_) + 64000;
    t->snd_una = t->iss;
    t->snd_nxt = t->iss + 1;
    t->sndq_seq = t->iss + 1;
    t->sock_attached = true;
    RD_WRITE(tcbs_)[KeyOf(*t)] = t;
    s.bound = true;
    s.local_port = lp;
    s.tcb = t;
    ++stats_.tcp_active_open;
    TcpSendSeg(*t, kTcpSyn, t->iss, nullptr, 0, burn);
    TcpArmRto(t);
  }
  std::shared_ptr<Tcb> t = s.tcb;
  while (t->state == TcpState::kSynSent) {
    if (cur->killed) {
      return kErrIntr;  // the handshake continues in the background
    }
    if (nonblock) {
      return kErrAgain;  // retry connect() to harvest the result
    }
    sched_.SleepOn(cur, &t->rcv_chan, lock_);
  }
  if (t->state == TcpState::kClosed && t->error != 0) {
    return t->error;
  }
  return 0;
}

std::int64_t NetStack::Send(Task* cur, Socket& s, const std::uint8_t* buf, std::size_t n,
                            bool nonblock, Cycles* burn) {
  Charge(burn, cfg_.cost.sock_op);
  SpinGuard g(lock_);
  if (s.type == Socket::Type::kUdp) {
    if (!s.udp_connected) {
      return kErrInval;
    }
    std::size_t mtu_payload = cfg_.net_mtu - kIpHdrLen - kUdpHdrLen;
    std::size_t take = std::min(n, mtu_payload);
    std::vector<std::uint8_t> dgram(kUdpHdrLen + take);
    Put16(dgram.data() + 0, s.local_port);
    Put16(dgram.data() + 2, s.udp_peer_port);
    Put16(dgram.data() + 4, static_cast<std::uint16_t>(dgram.size()));
    Put16(dgram.data() + 6, 0);  // checksum optional in IPv4 UDP
    std::memcpy(dgram.data() + kUdpHdrLen, buf, take);
    ++stats_.udp_tx;
    Charge(burn, static_cast<Cycles>(static_cast<double>(take) * cfg_.cost.net_copy_per_byte));
    SendIp(s.udp_peer_ip, kIpProtoUdp, dgram.data(), dgram.size(), burn);
    return static_cast<std::int64_t>(take);
  }

  std::shared_ptr<Tcb> t = s.tcb;
  if (t == nullptr) {
    return kErrInval;  // never connected
  }
  std::size_t done = 0;
  while (done < n) {
    if (t->state == TcpState::kClosed) {
      return done > 0 ? static_cast<std::int64_t>(done)
                      : (t->error != 0 ? t->error : kErrPipe);
    }
    if (t->fin_queued || t->state == TcpState::kFinWait1 || t->state == TcpState::kFinWait2 ||
        t->state == TcpState::kLastAck || t->state == TcpState::kClosing ||
        t->state == TcpState::kTimeWait) {
      // We already shut down our write side.
      return done > 0 ? static_cast<std::int64_t>(done) : kErrPipe;
    }
    if (t->state == TcpState::kSynSent) {
      // connect() has not finished; block until it does (or fail fast).
      if (cur->killed) {
        return done > 0 ? static_cast<std::int64_t>(done) : kErrIntr;
      }
      if (nonblock) {
        return done > 0 ? static_cast<std::int64_t>(done) : kErrAgain;
      }
      sched_.SleepOn(cur, &t->rcv_chan, lock_);
      continue;
    }
    if (t->sndq.size() >= cfg_.net_sndbuf) {
      if (cur->killed) {
        return done > 0 ? static_cast<std::int64_t>(done) : kErrIntr;
      }
      if (nonblock) {
        return done > 0 ? static_cast<std::int64_t>(done) : kErrAgain;
      }
      sched_.SleepOn(cur, &t->snd_chan, lock_);
      continue;
    }
    std::size_t room = cfg_.net_sndbuf - t->sndq.size();
    std::size_t take = std::min(room, n - done);
    t->sndq.insert(t->sndq.end(), buf + done, buf + done + take);
    done += take;
    Charge(burn, static_cast<Cycles>(static_cast<double>(take) * cfg_.cost.net_copy_per_byte));
    TcpPushSend(*t, burn);
  }
  return static_cast<std::int64_t>(done);
}

std::int64_t NetStack::Recv(Task* cur, Socket& s, std::uint8_t* buf, std::size_t n, bool nonblock,
                            Cycles* burn) {
  Charge(burn, cfg_.cost.sock_op);
  SpinGuard g(lock_);
  if (s.type == Socket::Type::kUdp) {
    while (s.udpq.empty()) {
      if (cur->killed) {
        return kErrIntr;
      }
      if (nonblock) {
        return kErrAgain;
      }
      sched_.SleepOn(cur, &s.udp_chan, lock_);
    }
    UdpDatagram d = std::move(s.udpq.front());
    s.udpq.pop_front();
    s.udpq_bytes -= d.bytes.size();
    std::size_t take = std::min(n, d.bytes.size());
    std::memcpy(buf, d.bytes.data(), take);
    Charge(burn, static_cast<Cycles>(static_cast<double>(take) * cfg_.cost.net_copy_per_byte));
    return static_cast<std::int64_t>(take);  // excess datagram bytes are dropped
  }

  std::shared_ptr<Tcb> t = s.tcb;
  if (t == nullptr) {
    return kErrInval;
  }
  while (t->rcvq.empty()) {
    if (t->rcv_shutdown || t->peer_fin) {
      return 0;  // orderly EOF
    }
    if (t->state == TcpState::kClosed) {
      return t->error != 0 ? t->error : 0;
    }
    if (cur->killed) {
      return kErrIntr;
    }
    if (nonblock) {
      return kErrAgain;
    }
    sched_.SleepOn(cur, &t->rcv_chan, lock_);
  }
  std::size_t take = std::min(n, t->rcvq.size());
  std::copy(t->rcvq.begin(), t->rcvq.begin() + static_cast<std::ptrdiff_t>(take), buf);
  t->rcvq.erase(t->rcvq.begin(), t->rcvq.begin() + static_cast<std::ptrdiff_t>(take));
  Charge(burn, static_cast<Cycles>(static_cast<double>(take) * cfg_.cost.net_copy_per_byte));
  return static_cast<std::int64_t>(take);
}

std::int64_t NetStack::Shutdown(Task* cur, Socket& s, int how, Cycles* burn) {
  (void)cur;
  Charge(burn, cfg_.cost.sock_op);
  SpinGuard g(lock_);
  if (how < 0 || how > 2) {
    return kErrInval;
  }
  if (s.listening) {
    // shutdown() on a listener stops accepting: parked accept() callers wake
    // and observe !listening -> kErrInval. Embryos/queued connections are torn
    // down by the eventual close().
    RD_WRITE(listeners_).erase(s.local_port);
    s.listening = false;
    sched_.Wakeup(&s.accept_chan);
    return 0;
  }
  if (s.type == Socket::Type::kUdp || s.tcb == nullptr) {
    return s.type == Socket::Type::kUdp ? 0 : kErrInval;
  }
  std::shared_ptr<Tcb> t = s.tcb;
  if (how == 0 || how == 2) {
    t->rcv_shutdown = true;
    t->rcvq.clear();
    sched_.Wakeup(&t->rcv_chan);
  }
  if (how == 1 || how == 2) {
    CloseTcbHalf(t, burn);
  }
  return 0;
}

void NetStack::CloseSocket(const std::shared_ptr<Socket>& s) {
  SpinGuard g(lock_);
  --RD_WRITE(sockets_live_);
  if (s->type == Socket::Type::kUdp) {
    if (s->bound) {
      RD_WRITE(udp_binds_).erase(s->local_port);
    }
    return;
  }
  if (s->tcb == nullptr) {
    // A listener (current or shutdown()-stopped) or a never-connected socket.
    // Reset every connection this listener still owns — both established
    // ones waiting in accept_q and half-open embryos in the tcb table — so no
    // tcb is left pointing at the freed Socket.
    if (s->listening) {
      RD_WRITE(listeners_).erase(s->local_port);
      s->listening = false;
    }
    std::vector<std::shared_ptr<Tcb>> orphans;
    for (const auto& [key, t] : RD_READ(tcbs_)) {
      (void)key;
      if (t->listener == s.get()) {
        orphans.push_back(t);
      }
    }
    for (const auto& t : orphans) {
      ++stats_.tcp_rst_tx;
      ++stats_.tcp_seg_tx;
      TcpSendSeg(*t, kTcpRst | kTcpAck, t->snd_nxt, nullptr, 0, nullptr);
      TcpKill(t, kErrIo);
    }
    sched_.Wakeup(&s->accept_chan);
    return;
  }
  if (s->tcb != nullptr) {
    std::shared_ptr<Tcb> t = s->tcb;
    t->sock_attached = false;
    // POSIX close: no more reads, send FIN after buffered data. The tcb
    // lingers as an orphan in the table until its handshake finishes.
    t->rcv_shutdown = true;
    t->rcvq.clear();
    CloseTcbHalf(t, nullptr);
  }
}

}  // namespace vos
