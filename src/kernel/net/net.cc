// Stack core: frame/packet output, ARP, IPv4 demux, /proc/netstat.
#include "src/kernel/net/net.h"

#include <cstdio>
#include <cstring>
#include <sstream>

#include "src/base/assert.h"
#include "src/base/status.h"

namespace vos {

namespace {

constexpr MacAddr kBroadcastMac = {0xff, 0xff, 0xff, 0xff, 0xff, 0xff};

MacAddr MacForIp(std::uint32_t ip) {
  // Locally-administered MAC derived from the IP, the way the board would
  // fuse one per station: 02:00:aa:bb:cc:dd for a.b.c.d.
  return MacAddr{0x02, 0x00, static_cast<std::uint8_t>(ip >> 24),
                 static_cast<std::uint8_t>(ip >> 16), static_cast<std::uint8_t>(ip >> 8),
                 static_cast<std::uint8_t>(ip)};
}

std::string IpStr(std::uint32_t ip) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (ip >> 24) & 0xff, (ip >> 16) & 0xff,
                (ip >> 8) & 0xff, ip & 0xff);
  return buf;
}

}  // namespace

std::uint16_t InetChecksum(const std::uint8_t* data, std::size_t len, std::uint32_t seed) {
  std::uint64_t sum = seed;
  std::size_t i = 0;
  for (; i + 1 < len; i += 2) {
    sum += static_cast<std::uint32_t>((data[i] << 8) | data[i + 1]);
  }
  if (i < len) {
    sum += static_cast<std::uint32_t>(data[i] << 8);
  }
  while (sum >> 16) {
    sum = (sum & 0xffff) + (sum >> 16);
  }
  return static_cast<std::uint16_t>(~sum & 0xffff);
}

const char* TcpStateName(TcpState s) {
  switch (s) {
    case TcpState::kClosed: return "CLOSED";
    case TcpState::kListen: return "LISTEN";
    case TcpState::kSynSent: return "SYN_SENT";
    case TcpState::kSynRcvd: return "SYN_RCVD";
    case TcpState::kEstablished: return "ESTABLISHED";
    case TcpState::kFinWait1: return "FIN_WAIT1";
    case TcpState::kFinWait2: return "FIN_WAIT2";
    case TcpState::kCloseWait: return "CLOSE_WAIT";
    case TcpState::kLastAck: return "LAST_ACK";
    case TcpState::kClosing: return "CLOSING";
    case TcpState::kTimeWait: return "TIME_WAIT";
  }
  return "?";
}

NetStack::NetStack(const KernelConfig& cfg, Sched& sched, VirtualClock& clock, EventQueue& events,
                   TraceRing& trace, Metrics& metrics, Nic& nic)
    : cfg_(cfg),
      sched_(sched),
      clock_(clock),
      events_(events),
      trace_(trace),
      metrics_(metrics),
      nic_(nic) {
  mac_ = MacForIp(cfg_.net_ip);
}

void NetStack::Init() {
  loss_ppm_override_ = cfg_.net_link_loss_ppm;
  latency_us_override_ = cfg_.net_link_latency_us;
  seed_override_ = cfg_.net_link_seed;
  {
    SpinGuard g(lock_);
    ApplyLinkFaultsLocked();
    SpinGuard n(nic_lock_);
    nic_.SetIrqCoalesce(cfg_.net_irq_coalesce_frames, Us(cfg_.net_irq_coalesce_us));
  }
  // Gauges snapshot token-serialized counters, like every other subsystem.
  metrics_.Gauge("net.nic.tx_frames", [this] { return nic_.tx_frames(); });
  metrics_.Gauge("net.nic.rx_frames", [this] { return nic_.rx_frames(); });
  metrics_.Gauge("net.nic.tx_bytes", [this] { return nic_.tx_bytes(); });
  metrics_.Gauge("net.nic.rx_bytes", [this] { return nic_.rx_bytes(); });
  metrics_.Gauge("net.nic.link_dropped", [this] { return nic_.link_dropped(); });
  metrics_.Gauge("net.nic.irqs_raised", [this] { return nic_.irqs_raised(); });
  metrics_.Gauge("net.nic.irqs_coalesced", [this] { return nic_.irqs_coalesced(); });
  metrics_.Gauge("net.tcp.established", [this] { return stats().tcp_established; });
  metrics_.Gauge("net.tcp.retransmits", [this] { return stats().tcp_retransmit; });
  metrics_.Gauge("net.tcp.accept_drops", [this] { return stats().tcp_accept_drop; });
  metrics_.Gauge("net.tcp.resets_tx", [this] { return stats().tcp_rst_tx; });
  metrics_.Gauge("net.tcbs", [this] { return static_cast<std::uint64_t>(tcb_count()); });
  metrics_.Gauge("net.sockets", [this] {
    return sockets_live_;  // racedet: ok (token-serialized snapshot)
  });
  metrics_.Gauge("net.udp.rx", [this] { return stats().udp_rx; });
}

// --- Output path ------------------------------------------------------------

void NetStack::TxFrame(const std::uint8_t* frame, std::size_t len, Cycles* burn) {
  Cycles local = 0;
  bool ok;
  {
    SpinGuard g(nic_lock_);  // net -> nic hierarchy edge
    ok = nic_.PostTx(frame, len, &local);
  }
  Charge(burn, local);
  if (!ok) {
    ++stats_.tx_drop;
    return;
  }
  trace_.Emit(clock_.now(), 0, TraceEvent::kNetTx, 0, len);
}

void NetStack::SendArpRequest(std::uint32_t ip, Cycles* burn) {
  std::uint8_t f[kEthHdrLen + 28];
  std::memcpy(f, kBroadcastMac.data(), 6);
  std::memcpy(f + 6, mac_.data(), 6);
  Put16(f + 12, kEthTypeArp);
  std::uint8_t* a = f + kEthHdrLen;
  Put16(a + 0, 1);       // htype: ethernet
  Put16(a + 2, kEthTypeIpv4);
  a[4] = 6;              // hlen
  a[5] = 4;              // plen
  Put16(a + 6, 1);       // op: request
  std::memcpy(a + 8, mac_.data(), 6);
  Put32(a + 14, cfg_.net_ip);
  std::memset(a + 18, 0, 6);
  Put32(a + 24, ip);
  ++stats_.arp_tx;
  TxFrame(f, sizeof(f), burn);
}

void NetStack::SendIp(std::uint32_t dst_ip, std::uint8_t proto, const std::uint8_t* payload,
                      std::size_t len, Cycles* burn) {
  Charge(burn, cfg_.cost.net_proto_per_seg);
  std::vector<std::uint8_t> pkt(kIpHdrLen + len);
  std::uint8_t* h = pkt.data();
  h[0] = 0x45;  // IPv4, 20-byte header
  h[1] = 0;
  Put16(h + 2, static_cast<std::uint16_t>(pkt.size()));
  Put16(h + 4, 0);  // id (no fragmentation in this stack)
  Put16(h + 6, 0x4000);  // DF
  h[8] = 64;  // ttl
  h[9] = proto;
  Put16(h + 10, 0);
  Put32(h + 12, cfg_.net_ip);
  Put32(h + 16, dst_ip);
  Put16(h + 10, InetChecksum(h, kIpHdrLen));
  std::memcpy(pkt.data() + kIpHdrLen, payload, len);
  ++stats_.ip_tx;

  auto it = RD_READ(arp_cache_).find(dst_ip);
  if (it == RD_READ(arp_cache_).end()) {
    // Park the packet behind ARP resolution; re-ask every time so a lost
    // request heals (requests are idempotent).
    auto& q = RD_WRITE(arp_pending_)[dst_ip];
    if (q.size() < 64) {
      q.push_back(std::move(pkt));
    } else {
      ++stats_.ip_drop;
    }
    SendArpRequest(dst_ip, burn);
    return;
  }
  std::vector<std::uint8_t> frame(kEthHdrLen + pkt.size());
  std::memcpy(frame.data(), it->second.data(), 6);
  std::memcpy(frame.data() + 6, mac_.data(), 6);
  Put16(frame.data() + 12, kEthTypeIpv4);
  std::memcpy(frame.data() + kEthHdrLen, pkt.data(), pkt.size());
  TxFrame(frame.data(), frame.size(), burn);
}

// --- Input path -------------------------------------------------------------

Cycles NetStack::OnNicIrq(Cycles now) {
  Cycles burn = 0;
  std::vector<NicFrame> frames;
  {
    SpinGuard g(nic_lock_);
    nic_.AckIrq();
    NicFrame f;
    while (nic_.PopRx(&f, &burn)) {
      frames.push_back(std::move(f));
    }
  }
  SpinGuard g(lock_);
  for (const NicFrame& f : frames) {
    trace_.Emit(now, 0, TraceEvent::kNetRx, 0, f.bytes.size());
    HandleFrame(f, &burn);
  }
  return burn;
}

void NetStack::HandleFrame(const NicFrame& f, Cycles* burn) {
  if (f.bytes.size() < kEthHdrLen) {
    ++stats_.ip_drop;
    return;
  }
  const std::uint8_t* p = f.bytes.data();
  // Accept our unicast MAC and broadcast (promiscuous otherwise: drop).
  if (std::memcmp(p, mac_.data(), 6) != 0 &&
      std::memcmp(p, kBroadcastMac.data(), 6) != 0) {
    ++stats_.ip_drop;
    return;
  }
  std::uint16_t type = Get16(p + 12);
  if (type == kEthTypeArp) {
    HandleArp(p + kEthHdrLen, f.bytes.size() - kEthHdrLen, burn);
  } else if (type == kEthTypeIpv4) {
    HandleIp(p + kEthHdrLen, f.bytes.size() - kEthHdrLen, burn);
  } else {
    ++stats_.ip_drop;
  }
}

void NetStack::HandleArp(const std::uint8_t* p, std::size_t len, Cycles* burn) {
  if (len < 28) {
    return;
  }
  ++stats_.arp_rx;
  std::uint16_t op = Get16(p + 6);
  MacAddr sha;
  std::memcpy(sha.data(), p + 8, 6);
  std::uint32_t spa = Get32(p + 14);
  std::uint32_t tpa = Get32(p + 24);
  // Learn the sender unconditionally (gratuitous-friendly), then drain any
  // packets that were parked on this resolution.
  RD_WRITE(arp_cache_)[spa] = sha;
  auto pend = RD_WRITE(arp_pending_).find(spa);
  if (pend != RD_WRITE(arp_pending_).end()) {
    auto queue = std::move(pend->second);
    RD_WRITE(arp_pending_).erase(pend);
    for (auto& pkt : queue) {
      std::vector<std::uint8_t> frame(kEthHdrLen + pkt.size());
      std::memcpy(frame.data(), sha.data(), 6);
      std::memcpy(frame.data() + 6, mac_.data(), 6);
      Put16(frame.data() + 12, kEthTypeIpv4);
      std::memcpy(frame.data() + kEthHdrLen, pkt.data(), pkt.size());
      TxFrame(frame.data(), frame.size(), burn);
    }
  }
  if (op == 1 && tpa == cfg_.net_ip) {
    // Request for us: reply unicast.
    std::uint8_t f[kEthHdrLen + 28];
    std::memcpy(f, sha.data(), 6);
    std::memcpy(f + 6, mac_.data(), 6);
    Put16(f + 12, kEthTypeArp);
    std::uint8_t* a = f + kEthHdrLen;
    Put16(a + 0, 1);
    Put16(a + 2, kEthTypeIpv4);
    a[4] = 6;
    a[5] = 4;
    Put16(a + 6, 2);  // reply
    std::memcpy(a + 8, mac_.data(), 6);
    Put32(a + 14, cfg_.net_ip);
    std::memcpy(a + 18, sha.data(), 6);
    Put32(a + 24, spa);
    ++stats_.arp_tx;
    TxFrame(f, sizeof(f), burn);
  }
}

void NetStack::HandleIp(const std::uint8_t* p, std::size_t len, Cycles* burn) {
  Charge(burn, cfg_.cost.net_proto_per_seg);
  if (len < kIpHdrLen || (p[0] >> 4) != 4 || (p[0] & 0x0f) != 5) {
    ++stats_.ip_drop;
    return;
  }
  if (InetChecksum(p, kIpHdrLen) != 0) {
    ++stats_.csum_drop;
    return;
  }
  std::uint16_t tot = Get16(p + 2);
  if (tot < kIpHdrLen || tot > len) {
    ++stats_.ip_drop;
    return;
  }
  std::uint32_t dst = Get32(p + 16);
  if (dst != cfg_.net_ip) {
    ++stats_.ip_drop;
    return;
  }
  ++stats_.ip_rx;
  std::uint32_t src = Get32(p + 12);
  const std::uint8_t* payload = p + kIpHdrLen;
  std::size_t plen = tot - kIpHdrLen;
  switch (p[9]) {
    case kIpProtoTcp:
      HandleTcp(src, payload, plen, burn);
      break;
    case kIpProtoUdp:
      HandleUdp(src, payload, plen, burn);
      break;
    default:
      ++stats_.ip_drop;
  }
}

// --- Ports ------------------------------------------------------------------

bool NetStack::PortBound(std::uint16_t port) const {
  return RD_READ(listeners_).count(port) != 0 || RD_READ(udp_binds_).count(port) != 0;
}

std::uint16_t NetStack::AllocEphemeralPort(std::uint32_t rip, std::uint16_t rport) {
  for (int tries = 0; tries < 32768; ++tries) {
    std::uint16_t port = static_cast<std::uint16_t>(RD_READ(next_ephemeral_));
    RD_WRITE(next_ephemeral_) = RD_READ(next_ephemeral_) + 1;
    if (RD_READ(next_ephemeral_) > 65535) {
      RD_WRITE(next_ephemeral_) = 32768;
    }
    if (PortBound(port)) {
      continue;
    }
    if (RD_READ(tcbs_).count(TcbKey(rip, rport, port)) != 0) {
      continue;
    }
    return port;
  }
  return 0;
}

// --- /proc/netstat ----------------------------------------------------------

std::string NetStack::NetstatText() const {
  SpinGuard g(lock_);
  std::ostringstream os;
  os << "ip " << IpStr(cfg_.net_ip) << " mtu " << cfg_.net_mtu << "\n";
  os << "ip_tx " << stats_.ip_tx << " ip_rx " << stats_.ip_rx << " ip_drop " << stats_.ip_drop
     << " csum_drop " << stats_.csum_drop << "\n";
  os << "arp_tx " << stats_.arp_tx << " arp_rx " << stats_.arp_rx << "\n";
  os << "udp_tx " << stats_.udp_tx << " udp_rx " << stats_.udp_rx << " udp_drop "
     << stats_.udp_drop << "\n";
  os << "tcp_seg_tx " << stats_.tcp_seg_tx << " tcp_seg_rx " << stats_.tcp_seg_rx
     << " retransmit " << stats_.tcp_retransmit << "\n";
  os << "tcp_open active " << stats_.tcp_active_open << " passive " << stats_.tcp_passive_open
     << " established " << stats_.tcp_established << "\n";
  os << "tcp_rst_tx " << stats_.tcp_rst_tx << " tcp_rst_rx " << stats_.tcp_rst_rx
     << " accept_drop " << stats_.tcp_accept_drop << " ooo_drop " << stats_.tcp_ooo_drop << "\n";
  os << "nic tx " << nic_.tx_frames() << "/" << nic_.tx_bytes() << "B rx " << nic_.rx_frames()
     << "/" << nic_.rx_bytes() << "B link_drop " << nic_.link_dropped() << " tx_ring_full "
     << nic_.tx_ring_full() << " rx_ring_full " << nic_.rx_ring_full() << "\n";
  os << "nic irqs " << nic_.irqs_raised() << " coalesced " << nic_.irqs_coalesced() << "\n";
  os << "sockets " << RD_READ(sockets_live_) << " tcbs " << RD_READ(tcbs_).size() << "\n";
  for (const auto& [key, t] : RD_READ(tcbs_)) {
    (void)key;
    os << "tcb " << IpStr(t->local_ip) << ":" << t->local_port << " " << IpStr(t->remote_ip)
       << ":" << t->remote_port << " " << TcpStateName(t->state) << " sndq " << t->sndq.size()
       << " rcvq " << t->rcvq.size() << "\n";
  }
  return os.str();
}

std::int64_t NetStack::Control(const std::string& text) {
  std::istringstream is(text);
  std::string cmd;
  is >> cmd;
  SpinGuard g(lock_);
  if (cmd == "loss") {
    std::uint32_t ppm = 0;
    if (!(is >> ppm)) {
      return kErrInval;
    }
    loss_ppm_override_ = ppm;
    ApplyLinkFaultsLocked();
    return 0;
  }
  if (cmd == "latency_us") {
    std::uint32_t us = 0;
    if (!(is >> us)) {
      return kErrInval;
    }
    latency_us_override_ = us;
    ApplyLinkFaultsLocked();
    return 0;
  }
  if (cmd == "seed") {
    std::uint64_t seed = 0;
    if (!(is >> seed)) {
      return kErrInval;
    }
    seed_override_ = seed;
    ApplyLinkFaultsLocked();
    return 0;
  }
  if (cmd == "coalesce") {
    std::uint32_t frames = 0;
    std::uint32_t us = 0;
    if (!(is >> frames >> us)) {
      return kErrInval;
    }
    SpinGuard n(nic_lock_);
    nic_.SetIrqCoalesce(frames, Us(us));
    return 0;
  }
  return kErrInval;
}

void NetStack::ApplyLinkFaultsLocked() {
  SpinGuard n(nic_lock_);
  nic_.SetLinkLatency(Us(latency_us_override_));
  nic_.SetLinkFaults(loss_ppm_override_, 0, seed_override_);
}

}  // namespace vos
