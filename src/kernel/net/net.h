// The network stack (proto5): ethernet/ARP/IPv4 framing, UDP, and a small
// TCP (3-way handshake, cumulative ACK, go-back-N retransmission, listen/
// accept backlog) layered over the simulated NIC in src/hw/nic.h.
//
// Structure, following the paper's driver methodology: the hardware model
// owns timing, the stack owns protocol state. All protocol and socket state
// is guarded by one "net" spinlock (the stack is a monitor, like xv6's
// single-lock subsystems); the NIC descriptor rings are touched under a
// separate leaf "nic" lock so the TX path's net->nic nesting gives lockdep a
// real hierarchy edge to check. Blocking socket ops sleep on channels inside
// the tcb/socket with the net lock held (SleepOn releases it), exactly like
// Pipe; kills surface as kErrIntr, nonblock as kErrAgain.
//
// Everything — including connections from this kernel to itself, which is
// what bench_net drives by the hundred thousand — goes out through the NIC's
// TX DMA ring, crosses the virtual link (latency + seeded loss), and comes
// back through RX descriptors and a coalesced IRQ. There is no loopback
// shortcut; ARP resolution, DMA costs and retransmissions are all real.
#ifndef VOS_SRC_KERNEL_NET_NET_H_
#define VOS_SRC_KERNEL_NET_NET_H_

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/base/units.h"
#include "src/hw/clock.h"
#include "src/hw/event_queue.h"
#include "src/hw/nic.h"
#include "src/kernel/kconfig.h"
#include "src/kernel/metrics.h"
#include "src/kernel/racedet.h"
#include "src/kernel/sched.h"
#include "src/kernel/spinlock.h"
#include "src/kernel/trace.h"

namespace vos {

// --- Wire constants ---------------------------------------------------------

using MacAddr = std::array<std::uint8_t, 6>;

constexpr std::uint16_t kEthTypeIpv4 = 0x0800;
constexpr std::uint16_t kEthTypeArp = 0x0806;
constexpr std::uint8_t kIpProtoTcp = 6;
constexpr std::uint8_t kIpProtoUdp = 17;
constexpr std::size_t kEthHdrLen = 14;
constexpr std::size_t kIpHdrLen = 20;
constexpr std::size_t kTcpHdrLen = 20;
constexpr std::size_t kUdpHdrLen = 8;

// TCP header flags.
constexpr std::uint8_t kTcpFin = 0x01;
constexpr std::uint8_t kTcpSyn = 0x02;
constexpr std::uint8_t kTcpRst = 0x04;
constexpr std::uint8_t kTcpPsh = 0x08;
constexpr std::uint8_t kTcpAck = 0x10;

// Sequence-space comparison with wraparound (RFC 793 arithmetic).
inline bool SeqLt(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) < 0;
}
inline bool SeqLe(std::uint32_t a, std::uint32_t b) { return a == b || SeqLt(a, b); }

// Big-endian (network order) field access.
inline void Put16(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 8);
  p[1] = static_cast<std::uint8_t>(v);
}
inline void Put32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}
inline std::uint16_t Get16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}
inline std::uint32_t Get32(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) | (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) | p[3];
}

// Ones'-complement internet checksum over `len` bytes plus an optional seed
// (used for the TCP/UDP pseudo-header). Exposed for tests.
std::uint16_t InetChecksum(const std::uint8_t* data, std::size_t len, std::uint32_t seed = 0);

// --- Connection state -------------------------------------------------------

enum class TcpState : int {
  kClosed = 0,
  kListen,     // only on listening sockets, never on a tcb
  kSynSent,
  kSynRcvd,
  kEstablished,
  kFinWait1,
  kFinWait2,
  kCloseWait,
  kLastAck,
  kClosing,
  kTimeWait,
};

const char* TcpStateName(TcpState s);

class Socket;

// One TCP connection endpoint. All fields are guarded by the stack's "net"
// lock; tcbs live in NetStack::tcbs_ keyed by (remote ip, remote port, local
// port) and are shared with the owning Socket (accept embryos have no socket
// yet, closed sockets may leave an orphan tcb finishing its teardown).
struct Tcb {
  std::uint32_t local_ip = 0;
  std::uint32_t remote_ip = 0;
  std::uint16_t local_port = 0;
  std::uint16_t remote_port = 0;
  TcpState state = TcpState::kClosed;

  // Send side. sndq holds bytes [sndq_seq, sndq_seq + size): unacked and
  // unsent data together — go-back-N retransmission replays from snd_una.
  std::uint32_t iss = 0;
  std::uint32_t snd_una = 0;
  std::uint32_t snd_nxt = 0;
  std::uint32_t snd_wnd = 0;      // peer's advertised window
  std::uint32_t sndq_seq = 0;     // sequence number of sndq.front()
  std::deque<std::uint8_t> sndq;
  bool fin_queued = false;        // close()/shutdown(WR) requested
  bool fin_sent = false;          // FIN occupies fin_seq in seq space
  std::uint32_t fin_seq = 0;

  // Receive side (in-order only; out-of-order segments are dropped and the
  // sender's go-back-N recovers them).
  std::uint32_t irs = 0;
  std::uint32_t rcv_nxt = 0;
  std::deque<std::uint8_t> rcvq;
  bool peer_fin = false;          // FIN received and sequenced
  bool rcv_shutdown = false;      // shutdown(RD): drop further payload

  // Retransmission.
  bool rto_armed = false;
  EventId rto_event = 0;
  std::uint32_t retries = 0;

  // Lifecycle.
  Socket* listener = nullptr;     // embryo: the listening socket that owns us
  bool sock_attached = false;     // a Socket currently references this tcb
  std::int64_t error = 0;         // sticky error (RST, too many retries)
  EventId time_wait_event = 0;

  // Sleep channels (monitor condition variables, as in Pipe).
  char rcv_chan = 0;
  char snd_chan = 0;
};

struct UdpDatagram {
  std::uint32_t src_ip = 0;
  std::uint16_t src_port = 0;
  std::vector<std::uint8_t> bytes;
};

// The object a FileKind::kSocket File points at. Guarded by the "net" lock.
class Socket {
 public:
  enum class Type : int { kTcp = 0, kUdp = 1 };

  explicit Socket(Type t) : type(t) {}

  Type type;
  bool bound = false;
  std::uint16_t local_port = 0;

  // TCP.
  std::shared_ptr<Tcb> tcb;                    // connected/accepted endpoint
  bool listening = false;
  std::uint32_t backlog = 0;
  std::uint32_t embryos = 0;                   // half-open, not yet accept_q
  std::deque<std::shared_ptr<Tcb>> accept_q;   // established, awaiting accept
  char accept_chan = 0;

  // UDP.
  bool udp_connected = false;
  std::uint32_t udp_peer_ip = 0;
  std::uint16_t udp_peer_port = 0;
  std::deque<UdpDatagram> udpq;
  std::size_t udpq_bytes = 0;
  char udp_chan = 0;
};

// Counters exported through net.* gauges and /proc/netstat. Written under
// the net lock; gauge callbacks snapshot them token-serialized, like Pipe's
// readers()/writers() accessors.
struct NetStats {
  std::uint64_t ip_tx = 0;
  std::uint64_t ip_rx = 0;
  std::uint64_t ip_drop = 0;        // not for us / malformed / bad proto
  std::uint64_t csum_drop = 0;
  std::uint64_t arp_tx = 0;
  std::uint64_t arp_rx = 0;
  std::uint64_t udp_tx = 0;
  std::uint64_t udp_rx = 0;
  std::uint64_t udp_drop = 0;       // no socket / queue overflow
  std::uint64_t tcp_seg_tx = 0;
  std::uint64_t tcp_seg_rx = 0;
  std::uint64_t tcp_retransmit = 0;
  std::uint64_t tcp_active_open = 0;
  std::uint64_t tcp_passive_open = 0;
  std::uint64_t tcp_established = 0;  // monotonic: handshakes completed
  std::uint64_t tcp_rst_tx = 0;
  std::uint64_t tcp_rst_rx = 0;
  std::uint64_t tcp_accept_drop = 0;  // SYN dropped: backlog full
  std::uint64_t tcp_ooo_drop = 0;     // out-of-order/overflow payload dropped
  std::uint64_t tx_drop = 0;          // NIC TX ring full
};

// --- The stack --------------------------------------------------------------

class NetStack {
 public:
  NetStack(const KernelConfig& cfg, Sched& sched, VirtualClock& clock, EventQueue& events,
           TraceRing& trace, Metrics& metrics, Nic& nic);

  // Applies cfg knobs to the NIC (coalescing, link faults) and registers the
  // net.* gauges. Call once from Kernel::Boot.
  void Init();

  // --- Socket layer (syscall context; `cur` is the calling task) ---
  std::shared_ptr<Socket> CreateSocket(Socket::Type type);
  std::int64_t Bind(Socket& s, std::uint16_t port);
  std::int64_t Listen(Socket& s, std::uint32_t backlog);
  // On success fills *out (new connected socket) + peer address.
  std::int64_t Accept(Task* cur, Socket& s, bool nonblock, std::shared_ptr<Socket>* out,
                      std::uint32_t* peer_ip, std::uint16_t* peer_port, Cycles* burn);
  std::int64_t Connect(Task* cur, Socket& s, std::uint32_t ip, std::uint16_t port, bool nonblock,
                       Cycles* burn);
  std::int64_t Send(Task* cur, Socket& s, const std::uint8_t* buf, std::size_t n, bool nonblock,
                    Cycles* burn);
  std::int64_t Recv(Task* cur, Socket& s, std::uint8_t* buf, std::size_t n, bool nonblock,
                    Cycles* burn);
  // how: 0 = read side, 1 = write side (sends FIN), 2 = both.
  std::int64_t Shutdown(Task* cur, Socket& s, int how, Cycles* burn);
  // File-close hook (Vfs::Close): full teardown; the tcb may outlive the
  // socket as an orphan until its FIN handshake finishes.
  void CloseSocket(const std::shared_ptr<Socket>& s);

  // --- IRQ half: ack + drain the NIC RX ring, run the protocol input path.
  // Returns the cycles to charge the interrupted core.
  Cycles OnNicIrq(Cycles now);

  // --- /proc/netstat ---
  std::string NetstatText() const;
  // Command language: "loss <ppm>" | "latency_us <n>" | "seed <n>" |
  // "coalesce <frames> <us>". Returns 0 or a negative errno.
  std::int64_t Control(const std::string& text);

  const NetStats& stats() const { return stats_; }  // racedet: ok (token-serialized snapshot)
  std::size_t tcb_count() const { return tcbs_.size(); }  // racedet: ok (token-serialized snapshot)
  std::uint32_t ip() const { return cfg_.net_ip; }

 private:
  friend class NetTestPeer;

  // 4-tuple demux key; local_ip is fixed so (remote ip, remote port, local
  // port) identifies a connection.
  static std::uint64_t TcbKey(std::uint32_t rip, std::uint16_t rport, std::uint16_t lport) {
    return (static_cast<std::uint64_t>(rip) << 32) |
           (static_cast<std::uint64_t>(rport) << 16) | lport;
  }
  static std::uint64_t KeyOf(const Tcb& t) {
    return TcbKey(t.remote_ip, t.remote_port, t.local_port);
  }

  // Frame/packet output (net lock held; takes the nic lock: the net->nic
  // lockdep edge). `burn` may be nullptr in timer context.
  void TxFrame(const std::uint8_t* frame, std::size_t len, Cycles* burn);
  void SendIp(std::uint32_t dst_ip, std::uint8_t proto, const std::uint8_t* payload,
              std::size_t len, Cycles* burn);
  void SendArpRequest(std::uint32_t ip, Cycles* burn);

  // Input path (net lock held).
  void HandleFrame(const NicFrame& f, Cycles* burn);
  void HandleArp(const std::uint8_t* p, std::size_t len, Cycles* burn);
  void HandleIp(const std::uint8_t* p, std::size_t len, Cycles* burn);
  void HandleUdp(std::uint32_t src_ip, const std::uint8_t* p, std::size_t len, Cycles* burn);
  void HandleTcp(std::uint32_t src_ip, const std::uint8_t* p, std::size_t len, Cycles* burn);

  // TCP machinery (tcp.cc; net lock held).
  struct TcpSeg {
    std::uint32_t src_ip = 0;
    std::uint16_t sport = 0;
    std::uint16_t dport = 0;
    std::uint32_t seq = 0;
    std::uint32_t ack = 0;
    std::uint8_t flags = 0;
    std::uint16_t wnd = 0;
    const std::uint8_t* data = nullptr;
    std::size_t len = 0;
  };
  void TcpInput(const std::shared_ptr<Tcb>& t, const TcpSeg& seg, Cycles* burn);
  void TcpPassiveOpen(Socket* listener, const TcpSeg& seg, Cycles* burn);
  void TcpSendSeg(Tcb& t, std::uint8_t flags, std::uint32_t seq, const std::uint8_t* data,
                  std::size_t len, Cycles* burn);
  void TcpSendRstFor(const TcpSeg& seg, Cycles* burn);
  // Sends whatever the window allows from sndq (plus a queued FIN).
  void TcpPushSend(Tcb& t, Cycles* burn);
  void TcpArmRto(const std::shared_ptr<Tcb>& t);
  void TcpDisarmRto(Tcb& t);
  void TcpOnRto(const std::shared_ptr<Tcb>& t);
  void TcpEnterTimeWait(const std::shared_ptr<Tcb>& t);
  // RST/failure teardown: sticky error, wake all waiters, drop from table.
  void TcpKill(const std::shared_ptr<Tcb>& t, std::int64_t err);
  void RemoveTcb(const std::shared_ptr<Tcb>& t);
  void CloseTcbHalf(const std::shared_ptr<Tcb>& t, Cycles* burn);  // shutdown(WR) logic

  std::uint16_t AllocEphemeralPort(std::uint32_t rip, std::uint16_t rport);
  bool PortBound(std::uint16_t port) const;
  void ApplyLinkFaultsLocked();  // net lock held; takes the nic lock
  void Charge(Cycles* burn, Cycles c) {
    if (burn != nullptr) {
      *burn += c;
    }
  }

  const KernelConfig& cfg_;
  Sched& sched_;
  VirtualClock& clock_;
  EventQueue& events_;
  TraceRing& trace_;
  Metrics& metrics_;
  Nic& nic_;

  MacAddr mac_{};

  mutable SpinLock lock_{"net"};      // the stack monitor
  mutable SpinLock nic_lock_{"nic"};  // leaf: NIC descriptor rings only

  // ARP: resolved neighbours plus packets parked awaiting resolution.
  std::unordered_map<std::uint32_t, MacAddr> arp_cache_;       // racedet: shared (guarded by lock_)
  std::unordered_map<std::uint32_t, std::deque<std::vector<std::uint8_t>>>
      arp_pending_;                                            // racedet: shared (guarded by lock_)

  std::unordered_map<std::uint64_t, std::shared_ptr<Tcb>> tcbs_;  // racedet: shared (guarded by lock_)
  std::unordered_map<std::uint16_t, Socket*> listeners_;          // racedet: shared (guarded by lock_)
  std::unordered_map<std::uint16_t, Socket*> udp_binds_;          // racedet: shared (guarded by lock_)
  std::uint32_t next_ephemeral_ = 32768;                          // racedet: shared (guarded by lock_)
  std::uint32_t next_iss_ = 1;                                    // racedet: shared (guarded by lock_)

  NetStats stats_;  // racedet: ok (aggregate; members written under lock_, gauges snapshot)
  std::uint64_t sockets_live_ = 0;  // racedet: shared (guarded by lock_)

  // Runtime link-fault state (/proc/netstat command language), seeded from
  // the cfg knobs at Init.
  std::uint32_t loss_ppm_override_ = 0;
  std::uint32_t latency_us_override_ = 0;
  std::uint64_t seed_override_ = 1;
};

}  // namespace vos

#endif  // VOS_SRC_KERNEL_NET_NET_H_
