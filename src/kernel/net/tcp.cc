// TCP: segment I/O, the connection state machine, go-back-N retransmission,
// and passive-open (listen backlog) handling. All entered with the net lock
// held — from the IRQ input path, from socket syscalls, or from RTO timer
// callbacks on the event queue.
#include <algorithm>
#include <cstring>

#include "src/base/assert.h"
#include "src/base/status.h"
#include "src/kernel/net/net.h"

namespace vos {

namespace {
// Pseudo-header seed for the TCP checksum: src ip, dst ip, proto, tcp length.
std::uint32_t TcpPseudoSeed(std::uint32_t src, std::uint32_t dst, std::size_t tcp_len) {
  std::uint32_t seed = 0;
  seed += (src >> 16) + (src & 0xffff);
  seed += (dst >> 16) + (dst & 0xffff);
  seed += kIpProtoTcp;
  seed += static_cast<std::uint32_t>(tcp_len);
  return seed;
}
}  // namespace

// --- Segment output ---------------------------------------------------------

void NetStack::TcpSendSeg(Tcb& t, std::uint8_t flags, std::uint32_t seq, const std::uint8_t* data,
                          std::size_t len, Cycles* burn) {
  std::vector<std::uint8_t> seg(kTcpHdrLen + len);
  std::uint8_t* h = seg.data();
  Put16(h + 0, t.local_port);
  Put16(h + 2, t.remote_port);
  Put32(h + 4, seq);
  Put32(h + 8, (flags & kTcpAck) != 0 ? t.rcv_nxt : 0);
  Put16(h + 12, static_cast<std::uint16_t>((5u << 12) | flags));
  std::size_t room = t.rcvq.size() < cfg_.net_rcvbuf ? cfg_.net_rcvbuf - t.rcvq.size() : 0;
  Put16(h + 14, static_cast<std::uint16_t>(std::min<std::size_t>(room, 0xffff)));
  Put16(h + 16, 0);  // checksum placeholder
  Put16(h + 18, 0);  // urgent
  if (len > 0) {
    std::memcpy(seg.data() + kTcpHdrLen, data, len);
    Charge(burn, static_cast<Cycles>(static_cast<double>(len) * cfg_.cost.net_copy_per_byte));
  }
  Put16(h + 16, InetChecksum(seg.data(), seg.size(),
                             TcpPseudoSeed(t.local_ip, t.remote_ip, seg.size())));
  ++stats_.tcp_seg_tx;
  SendIp(t.remote_ip, kIpProtoTcp, seg.data(), seg.size(), burn);
}

void NetStack::TcpSendRstFor(const TcpSeg& seg, Cycles* burn) {
  // RFC 793 reset generation for a segment with no connection: echo enough
  // to convince the peer. Built by hand since there is no tcb.
  std::uint8_t h[kTcpHdrLen];
  Put16(h + 0, seg.dport);
  Put16(h + 2, seg.sport);
  std::uint8_t flags = kTcpRst;
  if ((seg.flags & kTcpAck) != 0) {
    Put32(h + 4, seg.ack);
    Put32(h + 8, 0);
  } else {
    flags |= kTcpAck;
    Put32(h + 4, 0);
    Put32(h + 8, seg.seq + static_cast<std::uint32_t>(seg.len) +
                     ((seg.flags & kTcpSyn) != 0 ? 1 : 0) +
                     ((seg.flags & kTcpFin) != 0 ? 1 : 0));
  }
  Put16(h + 12, static_cast<std::uint16_t>((5u << 12) | flags));
  Put16(h + 14, 0);
  Put16(h + 16, 0);
  Put16(h + 18, 0);
  Put16(h + 16, InetChecksum(h, kTcpHdrLen, TcpPseudoSeed(cfg_.net_ip, seg.src_ip, kTcpHdrLen)));
  ++stats_.tcp_rst_tx;
  ++stats_.tcp_seg_tx;
  SendIp(seg.src_ip, kIpProtoTcp, h, kTcpHdrLen, burn);
}

void NetStack::TcpPushSend(Tcb& t, Cycles* burn) {
  std::size_t mss = cfg_.net_mtu - kIpHdrLen - kTcpHdrLen;
  for (;;) {
    std::uint32_t inflight = t.snd_nxt - t.snd_una;
    std::uint32_t wnd = std::max<std::uint32_t>(t.snd_wnd, 1);  // 1: probe a closed window
    if (inflight >= wnd) {
      return;
    }
    std::uint32_t data_end = t.sndq_seq + static_cast<std::uint32_t>(t.sndq.size());
    std::uint32_t avail = SeqLt(t.snd_nxt, data_end) ? data_end - t.snd_nxt : 0;
    if (avail == 0) {
      if (t.fin_queued && !t.fin_sent) {
        t.fin_seq = t.snd_nxt;
        t.fin_sent = true;
        ++t.snd_nxt;
        TcpSendSeg(t, kTcpFin | kTcpAck, t.fin_seq, nullptr, 0, burn);
        TcpArmRto(RD_READ(tcbs_).at(KeyOf(t)));  // racedet: ok (lookup only)
      }
      return;
    }
    std::size_t take = std::min<std::size_t>({avail, mss, wnd - inflight});
    std::vector<std::uint8_t> chunk(take);
    std::size_t off = t.snd_nxt - t.sndq_seq;
    std::copy(t.sndq.begin() + static_cast<std::ptrdiff_t>(off),
              t.sndq.begin() + static_cast<std::ptrdiff_t>(off + take), chunk.begin());
    TcpSendSeg(t, kTcpAck | kTcpPsh, t.snd_nxt, chunk.data(), take, burn);
    t.snd_nxt += static_cast<std::uint32_t>(take);
    TcpArmRto(RD_READ(tcbs_).at(KeyOf(t)));  // racedet: ok (lookup only)
  }
}

// --- Retransmission timer ---------------------------------------------------

void NetStack::TcpArmRto(const std::shared_ptr<Tcb>& t) {
  if (t->rto_armed) {
    return;
  }
  t->rto_armed = true;
  Cycles rto = Ms(cfg_.net_rto_ms) << std::min<std::uint32_t>(t->retries, 10);
  std::shared_ptr<Tcb> keep = t;
  t->rto_event = events_.Schedule(clock_.now() + rto, [this, keep] {
    SpinGuard g(lock_);
    if (!keep->rto_armed) {
      return;  // lazily-cancelled or already handled
    }
    keep->rto_armed = false;
    TcpOnRto(keep);
  });
}

void NetStack::TcpDisarmRto(Tcb& t) {
  if (t.rto_armed) {
    events_.Cancel(t.rto_event);
    t.rto_armed = false;
  }
}

void NetStack::TcpOnRto(const std::shared_ptr<Tcb>& t) {
  if (t->state == TcpState::kClosed || t->state == TcpState::kTimeWait) {
    return;
  }
  if (t->snd_una == t->snd_nxt && !(t->fin_queued && !t->fin_sent)) {
    return;  // everything acked in the meantime
  }
  ++t->retries;
  if (t->retries > cfg_.net_max_retries) {
    // Peer unreachable: reset the connection locally.
    TcpKill(t, kErrIo);
    return;
  }
  ++stats_.tcp_retransmit;
  // Go-back-N: rewind to the oldest unacked byte and resend.
  t->snd_nxt = t->snd_una;
  switch (t->state) {
    case TcpState::kSynSent:
      t->snd_nxt = t->iss;
      TcpSendSeg(*t, kTcpSyn, t->iss, nullptr, 0, nullptr);
      t->snd_nxt = t->iss + 1;
      TcpArmRto(t);
      break;
    case TcpState::kSynRcvd:
      TcpSendSeg(*t, kTcpSyn | kTcpAck, t->iss, nullptr, 0, nullptr);
      t->snd_nxt = t->iss + 1;  // the SYN occupies iss; undo the rewind
      TcpArmRto(t);
      break;
    default:
      if (t->fin_sent && !SeqLt(t->fin_seq, t->snd_una)) {
        t->fin_sent = false;  // FIN unacked: resend it after the data
      }
      TcpPushSend(*t, nullptr);
      // A bare FIN retransmit may find the window full; keep the timer alive
      // so the probe retries.
      TcpArmRto(t);
      break;
  }
}

// --- Lifecycle helpers ------------------------------------------------------

void NetStack::RemoveTcb(const std::shared_ptr<Tcb>& t) {
  TcpDisarmRto(*t);
  if (t->time_wait_event != 0) {
    events_.Cancel(t->time_wait_event);
    t->time_wait_event = 0;
  }
  RD_WRITE(tcbs_).erase(KeyOf(*t));
}

void NetStack::TcpEnterTimeWait(const std::shared_ptr<Tcb>& t) {
  t->state = TcpState::kTimeWait;
  TcpDisarmRto(*t);
  std::shared_ptr<Tcb> keep = t;
  t->time_wait_event = events_.Schedule(clock_.now() + Ms(cfg_.net_time_wait_ms), [this, keep] {
    SpinGuard g(lock_);
    keep->time_wait_event = 0;
    if (keep->state == TcpState::kTimeWait) {
      keep->state = TcpState::kClosed;
      RemoveTcb(keep);
    }
  });
  sched_.Wakeup(&t->rcv_chan);
  sched_.Wakeup(&t->snd_chan);
}

void NetStack::TcpKill(const std::shared_ptr<Tcb>& t, std::int64_t err) {
  t->state = TcpState::kClosed;
  if (t->error == 0) {
    t->error = err;
  }
  if (t->listener != nullptr) {
    // Embryo or unaccepted connection dying: make the listener forget it.
    Socket* l = t->listener;
    t->listener = nullptr;
    auto it = std::find(l->accept_q.begin(), l->accept_q.end(), t);
    if (it != l->accept_q.end()) {
      l->accept_q.erase(it);
    } else if (l->embryos > 0) {
      --l->embryos;
    }
  }
  sched_.Wakeup(&t->rcv_chan);
  sched_.Wakeup(&t->snd_chan);
  RemoveTcb(t);
}

// --- Input ------------------------------------------------------------------

void NetStack::HandleTcp(std::uint32_t src_ip, const std::uint8_t* p, std::size_t len,
                         Cycles* burn) {
  Charge(burn, cfg_.cost.net_proto_per_seg);
  if (len < kTcpHdrLen) {
    ++stats_.ip_drop;
    return;
  }
  if (InetChecksum(p, len, TcpPseudoSeed(src_ip, cfg_.net_ip, len)) != 0) {
    ++stats_.csum_drop;
    return;
  }
  TcpSeg seg;
  seg.src_ip = src_ip;
  seg.sport = Get16(p + 0);
  seg.dport = Get16(p + 2);
  seg.seq = Get32(p + 4);
  seg.ack = Get32(p + 8);
  std::size_t doff = (Get16(p + 12) >> 12) * 4u;
  seg.flags = static_cast<std::uint8_t>(Get16(p + 12) & 0x3f);
  seg.wnd = Get16(p + 14);
  if (doff < kTcpHdrLen || doff > len) {
    ++stats_.ip_drop;
    return;
  }
  seg.data = p + doff;
  seg.len = len - doff;
  ++stats_.tcp_seg_rx;

  auto it = RD_READ(tcbs_).find(TcbKey(src_ip, seg.sport, seg.dport));
  if (it != RD_READ(tcbs_).end()) {
    TcpInput(it->second, seg, burn);
    return;
  }
  if ((seg.flags & kTcpRst) != 0) {
    return;  // no connection, nothing to reset
  }
  if ((seg.flags & kTcpSyn) != 0 && (seg.flags & kTcpAck) == 0) {
    auto lit = RD_READ(listeners_).find(seg.dport);
    if (lit != RD_READ(listeners_).end()) {
      TcpPassiveOpen(lit->second, seg, burn);
      return;
    }
  }
  TcpSendRstFor(seg, burn);
}

void NetStack::TcpPassiveOpen(Socket* listener, const TcpSeg& seg, Cycles* burn) {
  if (listener->embryos + listener->accept_q.size() >= listener->backlog) {
    // Backlog full: drop the SYN silently; the client's RTO will retry and
    // find room once accept() drains the queue.
    ++stats_.tcp_accept_drop;
    return;
  }
  auto t = std::make_shared<Tcb>();
  t->local_ip = cfg_.net_ip;
  t->remote_ip = seg.src_ip;
  t->local_port = seg.dport;
  t->remote_port = seg.sport;
  t->state = TcpState::kSynRcvd;
  t->iss = RD_READ(next_iss_);
  RD_WRITE(next_iss_) = RD_READ(next_iss_) + 64000;  // deterministic ISS stepping
  t->snd_una = t->iss;
  t->snd_nxt = t->iss + 1;
  t->sndq_seq = t->iss + 1;
  t->irs = seg.seq;
  t->rcv_nxt = seg.seq + 1;
  t->snd_wnd = seg.wnd;
  t->listener = listener;
  ++listener->embryos;
  RD_WRITE(tcbs_)[KeyOf(*t)] = t;
  ++stats_.tcp_passive_open;
  TcpSendSeg(*t, kTcpSyn | kTcpAck, t->iss, nullptr, 0, burn);
  TcpArmRto(t);
}

void NetStack::TcpInput(const std::shared_ptr<Tcb>& t, const TcpSeg& seg, Cycles* burn) {
  if ((seg.flags & kTcpRst) != 0) {
    ++stats_.tcp_rst_rx;
    TcpKill(t, t->state == TcpState::kSynSent ? kErrNoEnt : kErrIo);
    return;
  }

  if (t->state == TcpState::kSynSent) {
    if ((seg.flags & (kTcpSyn | kTcpAck)) == (kTcpSyn | kTcpAck) && seg.ack == t->iss + 1) {
      t->snd_una = seg.ack;
      t->irs = seg.seq;
      t->rcv_nxt = seg.seq + 1;
      t->snd_wnd = seg.wnd;
      t->state = TcpState::kEstablished;
      ++stats_.tcp_established;
      TcpDisarmRto(*t);
      t->retries = 0;
      TcpSendSeg(*t, kTcpAck, t->snd_nxt, nullptr, 0, burn);
      sched_.Wakeup(&t->rcv_chan);  // connect() waits here
      TcpPushSend(*t, burn);
    }
    return;
  }
  if (t->state == TcpState::kTimeWait) {
    // A retransmitted FIN: re-ack it.
    if ((seg.flags & kTcpFin) != 0) {
      TcpSendSeg(*t, kTcpAck, t->snd_nxt, nullptr, 0, burn);
    }
    return;
  }

  // --- ACK processing (everything past SYN_SENT carries ACKs) ---
  if ((seg.flags & kTcpAck) != 0) {
    std::uint32_t ack = seg.ack;
    if (SeqLt(t->snd_una, ack) && SeqLe(ack, t->snd_nxt)) {
      t->snd_una = ack;
      t->snd_wnd = seg.wnd;
      t->retries = 0;
      if (SeqLt(t->sndq_seq, ack)) {
        std::size_t popn =
            std::min<std::size_t>(ack - t->sndq_seq, t->sndq.size());
        t->sndq.erase(t->sndq.begin(), t->sndq.begin() + static_cast<std::ptrdiff_t>(popn));
        t->sndq_seq += static_cast<std::uint32_t>(popn);
      }
      TcpDisarmRto(*t);
      if (t->snd_una != t->snd_nxt) {
        TcpArmRto(t);
      }
      sched_.Wakeup(&t->snd_chan);  // send() blocked on a full sndbuf

      if (t->state == TcpState::kSynRcvd && SeqLe(t->iss + 1, ack)) {
        t->state = TcpState::kEstablished;
        ++stats_.tcp_established;
        Socket* l = t->listener;
        if (l != nullptr) {
          --l->embryos;
          l->accept_q.push_back(t);
          sched_.Wakeup(&l->accept_chan);
        } else {
          // Listener died mid-handshake: nobody will ever accept this.
          TcpSendRstFor(seg, burn);
          TcpKill(t, kErrIo);
          return;
        }
      }
      if (t->fin_sent && SeqLt(t->fin_seq, t->snd_una)) {
        // Our FIN is acked.
        if (t->state == TcpState::kFinWait1) {
          t->state = TcpState::kFinWait2;
        } else if (t->state == TcpState::kClosing) {
          TcpEnterTimeWait(t);
        } else if (t->state == TcpState::kLastAck) {
          t->state = TcpState::kClosed;
          sched_.Wakeup(&t->rcv_chan);
          sched_.Wakeup(&t->snd_chan);
          RemoveTcb(t);
          return;
        }
      }
    } else {
      t->snd_wnd = seg.wnd;  // window update on a duplicate ACK
    }
  }

  // --- Payload (in-order only; everything else relies on go-back-N) ---
  bool advanced = false;
  if (seg.len > 0) {
    if (seg.seq == t->rcv_nxt && !t->rcv_shutdown &&
        t->rcvq.size() + seg.len <= cfg_.net_rcvbuf && !t->peer_fin) {
      t->rcvq.insert(t->rcvq.end(), seg.data, seg.data + seg.len);
      t->rcv_nxt += static_cast<std::uint32_t>(seg.len);
      Charge(burn,
             static_cast<Cycles>(static_cast<double>(seg.len) * cfg_.cost.net_copy_per_byte));
      advanced = true;
      sched_.Wakeup(&t->rcv_chan);
    } else if (seg.seq == t->rcv_nxt && t->rcv_shutdown) {
      // Read side shut down: sequence the bytes but discard them.
      t->rcv_nxt += static_cast<std::uint32_t>(seg.len);
      advanced = true;
    } else {
      ++stats_.tcp_ooo_drop;
    }
  }

  // --- FIN (only when it arrives in order) ---
  if ((seg.flags & kTcpFin) != 0 && !t->peer_fin) {
    std::uint32_t fin_seq = seg.seq + static_cast<std::uint32_t>(seg.len);
    if (fin_seq == t->rcv_nxt) {
      ++t->rcv_nxt;
      t->peer_fin = true;
      advanced = true;
      sched_.Wakeup(&t->rcv_chan);  // recv() returns 0 at EOF
      switch (t->state) {
        case TcpState::kEstablished:
          t->state = TcpState::kCloseWait;
          break;
        case TcpState::kFinWait1:
          // Our FIN not yet acked: simultaneous close.
          t->state = TcpState::kClosing;
          break;
        case TcpState::kFinWait2:
          TcpSendSeg(*t, kTcpAck, t->snd_nxt, nullptr, 0, burn);
          TcpEnterTimeWait(t);
          return;
        default:
          break;
      }
    }
  }

  if (seg.len > 0 || (seg.flags & kTcpFin) != 0) {
    // Ack data (fresh or duplicate — the cumulative ack tells the sender
    // where we really are).
    (void)advanced;
    TcpSendSeg(*t, kTcpAck, t->snd_nxt, nullptr, 0, burn);
  }
  // New window/ack state may unblock queued data or a pending FIN.
  if (t->state != TcpState::kClosed) {
    TcpPushSend(*t, burn);
  }
}

// shutdown(WR)/close: queue our FIN after any buffered data.
void NetStack::CloseTcbHalf(const std::shared_ptr<Tcb>& t, Cycles* burn) {
  if (t->fin_queued || t->state == TcpState::kClosed || t->state == TcpState::kTimeWait) {
    return;
  }
  switch (t->state) {
    case TcpState::kSynSent:
      // Nothing ever got through; just drop the attempt.
      TcpKill(t, kErrIo);
      return;
    case TcpState::kSynRcvd:
    case TcpState::kEstablished:
      t->state = TcpState::kFinWait1;
      break;
    case TcpState::kCloseWait:
      t->state = TcpState::kLastAck;
      break;
    default:
      return;  // already closing on our side
  }
  t->fin_queued = true;
  TcpPushSend(*t, burn);  // sends the FIN now if sndq is drained
}

}  // namespace vos
