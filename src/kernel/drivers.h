// Kernel device drivers: the software above src/hw's device models and below
// the device files. Init paths run in the boot task's context (their time is
// the boot-time breakdown of Fig 8); steady-state IRQ halves run in interrupt
// context and charge handler time to the interrupted core.
#ifndef VOS_SRC_KERNEL_DRIVERS_H_
#define VOS_SRC_KERNEL_DRIVERS_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/base/ring_buffer.h"
#include "src/fs/devfs.h"
#include "src/fs/vfs.h"
#include "src/hw/board.h"
#include "src/hw/usb_msc.h"
#include "src/kernel/kconfig.h"
#include "src/kernel/klog.h"
#include "src/kernel/pmm.h"
#include "src/kernel/sched.h"

namespace vos {

class Machine;

// --- Framebuffer driver: mailbox allocation + /dev/fb ----------------------

class FbDriver : public DevNode {
 public:
  FbDriver(Board& board, const KernelConfig& cfg) : board_(board), cfg_(cfg) {}

  // Allocates the framebuffer through the mailbox property protocol.
  // Returns the virtual time taken (caller burns it).
  Cycles Init();
  bool ready() const { return board_.fb().allocated(); }
  std::uint32_t width() const { return board_.fb().width(); }
  std::uint32_t height() const { return board_.fb().height(); }
  std::uint32_t pitch() const { return board_.fb().pitch(); }

  // CPU-side pixel pointer (what mmap of /dev/fb yields).
  std::uint32_t* pixels() { return board_.fb().cpu_pixels(); }

  // Cache maintenance for a byte range of the fb (the cacheflush syscall).
  Cycles Flush(std::uint64_t offset, std::uint64_t len);

  // /dev/fb as a device file: write blits at `off`, read copies out.
  std::int64_t Read(Task* t, std::uint8_t* buf, std::uint32_t n, std::uint64_t off, bool nonblock,
                    Cycles* burn) override;
  std::int64_t Write(Task* t, const std::uint8_t* buf, std::uint32_t n, std::uint64_t off,
                     Cycles* burn) override;
  // The fb is a fixed extent, so lseek(SEEK_END) lands past the last pixel.
  std::uint64_t SeekEndSize() const override {
    return ready() ? std::uint64_t(pitch()) * height() : 0;
  }

 private:
  Board& board_;
  const KernelConfig& cfg_;
};

// --- Console driver: polled-TX UART + IRQ RX, behind /dev/console ----------

class ConsoleDriver : public DevNode {
 public:
  ConsoleDriver(Board& board, Sched& sched, Klog& klog)
      : board_(board), sched_(sched), klog_(klog), rx_(256) {}

  void EnableRxIrq() { board_.uart().EnableRxIrq(true); }
  // IRQ half: drain the UART FIFO into the line buffer; wake readers.
  void OnRxIrq();

  std::int64_t Read(Task* t, std::uint8_t* buf, std::uint32_t n, std::uint64_t off, bool nonblock,
                    Cycles* burn) override;
  std::int64_t Write(Task* t, const std::uint8_t* buf, std::uint32_t n, std::uint64_t off,
                     Cycles* burn) override;

 private:
  Board& board_;
  Sched& sched_;
  Klog& klog_;
  RingBuffer<std::uint8_t> rx_;
  char chan_ = 0;
};

// --- USB keyboard driver (the USPi role, §4.4) ------------------------------

class UsbKbdDriver {
 public:
  UsbKbdDriver(Board& board, Machine& machine, KeyEventDev& events)
      : board_(board), machine_(machine), events_(events) {}

  // Full enumeration: port power/reset, descriptor parsing, SET_ADDRESS,
  // SET_CONFIGURATION, HID boot protocol, then interrupt polling. Returns the
  // time taken (~1.4 s — the dominant boot cost) or 0 if no keyboard.
  Cycles Init(Cycles now);
  bool ready() const { return ready_; }

  // IRQ half: drain latched reports, diff against the previous state, emit
  // KeyEvents.
  void OnIrq(Cycles now);

  std::uint32_t poll_interval_ms() const { return poll_interval_ms_; }

  // HID usage -> OS keycode (exposed for tests).
  static std::uint16_t MapHidKey(std::uint8_t hid);

 private:
  Board& board_;
  Machine& machine_;
  KeyEventDev& events_;
  bool ready_ = false;
  std::uint32_t poll_interval_ms_ = 8;
  HidReport prev_{};
};

// --- GPIO button driver (Game HAT) ------------------------------------------

class GpioButtonDriver {
 public:
  GpioButtonDriver(Board& board, KeyEventDev& events) : board_(board), events_(events) {}

  void Init();  // edge-detect on all button pins; panic pin -> FIQ
  void OnIrq(Cycles now);

  static std::uint16_t MapButton(unsigned pin);

 private:
  Board& board_;
  KeyEventDev& events_;
};

// --- Audio driver: /dev/sb -> ring -> DMA -> PWM (§4.4) ---------------------

class AudioDriver : public DevNode {
 public:
  AudioDriver(Board& board, Sched& sched, Pmm& pmm, const KernelConfig& cfg)
      : board_(board), sched_(sched), pmm_(pmm), cfg_(cfg) {}

  // Allocates the DMA period buffers in DRAM and configures the PWM rate.
  Cycles Init(std::uint32_t sample_rate);
  bool ready() const { return period_pa_[0] != 0; }

  // /dev/sb: writes block while the sample ring is full — the classic
  // producer/consumer pipeline (app -> driver ring -> DMA -> PWM).
  std::int64_t Read(Task* t, std::uint8_t* buf, std::uint32_t n, std::uint64_t off, bool nonblock,
                    Cycles* burn) override;
  std::int64_t Write(Task* t, const std::uint8_t* buf, std::uint32_t n, std::uint64_t off,
                     Cycles* burn) override;

  // IRQ half: a period finished; submit the next or record an underrun.
  void OnDmaIrq(Cycles now);

  std::uint64_t underruns() const { return underruns_; }
  std::size_t buffered_bytes() const { return ring_.size(); }

 private:
  static constexpr std::uint32_t kPeriodBytes = 4096;  // ~23 ms at 44.1 kHz stereo
  void PumpLocked(Cycles now);

  Board& board_;
  Sched& sched_;
  Pmm& pmm_;
  const KernelConfig& cfg_;
  RingBuffer<std::uint8_t> ring_{kPeriodBytes * 4};
  PhysAddr period_pa_[2] = {0, 0};
  int next_period_ = 0;
  bool dma_running_ = false;
  std::uint64_t underruns_ = 0;
  char chan_ = 0;
};

// --- USB mass-storage driver (the paper's §4.4 future-work class) -----------
//
// Enumerates the thumb drive's descriptors (interface class 8 / SCSI / BOT),
// then drives the bulk-only transport: INQUIRY + READ CAPACITY at init, and
// READ(10)/WRITE(10) for block traffic, exposed as a BlockDevice the VFS
// mounts at /u.

class UsbStorageDriver : public BlockDevice {
 public:
  explicit UsbStorageDriver(UsbMassStorage& dev) : dev_(dev) {}

  // Descriptor walk + INQUIRY + READ CAPACITY. Returns init time, or 0 and
  // leaves the driver not-ready if the device is not a BOT SCSI disk.
  Cycles Init();
  bool ready() const { return ready_; }
  const std::string& product() const { return product_; }

  // BlockDevice: synchronous bulk transfers. A failed CSW reports kMedia
  // (the seed panicked here; a flaky cable must not take down the kernel).
  std::uint64_t block_count() const override { return blocks_; }
  BlockResult Read(std::uint64_t lba, std::uint32_t count, std::uint8_t* out) override;
  BlockResult Write(std::uint64_t lba, std::uint32_t count, const std::uint8_t* in) override;

 private:
  Csw Bot(std::uint8_t opcode, std::uint32_t lba, std::uint16_t blocks, bool to_host,
          std::vector<std::uint8_t>& data, Cycles* dur);

  UsbMassStorage& dev_;
  bool ready_ = false;
  std::uint64_t blocks_ = 0;
  std::uint32_t next_tag_ = 1;
  std::string product_;
};

// --- SD card driver (§4.5: ~600 SLoC, synchronous, polling) -----------------

class SdDriver {
 public:
  SdDriver(Board& board, const KernelConfig& cfg) : board_(board), cfg_(cfg) {}

  // Card identification sequence (CMD0/CMD8/ACMD41/CMD2/CMD3/CMD7).
  Cycles Init();
  bool ready() const { return board_.sd().ready(); }

  // Parses the MBR; returns the [first_lba, count) of partition `index`.
  bool ReadPartition(int index, std::uint64_t* first, std::uint64_t* count, Cycles* burn);

  std::unique_ptr<SdBlockDevice> OpenPartition(std::uint64_t first, std::uint64_t count) {
    return std::make_unique<SdBlockDevice>(board_.sd(), first, count, cfg_.dma_sd);
  }

 private:
  Board& board_;
  const KernelConfig& cfg_;
};

}  // namespace vos

#endif  // VOS_SRC_KERNEL_DRIVERS_H_
