#include "src/kernel/pmm.h"

#include "src/base/assert.h"

namespace vos {

Pmm::Pmm(PhysMem& mem, PhysAddr start, PhysAddr end) : mem_(mem), start_(start) {
  VOS_CHECK_MSG(start % kPageSize == 0 && end % kPageSize == 0, "pmm range must be page aligned");
  VOS_CHECK_MSG(start >= kPageSize, "frame 0 is reserved: physical address 0 is the failure sentinel");
  VOS_CHECK(end > start && end <= mem.size());
  nframes_ = (end - start) / kPageSize;
  used_.assign(nframes_, false);
  free_count_ = nframes_;
}

std::uint64_t Pmm::FrameOf(PhysAddr pa) const {
  VOS_CHECK_MSG(pa >= start_ && pa < end() && pa % kPageSize == 0, "bad frame address");
  return (pa - start_) / kPageSize;
}

PhysAddr Pmm::AllocPage() {
  if (free_count_ == 0) {
    return 0;
  }
  for (std::uint64_t i = 0; i < nframes_; ++i) {
    std::uint64_t f = (next_hint_ + i) % nframes_;
    if (!used_[f]) {
      used_[f] = true;
      --free_count_;
      next_hint_ = f + 1;
      return start_ + f * kPageSize;
    }
  }
  return 0;
}

void Pmm::FreePage(PhysAddr pa) {
  std::uint64_t f = FrameOf(pa);
  VOS_CHECK_MSG(used_[f], "double free of physical page");
  used_[f] = false;
  ++free_count_;
}

PhysAddr Pmm::AllocRange(std::uint64_t npages) {
  VOS_CHECK(npages > 0);
  if (npages > free_count_) {
    return 0;
  }
  std::uint64_t run = 0;
  for (std::uint64_t f = 0; f < nframes_; ++f) {
    if (used_[f]) {
      run = 0;
      continue;
    }
    if (++run == npages) {
      std::uint64_t first = f + 1 - npages;
      for (std::uint64_t i = first; i <= f; ++i) {
        used_[i] = true;
      }
      free_count_ -= npages;
      return start_ + first * kPageSize;
    }
  }
  return 0;
}

void Pmm::FreeRange(PhysAddr pa, std::uint64_t npages) {
  for (std::uint64_t i = 0; i < npages; ++i) {
    FreePage(pa + i * kPageSize);
  }
}

bool Pmm::IsFree(PhysAddr pa) const { return !used_[FrameOf(pa)]; }

}  // namespace vos
