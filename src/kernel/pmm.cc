#include "src/kernel/pmm.h"

#include <algorithm>

#include "src/base/assert.h"

namespace vos {

namespace {

int FloorLog2(std::uint64_t v) { return 63 - __builtin_clzll(v); }

int CeilLog2(std::uint64_t v) { return v <= 1 ? 0 : FloorLog2(v - 1) + 1; }

}  // namespace

Pmm::Pmm(PhysMem& mem, PhysAddr start, PhysAddr end) : mem_(mem), start_(start) {
  VOS_CHECK_MSG(start % kPageSize == 0 && end % kPageSize == 0, "pmm range must be page aligned");
  VOS_CHECK_MSG(start >= kPageSize, "frame 0 is reserved: physical address 0 is the failure sentinel");
  VOS_CHECK(end > start && end <= mem.size());
  nframes_ = (end - start) / kPageSize;
  norders_ = FloorLog2(nframes_) + 1;
  used_.assign(nframes_, false);
  next_.assign(nframes_, kNone);
  prev_.assign(nframes_, kNone);
  border_.assign(nframes_, kNoOrder);
  free_heads_.assign(static_cast<std::size_t>(norders_), kNone);
  free_blocks_.assign(static_cast<std::size_t>(norders_), 0);
  free_count_ = nframes_;
  // Seed the free lists with maximal aligned blocks covering [0, nframes).
  std::uint64_t f = 0;
  while (f < nframes_) {
    int o = f == 0 ? norders_ - 1 : std::min(__builtin_ctzll(f), norders_ - 1);
    o = std::min(o, FloorLog2(nframes_ - f));
    PushBlock(f, o);
    f += 1ull << o;
  }
}

std::uint64_t Pmm::FrameOf(PhysAddr pa) const {
  VOS_CHECK_MSG(pa >= start_ && pa < end() && pa % kPageSize == 0, "bad frame address");
  return (pa - start_) / kPageSize;
}

void Pmm::Unlink(std::uint64_t f, int k) {
  std::uint64_t n = next_[f], p = prev_[f];
  if (p == kNone) {
    free_heads_[static_cast<std::size_t>(k)] = n;
  } else {
    next_[p] = n;
  }
  if (n != kNone) {
    prev_[n] = p;
  }
  border_[f] = kNoOrder;
  --free_blocks_[static_cast<std::size_t>(k)];
}

void Pmm::PushBlock(std::uint64_t f, int k) {
  std::uint64_t h = free_heads_[static_cast<std::size_t>(k)];
  next_[f] = h;
  prev_[f] = kNone;
  if (h != kNone) {
    prev_[h] = f;
  }
  free_heads_[static_cast<std::size_t>(k)] = f;
  border_[f] = static_cast<std::uint8_t>(k);
  ++free_blocks_[static_cast<std::size_t>(k)];
}

void Pmm::InsertAndCoalesce(std::uint64_t f, int k) {
  while (k + 1 < norders_) {
    std::uint64_t buddy = f ^ (1ull << k);
    if (buddy + (1ull << k) > nframes_ || border_[buddy] != k) {
      break;  // buddy truncated by the region end, allocated, or split
    }
    Unlink(buddy, k);
    f = std::min(f, buddy);
    ++k;
    ++stats_.merges;
  }
  PushBlock(f, k);
}

std::uint64_t Pmm::PopBlock(int k) {
  int j = k;
  while (j < norders_ && free_heads_[static_cast<std::size_t>(j)] == kNone) {
    ++j;
  }
  if (j >= norders_) {
    return kNone;
  }
  std::uint64_t f = free_heads_[static_cast<std::size_t>(j)];
  Unlink(f, j);
  while (j > k) {
    --j;
    PushBlock(f + (1ull << j), j);  // give the upper half back
    ++stats_.splits;
  }
  return f;
}

void Pmm::EmitOom(std::uint64_t npages) {
  ++stats_.oom_events;
  if (trace_) {
    trace_(TraceEvent::kPmmOom, npages, free_count_);
  }
}

PhysAddr Pmm::AllocPage() {
  SpinGuard g(lock_);
  std::uint64_t f = PopBlock(0);
  if (f == kNone) {
    EmitOom(1);
    return 0;
  }
  used_[f] = true;
  --free_count_;
  ++stats_.page_allocs;
  PhysAddr pa = start_ + f * kPageSize;
  if (trace_) {
    trace_(TraceEvent::kPmmAlloc, pa, 1);
  }
  return pa;
}

void Pmm::FreePage(PhysAddr pa) {
  SpinGuard g(lock_);
  std::uint64_t f = FrameOf(pa);
  VOS_CHECK_MSG(used_[f], "double free of physical page");
  used_[f] = false;
  ++free_count_;
  InsertAndCoalesce(f, 0);
  ++stats_.page_frees;
  if (trace_) {
    trace_(TraceEvent::kPmmFree, pa, 1);
  }
}

PhysAddr Pmm::AllocRange(std::uint64_t npages) {
  VOS_CHECK(npages > 0);
  SpinGuard g(lock_);
  int k = CeilLog2(npages);
  std::uint64_t f = npages > free_count_ || k >= norders_ ? kNone : PopBlock(k);
  if (f == kNone) {
    EmitOom(npages);
    return 0;
  }
  for (std::uint64_t i = 0; i < npages; ++i) {
    used_[f + i] = true;
  }
  free_count_ -= npages;
  // The block rounded npages up to 2^k; hand the tail straight back.
  std::uint64_t t = f + npages;
  std::uint64_t rem = (1ull << k) - npages;
  while (rem > 0) {
    int o = std::min(t == 0 ? norders_ - 1 : __builtin_ctzll(t), FloorLog2(rem));
    InsertAndCoalesce(t, o);
    t += 1ull << o;
    rem -= 1ull << o;
  }
  ++stats_.range_allocs;
  PhysAddr pa = start_ + f * kPageSize;
  if (trace_) {
    trace_(TraceEvent::kPmmAlloc, pa, npages);
  }
  return pa;
}

void Pmm::FreeRange(PhysAddr pa, std::uint64_t npages) {
  SpinGuard g(lock_);
  for (std::uint64_t i = 0; i < npages; ++i) {
    std::uint64_t f = FrameOf(pa + i * kPageSize);
    VOS_CHECK_MSG(used_[f], "double free of physical page");
    used_[f] = false;
    ++free_count_;
    InsertAndCoalesce(f, 0);
  }
  ++stats_.range_frees;
  if (trace_) {
    trace_(TraceEvent::kPmmFree, pa, npages);
  }
}

bool Pmm::IsFree(PhysAddr pa) const { return !used_[FrameOf(pa)]; }

std::uint64_t Pmm::FreeBlocksOfOrder(int order) const {
  return order >= 0 && order < norders_ ? free_blocks_[static_cast<std::size_t>(order)] : 0;
}

std::uint64_t Pmm::LargestFreeBlockPages() const {
  for (int o = norders_ - 1; o >= 0; --o) {
    if (free_blocks_[static_cast<std::size_t>(o)] != 0) {
      return 1ull << o;
    }
  }
  return 0;
}

double Pmm::FragmentationPct() const {
  if (free_count_ == 0) {
    return 0.0;
  }
  // The best a buddy system can do with free_count pages is one block of
  // 2^floor(log2(free_count)); measure the shortfall against that, so a
  // fully free (non-power-of-two) region reads 0 % fragmented.
  std::uint64_t ideal = 1ull << std::min(FloorLog2(free_count_), norders_ - 1);
  return 100.0 * (1.0 - static_cast<double>(LargestFreeBlockPages()) /
                            static_cast<double>(ideal));
}

}  // namespace vos
