#include "src/kernel/kmalloc.h"

#include <algorithm>

#include "src/base/assert.h"

namespace vos {

Kmalloc::Kmalloc(Pmm& pmm, std::uint32_t percore_cache_objs)
    : pmm_(pmm), mag_cap_(std::max<std::uint32_t>(2, percore_cache_objs)) {
  for (int cls = 0; cls < kNumClasses; ++cls) {
    Depot& d = depots_[static_cast<std::size_t>(cls)];
    d.obj_size = ObjSize(cls);
    // Grow the slab (1-4 pages) until header+packing waste is <= 1/8 of it:
    // 1 KB objects get 2-page slabs, 2 KB objects 4-page slabs.
    d.slab_pages = 1;
    while (d.slab_pages < 4) {
      std::uint64_t bytes = d.slab_pages * kPageSize;
      std::uint64_t cap = (bytes - kHdrSize) / d.obj_size;
      if (cap * d.obj_size * 8 >= bytes * 7) {
        break;
      }
      d.slab_pages *= 2;
    }
    d.capacity = static_cast<std::uint32_t>((d.slab_pages * kPageSize - kHdrSize) / d.obj_size);
    VOS_CHECK(d.capacity >= 1 && d.capacity <= kMaxObjsPerSlab);
  }
  frames_.resize(pmm_.total_pages());
  for (auto& per_core : mags_) {
    for (auto& mag : per_core) {
      mag.reserve(mag_cap_);
    }
  }
}

int Kmalloc::ClassFor(std::uint64_t size) {
  if (size > (1ull << kMaxShift)) {
    return -1;
  }
  if (size <= (1ull << kMinShift)) {
    return 0;
  }
  return 64 - __builtin_clzll(size - 1) - kMinShift;
}

unsigned Kmalloc::CurCore() const {
  if (!core_fn_) {
    return 0;
  }
  return std::min(core_fn_(), kMaxCores - 1);
}

std::uint64_t Kmalloc::FrameIndex(PhysAddr pa) const {
  VOS_CHECK_MSG(pa >= pmm_.start() && pa < pmm_.end(),
                "kmalloc address outside the managed heap");
  return (pa - pmm_.start()) / kPageSize;
}

PhysAddr Kmalloc::SlabBase(PhysAddr pa) const {
  std::uint64_t f = (pa - pmm_.start()) / kPageSize;
  return pmm_.start() + (f - frames_[f].head_delta) * kPageSize;
}

bool Kmalloc::TestBit(PhysAddr slab, std::uint32_t idx) const {
  std::uint64_t w = pmm_.mem().Load<std::uint64_t>(slab + kOffBitmap + (idx / 64) * 8);
  return (w >> (idx % 64)) & 1;
}

void Kmalloc::SetBit(PhysAddr slab, std::uint32_t idx, bool v) {
  PhysAddr at = slab + kOffBitmap + (idx / 64) * 8;
  std::uint64_t w = pmm_.mem().Load<std::uint64_t>(at);
  if (v) {
    w |= 1ull << (idx % 64);
  } else {
    w &= ~(1ull << (idx % 64));
  }
  pmm_.mem().Store<std::uint64_t>(at, w);
}

PhysAddr Kmalloc::NewSlab(int cls) {
  RD_ASSERT_HELD(depot_lock_);
  Depot& d = depots_[static_cast<std::size_t>(cls)];
  PhysAddr base = pmm_.AllocRange(d.slab_pages);
  if (base == 0) {
    return 0;
  }
  pmm_.mem().Store<std::uint64_t>(base + kOffMagic, kHdrMagic | static_cast<std::uint64_t>(cls));
  pmm_.mem().Store<std::uint32_t>(base + kOffFreeCount, d.capacity);
  for (int w = 0; w < 4; ++w) {
    pmm_.mem().Store<std::uint64_t>(base + kOffBitmap + 8u * static_cast<unsigned>(w), 0);
  }
  // Chain every object through its first 8 bytes, first object at the head.
  for (std::uint32_t i = 0; i < d.capacity; ++i) {
    PhysAddr obj = base + kHdrSize + std::uint64_t(i) * d.obj_size;
    PhysAddr next = i + 1 < d.capacity ? obj + d.obj_size : 0;
    pmm_.mem().Store<std::uint64_t>(obj, next);
  }
  pmm_.mem().Store<std::uint64_t>(base + kOffFreelist, base + kHdrSize);
  std::uint64_t head = (base - pmm_.start()) / kPageSize;
  for (std::uint32_t p = 0; p < d.slab_pages; ++p) {
    frames_[head + p] = FrameDesc{FrameKind::kSlab, p, 0};
  }
  ++RD_WRITE(d.live_slabs);
  PartialInsert(cls, base);
  return base;
}

void Kmalloc::PartialInsert(int cls, PhysAddr slab) {
  RD_ASSERT_HELD(depot_lock_);
  Depot& d = depots_[static_cast<std::size_t>(cls)];
  pmm_.mem().Store<std::uint64_t>(slab + kOffNext, RD_READ(d.partial_head));
  pmm_.mem().Store<std::uint64_t>(slab + kOffPrev, 0);
  if (RD_READ(d.partial_head) != 0) {
    pmm_.mem().Store<std::uint64_t>(RD_READ(d.partial_head) + kOffPrev, slab);
  }
  RD_WRITE(d.partial_head) = slab;
}

void Kmalloc::PartialUnlink(int cls, PhysAddr slab) {
  RD_ASSERT_HELD(depot_lock_);
  Depot& d = depots_[static_cast<std::size_t>(cls)];
  std::uint64_t next = pmm_.mem().Load<std::uint64_t>(slab + kOffNext);
  std::uint64_t prev = pmm_.mem().Load<std::uint64_t>(slab + kOffPrev);
  if (prev == 0) {
    RD_WRITE(d.partial_head) = next;
  } else {
    pmm_.mem().Store<std::uint64_t>(prev + kOffNext, next);
  }
  if (next != 0) {
    pmm_.mem().Store<std::uint64_t>(next + kOffPrev, prev);
  }
}

void Kmalloc::Refill(unsigned core, int cls) {
  SpinGuard g(depot_lock_);
  Depot& d = depots_[static_cast<std::size_t>(cls)];
  auto& mag = mags_[core][static_cast<std::size_t>(cls)];
  std::size_t want = std::max<std::size_t>(1, mag_cap_ / 2);
  std::uint64_t moved = 0;
  while (mag.size() < want) {
    if (RD_READ(d.partial_head) == 0 && NewSlab(cls) == 0) {
      break;  // pmm exhausted; it emitted kPmmOom
    }
    PhysAddr slab = RD_READ(d.partial_head);
    PhysAddr obj = pmm_.mem().Load<std::uint64_t>(slab + kOffFreelist);
    pmm_.mem().Store<std::uint64_t>(slab + kOffFreelist, pmm_.mem().Load<std::uint64_t>(obj));
    std::uint32_t fc = pmm_.mem().Load<std::uint32_t>(slab + kOffFreeCount) - 1;
    pmm_.mem().Store<std::uint32_t>(slab + kOffFreeCount, fc);
    if (fc == 0) {
      PartialUnlink(cls, slab);
    }
    mag.push_back(obj);
    ++moved;
  }
  if (moved > 0) {
    ++RD_WRITE(d.refill_count);
    if (trace_) {
      trace_(TraceEvent::kSlabRefill, d.obj_size, moved);
    }
  }
}

void Kmalloc::ReturnToSlab(int cls, PhysAddr obj) {
  RD_ASSERT_HELD(depot_lock_);
  Depot& d = depots_[static_cast<std::size_t>(cls)];
  PhysAddr base = SlabBase(obj);
  pmm_.mem().Store<std::uint64_t>(obj, pmm_.mem().Load<std::uint64_t>(base + kOffFreelist));
  pmm_.mem().Store<std::uint64_t>(base + kOffFreelist, obj);
  std::uint32_t fc = pmm_.mem().Load<std::uint32_t>(base + kOffFreeCount) + 1;
  pmm_.mem().Store<std::uint32_t>(base + kOffFreeCount, fc);
  if (fc == 1) {
    PartialInsert(cls, base);  // was full, has a free object again
  }
  if (fc == d.capacity) {
    // Fully free: give the pages back to the buddy allocator.
    PartialUnlink(cls, base);
    std::uint64_t head = (base - pmm_.start()) / kPageSize;
    for (std::uint32_t p = 0; p < d.slab_pages; ++p) {
      frames_[head + p] = FrameDesc{};
    }
    pmm_.FreeRange(base, d.slab_pages);
    --RD_WRITE(d.live_slabs);
  }
}

void Kmalloc::DrainBatch(unsigned core, int cls, std::size_t n) {
  RD_ASSERT_HELD(depot_lock_);
  auto& mag = mags_[core][static_cast<std::size_t>(cls)];
  n = std::min(n, mag.size());
  for (std::size_t i = 0; i < n; ++i) {
    ReturnToSlab(cls, mag.back());
    mag.pop_back();
  }
}

void Kmalloc::DrainCore(unsigned core) {
  VOS_CHECK(core < kMaxCores);
  SpinGuard g(depot_lock_);
  for (int cls = 0; cls < kNumClasses; ++cls) {
    if (!mags_[core][static_cast<std::size_t>(cls)].empty()) {
      DrainBatch(core, cls, mags_[core][static_cast<std::size_t>(cls)].size());
      ++core_stats_[core].drains;
    }
  }
}

void Kmalloc::DrainAll() {
  for (unsigned c = 0; c < kMaxCores; ++c) {
    DrainCore(c);
  }
}

PhysAddr Kmalloc::AllocLarge(std::uint64_t size) {
  SpinGuard g(depot_lock_);
  std::uint64_t npages = (size + kPageSize - 1) / kPageSize;
  PhysAddr pa = pmm_.AllocRange(npages);
  if (pa == 0) {
    return 0;
  }
  std::uint64_t head = (pa - pmm_.start()) / kPageSize;
  frames_[head] = FrameDesc{FrameKind::kLargeHead, 0, size};
  for (std::uint64_t i = 1; i < npages; ++i) {
    frames_[head + i] = FrameDesc{FrameKind::kLargeBody, static_cast<std::uint32_t>(i), 0};
  }
  RD_WRITE(allocated_bytes_) += size;
  ++RD_WRITE(allocation_count_);
  ++RD_WRITE(large_live_);
  ++RD_WRITE(large_allocs_);
  return pa;
}

void Kmalloc::FreeLarge(PhysAddr pa, std::uint64_t frame) {
  SpinGuard g(depot_lock_);
  std::uint64_t size = frames_[frame].size;
  std::uint64_t npages = (size + kPageSize - 1) / kPageSize;
  for (std::uint64_t i = 0; i < npages; ++i) {
    frames_[frame + i] = FrameDesc{};
  }
  pmm_.FreeRange(pa, npages);
  RD_WRITE(allocated_bytes_) -= size;
  --RD_WRITE(allocation_count_);
  --RD_WRITE(large_live_);
}

PhysAddr Kmalloc::Alloc(std::uint64_t size) {
  VOS_CHECK(size > 0);
  int cls = ClassFor(size);
  if (cls < 0) {
    return AllocLarge(size);
  }
  unsigned core = CurCore();
  Depot& d = depots_[static_cast<std::size_t>(cls)];
  auto& mag = mags_[core][static_cast<std::size_t>(cls)];
  if (mag.empty()) {
    ++core_stats_[core].misses;
    Refill(core, cls);
    if (mag.empty()) {
      return 0;
    }
  } else {
    ++core_stats_[core].hits;
  }
  PhysAddr pa = mag.back();
  mag.pop_back();
  PhysAddr base = SlabBase(pa);
  std::uint32_t idx = static_cast<std::uint32_t>((pa - base - kHdrSize) / d.obj_size);
  VOS_CHECK(!TestBit(base, idx));
  SetBit(base, idx, true);
  {
    // Stat bumps on the lock-free magazine fast path. On real hardware these
    // are percpu counters folded at read time; taking depot_lock_ here would
    // defeat the magazines entirely.
    RD_EXCLUDE_SCOPE("token-serialized allocator stats (percpu counters on real hw)");
    ++d.outstanding_objs;
    allocated_bytes_ += d.obj_size;
    ++allocation_count_;
  }
  return pa;
}

void Kmalloc::Free(PhysAddr pa) {
  std::uint64_t frame = FrameIndex(pa);
  const FrameDesc& fd = frames_[frame];
  if (fd.kind == FrameKind::kLargeHead) {
    VOS_CHECK_MSG(pa % kPageSize == 0, "kfree of address not allocated (or double free)");
    FreeLarge(pa, frame);
    return;
  }
  VOS_CHECK_MSG(fd.kind == FrameKind::kSlab, "kfree of address not allocated (or double free)");
  PhysAddr base = SlabBase(pa);
  std::uint64_t magic = pmm_.mem().Load<std::uint64_t>(base + kOffMagic);
  int cls = static_cast<int>(magic & 0xff);
  VOS_CHECK_MSG((magic & ~0xffull) == kHdrMagic && cls < kNumClasses,
                "kfree: corrupt slab header");
  Depot& d = depots_[static_cast<std::size_t>(cls)];
  VOS_CHECK_MSG(pa >= base + kHdrSize && (pa - base - kHdrSize) % d.obj_size == 0,
                "kfree of address not allocated (or double free)");
  std::uint32_t idx = static_cast<std::uint32_t>((pa - base - kHdrSize) / d.obj_size);
  VOS_CHECK_MSG(idx < d.capacity && TestBit(base, idx),
                "kfree of address not allocated (or double free)");
  SetBit(base, idx, false);
  {
    RD_EXCLUDE_SCOPE("token-serialized allocator stats (percpu counters on real hw)");
    --d.outstanding_objs;
    allocated_bytes_ -= d.obj_size;
    --allocation_count_;
  }
  unsigned core = CurCore();
  auto& mag = mags_[core][static_cast<std::size_t>(cls)];
  if (mag.size() >= mag_cap_) {
    SpinGuard g(depot_lock_);
    DrainBatch(core, cls, mag_cap_ / 2);
    ++core_stats_[core].drains;
  }
  mag.push_back(pa);
  ++core_stats_[core].frees;
}

std::uint8_t* Kmalloc::Ptr(PhysAddr pa) {
  // Lock-free: a pure address-range computation over the frame descriptor
  // and the in-page slab header (the drivers' hot path).
  std::uint64_t frame = FrameIndex(pa);
  const FrameDesc& fd = frames_[frame];
  if (fd.kind == FrameKind::kLargeHead) {
    return pmm_.mem().Ptr(pa, fd.size);
  }
  VOS_CHECK_MSG(fd.kind == FrameKind::kSlab, "kmalloc Ptr on non-live allocation");
  PhysAddr base = SlabBase(pa);
  std::uint64_t magic = pmm_.mem().Load<std::uint64_t>(base + kOffMagic);
  VOS_CHECK_MSG((magic & ~0xffull) == kHdrMagic &&
                    (magic & 0xff) < static_cast<std::uint64_t>(kNumClasses),
                "kmalloc Ptr: corrupt slab header");
  const Depot& d = depots_[magic & 0xff];
  VOS_CHECK_MSG(pa >= base + kHdrSize && (pa - base - kHdrSize) % d.obj_size == 0,
                "kmalloc Ptr on non-live allocation");
  std::uint32_t idx = static_cast<std::uint32_t>((pa - base - kHdrSize) / d.obj_size);
  VOS_CHECK_MSG(idx < d.capacity && TestBit(base, idx), "kmalloc Ptr on non-live allocation");
  return pmm_.mem().Ptr(pa, d.obj_size);
}

Kmalloc::ClassStats Kmalloc::class_stats(int cls) const {
  // Unlocked procfs/test snapshot; a stale count only skews a gauge.
  const Depot& d = depots_[static_cast<std::size_t>(cls)];
  ClassStats out;
  out.obj_size = d.obj_size;
  out.slab_pages = d.slab_pages;
  out.slabs = d.live_slabs;               // racedet: ok (token-serialized gauge snapshot)
  out.total_objs = d.live_slabs * d.capacity;  // racedet: ok (token-serialized gauge snapshot)
  out.live_objs = d.outstanding_objs;     // racedet: ok (token-serialized gauge snapshot)
  out.refills = d.refill_count;           // racedet: ok (token-serialized gauge snapshot)
  return out;
}

std::uint64_t Kmalloc::CachedObjects(unsigned core) const {
  std::uint64_t n = 0;
  for (const auto& mag : mags_[core]) {
    n += mag.size();
  }
  return n;
}

double Kmalloc::HitRate() const {
  std::uint64_t hits = 0, misses = 0;
  for (const CoreStats& cs : core_stats_) {
    hits += cs.hits;
    misses += cs.misses;
  }
  return hits + misses == 0 ? 1.0 : static_cast<double>(hits) / static_cast<double>(hits + misses);
}

}  // namespace vos
