#include "src/kernel/kmalloc.h"

#include "src/base/assert.h"

namespace vos {

int Kmalloc::ClassFor(std::uint64_t size) const {
  for (int s = kMinShift; s <= kMaxShift; ++s) {
    if (size <= (1ull << s)) {
      return s - kMinShift;
    }
  }
  return -1;
}

void Kmalloc::RefillClass(int cls) {
  PhysAddr page = pmm_.AllocPage();
  if (page == 0) {
    return;
  }
  std::uint64_t obj = 1ull << (cls + kMinShift);
  for (std::uint64_t off = 0; off + obj <= kPageSize; off += obj) {
    PhysAddr pa = page + off;
    pmm_.mem().Store<std::uint64_t>(pa, free_heads_[cls]);
    free_heads_[cls] = pa;
  }
}

PhysAddr Kmalloc::Alloc(std::uint64_t size) {
  VOS_CHECK(size > 0);
  SpinGuard g(lock_);
  int cls = ClassFor(size);
  if (cls < 0) {
    std::uint64_t npages = (size + kPageSize - 1) / kPageSize;
    PhysAddr pa = pmm_.AllocRange(npages);
    if (pa == 0) {
      return 0;
    }
    live_[pa] = Live{-1, npages, size};
    allocated_bytes_ += size;
    return pa;
  }
  if (free_heads_[cls] == 0) {
    RefillClass(cls);
    if (free_heads_[cls] == 0) {
      return 0;
    }
  }
  PhysAddr pa = free_heads_[cls];
  free_heads_[cls] = pmm_.mem().Load<std::uint64_t>(pa);
  live_[pa] = Live{cls, 0, size};
  allocated_bytes_ += size;
  return pa;
}

void Kmalloc::Free(PhysAddr pa) {
  SpinGuard g(lock_);
  auto it = live_.find(pa);
  VOS_CHECK_MSG(it != live_.end(), "kfree of address not allocated (or double free)");
  allocated_bytes_ -= it->second.size;
  if (it->second.cls < 0) {
    pmm_.FreeRange(pa, it->second.npages);
  } else {
    int cls = it->second.cls;
    pmm_.mem().Store<std::uint64_t>(pa, free_heads_[cls]);
    free_heads_[cls] = pa;
  }
  live_.erase(it);
}

std::uint8_t* Kmalloc::Ptr(PhysAddr pa) {
  SpinGuard g(lock_);
  auto it = live_.find(pa);
  VOS_CHECK_MSG(it != live_.end(), "kmalloc Ptr on non-live allocation");
  return pmm_.mem().Ptr(pa, it->second.size);
}

}  // namespace vos
