// printk: kernel debug messages over the polled UART. Writes are synchronous
// through all prototypes (§4.1) — each character occupies the wire, so printk
// has a real virtual-time cost, exactly the property that makes interrupt-
// driven TX unnecessary complexity in the paper's judgment.
#ifndef VOS_SRC_KERNEL_KLOG_H_
#define VOS_SRC_KERNEL_KLOG_H_

#include <cstdarg>
#include <string>

#include "src/base/units.h"
#include "src/hw/uart.h"

namespace vos {

class Klog {
 public:
  explicit Klog(Uart& uart) : uart_(uart) {}

  // Prints a formatted message. Returns the virtual time the synchronous
  // UART transmission took; the caller (kernel context) burns it.
  Cycles Printf(Cycles now, const char* fmt, ...) __attribute__((format(printf, 3, 4)));
  Cycles VPrintf(Cycles now, const char* fmt, std::va_list ap);
  Cycles Puts(Cycles now, const std::string& s);

 private:
  Uart& uart_;
};

}  // namespace vos

#endif  // VOS_SRC_KERNEL_KLOG_H_
