// The 30-syscall interface (§3): task management, filesystem, and
// threading/synchronization, plus the mmap/cacheflush pair Prototype 3 needs
// for direct rendering and the sync/fsync pair the write-back buffer cache
// needs for durability. Each entry charges the trap cost, enforces the
// prototype stage (earlier prototypes return ENOSYS, as their kernels simply
// lack the code), and emits trace records Fig 11's breakdowns are built from.
#include <cstring>
#include <exception>

#include "src/apps/app_registry.h"
#include "src/base/status.h"
#include "src/kernel/kernel.h"

namespace vos {

Task* Kernel::SyscallEnter(Sys num) {
  Task* cur = CurrentTask();
  VOS_CHECK_MSG(cur != nullptr, "syscall outside task context");
  if (cur->killed && std::uncaught_exceptions() == 0) {
    DoExit(cur, -1);  // the xv6 pattern: kills take effect at the next trap
  }
  cur->saved_domain = cur->domain;
  cur->domain = TimeDomain::kKernel;
  ++cur->syscall_count;
  // Shadow-stack frame for the syscall body, popped by SyscallExit. Manual
  // push/pop instead of RAII because entry and exit are separate calls; a
  // kill/exit unwind leaves the frame behind, but the task is a zombie then
  // and its stack is never sampled again.
  cur->call_stack.push_back(SysName(num));
  cur->fiber().Burn(cfg_.cost.syscall_entry + cfg_.cost.syscall_body);
  cur->syscall_enter_ts = Now();
  trace_.Emit(cur->syscall_enter_ts, cur->core, TraceEvent::kSyscallEnter, cur->pid(),
              static_cast<std::uint64_t>(num));
  return cur;
}

std::int64_t Kernel::SyscallExit(Sys num, std::int64_t ret) {
  Task* cur = CurrentTask();
  cur->fiber().Burn(cfg_.cost.syscall_exit);
  Cycles now = Now();
  // Entry→exit latency, per syscall number and aggregate (Fig 11's
  // distributions, now as histograms instead of raw event pairs).
  Cycles lat = now > cur->syscall_enter_ts ? now - cur->syscall_enter_ts : 0;
  syscall_lat_all_->Record(lat);
  int n = static_cast<int>(num);
  if (n >= 1 && n <= kNumSyscalls) {
    syscall_lat_[n]->Record(lat);
  }
  trace_.Emit(now, cur->core, TraceEvent::kSyscallExit, cur->pid(),
              static_cast<std::uint64_t>(num), static_cast<std::uint64_t>(ret));
  if (!cur->call_stack.empty()) {
    cur->call_stack.pop_back();
  }
  cur->domain = cur->saved_domain;
  return ret;
}

std::int64_t Kernel::InstallFd(Task* cur, FilePtr f) {
  for (std::size_t i = 0; i < cur->fds.size(); ++i) {
    if (cur->fds[i] == nullptr) {
      cur->fds[i] = std::move(f);
      return static_cast<std::int64_t>(i);
    }
  }
  if (cur->fds.size() >= 64) {
    return kErrMFile;
  }
  cur->fds.push_back(std::move(f));
  return static_cast<std::int64_t>(cur->fds.size()) - 1;
}

FilePtr Kernel::GetFd(Task* cur, int fd) {
  if (fd < 0 || static_cast<std::size_t>(fd) >= cur->fds.size()) {
    return nullptr;
  }
  return cur->fds[static_cast<std::size_t>(fd)];
}

// --- Task management ----------------------------------------------------------

std::int64_t Kernel::SysFork(std::function<int()> child_body) {
  Task* cur = SyscallEnter(Sys::kFork);
  if (!cfg_.HasTaskSyscalls()) {
    return SyscallExit(Sys::kFork, kErrNoSys);
  }
  Task* child = NewTask(cur->name(), cur->kernel_task());
  child->parent = cur;
  child->cwd = cur->cwd;
  child->fds = cur->fds;  // shared open-file descriptions
  if (cur->mm != nullptr) {
    child->mm = cur->mm->Clone(cfg_.cow_fork);
    cur->fiber().Burn(cur->mm->TakeCost());
  } else {
    cur->fiber().Burn(cfg_.cost.fork_base);
  }
  AttachUserEntry(child, std::move(child_body));
  sched_.AddNew(child, static_cast<int>(cur->core));
  return SyscallExit(Sys::kFork, child->pid());
}

void Kernel::SysExit(int code) {
  Task* cur = SyscallEnter(Sys::kExit);
  DoExit(cur, code);
}

std::int64_t Kernel::SysWait(int* status) {
  Task* cur = SyscallEnter(Sys::kWait);
  if (!cfg_.HasTaskSyscalls()) {
    return SyscallExit(Sys::kWait, kErrNoSys);
  }
  for (;;) {
    bool have_children = false;
    Pid zombie = 0;
    for (auto& [pid, t] : tasks_) {
      if (t->parent != cur) {
        continue;
      }
      have_children = true;
      if (t->state == TaskState::kZombie) {
        zombie = pid;
        break;
      }
    }
    if (zombie != 0) {
      if (status != nullptr) {
        *status = FindTask(zombie)->exit_code;
      }
      ReapTask(zombie);
      return SyscallExit(Sys::kWait, zombie);
    }
    if (!have_children) {
      return SyscallExit(Sys::kWait, kErrChild);
    }
    if (cur->killed) {
      return SyscallExit(Sys::kWait, kErrPerm);
    }
    sched_.Sleep(cur, cur);
  }
}

std::int64_t Kernel::SysKill(Pid pid) {
  Task* cur = SyscallEnter(Sys::kKill);
  (void)cur;
  if (!cfg_.HasTaskSyscalls()) {
    return SyscallExit(Sys::kKill, kErrNoSys);
  }
  Task* t = FindTask(pid);
  if (t == nullptr || t->state == TaskState::kZombie) {
    return SyscallExit(Sys::kKill, kErrNoEnt);
  }
  t->killed = true;
  if (t->state == TaskState::kSleeping) {
    sched_.WakeTask(t);  // let it notice the kill at its next trap
  }
  return SyscallExit(Sys::kKill, 0);
}

std::int64_t Kernel::SysGetPid() {
  Task* cur = SyscallEnter(Sys::kGetPid);
  return SyscallExit(Sys::kGetPid, cur->pid());
}

std::int64_t Kernel::SysSbrk(std::int64_t delta) {
  Task* cur = SyscallEnter(Sys::kSbrk);
  if (!cfg_.HasVm() || cur->mm == nullptr) {
    return SyscallExit(Sys::kSbrk, kErrNoSys);
  }
  std::int64_t old = cur->mm->Sbrk(delta);
  cur->fiber().Burn(cur->mm->TakeCost());
  return SyscallExit(Sys::kSbrk, old < 0 ? kErrNoMem : old);
}

std::int64_t Kernel::SysSleep(std::uint64_t ms) {
  Task* cur = SyscallEnter(Sys::kSleep);
  Cycles wake_at = Now() + Ms(ms);
  vtimers_->AddAt(wake_at, [this, cur] { sched_.WakeTask(cur); });
  trace_.Emit(Now(), cur->core, TraceEvent::kSleep, cur->pid(), ms);
  sched_.Sleep(cur, cur);
  if (cur->killed && std::uncaught_exceptions() == 0) {
    DoExit(cur, -1);
  }
  return SyscallExit(Sys::kSleep, 0);
}

std::int64_t Kernel::SysUptime() {
  SyscallEnter(Sys::kUptime);
  return SyscallExit(Sys::kUptime, static_cast<std::int64_t>(ToMs(Now())));
}

std::unique_ptr<AddressSpace> Kernel::BuildAddressSpace(const VelfImage& img,
                                                        const std::vector<std::string>& argv,
                                                        Cycles* cost) {
  auto mm = std::make_unique<AddressSpace>(*pmm_, frame_refs_, cfg_);
  if (img.heap_reserve > 0) {
    mm->heap_reserve_pages = PageRoundUp(img.heap_reserve) / kPageSize;
  }
  for (const VelfSegment& seg : img.segments) {
    std::uint64_t npages = PageRoundUp(seg.memsz) / kPageSize;
    if (!mm->MapAnon(seg.vaddr, npages, (seg.flags & 1) != 0 || seg.type == kVelfSegData)) {
      return nullptr;
    }
    // Zero BSS then copy the payload: loaders must not leak junk DRAM.
    for (std::uint64_t p = 0; p < npages; ++p) {
      auto pa = mm->Translate(seg.vaddr + p * kPageSize);
      VOS_CHECK(pa.has_value());
      pmm_->mem().Fill(*pa, 0, kPageSize);
    }
    if (!seg.payload.empty()) {
      // Segment pages were just mapped read-write capable; use the physical
      // path since code segments are read-only at the PTE level.
      std::uint64_t off = 0;
      while (off < seg.payload.size()) {
        auto pa = mm->Translate(seg.vaddr + off);
        VOS_CHECK(pa.has_value());
        std::uint64_t take = std::min<std::uint64_t>(kPageSize - (off % kPageSize),
                                                     seg.payload.size() - off);
        pmm_->mem().Write(*pa, seg.payload.data() + off, take);
        off += take;
      }
      *cost += Cycles(seg.payload.size() * cfg_.cost.memcpy_per_byte);
    }
  }
  if (!mm->SetupStack()) {
    return nullptr;
  }
  // Copy argv onto the stack (the one demand-mapped top page).
  std::uint64_t sp = kUserStackTop;
  for (const std::string& a : argv) {
    sp -= a.size() + 1;
    if (!mm->CopyOut(sp, a.c_str(), a.size() + 1)) {
      return nullptr;
    }
  }
  *cost += mm->TakeCost() + cfg_.cost.exec_base;
  return mm;
}

std::int64_t Kernel::SysExec(const std::string& path, const std::vector<std::string>& argv) {
  Task* cur = SyscallEnter(Sys::kExec);
  if (!cfg_.HasVm()) {
    return SyscallExit(Sys::kExec, kErrNoSys);
  }
  if (cur->is_thread) {
    return SyscallExit(Sys::kExec, kErrInval);
  }
  std::vector<std::uint8_t> bytes;
  Cycles burn = 0;
  std::int64_t r = LoadVelf(path, &bytes, &burn);
  cur->fiber().Burn(burn);
  if (r < 0) {
    return SyscallExit(Sys::kExec, r);
  }
  auto img = ParseVelf(bytes.data(), bytes.size());
  if (!img) {
    return SyscallExit(Sys::kExec, kErrInval);
  }
  const AppMain* entry = AppRegistry::Instance().Find(img->entry);
  if (entry == nullptr) {
    return SyscallExit(Sys::kExec, kErrNoEnt);
  }
  Cycles cost = 0;
  auto mm = BuildAddressSpace(*img, argv, &cost);
  cur->fiber().Burn(cost);
  if (mm == nullptr) {
    return SyscallExit(Sys::kExec, kErrNoMem);
  }
  cur->mm = std::move(mm);
  cur->set_name(img->entry);
  // A process exec'd with no inherited descriptors gets the console as
  // stdin/stdout/stderr — what init sets up in xv6 before running the shell.
  if (cfg_.HasFiles() && cur->fds.empty()) {
    for (int i = 0; i < 3; ++i) {
      FilePtr f;
      Cycles b = 0;
      if (vfs_->Open(cur, "/dev/console", i == 0 ? kORdonly : kOWronly, &f, &b) == 0) {
        InstallFd(cur, std::move(f));
      }
    }
  }
  SyscallExit(Sys::kExec, 0);

  // Jump to the new image: run the app's main on this task, then exit with
  // its return code. Never returns.
  AppEnv env;
  env.kernel = this;
  env.task = cur;
  env.argv = argv;
  cur->domain = TimeDomain::kUser;
  int rc = (*entry)(env);
  SysExit(rc);
}

// --- Files ---------------------------------------------------------------------

std::int64_t Kernel::SysOpen(const std::string& path, std::uint32_t flags) {
  Task* cur = SyscallEnter(Sys::kOpen);
  if (!cfg_.HasFiles()) {
    return SyscallExit(Sys::kOpen, kErrNoSys);
  }
  FilePtr f;
  Cycles burn = 0;
  std::int64_t r = vfs_->Open(cur, path, flags, &f, &burn);
  cur->fiber().Burn(burn);
  if (r < 0) {
    return SyscallExit(Sys::kOpen, r);
  }
  return SyscallExit(Sys::kOpen, InstallFd(cur, std::move(f)));
}

std::int64_t Kernel::SysClose(int fd) {
  Task* cur = SyscallEnter(Sys::kClose);
  if (!cfg_.HasFiles()) {
    return SyscallExit(Sys::kClose, kErrNoSys);
  }
  FilePtr f = GetFd(cur, fd);
  if (f == nullptr) {
    return SyscallExit(Sys::kClose, kErrBadFd);
  }
  cur->fds[static_cast<std::size_t>(fd)] = nullptr;
  vfs_->Close(cur, f);
  return SyscallExit(Sys::kClose, 0);
}

std::int64_t Kernel::SysRead(int fd, void* buf, std::uint32_t n) {
  Task* cur = SyscallEnter(Sys::kRead);
  if (!cfg_.HasFiles()) {
    return SyscallExit(Sys::kRead, kErrNoSys);
  }
  FilePtr f = GetFd(cur, fd);
  if (f == nullptr) {
    return SyscallExit(Sys::kRead, kErrBadFd);
  }
  Cycles burn = 0;
  std::int64_t r;
  if (f->kind == FileKind::kSocket) {
    r = net_->Recv(cur, *f->sock, static_cast<std::uint8_t*>(buf), n, f->nonblock, &burn);
  } else if (f->kind == FileKind::kPipe) {
    r = f->pipe->Read(cur, static_cast<std::uint8_t*>(buf), n, f->nonblock);
    burn += cfg_.cost.pipe_op + Cycles((r > 0 ? r : 0) * cfg_.cost.pipe_per_byte);
  } else {
    r = vfs_->Read(cur, *f, static_cast<std::uint8_t*>(buf), n, &burn);
    if (r > 0) {
      burn += Cycles(r * cfg_.cost.memcpy_per_byte);  // copyout to user
    }
  }
  cur->fiber().Burn(burn);
  return SyscallExit(Sys::kRead, r);
}

std::int64_t Kernel::SysWrite(int fd, const void* buf, std::uint32_t n) {
  Task* cur = SyscallEnter(Sys::kWrite);
  if (!cfg_.HasFiles()) {
    // Prototype 3: write() is hardwired to the UART for debugging (§4.3).
    Cycles c = klog_.Puts(Now(), std::string(static_cast<const char*>(buf), n));
    cur->fiber().Burn(c);
    return SyscallExit(Sys::kWrite, n);
  }
  FilePtr f = GetFd(cur, fd);
  if (f == nullptr) {
    return SyscallExit(Sys::kWrite, kErrBadFd);
  }
  Cycles burn = 0;
  std::int64_t r;
  if (f->kind == FileKind::kSocket) {
    r = net_->Send(cur, *f->sock, static_cast<const std::uint8_t*>(buf), n, f->nonblock, &burn);
  } else if (f->kind == FileKind::kPipe) {
    r = f->pipe->Write(cur, static_cast<const std::uint8_t*>(buf), n, f->nonblock);
    burn += cfg_.cost.pipe_op + Cycles((r > 0 ? r : 0) * cfg_.cost.pipe_per_byte);
  } else {
    r = vfs_->Write(cur, *f, static_cast<const std::uint8_t*>(buf), n, &burn);
  }
  cur->fiber().Burn(burn);
  return SyscallExit(Sys::kWrite, r);
}

std::int64_t Kernel::SysLseek(int fd, std::int64_t off, int whence) {
  Task* cur = SyscallEnter(Sys::kLseek);
  if (!cfg_.HasFiles()) {
    return SyscallExit(Sys::kLseek, kErrNoSys);
  }
  FilePtr f = GetFd(cur, fd);
  if (f == nullptr) {
    return SyscallExit(Sys::kLseek, kErrBadFd);
  }
  Cycles burn = 0;
  std::int64_t r = vfs_->Lseek(*f, off, whence, &burn);
  cur->fiber().Burn(burn);
  return SyscallExit(Sys::kLseek, r);
}

std::int64_t Kernel::SysDup(int fd) {
  Task* cur = SyscallEnter(Sys::kDup);
  if (!cfg_.HasFiles()) {
    return SyscallExit(Sys::kDup, kErrNoSys);
  }
  FilePtr f = GetFd(cur, fd);
  if (f == nullptr) {
    return SyscallExit(Sys::kDup, kErrBadFd);
  }
  return SyscallExit(Sys::kDup, InstallFd(cur, f));
}

std::int64_t Kernel::SysPipe(int fds[2]) {
  Task* cur = SyscallEnter(Sys::kPipe);
  if (!cfg_.HasFiles()) {
    return SyscallExit(Sys::kPipe, kErrNoSys);
  }
  auto pipe = std::make_shared<Pipe>(sched_);
  pipe->SetBytesPerWakeupHist(metrics_.Hist("pipe.bytes_per_wakeup"));
  auto rf = std::make_shared<File>();
  rf->kind = FileKind::kPipe;
  rf->readable = true;
  rf->pipe = pipe;
  rf->pipe_write_end = false;
  auto wf = std::make_shared<File>();
  wf->kind = FileKind::kPipe;
  wf->writable = true;
  wf->pipe = pipe;
  wf->pipe_write_end = true;
  std::int64_t r0 = InstallFd(cur, rf);
  std::int64_t r1 = InstallFd(cur, wf);
  if (r0 < 0 || r1 < 0) {
    return SyscallExit(Sys::kPipe, kErrMFile);
  }
  fds[0] = static_cast<int>(r0);
  fds[1] = static_cast<int>(r1);
  cur->fiber().Burn(cfg_.cost.pipe_op);
  return SyscallExit(Sys::kPipe, 0);
}

std::int64_t Kernel::SysFstat(int fd, Stat* st) {
  Task* cur = SyscallEnter(Sys::kFstat);
  if (!cfg_.HasFiles()) {
    return SyscallExit(Sys::kFstat, kErrNoSys);
  }
  FilePtr f = GetFd(cur, fd);
  if (f == nullptr) {
    return SyscallExit(Sys::kFstat, kErrBadFd);
  }
  Cycles burn = 0;
  std::int64_t r = vfs_->FStat(*f, st, &burn);
  cur->fiber().Burn(burn);
  return SyscallExit(Sys::kFstat, r);
}

std::int64_t Kernel::SysChdir(const std::string& path) {
  Task* cur = SyscallEnter(Sys::kChdir);
  if (!cfg_.HasFiles()) {
    return SyscallExit(Sys::kChdir, kErrNoSys);
  }
  Cycles burn = 0;
  std::int64_t r = vfs_->Chdir(cur, path, &burn);
  cur->fiber().Burn(burn);
  return SyscallExit(Sys::kChdir, r);
}

std::int64_t Kernel::SysMkdir(const std::string& path) {
  Task* cur = SyscallEnter(Sys::kMkdir);
  if (!cfg_.HasFiles()) {
    return SyscallExit(Sys::kMkdir, kErrNoSys);
  }
  Cycles burn = 0;
  std::int64_t r = vfs_->Mkdir(cur, path, &burn);
  cur->fiber().Burn(burn);
  return SyscallExit(Sys::kMkdir, r);
}

std::int64_t Kernel::SysUnlink(const std::string& path) {
  Task* cur = SyscallEnter(Sys::kUnlink);
  if (!cfg_.HasFiles()) {
    return SyscallExit(Sys::kUnlink, kErrNoSys);
  }
  Cycles burn = 0;
  std::int64_t r = vfs_->Unlink(cur, path, &burn);
  cur->fiber().Burn(burn);
  return SyscallExit(Sys::kUnlink, r);
}

std::int64_t Kernel::SysLink(const std::string& oldp, const std::string& newp) {
  Task* cur = SyscallEnter(Sys::kLink);
  if (!cfg_.HasFiles()) {
    return SyscallExit(Sys::kLink, kErrNoSys);
  }
  Cycles burn = 0;
  std::int64_t r = vfs_->Link(cur, oldp, newp, &burn);
  cur->fiber().Burn(burn);
  return SyscallExit(Sys::kLink, r);
}

std::int64_t Kernel::SysMknod(const std::string& path, std::int16_t major, std::int16_t minor) {
  Task* cur = SyscallEnter(Sys::kMknod);
  if (!cfg_.HasFiles()) {
    return SyscallExit(Sys::kMknod, kErrNoSys);
  }
  Cycles burn = 0;
  std::int64_t r = vfs_->Mknod(cur, path, major, minor, &burn);
  cur->fiber().Burn(burn);
  return SyscallExit(Sys::kMknod, r);
}

std::int64_t Kernel::SysSync() {
  Task* cur = SyscallEnter(Sys::kSync);
  if (!cfg_.HasFiles()) {
    return SyscallExit(Sys::kSync, kErrNoSys);
  }
  // Vfs::Sync drains the journal (commit + checkpoint everything) before the
  // cache-wide flush; any flush that exhausted its retries latched kErrIo on
  // the device, and sync is the durability point where the caller learns
  // about it (errseq-style, consumed exactly once).
  Cycles burn = 0;
  std::int64_t r = vfs_->Sync(&burn);
  cur->fiber().Burn(burn);
  return SyscallExit(Sys::kSync, r);
}

std::int64_t Kernel::SysFsync(int fd) {
  Task* cur = SyscallEnter(Sys::kFsync);
  if (!cfg_.HasFiles()) {
    return SyscallExit(Sys::kFsync, kErrNoSys);
  }
  FilePtr f = GetFd(cur, fd);
  if (f == nullptr) {
    return SyscallExit(Sys::kFsync, kErrBadFd);
  }
  Cycles burn = 0;
  std::int64_t r = vfs_->Fsync(*f, &burn);
  cur->fiber().Burn(burn);
  return SyscallExit(Sys::kFsync, r);
}

std::int64_t Kernel::SysReadDir(const std::string& path, std::vector<DirEntryInfo>* out) {
  Task* cur = SyscallEnter(Sys::kOpen);  // accounted as an open-class call
  if (!cfg_.HasFiles()) {
    return SyscallExit(Sys::kOpen, kErrNoSys);
  }
  Cycles burn = 0;
  std::int64_t r = vfs_->ReadDir(cur, path, out, &burn);
  cur->fiber().Burn(burn);
  return SyscallExit(Sys::kOpen, r);
}

// --- Memory / devices ------------------------------------------------------------

std::int64_t Kernel::SysMmapFb(std::uint32_t** pixels, std::uint32_t* w, std::uint32_t* h) {
  Task* cur = SyscallEnter(Sys::kMmap);
  if (!cfg_.HasVm()) {
    return SyscallExit(Sys::kMmap, kErrNoSys);
  }
  if (!fb_driver_->ready()) {
    return SyscallExit(Sys::kMmap, kErrIo);
  }
  if (cur->mm != nullptr) {
    if (!cur->mm->MapFramebuffer(board_.fb().size_bytes())) {
      return SyscallExit(Sys::kMmap, kErrNoMem);
    }
    cur->fiber().Burn(cur->mm->TakeCost());
  }
  *pixels = fb_driver_->pixels();
  *w = fb_driver_->width();
  *h = fb_driver_->height();
  return SyscallExit(Sys::kMmap, 0);
}

std::int64_t Kernel::SysCacheFlush(std::uint64_t off, std::uint64_t len) {
  Task* cur = SyscallEnter(Sys::kCacheFlush);
  // EL0 cannot flush the cache itself (§4.3); this is the kernel service.
  cur->fiber().Burn(fb_driver_->Flush(off, len));
  return SyscallExit(Sys::kCacheFlush, 0);
}

// --- Threads / synchronization ----------------------------------------------------

std::int64_t Kernel::SysClone(std::function<int()> thread_body) {
  Task* cur = SyscallEnter(Sys::kClone);
  if (!cfg_.HasThreads()) {
    return SyscallExit(Sys::kClone, kErrNoSys);
  }
  Task* child = NewTask(cur->name() + "-thr", cur->kernel_task());
  child->parent = cur;
  child->cwd = cur->cwd;
  child->fds = cur->fds;
  child->mm = cur->mm;  // CLONE_VM: share the mm struct (§4.5)
  child->is_thread = true;
  AttachUserEntry(child, std::move(thread_body));
  sched_.AddNew(child);
  cur->fiber().Burn(cfg_.cost.fork_base / 3);  // no address-space copy
  return SyscallExit(Sys::kClone, child->pid());
}

std::int64_t Kernel::SysSemCreate(int initial) {
  Task* cur = SyscallEnter(Sys::kSemCreate);
  if (!cfg_.HasThreads()) {
    return SyscallExit(Sys::kSemCreate, kErrNoSys);
  }
  (void)cur;
  return SyscallExit(Sys::kSemCreate, sems_->Create(initial));
}

std::int64_t Kernel::SysSemWait(int id) {
  Task* cur = SyscallEnter(Sys::kSemWait);
  if (!cfg_.HasThreads()) {
    return SyscallExit(Sys::kSemWait, kErrNoSys);
  }
  return SyscallExit(Sys::kSemWait, sems_->Wait(cur, id));
}

std::int64_t Kernel::SysSemPost(int id) {
  Task* cur = SyscallEnter(Sys::kSemPost);
  if (!cfg_.HasThreads()) {
    return SyscallExit(Sys::kSemPost, kErrNoSys);
  }
  (void)cur;
  return SyscallExit(Sys::kSemPost, sems_->Post(id));
}

// --- Futex IPC --------------------------------------------------------------------

std::int64_t Kernel::SysIpcCreate(std::uint64_t bytes) {
  Task* cur = SyscallEnter(Sys::kIpcCreate);
  if (!cfg_.HasThreads()) {
    return SyscallExit(Sys::kIpcCreate, kErrNoSys);
  }
  cur->fiber().Burn(cfg_.cost.ipc_create);
  return SyscallExit(Sys::kIpcCreate, ipcs_->Create(static_cast<std::size_t>(bytes)));
}

std::int64_t Kernel::SysIpcMap(int id, IpcRing** out) {
  Task* cur = SyscallEnter(Sys::kIpcMap);
  if (!cfg_.HasThreads()) {
    return SyscallExit(Sys::kIpcMap, kErrNoSys);
  }
  IpcRing* r = ipcs_->Ring(id);
  if (r == nullptr) {
    return SyscallExit(Sys::kIpcMap, kErrInval);
  }
  // Maps the ring into the caller (page-table work); afterwards the task
  // pushes/pops the shared memory directly, without kernel entries.
  cur->fiber().Burn(cfg_.cost.ipc_map);
  *out = r;
  return SyscallExit(Sys::kIpcMap, 0);
}

std::int64_t Kernel::SysIpcWait(int id, int side, std::uint64_t expected) {
  Task* cur = SyscallEnter(Sys::kIpcWait);
  if (!cfg_.HasThreads()) {
    return SyscallExit(Sys::kIpcWait, kErrNoSys);
  }
  if (side != 0 && side != 1) {
    return SyscallExit(Sys::kIpcWait, kErrInval);
  }
  return SyscallExit(Sys::kIpcWait,
                     ipcs_->Wait(cur, id, static_cast<IpcSide>(side), expected));
}

std::int64_t Kernel::SysIpcWake(int id, int side) {
  Task* cur = SyscallEnter(Sys::kIpcWake);
  if (!cfg_.HasThreads()) {
    return SyscallExit(Sys::kIpcWake, kErrNoSys);
  }
  if (side != 0 && side != 1) {
    return SyscallExit(Sys::kIpcWake, kErrInval);
  }
  cur->fiber().Burn(cfg_.cost.wakeup);
  return SyscallExit(Sys::kIpcWake, ipcs_->Wake(id, static_cast<IpcSide>(side)));
}

std::int64_t Kernel::SysYield() {
  Task* cur = SyscallEnter(Sys::kSleep);
  sched_.Yield(cur);
  return SyscallExit(Sys::kSleep, 0);
}

// --- Socket syscalls (Prototype 5 networking). Every entry point is gated on
// HasNet(): pre-proto5 stages and nic-less boards report kErrNoSys, exactly
// like the other staged feature families.

std::int64_t Kernel::SysSocket(int type, std::uint32_t flags) {
  Task* cur = SyscallEnter(Sys::kSocket);
  if (!cfg_.HasNet() || net_ == nullptr) {
    return SyscallExit(Sys::kSocket, kErrNoSys);
  }
  if (type != 0 && type != 1) {
    return SyscallExit(Sys::kSocket, kErrInval);
  }
  auto f = std::make_shared<File>();
  f->kind = FileKind::kSocket;
  f->readable = true;
  f->writable = true;
  f->nonblock = (flags & 1u) != 0;
  f->sock = net_->CreateSocket(type == 0 ? Socket::Type::kTcp : Socket::Type::kUdp);
  cur->fiber().Burn(cfg_.cost.sock_op);
  std::int64_t fd = InstallFd(cur, std::move(f));
  return SyscallExit(Sys::kSocket, fd < 0 ? kErrMFile : fd);
}

FilePtr Kernel::GetSockFd(Task* cur, int fd, std::int64_t* err) {
  FilePtr f = GetFd(cur, fd);
  if (f == nullptr) {
    *err = kErrBadFd;
    return nullptr;
  }
  if (f->kind != FileKind::kSocket) {
    *err = kErrInval;
    return nullptr;
  }
  return f;
}

std::int64_t Kernel::SysBind(int fd, std::uint16_t port) {
  Task* cur = SyscallEnter(Sys::kBind);
  if (!cfg_.HasNet() || net_ == nullptr) {
    return SyscallExit(Sys::kBind, kErrNoSys);
  }
  std::int64_t err = 0;
  FilePtr f = GetSockFd(cur, fd, &err);
  if (f == nullptr) {
    return SyscallExit(Sys::kBind, err);
  }
  cur->fiber().Burn(cfg_.cost.sock_op);
  return SyscallExit(Sys::kBind, net_->Bind(*f->sock, port));
}

std::int64_t Kernel::SysListen(int fd, std::uint32_t backlog) {
  Task* cur = SyscallEnter(Sys::kListen);
  if (!cfg_.HasNet() || net_ == nullptr) {
    return SyscallExit(Sys::kListen, kErrNoSys);
  }
  std::int64_t err = 0;
  FilePtr f = GetSockFd(cur, fd, &err);
  if (f == nullptr) {
    return SyscallExit(Sys::kListen, err);
  }
  cur->fiber().Burn(cfg_.cost.sock_op);
  return SyscallExit(Sys::kListen, net_->Listen(*f->sock, backlog));
}

std::int64_t Kernel::SysAccept(int fd, std::uint32_t* peer_ip, std::uint16_t* peer_port,
                               std::uint32_t flags) {
  Task* cur = SyscallEnter(Sys::kAccept);
  if (!cfg_.HasNet() || net_ == nullptr) {
    return SyscallExit(Sys::kAccept, kErrNoSys);
  }
  std::int64_t err = 0;
  FilePtr f = GetSockFd(cur, fd, &err);
  if (f == nullptr) {
    return SyscallExit(Sys::kAccept, err);
  }
  std::shared_ptr<Socket> conn;
  Cycles burn = 0;
  std::int64_t r = net_->Accept(cur, *f->sock, f->nonblock, &conn, peer_ip, peer_port, &burn);
  cur->fiber().Burn(burn);
  if (r < 0) {
    return SyscallExit(Sys::kAccept, r);
  }
  auto nf = std::make_shared<File>();
  nf->kind = FileKind::kSocket;
  nf->readable = true;
  nf->writable = true;
  nf->nonblock = (flags & 1u) != 0;
  nf->sock = std::move(conn);
  std::int64_t nfd = InstallFd(cur, nf);
  if (nfd < 0) {
    vfs_->Close(cur, nf);  // tear the accepted connection down
    return SyscallExit(Sys::kAccept, kErrMFile);
  }
  return SyscallExit(Sys::kAccept, nfd);
}

std::int64_t Kernel::SysConnect(int fd, std::uint32_t ip, std::uint16_t port) {
  Task* cur = SyscallEnter(Sys::kConnect);
  if (!cfg_.HasNet() || net_ == nullptr) {
    return SyscallExit(Sys::kConnect, kErrNoSys);
  }
  std::int64_t err = 0;
  FilePtr f = GetSockFd(cur, fd, &err);
  if (f == nullptr) {
    return SyscallExit(Sys::kConnect, err);
  }
  Cycles burn = 0;
  std::int64_t r = net_->Connect(cur, *f->sock, ip, port, f->nonblock, &burn);
  cur->fiber().Burn(burn);
  return SyscallExit(Sys::kConnect, r);
}

std::int64_t Kernel::SysSend(int fd, const void* buf, std::uint32_t n) {
  Task* cur = SyscallEnter(Sys::kSend);
  if (!cfg_.HasNet() || net_ == nullptr) {
    return SyscallExit(Sys::kSend, kErrNoSys);
  }
  std::int64_t err = 0;
  FilePtr f = GetSockFd(cur, fd, &err);
  if (f == nullptr) {
    return SyscallExit(Sys::kSend, err);
  }
  Cycles burn = 0;
  std::int64_t r =
      net_->Send(cur, *f->sock, static_cast<const std::uint8_t*>(buf), n, f->nonblock, &burn);
  cur->fiber().Burn(burn);
  return SyscallExit(Sys::kSend, r);
}

std::int64_t Kernel::SysRecv(int fd, void* buf, std::uint32_t n) {
  Task* cur = SyscallEnter(Sys::kRecv);
  if (!cfg_.HasNet() || net_ == nullptr) {
    return SyscallExit(Sys::kRecv, kErrNoSys);
  }
  std::int64_t err = 0;
  FilePtr f = GetSockFd(cur, fd, &err);
  if (f == nullptr) {
    return SyscallExit(Sys::kRecv, err);
  }
  Cycles burn = 0;
  std::int64_t r = net_->Recv(cur, *f->sock, static_cast<std::uint8_t*>(buf), n, f->nonblock, &burn);
  cur->fiber().Burn(burn);
  return SyscallExit(Sys::kRecv, r);
}

std::int64_t Kernel::SysShutdown(int fd, int how) {
  Task* cur = SyscallEnter(Sys::kShutdown);
  if (!cfg_.HasNet() || net_ == nullptr) {
    return SyscallExit(Sys::kShutdown, kErrNoSys);
  }
  std::int64_t err = 0;
  FilePtr f = GetSockFd(cur, fd, &err);
  if (f == nullptr) {
    return SyscallExit(Sys::kShutdown, err);
  }
  Cycles burn = 0;
  std::int64_t r = net_->Shutdown(cur, *f->sock, how, &burn);
  cur->fiber().Burn(burn);
  return SyscallExit(Sys::kShutdown, r);
}

std::int64_t Kernel::SyscallRaw(Sys num, std::uint64_t a0, std::uint64_t a1) {
  switch (num) {
    case Sys::kGetPid:
      return SysGetPid();
    case Sys::kUptime:
      return SysUptime();
    case Sys::kSleep:
      return SysSleep(a0);
    case Sys::kSbrk:
      return SysSbrk(static_cast<std::int64_t>(a0));
    case Sys::kClose:
      return SysClose(static_cast<int>(a0));
    case Sys::kDup:
      return SysDup(static_cast<int>(a0));
    case Sys::kKill:
      return SysKill(static_cast<Pid>(a0));
    case Sys::kSemCreate:
      return SysSemCreate(static_cast<int>(a0));
    case Sys::kSemWait:
      return SysSemWait(static_cast<int>(a0));
    case Sys::kSemPost:
      return SysSemPost(static_cast<int>(a0));
    case Sys::kIpcCreate:
      return SysIpcCreate(a0);
    case Sys::kIpcWake:
      return SysIpcWake(static_cast<int>(a0), static_cast<int>(a1));
    case Sys::kCacheFlush:
      return SysCacheFlush(a0, a1);
    case Sys::kSync:
      return SysSync();
    case Sys::kFsync:
      return SysFsync(static_cast<int>(a0));
    default:
      return kErrNoSys;  // pointer-carrying syscalls need the typed interface
  }
}

}  // namespace vos
