#include "src/kernel/semaphore.h"

#include "src/base/status.h"

namespace vos {

std::int64_t SemTable::Create(int initial) {
  if (initial < 0) {
    return kErrInval;
  }
  SpinGuard g(lock_);
  for (int i = 0; i < kMaxSemaphores; ++i) {
    if (!sems_[i].used) {
      sems_[i].used = true;
      sems_[i].value = initial;
      return i;
    }
  }
  return kErrNoSpace;
}

std::int64_t SemTable::Destroy(int id) {
  SpinGuard g(lock_);
  if (!ValidId(id)) {
    return kErrInval;
  }
  sems_[id].used = false;
  // Anyone still sleeping here would hang; wake them so they can fail.
  sched_.Wakeup(&sems_[id].chan);
  return 0;
}

std::int64_t SemTable::Wait(Task* cur, int id) {
  SpinGuard g(lock_);
  if (!ValidId(id)) {
    return kErrInval;
  }
  while (sems_[id].value == 0) {
    if (cur->killed) {
      return kErrIntr;
    }
    sched_.SleepOn(cur, &sems_[id].chan, lock_);
    if (!sems_[id].used) {
      return kErrInval;  // destroyed while waiting
    }
  }
  --sems_[id].value;
  return 0;
}

std::int64_t SemTable::Post(int id) {
  SpinGuard g(lock_);
  if (!ValidId(id)) {
    return kErrInval;
  }
  ++sems_[id].value;
  sched_.Wakeup(&sems_[id].chan);
  return 0;
}

std::int64_t SemTable::Value(int id) const {
  if (!ValidId(id)) {
    return kErrInval;
  }
  return sems_[id].value;
}

}  // namespace vos
