// Kernel spinlock with the evolution the paper walks through (§4.1): it
// begins life as a plain spinlock, then gains reference-counted interrupt
// disabling (push_off/pop_off in xv6 terms) because a single-core prototype's
// only real concurrency is against interrupt handlers.
//
// The machine loop serializes host execution, so the lock never spins in host
// time; it exists to enforce and *check* the kernel's locking discipline:
// double-acquire, unlock-without-lock, and sleeping-with-lock are all caught.
// Cross-lock discipline (ordering between classes, IRQ safety) is validated
// by the lockdep layer (lockdep.h): the constructor registers the lock's
// class by name, and Acquire/Release report to the per-context held stack
// and the global acquisition-order graph.
#ifndef VOS_SRC_KERNEL_SPINLOCK_H_
#define VOS_SRC_KERNEL_SPINLOCK_H_

#include <cstdint>
#include <string>

namespace vos {

class Task;

class SpinLock {
 public:
  // `name` is the lock's lockdep class: locks sharing a name (every pipe's
  // "pipe" lock) share ordering rules and statistics.
  explicit SpinLock(std::string name);
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  // Acquire with interrupts pushed off (irqsave semantics).
  void Acquire();
  void Release();

  bool held() const { return held_; }
  const std::string& name() const { return name_; }
  std::uint64_t acquisitions() const { return acquisitions_; }

 private:
  std::string name_;
  bool held_ = false;
  const void* owner_ = nullptr;  // Task* or the machine-thread marker
  std::uint64_t acquisitions_ = 0;
};

// RAII guard — the only sanctioned way to take a SpinLock outside the lock
// implementation itself (tools/lint_locks.py enforces this).
class SpinGuard {
 public:
  explicit SpinGuard(SpinLock& l) : lock_(l) { lock_.Acquire(); }  // lockdep: naked-ok
  ~SpinGuard() { lock_.Release(); }                               // lockdep: naked-ok
  SpinGuard(const SpinGuard&) = delete;
  SpinGuard& operator=(const SpinGuard&) = delete;

 private:
  SpinLock& lock_;
};

// Reference-counted interrupt masking for the current CPU context — the
// Prototype-1 lesson: UART printing inside lock code must not deadlock, so
// irq on/off nests. These model the DAIF manipulation; the machine loop only
// delivers IRQs between task activations, so the count is the semantic state.
void PushOff();
void PopOff();
int IrqOffDepth();

}  // namespace vos

#endif  // VOS_SRC_KERNEL_SPINLOCK_H_
