// Physical page allocator. Prototypes 2-3 use raw page-based allocation;
// Prototype 4 layers kmalloc on top (Table 1, footnotes 5/6).
//
// Pages are NOT zeroed on allocation — real DRAM hands back whatever was
// there (§5.1's "uninitialized memory" lesson); callers that need zeroed
// memory (demand-zero faults) must clear explicitly.
#ifndef VOS_SRC_KERNEL_PMM_H_
#define VOS_SRC_KERNEL_PMM_H_

#include <cstdint>
#include <vector>

#include "src/base/units.h"
#include "src/hw/phys_mem.h"

namespace vos {

class Pmm {
 public:
  // Manages frames in [start, end) of physical memory; both page-aligned.
  Pmm(PhysMem& mem, PhysAddr start, PhysAddr end);

  // Single-frame interface. Returns 0 on exhaustion.
  PhysAddr AllocPage();
  void FreePage(PhysAddr pa);

  // Contiguous range (first-fit). Used for heap arenas and DMA buffers.
  // Returns 0 if no run of `npages` is free.
  PhysAddr AllocRange(std::uint64_t npages);
  void FreeRange(PhysAddr pa, std::uint64_t npages);

  std::uint64_t total_pages() const { return nframes_; }
  std::uint64_t free_pages() const { return free_count_; }
  std::uint64_t used_pages() const { return nframes_ - free_count_; }

  PhysMem& mem() { return mem_; }
  PhysAddr start() const { return start_; }
  PhysAddr end() const { return start_ + nframes_ * kPageSize; }

  bool IsFree(PhysAddr pa) const;

 private:
  std::uint64_t FrameOf(PhysAddr pa) const;

  PhysMem& mem_;
  PhysAddr start_;
  std::uint64_t nframes_;
  std::vector<bool> used_;
  std::uint64_t free_count_;
  std::uint64_t next_hint_ = 0;  // rotating scan start for single pages
};

}  // namespace vos

#endif  // VOS_SRC_KERNEL_PMM_H_
