// Physical page allocator. Prototypes 2-3 use raw page-based allocation;
// Prototype 4 layers kmalloc on top (Table 1, footnotes 5/6).
//
// The allocator is a binary buddy system: free blocks of 2^order pages live
// on per-order free lists, AllocPage/AllocRange split the smallest block that
// fits, and FreePage/FreeRange coalesce freed pages with their buddy back up
// the order ladder — O(log nframes) per operation where the seed's bitmap
// scan was O(nframes). The public allocation API is unchanged from the
// bitmap version: AllocRange consumes *exactly* npages (the split tail of a
// rounded-up buddy block is returned to the free lists immediately), and
// physical address 0 remains the exhaustion sentinel (frame 0 is reserved).
//
// Pages are NOT zeroed on allocation — real DRAM hands back whatever was
// there (§5.1's "uninitialized memory" lesson); callers that need zeroed
// memory (demand-zero faults) must clear explicitly.
#ifndef VOS_SRC_KERNEL_PMM_H_
#define VOS_SRC_KERNEL_PMM_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/base/units.h"
#include "src/hw/phys_mem.h"
#include "src/kernel/spinlock.h"
#include "src/kernel/trace.h"

namespace vos {

class Pmm {
 public:
  // Manages frames in [start, end) of physical memory; both page-aligned.
  Pmm(PhysMem& mem, PhysAddr start, PhysAddr end);

  // Single-frame interface. Returns 0 on exhaustion.
  PhysAddr AllocPage();
  void FreePage(PhysAddr pa);

  // Contiguous range. Returns 0 if no sufficiently large buddy block is
  // free. Used for heap arenas, DMA buffers, and multi-page slabs.
  PhysAddr AllocRange(std::uint64_t npages);
  void FreeRange(PhysAddr pa, std::uint64_t npages);

  std::uint64_t total_pages() const { return nframes_; }
  std::uint64_t free_pages() const { return free_count_; }
  std::uint64_t used_pages() const { return nframes_ - free_count_; }

  PhysMem& mem() { return mem_; }
  PhysAddr start() const { return start_; }
  PhysAddr end() const { return start_ + nframes_ * kPageSize; }

  bool IsFree(PhysAddr pa) const;

  // --- Observability (/proc/memstat, tests, bench) ---
  struct Stats {
    std::uint64_t page_allocs = 0;   // AllocPage calls that succeeded
    std::uint64_t page_frees = 0;    // FreePage calls
    std::uint64_t range_allocs = 0;  // AllocRange calls that succeeded
    std::uint64_t range_frees = 0;   // FreeRange calls
    std::uint64_t splits = 0;        // buddy blocks split
    std::uint64_t merges = 0;        // buddy blocks coalesced
    std::uint64_t oom_events = 0;    // allocations that returned 0
  };
  const Stats& stats() const { return stats_; }
  int num_orders() const { return norders_; }
  // Count of free blocks (not pages) currently on the order's free list.
  std::uint64_t FreeBlocksOfOrder(int order) const;
  // Pages in the largest free block (0 when exhausted).
  std::uint64_t LargestFreeBlockPages() const;
  // External fragmentation in percent: shortfall of the largest free block
  // against the largest block free_pages could ideally form
  // (2^floor(log2(free_pages))). 0 when free memory is maximally coalesced.
  double FragmentationPct() const;

  // Trace hook: kPmmAlloc/kPmmFree (a=pa, b=npages) and kPmmOom (a=npages
  // requested). Wired by the kernel to the trace ring; raw Pmm instances in
  // tests/benches attach their own lambda or none at all.
  using TraceHook = std::function<void(TraceEvent, std::uint64_t a, std::uint64_t b)>;
  void SetTraceHook(TraceHook hook) { trace_ = std::move(hook); }

 private:
  static constexpr std::uint64_t kNone = ~0ull;
  static constexpr std::uint8_t kNoOrder = 0xff;

  std::uint64_t FrameOf(PhysAddr pa) const;
  // Unlink the free-block head `f` (order k) from its free list.
  void Unlink(std::uint64_t f, int k);
  // Push block (f, k) on its free list without attempting to merge.
  void PushBlock(std::uint64_t f, int k);
  // Insert block (f, k), coalescing with free buddies up the order ladder.
  void InsertAndCoalesce(std::uint64_t f, int k);
  // Pop a block of order >= k, splitting down to exactly k. kNone if none.
  std::uint64_t PopBlock(int k);
  void EmitOom(std::uint64_t npages);

  PhysMem& mem_;
  PhysAddr start_;
  std::uint64_t nframes_;
  int norders_;  // free_heads_ spans orders [0, norders_)

  // Serializes allocator state; kmalloc's depot refill and the demand-paging
  // fault path both allocate, so the class sits under "slab-depot" and above
  // "trace" in the lock hierarchy (DESIGN.md §7).
  SpinLock lock_{"pmm"};

  std::vector<bool> used_;            // per-frame: handed out to a caller
  std::vector<std::uint64_t> next_;   // free-list links, valid at block heads
  std::vector<std::uint64_t> prev_;
  std::vector<std::uint8_t> border_;  // order of the free block headed at
                                      // frame f; kNoOrder when f is not a
                                      // free-block head
  std::vector<std::uint64_t> free_heads_;  // per-order list head (kNone = empty)
  std::vector<std::uint64_t> free_blocks_; // per-order list length
  std::uint64_t free_count_;
  Stats stats_;
  TraceHook trace_;
};

}  // namespace vos

#endif  // VOS_SRC_KERNEL_PMM_H_
