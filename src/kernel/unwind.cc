#include "src/kernel/unwind.h"

#include <sstream>

namespace vos {

std::string UnwindTask(const Task& t) {
  std::ostringstream os;
  os << "pid " << t.pid() << " (" << t.name() << "):\n";
  if (t.call_stack.empty()) {
    os << "  <no frames>\n";
    return os.str();
  }
  for (auto it = t.call_stack.rbegin(); it != t.call_stack.rend(); ++it) {
    os << "  [" << (t.call_stack.rend() - it - 1) << "] " << *it << "\n";
  }
  return os.str();
}

std::string UnwindAll(const std::vector<const Task*>& running) {
  std::ostringstream os;
  for (std::size_t core = 0; core < running.size(); ++core) {
    os << "--- core " << core << " ---\n";
    if (running[core] == nullptr) {
      os << "  <idle>\n";
    } else {
      os << UnwindTask(*running[core]);
    }
  }
  return os.str();
}

}  // namespace vos
