// Task control block and its execution context.
//
// Execution model (see DESIGN.md §5): each task owns a host thread ("fiber")
// that is strictly token-serialized with the machine loop — exactly one of
// {machine loop, some fiber} executes at any host instant, so kernel state
// needs no host synchronization beyond the handoff gates. Virtual CPU time is
// charged explicitly via Burn(); the machine loop interleaves fibers on the
// simulated cores between device events. This replaces the ARMv8 register
// context switch while keeping the scheduler, runqueues, sleep channels and
// preemption behaviour real.
#ifndef VOS_SRC_KERNEL_TASK_H_
#define VOS_SRC_KERNEL_TASK_H_

#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/base/intrusive_list.h"
#include "src/base/units.h"

namespace vos {

class AddressSpace;
class File;
class Task;

// Thrown to unwind a fiber when its task exits or is killed. Application code
// must not swallow these (never `catch (...)` without rethrow in apps).
struct TaskExitUnwind {};
struct TaskKilledUnwind {};

// One-shot handoff gate between the machine thread and a fiber thread.
class Gate {
 public:
  void Signal();
  void Wait();

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool go_ = false;
};

class TaskFiber {
 public:
  enum class StopReason { kBudget, kBlocked, kExited };
  struct RunResult {
    StopReason reason;
    Cycles consumed;
  };

  // `entry` runs on the fiber thread the first time the task is scheduled.
  // It must handle TaskExitUnwind/TaskKilledUnwind itself (the kernel's
  // trampoline does) — nothing may escape.
  explicit TaskFiber(std::function<void()> entry);
  ~TaskFiber();

  // --- Machine side ---
  // Resumes the fiber with a fresh budget starting at virtual time `start`.
  // Blocks until the fiber stops (budget exhausted / blocked / exited).
  RunResult Run(Cycles budget, Cycles start);
  // Requests the fiber unwind with TaskKilledUnwind at its next resume or
  // burn check. Only call while the fiber is parked.
  void RequestKill() { kill_requested_ = true; }
  bool finished() const { return finished_; }

  // --- Fiber side ---
  // Charges `c` cycles of CPU, switching back to the machine (and later
  // resuming) whenever the activation budget runs out.
  void Burn(Cycles c);
  // Parks the fiber as blocked; returns when rescheduled.
  void BlockAndSwitch();
  // Voluntary yield: hands the core back as if the budget expired; the
  // scheduler's rotation policy decides what runs next.
  void YieldToMachine();
  // Virtual time as seen by code running on this fiber right now.
  Cycles Now() const { return start_time_ + consumed_; }
  bool kill_requested() const { return kill_requested_; }

  // The fiber currently executing on this host thread (nullptr on the
  // machine thread).
  static TaskFiber* Current();

 private:
  void SwitchOut(StopReason r);  // fiber side
  void CheckKilled();            // fiber side; throws TaskKilledUnwind

  std::thread thread_;
  Gate resume_gate_;  // machine -> fiber
  Gate done_gate_;    // fiber -> machine
  Cycles budget_ = 0;
  Cycles consumed_ = 0;
  Cycles start_time_ = 0;
  StopReason reason_ = StopReason::kExited;
  bool kill_requested_ = false;
  bool started_ = false;
  bool finished_ = false;
};

using Pid = int;

enum class TaskState { kEmbryo, kRunnable, kRunning, kSleeping, kZombie };

// Why Fig 11 latency samples attribute to K/U/L: tasks carry an attribution
// mode that ulib flips around library code.
enum class TimeDomain : int { kKernel = 0, kUser = 1, kUserLib = 2 };

class Task {
 public:
  Task(Pid pid, std::string name, bool kernel_task);
  ~Task();

  Pid pid() const { return pid_; }
  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }
  bool kernel_task() const { return kernel_task_; }

  TaskState state = TaskState::kEmbryo;
  void* sleep_chan = nullptr;
  bool killed = false;
  int exit_code = 0;
  Task* parent = nullptr;
  unsigned core = 0;            // runqueue the task lives on
  Cycles slice_used = 0;        // for rotation/demotion decisions
  int mlfq_level = 0;           // MLFQ queue level (0 = highest priority)
  bool yielded = false;         // slice burned voluntarily: rotate, don't demote
  Cycles cpu_time = 0;          // total CPU consumed (for /proc and sysmon)
  Cycles runnable_since = 0;    // enqueue stamp, for the runqueue-wait histogram
  Cycles syscall_enter_ts = 0;  // entry stamp, for the syscall-latency histogram
  Cycles time_by_domain[3] = {0, 0, 0};
  TimeDomain domain = TimeDomain::kKernel;
  TimeDomain saved_domain = TimeDomain::kUser;  // domain to restore at syscall exit

  // Per-task accounting (profiler PR): syscall count, total blocked time, and
  // the stack captured at Sched::Sleep for off-CPU attribution at wakeup.
  // All token-serialized (written on the task's own fiber or under the sched
  // lock while the task is parked).
  std::uint64_t syscall_count = 0;
  Cycles blocked_time = 0;      // cumulative sleep->wakeup time
  Cycles sleep_since = 0;       // stamp at Sched::Sleep (0 = not sleeping)
  std::vector<const char*> sleep_stack;  // call_stack snapshot at Sleep
  Cycles last_scheduled = 0;    // last dispatch stamp (watchdog starvation check)
  bool watchdog_barked = false; // bark-once latch; reset when scheduled again

  // Address space; shared between CLONE_VM threads.
  std::shared_ptr<AddressSpace> mm;
  bool is_thread = false;  // clone(CLONE_VM) child

  // Open files. Shared_ptr because dup/fork share File objects.
  std::vector<std::shared_ptr<File>> fds;
  std::string cwd = "/";

  // Self-hosted debugging (§5.1): shadow call stack for the unwinder.
  std::vector<const char*> call_stack;

  TaskFiber& fiber() { return *fiber_; }
  void AttachFiber(std::unique_ptr<TaskFiber> f) { fiber_ = std::move(f); }
  bool has_fiber() const { return fiber_ != nullptr; }

  ListNode run_hook;  // runqueue membership

 private:
  Pid pid_;
  std::string name_;
  bool kernel_task_;
  std::unique_ptr<TaskFiber> fiber_;
};

// RAII frame marker feeding Task::call_stack (the stack unwinder's data).
class StackFrame {
 public:
  StackFrame(Task* t, const char* fn) : task_(t) {
    if (task_ != nullptr) {
      task_->call_stack.push_back(fn);
    }
  }
  ~StackFrame() {
    if (task_ != nullptr) {
      task_->call_stack.pop_back();
    }
  }
  StackFrame(const StackFrame&) = delete;
  StackFrame& operator=(const StackFrame&) = delete;

 private:
  Task* task_;
};

}  // namespace vos

#endif  // VOS_SRC_KERNEL_TASK_H_
