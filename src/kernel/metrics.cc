#include "src/kernel/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "src/base/status.h"
#include "src/kernel/racedet.h"

namespace vos {

MetricCounter* Metrics::Counter(const std::string& name) {
  SpinGuard g(lock_);
  auto& slot = RD_WRITE(counters_)[name];
  if (slot == nullptr) {
    slot = std::make_unique<MetricCounter>();
  }
  return slot.get();
}

Histogram* Metrics::Hist(const std::string& name) {
  SpinGuard g(lock_);
  auto& slot = RD_WRITE(hists_)[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>();
  }
  return slot.get();
}

void Metrics::Gauge(const std::string& name, GaugeFn fn) {
  SpinGuard g(lock_);
  RD_WRITE(gauges_)[name] = std::move(fn);
}

bool Metrics::Value(const std::string& name, std::uint64_t* out) const {
  GaugeFn fn;
  {
    SpinGuard g(lock_);
    auto c = RD_READ(counters_).find(name);
    if (c != RD_READ(counters_).end()) {
      *out = c->second->value();
      return true;
    }
    auto gi = RD_READ(gauges_).find(name);
    if (gi == RD_READ(gauges_).end()) {
      return false;
    }
    fn = gi->second;
  }
  // Evaluated outside the metrics lock: gauge callbacks take subsystem locks.
  *out = fn();
  return true;
}

const Histogram* Metrics::FindHist(const std::string& name) const {
  SpinGuard g(lock_);
  auto it = RD_READ(hists_).find(name);
  return it == RD_READ(hists_).end() ? nullptr : it->second.get();
}

std::string Metrics::ExportText() const {
  // Snapshot the maps under the lock, evaluate gauges after releasing it
  // (see the header comment: metrics must stay a lockdep leaf).
  std::vector<std::pair<std::string, const MetricCounter*>> counters;
  std::vector<std::pair<std::string, const Histogram*>> hists;
  std::vector<std::pair<std::string, GaugeFn>> gauges;
  {
    SpinGuard g(lock_);
    for (const auto& [name, c] : RD_READ(counters_)) {
      counters.emplace_back(name, c.get());
    }
    for (const auto& [name, h] : RD_READ(hists_)) {
      hists.emplace_back(name, h.get());
    }
    for (const auto& [name, fn] : RD_READ(gauges_)) {
      gauges.emplace_back(name, fn);
    }
  }
  std::vector<std::pair<std::string, std::uint64_t>> lines;
  for (const auto& [name, c] : counters) {
    lines.emplace_back(name, c->value());
  }
  for (const auto& [name, fn] : gauges) {
    lines.emplace_back(name, fn());
  }
  for (const auto& [name, h] : hists) {
    if (h->count() == 0) {
      continue;
    }
    lines.emplace_back(name + ".count", h->count());
    lines.emplace_back(name + ".sum", h->sum());
    lines.emplace_back(name + ".p50", h->Percentile(50));
    lines.emplace_back(name + ".p95", h->Percentile(95));
    lines.emplace_back(name + ".p99", h->Percentile(99));
    lines.emplace_back(name + ".max", h->max());
    if (buckets_.load(std::memory_order_relaxed)) {
      // Sparse raw buckets: only occupied ones, so the file stays readable.
      for (int i = 0; i < Histogram::kNumBuckets; ++i) {
        std::uint64_t n = h->BucketCount(i);
        if (n != 0) {
          lines.emplace_back(name + ".bucket" + std::to_string(i), n);
        }
      }
    }
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  char buf[160];
  for (const auto& [name, v] : lines) {
    std::snprintf(buf, sizeof(buf), "%s %" PRIu64 "\n", name.c_str(), v);
    out += buf;
  }
  return out;
}

std::int64_t Metrics::Command(const std::string& text) {
  // Strip trailing whitespace/newline from echo-style writers.
  std::string cmd = text;
  while (!cmd.empty() && (cmd.back() == '\n' || cmd.back() == ' ')) {
    cmd.pop_back();
  }
  if (cmd == "buckets on") {
    buckets_.store(true, std::memory_order_relaxed);
    return 0;
  }
  if (cmd == "buckets off") {
    buckets_.store(false, std::memory_order_relaxed);
    return 0;
  }
  return kErrInval;
}

}  // namespace vos
