// The machine loop: interleaves per-core task execution with device events in
// virtual time. This is the simulator's replacement for "the CPU": cores pick
// tasks (via the scheduler client), run them until the next device event or
// until they block, then the loop advances the clock, fires events, and
// delivers IRQs/FIQs to the kernel's handlers.
#ifndef VOS_SRC_KERNEL_MACHINE_H_
#define VOS_SRC_KERNEL_MACHINE_H_

#include <array>
#include <functional>

#include "src/hw/board.h"
#include "src/kernel/task.h"

namespace vos {

// Implemented by the Kernel: scheduling decisions and interrupt handlers.
class MachineClient {
 public:
  virtual ~MachineClient() = default;
  // Next task to run on `core`, or nullptr to idle (WFI) until the next event.
  virtual Task* PickNext(unsigned core) = 0;
  // The task stopped (budget exhausted / blocked / exited). Runqueue updates
  // happen here (blocked/exited tasks already left the queue via the kernel
  // code that ran on the fiber).
  virtual void OnTaskStopped(unsigned core, Task* t, TaskFiber::StopReason r) = 0;
  // IRQ routed to `core` is pending and unmasked; handler must ack the source.
  virtual void OnIrq(unsigned core, unsigned irq) = 0;
  // FIQ (panic button).
  virtual void OnFiq(unsigned core) = 0;
};

class Machine {
 public:
  Machine(Board& board, MachineClient* client, unsigned cores);

  // Runs the machine until virtual time `until`, or until Stop() is called,
  // or until the system is fully idle with no pending events.
  void Run(Cycles until);

  void Stop() { stop_ = true; }
  bool stopped() const { return stop_; }

  // Virtual "now": on a fiber thread this includes the fiber's progress into
  // its current activation; on the machine thread it is the global clock.
  Cycles Now() const;

  // IRQ handlers cost CPU: the charged cycles delay the interrupted core's
  // next task activation (Prototype 1 renders whole frames in the timer
  // handler, so this matters).
  void ChargeIrq(unsigned core, Cycles c) { irq_debt_[core] += c; }

  // Cumulative IRQ handler cost charged to `core`; the delta across a handler
  // is that handler's duration (the IRQ-latency histogram reads it).
  Cycles irq_debt(unsigned core) const { return irq_debt_[core]; }

  Cycles busy_time(unsigned core) const { return busy_[core]; }
  Cycles idle_time(unsigned core) const { return idle_[core]; }
  Task* running(unsigned core) const { return running_[core]; }
  unsigned cores() const { return cores_; }
  Board& board() { return board_; }

  // Observation hook invoked after every execution span on a core: a task
  // activation ([t0,t1) of virtual time, task != nullptr) or an idle stretch
  // (task == nullptr). Runs on the machine thread while the fiber is parked,
  // so the task's shadow call stack is stable — this is how the sampling
  // profiler sees "what was on-CPU when the profiling timer fired" without a
  // task ever being current at IRQ-delivery time (running_ is nulled before
  // interrupts dispatch). Spans are reported in nondecreasing time order per
  // core, so period-boundary bookkeeping in the hook is exact.
  using SpanHook = std::function<void(unsigned core, Task* task, Cycles t0, Cycles t1)>;
  void SetSpanHook(SpanHook h) { span_hook_ = std::move(h); }

  // Core utilization in [0,1] since construction (Fig 10's ">95%" check).
  double Utilization(unsigned core) const {
    Cycles tot = busy_[core] + idle_[core];
    return tot == 0 ? 0.0 : static_cast<double>(busy_[core]) / static_cast<double>(tot);
  }

 private:
  void DeliverInterrupts();

  Board& board_;
  MachineClient* client_;
  unsigned cores_;
  bool stop_ = false;
  std::array<Cycles, kMaxCores> irq_debt_{};
  std::array<Cycles, kMaxCores> busy_{};
  std::array<Cycles, kMaxCores> idle_{};
  std::array<Task*, kMaxCores> running_{};
  SpanHook span_hook_;
};

}  // namespace vos

#endif  // VOS_SRC_KERNEL_MACHINE_H_
