#include "src/kernel/spinlock.h"

#include "src/base/assert.h"

namespace vos {

namespace {
thread_local int g_irq_off_depth = 0;
const void* ContextId() {
  static thread_local char marker;
  return &marker;
}
}  // namespace

void PushOff() { ++g_irq_off_depth; }

void PopOff() {
  VOS_CHECK_MSG(g_irq_off_depth > 0, "PopOff without matching PushOff");
  --g_irq_off_depth;
}

int IrqOffDepth() { return g_irq_off_depth; }

void SpinLock::Acquire() {
  PushOff();
  VOS_CHECK_MSG(!(held_ && owner_ == ContextId()), "spinlock double-acquire");
  // Host execution is token-serialized, so the lock is always free here; a
  // held lock from another context would be a machine-loop invariant bug.
  VOS_CHECK_MSG(!held_, "spinlock contended: serialization invariant broken");
  held_ = true;
  owner_ = ContextId();
  ++acquisitions_;
}

void SpinLock::Release() {
  VOS_CHECK_MSG(held_, "releasing a spinlock that is not held");
  VOS_CHECK_MSG(owner_ == ContextId(), "spinlock released by non-owner");
  held_ = false;
  owner_ = nullptr;
  PopOff();
}

}  // namespace vos
