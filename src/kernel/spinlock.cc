#include "src/kernel/spinlock.h"

#include "src/base/assert.h"
#include "src/kernel/lockdep.h"

namespace vos {

namespace {
thread_local int g_irq_off_depth = 0;
const void* ContextId() {
  static thread_local char marker;
  return &marker;
}
}  // namespace

void PushOff() { ++g_irq_off_depth; }

void PopOff() {
  VOS_CHECK_MSG(g_irq_off_depth > 0, "PopOff without matching PushOff");
  --g_irq_off_depth;
  if (g_irq_off_depth == 0) {
    // Interrupts are deliverable again; lockdep verifies nothing irq-used is
    // still held by this context (the deadlock window on real hardware).
    Lockdep::Instance().OnIrqEnable();
  }
}

int IrqOffDepth() { return g_irq_off_depth; }

SpinLock::SpinLock(std::string name) : name_(std::move(name)) {
  Lockdep::Instance().RegisterClass(name_);
}

void SpinLock::Acquire() {  // lockdep: naked-ok (implementation)
  // Token-serialized execution makes it safe to examine the lock before
  // PushOff (no preemption window as on real hardware) — and it keeps the
  // IRQ-off depth balanced when a discipline check throws.
  VOS_CHECK_MSG(!(held_ && owner_ == ContextId()),
                ("spinlock double-acquire: '" + name_ + "'").c_str());
  // Host execution is token-serialized, so the lock is always free here; a
  // held lock from another context would be a machine-loop invariant bug.
  VOS_CHECK_MSG(!held_, "spinlock contended: serialization invariant broken");
  PushOff();
  try {
    // Order/IRQ validation before the lock is visibly held: a detected
    // violation throws, and backing out the PushOff leaves the context
    // balanced so tests can continue past the report.
    Lockdep::Instance().OnAcquire(this, name_);
  } catch (...) {
    --g_irq_off_depth;  // raw undo: OnIrqEnable must not re-fire mid-throw
    throw;
  }
  held_ = true;
  owner_ = ContextId();
  ++acquisitions_;
}

void SpinLock::Release() {  // lockdep: naked-ok (implementation)
  VOS_CHECK_MSG(held_, "releasing a spinlock that is not held");
  VOS_CHECK_MSG(owner_ == ContextId(), "spinlock released by non-owner");
  // Ordering matters: the lock must read as fully released (owner/held
  // cleared, lockdep bookkeeping popped) *before* PopOff can re-enable
  // interrupt delivery. An IRQ arriving at the PopOff boundary must never
  // observe a half-released lock — lockdep's OnIrqEnable check relies on
  // the held stack being popped first, and KernelCoreTest.ReleaseOrdering
  // pins this down.
  held_ = false;
  owner_ = nullptr;
  Lockdep::Instance().OnRelease(this);
  PopOff();
}

}  // namespace vos
