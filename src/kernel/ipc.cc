#include "src/kernel/ipc.h"

#include <algorithm>
#include <cstring>

#include "src/base/status.h"

namespace vos {

std::size_t IpcRing::TryPush(const std::uint8_t* src, std::size_t n) {
  // Zero-copy user-context fast path: no lock on purpose (the futex version
  // words in Wait() resolve producer/consumer races; see the header).
  RD_EXCLUDE_SCOPE("zero-copy fast path; futex version words handle races");
  std::size_t can = std::min(n, buf_.size() - count_);
  if (can == 0) {
    return 0;
  }
  std::size_t tail = (head_ + count_) % buf_.size();
  std::size_t first = std::min(can, buf_.size() - tail);
  std::memcpy(buf_.data() + tail, src, first);
  if (can > first) {
    std::memcpy(buf_.data(), src + first, can - first);
  }
  count_ += can;
  pushed_ += can;
  return can;
}

std::size_t IpcRing::TryPop(std::uint8_t* dst, std::size_t n) {
  RD_EXCLUDE_SCOPE("zero-copy fast path; futex version words handle races");
  std::size_t can = std::min(n, count_);
  if (can == 0) {
    return 0;
  }
  std::size_t first = std::min(can, buf_.size() - head_);
  std::memcpy(dst, buf_.data() + head_, first);
  if (can > first) {
    std::memcpy(dst + first, buf_.data(), can - first);
  }
  head_ = (head_ + can) % buf_.size();
  count_ -= can;
  popped_ += can;
  return can;
}

std::int64_t IpcTable::Create(std::size_t bytes) {
  if (bytes == 0) {
    bytes = cfg_.ipc_ring_bytes;
  }
  if (bytes > kMaxIpcRingBytes) {
    return kErrInval;
  }
  SpinGuard g(lock_);
  for (int i = 0; i < kMaxIpcChannels; ++i) {
    if (!slots_[i].used) {
      if (slots_[i].ring == nullptr) {
        slots_[i].ring = std::make_unique<IpcRing>(bytes);
      } else {
        slots_[i].ring->Reset(bytes);
      }
      slots_[i].used = true;
      return i;
    }
  }
  return kErrNoSpace;
}

std::int64_t IpcTable::Destroy(int id) {
  SpinGuard g(lock_);
  if (!ValidId(id)) {
    return kErrInval;
  }
  slots_[id].used = false;
  // Anyone still parked would hang; wake both sides so they can fail with
  // kErrInval. The ring object stays allocated (recycled by Create), so
  // waiters resuming after the destroy never touch freed memory.
  sched_.Wakeup(&slots_[id].ring->chan_[0]);
  sched_.Wakeup(&slots_[id].ring->chan_[1]);
  return 0;
}

IpcRing* IpcTable::Ring(int id) {
  SpinGuard g(lock_);
  return ValidId(id) ? slots_[id].ring.get() : nullptr;
}

std::int64_t IpcTable::Wait(Task* cur, int id, IpcSide side, std::uint64_t expected) {
  SpinGuard g(lock_);
  if (!ValidId(id)) {
    return kErrInval;
  }
  IpcRing& r = *slots_[id].ring;
  if (r.word(side) != expected) {
    // The state the caller sampled already changed: the wake it would have
    // waited for (or raced with) has happened. Futex semantics — return
    // without sleeping, the caller re-examines the ring.
    ++RD_WRITE(waits_immediate_);
    return 0;
  }
  if (cur->killed) {
    return kErrIntr;
  }
  int s = static_cast<int>(side);
  ++RD_WRITE(waits_slept_);
  // Balance the waiter count even on kill-unwind (the fiber unwinds through
  // here with the ipc lock held by the reacquire dance, so this is safe).
  struct WaiterScope {
    IpcRing& ring;
    int side;
    ~WaiterScope() { --RD_WRITE(ring.waiters_[side]); }
  } scope{r, s};
  ++RD_WRITE(r.waiters_[s]);
  sched_.SleepOn(cur, &r.chan_[s], lock_);
  if (!slots_[id].used) {
    return kErrInval;  // destroyed while waiting
  }
  if (cur->killed) {
    return kErrIntr;  // the kill took effect while parked
  }
  return 0;
}

std::int64_t IpcTable::Wake(int id, IpcSide side) {
  SpinGuard g(lock_);
  if (!ValidId(id)) {
    return kErrInval;
  }
  IpcRing& r = *slots_[id].ring;
  ++RD_WRITE(wakes_);
  std::size_t n = sched_.Wakeup(&r.chan_[static_cast<int>(side)]);
  RD_WRITE(woken_tasks_) += n;
  return static_cast<std::int64_t>(n);
}

}  // namespace vos
