#include "src/kernel/lockdep.h"

#include <algorithm>
#include <deque>
#include <sstream>

#include "src/base/assert.h"

namespace vos {

namespace {
// Held stacks are per host context: the machine thread and each task fiber
// own their thread. Execution is token-serialized, so global class/graph
// state never sees concurrent mutation; the stacks are thread_local purely
// because "what do I hold" is a per-context question.
struct HeldEntry {
  const void* lock;
  int cls;
  std::vector<const char*> bt;
};
thread_local std::vector<HeldEntry> g_held;
thread_local std::uint64_t g_held_generation = 0;
thread_local bool g_in_irq = false;
}  // namespace

Lockdep& Lockdep::Instance() {
  static Lockdep* dep = new Lockdep();  // intentionally immortal
  return *dep;
}

void Lockdep::Reset() {
  ids_.clear();
  classes_.clear();
  ++generation_;  // invalidates every context's held stack lazily
  g_held.clear();
  g_held_generation = generation_;
  g_in_irq = false;
}

int Lockdep::RegisterClass(const std::string& name) {
  auto it = ids_.find(name);
  if (it != ids_.end()) {
    return it->second;
  }
  int id = static_cast<int>(classes_.size());
  ids_.emplace(name, id);
  Class c;
  c.name = name;
  classes_.push_back(std::move(c));
  return id;
}

std::vector<const char*> Lockdep::Backtrace() const {
  if (backtrace_) {
    return backtrace_();
  }
  return {};
}

bool Lockdep::Reachable(int from, int to) const {
  if (from == to) {
    return true;
  }
  std::vector<bool> seen(classes_.size(), false);
  std::deque<int> work{from};
  seen[static_cast<std::size_t>(from)] = true;
  while (!work.empty()) {
    int n = work.front();
    work.pop_front();
    for (const auto& [next, edge] : classes_[static_cast<std::size_t>(n)].out) {
      if (next == to) {
        return true;
      }
      if (!seen[static_cast<std::size_t>(next)]) {
        seen[static_cast<std::size_t>(next)] = true;
        work.push_back(next);
      }
    }
  }
  return false;
}

std::vector<int> Lockdep::Path(int from, int to) const {
  // BFS with parent links: the shortest observed dependency chain. Callers
  // only ask for paths the graph is known to contain (from != to).
  std::vector<int> parent(classes_.size(), -1);
  std::deque<int> work{from};
  parent[static_cast<std::size_t>(from)] = from;
  bool found = false;
  while (!work.empty() && !found) {
    int n = work.front();
    work.pop_front();
    for (const auto& [next, edge] : classes_[static_cast<std::size_t>(n)].out) {
      if (parent[static_cast<std::size_t>(next)] == -1) {
        parent[static_cast<std::size_t>(next)] = n;
        if (next == to) {
          found = true;
          break;
        }
        work.push_back(next);
      }
    }
  }
  std::vector<int> path;
  if (!found) {
    return path;
  }
  for (int n = to;; n = parent[static_cast<std::size_t>(n)]) {
    path.push_back(n);
    if (n == from) {
      break;
    }
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::string Lockdep::FormatFrames(const std::vector<const char*>& bt) {
  if (bt.empty()) {
    return "    <no call stack>\n";
  }
  std::ostringstream os;
  for (auto it = bt.rbegin(); it != bt.rend(); ++it) {
    os << "    [" << (bt.rend() - it - 1) << "] " << *it << "\n";
  }
  return os.str();
}

std::string Lockdep::FormatChain(const std::vector<int>& path) const {
  std::ostringstream os;
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (i > 0) {
      os << " -> ";
    }
    os << classes_[static_cast<std::size_t>(path[i])].name;
  }
  return os.str();
}

void Lockdep::Violation(const char* kind, const std::string& detail) {
  std::string msg = std::string("lockdep: ") + kind + "\n" + detail;
  VOS_CHECK_MSG(false, msg.c_str());
  __builtin_unreachable();  // VOS_CHECK_MSG(false, ...) always throws
}

void Lockdep::OnAcquire(const SpinLock* lock, const std::string& class_name) {
  if (!enabled_) {
    return;
  }
  if (g_held_generation != generation_) {
    g_held.clear();
    g_held_generation = generation_;
  }
  int cls = RegisterClass(class_name);
  Class& c = classes_[static_cast<std::size_t>(cls)];
  std::vector<const char*> bt = Backtrace();

  // IRQ-safety, direction 1: first acquisition from IRQ context of a class
  // previously seen held with IRQs enabled is the same deadlock window.
  if (g_in_irq && !c.irq_used && c.held_irqs_on) {
    Violation("irq-unsafe lock",
              "  class '" + c.name +
                  "' was held with IRQs enabled, and is now taken in IRQ "
                  "context\n  IRQ-context acquisition:\n" +
                  FormatFrames(bt));
  }

  // Order check: for every lock already held, acquiring `cls` adds the edge
  // held -> cls. If the graph already proves cls ->* held, this nesting
  // closes a cycle — the classic A->B observed after B->A inversion.
  for (const HeldEntry& h : g_held) {
    if (h.cls == cls && h.lock != static_cast<const void*>(lock)) {
      Violation("same-class nesting",
                "  acquiring a second '" + c.name +
                    "' lock while one is already held\n  first acquisition:\n" +
                    FormatFrames(h.bt) + "  second acquisition:\n" + FormatFrames(bt));
    }
    if (Reachable(cls, h.cls)) {
      std::vector<int> opposing = Path(cls, h.cls);
      const Class& held_c = classes_[static_cast<std::size_t>(h.cls)];
      // The stored backtraces of the first opposing edge are the "other side"
      // of the inversion.
      std::string opp_bt;
      if (opposing.size() >= 2) {
        const Class& oc = classes_[static_cast<std::size_t>(opposing[0])];
        auto eit = oc.out.find(opposing[1]);
        if (eit != oc.out.end()) {
          opp_bt = "  opposing chain established while holding '" + oc.name + "' at:\n" +
                   FormatFrames(eit->second.holder_bt) + "  and acquiring '" +
                   classes_[static_cast<std::size_t>(opposing[1])].name + "' at:\n" +
                   FormatFrames(eit->second.taker_bt);
        }
      }
      Violation("lock-order inversion",
                "  acquiring '" + c.name + "' while holding '" + held_c.name +
                    "' requires " + held_c.name + " -> " + c.name +
                    ", but the graph already proves " + FormatChain(opposing) +
                    "\n  current chain: holding '" + held_c.name + "' acquired at:\n" +
                    FormatFrames(h.bt) + "  acquiring '" + c.name + "' at:\n" +
                    FormatFrames(bt) + opp_bt);
    }
  }

  // Record edges from every held lock (not just the innermost): transitive
  // closure then catches inversions across intermediate hops sooner.
  for (const HeldEntry& h : g_held) {
    Class& hc = classes_[static_cast<std::size_t>(h.cls)];
    Edge& e = hc.out[cls];
    if (e.count == 0) {
      e.holder_bt = h.bt;
      e.taker_bt = bt;
    }
    ++e.count;
  }

  ++c.acquisitions;
  if (g_in_irq && !c.irq_used) {
    c.irq_used = true;
    c.irq_bt = bt;
  }
  g_held.push_back(HeldEntry{lock, cls, std::move(bt)});
  c.max_hold_depth = std::max(c.max_hold_depth, static_cast<int>(g_held.size()));
}

void Lockdep::OnRelease(const SpinLock* lock) {
  if (!enabled_ || g_held_generation != generation_) {
    return;
  }
  // Locks release in LIFO order in practice, but tolerate out-of-order
  // (SleepOn releases the condition lock below the sched bookkeeping).
  for (auto it = g_held.rbegin(); it != g_held.rend(); ++it) {
    if (it->lock == static_cast<const void*>(lock)) {
      g_held.erase(std::next(it).base());
      return;
    }
  }
  // Acquired while lockdep was disabled or before a Reset: ignore.
}

void Lockdep::OnSleep(const void* chan) {
  if (!enabled_ || g_held_generation != generation_ || g_held.empty()) {
    return;
  }
  std::ostringstream held;
  for (const HeldEntry& h : g_held) {
    held << "  still holding '" << classes_[static_cast<std::size_t>(h.cls)].name
         << "' acquired at:\n"
         << FormatFrames(h.bt);
  }
  std::ostringstream os;
  os << "  task is about to sleep on channel " << chan << " with " << g_held.size()
     << " spinlock(s) held\n"
     << held.str() << "  sleep site:\n"
     << FormatFrames(Backtrace());
  Violation("sleep with spinlock held", os.str());
}

void Lockdep::OnIrqEnable() {
  if (!enabled_ || g_held_generation != generation_ || g_held.empty()) {
    return;
  }
  // Interrupts just became deliverable while this context still holds locks.
  // Mark every held class; if one is also taken from IRQ context, the IRQ
  // handler could spin on a lock its own core holds.
  for (HeldEntry& h : g_held) {
    Class& c = classes_[static_cast<std::size_t>(h.cls)];
    c.held_irqs_on = true;
    if (c.irq_used) {
      Violation("irq-unsafe lock",
                "  class '" + c.name +
                    "' is taken in IRQ context but is held here with IRQs "
                    "enabled\n  IRQ-context acquisition:\n" +
                    FormatFrames(c.irq_bt) + "  held-with-IRQs-enabled acquisition:\n" +
                    FormatFrames(h.bt));
    }
  }
}

std::vector<const SpinLock*> Lockdep::HeldLockPtrs() const {
  std::vector<const SpinLock*> out;
  if (!enabled_ || g_held_generation != generation_) {
    return out;
  }
  out.reserve(g_held.size());
  for (const HeldEntry& h : g_held) {
    out.push_back(static_cast<const SpinLock*>(h.lock));
  }
  return out;
}

bool Lockdep::IsHeldByCurrent(const SpinLock* lock) const {
  if (!enabled_ || g_held_generation != generation_) {
    return false;
  }
  for (const HeldEntry& h : g_held) {
    if (h.lock == static_cast<const void*>(lock)) {
      return true;
    }
  }
  return false;
}

void Lockdep::SetIrqContext(bool in_irq) { g_in_irq = in_irq; }

bool Lockdep::InIrqContext() const { return g_in_irq; }

std::vector<LockClassInfo> Lockdep::Classes() const {
  std::vector<LockClassInfo> out;
  out.reserve(classes_.size());
  for (const Class& c : classes_) {
    LockClassInfo i;
    i.name = c.name;
    i.acquisitions = c.acquisitions;
    i.max_hold_depth = c.max_hold_depth;
    i.irq_used = c.irq_used;
    i.held_irqs_on = c.held_irqs_on;
    out.push_back(std::move(i));
  }
  return out;
}

std::size_t Lockdep::EdgeCount() const {
  std::size_t n = 0;
  for (const Class& c : classes_) {
    n += c.out.size();
  }
  return n;
}

bool Lockdep::HasPath(const std::string& from, const std::string& to) const {
  auto f = ids_.find(from);
  auto t = ids_.find(to);
  if (f == ids_.end() || t == ids_.end()) {
    return false;
  }
  return f->second != t->second && Reachable(f->second, t->second);
}

std::vector<std::string> Lockdep::HeldNames() const {
  std::vector<std::string> out;
  if (g_held_generation != generation_) {
    return out;
  }
  for (const HeldEntry& h : g_held) {
    out.push_back(classes_[static_cast<std::size_t>(h.cls)].name);
  }
  return out;
}

std::string Lockdep::Report() const {
  std::ostringstream os;
  os << "lockdep: " << (enabled_ ? "on" : "off") << "\n";
  os << "classes: " << classes_.size() << "  edges: " << EdgeCount() << "\n";
  os << "class            acquisitions maxdepth irq irqs-on\n";
  for (const Class& c : classes_) {
    os << c.name;
    for (std::size_t pad = c.name.size(); pad < 17; ++pad) {
      os << ' ';
    }
    std::string acq = std::to_string(c.acquisitions);
    os << acq;
    for (std::size_t pad = acq.size(); pad < 13; ++pad) {
      os << ' ';
    }
    std::string depth = std::to_string(c.max_hold_depth);
    os << depth;
    for (std::size_t pad = depth.size(); pad < 9; ++pad) {
      os << ' ';
    }
    os << (c.irq_used ? "yes " : "no  ") << (c.held_irqs_on ? "yes" : "no") << "\n";
  }
  os << "order:\n";
  for (const Class& c : classes_) {
    for (const auto& [to, edge] : c.out) {
      os << "  " << c.name << " -> " << classes_[static_cast<std::size_t>(to)].name << " (seen "
         << edge.count << "x)\n";
    }
  }
  return os.str();
}

}  // namespace vos
