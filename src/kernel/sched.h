// The scheduler: per-core round-robin runqueues (a single queue until
// Prototype 5 brings multicore), xv6-style sleep channels, and WFI idling.
// Runqueue and sleep-list mutations take the "sched" spinlock — the lock a
// real kernel needs here, and the anchor of the lockdep order graph (pipe
// and semtable wakeups nest it, the timer tick takes it in IRQ context).
//
// Lost wakeups: xv6 needs the sleep-lock dance because another CPU can call
// wakeup() between releasing the condition lock and sleeping. In the
// simulator the fiber holds the execution token until BlockAndSwitch(), so
// the release→sleep window is atomic in virtual time; SleepOn keeps the
// canonical interface so kernel code reads like the real pattern.
#ifndef VOS_SRC_KERNEL_SCHED_H_
#define VOS_SRC_KERNEL_SCHED_H_

#include <cstdint>
#include <functional>

#include "src/base/histogram.h"
#include "src/base/intrusive_list.h"
#include "src/hw/intc.h"
#include "src/kernel/kconfig.h"
#include "src/kernel/spinlock.h"
#include "src/kernel/task.h"

namespace vos {

class Sched {
 public:
  explicit Sched(const KernelConfig& cfg)
      : cfg_(cfg), ncores_(cfg.EffectiveCores()) {}

  unsigned ncores() const { return ncores_; }

  // Places a new or woken task on a runqueue. New tasks round-robin across
  // cores; woken tasks return to their home core.
  void Enqueue(Task* t);
  // Assigns a home core then enqueues: round-robin by default, or a fixed
  // core when `core_hint` >= 0 (fork keeps children on the parent's core for
  // cache affinity; clone spreads threads for parallelism).
  void AddNew(Task* t, int core_hint = -1);

  // Machine-loop side.
  Task* PickNext(unsigned core);
  void OnTaskStopped(unsigned core, Task* t, TaskFiber::StopReason r);

  // Fiber side (current task).
  void Sleep(Task* cur, void* chan);
  void SleepOn(Task* cur, void* chan, SpinLock& lk);
  std::size_t Wakeup(void* chan);
  void Yield(Task* cur);

  // Pulls a sleeping task out for forced wake (kill path).
  void WakeTask(Task* t);

  // Read-only queries (machine-thread / procfs); token serialization makes
  // unlocked reads safe.
  bool HasRunnable() const;
  std::size_t runqueue_len(unsigned core) const;

  std::uint64_t context_switches() const {
    std::uint64_t t = 0;
    for (unsigned c = 0; c < ncores_; ++c) {
      t += switches_[c];
    }
    return t;
  }
  std::uint64_t context_switches(unsigned core) const { return switches_[core]; }

  // Observability wiring (kernel boot): a clock for enqueue/dispatch stamps
  // and histograms for runqueue wait (wakeup→dispatch) and slice length.
  // Histogram::Record is wait-free, so recording under lock_ adds no edge.
  void SetNowFn(std::function<Cycles()> fn) { now_fn_ = std::move(fn); }
  void SetLatencyHists(Histogram* runq_wait, Histogram* slice) {
    runq_wait_hist_ = runq_wait;
    slice_hist_ = slice;
  }

 private:
  Cycles SliceLen() const { return cfg_.tick_interval * cfg_.slice_ticks; }
  Cycles NowStamp() const { return now_fn_ ? now_fn_() : 0; }
  // Callers hold lock_.
  void EnqueueLocked(Task* t);
  void WakeTaskLocked(Task* t);

  const KernelConfig& cfg_;
  unsigned ncores_;
  SpinLock lock_{"sched"};
  IntrusiveList<Task, &Task::run_hook> runq_[kMaxCores];
  IntrusiveList<Task, &Task::run_hook> sleeping_;
  unsigned next_core_ = 0;
  std::uint64_t switches_[kMaxCores] = {};
  std::function<Cycles()> now_fn_;
  Histogram* runq_wait_hist_ = nullptr;
  Histogram* slice_hist_ = nullptr;
};

}  // namespace vos

#endif  // VOS_SRC_KERNEL_SCHED_H_
