// The scheduler, sharded per core (Prototype 5 brings multicore): each core
// owns a runqueue guarded by its own lock class ("sched-core<i>"), so
// PickNext/Enqueue on different cores never contend. A work-stealing
// balancer moves half of the longest queue to a core that runs dry, and the
// queue itself is a 3-level MLFQ when `sched_policy=mlfq` (the default `rr`
// collapses to the seed's single-level round robin).
//
// Locking (DESIGN.md §7): the "sched" lock still guards the sleep list and
// round-robin placement counter; it nests the per-core locks (wakeups hold
// "sched" while enqueueing to a home core). The steal path is the only place
// two "sched-core" locks nest, and it always locks the lower core index
// first — the order graph can only ever contain sched-core[i] → sched-core[j]
// edges with i < j, so no inversion between instances is expressible.
//
// Lost wakeups: xv6 needs the sleep-lock dance because another CPU can call
// wakeup() between releasing the condition lock and sleeping. In the
// simulator the fiber holds the execution token until BlockAndSwitch(), so
// the release→sleep window is atomic in virtual time; SleepOn keeps the
// canonical interface so kernel code reads like the real pattern.
#ifndef VOS_SRC_KERNEL_SCHED_H_
#define VOS_SRC_KERNEL_SCHED_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "src/base/histogram.h"
#include "src/base/intrusive_list.h"
#include "src/hw/intc.h"
#include "src/kernel/kconfig.h"
#include "src/kernel/racedet.h"
#include "src/kernel/spinlock.h"
#include "src/kernel/task.h"

namespace vos {

// MLFQ depth. Level 0 is the highest priority; slices double per level.
constexpr int kMlfqLevels = 3;

class Sched {
 public:
  explicit Sched(const KernelConfig& cfg);

  unsigned ncores() const { return ncores_; }

  // Places a woken task back on its home core's runqueue.
  void Enqueue(Task* t);
  // Assigns a home core then enqueues: round-robin by default, or a fixed
  // core when `core_hint` >= 0 (fork keeps children on the parent's core for
  // cache affinity; clone spreads threads for parallelism).
  void AddNew(Task* t, int core_hint = -1);

  // Machine-loop side. PickNext serves the core's own queue first; when that
  // is empty (and stealing is enabled) it steals half of the longest other
  // queue before giving up and idling the core.
  Task* PickNext(unsigned core);
  void OnTaskStopped(unsigned core, Task* t, TaskFiber::StopReason r);
  // Per-core timer tick: drives the periodic MLFQ priority boost.
  void OnTick(unsigned core, Cycles now);

  // Fiber side (current task).
  void Sleep(Task* cur, void* chan);
  void SleepOn(Task* cur, void* chan, SpinLock& lk);
  std::size_t Wakeup(void* chan);
  void Yield(Task* cur);

  // Pulls a sleeping task out for forced wake (kill path).
  void WakeTask(Task* t);

  // Read-only queries (machine-thread / procfs); token serialization makes
  // unlocked reads safe.
  bool HasRunnable() const;
  std::size_t runqueue_len(unsigned core) const;

  // The stat accessors below read runqueue counters unlocked: token
  // serialization makes each read a consistent snapshot, and a stale gauge
  // value is harmless. They carry per-line racedet escapes rather than RD
  // wrappers so the gauges stay wait-free.
  std::uint64_t context_switches() const {
    std::uint64_t t = 0;
    for (unsigned c = 0; c < ncores_; ++c) {
      t += cores_[c]->switches;  // racedet: ok (token-serialized gauge snapshot)
    }
    return t;
  }
  std::uint64_t context_switches(unsigned core) const {
    return cores_[core]->switches;  // racedet: ok (token-serialized gauge snapshot)
  }
  // Steal operations performed by `core` (thief side) and tasks it pulled in.
  std::uint64_t steals(unsigned core) const {
    return cores_[core]->steal_ops;  // racedet: ok (token-serialized gauge snapshot)
  }
  std::uint64_t stolen_tasks(unsigned core) const {
    return cores_[core]->stolen_in;  // racedet: ok (token-serialized gauge snapshot)
  }
  // Tasks that migrated away from `core` (victim side).
  std::uint64_t migrations(unsigned core) const {
    return cores_[core]->migrated_out;  // racedet: ok (token-serialized gauge snapshot)
  }
  // MLFQ boost rounds on `core` that actually re-promoted something.
  std::uint64_t boosts(unsigned core) const {
    return cores_[core]->boost_rounds;  // racedet: ok (token-serialized gauge snapshot)
  }

  // Observability wiring (kernel boot): a clock for enqueue/dispatch stamps
  // and histograms for runqueue wait (wakeup→dispatch) and slice length.
  // Histogram::Record is wait-free, so recording under a lock adds no edge.
  void SetNowFn(std::function<Cycles()> fn) { now_fn_ = std::move(fn); }
  void SetLatencyHists(Histogram* runq_wait, Histogram* slice) {
    runq_wait_hist_ = runq_wait;
    slice_hist_ = slice;
  }
  // Profiler off-CPU hooks: `on_sleep` runs on the parking task's fiber just
  // before BlockAndSwitch (stack capture); `on_wake` runs under lock_ with
  // the blocked duration already added to Task::blocked_time.
  void SetProfHooks(std::function<void(Task*)> on_sleep,
                    std::function<void(Task*, Cycles)> on_wake) {
    prof_sleep_hook_ = std::move(on_sleep);
    prof_wake_hook_ = std::move(on_wake);
  }

  // Debug wedge (watchdog torture test): with a core wedged, its timer tick
  // is suppressed (kernel side) and slice rotation stops here — the task at
  // the head of the wedged core's queue is never preempted, exactly what a
  // spin with IRQs masked does to a real core.
  void SetCoreWedged(unsigned core, bool wedged) {
    if (core < ncores_) {
      wedged_[core] = wedged;  // racedet: ok (test-only flag, token-serialized)
    }
  }

 private:
  // One per-core shard: its own lock class plus the MLFQ level queues.
  // With sched_policy=rr only q[0] is ever populated.
  struct CoreRq {
    explicit CoreRq(unsigned i)
        : lock("sched-core" + std::to_string(i)) {}
    SpinLock lock;  // lockdep: class sched-core (per-core name built at runtime)
    IntrusiveList<Task, &Task::run_hook> q[kMlfqLevels];  // racedet: shared (guarded by lock)
    std::uint64_t switches = 0;      // racedet: shared (guarded by lock)
    std::uint64_t steal_ops = 0;     // racedet: shared (guarded by lock; thief side)
    std::uint64_t stolen_in = 0;     // racedet: shared (guarded by lock)
    std::uint64_t migrated_out = 0;  // racedet: shared (guarded by lock)
    std::uint64_t boost_rounds = 0;  // racedet: shared (guarded by lock)
    Cycles last_boost = 0;           // racedet: shared (guarded by lock)

    std::size_t Len() const {
      // Unlocked by design: the steal victim scan and procfs read lengths as
      // token-serialized snapshots; a stale value only wastes a lock trip.
      RD_EXCLUDE_SCOPE("token-serialized length snapshot (victim scan, procfs)");
      std::size_t n = 0;
      for (const auto& l : q) {
        n += l.size();
      }
      return n;
    }
  };

  bool Mlfq() const { return cfg_.sched_policy == SchedPolicy::kMlfq; }
  // Which level queue `t` belongs on under the active policy.
  int LevelOf(const Task* t) const { return Mlfq() ? t->mlfq_level : 0; }
  // Slice budget at `level`: doubles per level so demoted CPU hogs run in
  // longer, less frequent bursts (the classic MLFQ shape).
  Cycles SliceLenAt(int level) const {
    return (cfg_.tick_interval * cfg_.slice_ticks) << (Mlfq() ? level : 0);
  }
  Cycles NowStamp() const { return now_fn_ ? now_fn_() : 0; }
  // Pops the highest-priority task of `rq` and accounts the dispatch.
  // Caller holds rq.lock.
  Task* PopLocked(CoreRq& rq);
  // Steals half of the longest other queue into `thief`'s queue. Returns
  // true if anything moved.
  bool StealInto(unsigned thief);
  // Pushes a runnable task onto its home core's queue (takes the core lock).
  void EnqueueCore(Task* t);
  // Caller holds lock_.
  void WakeTaskLocked(Task* t);

  const KernelConfig& cfg_;
  unsigned ncores_;
  // Guards the sleep list and the round-robin placement cursor; per-core
  // runqueues have their own locks (see CoreRq).
  SpinLock lock_{"sched"};
  std::unique_ptr<CoreRq> cores_[kMaxCores];
  IntrusiveList<Task, &Task::run_hook> sleeping_;  // racedet: shared (guarded by lock_)
  unsigned next_core_ = 0;                         // racedet: shared (guarded by lock_)
  std::function<Cycles()> now_fn_;
  Histogram* runq_wait_hist_ = nullptr;
  Histogram* slice_hist_ = nullptr;
  std::function<void(Task*)> prof_sleep_hook_;
  std::function<void(Task*, Cycles)> prof_wake_hook_;
  bool wedged_[kMaxCores] = {};  // racedet: ok (test-only flag, token-serialized)
};

}  // namespace vos

#endif  // VOS_SRC_KERNEL_SCHED_H_
