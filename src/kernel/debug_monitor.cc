#include "src/kernel/debug_monitor.h"

#include <algorithm>
#include <sstream>

namespace vos {

void DebugMonitor::SetBreakpoint(const std::string& checkpoint) {
  if (std::find(breakpoints_.begin(), breakpoints_.end(), checkpoint) == breakpoints_.end()) {
    breakpoints_.push_back(checkpoint);
  }
}

void DebugMonitor::ClearBreakpoint(const std::string& checkpoint) {
  breakpoints_.erase(std::remove(breakpoints_.begin(), breakpoints_.end(), checkpoint),
                     breakpoints_.end());
}

bool DebugMonitor::Checkpoint(const std::string& name, Task* t, Cycles now) {
  if (step_budget_ > 0) {
    --step_budget_;
    Fire(DebugHit::Kind::kSingleStep, name, t, now);
    return true;
  }
  if (std::find(breakpoints_.begin(), breakpoints_.end(), name) != breakpoints_.end()) {
    Fire(DebugHit::Kind::kBreakpoint, name, t, now);
    return true;
  }
  return false;
}

void DebugMonitor::SetWatchpoint(PhysAddr start, std::uint64_t len, bool on_write) {
  watchpoints_.push_back(Watch{start, len, on_write});
}

bool DebugMonitor::CheckAccess(PhysAddr pa, std::uint64_t len, bool is_write, Task* t,
                               Cycles now) {
  for (const Watch& w : watchpoints_) {
    bool overlap = pa < w.start + w.len && w.start < pa + len;
    if (overlap && (is_write || !w.on_write)) {
      std::ostringstream os;
      os << (is_write ? "write" : "read") << " @0x" << std::hex << pa << "+" << std::dec << len;
      Fire(DebugHit::Kind::kWatchpoint, os.str(), t, now);
      return true;
    }
  }
  return false;
}

void DebugMonitor::Fire(DebugHit::Kind kind, const std::string& loc, Task* t, Cycles now) {
  ++hits_;
  if (on_hit_) {
    on_hit_(DebugHit{kind, loc, t, now});
  }
}

}  // namespace vos
