#include "src/kernel/drivers.h"

#include <cstring>

#include "src/base/status.h"
#include "src/hw/cache_model.h"
#include "src/kernel/machine.h"

namespace vos {

// --- FbDriver ---------------------------------------------------------------

Cycles FbDriver::Init() {
  // Property message: set physical size, virtual size, depth; allocate; get
  // pitch — the canonical Pi3 framebuffer bring-up sequence.
  std::vector<std::uint32_t> msg;
  msg.push_back(0);  // total size, patched below
  msg.push_back(kMailboxRequest);
  auto tag = [&msg](std::uint32_t id, std::initializer_list<std::uint32_t> vals,
                    std::uint32_t bufwords) {
    msg.push_back(id);
    msg.push_back(bufwords * 4);
    msg.push_back(0);
    std::size_t start = msg.size();
    for (std::uint32_t v : vals) {
      msg.push_back(v);
    }
    while (msg.size() - start < bufwords) {
      msg.push_back(0);
    }
  };
  tag(kTagSetPhysicalSize, {cfg_.fb_width, cfg_.fb_height}, 2);
  tag(kTagSetVirtualSize, {cfg_.fb_width, cfg_.fb_height}, 2);
  tag(kTagSetDepth, {32}, 1);
  tag(kTagAllocateBuffer, {16, 0}, 2);
  tag(kTagGetPitch, {}, 1);
  msg.push_back(kTagEnd);
  msg[0] = static_cast<std::uint32_t>(msg.size() * 4);
  Cycles c = board_.mailbox().Call(msg);
  VOS_CHECK_MSG(msg[1] == kMailboxResponseOk, "framebuffer allocation failed");
  return c;
}

Cycles FbDriver::Flush(std::uint64_t offset, std::uint64_t len) {
  std::uint64_t flushed = board_.fb().FlushRange(offset, len);
  return CacheFlushCost(flushed);
}

std::int64_t FbDriver::Read(Task*, std::uint8_t* buf, std::uint32_t n, std::uint64_t off, bool,
                            Cycles* burn) {
  if (!ready()) {
    return kErrIo;
  }
  std::uint64_t size = board_.fb().size_bytes();
  if (off >= size) {
    return 0;
  }
  std::uint32_t take = static_cast<std::uint32_t>(std::min<std::uint64_t>(n, size - off));
  std::memcpy(buf, reinterpret_cast<const std::uint8_t*>(board_.fb().cpu_pixels()) + off, take);
  *burn += Cycles(take * cfg_.cost.memcpy_per_byte);
  return take;
}

std::int64_t FbDriver::Write(Task*, const std::uint8_t* buf, std::uint32_t n, std::uint64_t off,
                             Cycles* burn) {
  if (!ready()) {
    return kErrIo;
  }
  std::uint64_t size = board_.fb().size_bytes();
  if (off >= size) {
    return kErrNoSpace;
  }
  std::uint32_t take = static_cast<std::uint32_t>(std::min<std::uint64_t>(n, size - off));
  std::memcpy(reinterpret_cast<std::uint8_t*>(board_.fb().cpu_pixels()) + off, buf, take);
  double per_byte =
      cfg_.opt_asm_memcpy ? cfg_.cost.memcpy_per_byte : cfg_.cost.memcpy_naive_per_byte;
  *burn += Cycles(take * per_byte);
  return take;
}

// --- ConsoleDriver ----------------------------------------------------------

void ConsoleDriver::OnRxIrq() {
  Uart& uart = board_.uart();
  while (uart.RxHasData()) {
    std::uint8_t c = uart.RxRead();
    rx_.PushOverwrite(c);
  }
  sched_.Wakeup(&chan_);
}

std::int64_t ConsoleDriver::Read(Task* t, std::uint8_t* buf, std::uint32_t n, std::uint64_t,
                                 bool nonblock, Cycles* burn) {
  *burn += 300;
  while (rx_.empty()) {
    if (nonblock) {
      return kErrWouldBlock;
    }
    if (t == nullptr || t->killed) {
      return kErrPerm;
    }
    sched_.Sleep(t, &chan_);
  }
  return static_cast<std::int64_t>(rx_.PopMany(buf, n));
}

std::int64_t ConsoleDriver::Write(Task*, const std::uint8_t* buf, std::uint32_t n, std::uint64_t,
                                  Cycles* burn) {
  // Synchronous polled TX: the write occupies the caller for the wire time.
  Cycles now = TaskFiber::Current() != nullptr ? TaskFiber::Current()->Now() : 0;
  *burn += klog_.Puts(now, std::string(reinterpret_cast<const char*>(buf), n));
  return n;
}

// --- UsbKbdDriver -----------------------------------------------------------

Cycles UsbKbdDriver::Init(Cycles now) {
  UsbHostController& usb = board_.usb();
  if (!usb.DevicePresent()) {
    return 0;
  }
  Cycles t = 0;
  t += usb.PowerOnPort();
  t += usb.ResetPort();
  Cycles d = 0;
  // Device descriptor (first 8 bytes, then full), as real stacks do.
  auto dd8 = usb.ControlIn(0x80, kUsbGetDescriptor, kUsbDescDevice << 8, 0, 8, &d);
  t += d;
  VOS_CHECK_MSG(dd8 && dd8->size() == 8, "USB: short device descriptor read failed");
  t += usb.ResetPort();
  bool ok = usb.ControlOut(0x00, kUsbSetAddress, 1, 0, &d);
  t += d;
  VOS_CHECK_MSG(ok, "USB: SET_ADDRESS failed");
  auto dd = usb.ControlIn(0x80, kUsbGetDescriptor, kUsbDescDevice << 8, 0, 18, &d);
  t += d;
  VOS_CHECK_MSG(dd && dd->size() == 18 && (*dd)[1] == kUsbDescDevice,
                "USB: device descriptor parse failed");
  auto cfgd = usb.ControlIn(0x80, kUsbGetDescriptor, kUsbDescConfiguration << 8, 0, 256, &d);
  t += d;
  VOS_CHECK_MSG(cfgd && cfgd->size() >= 9, "USB: config descriptor read failed");
  // Walk the descriptor chain for the HID boot keyboard interface and its
  // interrupt IN endpoint.
  bool found_kbd = false;
  std::uint32_t interval = 8;
  for (std::size_t i = 0; i + 1 < cfgd->size();) {
    std::uint8_t dlen = (*cfgd)[i];
    std::uint8_t dtype = (*cfgd)[i + 1];
    if (dlen == 0) {
      break;
    }
    if (dtype == kUsbDescInterface && i + 7 < cfgd->size()) {
      found_kbd = (*cfgd)[i + 5] == 3 && (*cfgd)[i + 6] == 1 && (*cfgd)[i + 7] == 1;
    } else if (dtype == kUsbDescEndpoint && found_kbd && i + 6 < cfgd->size()) {
      interval = (*cfgd)[i + 6];
    }
    i += dlen;
  }
  VOS_CHECK_MSG(found_kbd, "USB: no boot keyboard interface found");
  ok = usb.ControlOut(0x00, kUsbSetConfiguration, 1, 0, &d);
  t += d;
  VOS_CHECK_MSG(ok, "USB: SET_CONFIGURATION failed");
  ok = usb.ControlOut(0x21, kUsbHidSetProtocol, 0, 0, &d);  // boot protocol
  t += d;
  ok = usb.ControlOut(0x21, kUsbHidSetIdle, 0, 0, &d) && ok;
  t += d;
  VOS_CHECK_MSG(ok, "USB: HID setup failed");
  poll_interval_ms_ = interval;
  usb.StartInterruptPolling(now + t, interval);
  ready_ = true;
  return t;
}

std::uint16_t UsbKbdDriver::MapHidKey(std::uint8_t hid) {
  if (hid >= kHidA && hid <= kHidZ) {
    return static_cast<std::uint16_t>(kKeyA + (hid - kHidA));
  }
  if (hid >= kHid1 && hid <= kHid0) {
    // HID orders 1..9,0.
    return static_cast<std::uint16_t>(kKey0 + ((hid - kHid1 + 1) % 10));
  }
  switch (hid) {
    case kHidEnter:
      return kKeyEnter;
    case kHidEsc:
      return kKeyEsc;
    case kHidSpace:
      return kKeySpace;
    case kHidBackspace:
      return kKeyBackspace;
    case kHidTab:
      return kKeyTab;
    case kHidUp:
      return kKeyUp;
    case kHidDown:
      return kKeyDown;
    case kHidLeft:
      return kKeyLeft;
    case kHidRight:
      return kKeyRight;
    default:
      return kKeyNone;
  }
}

void UsbKbdDriver::OnIrq(Cycles now) {
  UsbHostController& usb = board_.usb();
  while (auto rep = usb.ReadLatchedReport()) {
    // Diff against the previous report: new codes are presses, vanished codes
    // are releases — boot-protocol decoding as USPi does it.
    for (std::uint8_t code : rep->keys) {
      if (code == 0) {
        continue;
      }
      bool was_down = false;
      for (std::uint8_t p : prev_.keys) {
        was_down |= (p == code);
      }
      if (!was_down) {
        events_.Push(KeyEvent{MapHidKey(code), 1, rep->modifiers,
                              static_cast<std::uint32_t>(ToMs(now))});
      }
    }
    for (std::uint8_t code : prev_.keys) {
      if (code == 0) {
        continue;
      }
      bool still_down = false;
      for (std::uint8_t c : rep->keys) {
        still_down |= (c == code);
      }
      if (!still_down) {
        events_.Push(KeyEvent{MapHidKey(code), 0, rep->modifiers,
                              static_cast<std::uint32_t>(ToMs(now))});
      }
    }
    prev_ = *rep;
  }
  machine_.ChargeIrq(0, Us(15));  // report processing in the handler
}

// --- GpioButtonDriver -------------------------------------------------------

void GpioButtonDriver::Init() {
  Gpio& gpio = board_.gpio();
  for (unsigned pin : {kBtnUp, kBtnDown, kBtnLeft, kBtnRight, kBtnA, kBtnB, kBtnX, kBtnY,
                       kBtnStart, kBtnSelect}) {
    gpio.SetEdgeDetect(pin, Gpio::Edge::kBoth);
  }
  gpio.SetEdgeDetect(kBtnPanic, Gpio::Edge::kFalling);
  gpio.RouteToFiq(kBtnPanic);
}

std::uint16_t GpioButtonDriver::MapButton(unsigned pin) {
  switch (pin) {
    case kBtnUp:
      return kKeyUp;
    case kBtnDown:
      return kKeyDown;
    case kBtnLeft:
      return kKeyLeft;
    case kBtnRight:
      return kKeyRight;
    case kBtnA:
      return kKeyBtnA;
    case kBtnB:
      return kKeyBtnB;
    case kBtnX:
      return kKeyBtnX;
    case kBtnY:
      return kKeyBtnY;
    case kBtnStart:
      return kKeyBtnStart;
    case kBtnSelect:
      return kKeyBtnSelect;
    default:
      return kKeyNone;
  }
}

void GpioButtonDriver::OnIrq(Cycles now) {
  Gpio& gpio = board_.gpio();
  for (unsigned pin : {kBtnUp, kBtnDown, kBtnLeft, kBtnRight, kBtnA, kBtnB, kBtnX, kBtnY,
                       kBtnStart, kBtnSelect}) {
    if (gpio.EventDetected(pin)) {
      bool down = !gpio.Level(pin);  // active low
      events_.Push(KeyEvent{MapButton(pin), static_cast<std::uint8_t>(down ? 1 : 0), 0,
                            static_cast<std::uint32_t>(ToMs(now))});
      gpio.ClearEvent(pin);
    }
  }
}

// --- AudioDriver ------------------------------------------------------------

Cycles AudioDriver::Init(std::uint32_t sample_rate) {
  board_.audio().SetSampleRate(sample_rate);
  for (PhysAddr& pa : period_pa_) {
    pa = pmm_.AllocRange(kPeriodBytes / kPageSize);
    VOS_CHECK_MSG(pa != 0, "audio: no memory for DMA period buffers");
  }
  return Us(250);  // PWM clock setup and FIFO priming
}

std::int64_t AudioDriver::Read(Task*, std::uint8_t*, std::uint32_t, std::uint64_t, bool,
                               Cycles*) {
  return kErrPerm;  // playback-only device
}

std::int64_t AudioDriver::Write(Task* t, const std::uint8_t* buf, std::uint32_t n, std::uint64_t,
                                Cycles* burn) {
  if (!ready()) {
    return kErrIo;
  }
  std::uint32_t done = 0;
  while (done < n) {
    while (ring_.full()) {
      if (t == nullptr || t->killed) {
        return done > 0 ? static_cast<std::int64_t>(done) : static_cast<std::int64_t>(kErrPerm);
      }
      // Make sure the consumer is running before we sleep.
      PumpLocked(TaskFiber::Current() != nullptr ? TaskFiber::Current()->Now() : 0);
      if (ring_.full()) {
        sched_.Sleep(t, &chan_);
      }
    }
    done += static_cast<std::uint32_t>(ring_.PushMany(buf + done, n - done));
  }
  *burn += Cycles(n * cfg_.cost.memcpy_per_byte);
  PumpLocked(TaskFiber::Current() != nullptr ? TaskFiber::Current()->Now() : 0);
  return n;
}

void AudioDriver::PumpLocked(Cycles now) {
  if (dma_running_ || ring_.size() < kPeriodBytes) {
    return;
  }
  PhysAddr pa = period_pa_[next_period_];
  next_period_ ^= 1;
  std::uint8_t* dst = pmm_.mem().Ptr(pa, kPeriodBytes);
  ring_.PopMany(dst, kPeriodBytes);
  board_.dma0().Submit(DmaControlBlock{pa, kPeriodBytes}, now);
  dma_running_ = true;
}

void AudioDriver::OnDmaIrq(Cycles now) {
  board_.dma0().ClearIrq();
  dma_running_ = false;
  if (ring_.size() >= kPeriodBytes) {
    PumpLocked(now);
  } else if (!ring_.empty()) {
    // Partial period: flush what we have (end of stream drain).
    PhysAddr pa = period_pa_[next_period_];
    next_period_ ^= 1;
    std::size_t n = ring_.size() & ~std::size_t(3);
    if (n > 0) {
      std::uint8_t* dst = pmm_.mem().Ptr(pa, n);
      ring_.PopMany(dst, n);
      board_.dma0().Submit(DmaControlBlock{pa, static_cast<std::uint32_t>(n)}, now);
      dma_running_ = true;
    }
  } else {
    ++underruns_;
    board_.audio().NoteUnderrun();
  }
  sched_.Wakeup(&chan_);
}

// --- UsbStorageDriver --------------------------------------------------------

Cycles UsbStorageDriver::Init() {
  Cycles t = Ms(120);  // port power + reset + SET_ADDRESS/SET_CONFIGURATION
  // Parse the configuration descriptor: require a mass-storage (8) SCSI (6)
  // bulk-only (0x50) interface with bulk IN and OUT endpoints.
  std::vector<std::uint8_t> cfg = dev_.ConfigDescriptor();
  bool msc = false, bulk_in = false, bulk_out = false;
  for (std::size_t i = 0; i + 1 < cfg.size();) {
    std::uint8_t dlen = cfg[i];
    std::uint8_t dtype = cfg[i + 1];
    if (dlen == 0) {
      break;
    }
    if (dtype == kUsbDescInterface && i + 7 < cfg.size()) {
      msc = cfg[i + 5] == 0x08 && cfg[i + 6] == 0x06 && cfg[i + 7] == 0x50;
    } else if (dtype == kUsbDescEndpoint && msc && i + 3 < cfg.size()) {
      if ((cfg[i + 3] & 0x03) == 0x02) {  // bulk
        ((cfg[i + 2] & 0x80) ? bulk_in : bulk_out) = true;
      }
    }
    i += dlen;
  }
  if (!msc || !bulk_in || !bulk_out) {
    return 0;
  }
  // INQUIRY.
  std::vector<std::uint8_t> data;
  Cycles d = 0;
  Csw csw = Bot(kScsiInquiry, 0, 0, true, data, &d);
  t += d;
  if (csw.status != 0 || data.size() < 36) {
    return 0;
  }
  product_.assign(reinterpret_cast<const char*>(data.data() + 16), 16);
  // READ CAPACITY(10).
  data.clear();
  csw = Bot(kScsiReadCapacity10, 0, 0, true, data, &d);
  t += d;
  if (csw.status != 0 || data.size() < 8) {
    return 0;
  }
  std::uint32_t last_lba = (std::uint32_t(data[0]) << 24) | (std::uint32_t(data[1]) << 16) |
                           (std::uint32_t(data[2]) << 8) | data[3];
  blocks_ = std::uint64_t(last_lba) + 1;
  ready_ = true;
  return t;
}

Csw UsbStorageDriver::Bot(std::uint8_t opcode, std::uint32_t lba, std::uint16_t blocks,
                          bool to_host, std::vector<std::uint8_t>& data, Cycles* dur) {
  Cbw cbw;
  cbw.tag = next_tag_++;
  cbw.flags = to_host ? 0x80 : 0x00;
  cbw.cb_length = 10;
  cbw.cb[0] = opcode;
  cbw.cb[2] = static_cast<std::uint8_t>(lba >> 24);
  cbw.cb[3] = static_cast<std::uint8_t>(lba >> 16);
  cbw.cb[4] = static_cast<std::uint8_t>(lba >> 8);
  cbw.cb[5] = static_cast<std::uint8_t>(lba);
  cbw.cb[7] = static_cast<std::uint8_t>(blocks >> 8);
  cbw.cb[8] = static_cast<std::uint8_t>(blocks);
  cbw.data_transfer_length = static_cast<std::uint32_t>(data.size());
  Csw csw = dev_.Transaction(cbw, data, dur);
  VOS_CHECK_MSG(csw.tag == cbw.tag, "BOT tag mismatch");
  return csw;
}

BlockResult UsbStorageDriver::Read(std::uint64_t lba, std::uint32_t count, std::uint8_t* out) {
  VOS_CHECK_MSG(ready_, "USB storage read before init");
  std::vector<std::uint8_t> data;
  Cycles d = 0;
  Csw csw = Bot(kScsiRead10, static_cast<std::uint32_t>(lba),
                static_cast<std::uint16_t>(count), true, data, &d);
  if (csw.status != 0 || data.size() != std::size_t(count) * 512) {
    return {BlockStatus::kMedia, d};
  }
  std::memcpy(out, data.data(), data.size());
  return {BlockStatus::kOk, d};
}

BlockResult UsbStorageDriver::Write(std::uint64_t lba, std::uint32_t count,
                                    const std::uint8_t* in) {
  VOS_CHECK_MSG(ready_, "USB storage write before init");
  std::vector<std::uint8_t> data(in, in + std::size_t(count) * 512);
  Cycles d = 0;
  Csw csw = Bot(kScsiWrite10, static_cast<std::uint32_t>(lba),
                static_cast<std::uint16_t>(count), false, data, &d);
  if (csw.status != 0) {
    return {BlockStatus::kMedia, d};
  }
  return {BlockStatus::kOk, d};
}

// --- SdDriver ---------------------------------------------------------------

Cycles SdDriver::Init() {
  SdCard& sd = board_.sd();
  Cycles t = 0;
  t += sd.CmdGoIdle();
  t += sd.CmdSendIfCond(0x1aa);
  while (!(sd.state() == SdCard::State::kIdent || sd.ready())) {
    t += sd.AcmdSendOpCond();
  }
  t += sd.CmdAllSendCid();
  std::uint16_t rca = 0;
  t += sd.CmdSendRelativeAddr(&rca);
  t += sd.CmdSelectCard(rca);
  return t;
}

bool SdDriver::ReadPartition(int index, std::uint64_t* first, std::uint64_t* count,
                             Cycles* burn) {
  std::uint8_t mbr[kSdBlockSize];
  *burn += board_.sd().ReadBlocks(0, 1, mbr, cfg_.dma_sd);
  if (mbr[510] != 0x55 || mbr[511] != 0xaa) {
    return false;
  }
  const std::uint8_t* e = mbr + 446 + index * 16;
  std::uint32_t lba = std::uint32_t(e[8]) | (std::uint32_t(e[9]) << 8) |
                      (std::uint32_t(e[10]) << 16) | (std::uint32_t(e[11]) << 24);
  std::uint32_t n = std::uint32_t(e[12]) | (std::uint32_t(e[13]) << 8) |
                    (std::uint32_t(e[14]) << 16) | (std::uint32_t(e[15]) << 24);
  if (n == 0) {
    return false;
  }
  *first = lba;
  *count = n;
  return true;
}

}  // namespace vos
