// kmalloc: small-object kernel allocator layered on the buddy page allocator
// (Prototype 4+, Table 1 footnote 6), rebuilt Bonwick-style:
//
//  - Per-size-class *slabs*: each slab is a small buddy block (1-4 pages)
//    whose first 128 bytes are an in-page header (magic+class, freelist,
//    per-object allocation bitmap, partial-list links). The header replaces
//    the seed's global live_-map — double-free and bad-pointer checks come
//    from the bitmap, and Ptr() becomes a lock-free address computation.
//  - Per-core object caches (magazines): alloc pops and free pushes a
//    per-core LIFO stack with no lock at all; only magazine refill/drain
//    touches the shared depot under the "slab-depot" spinlock, in batches of
//    half the magazine, so the common alloc/free on a core is lock-free.
//  - Requests beyond the largest class (2 KB) fall through to contiguous
//    page ranges tracked by host-side frame descriptors.
//
// All object storage lives in simulated physical memory, so slab pages,
// buffer-cache blocks and pipe rings consume real frames.
#ifndef VOS_SRC_KERNEL_KMALLOC_H_
#define VOS_SRC_KERNEL_KMALLOC_H_

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "src/hw/intc.h"
#include "src/kernel/pmm.h"
#include "src/kernel/racedet.h"
#include "src/kernel/spinlock.h"
#include "src/kernel/trace.h"

namespace vos {

class Kmalloc {
 public:
  static constexpr int kMinShift = 4;    // 16 B
  static constexpr int kMaxShift = 11;   // 2 KB; beyond that, whole pages
  static constexpr int kNumClasses = kMaxShift - kMinShift + 1;

  // `percore_cache_objs` is the magazine capacity per core per class
  // (KernelConfig::slab_percore_cache_objs).
  explicit Kmalloc(Pmm& pmm, std::uint32_t percore_cache_objs = 32);

  // Returns a physical address of at least `size` bytes, or 0 on exhaustion.
  PhysAddr Alloc(std::uint64_t size);
  void Free(PhysAddr pa);

  // Host pointer to a live allocation. Lock-free: bounds and liveness come
  // from the frame descriptor and the slab header's allocation bitmap, not
  // from any shared mutable lookup structure.
  std::uint8_t* Ptr(PhysAddr pa);

  // Flushes one core's magazines back to the depot (called on task exit so
  // cached objects are not stranded on an idle core), or all cores'.
  void DrainCore(unsigned core);
  void DrainAll();

  std::uint64_t allocated_bytes() const {
    return allocated_bytes_;  // racedet: ok (token-serialized gauge snapshot)
  }
  std::uint64_t allocation_count() const {
    return allocation_count_;  // racedet: ok (token-serialized gauge snapshot)
  }

  // Current core provider for the magazine selection; the kernel wires the
  // scheduler's notion of the running core. Unset = core 0 (single-core
  // prototypes, raw instances in tests).
  using CoreFn = std::function<unsigned()>;
  void SetCoreFn(CoreFn fn) { core_fn_ = std::move(fn); }

  // kSlabRefill trace hook (a=object size, b=objects moved); pmm-level
  // events come from the Pmm's own hook.
  using TraceHook = std::function<void(TraceEvent, std::uint64_t a, std::uint64_t b)>;
  void SetTraceHook(TraceHook hook) { trace_ = std::move(hook); }

  // --- Observability (/proc/memstat, tests, bench) ---
  struct ClassStats {
    std::uint32_t obj_size = 0;
    std::uint32_t slab_pages = 0;   // pages per slab for this class
    std::uint64_t slabs = 0;        // live slabs
    std::uint64_t total_objs = 0;   // capacity across live slabs
    std::uint64_t live_objs = 0;    // checked out to callers
    std::uint64_t refills = 0;      // magazine refills from the depot
  };
  struct CoreStats {
    std::uint64_t hits = 0;    // allocs served by the magazine
    std::uint64_t misses = 0;  // allocs that had to refill
    std::uint64_t frees = 0;
    std::uint64_t drains = 0;  // overflow + explicit drains
  };
  ClassStats class_stats(int cls) const;
  const CoreStats& core_stats(unsigned core) const { return core_stats_[core]; }
  // Objects currently cached in one core's magazines.
  std::uint64_t CachedObjects(unsigned core) const;
  // Aggregate magazine hit rate across cores, in [0,1]; 1.0 when idle.
  double HitRate() const;
  std::uint64_t large_live() const {
    return large_live_;  // racedet: ok (token-serialized gauge snapshot)
  }
  std::uint64_t large_allocs() const {
    return large_allocs_;  // racedet: ok (token-serialized gauge snapshot)
  }

 private:
  // In-page slab header layout (offsets into the slab's first page).
  static constexpr std::uint64_t kHdrMagic = 0x56534c4142000000ull;  // "VSLAB"<<24
  static constexpr std::uint64_t kHdrSize = 128;
  static constexpr std::uint64_t kOffMagic = 0;      // u64: kHdrMagic | cls
  static constexpr std::uint64_t kOffFreeCount = 8;  // u32
  static constexpr std::uint64_t kOffFreelist = 16;  // u64 pa of first free obj
  static constexpr std::uint64_t kOffNext = 24;      // u64 partial-list link
  static constexpr std::uint64_t kOffPrev = 32;      // u64
  static constexpr std::uint64_t kOffBitmap = 48;    // u64[4]: obj checked out
  static constexpr std::uint32_t kMaxObjsPerSlab = 256;  // bitmap capacity

  // Host-side descriptor for every pmm frame kmalloc owns.
  enum class FrameKind : std::uint8_t { kUnowned = 0, kSlab, kLargeHead, kLargeBody };
  struct FrameDesc {
    FrameKind kind = FrameKind::kUnowned;
    std::uint32_t head_delta = 0;   // frames back to the slab/range head
    std::uint64_t size = 0;         // kLargeHead: requested bytes
  };

  static int ClassFor(std::uint64_t size);
  std::uint32_t ObjSize(int cls) const { return 1u << (cls + kMinShift); }
  unsigned CurCore() const;
  std::uint64_t FrameIndex(PhysAddr pa) const;
  PhysAddr SlabBase(PhysAddr pa) const;

  // Slab-header bitmap: bit = object checked out of the slab (in a magazine
  // or held by a caller).
  bool TestBit(PhysAddr slab, std::uint32_t idx) const;
  void SetBit(PhysAddr slab, std::uint32_t idx, bool v);

  // Depot side (all called with depot_lock_ held).
  PhysAddr NewSlab(int cls);
  void PartialInsert(int cls, PhysAddr slab);
  void PartialUnlink(int cls, PhysAddr slab);
  void Refill(unsigned core, int cls);
  void ReturnToSlab(int cls, PhysAddr obj);
  void DrainBatch(unsigned core, int cls, std::size_t n);

  PhysAddr AllocLarge(std::uint64_t size);
  void FreeLarge(PhysAddr pa, std::uint64_t frame);

  // Guards the depot: partial-slab lists, slab creation/destruction, frame
  // descriptors, and the large-range path. The per-core magazines in front
  // of it are lock-free by construction.
  SpinLock depot_lock_{"slab-depot"};
  Pmm& pmm_;
  std::uint32_t mag_cap_;
  CoreFn core_fn_;
  TraceHook trace_;

  struct Depot {
    // Mutable depot state (the partial list and its counters) only moves
    // under depot_lock_; obj_size/slab_pages/capacity are ctor-immutable.
    PhysAddr partial_head = 0;        // racedet: shared (guarded by depot_lock_)
    std::uint32_t obj_size = 0;
    std::uint32_t slab_pages = 0;
    std::uint32_t capacity = 0;  // objects per slab
    std::uint64_t live_slabs = 0;     // racedet: shared (guarded by depot_lock_)
    std::uint64_t outstanding_objs = 0;  // racedet: shared (guarded by depot_lock_)
    std::uint64_t refill_count = 0;   // racedet: shared (guarded by depot_lock_)
  };
  std::array<Depot, kNumClasses> depots_;
  // mags_[core][cls]: LIFO stack of free object addresses.
  // racedet: percore — one core equals one execution context, so the
  // magazines (and their stats) never see a second context; nothing for a
  // lockset to check. Kept out of the shared set on purpose.
  std::array<std::array<std::vector<PhysAddr>, kNumClasses>, kMaxCores> mags_;
  std::array<CoreStats, kMaxCores> core_stats_{};
  std::vector<FrameDesc> frames_;

  // Global tallies. The slab fast path bumps them outside depot_lock_ (on
  // real hardware these are percpu counters summed at read time); those
  // sites sit in a documented RD_EXCLUDE_SCOPE. The large path mutates them
  // under depot_lock_ and is checked.
  std::uint64_t allocated_bytes_ = 0;   // racedet: shared (guarded by depot_lock_)
  std::uint64_t allocation_count_ = 0;  // racedet: shared (guarded by depot_lock_)
  std::uint64_t large_live_ = 0;        // racedet: shared (guarded by depot_lock_)
  std::uint64_t large_allocs_ = 0;      // racedet: shared (guarded by depot_lock_)
};

}  // namespace vos

#endif  // VOS_SRC_KERNEL_KMALLOC_H_
