// kmalloc: small-object kernel allocator layered on the page allocator
// (Prototype 4+, Table 1 footnote 6). Segregated power-of-two free lists with
// per-size slabs carved from whole pages; larger requests fall through to
// contiguous page ranges. All storage lives in simulated physical memory, so
// buffer-cache blocks, pipe rings and inode tables consume real frames.
#ifndef VOS_SRC_KERNEL_KMALLOC_H_
#define VOS_SRC_KERNEL_KMALLOC_H_

#include <array>
#include <cstdint>
#include <unordered_map>

#include "src/kernel/pmm.h"
#include "src/kernel/spinlock.h"

namespace vos {

class Kmalloc {
 public:
  explicit Kmalloc(Pmm& pmm) : pmm_(pmm) {}

  // Returns a physical address of at least `size` bytes, or 0 on exhaustion.
  PhysAddr Alloc(std::uint64_t size);
  void Free(PhysAddr pa);

  // Host pointer to an allocation (bounds come from the recorded size).
  std::uint8_t* Ptr(PhysAddr pa);

  std::uint64_t allocated_bytes() const { return allocated_bytes_; }
  std::uint64_t allocation_count() const { return live_.size(); }

 private:
  static constexpr int kMinShift = 4;    // 16 B
  static constexpr int kMaxShift = 11;   // 2 KB; beyond that, whole pages
  static constexpr int kNumClasses = kMaxShift - kMinShift + 1;

  struct FreeNode {
    PhysAddr next;
  };

  int ClassFor(std::uint64_t size) const;
  void RefillClass(int cls);

  // Guards the free lists and the live-allocation map; kernel subsystems
  // allocate from IRQ handlers and task context alike.
  SpinLock lock_{"kmalloc"};
  Pmm& pmm_;
  std::array<PhysAddr, kNumClasses> free_heads_{};
  // Live allocations: pa -> {class or page count}. A real kernel would encode
  // this in slab headers; we keep it external for strong double-free checks.
  struct Live {
    int cls;               // -1 for page-range allocations
    std::uint64_t npages;  // valid when cls == -1
    std::uint64_t size;
  };
  std::unordered_map<std::uint64_t, Live> live_;
  std::uint64_t allocated_bytes_ = 0;
};

}  // namespace vos

#endif  // VOS_SRC_KERNEL_KMALLOC_H_
