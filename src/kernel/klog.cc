#include "src/kernel/klog.h"

#include <cstdio>
#include <vector>

namespace vos {

Cycles Klog::Puts(Cycles now, const std::string& s) {
  Cycles t = now;
  for (char c : s) {
    // Polled TX: spin until the FIFO frees, then write; wire time advances.
    while (!uart_.TxReady(t)) {
      t += 100;  // status register poll loop
    }
    uart_.TxWrite(static_cast<std::uint8_t>(c), t);
    t += uart_.CharTime();
  }
  return t - now;
}

Cycles Klog::VPrintf(Cycles now, const char* fmt, std::va_list ap) {
  std::va_list ap2;
  va_copy(ap2, ap);
  int n = std::vsnprintf(nullptr, 0, fmt, ap2);
  va_end(ap2);
  if (n <= 0) {
    return 0;
  }
  std::vector<char> buf(static_cast<std::size_t>(n) + 1);
  std::vsnprintf(buf.data(), buf.size(), fmt, ap);
  return Puts(now, std::string(buf.data(), static_cast<std::size_t>(n)));
}

Cycles Klog::Printf(Cycles now, const char* fmt, ...) {
  std::va_list ap;
  va_start(ap, fmt);
  Cycles c = VPrintf(now, fmt, ap);
  va_end(ap);
  return c;
}

}  // namespace vos
