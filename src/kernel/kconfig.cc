#include "src/kernel/kconfig.h"

namespace vos {

const char* StageName(Stage s) {
  switch (s) {
    case Stage::kProto1:
      return "proto1-baremetal-io";
    case Stage::kProto2:
      return "proto2-multitasking";
    case Stage::kProto3:
      return "proto3-user-vs-kernel";
    case Stage::kProto4:
      return "proto4-files";
    case Stage::kProto5:
      return "proto5-desktop";
  }
  return "?";
}

const char* PlatformName(Platform p) {
  switch (p) {
    case Platform::kPi3:
      return "pi3";
    case Platform::kQemuWsl:
      return "qemu-wsl";
    case Platform::kQemuVm:
      return "qemu-vm";
  }
  return "?";
}

const char* OsProfileName(OsProfile p) {
  switch (p) {
    case OsProfile::kOurs:
      return "ours";
    case OsProfile::kXv6:
      return "xv6-armv8";
    case OsProfile::kLinux:
      return "linux";
    case OsProfile::kFreebsd:
      return "freebsd";
  }
  return "?";
}

namespace {

void ScaleCompute(CostModel& c, double s) {
  c.syscall_entry = Cycles(c.syscall_entry * s);
  c.syscall_exit = Cycles(c.syscall_exit * s);
  c.syscall_body = Cycles(c.syscall_body * s);
  c.context_switch = Cycles(c.context_switch * s);
  c.sched_pick = Cycles(c.sched_pick * s);
  c.wakeup = Cycles(c.wakeup * s);
  c.page_alloc = Cycles(c.page_alloc * s);
  c.page_free = Cycles(c.page_free * s);
  c.page_copy = Cycles(c.page_copy * s);
  c.pte_install = Cycles(c.pte_install * s);
  c.fork_base = Cycles(c.fork_base * s);
  c.cow_mark_per_page = Cycles(c.cow_mark_per_page * s);
  c.exec_base = Cycles(c.exec_base * s);
  c.sbrk_base = Cycles(c.sbrk_base * s);
  c.mmap_base = Cycles(c.mmap_base * s);
  c.pipe_op = Cycles(c.pipe_op * s);
  c.pipe_per_byte *= s;
  c.ipc_create = Cycles(c.ipc_create * s);
  c.ipc_map = Cycles(c.ipc_map * s);
  c.ipc_ring_op = Cycles(c.ipc_ring_op * s);
  c.memcpy_per_byte *= s;
  c.memcpy_naive_per_byte *= s;
  c.blit_per_byte *= s;
  c.yuv_simd_per_byte *= s;
  c.yuv_scalar_per_byte *= s;
  c.namei_per_component = Cycles(c.namei_per_component * s);
  c.inode_op = Cycles(c.inode_op * s);
  c.bcache_lookup = Cycles(c.bcache_lookup * s);
  c.bcache_flush_work = Cycles(c.bcache_flush_work * s);
  c.fat_chain_step = Cycles(c.fat_chain_step * s);
  c.irq_entry = Cycles(c.irq_entry * s);
  c.timer_tick_work = Cycles(c.timer_tick_work * s);
  c.event_poll = Cycles(c.event_poll * s);
  c.libc_compute_scale *= s;
}

}  // namespace

KernelConfig MakeConfig(Stage stage, Platform platform, OsProfile os) {
  KernelConfig k;
  k.stage = stage;
  k.platform = platform;
  k.os = os;

  // OS profile: mechanisms and libc cost.
  switch (os) {
    case OsProfile::kOurs:
      k.cost.libc_compute_scale = 1.0;  // newlib
      break;
    case OsProfile::kXv6:
      // musl-like libc measurably slower on compute (paper §6.2: md5sum,
      // qsort); simpler SD driver with higher per-block cost; no range path.
      k.cost.libc_compute_scale = 1.45;
      k.opt_bcache_bypass = false;
      k.opt_writeback_cache = false;  // xv6 bwrite is synchronous write-through
      k.opt_asm_memcpy = false;
      k.opt_simd_pixel = false;
      break;
    case OsProfile::kLinux:
      k.cost.libc_compute_scale = 0.95;  // glibc
      k.cow_fork = true;
      k.dma_sd = true;
      // Generic-kernel overhead on hot paths (deeper syscall/sched layers).
      k.cost.syscall_entry += 500;
      k.cost.syscall_exit += 400;
      k.cost.context_switch += 1400;
      k.cost.pipe_op += 2500;
      break;
    case OsProfile::kFreebsd:
      k.cost.libc_compute_scale = 1.05;
      k.cow_fork = true;
      k.dma_sd = true;
      k.cost.syscall_entry += 400;
      k.cost.syscall_exit += 300;
      k.cost.context_switch += 1100;
      k.cost.pipe_op += 1800;
      break;
  }

  // Platform: QEMU on a modern x86 machine executes guest compute faster
  // than the A53 (Table 4: +13% to +150% app FPS).
  switch (platform) {
    case Platform::kPi3:
      break;
    case Platform::kQemuWsl:
      ScaleCompute(k.cost, 0.70);
      break;
    case Platform::kQemuVm:
      ScaleCompute(k.cost, 0.76);
      break;
  }
  return k;
}

}  // namespace vos
