// Sampling profiler (the "observe everything" layer over §5.1's unwinder):
// timer-driven on-CPU stack sampling plus off-CPU (blocked-time) attribution,
// folded into flamegraph-ready stacks served by /proc/profile.
//
// Sampling model: the machine loop reports every execution span — a task
// activation or an idle stretch — through Machine's span hook. The profiler
// counts how many prof_hz period boundaries the span crossed (exactly the
// samples a profiling timer IRQ would have taken in that window) and captures
// the parked fiber's shadow call stack once per span with the crossing count
// as the sample weight. Because the span hook runs on the machine thread
// while every fiber is parked, the capture is consistent without stopping
// anything — the simulator's equivalent of NMI-safe unwinding. Boundaries
// that land in unreported gaps (IRQ-debt payoff) are attributed to the next
// span on that core, like coalesced timer ticks after a masked section.
//
// Each sample goes three places: a per-core lock-free ring (same seqlock
// discipline as trace.cc, for raw inspection), the folded aggregation table
// keyed by (task, stack-hash) under the "profiler" spinlock, and a
// kProfSample trace event (so tools/trace2perfetto.py can render sample
// density per core). Capture cost is charged to the sampled core as IRQ debt
// (cost.prof_sample_capture) so profiling overhead is real in virtual time;
// bench_prof asserts it stays ≤5% at the default prof_hz.
#ifndef VOS_SRC_KERNEL_PROFILER_H_
#define VOS_SRC_KERNEL_PROFILER_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/base/units.h"
#include "src/hw/intc.h"
#include "src/kernel/kconfig.h"
#include "src/kernel/spinlock.h"
#include "src/kernel/task.h"

namespace vos {

class TraceRing;

// Hard cap on frames kept per sample; cfg.prof_max_frames clamps to this.
constexpr unsigned kProfMaxFrames = 32;

// One captured sample. Frames are root-first (call_stack order), truncated
// to the configured depth; a truncated capture is still a valid stack.
struct ProfSample {
  Cycles ts = 0;
  std::int32_t pid = 0;
  std::uint16_t core = 0;
  bool offcpu = false;
  std::uint8_t nframes = 0;
  // On-CPU: prof periods covered (1 = one timer sample). Off-CPU: µs blocked.
  std::uint64_t weight = 0;
  std::uint64_t stack_hash = 0;
  std::array<const char*, kProfMaxFrames> frames{};
};

class Profiler {
 public:
  Profiler(const KernelConfig& cfg, TraceRing* trace);

  // Control plane (/proc/profile writer, boot, benches).
  void Start(Cycles now);
  void Stop();
  void Reset();
  bool running() const { return running_; }
  // "start" / "stop" / "reset"; 0 or negative Err (the /proc/faultinject
  // command-language idiom).
  std::int64_t Command(const std::string& text, Cycles now);

  // Machine span hook (machine thread, fibers parked). Returns the number of
  // samples captured so the caller can charge capture cost to the core.
  unsigned OnSpan(unsigned core, Task* task, Cycles t0, Cycles t1);

  // Sched hooks. OnSleep runs on the sleeping task's fiber just before it
  // parks (captures the blocked stack); OnWake runs under the sched lock with
  // the blocked duration already accounted to the task.
  void OnSleep(Task* t);
  void OnWake(Task* t, Cycles blocked);

  // /proc/profile body: status header ('#' lines) + folded stacks, one per
  // line, "mode;task;frame;...;frame weight", heaviest first.
  std::string ExportText() const;

  // Raw ring snapshot (seqlock read side), newest-window records per core.
  std::vector<ProfSample> DumpSamples() const;

  // Counters for metrics gauges. Token-serialized or relaxed-atomic reads.
  std::uint64_t samples() const { return samples_.load(std::memory_order_relaxed); }
  std::uint64_t offcpu_samples() const {
    return offcpu_samples_.load(std::memory_order_relaxed);
  }
  std::uint64_t symbolized() const { return symbolized_.load(std::memory_order_relaxed); }
  std::uint64_t dropped() const;

 private:
  // Folded aggregation entry: everything needed to print one collapsed stack.
  struct Fold {
    std::int32_t pid = 0;
    std::string name;
    bool offcpu = false;
    std::uint8_t nframes = 0;
    std::array<const char*, kProfMaxFrames> frames{};
    std::uint64_t weight = 0;
    std::uint64_t count = 0;
  };

  // Per-core sample ring, one cache line of cursors per core — the trace.cc
  // seqlock layout (see that file for the memory-ordering walkthrough).
  //
  // racedet policy: like TraceRing's CoreRing, these fields are deliberately
  // NOT in the shared set — the ring is intentionally lock-free (seqlock
  // writer, wrapping reader) and the Emit path must stay wait-free. The TSan
  // CI leg carries the matching suppression (tools/tsan.supp).
  struct alignas(64) CoreRing {
    std::atomic<std::uint64_t> head{0};  // total records written since Reset
    std::atomic<std::uint64_t> seq{0};   // seqlock: odd while a write is in flight
    std::uint64_t next_slot = 0;         // producer-only: head % capacity
    std::vector<ProfSample> slots;
  };

  // Per-core sampling cursor (machine-thread only; spans arrive in
  // nondecreasing time order per core).
  struct CoreClock {
    Cycles next_due = 0;
  };

  void CaptureFrames(const std::vector<const char*>& stack, ProfSample* s) const;
  void EmitSample(const ProfSample& s, const std::string& name);
  void FoldLocked(const ProfSample& s, const std::string& name);
  static std::uint64_t HashStack(const ProfSample& s);

  const KernelConfig& cfg_;
  TraceRing* trace_;
  Cycles period_;
  std::size_t cap_;
  unsigned max_frames_;
  bool running_ = false;

  std::array<CoreRing, kMaxCores> rings_;
  std::array<CoreClock, kMaxCores> clocks_;

  // Sample counters: relaxed atomics so gauges read them wait-free.
  std::atomic<std::uint64_t> samples_{0};
  std::atomic<std::uint64_t> offcpu_samples_{0};
  std::atomic<std::uint64_t> symbolized_{0};

  // Guards the folded table. Leaf-like: taken from the machine thread with
  // nothing held and from wakeup paths under "sched"/"sched-core", so the
  // order graph only ever gains sched→profiler edges (DESIGN.md §7).
  mutable SpinLock lock_{"profiler"};
  std::unordered_map<std::uint64_t, Fold> folds_;  // racedet: shared (guarded by lock_)
};

}  // namespace vos

#endif  // VOS_SRC_KERNEL_PROFILER_H_
