// Kernel data-race detector ("racedet"): the classic Eraser lockset
// algorithm (Savage et al., SOSP 1997) adapted to the simulator. Lockdep
// (lockdep.h) validates the order *between* locks; nothing validated that
// shared state is touched with a consistent lock held at all — exactly the
// bug class the sharded scheduler and zero-copy IPC made possible, and the
// one token serialization hides: the simulator never loses an update, so an
// unlocked access that would corrupt real multicore state runs "fine" here.
// Racedet makes the discipline itself checkable.
//
// Model (per annotated shared location v):
//  - Shadow state lives in a fixed-size open-addressed hash of cells keyed
//    by &v. A cell tracks the Eraser state machine:
//        Virgin -> Exclusive(first context) -> Shared / Shared-Modified
//    plus the candidate lockset C(v) and a bounded shrink history.
//  - On each access, the current lockset comes from lockdep's per-context
//    held-lock stack (lock *instances*, so two "sched-core" locks refine
//    independently). From the first second-context access on,
//    C(v) := C(v) ∩ locks_held(current).
//  - C(v) empty in Shared-Modified (or on the write that enters it) means no
//    single lock protected every access: a data race. The report carries the
//    location, both contexts, both shadow-stack backtraces (via the lockdep
//    backtrace provider), and the lockset shrink history; a kRaceReport
//    trace event fires and /proc/racedet serves the full text.
//  - Reads in the read-only Shared state never report (read sharing after
//    initialization is the classic benign pattern Eraser admits).
//
// Annotation surface (enforced statically by tools/lint_shared_state.py):
//  - Fields marked `racedet: shared (<why/guard>)` in a trailing comment may only be touched
//    through RD_READ(x)/RD_WRITE(x), inside an RD_EXCLUDE_SCOPE region, or
//    on a line carrying `// racedet: ok (<reason>)`.
//  - RD_EXCLUDE_SCOPE(reason) suppresses checking for the enclosing scope:
//    for code that is lock-free *by design* (seqlock trace rings, IPC ring
//    cursors, per-core magazines, token-serialized stats snapshots) and says
//    so. Excluded accesses are counted, not tracked.
//  - RD_ASSERT_HELD(lock) asserts the calling context holds `lock` right
//    now (the "caller holds lock_" comments, made executable).
//  - `// racedet: percore (<why>)` marks fields reviewed and intentionally
//    left unannotated because they are per-core by construction.
//
// The checker is driven entirely by annotations — it never traps raw loads.
// It is a no-op when disabled (KernelConfig::racedet_enabled) and requires
// lockdep (the lockset source): the kernel session enables it only when
// both knobs are on. Reports are diagnostics, not panics: detection must
// not perturb the schedule it is observing.
#ifndef VOS_SRC_KERNEL_RACEDET_H_
#define VOS_SRC_KERNEL_RACEDET_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace vos {

class SpinLock;

// Eraser state machine for one shadow cell.
enum class RdState : std::uint8_t {
  kVirgin = 0,     // never accessed
  kExclusive,      // only one context has touched it (initialization)
  kShared,         // read by other contexts; writes all predate sharing
  kSharedModified, // written by multiple contexts: lockset must stay nonempty
  kReported,       // race reported; cell muted so one bug = one report
};

const char* RdStateName(RdState s);

// A structured race report (what /proc/racedet prints, what tests assert on).
struct RaceReport {
  std::string location;             // the annotated expression, e.g. "dbg_shared_counter_"
  std::uintptr_t addr = 0;
  std::string site;                 // file:line of the racing access
  bool racing_write = false;
  std::string racing_ctx;           // context name of the racing access
  std::vector<const char*> racing_bt;
  std::string prior_site;           // file:line of the last disciplined access
  bool prior_write = false;
  std::string prior_ctx;
  std::vector<const char*> prior_bt;
  std::vector<std::string> lockset_history;  // how C(v) shrank to empty
};

class Racedet {
 public:
  static Racedet& Instance();

  // Wipes shadow cells, reports, and counters; resizes the cell table.
  // Each Kernel construction starts a fresh session (tests boot many
  // kernels). `cells` is rounded up to a power of two.
  void Reset(std::size_t cells = 4096);

  void SetEnabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  // --- The annotation hook (RD_READ / RD_WRITE expand to this) ---
  // `name`/`file`/`line` are the annotation site (static literals).
  void OnAccess(const volatile void* addr, const char* name, const char* file, int line,
                bool is_write);

  // RD_ASSERT_HELD: throws FatalError unless the calling context holds
  // `lock` (per lockdep's held stack). No-op when disabled or excluded.
  void AssertHeld(const SpinLock* lock, const char* expr, const char* file, int line);

  // Drops shadow cells covering [addr, addr+size): called when an annotated
  // object dies, so a reused allocation cannot inherit a stale lockset.
  void ForgetRange(const void* addr, std::size_t size);

  // Scoped suppression bookkeeping (use RD_EXCLUDE_SCOPE, not these).
  void PushExclude() { ++ExcludeDepth(); }
  void PopExclude() { --ExcludeDepth(); }
  bool Excluded() const;

  // kRaceReport trace hook: (cell address, report index).
  using TraceHook = std::function<void(std::uintptr_t, std::size_t)>;
  void SetTraceHook(TraceHook hook) { trace_ = std::move(hook); }
  // Names the current context in reports (the kernel wires the running
  // task's name; unset contexts print "ctx<N>").
  using CtxNameFn = std::function<std::string()>;
  void SetContextNameFn(CtxNameFn fn) { ctx_name_ = std::move(fn); }

  // --- Introspection (/proc/racedet, metrics gauges, tests) ---
  const std::vector<RaceReport>& reports() const { return reports_; }
  std::uint64_t total_reports() const { return total_reports_; }
  std::uint64_t checks() const { return checks_; }
  std::uint64_t excluded_accesses() const { return excluded_; }
  std::uint64_t lockset_shrinks() const { return shrinks_; }
  std::uint64_t dropped_locations() const { return dropped_; }
  std::size_t CellsUsed() const;
  std::size_t CellCapacity() const { return cells_.size(); }
  // Shadow state of one annotated location (tests drive the state machine).
  RdState StateOf(const volatile void* addr) const;
  // Current candidate lockset of one location, as lock class names.
  std::vector<std::string> LocksetOf(const volatile void* addr) const;
  // The /proc/racedet body.
  std::string Report() const;

 private:
  Racedet() = default;

  struct Cell {
    std::uintptr_t addr = 0;
    const char* name = nullptr;  // annotation-site literals
    const char* file = nullptr;
    int line = 0;
    RdState state = RdState::kVirgin;
    std::uint64_t owner = 0;      // context id while kExclusive
    std::string owner_name;
    bool lockset_valid = false;   // C(v) initialized on first shared access
    std::vector<const SpinLock*> lockset;
    // Last disciplined access (the "other side" of an eventual report).
    std::uint64_t last_ctx = 0;
    std::string last_ctx_name;
    const char* last_file = nullptr;
    int last_line = 0;
    bool last_write = false;
    std::vector<const char*> last_bt;
    std::vector<std::string> history;  // bounded lockset shrink log
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
  };

  static std::uint64_t& ExcludeDepth();
  Cell* Lookup(std::uintptr_t addr, bool create, const char* name, const char* file, int line);
  const Cell* Find(std::uintptr_t addr) const;
  std::uint64_t CurrentCtx();
  std::string CurrentCtxName(std::uint64_t id) const;
  std::string FormatLockset(const std::vector<const SpinLock*>& set) const;
  void RecordShrink(Cell& c, std::uint64_t ctx, const char* file, int line,
                    std::size_t before, std::size_t after);
  std::string SiteOfReport(const RaceReport& r) const;
  void EmitReport(Cell& c, std::uint64_t ctx, const char* file, int line, bool is_write,
                  const std::vector<const SpinLock*>& held);

  bool enabled_ = true;
  std::vector<Cell> cells_;
  std::size_t mask_ = 0;
  std::vector<RaceReport> reports_;
  std::uint64_t total_reports_ = 0;
  std::uint64_t checks_ = 0;
  std::uint64_t excluded_ = 0;
  std::uint64_t shrinks_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t next_ctx_ = 1;
  std::uint64_t generation_ = 0;  // bumped by Reset; invalidates ctx ids
  TraceHook trace_;
  CtxNameFn ctx_name_;
};

// Per-kernel racedet session, mirroring LockdepSession: Reset + enable on
// construction so each boot starts with empty shadow state. Lives as an
// early Kernel member, right after the lockdep session (racedet reads the
// lockset lockdep maintains).
class RacedetSession {
 public:
  RacedetSession(bool enabled, std::size_t cells) {
    Racedet::Instance().Reset(cells);
    Racedet::Instance().SetEnabled(enabled);
  }
  ~RacedetSession() {
    Racedet::Instance().SetTraceHook(nullptr);
    Racedet::Instance().SetContextNameFn(nullptr);
    // Wipe the shadow cells: the kernel's annotated objects are being
    // destroyed, and a later allocation at a recycled address must not
    // inherit their lockset state.
    Racedet::Instance().Reset(64);
    Racedet::Instance().SetEnabled(true);
  }
  RacedetSession(const RacedetSession&) = delete;
  RacedetSession& operator=(const RacedetSession&) = delete;
};

// RAII suppression for intentionally lock-free regions (see header comment).
class RacedetExcluder {
 public:
  explicit RacedetExcluder(const char* /*reason*/) { Racedet::Instance().PushExclude(); }
  ~RacedetExcluder() { Racedet::Instance().PopExclude(); }
  RacedetExcluder(const RacedetExcluder&) = delete;
  RacedetExcluder& operator=(const RacedetExcluder&) = delete;
};

// Annotation macros. RD_READ/RD_WRITE note the access and yield the lvalue,
// so they wrap in place: `RD_WRITE(count_) += n;`, `if (RD_READ(dirty))`.
#define RD_READ(x) \
  (::vos::Racedet::Instance().OnAccess(&(x), #x, __FILE__, __LINE__, false), (x))
#define RD_WRITE(x) \
  (::vos::Racedet::Instance().OnAccess(&(x), #x, __FILE__, __LINE__, true), (x))
#define RD_ASSERT_HELD(lk) \
  ::vos::Racedet::Instance().AssertHeld(&(lk), #lk, __FILE__, __LINE__)
#define RD_CONCAT_(a, b) a##b
#define RD_CONCAT(a, b) RD_CONCAT_(a, b)
#define RD_EXCLUDE_SCOPE(reason) \
  ::vos::RacedetExcluder RD_CONCAT(rd_exclude_, __LINE__) { reason }

}  // namespace vos

#endif  // VOS_SRC_KERNEL_RACEDET_H_
