// xv6-style pipes (§4.4 "IPC for Mario's event loop"). A fixed 512-byte ring
// guarded by a spinlock; blocking reads/writes with sleep/wakeup on the two
// ends. The paper measures one-way IPC at ~21 us through this path (Fig 8)
// and calls out pipe() as the bottleneck for event indirection (Fig 11).
#ifndef VOS_SRC_KERNEL_PIPE_H_
#define VOS_SRC_KERNEL_PIPE_H_

#include <cstdint>

#include "src/base/histogram.h"
#include "src/base/ring_buffer.h"
#include "src/kernel/racedet.h"
#include "src/kernel/sched.h"
#include "src/kernel/spinlock.h"

namespace vos {

constexpr std::size_t kPipeSize = 512;

class Pipe {
 public:
  explicit Pipe(Sched& sched) : sched_(sched), ring_(kPipeSize) {}  // racedet: ok (constructor init)
  // Pipes are heap-allocated and die when both ends close; drop their shadow
  // cells so a reused allocation cannot inherit a stale lockset.
  ~Pipe() { Racedet::Instance().ForgetRange(this, sizeof(Pipe)); }
  Pipe(const Pipe&) = delete;
  Pipe& operator=(const Pipe&) = delete;

  // Write of up to n bytes; returns bytes written, kErrPipe if no readers
  // remain, or stops early if the task is killed. Nonblock mode returns
  // kErrAgain instead of sleeping on a full ring (a short count if some
  // bytes already went in).
  std::int64_t Write(Task* cur, const std::uint8_t* buf, std::size_t n, bool nonblock);

  // Blocking read: waits until data or all writers closed. Nonblock mode
  // returns kErrAgain instead of sleeping.
  std::int64_t Read(Task* cur, std::uint8_t* buf, std::size_t n, bool nonblock);

  void CloseRead();
  void CloseWrite();
  // Refcount bumps take the lock like the close paths do. The original
  // unlocked `++readers_` here is exactly the shape the racedet annotations
  // exist to catch: a bare increment racing CloseRead's locked decrement.
  void AddReader() {
    SpinGuard g(lock_);
    ++RD_WRITE(readers_);
  }
  void AddWriter() {
    SpinGuard g(lock_);
    ++RD_WRITE(writers_);
  }

  int readers() const { return readers_; }  // racedet: ok (token-serialized snapshot)
  int writers() const { return writers_; }  // racedet: ok (token-serialized snapshot)
  std::size_t buffered() const {
    return ring_.size();  // racedet: ok (token-serialized snapshot)
  }

  // Optional batching observability: how many bytes each reader wakeup had
  // waiting for it (Record is wait-free, safe under lock_).
  void SetBytesPerWakeupHist(Histogram* h) { bytes_per_wake_hist_ = h; }

 private:
  Sched& sched_;
  SpinLock lock_{"pipe"};  // all pipes share one lock class
  RingBuffer<std::uint8_t> ring_;  // racedet: shared (guarded by lock_)
  int readers_ = 1;                // racedet: shared (guarded by lock_)
  int writers_ = 1;                // racedet: shared (guarded by lock_)
  // Distinct sleep channels for the two directions, as in xv6.
  char read_chan_ = 0;
  char write_chan_ = 0;
  Histogram* bytes_per_wake_hist_ = nullptr;
};

}  // namespace vos

#endif  // VOS_SRC_KERNEL_PIPE_H_
