#include "src/kernel/kernel.h"

#include <cstdarg>
#include <cstring>

#include "src/base/log.h"
#include "src/base/status.h"
#include "src/apps/app_registry.h"
#include "src/fs/procfs.h"
#include "src/kernel/unwind.h"
#include "src/wm/wm.h"

namespace vos {

namespace {
thread_local Task* g_current_task = nullptr;

// Kernel image region: the first 8 MB of DRAM are reserved for the kernel
// text/data, the (embedded) ramdisk dump, and boot allocations; the page
// allocator manages the rest.
constexpr PhysAddr kKernelReservedEnd = MiB(8);
}  // namespace

const char* SysName(Sys num) {
  switch (num) {
    case Sys::kFork: return "fork";
    case Sys::kExit: return "exit";
    case Sys::kWait: return "wait";
    case Sys::kPipe: return "pipe";
    case Sys::kRead: return "read";
    case Sys::kKill: return "kill";
    case Sys::kExec: return "exec";
    case Sys::kFstat: return "fstat";
    case Sys::kChdir: return "chdir";
    case Sys::kDup: return "dup";
    case Sys::kGetPid: return "getpid";
    case Sys::kSbrk: return "sbrk";
    case Sys::kSleep: return "sleep";
    case Sys::kUptime: return "uptime";
    case Sys::kOpen: return "open";
    case Sys::kWrite: return "write";
    case Sys::kMknod: return "mknod";
    case Sys::kUnlink: return "unlink";
    case Sys::kLink: return "link";
    case Sys::kMkdir: return "mkdir";
    case Sys::kClose: return "close";
    case Sys::kLseek: return "lseek";
    case Sys::kMmap: return "mmap";
    case Sys::kCacheFlush: return "cacheflush";
    case Sys::kClone: return "clone";
    case Sys::kSemCreate: return "semcreate";
    case Sys::kSemWait: return "semwait";
    case Sys::kSemPost: return "sempost";
    case Sys::kSync: return "sync";
    case Sys::kFsync: return "fsync";
    case Sys::kIpcCreate: return "ipccreate";
    case Sys::kIpcWait: return "ipcwait";
    case Sys::kIpcWake: return "ipcwake";
    case Sys::kIpcMap: return "ipcmap";
    case Sys::kSocket: return "socket";
    case Sys::kBind: return "bind";
    case Sys::kListen: return "listen";
    case Sys::kAccept: return "accept";
    case Sys::kConnect: return "connect";
    case Sys::kSend: return "send";
    case Sys::kRecv: return "recv";
    case Sys::kShutdown: return "shutdown";
  }
  return "?";
}

Kernel::Kernel(Board& board, KernelConfig cfg)
    : board_(board),
      cfg_(cfg),
      lockdep_session_(cfg.lockdep_enabled),
      racedet_session_(cfg.racedet_enabled && cfg.lockdep_enabled, cfg.racedet_cells),
      machine_(board, this, cfg.EffectiveCores()),
      klog_(board.uart()),
      trace_(cfg.trace_enabled, cfg.trace_ring_capacity),
      sched_(cfg_),
      profiler_(cfg_, &trace_) {
  VOS_CHECK_MSG(cfg_.EffectiveCores() <= board.config().cores,
                "kernel configured for more cores than the board has");
  // Violations report through the tasks' shadow call stacks; off a fiber
  // (boot, IRQ dispatch on the machine thread) a synthetic frame marks it.
  Lockdep::Instance().SetBacktraceProvider([]() -> std::vector<const char*> {
    if (Task* t = g_current_task) {
      return t->call_stack;
    }
    return {"<machine-loop>"};
  });
  // Racedet reporting rides the same infrastructure: contexts are named by
  // the running task, and a lockset-empty detection emits a trace event next
  // to the report text /proc/racedet serves.
  Racedet::Instance().SetContextNameFn([]() -> std::string {
    if (Task* t = g_current_task) {
      return t->name();
    }
    return "<machine-loop>";
  });
  Racedet::Instance().SetTraceHook([this](std::uintptr_t addr, std::size_t index) {
    Task* t = g_current_task;
    trace_.Emit(Now(), t != nullptr ? t->core : 0, TraceEvent::kRaceReport,
                t != nullptr ? static_cast<std::int32_t>(t->pid()) : 0, addr, index);
  });

  // Observability: latency histograms and gauges live in the metrics
  // registry from the start; subsystems cache the pointers and record
  // wait-free on their hot paths.
  syscall_lat_all_ = metrics_.Hist("syscall.latency");
  for (int i = 1; i <= kNumSyscalls; ++i) {
    syscall_lat_[i] = metrics_.Hist(std::string("syscall.") + SysName(static_cast<Sys>(i)) +
                                    ".latency");
  }
  irq_lat_hist_ = metrics_.Hist("irq.duration");
  irq_counter_ = metrics_.Counter("irq.count");
  sched_.SetNowFn([this] { return Now(); });
  sched_.SetLatencyHists(metrics_.Hist("sched.runq_wait"), metrics_.Hist("sched.slice_len"));
  // Profiler wiring: the machine reports every execution span; each captured
  // sample charges its capture cost to the sampled core as IRQ debt, so
  // profiling overhead is real virtual time (bench_prof's ≤5% contract).
  machine_.SetSpanHook([this](unsigned c, Task* t, Cycles t0, Cycles t1) {
    unsigned n = profiler_.OnSpan(c, t, t0, t1);
    if (n > 0) {
      machine_.ChargeIrq(c, Cycles(n) * cfg_.cost.prof_sample_capture);
    }
  });
  sched_.SetProfHooks([this](Task* t) { profiler_.OnSleep(t); },
                      [this](Task* t, Cycles blocked) { profiler_.OnWake(t, blocked); });
  metrics_.Gauge("prof.samples", [this] { return profiler_.samples(); });
  metrics_.Gauge("prof.offcpu_samples", [this] { return profiler_.offcpu_samples(); });
  metrics_.Gauge("prof.symbolized", [this] { return profiler_.symbolized(); });
  metrics_.Gauge("prof.dropped", [this] { return profiler_.dropped(); });
  watchdog_bark_counter_ = metrics_.Counter("watchdog.barks");
  metrics_.Gauge("trace.emitted", [this] { return trace_.total_emitted(); });
  metrics_.Gauge("trace.dropped", [this] { return trace_.total_dropped(); });
  metrics_.Gauge("trace.dump_retries", [this] { return trace_.dump_retries(); });
  metrics_.Gauge("racedet.checks", [] { return Racedet::Instance().checks(); });
  metrics_.Gauge("racedet.reports", [] { return Racedet::Instance().total_reports(); });
  metrics_.Gauge("racedet.excluded", [] { return Racedet::Instance().excluded_accesses(); });
  metrics_.Gauge("racedet.shrinks", [] { return Racedet::Instance().lockset_shrinks(); });
  metrics_.Gauge("racedet.cells_used",
                 [] { return static_cast<std::uint64_t>(Racedet::Instance().CellsUsed()); });
  metrics_.Gauge("racedet.dropped", [] { return Racedet::Instance().dropped_locations(); });
  for (unsigned c = 0; c < cfg_.EffectiveCores(); ++c) {
    std::string pfx = "sched.core" + std::to_string(c) + ".";
    metrics_.Gauge(pfx + "ctx_switches", [this, c] { return sched_.context_switches(c); });
    metrics_.Gauge(pfx + "runq_depth",
                   [this, c] { return static_cast<std::uint64_t>(sched_.runqueue_len(c)); });
    metrics_.Gauge(pfx + "idle_pct", [this, c] {
      return static_cast<std::uint64_t>((1.0 - machine_.Utilization(c)) * 100.0);
    });
    metrics_.Gauge(pfx + "steals", [this, c] { return sched_.steals(c); });
    metrics_.Gauge(pfx + "stolen_tasks", [this, c] { return sched_.stolen_tasks(c); });
    metrics_.Gauge(pfx + "migrations", [this, c] { return sched_.migrations(c); });
  }
}

Kernel::~Kernel() {
  shutting_down_ = true;
  // Mark everything killed so blocking loops bail out during unwind, then
  // destroy tasks: their fibers unwind (TaskKilledUnwind) while the rest of
  // the kernel still exists.
  for (auto& [pid, t] : tasks_) {
    t->killed = true;
  }
  tasks_.clear();
}

void Kernel::SetRamdiskImage(std::vector<std::uint8_t> image) {
  ramdisk_image_ = std::move(image);
}

void Kernel::AddBootBlob(const std::string& name, std::vector<std::uint8_t> velf) {
  boot_blobs_[name] = std::move(velf);
}

Task* Kernel::CurrentTask() const { return g_current_task; }

void Kernel::DebugSharedInc(bool locked) {
  if (locked) {
    SpinGuard g(dbg_race_lock_);
    ++RD_WRITE(dbg_shared_counter_);
  } else {
    // Deliberately unlocked: the racedet self-test's seeded race. The
    // detector must flag exactly this access once a second context has made
    // the counter shared.
    ++RD_WRITE(dbg_shared_counter_);
  }
}

std::uint64_t Kernel::debug_shared_counter() {
  SpinGuard g(dbg_race_lock_);
  return RD_READ(dbg_shared_counter_);
}

void Kernel::ChargeCurrent(Cycles c) {
  if (TaskFiber* f = TaskFiber::Current()) {
    f->Burn(c);
  }
  // On the machine thread (boot/irq) callers account time themselves.
}

void Kernel::Printk(const char* fmt, ...) {
  std::va_list ap;
  va_start(ap, fmt);
  Cycles c = klog_.VPrintf(Now(), fmt, ap);
  va_end(ap);
  ChargeCurrent(c);
}

// --- Boot --------------------------------------------------------------------

Kernel::BootReport Kernel::Boot() {
  VOS_CHECK_MSG(!booted_, "double boot");
  BootReport r;
  Cycles now = board_.clock().now();

  // Firmware: the GPU firmware loads bootcode/start.elf and then our kernel
  // image (kernel + embedded ramdisk) from the SD card — the bulk of the
  // 6-second power-to-shell time (Fig 8).
  std::uint64_t image_bytes = MiB(1) + ramdisk_image_.size();
  r.firmware = Ms(2600) + Cycles(image_bytes) * 250;  // ~4 MB/s SD load

  // Kernel core: vectors, PMM over [8 MB, dram_end), timers, UART.
  Cycles core = 0;
  pmm_ = std::make_unique<Pmm>(board_.mem(), kKernelReservedEnd, board_.config().dram_size);
  pmm_->SetTraceHook([this](TraceEvent ev, std::uint64_t a, std::uint64_t b) {
    Task* cur = CurrentTask();
    trace_.Emit(Now(), cur != nullptr ? cur->core : 0, ev, cur != nullptr ? cur->pid() : 0, a, b);
  });
  metrics_.Gauge("pmm.total_pages", [this] { return pmm_->total_pages(); });
  metrics_.Gauge("pmm.free_pages", [this] { return pmm_->free_pages(); });
  metrics_.Gauge("pmm.largest_block_pages", [this] { return pmm_->LargestFreeBlockPages(); });
  metrics_.Gauge("pmm.page_allocs", [this] { return pmm_->stats().page_allocs; });
  metrics_.Gauge("pmm.page_frees", [this] { return pmm_->stats().page_frees; });
  metrics_.Gauge("pmm.range_allocs", [this] { return pmm_->stats().range_allocs; });
  metrics_.Gauge("pmm.range_frees", [this] { return pmm_->stats().range_frees; });
  metrics_.Gauge("pmm.splits", [this] { return pmm_->stats().splits; });
  metrics_.Gauge("pmm.merges", [this] { return pmm_->stats().merges; });
  metrics_.Gauge("pmm.oom_events", [this] { return pmm_->stats().oom_events; });
  if (cfg_.HasKmalloc()) {
    kmalloc_ = std::make_unique<Kmalloc>(*pmm_, cfg_.slab_percore_cache_objs);
    kmalloc_->SetCoreFn([this] {
      Task* cur = CurrentTask();
      return cur != nullptr ? cur->core : 0u;
    });
    kmalloc_->SetTraceHook([this](TraceEvent ev, std::uint64_t a, std::uint64_t b) {
      Task* cur = CurrentTask();
      trace_.Emit(Now(), cur != nullptr ? cur->core : 0, ev, cur != nullptr ? cur->pid() : 0, a,
                  b);
    });
    metrics_.Gauge("slab.large_live", [this] { return kmalloc_->large_live(); });
    metrics_.Gauge("slab.large_allocs", [this] { return kmalloc_->large_allocs(); });
    for (unsigned c = 0; c < cfg_.EffectiveCores(); ++c) {
      std::string pfx = "slab.core" + std::to_string(c) + ".";
      metrics_.Gauge(pfx + "hits", [this, c] { return kmalloc_->core_stats(c).hits; });
      metrics_.Gauge(pfx + "misses", [this, c] { return kmalloc_->core_stats(c).misses; });
      metrics_.Gauge(pfx + "drains", [this, c] { return kmalloc_->core_stats(c).drains; });
      metrics_.Gauge(pfx + "cached", [this, c] { return kmalloc_->CachedObjects(c); });
    }
  }
  vtimers_ = std::make_unique<VirtualTimers>(board_.sys_timer());
  sems_ = std::make_unique<SemTable>(sched_);
  ipcs_ = std::make_unique<IpcTable>(sched_, cfg_);
  metrics_.Gauge("ipc.waits_slept", [this] { return ipcs_->waits_slept(); });
  metrics_.Gauge("ipc.waits_immediate", [this] { return ipcs_->waits_immediate(); });
  metrics_.Gauge("ipc.wakes", [this] { return ipcs_->wakes(); });
  metrics_.Gauge("ipc.woken_tasks", [this] { return ipcs_->woken_tasks(); });
  core += Ms(3);  // vector tables, EL1 setup, MMU enable (1 MB kernel blocks)
  if (cfg_.HasVm()) {
    core += Ms(2);  // kernel page tables
  }
  // Release secondary cores from their firmware parking loop (§4.5) and arm
  // every core's generic timer for the scheduler tick.
  for (unsigned c = 0; c < cfg_.EffectiveCores(); ++c) {
    board_.core_timer(c).Arm(now + r.firmware + core, cfg_.tick_interval);
    board_.intc().Enable(CoreTimerIrq(c));
    if (c > 0) {
      core += Us(300);  // SEV + stack setup per secondary core
    }
  }
  board_.intc().Enable(kIrqSysTimerC1);

  // Framebuffer: first-class IO, present from Prototype 1 (§4.1).
  fb_driver_ = std::make_unique<FbDriver>(board_, cfg_);
  r.fb = fb_driver_->Init();

  console_ = std::make_unique<ConsoleDriver>(board_, sched_, klog_);
  if (cfg_.stage >= Stage::kProto2) {
    console_->EnableRxIrq();
    board_.intc().Enable(kIrqAux);
  }

  // Files (Prototype 4): ramdisk root filesystem + devfs/procfs + input/audio.
  Cycles fs_time = 0;
  Cycles usb_time = 0;
  fault_ = std::make_unique<FaultInjector>(cfg_);
  // Every block device goes through a fault-injection decorator, tagged with
  // the bcache device id it is about to be registered under.
  auto wrap_fault = [this](BlockDevice* raw) -> BlockDevice* {
    fault_devs_.push_back(std::make_unique<FaultInjectingBlockDevice>(
        raw, fault_.get(), bcache_->device_count()));
    return fault_devs_.back().get();
  };
  if (cfg_.HasFiles()) {
    VOS_CHECK_MSG(!ramdisk_image_.empty(), "proto4+ boot requires a ramdisk image");
    ramdisk_ = std::make_unique<RamDisk>(ramdisk_image_);
    bcache_ = std::make_unique<Bcache>(cfg_);
    bcache_->SetNowFn([this] { return Now(); });
    bcache_->SetTraceHook([this](TraceEvent ev, std::uint64_t a, std::uint64_t b) {
      Task* cur = CurrentTask();
      trace_.Emit(Now(), cur != nullptr ? cur->core : 0, ev,
                  cur != nullptr ? cur->pid() : 0, a, b);
    });
    Histogram* blk_lat = metrics_.Hist("block.req_latency");
    bcache_->SetLatencyHook([blk_lat](Cycles lat) { blk_lat->Record(lat); });
    ramdisk_dev_ = bcache_->AddDevice(wrap_fault(ramdisk_.get()), "ramdisk");
    RegisterBlockDevMetrics(ramdisk_dev_);
    rootfs_ = std::make_unique<Xv6Fs>(*bcache_, ramdisk_dev_, cfg_);
    std::int64_t mr = rootfs_->Mount(&fs_time);
    VOS_CHECK_MSG(mr == 0, "root filesystem mount failed");
    // Write-ahead journal: Mount() already ran recovery-by-replay; the live
    // journal attaches only when the knob is on AND the image carries a log.
    // FAT32 volumes stay unjournaled (see README): removable media interop
    // means the on-disk format is not ours to extend.
    if (cfg_.jrnl_enabled) {
      journal_ = std::make_unique<Journal>(*bcache_, ramdisk_dev_, cfg_);
      if (journal_->Init(rootfs_->sb(), &fs_time) == 0 && journal_->active()) {
        journal_->SetNowFn([this] { return Now(); });
        journal_->SetTraceHook([this](TraceEvent ev, std::uint64_t a, std::uint64_t b) {
          Task* cur = CurrentTask();
          trace_.Emit(Now(), cur != nullptr ? cur->core : 0, ev,
                      cur != nullptr ? cur->pid() : 0, a, b);
        });
        Histogram* jrnl_lat = metrics_.Hist("jrnl.commit_latency");
        journal_->SetCommitLatencyHook([jrnl_lat](Cycles lat) { jrnl_lat->Record(lat); });
        rootfs_->AttachJournal(journal_.get());
        metrics_.Gauge("jrnl.commits", [this] { return journal_->stats().commits; });
        metrics_.Gauge("jrnl.commit_errors",
                       [this] { return journal_->stats().commit_errors; });
        metrics_.Gauge("jrnl.txs", [this] { return journal_->stats().txs; });
        metrics_.Gauge("jrnl.blocks_logged",
                       [this] { return journal_->stats().blocks_logged; });
        metrics_.Gauge("jrnl.coalesced", [this] { return journal_->stats().coalesced; });
        metrics_.Gauge("jrnl.checkpoints", [this] { return journal_->stats().checkpoints; });
        metrics_.Gauge("jrnl.checkpoint_blocks",
                       [this] { return journal_->stats().checkpoint_blocks; });
        metrics_.Gauge("jrnl.backpressure_syncs",
                       [this] { return journal_->stats().backpressure_syncs; });
        metrics_.Gauge("jrnl.live_slots", [this] { return journal_->stats().live_slots; });
        metrics_.Gauge("jrnl.backlog_blocks",
                       [this] { return journal_->stats().backlog_blocks; });
        metrics_.Gauge("jrnl.recovered_records", [this] { return rootfs_->recovered_records(); });
        metrics_.Gauge("jrnl.recovered_blocks", [this] { return rootfs_->recovered_blocks(); });
      } else {
        journal_.reset();  // unjournaled image or unreadable jsb: plain write-back
      }
    }
    vfs_ = std::make_unique<Vfs>(*rootfs_, cfg_);

    events_ = std::make_unique<KeyEventDev>(sched_);
    event1_ = std::make_unique<KeyEventDev>(sched_);
    null_dev_ = std::make_unique<NullDev>();
    audio_driver_ = std::make_unique<AudioDriver>(board_, sched_, *pmm_, cfg_);
    vfs_->RegisterDevice("console", console_.get());
    vfs_->RegisterDevice("fb", fb_driver_.get());
    vfs_->RegisterDevice("events", events_.get());
    vfs_->RegisterDevice("event1", event1_.get());
    vfs_->RegisterDevice("null", null_dev_.get());
    vfs_->RegisterDevice("sb", audio_driver_.get());

    // procfs generators.
    vfs_->RegisterProc("cpuinfo", [this] {
      std::vector<ProcCpuLine> lines;
      for (unsigned c = 0; c < cfg_.EffectiveCores(); ++c) {
        lines.push_back(ProcCpuLine{c, machine_.Utilization(c), sched_.context_switches()});
      }
      return FormatCpuInfo(lines, static_cast<std::uint64_t>(ToMs(Now())));
    });
    vfs_->RegisterProc("meminfo", [this] {
      return FormatMemInfo(pmm_->total_pages(), pmm_->free_pages(), kKernelReservedEnd);
    });
    vfs_->RegisterProc("uptime",
                       [this] { return FormatUptime(static_cast<std::uint64_t>(ToMs(Now()))); });
    vfs_->RegisterProc("tasks", [this] {
      std::vector<ProcTaskLine> lines;
      for (auto& [pid, t] : tasks_) {
        const char* st = "?";
        switch (t->state) {
          case TaskState::kEmbryo:
            st = "embryo";
            break;
          case TaskState::kRunnable:
            st = "runnable";
            break;
          case TaskState::kRunning:
            st = "running";
            break;
          case TaskState::kSleeping:
            st = "sleeping";
            break;
          case TaskState::kZombie:
            st = "zombie";
            break;
        }
        lines.push_back(
            ProcTaskLine{pid, t->name(), st, static_cast<std::uint64_t>(ToMs(t->cpu_time))});
      }
      return FormatTasks(lines);
    });
    vfs_->RegisterProc("fbinfo", [this] {
      return std::to_string(fb_driver_->width()) + " " + std::to_string(fb_driver_->height()) +
             " " + std::to_string(fb_driver_->pitch()) + "\n";
    });
    // /proc/blkstat is a formatted view over the metrics registry: every
    // counter flows through the block.<dev>.* gauges /proc/metrics exports.
    vfs_->RegisterProc("blkstat", [this] {
      std::vector<ProcBlkLine> lines;
      for (int d = 0; d < bcache_->device_count(); ++d) {
        std::string pfx = "block." + bcache_->stats(d).name + ".";
        auto val = [&](const char* field) {
          std::uint64_t v = 0;
          metrics_.Value(pfx + field, &v);
          return v;
        };
        ProcBlkLine l;
        l.name = bcache_->stats(d).name;
        l.reads = val("reads");
        l.writes = val("writes");
        l.blocks_read = val("blocks_read");
        l.blocks_written = val("blocks_written");
        l.hits = val("hits");
        l.misses = val("misses");
        l.writebacks = val("writebacks");
        l.merged = val("merged");
        l.queue_depth_hw = val("queue_depth_hw");
        l.dirty = val("dirty");
        l.io_retries = val("io_retries");
        l.io_errors = val("io_errors");
        l.io_timeouts = val("io_timeouts");
        lines.push_back(std::move(l));
      }
      return FormatBlkStat(lines);
    });
    // /proc/faultinject: read shows injector state and fault counters; write
    // accepts the command language (see FaultInjector::Command).
    vfs_->RegisterProc("faultinject", [this] { return fault_->StatusText(); });
    vfs_->RegisterProcWriter("faultinject",
                             [this](const std::string& text) { return fault_->Command(text); });
    // /proc/profile: read dumps the folded-stack aggregation (header + one
    // line per unique stack); write accepts start/stop/reset.
    vfs_->RegisterProc("profile", [this] { return profiler_.ExportText(); });
    vfs_->RegisterProcWriter(
        "profile", [this](const std::string& text) { return profiler_.Command(text, Now()); });
    vfs_->RegisterProc("lockdep", [] { return Lockdep::Instance().Report(); });
    vfs_->RegisterProc("racedet", [] { return Racedet::Instance().Report(); });
    // /proc/jrnl: journal state and counters; "active 0" when the image is
    // unjournaled or the journal is disabled.
    vfs_->RegisterProc("jrnl", [this] {
      if (journal_ == nullptr) {
        return std::string("active 0\n");
      }
      std::string out = journal_->StatusText();
      out += "recovered_records " + std::to_string(rootfs_->recovered_records()) + "\n";
      out += "recovered_blocks " + std::to_string(rootfs_->recovered_blocks()) + "\n";
      return out;
    });
    // /proc/memstat scalars are a view over the registry's pmm.*/slab.*
    // gauges; only distribution detail (per-order, per-class) is read direct.
    vfs_->RegisterProc("memstat", [this] {
      auto val = [this](const std::string& name) {
        std::uint64_t v = 0;
        metrics_.Value(name, &v);
        return v;
      };
      ProcMemStat ms;
      ms.total_pages = val("pmm.total_pages");
      ms.free_pages = val("pmm.free_pages");
      ms.largest_block_pages = val("pmm.largest_block_pages");
      ms.frag_pct = pmm_->FragmentationPct();
      ms.page_allocs = val("pmm.page_allocs");
      ms.page_frees = val("pmm.page_frees");
      ms.range_allocs = val("pmm.range_allocs");
      ms.range_frees = val("pmm.range_frees");
      ms.splits = val("pmm.splits");
      ms.merges = val("pmm.merges");
      ms.oom_events = val("pmm.oom_events");
      for (int o = 0; o < pmm_->num_orders(); ++o) {
        ms.free_blocks_by_order.push_back(pmm_->FreeBlocksOfOrder(o));
      }
      if (kmalloc_ != nullptr) {
        ms.has_kmalloc = true;
        for (int cls = 0; cls < Kmalloc::kNumClasses; ++cls) {
          Kmalloc::ClassStats cs = kmalloc_->class_stats(cls);
          ms.classes.push_back(ProcMemClassLine{cs.obj_size, cs.slab_pages, cs.slabs,
                                                cs.total_objs, cs.live_objs, cs.refills});
        }
        for (unsigned c = 0; c < cfg_.EffectiveCores(); ++c) {
          std::string pfx = "slab.core" + std::to_string(c) + ".";
          ms.cores.push_back(ProcMemCoreLine{c, val(pfx + "hits"), val(pfx + "misses"),
                                             val(pfx + "drains"), val(pfx + "cached")});
        }
        ms.large_live = val("slab.large_live");
        ms.large_allocs = val("slab.large_allocs");
      }
      return FormatMemStat(ms);
    });
    vfs_->RegisterProc("metrics", [this] { return metrics_.ExportText(); });
    // Write "buckets on|off" to toggle raw histogram bucket export (the
    // percentile summary stays the default view).
    vfs_->RegisterProcWriter("metrics",
                             [this](const std::string& text) { return metrics_.Command(text); });
    vfs_->RegisterProc("schedstat", [this] {
      std::vector<ProcSchedLine> cores;
      for (unsigned c = 0; c < cfg_.EffectiveCores(); ++c) {
        cores.push_back(ProcSchedLine{c, sched_.context_switches(c), sched_.runqueue_len(c),
                                      sched_.steals(c), sched_.migrations(c),
                                      (1.0 - machine_.Utilization(c)) * 100.0});
      }
      std::vector<ProcTaskLine> tasks;
      for (auto& [pid, t] : tasks_) {
        ProcTaskLine l;
        l.pid = pid;
        l.name = t->name();
        l.cpu_ms = ToMs(t->cpu_time);
        l.level = t->mlfq_level;
        // stime = kernel domain; utime = user + user-lib (the split Machine
        // charges per activation).
        l.stime_ms = ToMs(t->time_by_domain[static_cast<int>(TimeDomain::kKernel)]);
        l.utime_ms = ToMs(t->time_by_domain[static_cast<int>(TimeDomain::kUser)] +
                          t->time_by_domain[static_cast<int>(TimeDomain::kUserLib)]);
        l.syscalls = t->syscall_count;
        l.blocked_ms = ToMs(t->blocked_time);
        tasks.push_back(std::move(l));
      }
      return FormatSchedStat(cores, tasks);
    });
    trace_dev_ = std::make_unique<TraceDev>(trace_);
    vfs_->RegisterDevice("trace", trace_dev_.get());

    // USB keyboard (the boot-time hog) and Game HAT buttons.
    usb_kbd_ = std::make_unique<UsbKbdDriver>(board_, machine_, *events_);
    if (cfg_.HasUsb() && board_.config().usb_keyboard_present) {
      usb_time = usb_kbd_->Init(now + r.firmware + core + r.fb + fs_time);
      board_.intc().Enable(kIrqUsb);
    }
    gpio_buttons_ = std::make_unique<GpioButtonDriver>(board_, *events_);
    if (board_.config().game_hat_present) {
      gpio_buttons_->Init();
      board_.intc().Enable(kIrqGpio);
    }
    if (cfg_.HasAudio()) {
      fs_time += audio_driver_->Init(44100);
      board_.intc().Enable(kIrqDma0);
    }
  }

  // Prototype 5: SD card + FAT32 under /d, window manager.
  if (cfg_.HasSd()) {
    sd_driver_ = std::make_unique<SdDriver>(board_, cfg_);
    fs_time += sd_driver_->Init();
    std::uint64_t first = 0, count = 0;
    Cycles part_burn = 0;
    if (sd_driver_->ReadPartition(1, &first, &count, &part_burn)) {
      fs_time += part_burn;
      sd_part_ = sd_driver_->OpenPartition(first, count);
      sd_dev_ = bcache_->AddDevice(wrap_fault(sd_part_.get()), "sd");
      RegisterBlockDevMetrics(sd_dev_);
      fat_ = std::make_unique<FatVolume>(*bcache_, sd_dev_, cfg_);
      Cycles mount_burn = 0;
      if (fat_->Mount(&mount_burn) == 0) {
        vfs_->MountFat(fat_.get());
      }
      fs_time += mount_burn;
    }
  }
  // USB mass storage (the §4.4 future-work class): enumerate the thumb
  // drive, mount its FAT volume at /u.
  if (cfg_.HasFat32() && board_.usb_storage() != nullptr) {
    usb_storage_driver_ = std::make_unique<UsbStorageDriver>(*board_.usb_storage());
    Cycles msc_time = usb_storage_driver_->Init();
    usb_time += msc_time;
    if (usb_storage_driver_->ready()) {
      usb_dev_ = bcache_->AddDevice(wrap_fault(usb_storage_driver_.get()), "usb");
      RegisterBlockDevMetrics(usb_dev_);
      usb_fat_ = std::make_unique<FatVolume>(*bcache_, usb_dev_, cfg_);
      Cycles mb = 0;
      if (usb_fat_->Mount(&mb) == 0) {
        vfs_->MountUsbFat(usb_fat_.get());
      }
      usb_time += mb;
    }
  }

  if (cfg_.HasWm()) {
    wm_ = std::make_unique<WindowManager>(*this);
    vfs_->RegisterDevice("surface", wm_.get());
    // With a WM, /dev/event1 dispatches to the focused window (§4.5).
    vfs_->RegisterDevice("event1", wm_->event_node());
  }

  // Network stack (proto5): the NIC driver + TCP/IP over the simulated MAC.
  if (cfg_.HasNet() && board_.nic() != nullptr) {
    net_ = std::make_unique<NetStack>(cfg_, sched_, board_.clock(), board_.events(), trace_,
                                      metrics_, *board_.nic());
    net_->Init();
    board_.intc().Enable(kIrqEth);
    vfs_->SetSocketCloser([this](const std::shared_ptr<Socket>& s) { net_->CloseSocket(s); });
    vfs_->RegisterProc("netstat", [this] { return net_->NetstatText(); });
    vfs_->RegisterProcWriter("netstat",
                             [this](const std::string& text) { return net_->Control(text); });
  }

  r.core = core;
  r.fs = fs_time;
  r.usb = usb_time;
  r.total = r.firmware + r.core + r.fb + r.fs + r.usb;
  board_.clock().AdvanceTo(now + r.total);

  // The window manager runs as a kernel thread (§4.5).
  if (wm_ != nullptr) {
    wm_->StartThread();
  }

  // The write-back flusher runs as a kernel thread too: wake periodically,
  // write back buffers that have been dirty longer than the age threshold.
  if (cfg_.HasFiles() && cfg_.HasMultitasking() && cfg_.opt_writeback_cache) {
    CreateKernelTask("bflush", [this] { FlusherBody(); });
  }

  // Hung-task watchdog: seed every core's tick stamp with boot-end time (a
  // zero stamp means "never ticked" and is skipped), then start the scanner
  // thread on core 0 so a wedge elsewhere cannot starve the scanner itself.
  for (unsigned c = 0; c < cfg_.EffectiveCores(); ++c) {
    wd_last_tick_[c] = board_.clock().now();
  }
  if (cfg_.watchdog_enabled && cfg_.HasMultitasking()) {
    CreateKernelTask("watchdog", [this] { WatchdogBody(); }, /*core_hint=*/0);
  }
  if (cfg_.prof_enabled) {
    profiler_.Start(board_.clock().now());
  }

  booted_ = true;
  return r;
}

void Kernel::RegisterBlockDevMetrics(int dev) {
  std::string pfx = "block." + bcache_->stats(dev).name + ".";
  // Gauges are sampled outside the metrics lock, so stats(dev) taking the
  // bcache lock in the callback keeps "metrics" a lockdep leaf.
  metrics_.Gauge(pfx + "reads", [this, dev] { return bcache_->stats(dev).reads; });
  metrics_.Gauge(pfx + "writes", [this, dev] { return bcache_->stats(dev).writes; });
  metrics_.Gauge(pfx + "blocks_read", [this, dev] { return bcache_->stats(dev).blocks_read; });
  metrics_.Gauge(pfx + "blocks_written",
                 [this, dev] { return bcache_->stats(dev).blocks_written; });
  metrics_.Gauge(pfx + "hits", [this, dev] { return bcache_->stats(dev).hits; });
  metrics_.Gauge(pfx + "misses", [this, dev] { return bcache_->stats(dev).misses; });
  metrics_.Gauge(pfx + "writebacks", [this, dev] { return bcache_->stats(dev).writebacks; });
  metrics_.Gauge(pfx + "merged", [this, dev] { return bcache_->stats(dev).merged; });
  metrics_.Gauge(pfx + "queue_depth_hw",
                 [this, dev] {
                   return static_cast<std::uint64_t>(bcache_->stats(dev).queue_depth_hw);
                 });
  metrics_.Gauge(pfx + "dirty",
                 [this, dev] { return static_cast<std::uint64_t>(bcache_->DirtyCount(dev)); });
  metrics_.Gauge(pfx + "io_retries", [this, dev] { return bcache_->stats(dev).io_retries; });
  metrics_.Gauge(pfx + "io_errors", [this, dev] { return bcache_->stats(dev).io_errors; });
  metrics_.Gauge(pfx + "io_timeouts", [this, dev] { return bcache_->stats(dev).io_timeouts; });
}

void Kernel::FlusherBody() {
  for (;;) {
    Task* cur = CurrentTask();
    if (cur->killed) {
      return;
    }
    // Journal first: the time-triggered group commit and one checkpoint
    // slice (the pipelined drain) ride the same flusher cadence.
    if (journal_ != nullptr) {
      ChargeCurrent(journal_->Tick(Now()));
    }
    ChargeCurrent(bcache_->FlushAged(Now(), Ms(cfg_.bcache_dirty_age_ms)));
    KSleepMs(cfg_.bcache_flush_interval_ms);
  }
}

// --- Tasks ---------------------------------------------------------------------

Task* Kernel::NewTask(const std::string& name, bool kernel_task) {
  Pid pid = next_pid_++;
  auto t = std::make_unique<Task>(pid, name, kernel_task);
  Task* raw = t.get();
  tasks_[pid] = std::move(t);
  return raw;
}

Task* Kernel::CreateKernelTask(const std::string& name, std::function<void()> body,
                               int core_hint) {
  Task* t = NewTask(name, /*kernel_task=*/true);
  t->AttachFiber(std::make_unique<TaskFiber>([this, t, body = std::move(body)] {
    g_current_task = t;
    // Root frame for the profiler: every kernel-thread sample symbolizes at
    // least to here.
    StackFrame root(t, "kthread_main");
    try {
      body();
      DoExit(t, 0);
    } catch (const TaskExitUnwind&) {
    } catch (const TaskKilledUnwind&) {
      if (!shutting_down_) {
        DoExitNoThrow(t, -1);
      }
    }
  }));
  sched_.AddNew(t, core_hint);
  return t;
}

void Kernel::AttachUserEntry(Task* t, std::function<int()> body) {
  t->AttachFiber(std::make_unique<TaskFiber>([this, t, body = std::move(body)] {
    g_current_task = t;
    // Root frame for the profiler (see CreateKernelTask).
    StackFrame root(t, "user_main");
    try {
      int rc = body();
      DoExit(t, rc);
    } catch (const TaskExitUnwind&) {
    } catch (const TaskKilledUnwind&) {
      if (!shutting_down_) {
        DoExitNoThrow(t, -1);
      }
    }
  }));
}

Task* Kernel::StartUserProgram(const std::string& path, const std::vector<std::string>& argv) {
  VOS_CHECK_MSG(cfg_.HasVm(), "user programs need Prototype 3+");
  Task* t = NewTask(path, /*kernel_task=*/false);
  AttachUserEntry(t, [this, path, argv]() -> int {
    std::int64_t r = SysExec(path, argv);
    // Exec only returns on failure.
    Printk("init: exec %s failed (%s)\n", path.c_str(), ErrName(r));
    return -1;
  });
  sched_.AddNew(t);
  return t;
}

void Kernel::DoExitNoThrow(Task* cur, int code) {
  cur->exit_code = code;
  // Close files.
  if (vfs_ != nullptr) {
    for (FilePtr& f : cur->fds) {
      if (f != nullptr) {
        vfs_->Close(cur, f);
      }
    }
  }
  cur->fds.clear();
  cur->mm.reset();
  // Flush the exiting task's core's kmalloc magazines back to the depot so
  // cached objects are not stranded on a core that may now go idle.
  if (kmalloc_ != nullptr) {
    kmalloc_->DrainCore(cur->core);
  }
  // Reparent children to init (pid 1).
  Task* init = FindTask(1);
  for (auto& [pid, t] : tasks_) {
    if (t->parent == cur) {
      t->parent = init;
      if (t->state == TaskState::kZombie && init != nullptr) {
        sched_.Wakeup(init);
      }
    }
  }
  cur->state = TaskState::kZombie;
  if (cur->parent != nullptr) {
    sched_.Wakeup(cur->parent);
  }
  trace_.Emit(Now(), cur->core, TraceEvent::kCtxSwitch, cur->pid(), 0xdead);
}

void Kernel::DoExit(Task* cur, int code) {
  DoExitNoThrow(cur, code);
  throw TaskExitUnwind{};
}

void Kernel::ReapTask(Pid pid) {
  auto it = tasks_.find(pid);
  VOS_CHECK(it != tasks_.end());
  VOS_CHECK(it->second->state == TaskState::kZombie);
  tasks_.erase(it);  // destroys the Task and joins its fiber thread
}

void Kernel::KillFromHost(Pid pid) {
  Task* t = FindTask(pid);
  if (t == nullptr || t->state == TaskState::kZombie) {
    return;
  }
  t->killed = true;
  // Kill the whole family: threads and forked workers die with it.
  for (auto& [cpid, child] : tasks_) {
    if (child->parent == t) {
      child->killed = true;
      if (child->state == TaskState::kSleeping) {
        sched_.WakeTask(child.get());
      }
    }
  }
  if (t->state == TaskState::kSleeping) {
    sched_.WakeTask(t);
  }
}

std::int64_t Kernel::ReapZombie(Pid pid) {
  Task* t = FindTask(pid);
  if (t == nullptr || t->state != TaskState::kZombie) {
    return kErrNoEnt;
  }
  int code = t->exit_code;
  ReapTask(pid);
  return code;
}

Task* Kernel::FindTask(Pid pid) {
  auto it = tasks_.find(pid);
  return it == tasks_.end() ? nullptr : it->second.get();
}

std::vector<Task*> Kernel::AllTasks() {
  std::vector<Task*> out;
  out.reserve(tasks_.size());
  for (auto& [pid, t] : tasks_) {
    out.push_back(t.get());
  }
  return out;
}

void Kernel::KSleepMs(std::uint64_t ms) {
  Task* cur = CurrentTask();
  VOS_CHECK_MSG(cur != nullptr, "KSleepMs outside task context");
  Cycles wake_at = Now() + Ms(ms);
  vtimers_->AddAt(wake_at, [this, cur] { sched_.WakeTask(cur); });
  sched_.Sleep(cur, cur);
}

std::int64_t Kernel::LoadVelf(const std::string& path, std::vector<std::uint8_t>* out,
                              Cycles* burn) {
  // Kernel-bundled blob fallback: Prototype 3's file-less exec, and also the
  // escape hatch for programs injected after the ramdisk image was built.
  auto from_blob = [&]() -> std::int64_t {
    std::vector<std::string> parts = SplitPath(path);
    std::string base = parts.empty() ? path : parts.back();
    auto it = boot_blobs_.find(base);
    if (it == boot_blobs_.end()) {
      return kErrNoEnt;
    }
    *out = it->second;
    *burn += Cycles(out->size()) / 2;  // copy from the kernel image region
    return 0;
  };
  if (!cfg_.HasFiles()) {
    return from_blob();
  }
  FilePtr f;
  Task* cur = CurrentTask();
  std::int64_t r = vfs_->Open(cur, path, kORdonly, &f, burn);
  if (r < 0) {
    return from_blob() == 0 ? 0 : r;
  }
  Stat st;
  vfs_->FStat(*f, &st, burn);
  out->resize(st.size);
  std::int64_t n = vfs_->Read(cur, *f, out->data(), st.size, burn);
  vfs_->Close(cur, f);
  if (n < 0) {
    return n;
  }
  out->resize(static_cast<std::size_t>(n));
  return 0;
}

// --- MachineClient ---------------------------------------------------------------

Task* Kernel::PickNext(unsigned core) { return sched_.PickNext(core); }

void Kernel::OnTaskStopped(unsigned core, Task* t, TaskFiber::StopReason r) {
  // Watchdog bookkeeping: the task just ran, so it is not hung; remember it
  // as the core's last occupant (the prime suspect if the core stalls).
  t->last_scheduled = board_.clock().now();
  t->watchdog_barked = false;
  if (core < kMaxCores) {
    wd_last_dispatched_[core] = t->pid();
  }
  sched_.OnTaskStopped(core, t, r);
}

void Kernel::DebugWedgeCore(unsigned core, bool wedged) {
  if (core >= cfg_.EffectiveCores()) {
    return;
  }
  wedged_core_[core] = wedged;
  sched_.SetCoreWedged(core, wedged);
  if (!wedged) {
    // Recovery: freshen the stamp so the just-ended stall is not barked at
    // again before the next real tick lands.
    wd_last_tick_[core] = board_.clock().now();
  }
}

void Kernel::WatchdogBark(Task* offender, unsigned core, Cycles stalled, const char* what) {
  watchdog_bark_counter_->Inc();
  trace_.Emit(Now(), core, TraceEvent::kWatchdogBark,
              offender != nullptr ? offender->pid() : -1, stalled, core);
  std::string bt = offender != nullptr ? UnwindTask(*offender) : "<no task to blame>\n";
  Printk("watchdog: BUG: %s on core %u (stalled %llu ms)\n%s", what, core,
         static_cast<unsigned long long>(ToMs(stalled)), bt.c_str());
}

void Kernel::WatchdogBody() {
  const Cycles thresh = Ms(cfg_.watchdog_thresh_ms);
  for (;;) {
    Task* cur = CurrentTask();
    if (cur->killed) {
      return;
    }
    Cycles now = Now();
    // Core-level softlockup check: a core whose timer tick went stale is
    // wedged (IRQs masked or the machine loop starving it). One bark per
    // stall; the latch clears when ticks flow again.
    bool stale[kMaxCores] = {};
    for (unsigned c = 0; c < cfg_.EffectiveCores(); ++c) {
      if (wd_last_tick_[c] != 0 && now > wd_last_tick_[c] + thresh) {
        stale[c] = true;
        if (!wd_core_barked_[c]) {
          wd_core_barked_[c] = true;
          WatchdogBark(FindTask(wd_last_dispatched_[c]), c, now - wd_last_tick_[c],
                       "soft lockup - core tick stalled");
        }
      } else {
        wd_core_barked_[c] = false;
      }
    }
    // Hung-task check: runnable but not dispatched within the threshold.
    // Tasks homed on a stale core are the same incident as the core bark —
    // exactly one bark per root cause.
    for (Task* t : AllTasks()) {
      if (t == cur || t->state != TaskState::kRunnable || t->watchdog_barked) {
        continue;
      }
      if (t->core < kMaxCores && stale[t->core]) {
        continue;
      }
      if (t->runnable_since != 0 && now > t->runnable_since + thresh) {
        t->watchdog_barked = true;
        WatchdogBark(t, t->core, now - t->runnable_since, "hung task - runnable but starved");
      }
    }
    KSleepMs(cfg_.watchdog_poll_ms);
  }
}

void Kernel::TickHandler(unsigned core, Cycles now) {
  board_.core_timer(core).ClearIrq();
  board_.core_timer(core).Arm(now, cfg_.tick_interval);
  if (wedged_core_[core]) {
    // Debug wedge: the core runs with IRQs "masked" — the tick is acked and
    // re-armed (the hardware keeps firing) but not serviced, so the watchdog
    // sees the stamp go stale. No work, no charge.
    return;
  }
  wd_last_tick_[core] = now;
  machine_.ChargeIrq(core, cfg_.cost.irq_entry + cfg_.cost.timer_tick_work);
  // MLFQ periodic boost runs off each core's own tick, against its own
  // runqueue lock only.
  sched_.OnTick(core, now);
  if (core == 0) {
    timekeeping_.Tick();
  }
}

void Kernel::OnIrq(unsigned core, unsigned irq) {
  trace_.Emit(board_.clock().now(), core, TraceEvent::kIrqEnter, 0, irq);
  irq_counter_->Inc();
  Cycles debt_before = machine_.irq_debt(core);
  Cycles now = board_.clock().now();
  if (irq >= kIrqCoreTimerBase && irq < kIrqCoreTimerBase + kMaxCores) {
    TickHandler(irq - kIrqCoreTimerBase, now);
  } else {
    switch (irq) {
      case kIrqSysTimerC1:
        machine_.ChargeIrq(core, cfg_.cost.irq_entry);
        vtimers_->OnIrq(now);
        break;
      case kIrqUsb:
        machine_.ChargeIrq(core, cfg_.cost.irq_entry);
        usb_kbd_->OnIrq(now);
        break;
      case kIrqDma0:
        machine_.ChargeIrq(core, cfg_.cost.irq_entry);
        audio_driver_->OnDmaIrq(now);
        break;
      case kIrqAux:
        machine_.ChargeIrq(core, cfg_.cost.irq_entry);
        console_->OnRxIrq();
        break;
      case kIrqGpio:
        machine_.ChargeIrq(core, cfg_.cost.irq_entry);
        gpio_buttons_->OnIrq(now);
        break;
      case kIrqEth:
        machine_.ChargeIrq(core, cfg_.cost.irq_entry + net_->OnNicIrq(now));
        break;
      default:
        VOS_CHECK_MSG(false, "unexpected IRQ");
    }
  }
  // Handler duration == the cycles the handler charged to this core.
  irq_lat_hist_->Record(machine_.irq_debt(core) - debt_before);
  trace_.Emit(board_.clock().now(), core, TraceEvent::kIrqExit, 0, irq);
}

void Kernel::OnFiq(unsigned core) {
  // Panic button (§5.1): dump call stacks and registers from all cores over
  // the UART, even if the kernel is deadlocked.
  std::vector<const Task*> running;
  for (unsigned c = 0; c < cfg_.EffectiveCores(); ++c) {
    running.push_back(machine_.running(c));
  }
  last_panic_dump_ = "FIQ panic dump (core " + std::to_string(core) + ")\n" + UnwindAll(running);
  Cycles burn = klog_.Puts(board_.clock().now(), last_panic_dump_);
  machine_.ChargeIrq(core, burn);
}

}  // namespace vos
