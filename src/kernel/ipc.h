// Zero-copy futex IPC (the "Scheduling & IPC" refactor): a byte ring that
// lives in memory shared by every task that maps the channel, plus
// futex-style wait/wake syscalls built on the scheduler's sleep channels.
//
// The split mirrors a real futex: the data path (TryPush/TryPop on the
// mapped ring) runs entirely in user context with no kernel entry and no
// kernel copy — the caller's buffer moves straight into the shared ring,
// one copy total, versus a pipe's two copies and a syscall per chunk. The
// kernel is only entered to park (`ipc_wait`) or unpark (`ipc_wake`), and
// user code elides even the wake syscall when nobody is parked (the
// `waiters` count, the classic futex uncontended fast path).
//
// Lost wakeups are handled the futex way, with version words: `pushed()` and
// `popped()` are monotonic byte counters. A consumer that saw pushed()==p
// and found the ring empty calls ipc_wait(id, kData, p); if a producer
// pushed (and woke) in between, the kernel sees pushed()!=p and returns
// immediately instead of sleeping — wake-before-wait cannot strand a waiter.
// In the simulator, token serialization plays the role of the atomics a real
// futex word needs.
#ifndef VOS_SRC_KERNEL_IPC_H_
#define VOS_SRC_KERNEL_IPC_H_

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/kernel/kconfig.h"
#include "src/kernel/racedet.h"
#include "src/kernel/sched.h"
#include "src/kernel/spinlock.h"

namespace vos {

constexpr int kMaxIpcChannels = 64;
constexpr std::size_t kMaxIpcRingBytes = 1u << 22;  // 4 MiB sanity ceiling

// Which side of the ring a wait/wake refers to: consumers wait for kData
// (the pushed counter to move), producers wait for kSpace (popped to move).
enum class IpcSide : int { kData = 0, kSpace = 1 };

class IpcRing {
 public:
  explicit IpcRing(std::size_t capacity) : buf_(capacity) {}  // racedet: ok (constructor init)

  // User-side fast path: bulk move into/out of the shared ring. Returns the
  // byte count actually moved (0 when full/empty). Never blocks and never
  // enters the kernel — callers charge their own copy cost and fall back to
  // ipc_wait when they can't make progress.
  std::size_t TryPush(const std::uint8_t* src, std::size_t n);
  std::size_t TryPop(std::uint8_t* dst, std::size_t n);

  // Futex words (monotonic byte counters). Sampled lock-free from user
  // context by design: token serialization stands in for the atomics a real
  // futex word needs, and the version-compare in Wait() absorbs staleness.
  std::uint64_t pushed() const { return pushed_; }  // racedet: ok (lock-free futex word)
  std::uint64_t popped() const { return popped_; }  // racedet: ok (lock-free futex word)
  std::uint64_t word(IpcSide side) const {
    return side == IpcSide::kData ? pushed_ : popped_;  // racedet: ok (lock-free futex word)
  }

  std::size_t size() const { return count_; }  // racedet: ok (lock-free ring cursor sample)
  std::size_t capacity() const { return buf_.size(); }  // racedet: ok (stable after Reset)
  bool empty() const { return count_ == 0; }  // racedet: ok (lock-free ring cursor sample)
  bool full() const {
    return count_ == buf_.size();  // racedet: ok (lock-free ring cursor sample)
  }

  // Tasks currently parked on `side` — lets user code skip the wake syscall
  // entirely when nobody is waiting (the uncontended futex fast path).
  int waiters(IpcSide side) const {
    return waiters_[static_cast<int>(side)];  // racedet: ok (uncontended fast-path sample)
  }

 private:
  friend class IpcTable;

  void Reset(std::size_t capacity) {
    // Recycled under the ipc table lock; the cursors themselves are
    // lock-free state, so the whole wipe sits in one exclusion region.
    RD_EXCLUDE_SCOPE("ring recycle under the ipc lock; cursors are lock-free by design");
    buf_.assign(capacity, 0);
    head_ = count_ = 0;
    pushed_ = popped_ = 0;
    waiters_[0] = waiters_[1] = 0;
  }

  // The ring cursors are the canonical racedet *exclusion* example: the data
  // path is lock-free in user context on purpose (that is the whole point of
  // futex IPC), and the futex version words make the races benign. Marked
  // shared so every touch is forced through an explicit, documented escape.
  std::vector<std::uint8_t> buf_;   // racedet: shared (lock-free; futex-versioned)
  std::size_t head_ = 0;            // racedet: shared (lock-free; futex-versioned)
  std::size_t count_ = 0;           // racedet: shared (lock-free; futex-versioned)
  std::uint64_t pushed_ = 0;        // racedet: shared (lock-free; futex-versioned)
  std::uint64_t popped_ = 0;        // racedet: shared (lock-free; futex-versioned)
  int waiters_[2] = {0, 0};         // racedet: shared (guarded by IpcTable lock_)
  char chan_[2] = {0, 0};  // sleep channels: [kData], [kSpace]
};

// The channel table behind the ipc_* syscalls, shaped like SemTable: ids
// into a fixed slot array, one "ipc" lock guarding table state and the
// wait/wake bookkeeping. Rings are recycled rather than freed on Destroy so
// a waiter that raced a destroy can still observe the slot died (kErrInval)
// without touching freed memory.
class IpcTable {
 public:
  IpcTable(Sched& sched, const KernelConfig& cfg) : sched_(sched), cfg_(cfg) {}

  // Returns a new channel id, or kErrInval / kErrNoSpace.
  std::int64_t Create(std::size_t bytes);
  std::int64_t Destroy(int id);

  // The mapped view of the ring (nullptr for a bad id).
  IpcRing* Ring(int id);

  // Futex wait: sleeps until `side`'s word differs from `expected` or a wake
  // arrives (spurious wakeups allowed; callers loop). Returns 0 on wake or
  // when the word already moved, kErrInval if the id is bad or the channel
  // is destroyed while waiting, kErrIntr when the task is killed (EINTR).
  std::int64_t Wait(Task* cur, int id, IpcSide side, std::uint64_t expected);
  // Wakes every task parked on `side`. Returns the count woken.
  std::int64_t Wake(int id, IpcSide side);

  // Aggregate counters for the metrics gauges (token-serialized snapshots).
  std::uint64_t waits_slept() const { return waits_slept_; }  // racedet: ok (gauge snapshot)
  std::uint64_t waits_immediate() const {
    return waits_immediate_;  // racedet: ok (gauge snapshot)
  }
  std::uint64_t wakes() const { return wakes_; }  // racedet: ok (gauge snapshot)
  std::uint64_t woken_tasks() const { return woken_tasks_; }  // racedet: ok (gauge snapshot)

 private:
  struct Slot {
    bool used = false;
    std::unique_ptr<IpcRing> ring;
  };

  bool ValidId(int id) const {
    return id >= 0 && id < kMaxIpcChannels && slots_[id].used;
  }

  Sched& sched_;
  const KernelConfig& cfg_;
  SpinLock lock_{"ipc"};
  std::array<Slot, kMaxIpcChannels> slots_{};
  std::uint64_t waits_slept_ = 0;      // racedet: shared (guarded by lock_)
  std::uint64_t waits_immediate_ = 0;  // racedet: shared (guarded by lock_)
  std::uint64_t wakes_ = 0;            // racedet: shared (guarded by lock_)
  std::uint64_t woken_tasks_ = 0;      // racedet: shared (guarded by lock_)
};

}  // namespace vos

#endif  // VOS_SRC_KERNEL_IPC_H_
