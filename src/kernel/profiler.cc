#include "src/kernel/profiler.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "src/base/status.h"
#include "src/kernel/racedet.h"
#include "src/kernel/trace.h"

namespace vos {

namespace {
constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t FnvMix(std::uint64_t h, std::uint64_t v) {
  h ^= v;
  return h * kFnvPrime;
}
}  // namespace

Profiler::Profiler(const KernelConfig& cfg, TraceRing* trace)
    : cfg_(cfg),
      trace_(trace),
      period_(cfg.prof_hz == 0 ? kCyclesPerSec : kCyclesPerSec / cfg.prof_hz),
      cap_(cfg.prof_ring_capacity == 0 ? 1 : cfg.prof_ring_capacity),
      max_frames_(std::min(cfg.prof_max_frames == 0 ? 1u : cfg.prof_max_frames,
                           kProfMaxFrames)) {
  for (auto& r : rings_) {
    r.slots.resize(cap_);
  }
}

void Profiler::Start(Cycles now) {
  if (running_) {
    return;
  }
  for (auto& c : clocks_) {
    c.next_due = now + period_;
  }
  running_ = true;
}

void Profiler::Stop() { running_ = false; }

void Profiler::Reset() {
  for (auto& r : rings_) {
    // Seqlock bracket so a concurrent Dump snapshot sees torn-or-retry, not
    // a half-cleared window (same discipline as TraceRing::Clear).
    r.seq.fetch_add(1, std::memory_order_acq_rel);
    r.head.store(0, std::memory_order_relaxed);
    r.next_slot = 0;
    r.seq.fetch_add(1, std::memory_order_release);
  }
  samples_.store(0, std::memory_order_relaxed);
  offcpu_samples_.store(0, std::memory_order_relaxed);
  symbolized_.store(0, std::memory_order_relaxed);
  SpinGuard g(lock_);
  RD_WRITE(folds_).clear();
}

std::int64_t Profiler::Command(const std::string& text, Cycles now) {
  // First whitespace-delimited word; /proc writers hand us the raw text.
  std::string cmd;
  for (char ch : text) {
    if (ch == ' ' || ch == '\t' || ch == '\n' || ch == '\r') {
      if (!cmd.empty()) {
        break;
      }
      continue;
    }
    cmd += ch;
  }
  if (cmd == "start") {
    Start(now);
    return 0;
  }
  if (cmd == "stop") {
    Stop();
    return 0;
  }
  if (cmd == "reset") {
    Reset();
    return 0;
  }
  return kErrInval;
}

void Profiler::CaptureFrames(const std::vector<const char*>& stack, ProfSample* s) const {
  // Root-first copy, truncated to the configured depth — a fresh fork's
  // shallow stack and an over-deep stack both yield a valid frame list.
  std::size_t n = std::min<std::size_t>(stack.size(), max_frames_);
  for (std::size_t i = 0; i < n; ++i) {
    s->frames[i] = stack[i];
  }
  s->nframes = static_cast<std::uint8_t>(n);
}

std::uint64_t Profiler::HashStack(const ProfSample& s) {
  std::uint64_t h = kFnvOffset;
  h = FnvMix(h, static_cast<std::uint64_t>(s.pid));
  h = FnvMix(h, s.offcpu ? 1 : 0);
  for (unsigned i = 0; i < s.nframes; ++i) {
    h = FnvMix(h, reinterpret_cast<std::uintptr_t>(s.frames[i]));
  }
  return h;
}

void Profiler::FoldLocked(const ProfSample& s, const std::string& name) {
  Fold& f = RD_WRITE(folds_)[s.stack_hash];
  if (f.count == 0) {
    f.pid = s.pid;
    f.name = name;
    f.offcpu = s.offcpu;
    f.nframes = s.nframes;
    f.frames = s.frames;
  }
  f.weight += s.weight;
  ++f.count;
}

void Profiler::EmitSample(const ProfSample& s, const std::string& name) {
  CoreRing& r = rings_[s.core];
  // Seqlock write side; single producer per core by token serialization
  // (trace.cc documents the fence pairing).
  const std::uint64_t h = r.head.load(std::memory_order_relaxed);
  const std::uint64_t sq = r.seq.load(std::memory_order_relaxed);
  r.seq.store(sq + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  r.slots[r.next_slot] = s;
  r.next_slot = r.next_slot + 1 == cap_ ? 0 : r.next_slot + 1;
  r.head.store(h + 1, std::memory_order_release);
  r.seq.store(sq + 2, std::memory_order_release);

  samples_.fetch_add(1, std::memory_order_relaxed);
  if (s.offcpu) {
    offcpu_samples_.fetch_add(1, std::memory_order_relaxed);
  }
  if (s.nframes > 0) {
    symbolized_.fetch_add(1, std::memory_order_relaxed);
  }
  {
    SpinGuard g(lock_);
    FoldLocked(s, name);
  }
  if (trace_ != nullptr) {
    trace_->Emit(s.ts, s.core, TraceEvent::kProfSample, s.pid, s.stack_hash, s.weight);
  }
}

unsigned Profiler::OnSpan(unsigned core, Task* task, Cycles t0, Cycles t1) {
  (void)t0;  // boundaries missed in unreported gaps coalesce into this span
  if (!running_ || core >= kMaxCores) {
    return 0;
  }
  CoreClock& ck = clocks_[core];
  std::uint64_t hits = 0;
  while (ck.next_due <= t1) {
    ck.next_due += period_;
    ++hits;
  }
  if (hits == 0) {
    return 0;
  }
  ProfSample s;
  s.ts = t1;
  s.core = static_cast<std::uint16_t>(core);
  s.weight = hits;
  static const char* kIdleFrame = "<idle>";
  std::string name;
  if (task != nullptr) {
    s.pid = task->pid();
    CaptureFrames(task->call_stack, &s);
    name = task->name();
  } else {
    s.pid = 0;
    s.frames[0] = kIdleFrame;
    s.nframes = 1;
    name = "idle";
  }
  s.stack_hash = HashStack(s);
  EmitSample(s, name);
  return 1;
}

void Profiler::OnSleep(Task* t) {
  if (!running_ || !cfg_.prof_offcpu) {
    return;
  }
  t->sleep_stack = t->call_stack;
  if (t->sleep_stack.size() > max_frames_) {
    t->sleep_stack.resize(max_frames_);
  }
}

void Profiler::OnWake(Task* t, Cycles blocked) {
  if (!running_ || !cfg_.prof_offcpu) {
    t->sleep_stack.clear();
    return;
  }
  ProfSample s;
  s.ts = t->sleep_since + blocked;
  s.pid = t->pid();
  s.core = static_cast<std::uint16_t>(t->core);
  s.offcpu = true;
  // Off-CPU weight is blocked time in microseconds (≥1 so even sub-µs parks
  // register), keeping the folded numbers human-scale next to sample counts.
  s.weight = std::max<std::uint64_t>(blocked / kCyclesPerUs, 1);
  CaptureFrames(t->sleep_stack, &s);
  t->sleep_stack.clear();
  s.stack_hash = HashStack(s);
  EmitSample(s, t->name());
}

std::vector<ProfSample> Profiler::DumpSamples() const {
  std::vector<ProfSample> out;
  std::vector<ProfSample> tmp;
  for (const CoreRing& r : rings_) {
    for (;;) {
      std::uint64_t s0 = r.seq.load(std::memory_order_acquire);
      if (s0 & 1) {
        continue;
      }
      std::uint64_t h = r.head.load(std::memory_order_acquire);
      std::uint64_t n = std::min<std::uint64_t>(h, cap_);
      tmp.clear();
      for (std::uint64_t i = 0; i < n; ++i) {
        tmp.push_back(r.slots[(h - n + i) % cap_]);
      }
      std::atomic_thread_fence(std::memory_order_acquire);
      if (r.seq.load(std::memory_order_relaxed) == s0) {
        out.insert(out.end(), tmp.begin(), tmp.end());
        break;
      }
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const ProfSample& a, const ProfSample& b) { return a.ts < b.ts; });
  return out;
}

std::uint64_t Profiler::dropped() const {
  std::uint64_t t = 0;
  for (const CoreRing& r : rings_) {
    const std::uint64_t h = r.head.load(std::memory_order_relaxed);
    t += h > cap_ ? h - cap_ : 0;
  }
  return t;
}

std::string Profiler::ExportText() const {
  std::uint64_t total = samples();
  std::uint64_t sym = symbolized();
  double sym_pct =
      total == 0 ? 100.0 : 100.0 * static_cast<double>(sym) / static_cast<double>(total);
  char hdr[192];
  std::snprintf(hdr, sizeof(hdr),
                "# prof running %d hz %u samples %" PRIu64 " offcpu %" PRIu64
                " dropped %" PRIu64 " symbolized_pct %.1f\n",
                running_ ? 1 : 0, cfg_.prof_hz, total, offcpu_samples(), dropped(), sym_pct);
  std::string out = hdr;

  std::vector<Fold> folds;
  {
    SpinGuard g(lock_);
    folds.reserve(RD_READ(folds_).size());
    for (const auto& [hash, f] : RD_READ(folds_)) {
      folds.push_back(f);
    }
  }
  // Heaviest stacks first; ties broken by pid so the dump is deterministic.
  std::sort(folds.begin(), folds.end(), [](const Fold& a, const Fold& b) {
    if (a.weight != b.weight) {
      return a.weight > b.weight;
    }
    if (a.pid != b.pid) {
      return a.pid < b.pid;
    }
    return a.offcpu < b.offcpu;
  });
  for (const Fold& f : folds) {
    out += f.offcpu ? "offcpu;" : "oncpu;";
    out += f.name.empty() ? "?" : f.name;
    for (unsigned i = 0; i < f.nframes; ++i) {
      out += ';';
      out += f.frames[i];
    }
    out += ' ';
    out += std::to_string(f.weight);
    out += '\n';
  }
  return out;
}

}  // namespace vos
