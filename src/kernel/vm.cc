#include "src/kernel/vm.h"

#include <cstring>

#include "src/base/assert.h"

namespace vos {

namespace {
std::uint64_t L1Index(VirtAddr va) { return va >> (kPageShift + 9); }  // 2 MB per L2
std::uint64_t L2Index(VirtAddr va) { return (va >> kPageShift) & 511; }
}  // namespace

int FrameRefs::Dec(PhysAddr pa) {
  auto it = refs_.find(pa);
  VOS_CHECK_MSG(it != refs_.end() && it->second > 0, "frame refcount underflow");
  int n = --it->second;
  if (n == 0) {
    refs_.erase(it);
  }
  return n;
}

int FrameRefs::Count(PhysAddr pa) const {
  auto it = refs_.find(pa);
  return it == refs_.end() ? 0 : it->second;
}

AddressSpace::AddressSpace(Pmm& pmm, FrameRefs& refs, const KernelConfig& cfg)
    : pmm_(pmm), refs_(refs), cfg_(cfg) {}

AddressSpace::~AddressSpace() {
  for (auto& [idx, l2] : l1_) {
    for (Pte& p : l2->pte) {
      if (p.valid() && !(p.flags & kPteDevice)) {
        FreeFrame(p.pa);
      }
    }
    if (l2->table_frame != 0) {
      pmm_.FreePage(l2->table_frame);
    }
  }
  if (arena_pa_ != 0) {
    pmm_.FreeRange(arena_pa_, arena_pages_);
  }
}

void AddressSpace::FreeFrame(PhysAddr pa) {
  // Arena-backed heap pages are freed with the arena, not individually.
  if (arena_pa_ != 0 && pa >= arena_pa_ && pa < arena_pa_ + arena_pages_ * kPageSize) {
    return;
  }
  if (refs_.Count(pa) > 0) {
    if (refs_.Dec(pa) > 0) {
      return;  // still shared
    }
  }
  pmm_.FreePage(pa);
}

AddressSpace::L2Table* AddressSpace::FindL2(VirtAddr va) const {
  auto it = l1_.find(L1Index(va));
  return it == l1_.end() ? nullptr : it->second.get();
}

AddressSpace::L2Table* AddressSpace::EnsureL2(VirtAddr va) {
  std::uint64_t idx = L1Index(va);
  auto it = l1_.find(idx);
  if (it != l1_.end()) {
    return it->second.get();
  }
  auto l2 = std::make_unique<L2Table>();
  l2->table_frame = pmm_.AllocPage();  // the table itself consumes a frame
  if (l2->table_frame == 0) {
    return nullptr;
  }
  ++stats_.table_pages;
  accrued_ += cfg_.cost.page_alloc;
  L2Table* out = l2.get();
  l1_[idx] = std::move(l2);
  return out;
}

Pte* AddressSpace::LookupMutable(VirtAddr va) {
  L2Table* l2 = FindL2(va);
  if (l2 == nullptr) {
    return nullptr;
  }
  Pte* p = &l2->pte[L2Index(va)];
  return p->valid() ? p : nullptr;
}

const Pte* AddressSpace::Lookup(VirtAddr va) const {
  L2Table* l2 = FindL2(va);
  if (l2 == nullptr) {
    return nullptr;
  }
  const Pte* p = &l2->pte[L2Index(va)];
  return p->valid() ? p : nullptr;
}

bool AddressSpace::MapPage(VirtAddr va, PhysAddr pa, std::uint8_t flags) {
  VOS_CHECK_MSG(va % kPageSize == 0, "unaligned virtual address");
  L2Table* l2 = EnsureL2(va);
  if (l2 == nullptr) {
    return false;
  }
  Pte& p = l2->pte[L2Index(va)];
  VOS_CHECK_MSG(!p.valid(), "remapping an already-mapped page");
  p.pa = pa;
  p.flags = static_cast<std::uint8_t>(flags | kPteValid);
  if (!(flags & kPteDevice)) {
    ++stats_.user_pages;
  }
  accrued_ += cfg_.cost.pte_install;
  return true;
}

bool AddressSpace::MapAnon(VirtAddr va, std::uint64_t npages, bool writable) {
  std::uint8_t flags = static_cast<std::uint8_t>(kPteUser | (writable ? kPteWrite : 0));
  for (std::uint64_t i = 0; i < npages; ++i) {
    PhysAddr pa = pmm_.AllocPage();
    if (pa == 0 || !MapPage(va + i * kPageSize, pa, flags)) {
      if (pa != 0) {
        pmm_.FreePage(pa);
      }
      for (std::uint64_t j = 0; j < i; ++j) {
        UnmapPage(va + j * kPageSize);
      }
      return false;
    }
    accrued_ += cfg_.cost.page_alloc;
  }
  return true;
}

void AddressSpace::UnmapPage(VirtAddr va) {
  L2Table* l2 = FindL2(va);
  VOS_CHECK_MSG(l2 != nullptr, "unmapping page with no table");
  Pte& p = l2->pte[L2Index(va)];
  VOS_CHECK_MSG(p.valid(), "unmapping an unmapped page");
  if (!(p.flags & kPteDevice)) {
    FreeFrame(p.pa);
    --stats_.user_pages;
  }
  p = Pte{};
  accrued_ += cfg_.cost.page_free;
}

std::optional<PhysAddr> AddressSpace::Translate(VirtAddr va) const {
  const Pte* p = Lookup(va & ~(kPageSize - 1));
  if (p == nullptr) {
    return std::nullopt;
  }
  return p->pa + (va & (kPageSize - 1));
}

std::optional<PhysAddr> AddressSpace::TranslateWrite(VirtAddr va) {
  Pte* p = LookupMutable(va & ~(kPageSize - 1));
  if (p == nullptr || !(p->flags & kPteWrite) || (p->flags & kPteCow)) {
    return std::nullopt;
  }
  return p->pa + (va & (kPageSize - 1));
}

bool AddressSpace::InStackRange(VirtAddr va) const {
  return va >= kUserStackTop - kUserStackMax && va < kUserStackTop;
}

FaultResult AddressSpace::HandleFault(VirtAddr va, bool write) {
  ++stats_.faults;
  VirtAddr page = va & ~(kPageSize - 1);

  // Kill policy: repeated faults at the same address mean the handler isn't
  // making progress (§4.3).
  if (page == last_fault_va_) {
    if (++same_fault_count_ >= 3) {
      return FaultResult::kKilled;
    }
  } else {
    last_fault_va_ = page;
    same_fault_count_ = 1;
  }

  Pte* p = LookupMutable(page);
  if (p != nullptr && write && (p->flags & kPteCow)) {
    // Break the COW share: copy the frame, take a private writable mapping.
    PhysAddr fresh = pmm_.AllocPage();
    if (fresh == 0) {
      return FaultResult::kBad;
    }
    pmm_.mem().Write(fresh, pmm_.mem().Ptr(p->pa, kPageSize), kPageSize);
    FreeFrame(p->pa);
    p->pa = fresh;
    p->flags = static_cast<std::uint8_t>((p->flags & ~kPteCow) | kPteWrite);
    ++stats_.cow_breaks;
    accrued_ += cfg_.cost.page_copy + cfg_.cost.pte_install;
    last_fault_va_ = ~VirtAddr(0);  // made progress
    return FaultResult::kCowCopied;
  }

  if (p == nullptr && InStackRange(page)) {
    // Demand-page the stack: fresh zeroed frame (stacks must be zeroed even
    // though raw DRAM is junk).
    PhysAddr pa = pmm_.AllocPage();
    if (pa == 0) {
      return FaultResult::kBad;
    }
    pmm_.mem().Fill(pa, 0, kPageSize);
    if (!MapPage(page, pa, kPteUser | kPteWrite)) {
      pmm_.FreePage(pa);
      return FaultResult::kBad;
    }
    ++stats_.demand_stack_pages;
    accrued_ += cfg_.cost.page_alloc + cfg_.cost.pte_install;
    last_fault_va_ = ~VirtAddr(0);
    return FaultResult::kMappedStack;
  }

  return FaultResult::kBad;
}

void AddressSpace::EnsureArena() {
  if (arena_pa_ != 0) {
    return;
  }
  arena_pa_ = pmm_.AllocRange(heap_reserve_pages);
  VOS_CHECK_MSG(arena_pa_ != 0, "out of contiguous memory for heap arena");
  arena_pages_ = heap_reserve_pages;
}

std::int64_t AddressSpace::Sbrk(std::int64_t delta) {
  accrued_ += cfg_.cost.sbrk_base;
  VirtAddr old = brk_;
  if (delta == 0) {
    return static_cast<std::int64_t>(old);
  }
  if (delta > 0) {
    EnsureArena();
    VirtAddr new_brk = brk_ + static_cast<std::uint64_t>(delta);
    if (new_brk > kUserHeapBase + arena_pages_ * kPageSize) {
      return -1;  // beyond the reserve
    }
    // Map any newly spanned pages to their arena frames.
    VirtAddr first = PageRoundUp(brk_);
    for (VirtAddr va = first; va < new_brk; va += kPageSize) {
      PhysAddr pa = arena_pa_ + (va - kUserHeapBase);
      if (!MapPage(va, pa, kPteUser | kPteWrite)) {
        return -1;
      }
    }
    brk_ = new_brk;
  } else {
    std::uint64_t dec = static_cast<std::uint64_t>(-delta);
    if (brk_ - kUserHeapBase < dec) {
      return -1;
    }
    VirtAddr new_brk = brk_ - dec;
    for (VirtAddr va = PageRoundUp(new_brk); va < PageRoundUp(brk_); va += kPageSize) {
      UnmapPage(va);
    }
    brk_ = new_brk;
  }
  return static_cast<std::int64_t>(old);
}

bool AddressSpace::InHeap(VirtAddr va, std::uint64_t len) const {
  return va >= kUserHeapBase && va + len <= brk_ && va + len >= va;
}

std::uint8_t* AddressSpace::HeapPtr(VirtAddr va, std::uint64_t len) {
  VOS_CHECK_MSG(InHeap(va, len), "heap access out of [heap_base, brk)");
  return pmm_.mem().Ptr(arena_pa_ + (va - kUserHeapBase), len);
}

bool AddressSpace::SetupStack() {
  PhysAddr pa = pmm_.AllocPage();
  if (pa == 0) {
    return false;
  }
  pmm_.mem().Fill(pa, 0, kPageSize);
  return MapPage(kUserStackTop - kPageSize, pa, kPteUser | kPteWrite);
}

bool AddressSpace::MapFramebuffer(std::uint64_t bytes) {
  accrued_ += cfg_.cost.mmap_base;
  std::uint64_t npages = (bytes + kPageSize - 1) / kPageSize;
  for (std::uint64_t i = 0; i < npages; ++i) {
    VirtAddr va = kUserFbBase + i * kPageSize;
    if (Lookup(va) != nullptr) {
      continue;  // idempotent re-map
    }
    if (!MapPage(va, va /* identity */, kPteUser | kPteWrite | kPteDevice)) {
      return false;
    }
  }
  fb_mapped_ = true;
  return true;
}

bool AddressSpace::CopyIn(void* dst, VirtAddr src, std::uint64_t len) const {
  auto* out = static_cast<std::uint8_t*>(dst);
  while (len > 0) {
    auto pa = Translate(src);
    if (!pa) {
      return false;
    }
    std::uint64_t in_page = kPageSize - (src & (kPageSize - 1));
    std::uint64_t take = std::min(len, in_page);
    pmm_.mem().Read(*pa, out, take);
    out += take;
    src += take;
    len -= take;
  }
  return true;
}

bool AddressSpace::CopyOut(VirtAddr dst, const void* src, std::uint64_t len) {
  const auto* in = static_cast<const std::uint8_t*>(src);
  while (len > 0) {
    auto pa = TranslateWrite(dst);
    if (!pa) {
      // Try the fault path (COW break / demand stack), then retry once.
      FaultResult r = HandleFault(dst, true);
      if (r == FaultResult::kKilled || r == FaultResult::kBad) {
        return false;
      }
      pa = TranslateWrite(dst);
      if (!pa) {
        return false;
      }
    }
    std::uint64_t in_page = kPageSize - (dst & (kPageSize - 1));
    std::uint64_t take = std::min(len, in_page);
    pmm_.mem().Write(*pa, in, take);
    in += take;
    dst += take;
    len -= take;
  }
  return true;
}

bool AddressSpace::CopyInStr(std::string& out, VirtAddr src, std::uint64_t max) const {
  out.clear();
  for (std::uint64_t i = 0; i < max; ++i) {
    char c;
    if (!CopyIn(&c, src + i, 1)) {
      return false;
    }
    if (c == '\0') {
      return true;
    }
    out.push_back(c);
  }
  return false;  // unterminated
}

std::unique_ptr<AddressSpace> AddressSpace::Clone(bool cow) {
  auto child = std::make_unique<AddressSpace>(pmm_, refs_, cfg_);
  child->heap_reserve_pages = heap_reserve_pages;
  accrued_ += cfg_.cost.fork_base;

  // Heap arena: always a private copy (host pointers into a COW-shared arena
  // cannot fault; see DESIGN.md). The *page-table* pages still COW-share or
  // copy below, which carries the cost difference fork benchmarks see.
  if (arena_pa_ != 0) {
    child->EnsureArena();
    std::uint64_t used = PageRoundUp(brk_) - kUserHeapBase;
    if (used > 0 && !cow) {
      pmm_.mem().Write(child->arena_pa_, pmm_.mem().Ptr(arena_pa_, used), used);
    }
  }
  child->brk_ = brk_;

  for (auto& [idx, l2] : l1_) {
    for (std::uint64_t i = 0; i < 512; ++i) {
      Pte& p = l2->pte[i];
      if (!p.valid()) {
        continue;
      }
      VirtAddr va = (idx << (kPageShift + 9)) | (i << kPageShift);
      if (p.flags & kPteDevice) {
        child->MapPage(va, p.pa, p.flags & ~kPteValid);
        continue;
      }
      bool heap_page = arena_pa_ != 0 && p.pa >= arena_pa_ &&
                       p.pa < arena_pa_ + arena_pages_ * kPageSize;
      if (heap_page) {
        // Point at the child's own arena at the same offset.
        PhysAddr cpa = child->arena_pa_ + (p.pa - arena_pa_);
        child->MapPage(va, cpa, p.flags & ~kPteValid);
        if (cow) {
          accrued_ += cfg_.cost.cow_mark_per_page;
        } else {
          accrued_ += cfg_.cost.page_copy;
        }
        continue;
      }
      if (cow) {
        // Share the frame read-only in both spaces; the first write in either
        // breaks the share in HandleFault.
        if (refs_.Count(p.pa) == 0) {
          refs_.Inc(p.pa);  // our pre-existing reference
        }
        refs_.Inc(p.pa);  // child's reference
        std::uint8_t shared =
            static_cast<std::uint8_t>((p.flags | kPteCow) & ~(kPteWrite | kPteValid));
        p.flags = static_cast<std::uint8_t>(shared | kPteValid);
        child->MapPage(va, p.pa, shared);
        accrued_ += cfg_.cost.cow_mark_per_page;
      } else {
        PhysAddr fresh = pmm_.AllocPage();
        VOS_CHECK_MSG(fresh != 0, "out of memory during fork copy");
        pmm_.mem().Write(fresh, pmm_.mem().Ptr(p.pa, kPageSize), kPageSize);
        child->MapPage(va, fresh, p.flags & ~kPteValid);
        accrued_ += cfg_.cost.page_copy + cfg_.cost.page_alloc;
      }
    }
  }
  child->fb_mapped_ = fb_mapped_;
  accrued_ += child->TakeCost();  // child's install costs charge the forker
  return child;
}

Cycles AddressSpace::TakeCost() {
  Cycles c = accrued_;
  accrued_ = 0;
  return c;
}

}  // namespace vos
