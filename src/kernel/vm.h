// Virtual memory (Prototype 3): per-task address spaces with 4 KB user pages
// (the kernel itself maps DRAM+IO linearly in 1 MB blocks, modeled as the
// identity use of PhysMem). Implements mapping, translation, demand-paged
// stacks, the repeated-fault kill policy, mmap of the framebuffer, eager fork
// copies, and copy-on-write (the production-OS profile in Fig 9).
//
// Host-pointer compromise (documented in DESIGN.md §2): all bookkeeping —
// page tables, frame accounting, faults — is real and fully exercised; bulk
// user data lives in simulated DRAM and is reached through Translate() or the
// contiguous heap arena, rather than trapping every load/store.
#ifndef VOS_SRC_KERNEL_VM_H_
#define VOS_SRC_KERNEL_VM_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/base/units.h"
#include "src/kernel/kconfig.h"
#include "src/kernel/pmm.h"

namespace vos {

using VirtAddr = std::uint64_t;

// User layout (user space starts at 0x0 as in the paper; kernel addresses are
// 0xffff-prefixed and handled by the linear map, not these tables).
constexpr VirtAddr kUserCodeBase = 0x00400000;
constexpr VirtAddr kUserHeapBase = 0x10000000;
constexpr VirtAddr kUserStackTop = 0x80000000;   // grows down
constexpr std::uint64_t kUserStackMax = MiB(1);  // demand-paged, 1 MB cap
constexpr VirtAddr kUserFbBase = 0x3c100000;     // identity map of the fb bus address

enum PteFlags : std::uint8_t {
  kPteValid = 1 << 0,
  kPteWrite = 1 << 1,
  kPteUser = 1 << 2,
  kPteCow = 1 << 3,
  kPteDevice = 1 << 4,  // MMIO/fb: not backed by a PMM frame
};

struct Pte {
  PhysAddr pa = 0;
  std::uint8_t flags = 0;
  bool valid() const { return flags & kPteValid; }
};

enum class FaultResult {
  kMappedStack,   // demand-paged a stack page
  kCowCopied,     // broke a copy-on-write share
  kKilled,        // repeated fault at the same address: kill policy (§4.3)
  kBad,           // access to an unmapped/forbidden address
};

struct VmStats {
  std::uint64_t user_pages = 0;       // mapped frame-backed pages
  std::uint64_t table_pages = 0;      // page-table pages
  std::uint64_t faults = 0;
  std::uint64_t demand_stack_pages = 0;
  std::uint64_t cow_breaks = 0;
};

// Cross-space frame reference counts for COW sharing. Owned by the kernel,
// shared by all address spaces.
class FrameRefs {
 public:
  void Inc(PhysAddr pa) { ++refs_[pa]; }
  // Returns the count after decrement (0 = caller must free).
  int Dec(PhysAddr pa);
  int Count(PhysAddr pa) const;

 private:
  std::unordered_map<PhysAddr, int> refs_;
};

class AddressSpace {
 public:
  AddressSpace(Pmm& pmm, FrameRefs& refs, const KernelConfig& cfg);
  ~AddressSpace();
  AddressSpace(const AddressSpace&) = delete;
  AddressSpace& operator=(const AddressSpace&) = delete;

  // --- Mapping primitives ---
  // Maps one page; allocates the L2 table if needed. `pa` must be a frame the
  // caller owns (its refcount is taken over) or device memory with kPteDevice.
  bool MapPage(VirtAddr va, PhysAddr pa, std::uint8_t flags);
  // Allocates and maps `npages` anonymous (junk-filled, like real DRAM)
  // pages starting at va. Returns false on OOM (partial maps are undone).
  bool MapAnon(VirtAddr va, std::uint64_t npages, bool writable);
  void UnmapPage(VirtAddr va);

  // Walks the tables. Returns the physical address for a read access, or
  // nullopt if unmapped (callers go through HandleFault).
  std::optional<PhysAddr> Translate(VirtAddr va) const;
  // Write access: fails (nullopt) on read-only or COW pages; the syscall
  // layer then runs HandleFault(va, true) and retries.
  std::optional<PhysAddr> TranslateWrite(VirtAddr va);

  const Pte* Lookup(VirtAddr va) const;

  // --- Fault handling (the data-abort path) ---
  FaultResult HandleFault(VirtAddr va, bool write);

  // --- Regions used by exec/syscalls ---
  // Heap: a contiguous arena so user code can hold host pointers into it.
  // Reserved (not allocated) until first growth.
  std::int64_t Sbrk(std::int64_t delta);  // returns old break, or <0 on error
  VirtAddr brk() const { return brk_; }
  std::uint64_t heap_reserve_pages = 1024;  // 4 MB default arena cap

  // Host pointer into [va, va+len) of the heap arena.
  std::uint8_t* HeapPtr(VirtAddr va, std::uint64_t len);
  bool InHeap(VirtAddr va, std::uint64_t len) const;

  // Maps the initial stack page (top page present; the rest demand-faults).
  bool SetupStack();

  // mmap of the framebuffer: identity device mapping of `bytes` at the fb bus
  // address (§4.3 "mmap for Mario's direct rendering").
  bool MapFramebuffer(std::uint64_t bytes);
  bool fb_mapped() const { return fb_mapped_; }

  // --- Copies for syscalls (exercise translation per page) ---
  bool CopyIn(void* dst, VirtAddr src, std::uint64_t len) const;   // user -> kernel
  bool CopyOut(VirtAddr dst, const void* src, std::uint64_t len);  // kernel -> user
  bool CopyInStr(std::string& out, VirtAddr src, std::uint64_t max) const;

  // --- fork ---
  // Eager copy or COW-share depending on `cow`. Virtual-time cost of the
  // operation accrues via TakeCost().
  std::unique_ptr<AddressSpace> Clone(bool cow);

  // Accrued model cost since last call (callers burn it).
  Cycles TakeCost();

  const VmStats& stats() const { return stats_; }
  std::uint64_t MappedPages() const { return stats_.user_pages; }

  PhysMem& mem() { return pmm_.mem(); }

 private:
  struct L2Table {
    std::vector<Pte> pte = std::vector<Pte>(512);
    PhysAddr table_frame = 0;  // accounting frame backing this table
  };

  L2Table* FindL2(VirtAddr va) const;
  L2Table* EnsureL2(VirtAddr va);
  Pte* LookupMutable(VirtAddr va);
  bool InStackRange(VirtAddr va) const;
  void FreeFrame(PhysAddr pa);
  void EnsureArena();

  Pmm& pmm_;
  FrameRefs& refs_;
  const KernelConfig& cfg_;
  std::unordered_map<std::uint64_t, std::unique_ptr<L2Table>> l1_;

  VirtAddr brk_ = kUserHeapBase;
  PhysAddr arena_pa_ = 0;
  std::uint64_t arena_pages_ = 0;
  bool fb_mapped_ = false;

  // Repeated-fault kill policy (§4.3): "tasks with repeated page faults at
  // the same address are terminated".
  VirtAddr last_fault_va_ = ~VirtAddr(0);
  int same_fault_count_ = 0;

  VmStats stats_;
  Cycles accrued_ = 0;
};

}  // namespace vos

#endif  // VOS_SRC_KERNEL_VM_H_
