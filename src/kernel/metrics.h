// Central metrics registry (§5.1): named monotonic counters, gauges
// (callbacks into subsystem state), and latency histograms, registered at
// subsystem init and exported as /proc/metrics ("name value" per line).
//
// Naming convention: dotted lowercase paths, subsystem first —
// "block.ramdisk.reads", "sched.core0.ctx_switches", "syscall.sleep.latency".
// Histograms export name.count/.sum/.p50/.p95/.p99/.max lines.
//
// Locking: the "metrics" spinlock only guards the name maps (registration and
// export-time enumeration) and is a leaf of the lockdep order graph. The hot
// paths never touch it: Counter::Inc and Histogram::Record are relaxed
// atomics on pointers handed out at registration. Gauge callbacks routinely
// take their subsystem's lock (e.g. bcache stats), so ExportText/Value copy
// the callbacks under the metrics lock and evaluate them OUTSIDE it — a
// metrics→bcache edge would make the leaf claim a lie.
#ifndef VOS_SRC_KERNEL_METRICS_H_
#define VOS_SRC_KERNEL_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/base/histogram.h"
#include "src/kernel/spinlock.h"

namespace vos {

// A monotonic counter. Inc is wait-free; safe from IRQs and inside locks.
class MetricCounter {
 public:
  void Inc(std::uint64_t d = 1) { v_.fetch_add(d, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Metrics {
 public:
  using GaugeFn = std::function<std::uint64_t()>;

  // Create-or-get. The returned pointers are stable for the registry's
  // lifetime; subsystems cache them and bump/record without any lock.
  MetricCounter* Counter(const std::string& name);
  Histogram* Hist(const std::string& name);
  // Registers (or replaces) a gauge callback, sampled at export time.
  void Gauge(const std::string& name, GaugeFn fn);

  // Looks up a counter or gauge by name (gauges are evaluated outside the
  // metrics lock). Returns false if no such scalar metric exists.
  bool Value(const std::string& name, std::uint64_t* out) const;
  // Histogram lookup; nullptr if absent. Reading a histogram needs no lock.
  const Histogram* FindHist(const std::string& name) const;

  // The /proc/metrics body: "name value\n", sorted by name. Histograms with
  // zero samples are omitted. With bucket export enabled (write "buckets on"
  // to /proc/metrics), each histogram additionally emits sparse
  // "name.bucket<i> count" lines — the raw log2 buckets, so offline tooling
  // can recompute any percentile instead of trusting the baked p50/p95/p99.
  std::string ExportText() const;

  // The /proc/metrics command language: "buckets on" / "buckets off".
  // Returns 0 or a negative errno-style code.
  std::int64_t Command(const std::string& text);
  bool buckets_enabled() const { return buckets_.load(std::memory_order_relaxed); }

 private:
  std::atomic<bool> buckets_{false};
  mutable SpinLock lock_{"metrics"};
  std::map<std::string, std::unique_ptr<MetricCounter>> counters_;  // racedet: shared (guarded by lock_)
  std::map<std::string, std::unique_ptr<Histogram>> hists_;         // racedet: shared (guarded by lock_)
  std::map<std::string, GaugeFn> gauges_;                           // racedet: shared (guarded by lock_)
};

}  // namespace vos

#endif  // VOS_SRC_KERNEL_METRICS_H_
