// Event tracing (§5.1): an ftrace-inspired per-core ring of timestamped
// events with negligible overhead, dumped on demand. Fig 11's latency
// breakdowns are computed from these records.
#ifndef VOS_SRC_KERNEL_TRACE_H_
#define VOS_SRC_KERNEL_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/ring_buffer.h"
#include "src/base/units.h"
#include "src/hw/intc.h"
#include "src/kernel/spinlock.h"

namespace vos {

enum class TraceEvent : std::uint16_t {
  kSyscallEnter = 1,
  kSyscallExit,
  kCtxSwitch,
  kIrqEnter,
  kIrqExit,
  kSleep,
  kWakeup,
  kUserMark,     // app-defined markers (frame start/end, input seen...)
  kKeyEvent,     // input pipeline stamps
  kWmComposite,
  kPageFault,
  kBlockRead,    // block layer: device read (a=lba, b=count)
  kBlockWrite,   // block layer: device write (a=lba, b=count)
  kBlockFlush,   // block layer: dirty write-back flushed (a=lba, b=count)
  kPmmAlloc,     // buddy allocator: pages handed out (a=pa, b=npages)
  kPmmFree,      // buddy allocator: pages returned (a=pa, b=npages)
  kPmmOom,       // allocation failed (a=npages requested, b=pages still free)
  kSlabRefill,   // per-core cache refilled from the depot (a=class size, b=objs)
};

struct TraceRecord {
  Cycles ts = 0;
  std::uint16_t core = 0;
  TraceEvent event = TraceEvent::kUserMark;
  std::int32_t pid = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

class TraceRing {
 public:
  explicit TraceRing(bool enabled, std::size_t per_core_capacity = 16384);

  void Emit(Cycles ts, unsigned core, TraceEvent ev, std::int32_t pid, std::uint64_t a = 0,
            std::uint64_t b = 0);

  // Merged, time-ordered dump of all cores' rings.
  std::vector<TraceRecord> Dump() const;

  // Filtered dump.
  std::vector<TraceRecord> DumpEvent(TraceEvent ev) const;

  void Clear();
  bool enabled() const { return enabled_; }
  std::uint64_t total_emitted() const { return emitted_; }

  static std::string EventName(TraceEvent ev);

 private:
  bool enabled_;
  // Serializes ring mutation. Emit runs in IRQ context (the trace class is
  // irq-used by design) and nests inside the bcache lock via the I/O trace
  // hook, making it a leaf of the lockdep order graph.
  mutable SpinLock lock_{"trace"};
  std::vector<RingBuffer<TraceRecord>> rings_;
  std::uint64_t emitted_ = 0;
};

}  // namespace vos

#endif  // VOS_SRC_KERNEL_TRACE_H_
