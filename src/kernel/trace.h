// Event tracing (§5.1): an ftrace-inspired per-core ring of timestamped
// events with negligible overhead, dumped on demand. Fig 11's latency
// breakdowns are computed from these records.
//
// Emit is lock-free: each core owns a single-producer ring (the simulator's
// token serialization guarantees one producer per core; the bench drives one
// host thread per core, which is the same contract). A per-core seqlock lets
// Dump take a consistent snapshot without ever stalling a producer; when the
// ring wraps, the overwritten records are counted in a per-core `dropped`
// counter so readers know the window is partial.
#ifndef VOS_SRC_KERNEL_TRACE_H_
#define VOS_SRC_KERNEL_TRACE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "src/base/units.h"
#include "src/hw/intc.h"

namespace vos {

enum class TraceEvent : std::uint16_t {
  kSyscallEnter = 1,
  kSyscallExit,
  kCtxSwitch,
  kIrqEnter,
  kIrqExit,
  kSleep,
  kWakeup,
  kUserMark,     // app-defined markers (frame start/end, input seen...)
  kKeyEvent,     // input pipeline stamps
  kWmComposite,
  kPageFault,
  kBlockRead,    // block layer: device read (a=lba, b=count)
  kBlockWrite,   // block layer: device write (a=lba, b=count)
  kBlockFlush,   // block layer: dirty write-back flushed (a=lba, b=count)
  kPmmAlloc,     // buddy allocator: pages handed out (a=pa, b=npages)
  kPmmFree,      // buddy allocator: pages returned (a=pa, b=npages)
  kPmmOom,       // allocation failed (a=npages requested, b=pages still free)
  kSlabRefill,   // per-core cache refilled from the depot (a=class size, b=objs)
  kBlockError,   // block layer: request failed after retries (a=lba, b=status)
  kRaceReport,   // racedet: lockset went empty (a=shadow addr, b=report index)
  kJrnlCommit,     // journal: commit record durable (a=seq, b=data blocks)
  kJrnlCheckpoint, // journal: batches drained to home (a=first seq, b=blocks)
  kProfSample,     // profiler: stack sample folded (a=stack hash, b=weight)
  kWatchdogBark,   // watchdog: hung task / stalled core (a=stalled-for cycles,
                   // b=core) — pid is the offender (-1 = core-level stall)
  kNetRx,          // net: frame drained from the NIC RX ring (a=frame bytes)
  kNetTx,          // net: frame posted to the NIC TX ring (a=frame bytes)
};

struct TraceRecord {
  Cycles ts = 0;
  std::uint16_t core = 0;
  TraceEvent event = TraceEvent::kUserMark;
  std::int32_t pid = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

class TraceRing {
 public:
  explicit TraceRing(bool enabled, std::size_t per_core_capacity = 16384);

  // Lock-free hot path: one producer per core (token-serialized in the
  // simulator). Safe to call from IRQ context and inside any spinlock.
  void Emit(Cycles ts, unsigned core, TraceEvent ev, std::int32_t pid, std::uint64_t a = 0,
            std::uint64_t b = 0);

  // Merged, time-ordered dump of all cores' rings (seqlock snapshot).
  std::vector<TraceRecord> Dump() const;

  // Filtered dump.
  std::vector<TraceRecord> DumpEvent(TraceEvent ev) const;

  void Clear();
  bool enabled() const { return enabled_; }
  std::size_t capacity() const { return cap_; }
  std::uint64_t total_emitted() const;
  // Records overwritten by ring wrap since the last Clear().
  std::uint64_t dropped(unsigned core) const;
  std::uint64_t total_dropped() const;
  // Seqlock snapshot retries Dump() has performed (reader observed a torn or
  // superseded window and re-read). The seqlock torture test asserts this
  // goes positive while a writer races the reader.
  std::uint64_t dump_retries() const {
    return dump_retries_.load(std::memory_order_relaxed);
  }

  static std::string EventName(TraceEvent ev);
  static bool EventFromName(const std::string& name, TraceEvent* out);

 private:
  // One cache line of cursors per core so producers never share a line.
  // The head cursor counts every record written since Clear, so the derived
  // stats cost nothing on the hot path: emitted == head, and dropped ==
  // max(0, head - capacity) — once the ring is full, every write evicts one.
  //
  // racedet policy: these fields are deliberately NOT in the shared set. The
  // ring is the canonical intentionally-lock-free structure (seqlock writer,
  // wrapping reader); a lockset checker has nothing true to say about it, and
  // RD_* calls on the Emit hot path would also recurse through the racedet
  // trace hook. The seqlock torture test covers it dynamically, and the TSan
  // CI leg carries a matching suppression (tools/tsan.supp).
  struct alignas(64) CoreRing {
    std::atomic<std::uint64_t> head{0};  // total records written since Clear
    std::atomic<std::uint64_t> seq{0};   // seqlock: odd while a write is in flight
    std::uint64_t next_slot = 0;         // producer-only: head % capacity
    std::vector<TraceRecord> slots;
  };

  bool enabled_;
  std::size_t cap_;
  // Dump() is logically const; retry accounting is observability metadata.
  mutable std::atomic<std::uint64_t> dump_retries_{0};
  std::array<CoreRing, kMaxCores> rings_;
};

// Text dump format: one record per line, "ts core event pid a b" (event by
// name). This is what /dev/trace serves and tools/trace2perfetto.py reads.
std::string FormatTraceText(const std::vector<TraceRecord>& recs);
bool ParseTraceText(const std::string& text, std::vector<TraceRecord>* out);

// Chrome trace-event JSON (loadable in Perfetto / chrome://tracing):
// syscall and IRQ enter/exit pairs become duration (B/E) events, everything
// else instant events; tid = core, ts in microseconds.
std::string FormatChromeTrace(const std::vector<TraceRecord>& recs);

}  // namespace vos

#endif  // VOS_SRC_KERNEL_TRACE_H_
