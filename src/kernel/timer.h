// Virtual timers (Prototype 1): many software timers multiplexed onto one
// physical system-timer compare channel, plus kernel timekeeping (ticks,
// uptime). The donut animation, sleep(), USB timeouts and the WM composition
// cadence all run on these.
#ifndef VOS_SRC_KERNEL_TIMER_H_
#define VOS_SRC_KERNEL_TIMER_H_

#include <cstdint>
#include <functional>
#include <map>

#include "src/base/units.h"
#include "src/hw/sys_timer.h"

namespace vos {

class VirtualTimers {
 public:
  using TimerFn = std::function<void()>;
  using TimerId = std::uint64_t;

  explicit VirtualTimers(SysTimer& st) : st_(st) {}

  // One-shot timer at absolute virtual time `when`.
  TimerId AddAt(Cycles when, TimerFn fn);
  // Periodic timer: first fires at `first`, then every `period`.
  TimerId AddPeriodic(Cycles first, Cycles period, TimerFn fn);
  void Cancel(TimerId id);

  // Called from the kernel's system-timer IRQ handler. Runs due timers and
  // re-arms the hardware compare for the next one. Returns timers fired.
  std::size_t OnIrq(Cycles now);

  std::size_t active() const { return timers_.size(); }

 private:
  struct Timer {
    Cycles when;
    Cycles period;  // 0 for one-shot
    TimerFn fn;
  };

  void Rearm();

  SysTimer& st_;
  std::map<TimerId, Timer> timers_;
  TimerId next_id_ = 1;
};

// Kernel timekeeping: tick counting and uptime, fed by the core-0 scheduler
// tick (as in xv6's ticks variable).
class Timekeeping {
 public:
  void Tick() { ++ticks_; }
  std::uint64_t ticks() const { return ticks_; }

 private:
  std::uint64_t ticks_ = 0;
};

}  // namespace vos

#endif  // VOS_SRC_KERNEL_TIMER_H_
