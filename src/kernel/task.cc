#include "src/kernel/task.h"

#include <exception>

#include "src/base/assert.h"

namespace vos {

namespace {
thread_local TaskFiber* g_current_fiber = nullptr;
}

void Gate::Signal() {
  {
    std::lock_guard<std::mutex> l(mu_);
    go_ = true;
  }
  cv_.notify_one();
}

void Gate::Wait() {
  std::unique_lock<std::mutex> l(mu_);
  cv_.wait(l, [this] { return go_; });
  go_ = false;
}

TaskFiber* TaskFiber::Current() { return g_current_fiber; }

TaskFiber::TaskFiber(std::function<void()> entry) {
  thread_ = std::thread([this, entry = std::move(entry)] {
    g_current_fiber = this;
    resume_gate_.Wait();  // park until first schedule
    if (!kill_requested_) {
      entry();  // must swallow TaskExitUnwind/TaskKilledUnwind itself
    }
    finished_ = true;
    reason_ = StopReason::kExited;
    done_gate_.Signal();
  });
}

TaskFiber::~TaskFiber() {
  if (thread_.joinable()) {
    if (!finished_) {
      // Force the fiber to unwind. It is parked (machine holds the token).
      kill_requested_ = true;
      resume_gate_.Signal();
      done_gate_.Wait();
      VOS_CHECK_MSG(finished_, "fiber failed to unwind on kill");
    }
    thread_.join();
  }
}

TaskFiber::RunResult TaskFiber::Run(Cycles budget, Cycles start) {
  VOS_CHECK_MSG(!finished_, "running a finished fiber");
  VOS_CHECK(budget > 0);
  budget_ = budget;
  start_time_ = start;
  consumed_ = 0;
  started_ = true;
  resume_gate_.Signal();
  done_gate_.Wait();
  return RunResult{reason_, consumed_};
}

void TaskFiber::SwitchOut(StopReason r) {
  if (kill_requested_ && std::uncaught_exceptions() > 0) {
    // The fiber is unwinding for its death: destructors must not park again
    // (the machine side is already waiting for the thread to finish). Return
    // immediately; blocking loops bail out via their killed checks.
    return;
  }
  reason_ = r;
  done_gate_.Signal();
  resume_gate_.Wait();
  CheckKilled();
}

void TaskFiber::CheckKilled() {
  if (kill_requested_ && std::uncaught_exceptions() == 0) {
    throw TaskKilledUnwind{};
  }
}

void TaskFiber::Burn(Cycles c) {
  while (c > 0) {
    CheckKilled();
    Cycles avail = budget_ > consumed_ ? budget_ - consumed_ : 0;
    if (avail == 0) {
      SwitchOut(StopReason::kBudget);
      continue;
    }
    Cycles take = c < avail ? c : avail;
    consumed_ += take;
    c -= take;
  }
}

void TaskFiber::BlockAndSwitch() { SwitchOut(StopReason::kBlocked); }

void TaskFiber::YieldToMachine() { SwitchOut(StopReason::kBudget); }

Task::Task(Pid pid, std::string name, bool kernel_task)
    : pid_(pid), name_(std::move(name)), kernel_task_(kernel_task) {}

Task::~Task() = default;

}  // namespace vos
