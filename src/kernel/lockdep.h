// Kernel lock-order and IRQ-safety validator ("lockdep"), in the spirit of
// the paper's §4.1 spinlock evolution: the SpinLock itself catches
// double-acquire and non-owner release, but nothing validated ordering
// *between* locks, sleeping with a spinlock held, or IRQ-context safety.
// Those are exactly the bugs that surface as downstream corruption once the
// bflush thread and future multicore work add concurrent lock users; this
// layer reports them at the faulting site instead.
//
// Model:
//  - Lock *classes* are keyed by the SpinLock's name (two pipes share the
//    "pipe" class), registered at SpinLock construction.
//  - Each host context (the machine thread, or one task fiber — execution is
//    token-serialized, so each holds its own thread_local stack) records the
//    locks it currently holds, innermost last.
//  - A global acquisition-order graph accumulates an edge A->B whenever B is
//    acquired while A is held. At acquire time a transitive reachability
//    check detects inversions: acquiring B while holding A after the graph
//    already proves B ->* A is a potential deadlock, reported with both the
//    current chain and the backtrace that established the opposing edge.
//  - Sleep safety: the scheduler's sleep path calls OnSleep(); any spinlock
//    still held there is a bug (SleepOn releases the condition lock first).
//  - IRQ safety: the machine loop brackets interrupt dispatch with
//    SetIrqContext(). A class ever acquired in IRQ context ("irq-used") must
//    never be observed held at a point where the holder re-enables
//    interrupts (PopOff reaching depth 0 with locks held) — on real hardware
//    that is the window where the IRQ handler spins against its own core.
//
// Violations throw FatalError via VOS_CHECK_MSG with both offending chains
// and shadow-stack backtraces (unwind.h-style frames). The whole checker is
// a no-op when disabled (KernelConfig::lockdep_enabled, for benchmarks).
#ifndef VOS_SRC_KERNEL_LOCKDEP_H_
#define VOS_SRC_KERNEL_LOCKDEP_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace vos {

class SpinLock;

// Per-class statistics exported through /proc/lockdep.
struct LockClassInfo {
  std::string name;
  std::uint64_t acquisitions = 0;  // total acquires of locks in this class
  int max_hold_depth = 0;          // deepest held-stack position at acquire
  bool irq_used = false;           // ever acquired in IRQ context
  bool held_irqs_on = false;       // ever held while IRQs were enabled
};

class Lockdep {
 public:
  static Lockdep& Instance();

  // Wipes classes, the order graph, and per-context held stacks. Each Kernel
  // construction starts a fresh session (tests boot many kernels).
  void Reset();

  void SetEnabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  // Class registration; called from the SpinLock constructor. Safe to call
  // repeatedly with the same name (locks of one class share the entry).
  int RegisterClass(const std::string& name);

  // --- Hook points (wired in spinlock.cc / sched.cc / machine.cc) ---
  // After the lock is successfully acquired. Performs the order-inversion
  // and IRQ-safety checks; throws FatalError on violation (the caller backs
  // out the acquisition so tests can continue past a detected bug).
  void OnAcquire(const SpinLock* lock, const std::string& class_name);
  // Before the lock is released. Tolerates locks acquired while disabled.
  void OnRelease(const SpinLock* lock);
  // The scheduler sleep path: no spinlock may be held when a task parks.
  void OnSleep(const void* chan);
  // PopOff brought this context's IRQ-off depth to zero: interrupts are
  // deliverable again. Any lock still held is now "held with IRQs on"; if
  // its class is also taken from IRQ context, that is a deadlock window.
  void OnIrqEnable();

  // IRQ-context bracket (machine loop dispatch; tests seed it directly).
  void SetIrqContext(bool in_irq);
  bool InIrqContext() const;

  // Shadow-stack backtrace provider (the kernel installs one that walks the
  // current task's call_stack; frames are static string literals).
  using BacktraceFn = std::function<std::vector<const char*>()>;
  void SetBacktraceProvider(BacktraceFn fn) { backtrace_ = std::move(fn); }

  // --- Racedet support (racedet.h) ---
  // Lock *instances* currently held by this context, outermost first. The
  // lockset algorithm intersects instances, not classes: two "sched-core"
  // locks guard different runqueues and must refine independently.
  std::vector<const SpinLock*> HeldLockPtrs() const;
  // True if this context holds `lock` right now (backs RD_ASSERT_HELD).
  bool IsHeldByCurrent(const SpinLock* lock) const;
  // The current context's shadow-stack backtrace via the installed provider
  // (racedet reports reuse lockdep's view of "where am I").
  std::vector<const char*> CurrentBacktrace() const { return Backtrace(); }

  // --- Introspection (/proc/lockdep, tests) ---
  std::size_t ClassCount() const { return classes_.size(); }
  std::vector<LockClassInfo> Classes() const;
  // Number of distinct order edges observed.
  std::size_t EdgeCount() const;
  // True if the graph has observed from -> ... -> to (transitively).
  bool HasPath(const std::string& from, const std::string& to) const;
  // Locks currently held by this context (class names, outermost first).
  std::vector<std::string> HeldNames() const;
  // The /proc/lockdep body: per-class stats plus the dependency graph.
  std::string Report() const;

 private:
  Lockdep() = default;

  struct Edge {
    std::uint64_t count = 0;
    std::vector<const char*> holder_bt;  // acquire site of the held lock
    std::vector<const char*> taker_bt;   // site that acquired the new lock
  };
  struct Class {
    std::string name;
    std::uint64_t acquisitions = 0;
    int max_hold_depth = 0;
    bool irq_used = false;
    bool held_irqs_on = false;
    std::vector<const char*> irq_bt;  // first IRQ-context acquisition site
    std::map<int, Edge> out;          // class id -> dependency edge
  };
  struct Held {
    const SpinLock* lock;
    int cls;
    std::vector<const char*> bt;
  };

  std::vector<const char*> Backtrace() const;
  // DFS over the order graph: is `to` reachable from `from`?
  bool Reachable(int from, int to) const;
  // Shortest observed path from -> to (class ids), for violation reports.
  std::vector<int> Path(int from, int to) const;
  static std::string FormatFrames(const std::vector<const char*>& bt);
  std::string FormatChain(const std::vector<int>& path) const;
  [[noreturn]] void Violation(const char* kind, const std::string& detail);

  bool enabled_ = true;
  std::map<std::string, int> ids_;
  std::vector<Class> classes_;
  BacktraceFn backtrace_;
  std::uint64_t generation_ = 0;  // bumped by Reset to invalidate held stacks
};

// Per-kernel lockdep session: Reset + enable/disable on construction, so each
// Kernel boot starts with an empty graph reflecting the config knob. Lives as
// an early Kernel member (before any subsystem that constructs SpinLocks).
class LockdepSession {
 public:
  explicit LockdepSession(bool enabled) {
    Lockdep::Instance().Reset();
    Lockdep::Instance().SetEnabled(enabled);
  }
  ~LockdepSession() {
    Lockdep::Instance().SetBacktraceProvider(nullptr);
    Lockdep::Instance().SetEnabled(true);
  }
  LockdepSession(const LockdepSession&) = delete;
  LockdepSession& operator=(const LockdepSession&) = delete;
};

// RAII bracket for the machine loop's interrupt dispatch window.
class LockdepIrqScope {
 public:
  LockdepIrqScope() { Lockdep::Instance().SetIrqContext(true); }
  ~LockdepIrqScope() { Lockdep::Instance().SetIrqContext(false); }
  LockdepIrqScope(const LockdepIrqScope&) = delete;
  LockdepIrqScope& operator=(const LockdepIrqScope&) = delete;
};

}  // namespace vos

#endif  // VOS_SRC_KERNEL_LOCKDEP_H_
