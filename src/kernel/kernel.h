// The VOS kernel: a monolithic kernel in the xv6 mold (§3), assembled per
// prototype stage. Owns the scheduler, memory management, filesystems,
// drivers, tracing/debugging, and the 30-syscall interface; implements
// MachineClient so the machine loop can ask it for scheduling decisions and
// hand it interrupts.
#ifndef VOS_SRC_KERNEL_KERNEL_H_
#define VOS_SRC_KERNEL_KERNEL_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/fs/bcache.h"
#include "src/fs/devfs.h"
#include "src/fs/fault_inject.h"
#include "src/fs/journal.h"
#include "src/fs/vfs.h"
#include "src/fs/xv6fs.h"
#include "src/hw/board.h"
#include "src/kernel/debug_monitor.h"
#include "src/kernel/drivers.h"
#include "src/kernel/ipc.h"
#include "src/kernel/kconfig.h"
#include "src/kernel/klog.h"
#include "src/kernel/lockdep.h"
#include "src/kernel/kmalloc.h"
#include "src/kernel/machine.h"
#include "src/kernel/metrics.h"
#include "src/kernel/net/net.h"
#include "src/kernel/pipe.h"
#include "src/kernel/pmm.h"
#include "src/kernel/profiler.h"
#include "src/kernel/racedet.h"
#include "src/kernel/sched.h"
#include "src/kernel/semaphore.h"
#include "src/kernel/spinlock.h"
#include "src/kernel/task.h"
#include "src/kernel/timer.h"
#include "src/kernel/trace.h"
#include "src/kernel/velf.h"
#include "src/kernel/vm.h"
#include "src/kernel/semaphore.h"

namespace vos {

class WindowManager;

// Syscall numbers: the paper's 30 syscalls across task management,
// filesystem, threading/synchronization, and durability (§3), plus the four
// futex-IPC calls the "Scheduling & IPC" refactor adds.
enum class Sys : int {
  kFork = 1,
  kExit = 2,
  kWait = 3,
  kPipe = 4,
  kRead = 5,
  kKill = 6,
  kExec = 7,
  kFstat = 8,
  kChdir = 9,
  kDup = 10,
  kGetPid = 11,
  kSbrk = 12,
  kSleep = 13,
  kUptime = 14,
  kOpen = 15,
  kWrite = 16,
  kMknod = 17,
  kUnlink = 18,
  kLink = 19,
  kMkdir = 20,
  kClose = 21,
  kLseek = 22,
  kMmap = 23,
  kCacheFlush = 24,
  kClone = 25,
  kSemCreate = 26,
  kSemWait = 27,
  kSemPost = 28,
  kSync = 29,
  kFsync = 30,
  kIpcCreate = 31,
  kIpcWait = 32,
  kIpcWake = 33,
  kIpcMap = 34,
  // Sockets (proto5, HasNet()): src/kernel/net/.
  kSocket = 35,
  kBind = 36,
  kListen = 37,
  kAccept = 38,
  kConnect = 39,
  kSend = 40,
  kRecv = 41,
  kShutdown = 42,
};

constexpr int kNumSyscalls = 42;

// Lowercase syscall name for metric paths ("syscall.<name>.latency").
const char* SysName(Sys num);

class Kernel final : public MachineClient {
 public:
  Kernel(Board& board, KernelConfig cfg);
  ~Kernel() override;
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  // --- Images provisioned before Boot() ---
  void SetRamdiskImage(std::vector<std::uint8_t> image);
  // Prototype 3 "file-less exec": VELF blobs bundled with the kernel image.
  void AddBootBlob(const std::string& name, std::vector<std::uint8_t> velf);

  // Boot timing per stage (Fig 8's boot breakdown).
  struct BootReport {
    Cycles firmware = 0;   // firmware loading the kernel from SD
    Cycles core = 0;       // vectors, timers, pmm, vm
    Cycles fb = 0;         // mailbox framebuffer allocation
    Cycles fs = 0;         // ramdisk root mount (+ FAT32 on SD)
    Cycles usb = 0;        // USB stack + keyboard enumeration
    Cycles total = 0;
  };
  BootReport Boot();
  bool booted() const { return booted_; }

  // --- Running the machine ---
  void Run(Cycles until) { machine_.Run(until); }
  void RunFor(Cycles dur) { machine_.Run(board_.clock().now() + dur); }
  Cycles Now() const { return machine_.Now(); }
  void StopMachine() { machine_.Stop(); }

  // --- Accessors ---
  const KernelConfig& config() const { return cfg_; }
  Board& board() { return board_; }
  Machine& machine() { return machine_; }
  Sched& sched() { return sched_; }
  Pmm& pmm() { return *pmm_; }
  Kmalloc& kmalloc() { return *kmalloc_; }
  Vfs& vfs() { return *vfs_; }
  Xv6Fs& rootfs() { return *rootfs_; }
  Bcache& bcache() { return *bcache_; }
  Journal* journal() { return journal_.get(); }
  FaultInjector* fault_injector() { return fault_.get(); }
  TraceRing& trace() { return trace_; }
  Metrics& metrics() { return metrics_; }
  Profiler& profiler() { return profiler_; }
  DebugMonitor& debug() { return dbg_; }
  Klog& klog() { return klog_; }
  VirtualTimers& vtimers() { return *vtimers_; }
  SemTable& sems() { return *sems_; }
  IpcTable& ipcs() { return *ipcs_; }
  FbDriver& fb_driver() { return *fb_driver_; }
  AudioDriver& audio_driver() { return *audio_driver_; }
  KeyEventDev& events_dev() { return *events_; }
  KeyEventDev& event1_dev() { return *event1_; }
  WindowManager* wm() { return wm_.get(); }
  NetStack* net() { return net_.get(); }
  UsbStorageDriver* usb_storage_driver() { return usb_storage_driver_.get(); }
  Timekeeping& timekeeping() { return timekeeping_; }
  const std::string& last_panic_dump() const { return last_panic_dump_; }

  // Test-only seeded-race hook: increments a racedet-annotated counter with
  // or without its lock. The racedet self-test uses the unlocked flavor to
  // prove the detector fires; nothing in the kernel proper calls this.
  void DebugSharedInc(bool locked);
  std::uint64_t debug_shared_counter();

  // Test-only wedge hook (watchdog torture): models a task spinning with
  // IRQs masked on `core` — the core's timer tick is acked but not serviced
  // (no last-tick stamp, no sched OnTick) and the scheduler stops preempting
  // there. Un-wedging restores both and freshens the tick stamp so recovery
  // does not double-bark.
  void DebugWedgeCore(unsigned core, bool wedged);

  // --- Tasks ---
  // `core_hint` >= 0 pins the new task's home runqueue (tests and benches
  // use it to build skewed loads that exercise the work-stealing balancer).
  Task* CreateKernelTask(const std::string& name, std::function<void()> body,
                         int core_hint = -1);
  // Creates a user task that execs `path` with `argv` when first scheduled.
  Task* StartUserProgram(const std::string& path, const std::vector<std::string>& argv);
  Task* CurrentTask() const;
  // Host-side reaping of an orphan zombie (tests/benches waiting on programs
  // they started directly). Returns the exit code, or kErrNoEnt.
  std::int64_t ReapZombie(Pid pid);
  // Host-side kill (benches stopping a measured app mid-run).
  void KillFromHost(Pid pid);
  std::size_t live_tasks() const { return tasks_.size(); }
  std::vector<Task*> AllTasks();
  Task* FindTask(Pid pid);

  // printk, charged to the caller's context.
  void Printk(const char* fmt, ...) __attribute__((format(printf, 2, 3)));

  // --- The syscall interface (implemented in syscall.cc). Typed entry
  // points; each charges entry/exit cost, checks the prototype stage, and
  // traces. Called from ulib on the current task's fiber. ---
  std::int64_t SysFork(std::function<int()> child_body);
  [[noreturn]] void SysExit(int code);
  std::int64_t SysWait(int* status);
  std::int64_t SysKill(Pid pid);
  std::int64_t SysGetPid();
  std::int64_t SysSbrk(std::int64_t delta);
  std::int64_t SysSleep(std::uint64_t ms);
  std::int64_t SysUptime();
  std::int64_t SysExec(const std::string& path, const std::vector<std::string>& argv);
  std::int64_t SysOpen(const std::string& path, std::uint32_t flags);
  std::int64_t SysClose(int fd);
  std::int64_t SysRead(int fd, void* buf, std::uint32_t n);
  std::int64_t SysWrite(int fd, const void* buf, std::uint32_t n);
  std::int64_t SysLseek(int fd, std::int64_t off, int whence);
  std::int64_t SysDup(int fd);
  std::int64_t SysPipe(int fds[2]);
  std::int64_t SysFstat(int fd, Stat* st);
  std::int64_t SysChdir(const std::string& path);
  std::int64_t SysMkdir(const std::string& path);
  std::int64_t SysUnlink(const std::string& path);
  std::int64_t SysLink(const std::string& oldp, const std::string& newp);
  std::int64_t SysMknod(const std::string& path, std::int16_t major, std::int16_t minor);
  // mmap of /dev/fb (§4.3): identity-maps the framebuffer into the task and
  // returns the CPU-side pixel pointer and geometry.
  std::int64_t SysMmapFb(std::uint32_t** pixels, std::uint32_t* w, std::uint32_t* h);
  std::int64_t SysCacheFlush(std::uint64_t off, std::uint64_t len);
  std::int64_t SysClone(std::function<int()> thread_body);
  std::int64_t SysSemCreate(int initial);
  std::int64_t SysSemWait(int id);
  std::int64_t SysSemPost(int id);
  // Futex IPC (ipc.h): create a shared ring, map it into the caller, and
  // park/unpark on its version words. The data path never enters the kernel.
  std::int64_t SysIpcCreate(std::uint64_t bytes);
  std::int64_t SysIpcMap(int id, IpcRing** out);
  std::int64_t SysIpcWait(int id, int side, std::uint64_t expected);
  std::int64_t SysIpcWake(int id, int side);
  // Sockets (src/kernel/net/). type: 0 = TCP, 1 = UDP; flags bit 0 makes the
  // new fd nonblocking. SysAccept's flags bit 0 sets nonblock on the
  // *accepted* fd. Addresses are (ipv4 host-order u32, port u16).
  std::int64_t SysSocket(int type, std::uint32_t flags);
  std::int64_t SysBind(int fd, std::uint16_t port);
  std::int64_t SysListen(int fd, std::uint32_t backlog);
  std::int64_t SysAccept(int fd, std::uint32_t* peer_ip, std::uint16_t* peer_port,
                         std::uint32_t flags);
  std::int64_t SysConnect(int fd, std::uint32_t ip, std::uint16_t port);
  std::int64_t SysSend(int fd, const void* buf, std::uint32_t n);
  std::int64_t SysRecv(int fd, void* buf, std::uint32_t n);
  std::int64_t SysShutdown(int fd, int how);
  // Durability (§5.2 write-back cache): sync flushes every dirty buffer on
  // every device; fsync flushes the device backing one open file.
  std::int64_t SysSync();
  std::int64_t SysFsync(int fd);
  std::int64_t SysYield();
  // Directory listing helper for the shell (not one of the 30; reads of
  // directory files also work for xv6fs, as in xv6's ls).
  std::int64_t SysReadDir(const std::string& path, std::vector<DirEntryInfo>* out);

  // Numeric dispatch used by the microbenchmarks to measure the raw
  // trap/dispatch path (only no-pointer syscalls are reachable this way).
  std::int64_t SyscallRaw(Sys num, std::uint64_t a0, std::uint64_t a1);

  // --- In-kernel helpers (no syscall costs; used by kernel tasks & boot) ---
  void KSleepMs(std::uint64_t ms);       // current (kernel) task sleeps
  void ChargeCurrent(Cycles c);          // burn on the current context
  std::int64_t LoadVelf(const std::string& path, std::vector<std::uint8_t>* out, Cycles* burn);

  // --- MachineClient ---
  Task* PickNext(unsigned core) override;
  void OnTaskStopped(unsigned core, Task* t, TaskFiber::StopReason r) override;
  void OnIrq(unsigned core, unsigned irq) override;
  void OnFiq(unsigned core) override;

 private:
  friend class WindowManager;

  Task* NewTask(const std::string& name, bool kernel_task);
  void AttachUserEntry(Task* t, std::function<int()> body);
  void DoExitNoThrow(Task* cur, int code);
  [[noreturn]] void DoExit(Task* cur, int code);
  void ReapTask(Pid pid);
  std::int64_t InstallFd(Task* cur, FilePtr f);
  FilePtr GetFd(Task* cur, int fd);
  // GetFd plus a kind check; on nullptr *err holds kErrBadFd or kErrInval.
  FilePtr GetSockFd(Task* cur, int fd, std::int64_t* err);
  // Syscall prologue: returns the current task, charging entry costs; kills
  // the task if a kill is pending.
  Task* SyscallEnter(Sys num);
  std::int64_t SyscallExit(Sys num, std::int64_t ret);
  // Registers the block.<name>.* gauges for a newly added bcache device.
  void RegisterBlockDevMetrics(int dev);
  void FlusherBody();  // bflush kernel thread: periodic aged-dirty write-back
  void WatchdogBody();  // hung-task/softlockup watchdog kernel thread
  // One watchdog bark: klog backtrace + kWatchdogBark + counter. `offender`
  // may be null (stalled core with no known last task).
  void WatchdogBark(Task* offender, unsigned core, Cycles stalled, const char* what);
  void TickHandler(unsigned core, Cycles now);
  [[noreturn]] void RunExecImage(Task* cur, const VelfImage& img,
                                 const std::vector<std::string>& argv);
  std::unique_ptr<AddressSpace> BuildAddressSpace(const VelfImage& img,
                                                  const std::vector<std::string>& argv,
                                                  Cycles* cost);

  Board& board_;
  KernelConfig cfg_;
  // Must precede every member that constructs a SpinLock (trace_, sched_, …):
  // it resets the lockdep session so their class registrations land in this
  // kernel's fresh graph.
  LockdepSession lockdep_session_;
  // Right after lockdep (its held stacks are racedet's lockset source) and
  // before every member whose construction touches annotated state.
  RacedetSession racedet_session_;
  Machine machine_;
  Klog klog_;
  TraceRing trace_;
  Metrics metrics_;
  DebugMonitor dbg_;
  Timekeeping timekeeping_;
  Sched sched_;
  FrameRefs frame_refs_;
  Profiler profiler_;

  std::unique_ptr<Pmm> pmm_;
  std::unique_ptr<Kmalloc> kmalloc_;
  std::unique_ptr<VirtualTimers> vtimers_;
  std::unique_ptr<SemTable> sems_;
  std::unique_ptr<IpcTable> ipcs_;

  // Filesystems. Every BlockDevice is wrapped in a FaultInjectingBlockDevice
  // before it reaches the bcache, so /proc/faultinject can inject errors on
  // any of them; with injection off the wrappers are pass-through.
  std::unique_ptr<FaultInjector> fault_;
  std::vector<std::unique_ptr<FaultInjectingBlockDevice>> fault_devs_;
  std::unique_ptr<RamDisk> ramdisk_;
  std::unique_ptr<Bcache> bcache_;
  std::unique_ptr<Xv6Fs> rootfs_;
  std::unique_ptr<Journal> journal_;
  std::unique_ptr<SdBlockDevice> sd_part_;
  std::unique_ptr<FatVolume> fat_;
  std::unique_ptr<Vfs> vfs_;
  int ramdisk_dev_ = -1;
  int sd_dev_ = -1;

  // Drivers.
  std::unique_ptr<FbDriver> fb_driver_;
  std::unique_ptr<ConsoleDriver> console_;
  std::unique_ptr<KeyEventDev> events_;
  std::unique_ptr<KeyEventDev> event1_;
  std::unique_ptr<UsbKbdDriver> usb_kbd_;
  std::unique_ptr<GpioButtonDriver> gpio_buttons_;
  std::unique_ptr<AudioDriver> audio_driver_;
  std::unique_ptr<SdDriver> sd_driver_;
  std::unique_ptr<UsbStorageDriver> usb_storage_driver_;
  std::unique_ptr<FatVolume> usb_fat_;
  int usb_dev_ = -1;
  std::unique_ptr<NullDev> null_dev_;
  std::unique_ptr<TraceDev> trace_dev_;
  std::unique_ptr<WindowManager> wm_;
  std::unique_ptr<NetStack> net_;

  // Latency histograms, registered with metrics_ at construction; the hot
  // paths record through these cached pointers without touching the registry.
  Histogram* syscall_lat_all_ = nullptr;
  Histogram* syscall_lat_[kNumSyscalls + 1] = {};
  Histogram* irq_lat_hist_ = nullptr;
  MetricCounter* irq_counter_ = nullptr;
  MetricCounter* watchdog_bark_counter_ = nullptr;

  // Watchdog state. All token-serialized: the tick stamps are written in IRQ
  // context on the machine thread, everything else on the watchdog fiber or
  // from host-side test hooks while no fiber runs.
  Cycles wd_last_tick_[kMaxCores] = {};     // last serviced timer tick per core
  bool wd_core_barked_[kMaxCores] = {};     // bark-once latch per stalled core
  Pid wd_last_dispatched_[kMaxCores] = {};  // last task to run on each core
  bool wedged_core_[kMaxCores] = {};        // DebugWedgeCore state

  std::vector<std::uint8_t> ramdisk_image_;
  std::map<std::string, std::vector<std::uint8_t>> boot_blobs_;

  // Seeded-race self-test state (DebugSharedInc).
  SpinLock dbg_race_lock_{"racedet-self"};
  std::uint64_t dbg_shared_counter_ = 0;  // racedet: shared (guarded by dbg_race_lock_)

  std::map<Pid, std::unique_ptr<Task>> tasks_;
  Pid next_pid_ = 1;
  bool booted_ = false;
  bool shutting_down_ = false;
  std::string last_panic_dump_;
};

}  // namespace vos

#endif  // VOS_SRC_KERNEL_KERNEL_H_
