// VELF: the ELF-like executable format user programs ship in. The build
// pipeline packs each app into a VELF image (header + program segments) that
// mkfs places in the ramdisk; exec() parses the header, maps the segments
// into a fresh address space, and resolves the entry symbol against the app
// registry — the simulator's analogue of jumping to e_entry. Prototype 3's
// "file-less exec" reads the same format from a blob bundled with the kernel
// image instead of from the filesystem (§4.3).
#ifndef VOS_SRC_KERNEL_VELF_H_
#define VOS_SRC_KERNEL_VELF_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/base/units.h"

namespace vos {

constexpr std::uint32_t kVelfMagic = 0x464c4556;  // "VELF"
constexpr std::uint32_t kVelfVersion = 1;

enum VelfSegType : std::uint32_t {
  kVelfSegCode = 1,
  kVelfSegData = 2,
};

#pragma pack(push, 1)
struct VelfHeader {
  std::uint32_t magic;
  std::uint32_t version;
  char entry[32];                  // app-registry symbol
  std::uint32_t nsegs;
  std::uint32_t flags;
  std::uint64_t heap_reserve;      // bytes of heap arena the app wants
};

struct VelfSegHeader {
  std::uint32_t type;
  std::uint32_t flags;      // 1 = writable
  std::uint64_t vaddr;
  std::uint32_t filesz;     // payload bytes following the headers
  std::uint32_t memsz;      // >= filesz; the rest is zero-filled
};
#pragma pack(pop)

struct VelfSegment {
  std::uint32_t type;
  std::uint32_t flags;
  std::uint64_t vaddr;
  std::uint32_t memsz;
  std::vector<std::uint8_t> payload;
};

struct VelfImage {
  std::string entry;
  std::uint64_t heap_reserve = 0;
  std::vector<VelfSegment> segments;
};

// Builds a VELF image: a deterministic pseudo-code segment of `code_size`
// bytes (derived from the entry name, standing in for compiled text) plus an
// optional data segment.
std::vector<std::uint8_t> BuildVelf(const std::string& entry, std::uint32_t code_size,
                                    const std::vector<std::uint8_t>& data,
                                    std::uint64_t heap_reserve);

// Parses an image; nullopt on malformed input.
std::optional<VelfImage> ParseVelf(const std::uint8_t* bytes, std::size_t len);

}  // namespace vos

#endif  // VOS_SRC_KERNEL_VELF_H_
