#include "src/kernel/racedet.h"

#include <algorithm>
#include <sstream>

#include "src/base/assert.h"
#include "src/kernel/lockdep.h"
#include "src/kernel/spinlock.h"

namespace vos {

namespace {
constexpr std::size_t kProbeMax = 32;    // open-addressing probe cap
constexpr std::size_t kMaxReports = 32;  // full reports retained; the rest only count
constexpr std::size_t kMaxHistory = 8;   // lockset shrink entries per cell

// Context identity is the host thread: execution is token-serialized, and
// each logical context (the machine loop, or one task fiber) owns its own
// thread. Ids are handed out lazily and invalidated by Reset's generation
// bump, exactly like lockdep's held stacks.
thread_local std::uint64_t g_ctx_id = 0;
thread_local std::uint64_t g_ctx_generation = 0;
}  // namespace

const char* RdStateName(RdState s) {
  switch (s) {
    case RdState::kVirgin:
      return "virgin";
    case RdState::kExclusive:
      return "exclusive";
    case RdState::kShared:
      return "shared";
    case RdState::kSharedModified:
      return "shared-modified";
    case RdState::kReported:
      return "reported";
  }
  return "?";
}

Racedet& Racedet::Instance() {
  static Racedet* det = new Racedet();  // intentionally immortal
  return *det;
}

std::uint64_t& Racedet::ExcludeDepth() {
  thread_local std::uint64_t depth = 0;
  return depth;
}

bool Racedet::Excluded() const { return ExcludeDepth() > 0; }

void Racedet::Reset(std::size_t cells) {
  std::size_t cap = 64;
  while (cap < cells) {
    cap <<= 1;
  }
  cells_.assign(cap, Cell{});
  mask_ = cap - 1;
  reports_.clear();
  total_reports_ = 0;
  checks_ = 0;
  excluded_ = 0;
  shrinks_ = 0;
  dropped_ = 0;
  next_ctx_ = 1;
  ++generation_;  // invalidates every thread's cached context id lazily
}

std::uint64_t Racedet::CurrentCtx() {
  if (g_ctx_generation != generation_ || g_ctx_id == 0) {
    g_ctx_generation = generation_;
    g_ctx_id = next_ctx_++;
  }
  return g_ctx_id;
}

std::string Racedet::CurrentCtxName(std::uint64_t id) const {
  if (ctx_name_) {
    std::string n = ctx_name_();
    if (!n.empty()) {
      return n;
    }
  }
  return "ctx" + std::to_string(id);
}

Racedet::Cell* Racedet::Lookup(std::uintptr_t addr, bool create, const char* name,
                               const char* file, int line) {
  std::size_t h = static_cast<std::size_t>((addr >> 3) * 0x9E3779B97F4A7C15ull);
  for (std::size_t i = 0; i < kProbeMax; ++i) {
    Cell& c = cells_[(h + i) & mask_];
    if (c.addr == addr) {
      return &c;
    }
    if (c.addr == 0) {
      if (!create) {
        return nullptr;
      }
      c.addr = addr;
      c.name = name;
      c.file = file;
      c.line = line;
      return &c;
    }
  }
  // Probe chain exhausted: the location goes untracked (counted, never a
  // false positive). Raise KernelConfig::racedet_cells if this fires.
  if (create) {
    ++dropped_;
  }
  return nullptr;
}

const Racedet::Cell* Racedet::Find(std::uintptr_t addr) const {
  std::size_t h = static_cast<std::size_t>((addr >> 3) * 0x9E3779B97F4A7C15ull);
  for (std::size_t i = 0; i < kProbeMax; ++i) {
    const Cell& c = cells_[(h + i) & mask_];
    if (c.addr == addr) {
      return &c;
    }
    if (c.addr == 0) {
      return nullptr;
    }
  }
  return nullptr;
}

void Racedet::ForgetRange(const void* addr, std::size_t size) {
  if (cells_.empty()) {
    return;
  }
  auto lo = reinterpret_cast<std::uintptr_t>(addr);
  std::uintptr_t hi = lo + size;
  // Linear sweep (the table is small and object death is rare). Clearing a
  // slot may split another key's probe chain; that key then restarts at
  // Virgin on next access — a missed refinement, never a false positive.
  for (Cell& c : cells_) {
    if (c.addr >= lo && c.addr < hi) {
      c = Cell{};
    }
  }
}

std::string Racedet::FormatLockset(const std::vector<const SpinLock*>& set) const {
  std::string out = "{";
  for (std::size_t i = 0; i < set.size(); ++i) {
    if (i > 0) {
      out += ", ";
    }
    out += set[i]->name();
  }
  out += "}";
  return out;
}

namespace {
std::string FormatFrames(const std::vector<const char*>& bt) {
  if (bt.empty()) {
    return "    <no call stack>\n";
  }
  std::ostringstream os;
  for (auto it = bt.rbegin(); it != bt.rend(); ++it) {
    os << "    [" << (bt.rend() - it - 1) << "] " << *it << "\n";
  }
  return os.str();
}

std::string SiteOf(const char* file, int line) {
  return std::string(file != nullptr ? file : "?") + ":" + std::to_string(line);
}
}  // namespace

void Racedet::RecordShrink(Cell& c, std::uint64_t ctx, const char* file, int line,
                           std::size_t before, std::size_t after) {
  ++shrinks_;
  if (c.history.size() >= kMaxHistory) {
    return;
  }
  std::ostringstream os;
  os << "C(v) " << before << " -> " << after << " = " << FormatLockset(c.lockset) << " by '"
     << CurrentCtxName(ctx) << "' at " << SiteOf(file, line);
  c.history.push_back(os.str());
}

void Racedet::EmitReport(Cell& c, std::uint64_t ctx, const char* file, int line, bool is_write,
                         const std::vector<const SpinLock*>& held) {
  c.state = RdState::kReported;  // one bug, one report: the cell goes quiet
  std::size_t index = total_reports_++;
  if (reports_.size() < kMaxReports) {
    RaceReport r;
    r.location = c.name != nullptr ? c.name : "?";
    r.addr = c.addr;
    r.site = SiteOf(file, line);
    r.racing_write = is_write;
    r.racing_ctx = CurrentCtxName(ctx);
    r.racing_bt = Lockdep::Instance().CurrentBacktrace();
    r.prior_site = SiteOf(c.last_file, c.last_line);
    r.prior_write = c.last_write;
    r.prior_ctx = c.last_ctx_name;
    r.prior_bt = c.last_bt;
    r.lockset_history = c.history;
    std::ostringstream held_note;
    held_note << "C(v) empty; racing access held " << FormatLockset(held);
    r.lockset_history.push_back(held_note.str());
    reports_.push_back(std::move(r));
  }
  if (trace_) {
    // Hooks may touch annotated state (trace rings, metrics); self-exclude.
    PushExclude();
    trace_(c.addr, index);
    PopExclude();
  }
}

void Racedet::OnAccess(const volatile void* addr, const char* name, const char* file, int line,
                       bool is_write) {
  if (!enabled_ || cells_.empty()) {
    return;
  }
  if (Excluded()) {
    ++excluded_;
    return;
  }
  ++checks_;
  auto a = reinterpret_cast<std::uintptr_t>(const_cast<const void*>(addr));
  Cell* c = Lookup(a, true, name, file, line);
  if (c == nullptr) {
    return;
  }
  std::uint64_t ctx = CurrentCtx();
  if (is_write) {
    ++c->writes;
  } else {
    ++c->reads;
  }

  switch (c->state) {
    case RdState::kVirgin:
      c->state = RdState::kExclusive;
      c->owner = ctx;
      c->owner_name = CurrentCtxName(ctx);
      break;
    case RdState::kExclusive: {
      if (ctx == c->owner) {
        break;  // still initialization: one context, any locking
      }
      // Second context: leave Exclusive. C(v) starts as the locks the new
      // context holds right now (the Eraser refinement begins here; the
      // initializing context's locking is deliberately not consulted).
      std::vector<const SpinLock*> held = Lockdep::Instance().HeldLockPtrs();
      c->lockset = held;
      c->lockset_valid = true;
      {
        std::ostringstream os;
        os << "C(v) init = " << FormatLockset(c->lockset) << " by '" << CurrentCtxName(ctx)
           << "' at " << SiteOf(file, line);
        if (c->history.size() < kMaxHistory) {
          c->history.push_back(os.str());
        }
      }
      c->state = is_write ? RdState::kSharedModified : RdState::kShared;
      if (c->state == RdState::kSharedModified && c->lockset.empty()) {
        EmitReport(*c, ctx, file, line, is_write, held);
        return;
      }
      break;
    }
    case RdState::kShared:
    case RdState::kSharedModified: {
      std::vector<const SpinLock*> held = Lockdep::Instance().HeldLockPtrs();
      std::size_t before = c->lockset.size();
      c->lockset.erase(std::remove_if(c->lockset.begin(), c->lockset.end(),
                                      [&held](const SpinLock* l) {
                                        return std::find(held.begin(), held.end(), l) ==
                                               held.end();
                                      }),
                       c->lockset.end());
      if (c->lockset.size() != before) {
        RecordShrink(*c, ctx, file, line, before, c->lockset.size());
      }
      if (is_write) {
        c->state = RdState::kSharedModified;
      }
      // Read-only sharing never reports; once writes joined the party the
      // candidate set must stay nonempty.
      if (c->state == RdState::kSharedModified && c->lockset.empty()) {
        EmitReport(*c, ctx, file, line, is_write, held);
        return;
      }
      break;
    }
    case RdState::kReported:
      return;
  }

  // Remember this access as the "other side" of a future report.
  c->last_ctx = ctx;
  c->last_ctx_name = CurrentCtxName(ctx);
  c->last_file = file;
  c->last_line = line;
  c->last_write = is_write;
  c->last_bt = Lockdep::Instance().CurrentBacktrace();
}

void Racedet::AssertHeld(const SpinLock* lock, const char* expr, const char* file, int line) {
  if (!enabled_ || Excluded() || !Lockdep::Instance().enabled()) {
    return;
  }
  ++checks_;
  if (Lockdep::Instance().IsHeldByCurrent(lock)) {
    return;
  }
  std::ostringstream os;
  os << "racedet: RD_ASSERT_HELD(" << expr << ") failed at " << SiteOf(file, line)
     << "\n  lock '" << lock->name() << "' is not held by the calling context\n  held now: ";
  std::vector<std::string> held = Lockdep::Instance().HeldNames();
  if (held.empty()) {
    os << "<none>";
  } else {
    for (std::size_t i = 0; i < held.size(); ++i) {
      os << (i > 0 ? ", " : "") << held[i];
    }
  }
  os << "\n  call stack:\n" << FormatFrames(Lockdep::Instance().CurrentBacktrace());
  std::string msg = os.str();
  VOS_CHECK_MSG(false, msg.c_str());
}

std::size_t Racedet::CellsUsed() const {
  std::size_t n = 0;
  for (const Cell& c : cells_) {
    if (c.addr != 0) {
      ++n;
    }
  }
  return n;
}

RdState Racedet::StateOf(const volatile void* addr) const {
  const Cell* c = Find(reinterpret_cast<std::uintptr_t>(const_cast<const void*>(addr)));
  return c != nullptr ? c->state : RdState::kVirgin;
}

std::vector<std::string> Racedet::LocksetOf(const volatile void* addr) const {
  std::vector<std::string> out;
  const Cell* c = Find(reinterpret_cast<std::uintptr_t>(const_cast<const void*>(addr)));
  if (c == nullptr || !c->lockset_valid) {
    return out;
  }
  out.reserve(c->lockset.size());
  for (const SpinLock* l : c->lockset) {
    out.emplace_back(l->name());
  }
  return out;
}

std::string Racedet::Report() const {
  std::ostringstream os;
  os << "racedet: " << (enabled_ ? "on" : "off") << "\n";
  os << "checks: " << checks_ << "  excluded: " << excluded_ << "  shrinks: " << shrinks_
     << "\n";
  os << "cells: " << CellsUsed() << "/" << cells_.size() << "  dropped: " << dropped_ << "\n";
  os << "reports: " << total_reports_;
  if (total_reports_ > reports_.size()) {
    os << " (showing first " << reports_.size() << ")";
  }
  os << "\n";
  for (std::size_t i = 0; i < reports_.size(); ++i) {
    const RaceReport& r = reports_[i];
    os << "\nrace #" << i << ": '" << r.location << "' declared at " << SiteOfReport(r)
       << "\n";
    os << "  racing " << (r.racing_write ? "write" : "read") << " by '" << r.racing_ctx
       << "' at " << r.site << ":\n"
       << FormatFrames(r.racing_bt);
    os << "  prior " << (r.prior_write ? "write" : "read") << " by '" << r.prior_ctx << "' at "
       << r.prior_site << ":\n"
       << FormatFrames(r.prior_bt);
    os << "  lockset history:\n";
    for (const std::string& h : r.lockset_history) {
      os << "    " << h << "\n";
    }
  }
  return os.str();
}

std::string Racedet::SiteOfReport(const RaceReport& r) const {
  // The declaration site is the first annotation that touched the cell; the
  // cell may be gone by the time /proc/racedet renders (ForgetRange), so the
  // report is self-contained: fall back to the racing site.
  const Cell* c = Find(r.addr);
  if (c != nullptr && c->file != nullptr) {
    return SiteOf(c->file, c->line);
  }
  return r.site;
}

}  // namespace vos
