#include "src/kernel/trace.h"

#include <algorithm>

namespace vos {

TraceRing::TraceRing(bool enabled, std::size_t per_core_capacity) : enabled_(enabled) {
  for (unsigned i = 0; i < kMaxCores; ++i) {
    rings_.emplace_back(per_core_capacity);
  }
}

void TraceRing::Emit(Cycles ts, unsigned core, TraceEvent ev, std::int32_t pid, std::uint64_t a,
                     std::uint64_t b) {
  if (!enabled_ || core >= rings_.size()) {
    return;
  }
  SpinGuard g(lock_);
  rings_[core].PushOverwrite(TraceRecord{ts, static_cast<std::uint16_t>(core), ev, pid, a, b});
  ++emitted_;
}

std::vector<TraceRecord> TraceRing::Dump() const {
  SpinGuard g(lock_);
  std::vector<TraceRecord> out;
  for (const auto& r : rings_) {
    for (std::size_t i = 0; i < r.size(); ++i) {
      out.push_back(r.At(i));
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceRecord& a, const TraceRecord& b) { return a.ts < b.ts; });
  return out;
}

std::vector<TraceRecord> TraceRing::DumpEvent(TraceEvent ev) const {
  std::vector<TraceRecord> all = Dump();
  std::vector<TraceRecord> out;
  for (const TraceRecord& r : all) {
    if (r.event == ev) {
      out.push_back(r);
    }
  }
  return out;
}

void TraceRing::Clear() {
  SpinGuard g(lock_);
  for (auto& r : rings_) {
    r.Clear();
  }
  emitted_ = 0;
}

std::string TraceRing::EventName(TraceEvent ev) {
  switch (ev) {
    case TraceEvent::kSyscallEnter:
      return "syscall_enter";
    case TraceEvent::kSyscallExit:
      return "syscall_exit";
    case TraceEvent::kCtxSwitch:
      return "ctx_switch";
    case TraceEvent::kIrqEnter:
      return "irq_enter";
    case TraceEvent::kIrqExit:
      return "irq_exit";
    case TraceEvent::kSleep:
      return "sleep";
    case TraceEvent::kWakeup:
      return "wakeup";
    case TraceEvent::kUserMark:
      return "user_mark";
    case TraceEvent::kKeyEvent:
      return "key_event";
    case TraceEvent::kWmComposite:
      return "wm_composite";
    case TraceEvent::kPageFault:
      return "page_fault";
    case TraceEvent::kBlockRead:
      return "block_read";
    case TraceEvent::kBlockWrite:
      return "block_write";
    case TraceEvent::kBlockFlush:
      return "block_flush";
    case TraceEvent::kPmmAlloc:
      return "pmm_alloc";
    case TraceEvent::kPmmFree:
      return "pmm_free";
    case TraceEvent::kPmmOom:
      return "pmm_oom";
    case TraceEvent::kSlabRefill:
      return "slab_refill";
  }
  return "?";
}

}  // namespace vos
