#include "src/kernel/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>

namespace vos {

TraceRing::TraceRing(bool enabled, std::size_t per_core_capacity)
    : enabled_(enabled), cap_(per_core_capacity == 0 ? 1 : per_core_capacity) {
  for (auto& r : rings_) {
    r.slots.resize(cap_);
  }
}

void TraceRing::Emit(Cycles ts, unsigned core, TraceEvent ev, std::int32_t pid, std::uint64_t a,
                     std::uint64_t b) {
  if (!enabled_ || core >= kMaxCores) {
    return;
  }
  CoreRing& r = rings_[core];
  // Seqlock write side: odd while the slot is torn. Single producer per core,
  // so every cursor update is a plain load+store — no RMW, no CAS, no lock.
  const std::uint64_t h = r.head.load(std::memory_order_relaxed);
  const std::uint64_t s = r.seq.load(std::memory_order_relaxed);
  r.seq.store(s + 1, std::memory_order_relaxed);
  // Store-store barrier: the odd seq must be visible before the slot is
  // torn. Like the Linux seqlock's smp_wmb — a compiler barrier on TSO
  // hosts, dmb ishst on ARM — it orders the plain slot stores too.
  std::atomic_thread_fence(std::memory_order_release);
  // next_slot tracks head % cap_ without the division (producer-only state).
  r.slots[r.next_slot] = TraceRecord{ts, static_cast<std::uint16_t>(core), ev, pid, a, b};
  r.next_slot = r.next_slot + 1 == cap_ ? 0 : r.next_slot + 1;
  // Both release stores: the slot contents precede the new head and the
  // even seq that publishes them.
  r.head.store(h + 1, std::memory_order_release);
  r.seq.store(s + 2, std::memory_order_release);
}

std::vector<TraceRecord> TraceRing::Dump() const {
  std::vector<TraceRecord> out;
  std::vector<TraceRecord> tmp;
  for (const CoreRing& r : rings_) {
    for (;;) {
      std::uint64_t s0 = r.seq.load(std::memory_order_acquire);
      if (s0 & 1) {
        dump_retries_.fetch_add(1, std::memory_order_relaxed);
        continue;  // writer mid-record; retry
      }
      std::uint64_t h = r.head.load(std::memory_order_acquire);
      std::uint64_t n = std::min<std::uint64_t>(h, cap_);
      tmp.clear();
      for (std::uint64_t i = 0; i < n; ++i) {
        tmp.push_back(r.slots[(h - n + i) % cap_]);
      }
      std::atomic_thread_fence(std::memory_order_acquire);
      // Unchanged seq == nothing was overwritten under us; keep the snapshot.
      if (r.seq.load(std::memory_order_relaxed) == s0) {
        out.insert(out.end(), tmp.begin(), tmp.end());
        break;
      }
      dump_retries_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceRecord& a, const TraceRecord& b) { return a.ts < b.ts; });
  return out;
}

std::vector<TraceRecord> TraceRing::DumpEvent(TraceEvent ev) const {
  std::vector<TraceRecord> all = Dump();
  std::vector<TraceRecord> out;
  for (const TraceRecord& r : all) {
    if (r.event == ev) {
      out.push_back(r);
    }
  }
  return out;
}

void TraceRing::Clear() {
  for (auto& r : rings_) {
    r.seq.fetch_add(1, std::memory_order_acq_rel);
    r.head.store(0, std::memory_order_relaxed);
    r.next_slot = 0;
    r.seq.fetch_add(1, std::memory_order_release);
  }
}

std::uint64_t TraceRing::total_emitted() const {
  std::uint64_t t = 0;
  for (const CoreRing& r : rings_) {
    t += r.head.load(std::memory_order_relaxed);
  }
  return t;
}

std::uint64_t TraceRing::dropped(unsigned core) const {
  if (core >= kMaxCores) {
    return 0;
  }
  const std::uint64_t h = rings_[core].head.load(std::memory_order_relaxed);
  return h > cap_ ? h - cap_ : 0;
}

std::uint64_t TraceRing::total_dropped() const {
  std::uint64_t t = 0;
  for (unsigned c = 0; c < kMaxCores; ++c) {
    t += dropped(c);
  }
  return t;
}

std::string TraceRing::EventName(TraceEvent ev) {
  switch (ev) {
    case TraceEvent::kSyscallEnter:
      return "syscall_enter";
    case TraceEvent::kSyscallExit:
      return "syscall_exit";
    case TraceEvent::kCtxSwitch:
      return "ctx_switch";
    case TraceEvent::kIrqEnter:
      return "irq_enter";
    case TraceEvent::kIrqExit:
      return "irq_exit";
    case TraceEvent::kSleep:
      return "sleep";
    case TraceEvent::kWakeup:
      return "wakeup";
    case TraceEvent::kUserMark:
      return "user_mark";
    case TraceEvent::kKeyEvent:
      return "key_event";
    case TraceEvent::kWmComposite:
      return "wm_composite";
    case TraceEvent::kPageFault:
      return "page_fault";
    case TraceEvent::kBlockRead:
      return "block_read";
    case TraceEvent::kBlockWrite:
      return "block_write";
    case TraceEvent::kBlockFlush:
      return "block_flush";
    case TraceEvent::kPmmAlloc:
      return "pmm_alloc";
    case TraceEvent::kPmmFree:
      return "pmm_free";
    case TraceEvent::kPmmOom:
      return "pmm_oom";
    case TraceEvent::kSlabRefill:
      return "slab_refill";
    case TraceEvent::kBlockError:
      return "block_error";
    case TraceEvent::kRaceReport:
      return "race_report";
    case TraceEvent::kJrnlCommit:
      return "jrnl_commit";
    case TraceEvent::kJrnlCheckpoint:
      return "jrnl_checkpoint";
    case TraceEvent::kProfSample:
      return "prof_sample";
    case TraceEvent::kWatchdogBark:
      return "watchdog_bark";
    case TraceEvent::kNetRx:
      return "net_rx";
    case TraceEvent::kNetTx:
      return "net_tx";
  }
  return "?";
}

namespace {
// Every enumerator, for name->event lookup. tools/lint_trace_events.py keeps
// the enum, the EventName switch, and this table in lockstep.
constexpr TraceEvent kAllTraceEvents[] = {
    TraceEvent::kSyscallEnter, TraceEvent::kSyscallExit, TraceEvent::kCtxSwitch,
    TraceEvent::kIrqEnter,     TraceEvent::kIrqExit,     TraceEvent::kSleep,
    TraceEvent::kWakeup,       TraceEvent::kUserMark,    TraceEvent::kKeyEvent,
    TraceEvent::kWmComposite,  TraceEvent::kPageFault,   TraceEvent::kBlockRead,
    TraceEvent::kBlockWrite,   TraceEvent::kBlockFlush,  TraceEvent::kPmmAlloc,
    TraceEvent::kPmmFree,      TraceEvent::kPmmOom,      TraceEvent::kSlabRefill,
    TraceEvent::kBlockError,   TraceEvent::kRaceReport,  TraceEvent::kJrnlCommit,
    TraceEvent::kJrnlCheckpoint, TraceEvent::kProfSample, TraceEvent::kWatchdogBark,
    TraceEvent::kNetRx,        TraceEvent::kNetTx,
};
}  // namespace

bool TraceRing::EventFromName(const std::string& name, TraceEvent* out) {
  for (TraceEvent ev : kAllTraceEvents) {
    if (EventName(ev) == name) {
      *out = ev;
      return true;
    }
  }
  return false;
}

std::string FormatTraceText(const std::vector<TraceRecord>& recs) {
  std::string out;
  char line[160];
  for (const TraceRecord& r : recs) {
    std::snprintf(line, sizeof(line), "%" PRIu64 " %u %s %d %" PRIu64 " %" PRIu64 "\n",
                  static_cast<std::uint64_t>(r.ts), r.core, TraceRing::EventName(r.event).c_str(),
                  r.pid, r.a, r.b);
    out += line;
  }
  return out;
}

bool ParseTraceText(const std::string& text, std::vector<TraceRecord>* out) {
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    std::string line = text.substr(pos, eol == std::string::npos ? eol : eol - pos);
    pos = eol == std::string::npos ? text.size() : eol + 1;
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::uint64_t ts = 0, a = 0, b = 0;
    unsigned core = 0;
    int pid = 0;
    char name[64] = {0};
    if (std::sscanf(line.c_str(), "%" SCNu64 " %u %63s %d %" SCNu64 " %" SCNu64, &ts, &core, name,
                    &pid, &a, &b) != 6) {
      return false;
    }
    TraceEvent ev;
    if (!TraceRing::EventFromName(name, &ev)) {
      return false;
    }
    out->push_back(TraceRecord{ts, static_cast<std::uint16_t>(core), ev, pid, a, b});
  }
  return true;
}

std::string FormatChromeTrace(const std::vector<TraceRecord>& recs) {
  std::string out = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  char buf[256];
  bool first = true;
  for (const TraceRecord& r : recs) {
    // Syscall and IRQ brackets become duration events so Perfetto renders
    // spans; the rest are instant events. A wrapped ring can lose one half of
    // a pair — viewers tolerate unmatched B/E, and the JSON stays valid.
    std::string name;
    char ph = 'I';
    if (r.event == TraceEvent::kSyscallEnter || r.event == TraceEvent::kSyscallExit) {
      name = "syscall_" + std::to_string(r.a);
      ph = r.event == TraceEvent::kSyscallEnter ? 'B' : 'E';
    } else if (r.event == TraceEvent::kIrqEnter || r.event == TraceEvent::kIrqExit) {
      name = "irq_" + std::to_string(r.a);
      ph = r.event == TraceEvent::kIrqEnter ? 'B' : 'E';
    } else {
      name = TraceRing::EventName(r.event);
    }
    std::snprintf(buf, sizeof(buf),
                  "%s{\"name\":\"%s\",\"cat\":\"kernel\",\"ph\":\"%c\",\"ts\":%.3f,"
                  "\"pid\":%d,\"tid\":%u%s,\"args\":{\"a\":%" PRIu64 ",\"b\":%" PRIu64 "}}",
                  first ? "" : ",", name.c_str(), ph,
                  static_cast<double>(r.ts) / 1000.0, r.pid, r.core,
                  ph == 'I' ? ",\"s\":\"t\"" : "", r.a, r.b);
    out += buf;
    first = false;
  }
  out += "]}";
  return out;
}

}  // namespace vos
