// Kernel semaphores (Prototype 5): the primitive beneath the user-level
// mutexes and condition variables ulib builds (§4.5 "Threading for SDL
// audio"). A small global table, addressed by id, as the syscall interface
// exposes them.
#ifndef VOS_SRC_KERNEL_SEMAPHORE_H_
#define VOS_SRC_KERNEL_SEMAPHORE_H_

#include <array>
#include <cstdint>

#include "src/kernel/sched.h"
#include "src/kernel/spinlock.h"

namespace vos {

constexpr int kMaxSemaphores = 128;

class SemTable {
 public:
  explicit SemTable(Sched& sched) : sched_(sched) {}

  // Returns a new semaphore id with initial value, or kErrNoSpace.
  std::int64_t Create(int initial);
  std::int64_t Destroy(int id);

  // P (wait): decrements, sleeping while zero.
  std::int64_t Wait(Task* cur, int id);
  // V (post): increments and wakes one class of waiters.
  std::int64_t Post(int id);

  std::int64_t Value(int id) const;

 private:
  struct Sem {
    bool used = false;
    int value = 0;
    char chan = 0;
  };

  bool ValidId(int id) const { return id >= 0 && id < kMaxSemaphores && sems_[id].used; }

  Sched& sched_;
  SpinLock lock_{"semtable"};
  std::array<Sem, kMaxSemaphores> sems_{};
};

}  // namespace vos

#endif  // VOS_SRC_KERNEL_SEMAPHORE_H_
