#include "src/kernel/sched.h"

#include <algorithm>

#include "src/base/assert.h"
#include "src/kernel/lockdep.h"

namespace vos {

Sched::Sched(const KernelConfig& cfg) : cfg_(cfg), ncores_(cfg.EffectiveCores()) {
  for (unsigned c = 0; c < ncores_; ++c) {
    cores_[c] = std::make_unique<CoreRq>(c);
  }
}

void Sched::AddNew(Task* t, int core_hint) {
  {
    SpinGuard g(lock_);
    if (core_hint >= 0 && static_cast<unsigned>(core_hint) < ncores_) {
      t->core = static_cast<unsigned>(core_hint);
    } else {
      t->core = RD_READ(next_core_);
      RD_WRITE(next_core_) = (t->core + 1) % ncores_;
    }
  }
  t->state = TaskState::kRunnable;
  t->mlfq_level = 0;  // new tasks start at the highest priority
  EnqueueCore(t);
}

void Sched::Enqueue(Task* t) { EnqueueCore(t); }

void Sched::EnqueueCore(Task* t) {
  VOS_CHECK(t->state == TaskState::kRunnable);
  VOS_CHECK(t->core < ncores_);
  CoreRq& rq = *cores_[t->core];
  SpinGuard g(rq.lock);
  t->runnable_since = NowStamp();
  RD_WRITE(rq.q[LevelOf(t)]).PushBack(t);
}

Task* Sched::PopLocked(CoreRq& rq) {
  for (int l = 0; l < kMlfqLevels; ++l) {
    Task* t = RD_WRITE(rq.q[l]).PopFront();
    if (t != nullptr) {
      ++RD_WRITE(rq.switches);
      if (runq_wait_hist_ != nullptr && now_fn_) {
        Cycles now = now_fn_();
        runq_wait_hist_->Record(now > t->runnable_since ? now - t->runnable_since : 0);
      }
      return t;
    }
  }
  return nullptr;
}

Task* Sched::PickNext(unsigned core) {
  VOS_CHECK(core < ncores_);
  {
    SpinGuard g(cores_[core]->lock);
    Task* t = PopLocked(*cores_[core]);
    if (t != nullptr) {
      return t;
    }
  }
  if (cfg_.sched_steal && ncores_ > 1 && StealInto(core)) {
    SpinGuard g(cores_[core]->lock);
    return PopLocked(*cores_[core]);
  }
  return nullptr;
}

bool Sched::StealInto(unsigned thief) {
  // Victim selection scans queue lengths unlocked: token serialization makes
  // the read a snapshot, and a stale length only costs a wasted lock trip.
  // A queue of one is not worth splitting (it is probably the victim's only
  // work), so the threshold is two.
  unsigned victim = thief;
  std::size_t best = 1;
  for (unsigned v = 0; v < ncores_; ++v) {
    if (v == thief) {
      continue;
    }
    std::size_t len = cores_[v]->Len();
    if (len > best) {
      best = len;
      victim = v;
    }
  }
  if (victim == thief) {
    return false;
  }
  // Ordering rule: always lock the lower core index first. Every nesting of
  // two sched-core locks therefore produces an i→j edge with i < j, and the
  // lockdep order graph between the per-core classes stays acyclic.
  unsigned lo = std::min(thief, victim);
  unsigned hi = std::max(thief, victim);
  SpinGuard g_lo(cores_[lo]->lock);
  SpinGuard g_hi(cores_[hi]->lock);
  CoreRq& src = *cores_[victim];
  CoreRq& dst = *cores_[thief];
  std::size_t take = src.Len() / 2;
  std::size_t moved = 0;
  // Steal-half from the tail, lowest priority level first: the newest,
  // least-urgent arrivals would wait longest behind the victim's backlog, so
  // moving them helps tail latency most, and the victim's next-to-run head
  // (warm state) stays put. runnable_since is preserved — the wait continues
  // on the thief's queue and the runq_wait histogram sees the true latency.
  for (int l = kMlfqLevels - 1; l >= 0 && moved < take; --l) {
    while (moved < take) {
      Task* t = RD_WRITE(src.q[l]).PopBack();
      if (t == nullptr) {
        break;
      }
      t->core = thief;
      RD_WRITE(dst.q[l]).PushBack(t);
      ++moved;
    }
  }
  if (moved == 0) {
    return false;
  }
  ++RD_WRITE(dst.steal_ops);
  RD_WRITE(dst.stolen_in) += moved;
  RD_WRITE(src.migrated_out) += moved;
  return true;
}

void Sched::OnTaskStopped(unsigned core, Task* t, TaskFiber::StopReason r) {
  switch (r) {
    case TaskFiber::StopReason::kBudget: {
      // Still wants the CPU. Rotate to the tail when its slice is spent,
      // otherwise keep it at the head (it was merely interrupted by the
      // window boundary, not preempted).
      CoreRq& rq = *cores_[core];
      SpinGuard g(rq.lock);
      t->state = TaskState::kRunnable;
      t->core = core;
      int lv = LevelOf(t);
      if (wedged_[core]) {  // racedet: ok (test-only flag, token-serialized)
        // Wedged core (watchdog torture): preemption is off, the interrupted
        // task goes straight back to the head with its slice intact — nothing
        // else on this core can run until the wedge lifts.
        RD_WRITE(rq.q[lv]).PushFront(t);
        break;
      }
      if (t->slice_used >= SliceLenAt(lv)) {
        if (slice_hist_ != nullptr) {
          slice_hist_->Record(t->slice_used);
        }
        t->slice_used = 0;
        // MLFQ rule: burning the whole slice marks the task CPU-bound and
        // demotes it one level. A voluntary yield burns the slice for
        // rotation purposes but is not a demotion signal.
        if (Mlfq() && !t->yielded && lv < kMlfqLevels - 1) {
          t->mlfq_level = lv + 1;
          lv = t->mlfq_level;
        }
        RD_WRITE(rq.q[lv]).PushBack(t);
      } else {
        RD_WRITE(rq.q[lv]).PushFront(t);
      }
      t->yielded = false;
      t->runnable_since = NowStamp();
      break;
    }
    case TaskFiber::StopReason::kBlocked:
      // The sleep path already moved it to the sleeping list (or it exited
      // the queue another way); nothing to do.
      break;
    case TaskFiber::StopReason::kExited:
      // Zombie; the exit path handled bookkeeping.
      break;
  }
}

void Sched::OnTick(unsigned core, Cycles now) {
  if (!Mlfq() || core >= ncores_) {
    return;
  }
  CoreRq& rq = *cores_[core];
  Cycles period = Ms(cfg_.mlfq_boost_ms);
  // Pre-lock staleness check: reading last_boost unlocked can at worst skip
  // one boost period; the write below is under the lock.
  if (now < RD_READ(rq.last_boost) + period) {
    return;
  }
  // Periodic boost (starvation guard): everything queued below level 0 moves
  // back to the top with a fresh slice. Sleeping tasks are untouched — they
  // re-enter at their old level when woken and catch the next boost.
  SpinGuard g(rq.lock);
  RD_WRITE(rq.last_boost) = now;
  bool promoted = false;
  for (int l = 1; l < kMlfqLevels; ++l) {
    while (Task* t = RD_WRITE(rq.q[l]).PopFront()) {
      t->mlfq_level = 0;
      t->slice_used = 0;
      RD_WRITE(rq.q[0]).PushBack(t);
      promoted = true;
    }
  }
  if (promoted) {
    ++RD_WRITE(rq.boost_rounds);
  }
}

void Sched::Sleep(Task* cur, void* chan) {
  VOS_CHECK(chan != nullptr);
  // Sleeping with a spinlock held deadlocks the next contender; lockdep
  // reports the held chain at the faulting site. Condition locks must be
  // released first (SleepOn does) — interrupts stay conceptually off only
  // while inside a lock, never across a park.
  Lockdep::Instance().OnSleep(chan);
  // Blocked-time accounting starts here; the profiler hook snapshots the
  // call stack (including this frame) so off-CPU samples attribute the wait
  // to the code path that parked, not to the waker.
  StackFrame sleep_frame(cur, "Sched::Sleep");
  cur->sleep_since = NowStamp();
  if (prof_sleep_hook_) {
    prof_sleep_hook_(cur);
  }
  {
    SpinGuard g(lock_);
    cur->sleep_chan = chan;
    cur->state = TaskState::kSleeping;
    // Blocking ends the slice: an I/O-bound task wakes with a fresh budget,
    // so MLFQ never mistakes many short on-CPU bursts for one long burn.
    cur->slice_used = 0;
    RD_WRITE(sleeping_).PushBack(cur);
  }
  try {
    cur->fiber().BlockAndSwitch();
  } catch (...) {
    // Dying fiber: leave the sleeping list consistent before unwinding on.
    SpinGuard g(lock_);
    if (cur->run_hook.linked()) {
      RD_WRITE(sleeping_).Remove(cur);
    }
    cur->sleep_chan = nullptr;
    throw;
  }
  if (cur->state == TaskState::kSleeping) {
    // BlockAndSwitch returned without parking (kill-unwind in progress):
    // undo the sleep bookkeeping and let the caller's killed check run.
    SpinGuard g(lock_);
    RD_WRITE(sleeping_).Remove(cur);
    cur->sleep_chan = nullptr;
    cur->state = TaskState::kRunning;
    cur->sleep_since = 0;
    cur->sleep_stack.clear();
    return;
  }
  // Woken (Wakeup cleared the channel and re-enqueued us).
  VOS_CHECK(cur->state == TaskState::kRunning);
}

void Sched::SleepOn(Task* cur, void* chan, SpinLock& lk) {
  lk.Release();  // lockdep: naked-ok (the xv6 sleep-lock dance)
  struct Reacquire {
    SpinLock& l;
    ~Reacquire() { l.Acquire(); }  // lockdep: naked-ok
  } reacquire{lk};
  Sleep(cur, chan);
}

std::size_t Sched::Wakeup(void* chan) {
  // Broadcast wake, drained in bounded chunks: collect up to a batch of
  // matches under the lock, wake them (each wake unlinks the task from the
  // sleeping list), then rescan. The loop terminates because every pass
  // strictly shrinks the match set — a channel with any number of sleepers
  // (10k-task broadcast) wakes them all without a fixed-size-array panic.
  constexpr std::size_t kBatch = 64;
  std::size_t total = 0;
  for (;;) {
    Task* batch[kBatch];
    std::size_t n = 0;
    SpinGuard g(lock_);
    for (Task* t : RD_READ(sleeping_)) {
      if (t->sleep_chan == chan) {
        batch[n++] = t;
        if (n == kBatch) {
          break;
        }
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      WakeTaskLocked(batch[i]);
    }
    total += n;
    if (n < kBatch) {
      return total;
    }
  }
}

void Sched::WakeTask(Task* t) {
  SpinGuard g(lock_);
  WakeTaskLocked(t);
}

void Sched::WakeTaskLocked(Task* t) {
  if (t->state != TaskState::kSleeping) {
    return;
  }
  RD_WRITE(sleeping_).Remove(t);
  t->sleep_chan = nullptr;
  t->state = TaskState::kRunnable;
  // Blocked-time accounting (always on): sleep→wakeup wall time, surfaced in
  // /proc/schedstat. The profiler hook turns the same interval into an
  // off-CPU sample against the stack captured at Sleep.
  Cycles now = NowStamp();
  Cycles blocked = t->sleep_since != 0 && now > t->sleep_since ? now - t->sleep_since : 0;
  t->blocked_time += blocked;
  if (prof_wake_hook_) {
    prof_wake_hook_(t, blocked);
  }
  t->sleep_since = 0;
  // Nests "sched" → "sched-core<home>": the documented hierarchy edge.
  EnqueueCore(t);
}

void Sched::Yield(Task* cur) {
  // Voluntary yield: burn the rest of the slice accounting-wise and rotate.
  // The `yielded` flag tells OnTaskStopped this was cooperative, so MLFQ
  // does not read it as a full-slice burn and demote.
  cur->yielded = true;
  cur->slice_used = SliceLenAt(LevelOf(cur));
  cur->fiber().Burn(cfg_.cost.context_switch);
  // Force a trip through the machine loop so others run.
  cur->fiber().YieldToMachine();
}

bool Sched::HasRunnable() const {
  for (unsigned c = 0; c < ncores_; ++c) {
    if (cores_[c]->Len() > 0) {
      return true;
    }
  }
  return false;
}

std::size_t Sched::runqueue_len(unsigned core) const { return cores_[core]->Len(); }

}  // namespace vos
