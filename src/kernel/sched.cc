#include "src/kernel/sched.h"

#include "src/base/assert.h"
#include "src/kernel/lockdep.h"

namespace vos {

void Sched::AddNew(Task* t, int core_hint) {
  SpinGuard g(lock_);
  if (core_hint >= 0 && static_cast<unsigned>(core_hint) < ncores_) {
    t->core = static_cast<unsigned>(core_hint);
  } else {
    t->core = next_core_;
    next_core_ = (next_core_ + 1) % ncores_;
  }
  t->state = TaskState::kRunnable;
  EnqueueLocked(t);
}

void Sched::Enqueue(Task* t) {
  SpinGuard g(lock_);
  EnqueueLocked(t);
}

void Sched::EnqueueLocked(Task* t) {
  VOS_CHECK(t->state == TaskState::kRunnable);
  VOS_CHECK(t->core < ncores_);
  t->runnable_since = NowStamp();
  runq_[t->core].PushBack(t);
}

Task* Sched::PickNext(unsigned core) {
  VOS_CHECK(core < ncores_);
  SpinGuard g(lock_);
  Task* t = runq_[core].PopFront();
  if (t != nullptr) {
    ++switches_[core];
    if (runq_wait_hist_ != nullptr && now_fn_) {
      Cycles now = now_fn_();
      runq_wait_hist_->Record(now > t->runnable_since ? now - t->runnable_since : 0);
    }
  }
  return t;
}

void Sched::OnTaskStopped(unsigned core, Task* t, TaskFiber::StopReason r) {
  switch (r) {
    case TaskFiber::StopReason::kBudget: {
      // Still wants the CPU. Rotate to the tail when its slice is spent,
      // otherwise keep it at the head (it was merely interrupted by the
      // window boundary, not preempted).
      SpinGuard g(lock_);
      t->state = TaskState::kRunnable;
      if (t->slice_used >= SliceLen()) {
        if (slice_hist_ != nullptr) {
          slice_hist_->Record(t->slice_used);
        }
        t->slice_used = 0;
        runq_[core].PushBack(t);
        t->runnable_since = NowStamp();
      } else {
        runq_[core].PushFront(t);
        t->runnable_since = NowStamp();
      }
      break;
    }
    case TaskFiber::StopReason::kBlocked:
      // The sleep path already moved it to the sleeping list (or it exited
      // the queue another way); nothing to do.
      break;
    case TaskFiber::StopReason::kExited:
      // Zombie; the exit path handled bookkeeping.
      break;
  }
}

void Sched::Sleep(Task* cur, void* chan) {
  VOS_CHECK(chan != nullptr);
  // Sleeping with a spinlock held deadlocks the next contender; lockdep
  // reports the held chain at the faulting site. Condition locks must be
  // released first (SleepOn does) — interrupts stay conceptually off only
  // while inside a lock, never across a park.
  Lockdep::Instance().OnSleep(chan);
  {
    SpinGuard g(lock_);
    cur->sleep_chan = chan;
    cur->state = TaskState::kSleeping;
    sleeping_.PushBack(cur);
  }
  try {
    cur->fiber().BlockAndSwitch();
  } catch (...) {
    // Dying fiber: leave the sleeping list consistent before unwinding on.
    SpinGuard g(lock_);
    if (cur->run_hook.linked()) {
      sleeping_.Remove(cur);
    }
    cur->sleep_chan = nullptr;
    throw;
  }
  if (cur->state == TaskState::kSleeping) {
    // BlockAndSwitch returned without parking (kill-unwind in progress):
    // undo the sleep bookkeeping and let the caller's killed check run.
    SpinGuard g(lock_);
    sleeping_.Remove(cur);
    cur->sleep_chan = nullptr;
    cur->state = TaskState::kRunning;
    return;
  }
  // Woken (Wakeup cleared the channel and re-enqueued us).
  VOS_CHECK(cur->state == TaskState::kRunning);
}

void Sched::SleepOn(Task* cur, void* chan, SpinLock& lk) {
  lk.Release();  // lockdep: naked-ok (the xv6 sleep-lock dance)
  struct Reacquire {
    SpinLock& l;
    ~Reacquire() { l.Acquire(); }  // lockdep: naked-ok
  } reacquire{lk};
  Sleep(cur, chan);
}

std::size_t Sched::Wakeup(void* chan) {
  SpinGuard g(lock_);
  std::size_t n = 0;
  // Collect first: WakeTaskLocked mutates the sleeping list.
  Task* to_wake[64];
  for (Task* t : sleeping_) {
    if (t->sleep_chan == chan) {
      VOS_CHECK_MSG(n < 64, "too many sleepers on one channel");
      to_wake[n++] = t;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    WakeTaskLocked(to_wake[i]);
  }
  return n;
}

void Sched::WakeTask(Task* t) {
  SpinGuard g(lock_);
  WakeTaskLocked(t);
}

void Sched::WakeTaskLocked(Task* t) {
  if (t->state != TaskState::kSleeping) {
    return;
  }
  sleeping_.Remove(t);
  t->sleep_chan = nullptr;
  t->state = TaskState::kRunnable;
  EnqueueLocked(t);
}

void Sched::Yield(Task* cur) {
  // Voluntary yield: burn the rest of the slice accounting-wise and rotate.
  cur->slice_used = SliceLen();
  cur->fiber().Burn(cfg_.cost.context_switch);
  // Force a trip through the machine loop so others run.
  cur->fiber().YieldToMachine();
}

bool Sched::HasRunnable() const {
  for (unsigned c = 0; c < ncores_; ++c) {
    if (!runq_[c].empty()) {
      return true;
    }
  }
  return false;
}

std::size_t Sched::runqueue_len(unsigned core) const { return runq_[core].size(); }

}  // namespace vos
