#include "src/kernel/velf.h"

#include <cstring>

#include "src/base/sha256.h"
#include "src/kernel/vm.h"

namespace vos {

std::vector<std::uint8_t> BuildVelf(const std::string& entry, std::uint32_t code_size,
                                    const std::vector<std::uint8_t>& data,
                                    std::uint64_t heap_reserve) {
  VelfHeader h{};
  h.magic = kVelfMagic;
  h.version = kVelfVersion;
  std::strncpy(h.entry, entry.c_str(), sizeof(h.entry) - 1);
  h.nsegs = data.empty() ? 1 : 2;
  h.heap_reserve = heap_reserve;

  // Pseudo-text: repeated SHA-256 of the entry name. Deterministic, and as
  // opaque to the loader as real machine code would be.
  std::vector<std::uint8_t> code(code_size);
  Sha256Digest d = Sha256::Hash(entry.data(), entry.size());
  for (std::uint32_t i = 0; i < code_size; ++i) {
    code[i] = d[i % d.size()];
  }

  std::vector<std::uint8_t> out;
  auto append = [&out](const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    out.insert(out.end(), b, b + n);
  };
  append(&h, sizeof(h));
  VelfSegHeader cs{kVelfSegCode, 0, kUserCodeBase, code_size, code_size};
  append(&cs, sizeof(cs));
  if (!data.empty()) {
    VelfSegHeader ds{kVelfSegData, 1, kUserCodeBase + PageRoundUp(code_size),
                     static_cast<std::uint32_t>(data.size()),
                     static_cast<std::uint32_t>(data.size())};
    append(&ds, sizeof(ds));
  }
  append(code.data(), code.size());
  if (!data.empty()) {
    append(data.data(), data.size());
  }
  return out;
}

std::optional<VelfImage> ParseVelf(const std::uint8_t* bytes, std::size_t len) {
  if (len < sizeof(VelfHeader)) {
    return std::nullopt;
  }
  VelfHeader h;
  std::memcpy(&h, bytes, sizeof(h));
  if (h.magic != kVelfMagic || h.version != kVelfVersion || h.nsegs > 8) {
    return std::nullopt;
  }
  std::size_t off = sizeof(VelfHeader);
  std::vector<VelfSegHeader> shs(h.nsegs);
  for (std::uint32_t i = 0; i < h.nsegs; ++i) {
    if (off + sizeof(VelfSegHeader) > len) {
      return std::nullopt;
    }
    std::memcpy(&shs[i], bytes + off, sizeof(VelfSegHeader));
    off += sizeof(VelfSegHeader);
  }
  VelfImage img;
  img.entry.assign(h.entry, strnlen(h.entry, sizeof(h.entry)));
  img.heap_reserve = h.heap_reserve;
  for (const VelfSegHeader& sh : shs) {
    if (off + sh.filesz > len || sh.memsz < sh.filesz) {
      return std::nullopt;
    }
    VelfSegment seg;
    seg.type = sh.type;
    seg.flags = sh.flags;
    seg.vaddr = sh.vaddr;
    seg.memsz = sh.memsz;
    seg.payload.assign(bytes + off, bytes + off + sh.filesz);
    off += sh.filesz;
    img.segments.push_back(std::move(seg));
  }
  return img;
}

}  // namespace vos
