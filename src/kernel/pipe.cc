#include "src/kernel/pipe.h"

#include "src/base/status.h"

namespace vos {

std::int64_t Pipe::Write(Task* cur, const std::uint8_t* buf, std::size_t n, bool nonblock) {
  SpinGuard g(lock_);
  std::size_t done = 0;
  std::size_t since_wake = 0;  // bytes staged for the next reader wakeup
  while (done < n) {
    if (RD_READ(readers_) == 0 || cur->killed) {
      break;
    }
    if (RD_READ(ring_).full()) {
      if (bytes_per_wake_hist_ != nullptr && since_wake > 0) {
        bytes_per_wake_hist_->Record(since_wake);
      }
      since_wake = 0;
      sched_.Wakeup(&read_chan_);
      if (nonblock) {
        return done > 0 ? static_cast<std::int64_t>(done) : kErrAgain;
      }
      sched_.SleepOn(cur, &write_chan_, lock_);
      continue;
    }
    // Bulk-copy as much as fits in one go instead of a byte per iteration.
    std::size_t pushed = RD_WRITE(ring_).PushMany(buf + done, n - done);
    done += pushed;
    since_wake += pushed;
  }
  if (bytes_per_wake_hist_ != nullptr && since_wake > 0) {
    bytes_per_wake_hist_->Record(since_wake);
  }
  sched_.Wakeup(&read_chan_);
  if (done == 0 && RD_READ(readers_) == 0) {
    return kErrPipe;
  }
  return static_cast<std::int64_t>(done);
}

std::int64_t Pipe::Read(Task* cur, std::uint8_t* buf, std::size_t n, bool nonblock) {
  SpinGuard g(lock_);
  while (RD_READ(ring_).empty() && RD_READ(writers_) > 0) {
    if (cur->killed) {
      return kErrIntr;
    }
    if (nonblock) {
      return kErrAgain;
    }
    sched_.SleepOn(cur, &read_chan_, lock_);
  }
  std::size_t done = RD_WRITE(ring_).PopMany(buf, n);
  sched_.Wakeup(&write_chan_);
  return static_cast<std::int64_t>(done);
}

void Pipe::CloseRead() {
  SpinGuard g(lock_);
  --RD_WRITE(readers_);
  sched_.Wakeup(&write_chan_);
}

void Pipe::CloseWrite() {
  SpinGuard g(lock_);
  --RD_WRITE(writers_);
  sched_.Wakeup(&read_chan_);
}

}  // namespace vos
