#include "src/kernel/timer.h"

#include <vector>

#include "src/base/assert.h"

namespace vos {

VirtualTimers::TimerId VirtualTimers::AddAt(Cycles when, TimerFn fn) {
  TimerId id = next_id_++;
  timers_[id] = Timer{when, 0, std::move(fn)};
  Rearm();
  return id;
}

VirtualTimers::TimerId VirtualTimers::AddPeriodic(Cycles first, Cycles period, TimerFn fn) {
  VOS_CHECK(period > 0);
  TimerId id = next_id_++;
  timers_[id] = Timer{first, period, std::move(fn)};
  Rearm();
  return id;
}

void VirtualTimers::Cancel(TimerId id) {
  timers_.erase(id);
  Rearm();
}

void VirtualTimers::Rearm() {
  if (timers_.empty()) {
    return;
  }
  Cycles next = ~Cycles(0);
  for (const auto& [id, t] : timers_) {
    next = std::min(next, t.when);
  }
  // Compare register is in the 1 MHz counter domain; round up so we never
  // fire early.
  st_.SetCompare(1, (next + kCyclesPerUs - 1) / kCyclesPerUs);
}

std::size_t VirtualTimers::OnIrq(Cycles now) {
  st_.ClearMatch(1);
  std::size_t fired = 0;
  for (;;) {
    // Find one due timer; run outside the map iteration since fn may add or
    // cancel timers.
    TimerId due_id = 0;
    for (const auto& [id, t] : timers_) {
      if (t.when <= now) {
        due_id = id;
        break;
      }
    }
    if (due_id == 0) {
      break;
    }
    auto it = timers_.find(due_id);
    TimerFn fn = it->second.fn;
    if (it->second.period > 0) {
      it->second.when += it->second.period;
    } else {
      timers_.erase(it);
    }
    fn();
    ++fired;
    VOS_CHECK_MSG(fired < 100000, "virtual timer storm");
  }
  Rearm();
  return fired;
}

}  // namespace vos
