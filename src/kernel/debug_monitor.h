// Self-hosted debug monitor (§5.1): breakpoints, watchpoints and single-step,
// modeled on the ARMv8 debug exceptions (DBGBCR/DBGWCR) the real VOS
// programs. Code-side breakpoints attach to named checkpoints (the simulated
// analogue of PC addresses, resolved at build time rather than link time);
// watchpoints cover physical address ranges and are checked on the kernel's
// user-memory access paths.
#ifndef VOS_SRC_KERNEL_DEBUG_MONITOR_H_
#define VOS_SRC_KERNEL_DEBUG_MONITOR_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/base/units.h"
#include "src/hw/phys_mem.h"

namespace vos {

class Task;

struct DebugHit {
  enum class Kind { kBreakpoint, kWatchpoint, kSingleStep } kind;
  std::string location;   // checkpoint name or formatted address
  Task* task = nullptr;
  Cycles when = 0;
};

class DebugMonitor {
 public:
  using HitFn = std::function<void(const DebugHit&)>;

  // Installs the hit callback (the "debugger frontend": tests, or the UART
  // command loop).
  void SetHitHandler(HitFn fn) { on_hit_ = std::move(fn); }

  // --- Breakpoints (DBGBCR-style, on code checkpoints) ---
  void SetBreakpoint(const std::string& checkpoint);
  void ClearBreakpoint(const std::string& checkpoint);
  // Called by instrumented code (kernel functions and apps call
  // Checkpoint(name) at interesting points). Returns true if a breakpoint
  // fired.
  bool Checkpoint(const std::string& name, Task* t, Cycles now);

  // --- Watchpoints (DBGWCR-style, on physical ranges) ---
  void SetWatchpoint(PhysAddr start, std::uint64_t len, bool on_write);
  void ClearWatchpoints() { watchpoints_.clear(); }
  // Called from copyin/copyout and block I/O paths.
  bool CheckAccess(PhysAddr pa, std::uint64_t len, bool is_write, Task* t, Cycles now);

  // --- Single step: fire on the next `n` checkpoints regardless of
  // breakpoints (the monitor's step command). ---
  void SingleStep(int n) { step_budget_ = n; }

  std::uint64_t hits() const { return hits_; }

 private:
  void Fire(DebugHit::Kind kind, const std::string& loc, Task* t, Cycles now);

  struct Watch {
    PhysAddr start;
    std::uint64_t len;
    bool on_write;
  };

  HitFn on_hit_;
  std::vector<std::string> breakpoints_;
  std::vector<Watch> watchpoints_;
  int step_budget_ = 0;
  std::uint64_t hits_ = 0;
};

}  // namespace vos

#endif  // VOS_SRC_KERNEL_DEBUG_MONITOR_H_
