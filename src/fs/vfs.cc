#include "src/fs/vfs.h"

#include <algorithm>
#include <cstring>

#include "src/base/assert.h"
#include "src/base/status.h"
#include "src/kernel/task.h"

namespace vos {

DevNode* Vfs::Device(const std::string& name) const {
  auto it = devices_.find(name);
  return it == devices_.end() ? nullptr : it->second;
}

std::string Vfs::Resolve(Task* t, const std::string& path) const {
  std::string abs;
  if (!path.empty() && path[0] == '/') {
    abs = path;
  } else {
    std::string cwd = t != nullptr ? t->cwd : "/";
    abs = cwd == "/" ? "/" + path : cwd + "/" + path;
  }
  // Normalize "." and "..".
  std::vector<std::string> stack;
  for (const std::string& part : SplitPath(abs)) {
    if (part == ".") {
      continue;
    }
    if (part == "..") {
      if (!stack.empty()) {
        stack.pop_back();
      }
      continue;
    }
    stack.push_back(part);
  }
  std::string out;
  for (const std::string& part : stack) {
    out += "/" + part;
  }
  return out.empty() ? "/" : out;
}

Vfs::Realm Vfs::RealmOf(const std::string& path, std::string* rest) const {
  auto has_prefix = [&](const char* p) {
    std::size_t n = std::strlen(p);
    return path.size() >= n && path.compare(0, n, p) == 0 &&
           (path.size() == n || path[n] == '/');
  };
  if (has_prefix("/d") && fat_ != nullptr) {
    *rest = path.size() > 2 ? path.substr(2) : "/";
    return Realm::kFat;
  }
  if (has_prefix("/u") && usb_fat_ != nullptr) {
    *rest = path.size() > 2 ? path.substr(2) : "/";
    return Realm::kUsbFat;
  }
  if (has_prefix("/dev")) {
    *rest = path.size() > 4 ? path.substr(5) : "";
    return Realm::kDev;
  }
  if (has_prefix("/proc")) {
    *rest = path.size() > 5 ? path.substr(6) : "";
    return Realm::kProc;
  }
  *rest = path;
  return Realm::kRoot;
}

std::int64_t Vfs::Open(Task* t, const std::string& upath, std::uint32_t flags, FilePtr* out,
                       Cycles* burn) {
  std::string path = Resolve(t, upath);
  std::string rest;
  Realm realm = RealmOf(path, &rest);
  auto f = std::make_shared<File>();
  f->path = path;
  f->readable = (flags & kOWronly) == 0;
  f->writable = (flags & (kOWronly | kORdwr)) != 0;
  f->nonblock = (flags & kONonblock) != 0;
  f->append = (flags & kOAppend) != 0;

  switch (realm) {
    case Realm::kDev: {
      DevNode* dev = Device(rest);
      if (dev == nullptr) {
        return kErrNoEnt;
      }
      f->kind = FileKind::kDevice;
      f->dev = dev;
      std::int64_t r = dev->OnOpen(t, *f);
      if (r < 0) {
        return r;
      }
      break;
    }
    case Realm::kProc: {
      auto it = proc_.find(rest);
      if (it == proc_.end()) {
        return kErrNoEnt;
      }
      f->kind = FileKind::kProc;
      f->proc_snapshot = it->second();  // snapshot semantics
      break;
    }
    case Realm::kFat:
    case Realm::kUsbFat: {
      FatVolume* vol = realm == Realm::kFat ? fat_ : usb_fat_;
      auto node = vol->Lookup(rest, burn);
      if (!node) {
        if (!(flags & kOCreate)) {
          return kErrNoEnt;
        }
        FatNode created;
        std::int64_t r = vol->Create(rest, /*is_dir=*/false, &created, burn);
        if (r < 0) {
          return r;
        }
        node = created;
      }
      if (node->is_dir && f->writable) {
        return kErrIsDir;
      }
      if ((flags & kOTrunc) && !node->is_dir) {
        vol->Truncate(*node, burn);
      }
      f->kind = FileKind::kFat;
      f->fat = *node;
      f->fat_vol = vol;
      if (f->append) {
        f->off = node->size;
      }
      break;
    }
    case Realm::kRoot: {
      Xv6InodePtr ip = root_.NameI(rest, burn);
      if (ip == nullptr) {
        if (!(flags & kOCreate)) {
          return kErrNoEnt;
        }
        std::int64_t err = 0;
        ip = root_.Create(rest, kXv6TFile, 0, 0, &err, burn);
        if (ip == nullptr) {
          return err;
        }
      }
      if (ip->type == kXv6TDir && f->writable) {
        return kErrIsDir;
      }
      if ((flags & kOTrunc) && ip->type == kXv6TFile) {
        root_.Truncate(*ip, burn);
      }
      if (ip->type == kXv6TDev) {
        // mknod'd device inode: route through the devfs registry by name
        // stored at mknod time (minor indexes are not used).
        f->kind = FileKind::kDevice;
        f->dev = nullptr;
        for (const auto& [name, dev] : devices_) {
          if (static_cast<std::int16_t>(std::hash<std::string>{}(name) & 0x7fff) == ip->major) {
            f->dev = dev;
            break;
          }
        }
        if (f->dev == nullptr) {
          return kErrIo;
        }
        std::int64_t r = f->dev->OnOpen(t, *f);
        if (r < 0) {
          return r;
        }
      } else {
        f->kind = FileKind::kXv6;
        f->xv6 = ip;
        if (f->append) {
          f->off = ip->size;
        }
      }
      break;
    }
  }
  *out = f;
  return 0;
}

void Vfs::Close(Task* t, const FilePtr& f) {
  (void)t;
  if (f.use_count() > 1) {
    return;  // other descriptors still reference this description
  }
  switch (f->kind) {
    case FileKind::kPipe:
      if (f->pipe_write_end) {
        f->pipe->CloseWrite();
      } else {
        f->pipe->CloseRead();
      }
      break;
    case FileKind::kDevice:
      if (f->dev != nullptr) {
        f->dev->OnClose(*f);
      }
      break;
    case FileKind::kSocket:
      if (socket_closer_ && f->sock != nullptr) {
        socket_closer_(f->sock);
      }
      break;
    default:
      break;
  }
}

std::int64_t Vfs::Read(Task* t, File& f, std::uint8_t* dst, std::uint32_t n, Cycles* burn) {
  if (!f.readable) {
    return kErrBadFd;
  }
  switch (f.kind) {
    case FileKind::kXv6: {
      std::int64_t r = root_.Readi(*f.xv6, dst, static_cast<std::uint32_t>(f.off), n, burn);
      if (r > 0) {
        f.off += static_cast<std::uint64_t>(r);
      }
      return r;
    }
    case FileKind::kFat: {
      FatVolume* vol = f.fat_vol != nullptr ? f.fat_vol : fat_;
      std::int64_t r = vol->Read(f.fat, dst, static_cast<std::uint32_t>(f.off), n, burn);
      if (r > 0) {
        f.off += static_cast<std::uint64_t>(r);
      }
      return r;
    }
    case FileKind::kDevice: {
      std::int64_t r = f.dev->Read(t, dst, n, f.off, f.nonblock, burn);
      // Advance the offset like a regular file: stream devices (console,
      // events) ignore it, snapshot devices (/dev/trace) serve by it.
      if (r > 0) {
        f.off += static_cast<std::uint64_t>(r);
      }
      return r;
    }
    case FileKind::kPipe:
      return f.pipe->Read(t, dst, n, f.nonblock);
    case FileKind::kProc: {
      if (f.off >= f.proc_snapshot.size()) {
        return 0;
      }
      std::uint32_t take =
          std::min<std::uint64_t>(n, f.proc_snapshot.size() - f.off);
      std::memcpy(dst, f.proc_snapshot.data() + f.off, take);
      f.off += take;
      return take;
    }
    case FileKind::kNone:
      break;
  }
  return kErrBadFd;
}

std::int64_t Vfs::Write(Task* t, File& f, const std::uint8_t* src, std::uint32_t n,
                        Cycles* burn) {
  if (!f.writable) {
    return kErrBadFd;
  }
  switch (f.kind) {
    case FileKind::kXv6: {
      if (f.append) {
        f.off = f.xv6->size;
      }
      std::int64_t r = root_.Writei(*f.xv6, src, static_cast<std::uint32_t>(f.off), n, burn);
      if (r > 0) {
        f.off += static_cast<std::uint64_t>(r);
      }
      return r;
    }
    case FileKind::kFat: {
      if (f.append) {
        f.off = f.fat.size;
      }
      FatVolume* vol = f.fat_vol != nullptr ? f.fat_vol : fat_;
      std::int64_t r = vol->Write(f.fat, src, static_cast<std::uint32_t>(f.off), n, burn);
      if (r > 0) {
        f.off += static_cast<std::uint64_t>(r);
      }
      return r;
    }
    case FileKind::kDevice: {
      std::int64_t r = f.dev->Write(t, src, n, f.off, burn);
      // Advance the offset on success, mirroring the device read path above:
      // stream devices ignore it, offset-addressed ones depend on it.
      if (r > 0) {
        f.off += static_cast<std::uint64_t>(r);
      }
      return r;
    }
    case FileKind::kPipe:
      return f.pipe->Write(t, src, n, f.nonblock);
    case FileKind::kProc: {
      // Control files (/proc/faultinject) accept writes through a registered
      // writer; everything else stays read-only.
      std::string rest;
      RealmOf(f.path, &rest);
      auto it = proc_writers_.find(rest);
      if (it == proc_writers_.end()) {
        return kErrPerm;
      }
      *burn += cfg_.cost.syscall_body;
      std::int64_t r = it->second(std::string(reinterpret_cast<const char*>(src), n));
      return r < 0 ? r : n;
    }
    case FileKind::kNone:
      break;
  }
  return kErrBadFd;
}

std::int64_t Vfs::Lseek(File& f, std::int64_t offset, int whence, Cycles* burn) {
  *burn += cfg_.cost.syscall_body;
  std::uint64_t size = 0;
  switch (f.kind) {
    case FileKind::kXv6:
      size = f.xv6->size;
      break;
    case FileKind::kFat:
      size = f.fat.size;
      break;
    case FileKind::kProc:
      size = f.proc_snapshot.size();
      break;
    case FileKind::kDevice:
      // Stream devices report 0; framebuffer-like devices expose their
      // extent so SEEK_END is meaningful (the seed hardcoded 0 for all).
      size = f.dev != nullptr ? f.dev->SeekEndSize() : 0;
      break;
    default:
      return kErrPipe;  // pipes are not seekable
  }
  std::int64_t base = 0;
  if (whence == 1) {
    base = static_cast<std::int64_t>(f.off);
  } else if (whence == 2) {
    base = static_cast<std::int64_t>(size);
  } else if (whence != 0) {
    return kErrInval;
  }
  std::int64_t target = base + offset;
  if (target < 0) {
    return kErrInval;
  }
  f.off = static_cast<std::uint64_t>(target);
  return target;
}

std::int64_t Vfs::FStat(File& f, Stat* st, Cycles* burn) {
  *burn += cfg_.cost.inode_op;
  switch (f.kind) {
    case FileKind::kXv6:
      st->type = f.xv6->type;
      st->size = f.xv6->size;
      st->inum = f.xv6->inum;
      st->nlink = f.xv6->nlink;
      return 0;
    case FileKind::kFat:
      st->type = f.fat.is_dir ? kXv6TDir : kXv6TFile;
      st->size = f.fat.size;
      st->inum = f.fat.first_cluster;  // pseudo-inode number
      st->nlink = 1;
      return 0;
    case FileKind::kDevice:
      st->type = kXv6TDev;
      st->size = 0;
      st->inum = 0;
      st->nlink = 1;
      return 0;
    case FileKind::kProc:
      st->type = kXv6TFile;
      st->size = static_cast<std::uint32_t>(f.proc_snapshot.size());
      st->inum = 0;
      st->nlink = 1;
      return 0;
    default:
      return kErrBadFd;
  }
}

std::int64_t Vfs::Mkdir(Task* t, const std::string& upath, Cycles* burn) {
  std::string path = Resolve(t, upath);
  std::string rest;
  switch (RealmOf(path, &rest)) {
    case Realm::kRoot: {
      std::int64_t err = 0;
      return root_.Create(rest, kXv6TDir, 0, 0, &err, burn) != nullptr ? 0 : err;
    }
    case Realm::kFat:
      return fat_->Create(rest, /*is_dir=*/true, nullptr, burn);
    case Realm::kUsbFat:
      return usb_fat_->Create(rest, /*is_dir=*/true, nullptr, burn);
    default:
      return kErrPerm;
  }
}

std::int64_t Vfs::Unlink(Task* t, const std::string& upath, Cycles* burn) {
  std::string path = Resolve(t, upath);
  std::string rest;
  switch (RealmOf(path, &rest)) {
    case Realm::kRoot:
      return root_.Unlink(rest, burn);
    case Realm::kFat:
      return fat_->Unlink(rest, burn);
    case Realm::kUsbFat:
      return usb_fat_->Unlink(rest, burn);
    default:
      return kErrPerm;
  }
}

std::int64_t Vfs::Link(Task* t, const std::string& oldp, const std::string& newp, Cycles* burn) {
  std::string po = Resolve(t, oldp);
  std::string pn = Resolve(t, newp);
  std::string ro, rn;
  Realm a = RealmOf(po, &ro);
  Realm b = RealmOf(pn, &rn);
  if (a != Realm::kRoot || b != Realm::kRoot) {
    return a == b ? kErrPerm : kErrXDev;  // FAT has no hard links
  }
  return root_.Link(ro, rn, burn);
}

std::int64_t Vfs::Mknod(Task* t, const std::string& upath, std::int16_t major, std::int16_t minor,
                        Cycles* burn) {
  std::string path = Resolve(t, upath);
  std::string rest;
  if (RealmOf(path, &rest) != Realm::kRoot) {
    return kErrPerm;
  }
  std::int64_t err = 0;
  return root_.Create(rest, kXv6TDev, major, minor, &err, burn) != nullptr ? 0 : err;
}

std::int64_t Vfs::Chdir(Task* t, const std::string& upath, Cycles* burn) {
  std::string path = Resolve(t, upath);
  std::string rest;
  switch (RealmOf(path, &rest)) {
    case Realm::kRoot: {
      Xv6InodePtr ip = root_.NameI(rest, burn);
      if (ip == nullptr) {
        return kErrNoEnt;
      }
      if (ip->type != kXv6TDir) {
        return kErrNotDir;
      }
      break;
    }
    case Realm::kFat:
    case Realm::kUsbFat: {
      FatVolume* vol = RealmOf(path, &rest) == Realm::kFat ? fat_ : usb_fat_;
      auto node = vol->Lookup(rest, burn);
      if (!node) {
        return kErrNoEnt;
      }
      if (!node->is_dir) {
        return kErrNotDir;
      }
      break;
    }
    case Realm::kDev:
    case Realm::kProc:
      if (!rest.empty()) {
        return kErrNotDir;
      }
      break;
  }
  t->cwd = path;
  return 0;
}

std::int64_t Vfs::Sync(Cycles* burn) {
  // Journal first: commit the open batch AND drain every committed batch to
  // home (sync is the full-durability point, unlike fsync's commit-only
  // contract). This unpins the journaled buffers, so the FlushAll below sees
  // only ordinary dirty data.
  std::int64_t jerr = root_.DrainJournal(burn);
  // All mounted filesystems share the one buffer cache, so a single
  // FlushAll covers the ramdisk root, the SD FAT volume, and the USB drive.
  // Any flush that exhausted its retries latched an error on its device;
  // consume every latch so the caller learns the data didn't all make it.
  *burn += root_.bcache().FlushAll();
  std::int64_t ferr = root_.bcache().TakeAnyError();
  return jerr < 0 ? jerr : ferr;
}

std::int64_t Vfs::Fsync(File& f, Cycles* burn) {
  switch (f.kind) {
    case FileKind::kXv6: {
      // Commit the open journal batch — durability comes from the log, so
      // fsync does NOT wait for the checkpoint pipeline. The FlushDev below
      // covers non-journaled dirty buffers (and is the whole story on
      // unjournaled images); journal-pinned buffers are excluded from it.
      std::int64_t jerr = root_.SyncJournal(burn);
      *burn += root_.bcache().FlushDev(root_.dev());
      std::int64_t ferr = root_.bcache().TakeError(root_.dev());
      return jerr < 0 ? jerr : ferr;
    }
    case FileKind::kFat:
      if (f.fat_vol != nullptr) {
        *burn += f.fat_vol->bcache().FlushDev(f.fat_vol->dev());
        return f.fat_vol->bcache().TakeError(f.fat_vol->dev());
      }
      return 0;
    case FileKind::kDevice:
    case FileKind::kPipe:
    case FileKind::kProc:
      return 0;  // nothing cached at the block layer
    case FileKind::kNone:
      break;
  }
  return kErrBadFd;
}

std::int64_t Vfs::ReadDir(Task* t, const std::string& upath, std::vector<DirEntryInfo>* out,
                          Cycles* burn) {
  std::string path = Resolve(t, upath);
  std::string rest;
  out->clear();
  switch (RealmOf(path, &rest)) {
    case Realm::kRoot: {
      Xv6InodePtr ip = root_.NameI(rest, burn);
      if (ip == nullptr) {
        return kErrNoEnt;
      }
      if (ip->type != kXv6TDir) {
        return kErrNotDir;
      }
      for (const auto& e : root_.ReadDir(*ip, burn)) {
        out->push_back(DirEntryInfo{e.name, e.type == kXv6TDir, e.size});
      }
      return 0;
    }
    case Realm::kFat:
    case Realm::kUsbFat: {
      FatVolume* vol = RealmOf(path, &rest) == Realm::kFat ? fat_ : usb_fat_;
      auto node = vol->Lookup(rest, burn);
      if (!node) {
        return kErrNoEnt;
      }
      if (!node->is_dir) {
        return kErrNotDir;
      }
      for (const auto& e : vol->ReadDir(*node, burn)) {
        out->push_back(DirEntryInfo{e.name, e.is_dir, e.size});
      }
      return 0;
    }
    case Realm::kDev:
      for (const auto& [name, dev] : devices_) {
        out->push_back(DirEntryInfo{name, false, 0});
      }
      return 0;
    case Realm::kProc:
      for (const auto& [name, gen] : proc_) {
        out->push_back(DirEntryInfo{name, false, 0});
      }
      return 0;
  }
  return kErrNoEnt;
}

}  // namespace vos
