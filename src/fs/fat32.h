// FAT32, the commodity filesystem Prototype 5 mounts from the SD card's
// second partition (§4.5) so users can exchange media files with their other
// devices. Modeled on Chan's FatFS in scope: BPB/FSInfo parsing, 32-bit FAT
// chains (two mirrored copies), 8.3 directory entries with VFAT long file
// names, create/read/write/extend/truncate/unlink/mkdir, and formatting.
//
// FAT has no inodes: files are (first cluster, size) pairs hanging off
// directory entries. The VFS bridges that gap with pseudo-inodes (FatNode),
// exactly as the paper describes.
//
// Reads and writes detect contiguous cluster runs and issue block-*range*
// transfers through the buffer-cache bypass — the §5.2 optimization that cuts
// large-file latency 2-3x on the polled SD driver.
#ifndef VOS_SRC_FS_FAT32_H_
#define VOS_SRC_FS_FAT32_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/base/units.h"
#include "src/fs/bcache.h"

namespace vos {

constexpr std::uint32_t kFatEoc = 0x0ffffff8;   // >= this marks end-of-chain
constexpr std::uint32_t kFatFree = 0;
constexpr std::uint8_t kFatAttrDir = 0x10;
constexpr std::uint8_t kFatAttrArchive = 0x20;
constexpr std::uint8_t kFatAttrLfn = 0x0f;

// Pseudo-inode for an open FAT file or directory (§4.5).
struct FatNode {
  std::uint32_t first_cluster = 0;
  std::uint32_t size = 0;
  bool is_dir = false;
  // Location of the 8.3 directory entry, for size/cluster updates.
  // dirent_sector == 0 identifies the root directory (no entry).
  std::uint64_t dirent_sector = 0;
  std::uint32_t dirent_offset = 0;
};

struct FatDirEntryInfo {
  std::string name;  // long name if present, else 8.3
  std::uint32_t size;
  bool is_dir;
  std::uint32_t first_cluster;
};

class FatVolume {
 public:
  FatVolume(Bcache& bc, int dev, const KernelConfig& cfg) : bc_(bc), dev_(dev), cfg_(cfg) {}

  // Parses the BPB; returns 0 or kErrIo.
  std::int64_t Mount(Cycles* burn);
  bool mounted() const { return mounted_; }

  FatNode Root() const;
  // Absolute path (relative to this volume's root).
  std::optional<FatNode> Lookup(const std::string& path, Cycles* burn);

  std::int64_t Read(const FatNode& f, std::uint8_t* out, std::uint32_t off, std::uint32_t n,
                    Cycles* burn);
  // Writes, extending the file (and its cluster chain) as needed.
  std::int64_t Write(FatNode& f, const std::uint8_t* in, std::uint32_t off, std::uint32_t n,
                     Cycles* burn);

  std::int64_t Create(const std::string& path, bool is_dir, FatNode* out, Cycles* burn);
  std::int64_t Unlink(const std::string& path, Cycles* burn);
  std::int64_t Truncate(FatNode& f, Cycles* burn);

  std::vector<FatDirEntryInfo> ReadDir(const FatNode& dir, Cycles* burn);

  std::uint32_t FreeClusters(Cycles* burn);
  std::uint32_t cluster_bytes() const { return spc_ * kBlockSize; }
  std::uint32_t total_clusters() const { return cluster_count_; }
  Bcache& bcache() { return bc_; }
  int dev() const { return dev_; }

  // Formats a FAT32 volume image of `total_bytes` (must fit >= 65525 clusters
  // per spec; we relax this for small test volumes but keep the layout).
  static std::vector<std::uint8_t> Mkfs(std::uint64_t total_bytes,
                                        std::uint32_t sectors_per_cluster = 8);

 private:
  std::uint64_t ClusterFirstSector(std::uint32_t cluster) const;
  std::uint32_t ReadFatEntry(std::uint32_t cluster, Cycles* burn);
  void WriteFatEntry(std::uint32_t cluster, std::uint32_t value, Cycles* burn);
  std::uint32_t AllocCluster(Cycles* burn);  // zeroed; 0 if full
  void FreeChain(std::uint32_t first, Cycles* burn);
  // Walks `hops` links from `cluster`.
  std::uint32_t WalkChain(std::uint32_t cluster, std::uint32_t hops, Cycles* burn);
  // Appends a cluster to the chain ending at `last`; returns the new cluster.
  std::uint32_t ExtendChain(std::uint32_t last, Cycles* burn);

  struct RawEntry {
    std::uint8_t bytes[32];
  };
  // Iterates raw 32-byte entries of a directory, calling fn(sector, offset,
  // entry). fn returns true to stop. Returns whether it was stopped.
  bool ForEachRawEntry(const FatNode& dir,
                       const std::function<bool(std::uint64_t, std::uint32_t, RawEntry&)>& fn,
                       Cycles* burn);
  std::optional<FatDirEntryInfo> LookupInDir(const FatNode& dir, const std::string& name,
                                             FatNode* node_out, Cycles* burn);
  std::int64_t AddDirEntry(FatNode& dir, const std::string& name, std::uint8_t attr,
                           std::uint32_t first_cluster, std::uint32_t size, FatNode* out,
                           Cycles* burn);
  void UpdateDirent(const FatNode& f, Cycles* burn);
  std::optional<FatNode> LookupParent(const std::string& path, std::string* last, Cycles* burn);

  Bcache& bc_;
  int dev_;
  const KernelConfig& cfg_;
  bool mounted_ = false;
  std::uint32_t spc_ = 0;             // sectors per cluster
  std::uint32_t reserved_ = 0;        // reserved sectors
  std::uint32_t nfats_ = 0;
  std::uint32_t fat_sectors_ = 0;
  std::uint32_t root_cluster_ = 0;
  std::uint64_t total_sectors_ = 0;
  std::uint64_t data_start_ = 0;      // first data sector
  std::uint32_t cluster_count_ = 0;
  std::uint32_t alloc_hint_ = 3;
};

// 8.3 alias + LFN helpers (exposed for tests).
std::string FatMake83(const std::string& long_name, int dedup_index);
std::uint8_t FatLfnChecksum(const std::uint8_t* short_name11);
bool FatNameFits83(const std::string& name);

}  // namespace vos

#endif  // VOS_SRC_FS_FAT32_H_
