// xv6fs: the ext2-like filesystem ported from xv6 (§4.4), run on the ramdisk
// as the root filesystem. On-disk format (1 KB filesystem blocks over the
// 512 B block device):
//
//   [ boot | superblock | inodes ... | free bitmap ... | data ... ]
//
// Inodes have 12 direct + 1 singly-indirect block pointers, capping files at
// (12+256) KB ~ 268 KB — the "270 KB" limit the paper cites as a Prototype 5
// motivation for FAT32. There is no journal; instead of declaring crash
// consistency out of scope (the seed's stance, after §5.4), this layer
// propagates kErrIo from the error-aware block layer and relies on
// FsckRepairXv6 (fsck.h) to bring the metadata back to a consistent state
// after a crash or torn write — the discipline the torture harness
// (tests/crash_torture_test.cc) enforces.
#ifndef VOS_SRC_FS_XV6FS_H_
#define VOS_SRC_FS_XV6FS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/base/units.h"
#include "src/fs/bcache.h"

namespace vos {

constexpr std::uint32_t kXv6Magic = 0x10203040;
constexpr std::uint32_t kFsBlockSize = 1024;             // fs block
constexpr std::uint32_t kDevPerFs = kFsBlockSize / kBlockSize;  // 2 device blocks
constexpr std::uint32_t kNDirect = 12;
constexpr std::uint32_t kNIndirect = kFsBlockSize / 4;   // 256
constexpr std::uint32_t kMaxFileBlocks = kNDirect + kNIndirect;
constexpr std::uint32_t kDirNameLen = 14;

// Inode types.
constexpr std::int16_t kXv6TDir = 1;
constexpr std::int16_t kXv6TFile = 2;
constexpr std::int16_t kXv6TDev = 3;

constexpr std::uint32_t kRootInum = 1;

// Default journal size Mkfs reserves (journal superblock + 31 record slots);
// the protocol constants live in src/fs/journal.h.
constexpr std::uint32_t kJrnlDefaultLogBlocks = 32;

#pragma pack(push, 1)
struct Xv6Superblock {
  std::uint32_t magic;
  std::uint32_t size;        // total fs blocks
  std::uint32_t nblocks;     // data blocks
  std::uint32_t ninodes;
  std::uint32_t inodestart;  // first inode block
  std::uint32_t bmapstart;   // first bitmap block
  // Write-ahead log region (src/fs/journal.h): nlog fs blocks starting at
  // logstart (journal superblock + record slots). nlog == 0 means an
  // unjournaled image. The log lives inside the metadata area (nmeta =
  // size - nblocks covers it), so fsck's data-block accounting needs no
  // special cases for it.
  std::uint32_t logstart;
  std::uint32_t nlog;
};

struct Xv6Dinode {
  std::int16_t type;   // 0 = free
  std::int16_t major;
  std::int16_t minor;
  std::int16_t nlink;
  std::uint32_t size;
  std::uint32_t addrs[kNDirect + 1];
};

struct Xv6Dirent {
  std::uint16_t inum;  // 0 = free slot
  char name[kDirNameLen];
};
#pragma pack(pop)

static_assert(sizeof(Xv6Dinode) == 64, "dinode must pack to 64 bytes");
static_assert(sizeof(Xv6Dirent) == 16, "dirent must pack to 16 bytes");

constexpr std::uint32_t kInodesPerBlock = kFsBlockSize / sizeof(Xv6Dinode);

struct Xv6Inode {
  std::uint32_t inum = 0;
  std::int16_t type = 0;
  std::int16_t major = 0;
  std::int16_t minor = 0;
  std::int16_t nlink = 0;
  std::uint32_t size = 0;
  std::uint32_t addrs[kNDirect + 1] = {};
};

using Xv6InodePtr = std::shared_ptr<Xv6Inode>;

struct Xv6DirEntryInfo {
  std::string name;
  std::uint32_t inum;
  std::int16_t type;
  std::uint32_t size;
};

class Journal;

class Xv6Fs {
 public:
  Xv6Fs(Bcache& bc, int dev, const KernelConfig& cfg) : bc_(bc), dev_(dev), cfg_(cfg) {}

  // Reads and validates the superblock. Returns 0 or kErrIo. `burn` (here and
  // below) accumulates the virtual time of the operation.
  std::int64_t Mount(Cycles* burn);
  const Xv6Superblock& sb() const { return sb_; }

  // Inode access (iget semantics; the cache write-backs on Update).
  // GetInode returns nullptr on an unreadable inode block or an out-of-range
  // inum (possible on damaged filesystems).
  Xv6InodePtr GetInode(std::uint32_t inum, Cycles* burn);
  std::int64_t UpdateInode(const Xv6Inode& ip, Cycles* burn);  // iupdate; 0 or kErrIo

  // Path resolution; absolute paths only (the VFS resolves cwd).
  Xv6InodePtr NameI(const std::string& path, Cycles* burn);
  Xv6InodePtr NameIParent(const std::string& path, std::string* last, Cycles* burn);

  // File data.
  std::int64_t Readi(Xv6Inode& ip, std::uint8_t* dst, std::uint32_t off, std::uint32_t n,
                     Cycles* burn);
  std::int64_t Writei(Xv6Inode& ip, const std::uint8_t* src, std::uint32_t off, std::uint32_t n,
                      Cycles* burn);

  // Namespace ops. All return 0/positive or a negative Err.
  Xv6InodePtr Create(const std::string& path, std::int16_t type, std::int16_t major,
                     std::int16_t minor, std::int64_t* err, Cycles* burn);
  std::int64_t Unlink(const std::string& path, Cycles* burn);
  std::int64_t Link(const std::string& oldp, const std::string& newp, Cycles* burn);

  std::vector<Xv6DirEntryInfo> ReadDir(Xv6Inode& dir, Cycles* burn);

  // Frees all data blocks (truncate to zero).
  void Truncate(Xv6Inode& ip, Cycles* burn);

  std::uint32_t FreeDataBlocks(Cycles* burn);

  // Introspection/repair hooks for fsck: bitmap state of one fs block, raw
  // fs-block I/O through the same cache path, bitmap bit surgery, and inode
  // cache eviction (fsck rewrites inodes on disk behind the cache's back).
  bool BlockInUse(std::uint32_t b, Cycles* burn);
  std::int64_t SetBlockInUse(std::uint32_t b, bool used, Cycles* burn);  // 0 or kErrIo
  std::int64_t ReadFsBlock(std::uint32_t fsb, std::uint8_t* out, Cycles* burn);
  std::int64_t WriteFsBlock(std::uint32_t fsb, const std::uint8_t* in, Cycles* burn);
  void EvictInode(std::uint32_t inum) { icache_.erase(inum); }
  Bcache& bcache() { return bc_; }
  int dev() const { return dev_; }

  // Write-ahead journaling (src/fs/journal.h). When attached, every
  // metadata/data write funnels through the journal as a transaction;
  // detached (or an unjournaled image), writes go straight to the write-back
  // cache as before. Mount() runs recovery-by-replay either way when the
  // image carries a log.
  void AttachJournal(Journal* j) { jrnl_ = j; }
  Journal* journal() const { return jrnl_; }
  // fsync semantics: make everything logged so far durable (group commit of
  // the open batch). Does NOT wait for the checkpoint pipeline.
  std::int64_t SyncJournal(Cycles* burn);
  // sync semantics: commit, then drain every committed batch to home.
  std::int64_t DrainJournal(Cycles* burn);
  // Mount-time recovery outcome (zeroed when the image has no log).
  std::uint32_t recovered_records() const { return recovered_records_; }
  std::uint32_t recovered_blocks() const { return recovered_blocks_; }

  // Formats an image: fs of `fsblocks` 1 KB blocks with `ninodes` inodes and
  // an `nlog`-block journal region (0 = unjournaled), containing only the
  // root directory. Image size = fsblocks KB.
  static std::vector<std::uint8_t> Mkfs(std::uint32_t fsblocks, std::uint32_t ninodes,
                                        std::uint32_t nlog = kJrnlDefaultLogBlocks);

 private:
  // 0 with *out = fresh zeroed block, kErrNoSpace on disk full, kErrIo.
  std::int64_t BAlloc(std::uint32_t* out, Cycles* burn);
  void BFree(std::uint32_t b, Cycles* burn);  // best-effort, tolerant of damage
  // Maps file block index -> disk block, allocating when `alloc`. Returns 0
  // with *out = block (0 = hole when !alloc, disk full when alloc), or kErrIo.
  std::int64_t BMap(Xv6Inode& ip, std::uint32_t bn, bool alloc, std::uint32_t* out,
                    Cycles* burn);
  // Returns the new inum, or 0 with *err = kErrNoSpace/kErrIo.
  std::uint32_t IAlloc(std::int16_t type, std::int64_t* err, Cycles* burn);
  std::int64_t DirLookup(Xv6Inode& dir, const std::string& name, Cycles* burn);  // inum or err
  std::int64_t DirLink(Xv6Inode& dir, const std::string& name, std::uint32_t inum, Cycles* burn);
  bool DirIsEmpty(Xv6Inode& dir, Cycles* burn);

  Bcache& bc_;
  int dev_;
  const KernelConfig& cfg_;
  Xv6Superblock sb_{};
  Journal* jrnl_ = nullptr;
  std::uint32_t recovered_records_ = 0;
  std::uint32_t recovered_blocks_ = 0;
  std::unordered_map<std::uint32_t, Xv6InodePtr> icache_;
};

// Splits "/a/b/c" into components; rejects empty or non-absolute paths.
std::vector<std::string> SplitPath(const std::string& path);

}  // namespace vos

#endif  // VOS_SRC_FS_XV6FS_H_
